package breakband

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// hotPackages are the software layers migrated to run-to-completion
// continuations (sim.Task frames). Their non-test sources must stay free of
// blocking goroutine-proc constructs: no sim.Proc in signatures or state, no
// Sleep/Sync calls, no Spawn of goroutine procs. Cold paths that still need
// a blocking proc live outside these packages (or in _test.go files, which
// the gate skips).
var hotPackages = []string{
	"internal/uct",
	"internal/verbs",
	"internal/ucp",
	"internal/mpi",
	"internal/vtimer",
	"internal/osu",
	"internal/perftest",
	"internal/workload",
}

// handoffFreeAllowlist exempts specific files that intentionally keep a
// blocking construct (documented cold paths). Keys are slash-separated paths
// relative to the repo root.
var handoffFreeAllowlist = map[string]string{
	// (empty: every hot package is fully migrated)
}

// TestHotStacksHandoffFree is the regression gate for the continuation
// migration: it tokenizes every non-test Go file in the hot packages
// (comments and strings never trigger it) and fails if a blocking
// goroutine-proc construct reappears — `sim.Proc`, a `.Sleep(` or `.Sync(`
// call, or a `.Spawn(` (the continuation entry point `.SpawnTask(` is a
// distinct token and stays legal). New cold paths belong outside the hot
// packages or in handoffFreeAllowlist with a justification.
func TestHotStacksHandoffFree(t *testing.T) {
	for _, pkg := range hotPackages {
		entries, err := os.ReadDir(pkg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(pkg, name)
			if why, ok := handoffFreeAllowlist[filepath.ToSlash(path)]; ok {
				t.Logf("allowlisted %s: %s", path, why)
				continue
			}
			for _, v := range scanBlockingTokens(t, path) {
				t.Errorf("%s: %s — hot stacks must stay continuation-only (use sim.Task frames; see ARCHITECTURE.md)", v.pos, v.what)
			}
		}
	}
}

// violation is one blocking construct found by the token scan.
type violation struct {
	pos  token.Position
	what string
}

// scanBlockingTokens tokenizes one file and reports the forbidden blocking
// constructs. Working on the token stream (rather than the raw text) means
// comments and string literals cannot trip the gate, and `.SpawnTask(` is
// naturally distinct from `.Spawn(`.
func scanBlockingTokens(t *testing.T, path string) []violation {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	file := fset.AddFile(path, fset.Base(), len(src))
	var s scanner.Scanner
	s.Init(file, src, func(pos token.Position, msg string) {
		t.Errorf("%s: scan error: %s", pos, msg)
	}, 0)

	// A sliding window of the last three (token, literal) pairs.
	type tok struct {
		kind token.Token
		lit  string
	}
	var w [3]tok
	var vs []violation
	for {
		pos, kind, lit := s.Scan()
		if kind == token.EOF {
			break
		}
		w[0], w[1], w[2] = w[1], w[2], tok{kind, lit}
		// sim.Proc anywhere (parameter, field, conversion).
		if w[0].kind == token.IDENT && w[0].lit == "sim" &&
			w[1].kind == token.PERIOD &&
			w[2].kind == token.IDENT && w[2].lit == "Proc" {
			vs = append(vs, violation{fset.Position(pos), "references sim.Proc"})
		}
		// .Sleep( / .Sync( / .Spawn( method calls.
		if w[0].kind == token.PERIOD && w[1].kind == token.IDENT && w[2].kind == token.LPAREN {
			switch w[1].lit {
			case "Sleep", "Sync", "Spawn":
				vs = append(vs, violation{fset.Position(pos), fmt.Sprintf("calls .%s(", w[1].lit)})
			}
		}
	}
	return vs
}
