package breakband

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/measure"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/stats"
	"breakband/internal/topo"
	"breakband/internal/units"
	"breakband/internal/workload"
)

// TestGoldenKernelOutputs pins the simulation's outputs, bit for bit, at a
// fixed seed across every benchmark family and a reduced measurement
// campaign. The fixture in testdata/golden_kernel.json was captured with the
// pre-optimization kernel (container/heap + one goroutine handoff per
// Sleep); the pooled 4-ary heap, the batched Advance/Sync time advancement,
// and the pooled zero-allocation device datapath must reproduce it exactly —
// same virtual timestamps, same RNG draws, same counters — or an
// optimization changed simulation semantics.
//
// multiput_noiseon was re-captured when per-core jitter streams landed:
// each simulated core now draws from its own stream derived from the
// campaign seed and the core identity (so co-node cores' draws no longer
// depend on event scheduling order), which deliberately changes the NoiseOn
// multi-core draw sequences. Every other entry is pre-rewrite bit-identical.
//
// The incast_* and alltoall_* entries pin the N-node congestion scenarios
// added with the internal/topo layer (PR 4); the pre-existing two-node
// entries were untouched by that change — the two-endpoint path routes
// through topo's calibrated ideal tier, which reproduces fabric.Network
// exactly.
//
// The incast_* entries were re-captured when receiver-side backpressure
// landed (PR 5): the NIC now defers a delivered frame's release until its
// host-memory write is actually issued on the PCIe link, so under a
// saturating 4 KiB incast the final-hop fabric credits — not an unbounded
// NIC->RC pend queue — absorb the overload and the contended steady state
// deliberately moved from the shared port's wire rate to the receiver's
// PCIe credit round trip. Every two-node entry was verified byte-identical
// before the recapture, which also added the oversub_* keys. The same PR's
// PCIe transaction-ordering fix (nothing passes a blocked posted write;
// non-posted reads keep FIFO) shifted the alltoall_* MaxSwitchQueue stat
// by exactly one — every rate, message and stall number in those entries
// is unchanged — and they were re-captured with it.
//
// The lossy_* and flap_* entries pin the fault-injection / transport-
// reliability layer (PR 7): a Bernoulli-lossy two-node stream recovered by
// PSN sequence checking, ACK timeouts and go-back-N replay, and a fat-tree
// incast that loses a leaf uplink mid-run and fails over via ECMP. Every
// pre-existing entry was verified byte-identical when they were added —
// with no fault schedule the injector is never compiled, the NIC arms no
// timers, and frames carry the same bytes as before.
//
// The chaos_* entries pin the endpoint failure model (PR 8): a seeded
// randomized schedule of wire loss, uplink flaps, NIC crashes and host
// pauses over an 8-node fat-tree, with error CQEs flushing posted work and
// per-request errors propagating through uct/ucp/mpi to the soak's
// invariant checks. Every pre-existing entry was verified byte-identical
// when they were added — endpoint faults only exist when a schedule names
// them, and the soak builds its own system.
//
// Refresh (only for intentional semantic changes, never to paper over a
// kernel regression): GOLDEN_UPDATE=1 go test -run TestGoldenKernelOutputs .
func TestGoldenKernelOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden kernel fingerprint in -short mode")
	}
	got := kernelFingerprint()

	path := filepath.Join("testdata", "golden_kernel.json")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d entries)", path, len(got))
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with GOLDEN_UPDATE=1 to capture): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden fixture: %v", err)
	}

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got[k] != want[k] {
			t.Errorf("%s:\n  got  %s\n  want %s", k, got[k], want[k])
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: new fingerprint entry missing from fixture (re-capture)", k)
		}
	}
}

// kernelFingerprint runs every benchmark family at a fixed seed in both
// noise modes and renders each output with full float64 round-trip
// precision, so any change to event ordering, virtual timestamps, or RNG
// draw sequences shows up as a diff.
func kernelFingerprint() map[string]string {
	fp := map[string]string{}
	for _, nc := range []struct {
		name  string
		noise bool
	}{{"noiseoff", false}, {"noiseon", true}} {
		opts := Options{Noise: nc.noise, Seed: 7}

		pb := RunPutBw(opts, 300)
		fp["putbw_"+nc.name] = fmt.Sprintf("meaninj=%s busy=%d inj=%s",
			g(pb.MeanInjNs), pb.BusyPosts, summaryString(pb.InjDist))

		al := RunAmLat(opts, 200)
		fp["amlat_"+nc.name] = fmt.Sprintf("reported=%s adjusted=%s rtt=%s",
			g(al.ReportedNs), g(al.AdjustedNs), summaryString(al.RTT))

		mr := RunMessageRate(opts, 5)
		fp["osumr_"+nc.name] = fmt.Sprintf("meaninj=%s busy=%d msgs=%d",
			g(mr.MeanInjNs), mr.BusyPosts, mr.Messages)

		lat := RunMPILatency(opts, 150)
		fp["osulat_"+nc.name] = fmt.Sprintf("oneway=%s rtt=%s",
			g(lat.OneWayNs), summaryString(lat.RTT))

		wsys := opts.NewSystem()
		wr := perftest.WindowedPutBw(wsys, 32, 320)
		wsys.Shutdown()
		fp["windowed_"+nc.name] = fmt.Sprintf("permsg=%s", g(wr.PerMsgNs))

		msys := opts.NewSystem()
		mp := perftest.MultiPutBw(msys, 3, perftest.Options{Iters: 150, Warmup: 30})
		msys.Shutdown()
		fp["multiput_"+nc.name] = fmt.Sprintf("permsg=%s blocked=%d msgs=%d",
			g(mp.PerMsgNs), mp.LinkBlocked, mp.Messages)

		noise := config.NoiseOff
		if nc.noise {
			noise = config.NoiseOn
		}

		// N-node congestion scenarios over the internal/topo layer:
		// 4-sender incast across one shared single-switch port, and
		// the uniform all-to-all matrix over a radix-4 fat-tree.
		icfg := config.TX2CX4(noise, 7, true)
		icfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
		isys := node.NewSystem(icfg, 5)
		ir := perftest.IncastPutBw(isys, 4, perftest.Options{Iters: 150, Warmup: 60, MsgSize: 4096})
		isys.Shutdown()
		fp["incast_"+nc.name] = fmt.Sprintf("persender=%s queue=%d stalls=%d msgs=%d",
			g(ir.PerSenderMsgRate), ir.MaxSwitchQueue, ir.CreditStalls, ir.Messages)

		acfg := config.TX2CX4(noise, 7, true)
		acfg.Topology = topo.Spec{Kind: topo.FatTree}
		asys := node.NewSystem(acfg, 8)
		ar := perftest.AllToAllPutBw(asys, perftest.Options{Iters: 40, Warmup: 10, MsgSize: 1024})
		asys.Shutdown()
		fp["alltoall_"+nc.name] = fmt.Sprintf("agg=%s queue=%d stalls=%d msgs=%d",
			g(ar.AggMsgRate), ar.MaxSwitchQueue, ar.CreditStalls, ar.Messages)

		// Bounded receiver buffering (PR 5): the rx budget is set below
		// the per-link credits so the fingerprint pins the whole RNR
		// NAK / backoff / go-back-N replay machinery, not just the
		// credit-gated path.
		ocfg := config.TX2CX4(noise, 7, true)
		ocfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
		ocfg.NICRxBudget = 8
		osys := node.NewSystem(ocfg, 5)
		or := perftest.OversubscribedPutBw(osys, 4, perftest.Options{Iters: 150, Warmup: 60, MsgSize: 4096})
		osys.Shutdown()
		fp["oversub_"+nc.name] = fmt.Sprintf("persender=%s held=%d pend=%d naks=%d replays=%d stall=%s msgs=%d",
			g(or.PerSenderMsgRate), or.MaxRxHeld, or.MaxUpPend, or.RNRNaks,
			or.Retransmits, g(or.RetryStall.Ns()), or.Messages)

		// Transport reliability under injected faults (PR 7): a lossy
		// two-node stream (Bernoulli drop + corruption, PSN recovery) and
		// the fat-tree flap incast (ECMP failover, timeout replay,
		// restore). Faults-disabled entries above are untouched — with no
		// schedule the injector is never compiled and the NIC never arms a
		// timer.
		lcfg := config.TX2CX4(noise, 7, true)
		lcfg.Faults.DropRate = 0.02
		lcfg.Faults.CorruptRate = 0.02
		lsys := node.NewSystem(lcfg, 2)
		lr := perftest.LossyPutBw(lsys, perftest.Options{Iters: 400, MsgSize: 32})
		lsys.Shutdown()
		fp["lossy_"+nc.name] = fmt.Sprintf("delivered=%d elapsed=%s drops=%d corrupt=%d timeouts=%d naks=%d replays=%d",
			lr.Delivered, g(lr.Elapsed.Ns()), lr.WireDropped, lr.WireCorrupted,
			lr.SenderStats.AckTimeouts, lr.SenderStats.SeqNaksRecv, lr.SenderStats.Retransmits)

		fcfg := config.TX2CX4(noise, 7, true)
		fcfg.Topology = topo.Spec{Kind: topo.FatTree, Radix: 4}
		fcfg.Faults.Flaps = []faults.Flap{{
			Port: "leaf1.up0",
			Down: units.Microseconds(15), Up: units.Microseconds(25),
		}}
		fsys := node.NewSystem(fcfg, 6)
		fr := perftest.FlapIncastPutBw(fsys, 4, perftest.Options{Iters: 150, Warmup: 1, MsgSize: 4096})
		fsys.Shutdown()
		fp["flap_"+nc.name] = fmt.Sprintf("elapsed=%s pre=%s dip=%s post=%s drops=%d timeouts=%d replays=%d",
			g(fr.Elapsed.Ns()), g(fr.PreRate), g(fr.DipRate), g(fr.PostRate),
			fr.WireDropped, fr.AckTimeouts, fr.Retransmits)

		// Endpoint failure + chaos soak (PR 8): a seeded fault schedule
		// (wire loss, uplink flaps, NIC crashes, host pauses) over an
		// 8-node fat-tree with mixed pair traffic. Pins the crash/flush
		// CQE machinery, per-request error propagation, and the soak's
		// deterministic termination point. Faults-free entries above are
		// untouched: endpoint faults only compile when scheduled.
		ccfg := config.TX2CX4(noise, 7, true)
		cr := perftest.ChaosSoak(ccfg, 7, perftest.ChaosOptions{Total: 120})
		delivered := make([]string, len(cr.Pairs))
		for i, p := range cr.Pairs {
			delivered[i] = fmt.Sprintf("%d", p.Delivered)
		}
		fp["chaos_"+nc.name] = fmt.Sprintf("pass=%v delivered=%s events=%d end=%s crashes=%d pauses=%d flaps=%d drops=%d qpfails=%d flushed=%d",
			cr.Passed(), strings.Join(delivered, ","), cr.Events, g(cr.EndTime.Ns()),
			cr.Crashes, cr.Pauses, cr.Flaps, cr.WireDropped, cr.QPFails, cr.FlushedRecvs)

		// Declarative open-loop workloads (PR 10): a compact two-cohort
		// mixed-tenant spec over the 8-node fat-tree pins the per-client
		// RNG streams, the envelope operational time change, every size
		// distribution draw path and the paced continuation injectors —
		// plus the recorded trace bytes, hashed. Pre-existing entries are
		// untouched: the workload layer builds its own systems.
		wspec := goldenWorkloadSpec()
		wlsys := node.NewSystem(wspec.BuildConfig(noise, 7), wspec.Nodes)
		wres, werr := workload.Run(wspec, wlsys, workload.RunOpt{Record: true})
		wlsys.Shutdown()
		if werr != nil {
			panic(fmt.Sprintf("golden workload run: %v", werr))
		}
		parts := make([]string, len(wres.Cohorts))
		for i := range wres.Cohorts {
			c := &wres.Cohorts[i]
			parts[i] = fmt.Sprintf("%s:offered=%d delivered=%d bytes=%d first=%s last=%s lat=%s",
				c.Name, c.Offered, c.Delivered, c.Bytes, g(c.FirstAt.Ns()), g(c.LastDone.Ns()),
				summaryString(c.Latency.Summarize()))
		}
		h := fnv.New64a()
		h.Write(wres.Trace.Encode())
		fp["workload_"+nc.name] = fmt.Sprintf("%s trace=%016x", strings.Join(parts, " | "), h.Sum64())

		mk := func() *config.Config { return config.TX2CX4(noise, 7, true) }
		res := measure.Run(mk, measure.Opts{Samples: 100, Windows: 4, Parallelism: 2})
		fp["campaign_components_"+nc.name] = structFloats(res.Components)
		fp["campaign_observed_"+nc.name] = fmt.Sprintf("inj=%s llplat=%s overall=%s e2e=%s busyperop=%s",
			summaryString(res.Observed.LLPInjection), g(res.Observed.LLPLatencyNs),
			g(res.Observed.OverallInjectionNs), g(res.Observed.E2ELatencyNs), g(res.BusyPerOp))
	}
	return fp
}

// goldenWorkloadSpec is the fingerprint's two-cohort mixed-tenant workload:
// bursty Weibull small-put traffic with a mid-run surge envelope against a
// steady Gamma stream of lognormal-sized transfers flowing the other way.
func goldenWorkloadSpec() *workload.Spec {
	return &workload.Spec{
		Name:     "golden-mixed",
		Nodes:    8,
		Topology: "fattree",
		Cohorts: []workload.Cohort{{
			Name:     "bursty",
			Clients:  24,
			Src:      []int{4, 5, 6, 7},
			Dst:      []int{0, 1},
			Duration: units.Microseconds(120),
			Arrival:  workload.ArrivalSpec{Process: workload.ProcWeibull, Rate: 25e3, Shape: 0.7},
			Size: workload.SizeSpec{Dist: workload.SizeDistChoice, Choices: []workload.SizeChoice{
				{Bytes: 32, Weight: 3}, {Bytes: 256, Weight: 1}}},
			Envelope: []workload.EnvelopeWindow{{
				From: units.Microseconds(40), To: units.Microseconds(80), Factor: 3}},
		}, {
			Name:     "steady",
			Clients:  8,
			Src:      []int{0, 1},
			Dst:      []int{4, 5, 6, 7},
			Start:    units.Microseconds(20),
			Duration: units.Microseconds(80),
			Arrival:  workload.ArrivalSpec{Process: workload.ProcGamma, Rate: 10e3, Shape: 4},
			Size:     workload.SizeSpec{Dist: workload.SizeDistLogNormal, Mean: 1024, CV: 0.5},
		}},
	}
}

// g renders a float64 with shortest round-trip precision.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// summaryString renders a stats.Summary exactly.
func summaryString(s stats.Summary) string {
	return fmt.Sprintf("{n=%d mean=%s std=%s min=%s med=%s max=%s}",
		s.N, g(s.Mean), g(s.Std), g(s.Min), g(s.Median), g(s.Max))
}

// structFloats renders every float64 field of a struct as name=value.
func structFloats(v any) string {
	rv := reflect.ValueOf(v)
	rt := rv.Type()
	out := ""
	for i := 0; i < rv.NumField(); i++ {
		if rt.Field(i).Type.Kind() != reflect.Float64 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += rt.Field(i).Name + "=" + g(rv.Field(i).Float())
	}
	return out
}
