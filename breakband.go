// Package breakband reproduces "Breaking Band: A Breakdown of
// High-performance Communication" (Zambre, Grodowitz, Chandramowlishwaran,
// Shamis; ICPP 2019) as a simulation-backed Go library.
//
// The package is the public face of the repository: it builds calibrated
// two-node systems (an Arm ThunderX2-class server with a ConnectX-4-class
// InfiniBand adapter, modelled end to end down to PCIe TLPs), re-executes
// the paper's measurement methodology, assembles its analytical models of
// injection overhead and end-to-end latency, regenerates every table and
// figure of the evaluation, and runs the §7 what-if optimization analysis —
// including checking the analytical predictions against live simulation.
//
// Quick start:
//
//	res := breakband.Reproduce(breakband.Options{})
//	fmt.Println(res.Table1())
//	fmt.Println(res.RenderValidations())
//	fmt.Println(res.Figure("fig13"))
//
// Building & running (a plain Go module, no dependencies outside the
// standard library):
//
//	go build ./...              # library + bbperftest, bbosu, breakband commands
//	go vet ./...
//	go test ./...               # add -race to exercise the parallel campaign
//	go run ./cmd/breakband all  # regenerate every table and figure
//
// The measurement campaign is embarrassingly parallel: the paper's §3
// methodology gives every sub-measurement its own freshly built system, so
// Reproduce fans them out on a bounded worker pool sized by
// Options.Parallelism (default runtime.GOMAXPROCS). Parallel and serial
// campaigns are bit-identical at the same seed — every task derives its own
// noise stream from the campaign seed and its task name.
//
// ARCHITECTURE.md maps every internal package to its layer and paper
// section, documents the event/ownership/credit contracts, and catalogs
// the runnable scenarios (put_bw, am_lat, multicore, incast, all-to-all,
// oversubscribed) with the command that drives each.
package breakband

import (
	"fmt"
	"strings"

	"breakband/internal/config"
	"breakband/internal/core/breakdown"
	"breakband/internal/core/model"
	"breakband/internal/core/whatif"
	"breakband/internal/measure"
	"breakband/internal/node"
	"breakband/internal/report"
)

// Options selects the system variant and campaign size.
type Options struct {
	// Noise enables the stochastic timing model (lognormal software
	// jitter plus rare preemption spikes). Off, every run is exact
	// arithmetic.
	Noise bool
	// Seed drives all randomness when Noise is on.
	Seed uint64
	// DirectCable removes the switch (the paper's main configuration
	// includes it).
	DirectCable bool
	// Samples is the per-component sample count for measurement
	// (default 400; the paper requires at least 100).
	Samples int
	// Windows is the message-rate window count (default 20).
	Windows int
	// Parallelism bounds the measurement campaign's worker pool. Zero (or
	// negative) selects runtime.GOMAXPROCS(0); 1 forces serial execution.
	// The pool width never changes results: each sub-measurement runs on
	// its own fresh system with a task-derived random stream, so parallel
	// campaigns are bit-identical to serial ones at the same seed.
	Parallelism int
}

// configMaker returns a fresh-config constructor for these options.
func (o Options) configMaker() func() *config.Config {
	noise := config.NoiseOff
	if o.Noise {
		noise = config.NoiseOn
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return func() *config.Config {
		return config.TX2CX4(noise, seed, !o.DirectCable)
	}
}

// NewSystem builds one calibrated two-node system for direct experimentation
// with the internal benchmarks (the examples show idiomatic use).
func (o Options) NewSystem() *node.System {
	return node.NewSystem(o.configMaker()(), 2)
}

// NewNodeSystem builds an n-node system over the compiled topology (a
// shared single switch by default; set Config.Topology via the internal
// packages for fat-trees) with every NIC's receive pend budget set to
// rxBudget (0 = unbounded) — the entry point for the congestion scenarios
// in internal/perftest (incast, all-to-all, oversubscribed). See
// ARCHITECTURE.md's scenario catalog.
func (o Options) NewNodeSystem(n, rxBudget int) *node.System {
	cfg := o.configMaker()()
	cfg.NICRxBudget = rxBudget
	return node.NewSystem(cfg, n)
}

// Results is a completed reproduction: the measured component table, the
// observed benchmark values, and everything derived from them.
type Results struct {
	Opts     Options
	Measured *measure.Result
}

// Reproduce runs the full measurement campaign and returns the results.
func Reproduce(opts Options) *Results {
	mo := measure.DefaultOpts()
	if opts.Samples > 0 {
		mo.Samples = opts.Samples
	}
	if opts.Windows > 0 {
		mo.Windows = opts.Windows
	}
	mo.Parallelism = opts.Parallelism
	return &Results{Opts: opts, Measured: measure.Run(opts.configMaker(), mo)}
}

// Components returns the measured component table (the Table-1
// reproduction).
func (r *Results) Components() model.Components { return r.Measured.Components }

// PaperComponents returns the component table populated from the paper's
// published Table 1, for side-by-side comparison.
func PaperComponents() model.Components { return model.Paper() }

// Validations returns the four §4/§6 model-vs-observed comparisons.
func (r *Results) Validations() []model.Validation { return r.Measured.Validations() }

// RenderValidations renders them with the paper's corresponding numbers.
func (r *Results) RenderValidations() string {
	t := &report.Table{
		Title:   "Model validation (paper: all within 5%)",
		Headers: []string{"quantity", "modeled ns", "observed ns", "error", "paper modeled", "paper observed"},
	}
	paper := [][2]float64{
		{config.TabLLPInjModel, config.TabObsLLPInjection},
		{config.TabLLPLatencyModel, config.TabObsLLPLatency},
		{264.97, config.TabObsOverallInj},
		{config.TabE2ELatencyModel, config.TabObsE2ELatency},
	}
	for i, v := range r.Validations() {
		t.AddRow(v.Name,
			fmt.Sprintf("%.2f", v.ModeledNs),
			fmt.Sprintf("%.2f", v.ObservedNs),
			fmt.Sprintf("%+.2f%%", v.ErrPct),
			fmt.Sprintf("%.2f", paper[i][0]),
			fmt.Sprintf("%.2f", paper[i][1]))
	}
	return t.String()
}

// Table1 renders the measured component table next to the paper's values.
func (r *Results) Table1() string {
	c := r.Components()
	t := &report.Table{
		Title:   "Table 1: measured times of various components (ns)",
		Headers: []string{"component", "measured", "paper"},
	}
	rows := []struct {
		name   string
		ours   float64
		theirs float64
	}{
		{"Message descriptor setup", c.MDSetup, config.TabMDSetup},
		{"Barrier for message descriptor", c.BarrierMD, config.TabBarrierMD},
		{"Barrier for DoorBell counter", c.BarrierDBC, config.TabBarrierDBC},
		{"PIO copy (64 bytes)", c.PIOCopy, config.TabPIOCopy},
		{"Miscellaneous in LLP_post", c.LLPPostMisc(), config.TabLLPPostMisc},
		{"LLP_post (total of above)", c.LLPPost, config.TabLLPPost},
		{"LLP_prog", c.LLPProg, config.TabLLPProg},
		{"Busy post", c.BusyPost, config.TabBusyPost},
		{"Measurement update", c.MeasUpdate, config.TabMeasUpdate},
		{"Misc in Inj_overhead (total of above)", c.BusyPost + c.MeasUpdate, config.TabMiscInj},
		{"PCIe for a 64-byte payload", c.PCIe, config.TabPCIe},
		{"Wire", c.Wire, config.TabWire},
		{"Switch", c.Switch, config.TabSwitch},
		{"Network (total of above)", c.Network(), config.TabNetwork},
		{"RC-to-MEM(8B)", c.RCToMem8, config.TabRCToMem8},
		{"MPI_Isend in MPICH", c.HLPPostMPICH, config.TabMPIIsendMPICH},
		{"MPI_Isend in UCP", c.HLPPostUCP, config.TabMPIIsendUCP},
		{"Callback for a completed MPI_Irecv in MPICH", c.MPICHRecvCB, config.TabMPICHRecvCB},
		{"Successful MPI_Wait for MPI_Irecv in MPICH", c.WaitMPICH, config.TabMPIWaitMPICH},
		{"Callback for a completed MPI_Irecv in UCP", c.UCPRecvCB, config.TabUCPRecvCB},
		{"Successful MPI_Wait for MPI_Irecv in UCP", c.WaitUCP, config.TabMPIWaitUCP},
	}
	for _, row := range rows {
		t.AddRow(row.name, fmt.Sprintf("%.2f", row.ours), fmt.Sprintf("%.2f", row.theirs))
	}
	return t.String()
}

// Figure renders a figure by its paper number: fig4, fig6, fig7, fig8,
// fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17a-fig17d (or fig17
// for all four panels).
func (r *Results) Figure(id string) string {
	c := r.Components()
	const width = 64
	switch strings.ToLower(id) {
	case "fig4":
		return report.Bar(breakdown.Fig4LLPPost(c), width)
	case "fig7":
		return r.renderFig7()
	case "fig8":
		return report.Bar(breakdown.Fig8Injection(c), width)
	case "fig10":
		return report.Bar(breakdown.Fig10Latency(c), width)
	case "fig11":
		return report.Bars(breakdown.Fig11HLP(c), width)
	case "fig12":
		return report.Bar(breakdown.Fig12OverallInjection(c), width)
	case "fig13":
		return report.Bar(breakdown.Fig13E2ELatency(c), width)
	case "fig14":
		return report.Bars(breakdown.Fig14HLPvsLLP(c), width)
	case "fig15":
		return report.Bars(breakdown.Fig15HighLevel(c), width)
	case "fig16":
		return report.Bars(breakdown.Fig16OnNode(c), width)
	case "fig17a":
		return report.SeriesChart("Fig 17a: CPU reductions vs injection speedup", whatif.Fig17aCPUInjection(c), 12) +
			report.SeriesTable("", whatif.Fig17aCPUInjection(c)).String()
	case "fig17b":
		return report.SeriesChart("Fig 17b: CPU reductions vs latency speedup", whatif.Fig17bCPULatency(c), 12) +
			report.SeriesTable("", whatif.Fig17bCPULatency(c)).String()
	case "fig17c":
		return report.SeriesChart("Fig 17c: I/O reductions vs latency speedup", whatif.Fig17cIOLatency(c), 12) +
			report.SeriesTable("", whatif.Fig17cIOLatency(c)).String()
	case "fig17d":
		return report.SeriesChart("Fig 17d: network reductions vs latency speedup", whatif.Fig17dNetworkLatency(c), 12) +
			report.SeriesTable("", whatif.Fig17dNetworkLatency(c)).String()
	case "fig17":
		return r.Figure("fig17a") + "\n" + r.Figure("fig17b") + "\n" +
			r.Figure("fig17c") + "\n" + r.Figure("fig17d")
	default:
		return fmt.Sprintf("unknown figure %q (try fig4, fig7, fig8, fig10..fig17)", id)
	}
}

// renderFig7 renders the observed injection-overhead statistics held in the
// campaign summary. (The cmd/breakband fig7 command renders the full
// histogram from a dedicated high-iteration run via RunPutBw.)
func (r *Results) renderFig7() string {
	s := r.Measured.Observed.LLPInjection
	var sb strings.Builder
	sb.WriteString("Fig 7: distribution of the observed injection overhead (ns)\n")
	fmt.Fprintf(&sb, "Mean: %.2f  Median: %.2f  Min: %.2f  Max: %.2f  Std dev: %.4f  (n=%d)\n",
		s.Mean, s.Median, s.Min, s.Max, s.Std, s.N)
	sb.WriteString(Fig7PaperLine() + "\n")
	return sb.String()
}

// Fig7PaperLine renders the paper's Figure-7 distribution statistics (the
// reference line under every Figure-7 rendering).
func Fig7PaperLine() string {
	return fmt.Sprintf("Paper: Mean %.2f  Median %.2f  Min %.2f  Max %.2f  Std dev %.4f",
		config.TabObsLLPInjection, config.TabFig7Median, config.TabFig7Min,
		config.TabFig7Max, config.TabFig7Std)
}

// Breakdowns returns all figure datasets for programmatic use.
func (r *Results) Breakdowns() map[string][]breakdown.Breakdown {
	c := r.Components()
	return map[string][]breakdown.Breakdown{
		"fig4":  {breakdown.Fig4LLPPost(c)},
		"fig8":  {breakdown.Fig8Injection(c)},
		"fig10": {breakdown.Fig10Latency(c)},
		"fig11": breakdown.Fig11HLP(c),
		"fig12": {breakdown.Fig12OverallInjection(c)},
		"fig13": {breakdown.Fig13E2ELatency(c)},
		"fig14": breakdown.Fig14HLPvsLLP(c),
		"fig15": breakdown.Fig15HighLevel(c),
		"fig16": breakdown.Fig16OnNode(c),
	}
}

// WhatIf returns the §7 optimization scenarios with their Figure-17 curves.
func (r *Results) WhatIf() []whatif.Optimization {
	return whatif.Optimizations(r.Components())
}
