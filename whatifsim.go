package breakband

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/core/model"
	"breakband/internal/core/whatif"
	"breakband/internal/osu"
	"breakband/internal/rng"
)

// Metric selects which overall quantity a simulated optimization is
// evaluated against.
type Metric int

// Metrics.
const (
	// Latency is the OSU end-to-end one-way latency (Figure 17 b/c/d).
	Latency Metric = iota
	// Injection is the OSU overall injection overhead (Figure 17a).
	Injection
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	if m == Injection {
		return "injection"
	}
	return "latency"
}

// Component names an optimizable part of the system for simulation-backed
// what-if analysis.
type Component string

// Components supported by SimulateOptimization.
const (
	CompPIO     Component = "pio"       // the 64-byte PIO copy
	CompLLPPost Component = "llp_post"  // the whole LLP initiation
	CompHLPPost Component = "hlp_post"  // MPI_Isend above the LLP
	CompHLPRx   Component = "hlp_rx"    // the HLP receive-progress path
	CompPCIe    Component = "pcie"      // the PCIe link (both crossings)
	CompRCToMem Component = "rc_to_mem" // the RC's memory-commit latency
	CompIO      Component = "io"        // integrated NIC: PCIe + RC-to-MEM
	CompWire    Component = "wire"      // the interconnect cable
	CompSwitch  Component = "switch"    // the switch forwarding latency
)

// Components lists every supported component.
func Components() []Component {
	return []Component{
		CompPIO, CompLLPPost, CompHLPPost, CompHLPRx,
		CompPCIe, CompRCToMem, CompIO, CompWire, CompSwitch,
	}
}

// WhatIfCheck compares the paper's analytical speedup prediction against the
// speedup actually realized when the optimization is applied inside the
// event-driven simulation (§7 asserts a distributed-system simulator yields
// the same linear speedups; here we verify it).
type WhatIfCheck struct {
	Component Component
	Metric    Metric
	Reduction float64
	// BaselineNs and OptimizedNs are the simulated overall times.
	BaselineNs, OptimizedNs float64
	// PredictedPct is the model's speedup; SimulatedPct the realized one.
	PredictedPct, SimulatedPct float64
}

// String implements fmt.Stringer.
func (w WhatIfCheck) String() string {
	return fmt.Sprintf("%-9s %-9s -%2.0f%%: predicted %5.2f%%, simulated %5.2f%% (%.2f -> %.2f ns)",
		w.Component, w.Metric, w.Reduction*100, w.PredictedPct, w.SimulatedPct,
		w.BaselineNs, w.OptimizedNs)
}

// scale wraps a distribution to run at (1 - r) of its base cost.
func scale(d rng.Dist, r float64) rng.Dist {
	return rng.Scaled{Base: d, Factor: 1 - r}
}

// applyOptimization rewrites cfg so that the component runs r (0..1) faster.
func applyOptimization(cfg *config.Config, comp Component, r float64) {
	switch comp {
	case CompPIO:
		cfg.SW.PIOCopy = scale(cfg.SW.PIOCopy, r)
	case CompLLPPost:
		cfg.SW.LLPPostEntry = scale(cfg.SW.LLPPostEntry, r)
		cfg.SW.MDSetup = scale(cfg.SW.MDSetup, r)
		cfg.SW.BarrierMD = scale(cfg.SW.BarrierMD, r)
		cfg.SW.DBCIncrement = scale(cfg.SW.DBCIncrement, r)
		cfg.SW.BarrierDBC = scale(cfg.SW.BarrierDBC, r)
		cfg.SW.PIOCopy = scale(cfg.SW.PIOCopy, r)
		cfg.SW.LLPPostExit = scale(cfg.SW.LLPPostExit, r)
	case CompHLPPost:
		cfg.SW.MpiIsend = scale(cfg.SW.MpiIsend, r)
		cfg.SW.UcpIsend = scale(cfg.SW.UcpIsend, r)
	case CompHLPRx:
		cfg.SW.UcpRecvCB = scale(cfg.SW.UcpRecvCB, r)
		cfg.SW.MpichRecvCB = scale(cfg.SW.MpichRecvCB, r)
		cfg.SW.MpichAfterPrg = scale(cfg.SW.MpichAfterPrg, r)
	case CompPCIe:
		cfg.Link.Prop = scaleTime(cfg.Link.Prop, r)
	case CompRCToMem:
		cfg.RC.RCToMemBase = scaleTime(cfg.RC.RCToMemBase, r)
	case CompIO:
		cfg.Link.Prop = scaleTime(cfg.Link.Prop, r)
		cfg.RC.RCToMemBase = scaleTime(cfg.RC.RCToMemBase, r)
	case CompWire:
		cfg.Fabric.WireProp = scaleTime(cfg.Fabric.WireProp, r)
	case CompSwitch:
		cfg.Fabric.SwitchLatency = scaleTime(cfg.Fabric.SwitchLatency, r)
	default:
		panic(fmt.Sprintf("breakband: unknown component %q", comp))
	}
}

// componentNs maps a Component to its modelled T_X for the given metric
// (paper §7 definitions).
func componentNs(c model.Components, comp Component, m Metric) float64 {
	switch comp {
	case CompPIO:
		return c.PIOCopy
	case CompLLPPost:
		return c.LLPPost
	case CompHLPPost:
		return c.HLPPost()
	case CompHLPRx:
		return c.HLPRxProg()
	case CompPCIe:
		if m == Injection {
			return 0 // overlapped with CPU time in the injection model
		}
		return 2 * c.PCIe
	case CompRCToMem:
		if m == Injection {
			return 0
		}
		return c.RCToMem8
	case CompIO:
		if m == Injection {
			return 0
		}
		return 2*c.PCIe + c.RCToMem8
	case CompWire:
		if m == Injection {
			return 0
		}
		return c.Wire
	case CompSwitch:
		if m == Injection {
			return 0
		}
		return c.Switch
	default:
		panic(fmt.Sprintf("breakband: unknown component %q", comp))
	}
}

// totalNs picks the model total for the metric.
func totalNs(c model.Components, m Metric) float64 {
	if m == Injection {
		return c.OverallInjection()
	}
	return c.E2ELatency()
}

// SimulateOptimization reduces comp by reduction (0..1), reruns the
// benchmark behind metric, and compares the realized speedup with the
// analytical prediction. The prediction uses the paper's calibrated
// component table; the simulation uses the live system.
func SimulateOptimization(opts Options, comp Component, metric Metric, reduction int) WhatIfCheck {
	if reduction <= 0 || reduction >= 100 {
		panic(fmt.Sprintf("breakband: reduction must be 1..99, got %d", reduction))
	}
	r := float64(reduction) / 100
	run := func(optimize bool) float64 {
		cfg := opts.configMaker()()
		if optimize {
			applyOptimization(cfg, comp, r)
		}
		sys := systemFromConfig(cfg)
		defer sys.Shutdown()
		switch metric {
		case Injection:
			return osu.MessageRate(sys, osu.Options{Windows: 12}).MeanInjNs
		default:
			return osu.Latency(sys, osu.Options{Iters: 400}).ReportedNs
		}
	}
	base := run(false)
	opt := run(true)

	ref := model.Paper()
	predicted := whatif.Speedup(componentNs(ref, comp, metric), totalNs(ref, metric), r)
	return WhatIfCheck{
		Component:    comp,
		Metric:       metric,
		Reduction:    r,
		BaselineNs:   base,
		OptimizedNs:  opt,
		PredictedPct: predicted,
		SimulatedPct: (base - opt) / base * 100,
	}
}
