// Package vtimer models the CPU's architected counter timer.
//
// The paper measures software with aarch64's cntvct_el0 register preceded by
// an isb barrier. We reproduce that as a virtual counter derived from the
// simulation clock: reading it costs simulated time (the isb + system-register
// read + bookkeeping), and the returned value is quantized to the counter
// frequency. The profiling infrastructure in internal/profile calibrates and
// removes that cost exactly as UCS profiling does on real hardware.
package vtimer

import (
	"math/bits"

	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// Timer is a virtual counter timer attached to a simulation kernel.
type Timer struct {
	k *sim.Kernel
	// FreqHz is the counter frequency. The ThunderX2 generic timer runs at
	// a fixed low frequency; "precise CPU timers" (which the paper's
	// methodology requires) are modelled with a 1 THz counter (1 ps
	// resolution). Lower values demonstrate quantization error.
	freqHz uint64
	// isb is the cost of the barrier executed before the counter read.
	isb rng.Dist
	// read is the cost of the register read plus recording the sample.
	read rng.Dist
	r    *rng.Rand
}

// New builds a timer. r may be nil when isb/read are deterministic.
func New(k *sim.Kernel, freqHz uint64, isb, read rng.Dist, r *rng.Rand) *Timer {
	if freqHz == 0 {
		panic("vtimer: zero frequency")
	}
	return &Timer{k: k, freqHz: freqHz, isb: isb, read: read, r: r}
}

// FreqHz reports the counter frequency.
func (t *Timer) FreqHz() uint64 { return t.freqHz }

// Counter reports the current raw counter value without any cost. It is the
// value an instantaneous observer would see; software must use Read.
func (t *Timer) Counter() uint64 {
	return t.counterAt(t.k.Now())
}

func (t *Timer) counterAt(at units.Time) uint64 {
	// ticks = at * freq / 1e12. The sub-second remainder times the
	// frequency can exceed 64 bits (it does at 1 THz), so the product is
	// computed in 128 bits.
	ps := uint64(at)
	sec := ps / 1e12
	rem := ps % 1e12
	hi, lo := bits.Mul64(rem, t.freqHz)
	frac, _ := bits.Div64(hi, lo, 1e12)
	return sec*t.freqHz + frac
}

// TicksToTime converts a tick delta to simulated time.
func (t *Timer) TicksToTime(ticks uint64) units.Time {
	return units.Time(float64(ticks) * 1e12 / float64(t.freqHz))
}

// Read performs "isb; mrs cntvct_el0" plus sample recording from execution
// context c (a goroutine Proc or a continuation Task): it advances virtual
// time by the isb cost, samples the counter, then advances by the read/record
// cost. The returned value is the counter at the instant between the two
// costs, which is how back-to-back reads measure the infrastructure's own
// overhead.
//
// Both costs are pure delays and the counter is derived arithmetic over the
// context's own clock, so Read uses the batched Advance API: profiling a
// region costs simulated time but no suspensions at all.
func (t *Timer) Read(c sim.Ctx) uint64 {
	c.Advance(t.isb.Sample(t.r))
	v := t.counterAt(c.Now())
	c.Advance(t.read.Sample(t.r))
	return v
}
