package vtimer

import (
	"testing"
	"testing/quick"

	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/units"
)

func newTimer(k *sim.Kernel, hz uint64) *Timer {
	return New(k, hz, rng.FixedNs(15), rng.FixedNs(34.69), nil)
}

func TestCounterAt1THz(t *testing.T) {
	k := sim.NewKernel()
	tm := newTimer(k, 1e12)
	k.At(12345, func() {
		if got := tm.Counter(); got != 12345 {
			t.Errorf("counter at 12345ps = %d", got)
		}
	})
	k.Run()
}

func TestCounterQuantization(t *testing.T) {
	k := sim.NewKernel()
	tm := newTimer(k, 100_000_000) // 100 MHz: one tick per 10 ns
	k.At(25*units.Nanosecond, func() {
		if got := tm.Counter(); got != 2 {
			t.Errorf("counter at 25ns @100MHz = %d, want 2", got)
		}
	})
	k.Run()
}

func TestCounterOverflowRegression(t *testing.T) {
	// Regression: at 1 THz the sub-second remainder times the frequency
	// overflows 64 bits; the 128-bit path must keep the counter exact and
	// monotonic across large times.
	k := sim.NewKernel()
	tm := newTimer(k, 1e12)
	var prev uint64
	for _, at := range []units.Time{
		units.Second - 1, units.Second, units.Second + 1,
		5 * units.Second, 27577 * units.Second,
	} {
		at := at
		k.At(at, func() {
			got := tm.Counter()
			if got != uint64(at) {
				t.Errorf("counter at %v = %d, want %d", at, got, uint64(at))
			}
			if got < prev {
				t.Errorf("counter went backwards: %d < %d", got, prev)
			}
			prev = got
		})
	}
	k.Run()
}

func TestQuickCounterMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint64, hzSel uint8) bool {
		hz := []uint64{1e6, 25e6, 100e6, 1e9, 1e12}[int(hzSel)%5]
		k := sim.NewKernel()
		tm := newTimer(k, hz)
		a := units.Time(aRaw % uint64(1000*units.Second))
		b := units.Time(bRaw % uint64(1000*units.Second))
		if a > b {
			a, b = b, a
		}
		var ca, cb uint64
		k.At(a, func() { ca = tm.Counter() })
		k.At(b, func() { cb = tm.Counter() })
		k.Run()
		return ca <= cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTicksToTime(t *testing.T) {
	k := sim.NewKernel()
	tm := newTimer(k, 100_000_000)
	if got := tm.TicksToTime(3); got != 30*units.Nanosecond {
		t.Errorf("3 ticks @100MHz = %v", got)
	}
}

func TestReadCostsTime(t *testing.T) {
	k := sim.NewKernel()
	tm := newTimer(k, 1e12)
	var v1, v2 uint64
	k.Spawn("reader", func(p *sim.Proc) {
		v1 = tm.Read(p)
		v2 = tm.Read(p)
	})
	k.Run()
	k.Shutdown()
	// Between the two sampled instants lie one read/record (34.69) and
	// one isb (15): the paper's 49.69 ns infrastructure overhead.
	if delta := tm.TicksToTime(v2 - v1); delta != units.Nanoseconds(49.69) {
		t.Errorf("back-to-back read delta = %v, want 49.69ns", delta)
	}
}

func TestZeroFrequencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero frequency did not panic")
		}
	}()
	newTimer(sim.NewKernel(), 0)
}

func TestFreqHz(t *testing.T) {
	tm := newTimer(sim.NewKernel(), 42)
	if tm.FreqHz() != 42 {
		t.Error("FreqHz mismatch")
	}
}
