package perftest

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/node"
	"breakband/internal/topo"
	"breakband/internal/units"
)

// TestLossySweepIntegrity is the tentpole acceptance check: across the
// drop-rate ladder the transport must deliver every payload bit-exact,
// exactly once and in order, while goodput degrades smoothly — never
// corruption, duplication or reordering surfacing at the application.
func TestLossySweepIntegrity(t *testing.T) {
	rates := []float64{0, 1e-4, 1e-3, 1e-2}
	opt := Options{Iters: 1500, MsgSize: 32}
	res := LossySweep(config.TX2CX4(config.NoiseOff, 1, true), rates, opt)

	for i, r := range res {
		t.Logf("%v", r)
		if r.Failed {
			t.Fatalf("rate %g: QP failed; the retry budget should absorb this loss rate", rates[i])
		}
		if r.Delivered != r.Total {
			t.Errorf("rate %g: %d of %d delivered", rates[i], r.Delivered, r.Total)
		}
		if r.Duplicated != 0 || r.Misordered != 0 || r.Corrupted != 0 || r.BadLength != 0 {
			t.Errorf("rate %g: integrity violated: %d dup, %d misordered, %d corrupt, %d bad length",
				rates[i], r.Duplicated, r.Misordered, r.Corrupted, r.BadLength)
		}
	}

	// The lossless baseline runs the legacy path: no injector, no
	// timeouts, no retransmissions.
	if res[0].WireDropped != 0 || res[0].WireCorrupted != 0 {
		t.Errorf("rate 0 injected faults: -%d/-%d", res[0].WireDropped, res[0].WireCorrupted)
	}
	if s := res[0].SenderStats; s.AckTimeouts != 0 || s.Retransmits != 0 || s.SeqNaksRecv != 0 {
		t.Errorf("rate 0 ran recovery machinery: %+v", s)
	}

	// The top of the ladder must actually have been lossy, with the
	// recovery machinery visibly working.
	hot := res[len(res)-1]
	if hot.WireDropped == 0 || hot.WireCorrupted == 0 {
		t.Errorf("rate 1e-2 injected -%d/-%d; the schedule did not bite", hot.WireDropped, hot.WireCorrupted)
	}
	if hot.SenderStats.Retransmits == 0 {
		t.Error("rate 1e-2 recovered without retransmitting")
	}

	// Smooth degradation: goodput must not climb as the loss rate does,
	// and the lossy end pays a real price against the lossless baseline.
	for i := 1; i < len(res); i++ {
		if res[i].GoodputMBs > res[i-1].GoodputMBs*1.02 {
			t.Errorf("goodput rose with loss: %.2f MB/s at %g vs %.2f MB/s at %g",
				res[i].GoodputMBs, rates[i], res[i-1].GoodputMBs, rates[i-1])
		}
	}
	if hot.GoodputMBs >= res[0].GoodputMBs {
		t.Errorf("1%% loss cost nothing: %.2f MB/s vs lossless %.2f MB/s", hot.GoodputMBs, res[0].GoodputMBs)
	}
}

// TestLossyTotalLossFailsCleanly: a 100% lossy link must end in a
// transport-retry-exceeded QP error surfaced to the driver — not a hang
// and not a silent partial run.
func TestLossyTotalLossFailsCleanly(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Faults.DropRate = 1.0
	sys := node.NewSystem(cfg, 2)
	defer sys.Shutdown()
	res := LossyPutBw(sys, Options{Iters: 50, MsgSize: 32})
	t.Logf("%v", res)
	if !res.Failed {
		t.Fatal("run over a dead link did not fail")
	}
	if res.Delivered != 0 {
		t.Errorf("%d messages delivered over a 100%% lossy link", res.Delivered)
	}
	if res.SenderStats.AckTimeouts == 0 {
		t.Error("no ACK timeouts before giving up")
	}
}

// flapConfig builds the fat-tree flap scenario config: 6 hosts at radix
// 4 put the receiver (host 0) on leaf0 and two cross-leaf sender pairs
// behind leaf1/leaf2; flapping leaf1.up0 kills host 2 and 3's default
// ECMP path to host 0.
func flapConfig(flaps []faults.Flap) *config.Config {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.FatTree, Radix: 4}
	cfg.Faults.Flaps = flaps
	return cfg
}

// TestFlapIncastRecovery is the degradation payoff: an incast loses a
// leaf up-link mid-run, ECMP diverts the affected flows, the flap's
// in-flight casualties replay on timeout, and — after the link restores
// and routing rehashes back — the aggregate rate returns to the pre-fault
// steady state.
func TestFlapIncastRecovery(t *testing.T) {
	// Hosts 2..5 — the cross-leaf pairs behind leaf1 and leaf2 — stream
	// into host 0; host 1 (the receiver's leaf-mate, with a much shorter
	// path) stays idle so the flows are symmetric.
	const senders = 4
	opt := Options{Iters: 600, Warmup: 1, MsgSize: 4096}

	// Probe run with the flap scheduled far past the end (identical
	// workload, fault machinery armed but never firing) to place the real
	// flap window inside the measured phase.
	probe := node.NewSystem(flapConfig([]faults.Flap{
		{Port: "leaf1.up0", Down: units.Microseconds(1e6), Up: units.Microseconds(2e6)},
	}), 6)
	probeRes := FlapIncastPutBw(probe, senders, opt)
	probe.Shutdown()
	t.Logf("probe: %v", probeRes)

	e := probeRes.Elapsed
	down := units.Time(float64(e) * 0.25)
	up := units.Time(float64(e) * 0.45)
	sys := node.NewSystem(flapConfig([]faults.Flap{{Port: "leaf1.up0", Down: down, Up: up}}), 6)
	defer sys.Shutdown()
	res := FlapIncastPutBw(sys, senders, opt)
	t.Logf("flap:  %v", res)

	if res.Flaps != 1 {
		t.Fatalf("flaps = %d, want 1", res.Flaps)
	}
	if res.WireDropped == 0 {
		t.Error("the flap dropped nothing; the window missed the traffic")
	}
	if res.Retransmits == 0 {
		t.Error("no retransmissions; the dropped frames were never recovered")
	}
	if res.PreN == 0 || res.DipN == 0 || res.PostN == 0 {
		t.Fatalf("windows pre/dip/post = %d/%d/%d iterations; the flap window fell outside the run",
			res.PreN, res.DipN, res.PostN)
	}
	if ratio := res.PostRate / res.PreRate; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("post-recovery rate is %.0f%% of the pre-fault rate; the fabric did not return to steady state",
			ratio*100)
	}
}
