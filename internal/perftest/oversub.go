package perftest

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/units"
)

// PCIeWriteCycle reports the modelled receiver-side PCIe service time per
// inbound message of msgSize bytes when the message's MWr fills the posted
// data credit pool (one write in flight at a time, which holds for
// msgSize > 16*PostedCredits.Data/2 — e.g. 4 KiB against the default 256
// data credits): TLP serialization, flight to the Root Complex, the ACK
// turnaround, and the two back-to-back DLLPs (Ack + UpdateFC) flying the
// credit back. Under a saturating incast this cycle — not the wire — is
// the receiver's drain rate, so aggregate goodput converges to one message
// per cycle.
func PCIeWriteCycle(cfg *config.Config, msgSize int) units.Time {
	l := cfg.Link
	ser := func(b int) units.Time { return units.Time(b) * l.PerByte }
	return ser(msgSize+l.TLPHeader) + l.Prop + l.AckDelay + 2*ser(l.DLLPBytes) + l.RxProcess + l.Prop
}

// OversubscribedResult reports the bounded-buffer incast scenario: the
// usual incast numbers plus the receiver-side overload accounting the rx
// budget introduces.
type OversubscribedResult struct {
	Senders  int
	MsgSize  int
	Messages int
	Elapsed  units.Time
	// AggMsgRate / PerSenderMsgRate / PerSenderBwMBs as in IncastResult.
	AggMsgRate       float64
	PerSenderMsgRate float64
	PerSenderBwMBs   float64
	MaxSwitchQueue   int
	CreditStalls     uint64

	// RxBudget is the receiver NIC's configured pend budget (0 =
	// unbounded).
	RxBudget int
	// MaxRxHeld is the receiver NIC's held-frame high-water mark; with a
	// budget it never exceeds it.
	MaxRxHeld int
	// MaxUpPend is the deepest the receiver's NIC->RC PCIe pend queue
	// got — the quantity that grew without bound before rx buffering was
	// bounded.
	MaxUpPend int
	// RNRNaks counts frames the receiver refused; Retransmits counts the
	// senders' replay rounds and RetryStall their accumulated backoff
	// time (summed across senders).
	RNRNaks     uint64
	Retransmits uint64
	RetryStall  units.Time
	// ModelCycleNs is the modelled PCIe service time per message
	// (PCIeWriteCycle): under saturation the per-sender injection
	// interval converges to Senders x this.
	ModelCycleNs float64
}

// OversubscribedPutBw runs the incast put_bw loop with receiver-overload
// accounting: `senders` nodes (sys.Nodes[1..senders]) RDMA-write into
// node 0, whose PCIe link — not the wire — is the bottleneck for large
// messages, so the offered load oversubscribes the receiver. With
// cfg.NICRxBudget set the receiver holds at most that many frames (each
// unreleased frame keeps its final-hop fabric credit, backpressuring the
// switch hop by hop) and refuses the rest with RNR NAKs; goodput still
// converges to the PCIe service rate because the held frames bridge the
// senders' backoff windows. senders <= 0 selects every node but the
// receiver.
func OversubscribedPutBw(sys *node.System, senders int, opt Options) *OversubscribedResult {
	opt.Defaults(sys.Cfg)
	senders = clampSenders(sys, senders)
	recv := sys.Nodes[0]
	res := &OversubscribedResult{
		Senders:      senders,
		MsgSize:      opt.MsgSize,
		RxBudget:     recv.NIC.RxBudget(),
		ModelCycleNs: PCIeWriteCycle(sys.Cfg, opt.MsgSize).Ns(),
	}
	elapsed, eps, wR := incastWindow(sys, senders, opt, "oversub")

	res.Messages = senders * opt.Iters
	res.Elapsed = elapsed
	res.AggMsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	res.PerSenderMsgRate = res.AggMsgRate / float64(senders)
	res.PerSenderBwMBs = res.PerSenderMsgRate * float64(opt.MsgSize) / 1e6
	res.MaxSwitchQueue = sys.Topo().MaxSwitchQueue()
	res.CreditStalls = sys.Topo().CreditStalls()
	res.MaxRxHeld = recv.NIC.RxHeldMax()
	_, res.MaxUpPend = recv.Link.MaxPend()
	for _, e := range wR.Eps {
		res.RNRNaks += e.QP().RNRNaksSent
	}
	for _, ep := range eps {
		qp := ep.QP()
		res.Retransmits += qp.RnrRetransmits
		res.RetryStall += qp.RnrStall
	}
	return res
}

// String renders the result.
func (r *OversubscribedResult) String() string {
	return fmt.Sprintf("oversubscribed put_bw: %d senders x %dB (rx budget %d), %d msgs in %v -> %.0f msg/s/sender (%.1f MB/s/sender; model %.1f ns/msg; rx held max %d, pend max %d, %d RNR NAKs, %d replays, %v stalled)",
		r.Senders, r.MsgSize, r.RxBudget, r.Messages, r.Elapsed, r.PerSenderMsgRate,
		r.PerSenderBwMBs, r.ModelCycleNs, r.MaxRxHeld, r.MaxUpPend, r.RNRNaks, r.Retransmits, r.RetryStall)
}
