package perftest

import (
	"fmt"

	"breakband/internal/campaign"
	"breakband/internal/node"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// MultiPutBwResult reports the multi-core injection ablation: N cores on the
// initiator node, each with its own worker, endpoint and QP ("each core
// communicates independently of the others", paper §1), sharing one PCIe
// link and NIC.
type MultiPutBwResult struct {
	Cores      int
	Messages   int
	Elapsed    units.Time
	AggMsgRate float64
	// PerMsgNs is the aggregate inter-injection time (lower than the
	// single-core value while the PCIe link and credits keep up).
	PerMsgNs float64
	// LinkBlocked counts posts that stalled on PCIe posted credits —
	// zero for a single core (the paper's §4.2 observation), nonzero
	// once enough cores gang up on the link.
	LinkBlocked uint64
}

// MultiPutBw runs the put_bw loop on cores simulated cores concurrently.
func MultiPutBw(sys *node.System, cores int, opt Options) *MultiPutBwResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]
	res := &MultiPutBwResult{Cores: cores}

	st := &winShared{}
	for c := 0; c < cores; c++ {
		w0 := uct.NewWorker(n0, cfg)
		w1 := uct.NewWorker(n1, cfg)
		// Each simulated core draws its jitter from its own stream,
		// derived from the campaign seed and the core identity (nil in
		// NoiseOff). Sharing the node stream would entangle co-node
		// cores' draw sequences with event scheduling order.
		coreRand := cfg.Rand(fmt.Sprintf("node%d.core%d", n0.ID, c))
		w0.SetRand(coreRand)
		ep0 := w0.NewEp(opt.Mode, opt.SignalPeriod)
		ep1 := w1.NewEp(opt.Mode, opt.SignalPeriod)
		uct.Connect(ep0, ep1)
		tgt := n1.Mem.Alloc(fmt.Sprintf("multiput.target%d", c), 4096, 64)
		ep0.RemoteBuf = tgt.Base

		msg := make([]byte, opt.MsgSize)
		f := &putLoopFrame{cfg: cfg, rand: coreRand, w: w0, ep: ep0, opt: &opt, st: st}
		f.postF = postSpinFrame{w: w0, ep: ep0, kind: postPutShort, msg: msg}
		sys.K.SpawnTask(fmt.Sprintf("put_bw.core%d", c), f)
	}
	sys.Run()
	if st.done != cores {
		panic(fmt.Sprintf("perftest: only %d of %d cores finished", st.done, cores))
	}

	res.Messages = cores * opt.Iters
	res.Elapsed = st.end - st.start
	res.PerMsgNs = res.Elapsed.Ns() / float64(res.Messages)
	res.AggMsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	blockedDown, _ := n0.Link.Blocked()
	res.LinkBlocked = blockedDown
	return res
}

// MultiCoreSweep runs MultiPutBw for each core count, one fresh system per
// point, fanned out on a parallelism-wide pool (<= 0 selects GOMAXPROCS);
// mkSys must be safe to call concurrently. (The simulated cores within one
// point still share their system's virtual clock — only distinct points run
// on distinct OS threads.)
func MultiCoreSweep(mkSys func() *node.System, coreCounts []int, opt Options, parallelism int) []*MultiPutBwResult {
	return campaign.Map(parallelism, coreCounts, func(_, cores int) *MultiPutBwResult {
		sys := mkSys()
		defer sys.Shutdown()
		return MultiPutBw(sys, cores, opt)
	})
}

// String renders the result.
func (r *MultiPutBwResult) String() string {
	return fmt.Sprintf("multi put_bw: %d cores, %d msgs in %v -> %.0f msg/s (%.2f ns/msg, %d credit stalls)",
		r.Cores, r.Messages, r.Elapsed, r.AggMsgRate, r.PerMsgNs, r.LinkBlocked)
}
