package perftest

import (
	"fmt"

	"breakband/internal/mlx"
	"breakband/internal/sim"
	"breakband/internal/uct"
)

// postKind selects the transport path a postSpinFrame drives.
type postKind uint8

const (
	// postPutShort always uses the inline short put (put_bw semantics).
	postPutShort postKind = iota
	// postPutAuto selects short/bcopy put by size (incast family).
	postPutAuto
	// postAmShort always uses the inline short active message (am_lat).
	postAmShort
	// postAmAuto selects short/bcopy active message by size (size sweep).
	postAmAuto
)

// postSpinFrame posts one message, spinning on worker progress while the
// transmit queue is full — the benchmark inner loop shared by every put_bw
// and am_lat style driver. With strict set, any error other than
// ErrNoResource panics (the auto paths); otherwise it ends the spin like
// the perftest loops do.
type postSpinFrame struct {
	w      *uct.Worker
	ep     *uct.Ep
	kind   postKind
	strict bool
	id     uint8  // active-message id (am kinds)
	off    uint64 // remote offset (put kinds)
	msg    []byte
	pc     int
}

// start begins one post-with-spin as a sub-frame of t's current frame.
func (f *postSpinFrame) start(t *sim.Task) {
	f.pc = 0
	t.Call(f)
}

func (f *postSpinFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0: // issue the post
			f.pc = 1
			switch f.kind {
			case postPutShort:
				f.ep.StartPutShort(t, f.off, f.msg)
			case postPutAuto:
				if len(f.msg) <= mlx.InlineMax {
					f.ep.StartPutShort(t, f.off, f.msg)
				} else {
					f.ep.StartPutBcopy(t, f.off, f.msg)
				}
			case postAmShort:
				f.ep.StartAmShort(t, f.id, f.msg)
			case postAmAuto:
				if len(f.msg) <= mlx.InlineMax {
					f.ep.StartAmShort(t, f.id, f.msg)
				} else {
					f.ep.StartAmBcopy(t, f.id, f.msg)
				}
			}
			return
		case 1: // inspect the outcome
			err := f.ep.LastPost()
			if err == uct.ErrNoResource {
				f.pc = 2
				f.w.StartProgress(t)
				return
			}
			if err != nil && f.strict {
				panic(fmt.Sprintf("perftest: post: %v", err))
			}
			t.Return()
			return
		case 2: // progressed; retry the post
			f.pc = 0
		}
	}
}
