package perftest

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/topo"
	"breakband/internal/trace"
)

// tracedConfig builds a NoiseOff configuration with event tracing enabled.
func tracedConfig(useSwitch bool, capacity int) *config.Config {
	cfg := config.TX2CX4(config.NoiseOff, 1, useSwitch)
	cfg.TraceCapacity = capacity
	return cfg
}

// checkConservation asserts the attribution's books balance: every
// completed message's components sum to its measured latency within one
// event-time tick, and nothing the scenario injected is left dangling.
func checkConservation(t *testing.T, sys *node.System, wantMsgs int) *trace.Report {
	t.Helper()
	rep := StallReport(sys)
	if rep == nil {
		t.Fatal("tracing was enabled but StallReport returned nil")
	}
	t.Logf("\n%s", rep.Format())
	if got := len(rep.Msgs); got != wantMsgs {
		t.Errorf("attributed %d messages, want %d", got, wantMsgs)
	}
	if rep.Incomplete != 0 {
		t.Errorf("%d messages incomplete after a fully drained run", rep.Incomplete)
	}
	if worst := rep.MaxResidual(); worst > 1 {
		t.Errorf("conservation violated: max |residual| = %v, want <= 1 tick", worst)
	}
	return rep
}

// TestConservationBackToBack pins the calibration on the ideal two-endpoint
// tier: a put_bw run's latency decomposes into ideal wire time, egress
// queueing from pipelined posting, and receiver PCIe pend — with no credit
// stalls (the ideal tier has no credits) and no recovery components (no
// faults), and zero residual.
func TestConservationBackToBack(t *testing.T) {
	opt := Options{Iters: 300, Warmup: 100, MsgSize: 8}
	sys := node.NewSystem(tracedConfig(false, 1<<16), 2)
	defer sys.Shutdown()
	PutBw(sys, opt)

	rep := checkConservation(t, sys, opt.Iters+opt.Warmup)
	if rep.Stall != 0 {
		t.Errorf("credit stall %v on the creditless ideal tier, want 0", rep.Stall)
	}
	if rep.Backoff != 0 || rep.Waste != 0 {
		t.Errorf("recovery components (backoff %v, waste %v) on a faultless run, want 0", rep.Backoff, rep.Waste)
	}
	if rep.Ideal == 0 {
		t.Error("ideal component is zero; calibration is not being applied")
	}
}

// TestConservationSingleSwitch funnels four senders through one switch: the
// receiver downlink port congests, so switch queueing (and, with finite
// credits, credit stalls reaching the senders) must appear as attributed
// components — and still sum exactly.
func TestConservationSingleSwitch(t *testing.T) {
	const senders = 4
	opt := Options{Iters: 200, Warmup: 100, MsgSize: 4096}
	cfg := tracedConfig(true, 1<<18)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
	sys := node.NewSystem(cfg, senders+1)
	defer sys.Shutdown()
	IncastPutBw(sys, senders, opt)

	rep := checkConservation(t, sys, senders*(opt.Iters+opt.Warmup))
	if rep.Queue == 0 {
		t.Error("no switch queueing attributed under a 4:1 incast")
	}
	if rep.Backoff != 0 || rep.Waste != 0 {
		t.Errorf("recovery components (backoff %v, waste %v) on a faultless run, want 0", rep.Backoff, rep.Waste)
	}
}

// TestConservationOversubscribedIncast drops the receiver rx budget below
// the fabric credits, so admission control carries the overload: RNR NAKs,
// sender backoff and go-back-N replay. The recovery components must show up
// and the per-message books must still balance — replays stamp fresh trace
// IDs, so the final delivered flight plus the backoff/waste split covers
// the whole span from first injection.
func TestConservationOversubscribedIncast(t *testing.T) {
	const senders, budget = 4, 2
	opt := Options{Iters: 120, Warmup: 60, MsgSize: 4096}
	cfg := tracedConfig(true, 1<<19)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
	cfg.NICRxBudget = budget
	sys := node.NewSystem(cfg, senders+1)
	defer sys.Shutdown()
	res := OversubscribedPutBw(sys, senders, opt)
	t.Logf("%v", res)
	if res.RNRNaks == 0 {
		t.Fatal("scenario produced no RNR NAKs; the recovery path is not exercised")
	}

	rep := checkConservation(t, sys, senders*(opt.Iters+opt.Warmup))
	if rep.Backoff == 0 {
		t.Error("no RNR backoff attributed despite RNR NAKs")
	}
	if rep.Pend == 0 {
		t.Error("no PCIe pend attributed despite a saturated receiver budget")
	}
}

// TestSaturationKnee is the analyzer's acceptance check: sweeping offered
// load across the predicted bottleneck of a 4:1 single-switch incast, the
// measured knee must land within one load step of the analytic saturation
// point (load 1.0, the receiver downlink's wire service rate).
func TestSaturationKnee(t *testing.T) {
	const senders, step = 4, 0.2
	loads := []float64{0.6, 0.8, 1.0, 1.2, 1.4}
	opt := Options{Iters: 150, Warmup: 50, MsgSize: 4096}
	mkSys := func() *node.System {
		cfg := tracedConfig(true, 1<<18)
		cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
		return node.NewSystem(cfg, senders+1)
	}
	res := SaturationSweep(mkSys, senders, loads, opt, 0)
	t.Logf("\n%s", res.Format())

	knee := res.Knee()
	if knee == nil {
		t.Fatal("sweep never saturated; expected a knee near load 1.0")
	}
	if knee.Load < 1.0-step-1e-9 || knee.Load > 1.0+step+1e-9 {
		t.Errorf("knee at load %.2f, want within one step (%.2f) of the predicted 1.0", knee.Load, step)
	}
	first := res.Points[0]
	if first.Delivered < kneeFrac*first.Offered {
		t.Errorf("lightly loaded point (%.2f) already saturated: %.0f delivered vs %.0f offered",
			first.Load, first.Delivered, first.Offered)
	}
	// Past the knee the latency decomposition must show where the time
	// goes: switch queueing plus credit stall dominates the added latency.
	last := res.Points[len(res.Points)-1]
	if last.MeanLatency <= first.MeanLatency {
		t.Errorf("mean latency did not grow across the sweep: %v -> %v", first.MeanLatency, last.MeanLatency)
	}
	if sat := last.Shares[1] + last.Shares[2]; sat < 0.10 {
		t.Errorf("queue+stall share %.1f%% past the knee, want >= 10%%", 100*sat)
	}
	if last.HotPort == "" || last.MaxQueue == 0 {
		t.Error("no hot port identified past the knee")
	}
}
