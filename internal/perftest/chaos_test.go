package perftest

import (
	"reflect"
	"testing"

	"breakband/internal/config"
	"breakband/internal/topo"
)

// TestChaosScheduleDeterminism: the schedule is a pure function of
// (seed, topology) — two derivations must agree exactly, and different
// seeds must actually differ.
func TestChaosScheduleDeterminism(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.FatTree}
	a := ChaosSchedule(7, cfg, 8)
	b := ChaosSchedule(7, cfg, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("schedule not deterministic:\n%+v\n%+v", a, b)
	}
	c := ChaosSchedule(8, cfg, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("seeds 7 and 8 derived identical schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("derived schedule invalid: %v", err)
	}
}

// TestChaosSoakSingle exercises one seed verbosely (the debugging entry
// point: go test -run TestChaosSoakSingle -v).
func TestChaosSoakSingle(t *testing.T) {
	res := ChaosSoak(config.TX2CX4(config.NoiseOff, 1, true), 1, ChaosOptions{})
	t.Logf("%v", res)
	if !res.Passed() {
		t.Fatalf("seed 1 violated invariants:\n%v", res)
	}
}

// TestChaosSoakSeedLadder is the acceptance soak: every seed on the ladder
// must hold all five invariants, and across the ladder every fault class
// must actually have fired (so the soak is known to exercise the machinery,
// not dodge it).
func TestChaosSoakSeedLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos ladder is a long soak")
	}
	seeds := make([]uint64, 20)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	var crashes, pauses, flaps, drops uint64
	for _, res := range ChaosLadder(config.TX2CX4(config.NoiseOff, 1, true), seeds, ChaosOptions{}) {
		t.Logf("%v", res)
		if !res.Passed() {
			t.Errorf("seed %d violated invariants:\n%v", res.Seed, res)
		}
		crashes += res.Crashes
		pauses += res.Pauses
		flaps += res.Flaps
		drops += res.WireDropped
	}
	if crashes == 0 || pauses == 0 || flaps == 0 || drops == 0 {
		t.Errorf("ladder did not exercise every fault class: %d crashes, %d pauses, %d flaps, %d wire drops",
			crashes, pauses, flaps, drops)
	}
}
