package perftest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/mpi"
	"breakband/internal/node"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/topo"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Chaos tags: the sequence-verified stream and the failure-detector probes
// ride separate MPI tags so heartbeats never match stream receives.
const (
	chaosStreamTag = 1
	chaosHbTag     = 2
)

// errChaosDeadline marks a wait abandoned by the application-level give-up
// timer: the peer stopped making progress but its endpoint never errored
// (or had not errored yet), so pending receives are cancelled to guarantee
// the soak drains.
var errChaosDeadline = errors.New("chaos: wait deadline expired with the peer unresponsive")

// ChaosOptions shapes a chaos soak run.
type ChaosOptions struct {
	// Nodes is the fat-tree host count; ranks pair up i <-> i+Nodes/2 so
	// every stream crosses leaves. Must be even and >= 4.
	Nodes int
	// Total is the number of sequence-stamped messages per pair.
	Total int
	// Window bounds the sender's in-flight batch (Isend burst + Waitall).
	Window int
	// Gap paces the sender between windows so the stream spans the fault
	// schedule instead of completing before the first fault fires.
	Gap units.Time
	// HbEvery is the failure-detector probe period: a waiting receiver
	// keeps one heartbeat Isend outstanding toward its peer so a dead
	// endpoint is discovered through the transport's ACK-timeout path.
	HbEvery units.Time
	// Deadline is the absolute give-up time: a wait still pending then
	// cancels its receives and drains, guaranteeing termination even for
	// failure shapes the transport cannot attribute.
	Deadline units.Time
	// Horizon bounds the simulation (RunUntil); anything still live at
	// the horizon is a watchdog finding.
	Horizon units.Time
}

// Defaults fills unset fields.
func (o *ChaosOptions) Defaults() {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.Total == 0 {
		o.Total = 240
	}
	if o.Window == 0 {
		o.Window = 12
	}
	if o.Gap == 0 {
		o.Gap = 50 * units.Microsecond
	}
	if o.HbEvery == 0 {
		o.HbEvery = 20 * units.Microsecond
	}
	if o.Deadline == 0 {
		o.Deadline = 30 * units.Millisecond
	}
	if o.Horizon == 0 {
		o.Horizon = 50 * units.Millisecond
	}
}

// ChaosSchedule derives a randomized fault schedule from the seed:
// fabric-wide Bernoulli drop/corrupt rates, bounded flaps on redundantly
// routed fat-tree links, zero to two endpoint crashes (some with restart)
// and zero to two host pause windows. Every window is bounded well below
// the transport's retry-exhaustion horizons so transient faults recover and
// only real endpoint deaths escalate to QP errors; only crashes are allowed
// to fail a stream. The schedule depends on (seed, topology) alone.
func ChaosSchedule(seed uint64, cfg *config.Config, nodes int) faults.Config {
	r := rng.Stream(seed, "chaos/schedule")
	fc := faults.Config{
		DropRate:    r.Float64() * 0.01,
		CorruptRate: r.Float64() * 0.005,
	}

	// Flaps go only on switch-tier ports with path redundancy (leaf
	// up-links and spine ports): ECMP diverts around the dead window and
	// the flap's casualties replay on timeout.
	scratch := topo.NewFabric(sim.NewKernel(), cfg.Fabric, cfg.Topology, nodes)
	var redundant []string
	for _, p := range scratch.SwitchPortNames() {
		if strings.Contains(p, ".up") || strings.HasPrefix(p, "spine") {
			redundant = append(redundant, p)
		}
	}
	// Faults land inside the paced stream (which spans ~Total/Window
	// windows x Gap): late enough that every pair moves data first.
	const faultLo, faultHi = 100, 900 // µs
	window := func(lo, hi float64) (units.Time, units.Time) {
		at := units.Microseconds(faultLo + r.Float64()*(faultHi-faultLo))
		return at, at + units.Microseconds(lo+r.Float64()*(hi-lo))
	}
	if len(redundant) > 0 {
		for i, n := 0, 1+r.Intn(3); i < n; i++ {
			down, up := window(50, 250)
			fc.Flaps = append(fc.Flaps, faults.Flap{Port: redundant[r.Intn(len(redundant))], Down: down, Up: up})
		}
	}

	// Crashes: at most one per node, half restart later (with the QP
	// table wiped, so the dead generation stays errored either way).
	crashed := map[int]bool{}
	for i, n := 0, r.Intn(3); i < n; i++ {
		nd := r.Intn(nodes)
		if crashed[nd] {
			continue
		}
		crashed[nd] = true
		at := units.Microseconds(faultLo + r.Float64()*(faultHi-faultLo))
		c := faults.Crash{Node: nd, At: at}
		if r.Intn(2) == 1 {
			c.RestartAt = at + units.Microseconds(500+r.Float64()*1500)
		}
		fc.Crashes = append(fc.Crashes, c)
	}

	// Pauses stall a host's PCIe issue path: the NIC's bounded rx
	// buffering fills and the fabric sees RNR backpressure. Windows stay
	// under the RNR retry budget (~126µs of doubling backoff) so paused
	// hosts recover; only crashes are allowed to kill a stream.
	for i, n := 0, r.Intn(3); i < n; i++ {
		nd := r.Intn(nodes)
		if crashed[nd] {
			continue
		}
		at, resume := window(20, 60)
		fc.Pauses = append(fc.Pauses, faults.Pause{Node: nd, At: at, Resume: resume})
	}
	return fc
}

// chaosPair is the shared state of one sequence-verified stream.
type chaosPair struct {
	src, dst int
	msgSize  int
	total    int

	// Receiver-side sequence verification (the corruption/duplication
	// invariant): every completed receive must carry the next sequence
	// number and the exact pattern fill.
	delivered                   int
	dups, gaps, corrupt, badLen int

	sendErr, recvErr     error
	senderDone, recvDone bool
	deadlineCancels      int
}

// chaosStamp writes message i's payload: sequence number plus pattern fill
// (the same layout the lossy stream uses).
func chaosStamp(msg []byte, i int) {
	binary.LittleEndian.PutUint64(msg[:8], uint64(i))
	for j := 8; j < len(msg); j++ {
		msg[j] = byte(uint64(i) + uint64(j))
	}
}

// hbWaitFrame waits for a set of MPI requests while running an
// application-level failure detector: whenever completion stalls it keeps
// one heartbeat Isend outstanding toward the peer, so a dead or restarted
// endpoint is discovered through the transport's ACK-timeout ->
// retry-exhaustion path and CheckFailed can flush the pending receives. A
// hard deadline backstops failure shapes the transport cannot attribute:
// on expiry the pending receives are cancelled and the frame keeps
// progressing until the remaining sends terminate on their own transport
// bound, so the wait always drains.
type hbWaitFrame struct {
	r    *mpi.Rank
	peer int
	reqs []*mpi.Request
	hb   bool
	opt  *ChaosOptions

	err     error // first failure observed; nil on clean completion
	cancels int   // receives abandoned at the deadline

	hbReq   *mpi.Request
	hbNext  units.Time
	hbMsg   []byte
	expired bool
	pc      int
}

func (f *hbWaitFrame) reset(r *mpi.Rank, peer int, reqs []*mpi.Request, hb bool, opt *ChaosOptions) {
	f.r, f.peer, f.reqs, f.hb, f.opt = r, peer, reqs, hb, opt
	f.err, f.cancels, f.hbReq, f.expired, f.pc = nil, 0, nil, false, 0
	if hb && f.hbMsg == nil {
		f.hbMsg = make([]byte, 8)
	}
}

func (f *hbWaitFrame) Step(t *sim.Task) {
	r := f.r
	for {
		switch f.pc {
		case 0:
			f.hbNext = t.Now() + f.opt.HbEvery
			f.pc = 1
		case 1: // poll-loop head
			remaining := 0
			for _, q := range f.reqs {
				if r.CheckFailed(t, q) {
					if err := q.Err(); err != nil && f.err == nil {
						f.err = err
					}
				} else {
					remaining++
				}
			}
			if f.hbReq != nil && f.hbReq.Done() {
				f.hbReq = nil
			}
			if remaining == 0 && f.hbReq == nil {
				f.reqs = nil
				t.Return()
				return
			}
			if !f.expired && t.Now() >= f.opt.Deadline {
				f.expired = true
				f.hbReq = nil // abandon the in-flight probe, if any
				for _, q := range f.reqs {
					if r.CancelRecv(t, q, errChaosDeadline) {
						f.cancels++
					}
				}
				if f.err == nil {
					f.err = errChaosDeadline
				}
				continue // recount with the cancellations applied
			}
			if remaining > 0 && f.hb && !f.expired && f.hbReq == nil && t.Now() >= f.hbNext {
				f.pc = 2
				r.StartIsend(t, f.peer, chaosHbTag, f.hbMsg)
				return
			}
			t.Advance(r.Cfg.SW.MpichWaitLoop.Sample(r.Node.Rand))
			f.pc = 3
			r.Worker.StartProgress(t)
			return
		case 2:
			f.hbReq = r.LastIsend()
			f.hbNext = t.Now() + f.opt.HbEvery
			f.pc = 1
		case 3:
			f.pc = 1
		}
	}
}

// chaosSendFrame streams the pair's messages in paced windows: a burst of
// Window Isends, a failure-aware wait, a Gap. A send error (the peer
// crashed, or this rank's own NIC died under it) aborts the stream.
type chaosSendFrame struct {
	r    *mpi.Rank
	pair *chaosPair
	opt  *ChaosOptions

	wait hbWaitFrame
	msg  []byte
	reqs []*mpi.Request
	i, w int
	pc   int
}

func (f *chaosSendFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0: // post the receive credits heartbeats will consume
			f.pc = 1
			f.r.StartPreparePostedRecvs(t, 64)
			return
		case 1: // stream-loop head
			if f.i >= f.pair.total || f.pair.sendErr != nil {
				f.pair.senderDone = true
				t.Return()
				return
			}
			f.w = f.pair.total - f.i
			if f.w > f.opt.Window {
				f.w = f.opt.Window
			}
			f.reqs = f.reqs[:0]
			f.pc = 2
		case 2: // post one window message
			if len(f.reqs) == f.w {
				f.wait.reset(f.r, f.pair.dst, f.reqs, false, f.opt)
				f.pc = 4
				t.Call(&f.wait)
				return
			}
			chaosStamp(f.msg, f.i+len(f.reqs))
			f.pc = 3
			f.r.StartIsend(t, f.pair.dst, chaosStreamTag, f.msg)
			return
		case 3:
			f.reqs = append(f.reqs, f.r.LastIsend())
			f.pc = 2
		case 4: // window waited
			for _, q := range f.reqs {
				if err := q.Err(); err != nil && f.pair.sendErr == nil {
					f.pair.sendErr = err
				}
			}
			if f.wait.err != nil && f.pair.sendErr == nil {
				f.pair.sendErr = f.wait.err
			}
			f.i += f.w
			if f.pair.sendErr == nil && f.i < f.pair.total {
				t.Advance(f.opt.Gap)
			}
			f.pc = 1
		}
	}
}

// chaosRecvFrame posts the whole stream's receives, waits with the failure
// detector running, then sequence-verifies what completed. On a reliable
// in-order transport the completed set must be an exact prefix of the
// stream: anything else counts as duplication, reordering or corruption.
type chaosRecvFrame struct {
	r    *mpi.Rank
	pair *chaosPair
	opt  *ChaosOptions

	wait hbWaitFrame
	reqs []*mpi.Request
	pc   int
}

func (f *chaosRecvFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.r.StartPreparePostedRecvs(t, 64)
			return
		case 1:
			for j := 0; j < f.pair.total; j++ {
				f.reqs = append(f.reqs, f.r.Irecv(t, f.pair.src, chaosStreamTag))
			}
			f.wait.reset(f.r, f.pair.src, f.reqs, true, f.opt)
			f.pc = 2
			t.Call(&f.wait)
			return
		case 2:
			f.pair.deadlineCancels = f.wait.cancels
			var expected uint64
			failed := false
			for _, q := range f.reqs {
				if q.Err() != nil {
					if f.pair.recvErr == nil {
						f.pair.recvErr = q.Err()
					}
					failed = true
					continue
				}
				if failed {
					// A success after a failure breaks the prefix
					// property of an in-order stream.
					f.pair.gaps++
					continue
				}
				data := q.Data()
				if len(data) != f.pair.msgSize {
					f.pair.badLen++
					continue
				}
				seq := binary.LittleEndian.Uint64(data[:8])
				switch d := int64(seq - expected); {
				case d == 0:
					expected++
					f.pair.delivered++
					for j := 8; j < len(data); j++ {
						if data[j] != byte(seq+uint64(j)) {
							f.pair.corrupt++
							break
						}
					}
				case d < 0:
					f.pair.dups++
				default:
					f.pair.gaps++
				}
			}
			f.pair.recvDone = true
			f.reqs = nil
			t.Return()
			return
		}
	}
}

// ChaosPairReport is one stream's outcome.
type ChaosPairReport struct {
	Src, Dst         int
	MsgSize          int
	Total, Delivered int
	Dups, Gaps       int
	Corrupt, BadLen  int
	SendErr, RecvErr string
	// Survivor marks a pair neither of whose endpoints crashed: it must
	// deliver its whole stream without errors.
	Survivor        bool
	DeadlineCancels int
}

// ChaosResult reports one seeded soak.
type ChaosResult struct {
	Seed     uint64
	Nodes    int
	Schedule faults.Config
	Pairs    []ChaosPairReport

	// Fault activity actually injected.
	WireDropped, WireCorrupted, Flaps uint64
	Crashes, Pauses                   uint64
	// NodeFaults records per-node crash/pause counts (only nodes that
	// actually served an endpoint fault appear).
	NodeFaults []faults.NodeFaults
	// Endpoint failure machinery activity, summed across NICs.
	QPFails, CrashDiscards, FlushedRecvs uint64

	// Invariant outcomes: Violations lists every failed invariant
	// (empty = the seed passed); StallReport is the kernel watchdog's
	// stall attribution when tasks were still live at the horizon.
	Violations  []string
	StallReport string
	Events      uint64
	EndTime     units.Time
}

// Passed reports whether every invariant held.
func (r *ChaosResult) Passed() bool { return len(r.Violations) == 0 }

// ChaosSoak runs one seeded chaos campaign: mixed-size sequence-verified
// streams between cross-leaf pairs on a fat-tree, under the seed's
// randomized schedule of wire faults, link flaps, endpoint crashes and
// host pauses. After the bounded run it checks the five soak invariants:
//
//  1. integrity — no stream saw duplication, reordering, corruption or a
//     bad length, whatever the schedule did;
//  2. termination — every stream's sender and receiver task finished
//     (every request completed with success or error — no hang);
//  3. watchdog-clean — the kernel's quiescence watchdog reports no stuck
//     task at the horizon;
//  4. pools drained — no fabric frame or PCIe packet leaked;
//  5. survivor goodput — pairs with no crashed endpoint delivered their
//     whole stream error-free, and every pair moved data before its
//     fault window hit.
func ChaosSoak(base *config.Config, seed uint64, opt ChaosOptions) *ChaosResult {
	opt.Defaults()
	cfg := *base
	cfg.Seed = seed
	cfg.Topology = topo.Spec{Kind: topo.FatTree}
	// Per-message signaled completions: the windowed waits (and the
	// failure detector's single outstanding heartbeat) need every send to
	// produce a CQE, like the mpi tests run.
	cfg.Bench.SignalPeriod = 1
	cfg.Faults = ChaosSchedule(seed, &cfg, opt.Nodes)

	sys := node.NewSystem(&cfg, opt.Nodes)
	defer sys.Shutdown()
	comm := mpi.NewComm(sys.Nodes, &cfg, uct.PIOInline)

	crashed := map[int]bool{}
	for _, c := range cfg.Faults.Crashes {
		crashed[c.Node] = true
	}

	tr := rng.Stream(seed, "chaos/traffic")
	half := opt.Nodes / 2
	pairs := make([]*chaosPair, half)
	for i := 0; i < half; i++ {
		p := &chaosPair{src: i, dst: i + half, total: opt.Total, msgSize: 8 + 8*tr.Intn(3)}
		pairs[i] = p
		send := &chaosSendFrame{r: comm.Ranks[p.src], pair: p, opt: &opt, msg: make([]byte, p.msgSize)}
		recv := &chaosRecvFrame{r: comm.Ranks[p.dst], pair: p, opt: &opt}
		sys.K.SpawnTask(fmt.Sprintf("chaos.send%d-%d", p.src, p.dst), send)
		sys.K.SpawnTask(fmt.Sprintf("chaos.recv%d-%d", p.src, p.dst), recv)
	}

	res := &ChaosResult{Seed: seed, Nodes: opt.Nodes, Schedule: cfg.Faults}
	res.Events = sys.K.RunUntil(opt.Horizon)
	res.EndTime = sys.K.Now()
	res.StallReport = sys.K.StallReport()

	if sys.Faults != nil {
		res.WireDropped, res.WireCorrupted, res.Flaps = sys.Faults.Totals()
		res.Crashes, res.Pauses = sys.Faults.NodeTotals()
		for _, nf := range sys.Faults.NodeFaultRecords() {
			res.NodeFaults = append(res.NodeFaults, *nf)
		}
	}
	for _, n := range sys.Nodes {
		s := n.NIC.Stats()
		res.QPFails += s.QPFails
		res.CrashDiscards += s.CrashDiscards
		res.FlushedRecvs += s.FlushedRecvs
	}

	fail := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	for _, p := range pairs {
		rep := ChaosPairReport{
			Src: p.src, Dst: p.dst, MsgSize: p.msgSize,
			Total: p.total, Delivered: p.delivered,
			Dups: p.dups, Gaps: p.gaps, Corrupt: p.corrupt, BadLen: p.badLen,
			Survivor:        !crashed[p.src] && !crashed[p.dst],
			DeadlineCancels: p.deadlineCancels,
		}
		if p.sendErr != nil {
			rep.SendErr = p.sendErr.Error()
		}
		if p.recvErr != nil {
			rep.RecvErr = p.recvErr.Error()
		}
		res.Pairs = append(res.Pairs, rep)

		name := fmt.Sprintf("pair %d->%d", p.src, p.dst)
		if p.dups+p.gaps+p.corrupt+p.badLen > 0 { // invariant 1
			fail("%s: integrity violated: %d dup, %d misordered, %d corrupt, %d bad length",
				name, p.dups, p.gaps, p.corrupt, p.badLen)
		}
		if !p.senderDone || !p.recvDone { // invariant 2
			fail("%s: stream did not terminate (sender done=%v, receiver done=%v)",
				name, p.senderDone, p.recvDone)
		}
		if rep.Survivor { // invariant 5
			if p.delivered != p.total {
				fail("%s: survivor delivered %d of %d", name, p.delivered, p.total)
			}
			if p.sendErr != nil || p.recvErr != nil {
				fail("%s: survivor saw errors: send=%v recv=%v", name, p.sendErr, p.recvErr)
			}
		} else if p.delivered == 0 {
			fail("%s: no pre-fault goodput", name)
		}
	}
	if res.StallReport != "" { // invariant 3
		fail("watchdog: %s", strings.TrimSpace(res.StallReport))
	}
	if n := sys.Topo().InUseFrames(); n != 0 { // invariant 4
		fail("pools: %d fabric frame(s) leaked", n)
	}
	for _, n := range sys.Nodes {
		if tlps, dllps := n.Link.InUsePackets(); tlps != 0 || dllps != 0 {
			fail("pools: node %d PCIe link holds %d TLP(s), %d DLLP(s)", n.ID, tlps, dllps)
		}
	}
	return res
}

// ChaosLadder runs ChaosSoak across a seed ladder (fresh system per seed)
// and returns the per-seed results.
func ChaosLadder(base *config.Config, seeds []uint64, opt ChaosOptions) []*ChaosResult {
	out := make([]*ChaosResult, 0, len(seeds))
	for _, s := range seeds {
		out = append(out, ChaosSoak(base, s, opt))
	}
	return out
}

// String renders the result.
func (r *ChaosResult) String() string {
	var b strings.Builder
	state := "PASS"
	if !r.Passed() {
		state = "FAIL"
	}
	fmt.Fprintf(&b, "chaos seed %d: %s (%d nodes, %d pairs; drop %.4f corrupt %.4f, %d flap(s), %d crash(es), %d pause(s))\n",
		r.Seed, state, r.Nodes, len(r.Pairs), r.Schedule.DropRate, r.Schedule.CorruptRate,
		len(r.Schedule.Flaps), len(r.Schedule.Crashes), len(r.Schedule.Pauses))
	fmt.Fprintf(&b, "  wire -%d/-%d, %d flap(s) fired, %d crash(es), %d pause(s); %d QP fail(s), %d crash-discard(s), %d flushed recv(s); %d events to t=%v\n",
		r.WireDropped, r.WireCorrupted, r.Flaps, r.Crashes, r.Pauses,
		r.QPFails, r.CrashDiscards, r.FlushedRecvs, r.Events, r.EndTime)
	for _, nf := range r.NodeFaults {
		fmt.Fprintf(&b, "  node %d: %d crash(es), %d pause(s)\n", nf.Node, nf.Crashes, nf.Pauses)
	}
	for _, p := range r.Pairs {
		role := "survivor"
		if !p.Survivor {
			role = "crashed "
		}
		line := fmt.Sprintf("  %s pair %d->%d (%dB): %d/%d delivered", role, p.Src, p.Dst, p.MsgSize, p.Delivered, p.Total)
		if p.SendErr != "" {
			line += ", send err: " + p.SendErr
		}
		if p.RecvErr != "" {
			line += ", recv err: " + p.RecvErr
		}
		if p.DeadlineCancels > 0 {
			line += fmt.Sprintf(", %d deadline-cancelled recv(s)", p.DeadlineCancels)
		}
		b.WriteString(line + "\n")
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}
