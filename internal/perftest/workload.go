package perftest

import (
	"fmt"
	"math"
	"strings"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/workload"
)

// FormatWorkload renders a workload run for the CLI: per-cohort delivery,
// goodput and latency percentiles, transport-recovery counters, and — when
// the system was traced — the PR-9 stall-attribution breakdown of where
// message time went.
func FormatWorkload(res *workload.Result, sys *node.System) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s (seed %d): %d cohort(s), %d message(s) in %v\n",
		res.Name, res.Seed, len(res.Cohorts), totalOffered(res), res.Elapsed)
	for i := range res.Cohorts {
		c := &res.Cohorts[i]
		fmt.Fprintf(&b, "  %-12s offered %6d  delivered %6d  failed %4d  goodput %8.2f MB/s (%.0f msg/s)\n",
			c.Name, c.Offered, c.Delivered, c.Failed, c.Goodput()/1e6, msgRate(c))
		if c.Latency.N() > 0 {
			s := c.Latency.Summarize()
			fmt.Fprintf(&b, "  %-12s latency p50 %.0fns  p95 %.0fns  p99 %.0fns  max %.0fns  mean %.0fns\n",
				"", s.Median, s.P95, s.P99, s.Max, s.Mean)
		}
		if r := c.Recovery; r.Any() {
			fmt.Fprintf(&b, "  %-12s recovery: %d ack timeout(s), %d seq NAK(s), %d RNR NAK(s), %d retransmit(s)\n",
				"", r.AckTimeouts, r.SeqNaksRecv, r.RNRNaksRecv, r.Retransmits)
		}
	}
	if rep := StallReport(sys); rep != nil && len(rep.Msgs) > 0 {
		sh := rep.Shares()
		fmt.Fprintf(&b, "  stall attribution (%d traced msg(s)): ideal %.1f%%  queue %.1f%%  stall %.1f%%  pend %.1f%%  backoff %.1f%%  waste %.1f%%\n",
			len(rep.Msgs), 100*sh[0], 100*sh[1], 100*sh[2], 100*sh[3], 100*sh[4], 100*sh[5])
	}
	return b.String()
}

func totalOffered(res *workload.Result) int {
	n := 0
	for i := range res.Cohorts {
		n += res.Cohorts[i].Offered
	}
	return n
}

func msgRate(c *workload.CohortResult) float64 {
	span := c.LastDone - c.FirstAt
	if span <= 0 {
		return 0
	}
	return float64(c.Delivered) / span.Seconds()
}

// WorkloadSaturation connects a workload spec to the saturation knee-finder:
// the spec's first cohort shapes the canonical incast — its distinct source
// nodes set the sender count and its mean message size the sweep's size —
// over the spec's topology, credits and rx budget. loads are offered-load
// fractions of the predicted bottleneck (SaturationSweep semantics: paced
// senders on nodes 1..senders into node 0).
func WorkloadSaturation(spec *workload.Spec, noise config.NoiseLevel, seed uint64, loads []float64, opt Options, parallelism int) (*SaturationResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &spec.Cohorts[0]
	senders := 0
	seen := map[int]bool{}
	for _, s := range c.Src {
		if s != 0 && !seen[s] {
			seen[s] = true
			senders++
		}
	}
	if senders == 0 {
		return nil, fmt.Errorf("perftest: workload %q cohort %q has no non-receiver source nodes", spec.Name, c.Name)
	}
	opt.MsgSize = int(math.Round(c.Size.MeanBytes()))
	if opt.MsgSize < 1 {
		opt.MsgSize = 1
	}
	mkSys := func() *node.System {
		cfg := spec.BuildConfig(noise, seed)
		cfg.TraceCapacity = 1 << 20
		return node.NewSystem(cfg, spec.Nodes)
	}
	return SaturationSweep(mkSys, senders, loads, opt, parallelism), nil
}
