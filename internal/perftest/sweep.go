package perftest

import (
	"fmt"

	"breakband/internal/campaign"
	"breakband/internal/config"
	"breakband/internal/mlx"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// SizePoint is one message-size measurement of the latency sweep.
type SizePoint struct {
	Bytes int
	// LatencyNs is the adjusted one-way latency.
	LatencyNs float64
	// SoftwareNs estimates the constant CPU share (the LLP post and
	// progress means), so SoftwarePct shows the paper's §1 point: the
	// software share of latency collapses as messages grow, which is why
	// the paper focuses its software analysis on small messages.
	SoftwareNs  float64
	SoftwarePct float64
}

// LatencySizeSweep measures one-way latency across message sizes. Sizes at
// or below the inline maximum use the PIO short path; larger ones the
// buffered-copy path, as UCX selects by size. Each size runs on its own
// fresh system, fanned out on a parallelism-wide pool (<= 0 selects
// GOMAXPROCS); mkSys must be safe to call concurrently.
func LatencySizeSweep(mkSys func() *node.System, sizes []int, iters, parallelism int) []SizePoint {
	return campaign.Map(parallelism, sizes, func(_, size int) SizePoint {
		sys := mkSys()
		defer sys.Shutdown()
		res := amLatAuto(sys, size, iters)
		sw := sys.Cfg.LLPPostMean() + sys.Cfg.LLPProgMean()
		return SizePoint{
			Bytes:       size,
			LatencyNs:   res,
			SoftwareNs:  sw,
			SoftwarePct: sw / res * 100,
		}
	})
}

// amLatAuto is am_lat with automatic short/bcopy path selection by size.
func amLatAuto(sys *node.System, size, iters int) float64 {
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]
	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(uct.PIOInline, 1)
	ep1 := w1.NewEp(uct.PIOInline, 1)
	uct.Connect(ep0, ep1)

	const amPing, amPong = 2, 3
	gotPong, gotPing := false, false
	w0.SetAmHandler(amPong, func(p *sim.Proc, data []byte) { gotPong = true })
	w1.SetAmHandler(amPing, func(p *sim.Proc, data []byte) { gotPing = true })

	post := func(p *sim.Proc, ep *uct.Ep, id uint8, msg []byte) {
		var err error
		for {
			if len(msg) <= mlx.InlineMax {
				err = ep.AmShort(p, id, msg)
			} else {
				err = ep.AmBcopy(p, id, msg)
			}
			if err != uct.ErrNoResource {
				break
			}
			if ep == ep0 {
				w0.Progress(p)
			} else {
				w1.Progress(p)
			}
		}
		if err != nil {
			panic(fmt.Sprintf("perftest: sweep post: %v", err))
		}
	}

	msg := make([]byte, size)
	warmup := 30
	total := warmup + iters
	var reported float64
	sys.K.Spawn("sweep.responder", func(p *sim.Proc) {
		ep1.PostRecvs(p, 64)
		for i := 0; i < total; i++ {
			for !gotPing {
				w1.Progress(p)
			}
			gotPing = false
			post(p, ep1, amPong, msg)
		}
	})
	sys.K.Spawn("sweep.initiator", func(p *sim.Proc) {
		ep0.PostRecvs(p, 64)
		var start units.Time
		for i := 0; i < total; i++ {
			if i == warmup {
				start = p.Now()
			}
			post(p, ep0, amPing, msg)
			p.Advance(cfg.SW.MeasUpdate.Sample(n0.Rand))
			for !gotPong {
				w0.Progress(p)
			}
			gotPong = false
			p.Advance(cfg.SW.BenchLoop.Sample(n0.Rand))
		}
		reported = (p.Now() - start).Ns() / float64(2*iters)
	})
	sys.Run()
	return reported - cfg.SW.MeasUpdate.Mean().Ns()/2
}

// WindowedResult is one point of the poll-window ablation.
type WindowedResult struct {
	Window   int
	PerMsgNs float64
	// ModelMin is the paper's §4.2 lower bound on the window: below
	// MinPollPeriod the sender stalls on completion generation.
	ModelMin int
}

// WindowedPutBw posts p messages then polls p completions per window — the
// access pattern behind the paper's §4.2 lower bound
// p >= gen_completion / LLP_post. For windows below the bound the sender
// waits on completion generation; above it the injection overhead flattens
// to the CPU time.
func WindowedPutBw(sys *node.System, window, iters int) *WindowedResult {
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]
	w0 := uct.NewWorker(n0, cfg)
	ep0 := w0.NewEp(uct.PIOInline, 1)
	// The target endpoint exists only to terminate the QP: put_bw is
	// one-sided, so the target CPU never progresses its worker and no
	// responder proc is spawned.
	ep1 := uct.NewWorker(n1, cfg).NewEp(uct.PIOInline, 1)
	uct.Connect(ep0, ep1)
	tgt := n1.Mem.Alloc("windowed.target", 4096, 64)
	ep0.RemoteBuf = tgt.Base

	msg := make([]byte, 8)
	res := &WindowedResult{Window: window}
	sys.K.Spawn("windowed_put_bw", func(p *sim.Proc) {
		windows := iters / window
		warmup := 2
		var start units.Time
		completed := 0
		for wnd := 0; wnd < windows+warmup; wnd++ {
			if wnd == warmup {
				start = p.Now()
				completed = 0
			}
			for i := 0; i < window; i++ {
				for ep0.PutShort(p, 0, msg) == uct.ErrNoResource {
					w0.Progress(p)
				}
			}
			// Poll the window's completions before reusing it.
			target := completed + window
			for completed < target {
				completed += w0.Progress(p)
			}
			p.Advance(cfg.SW.MeasUpdate.Sample(n0.Rand))
		}
		res.PerMsgNs = (p.Now() - start).Ns() / float64(windows*window)
	})
	sys.Run()
	res.ModelMin = minPollPeriod(cfg)
	return res
}

// WindowedSweep runs WindowedPutBw across window sizes, one fresh system
// per point, fanned out on a parallelism-wide pool (<= 0 selects
// GOMAXPROCS); mkSys must be safe to call concurrently.
func WindowedSweep(mkSys func() *node.System, windows []int, iters, parallelism int) []*WindowedResult {
	return campaign.Map(parallelism, windows, func(_, window int) *WindowedResult {
		sys := mkSys()
		defer sys.Shutdown()
		return WindowedPutBw(sys, window, iters)
	})
}

// minPollPeriod evaluates the §4.2 bound from the configured means.
// gen_completion uses the Table-1 calibration targets (the live config
// values measure to these through the methodology).
func minPollPeriod(cfg *config.Config) int {
	return int(config.TabGenCompletion/cfg.LLPPostMean()) + 1
}
