package perftest

import (
	"breakband/internal/campaign"
	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// SizePoint is one message-size measurement of the latency sweep.
type SizePoint struct {
	Bytes int
	// LatencyNs is the adjusted one-way latency.
	LatencyNs float64
	// SoftwareNs estimates the constant CPU share (the LLP post and
	// progress means), so SoftwarePct shows the paper's §1 point: the
	// software share of latency collapses as messages grow, which is why
	// the paper focuses its software analysis on small messages.
	SoftwareNs  float64
	SoftwarePct float64
}

// LatencySizeSweep measures one-way latency across message sizes. Sizes at
// or below the inline maximum use the PIO short path; larger ones the
// buffered-copy path, as UCX selects by size. Each size runs on its own
// fresh system, fanned out on a parallelism-wide pool (<= 0 selects
// GOMAXPROCS); mkSys must be safe to call concurrently.
func LatencySizeSweep(mkSys func() *node.System, sizes []int, iters, parallelism int) []SizePoint {
	return campaign.Map(parallelism, sizes, func(_, size int) SizePoint {
		sys := mkSys()
		defer sys.Shutdown()
		res := amLatAuto(sys, size, iters)
		sw := sys.Cfg.LLPPostMean() + sys.Cfg.LLPProgMean()
		return SizePoint{
			Bytes:       size,
			LatencyNs:   res,
			SoftwareNs:  sw,
			SoftwarePct: sw / res * 100,
		}
	})
}

// amLatAuto is am_lat with automatic short/bcopy path selection by size. It
// reuses the am_lat driver frames with auto-path strict posting.
func amLatAuto(sys *node.System, size, iters int) float64 {
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]
	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(uct.PIOInline, 1)
	ep1 := w1.NewEp(uct.PIOInline, 1)
	uct.Connect(ep0, ep1)

	const amPing, amPong = 2, 3
	gotPong, gotPing := false, false
	w0.SetAmHandler(amPong, func(t *sim.Task, data []byte) { gotPong = true })
	w1.SetAmHandler(amPing, func(t *sim.Task, data []byte) { gotPing = true })

	msg := make([]byte, size)
	opt := Options{Iters: iters, Warmup: 30}
	total := opt.Warmup + opt.Iters
	res := &AmLatResult{Iters: iters, RTTs: &stats.Sample{}}

	echo := &amLatEchoFrame{w: w1, ep: ep1, total: total, gotPing: &gotPing}
	echo.postF = postSpinFrame{w: w1, ep: ep1, kind: postAmAuto, strict: true, id: amPong, msg: msg}
	sys.K.SpawnTask("sweep.responder", echo)

	ping := &amLatPingFrame{cfg: cfg, n0: n0, w0: w0, opt: &opt, res: res, total: total, gotPong: &gotPong}
	ping.postF = postSpinFrame{w: w0, ep: ep0, kind: postAmAuto, strict: true, id: amPing, msg: msg}
	sys.K.SpawnTask("sweep.initiator", ping)
	sys.Run()
	return res.ReportedNs - cfg.SW.MeasUpdate.Mean().Ns()/2
}

// WindowedResult is one point of the poll-window ablation.
type WindowedResult struct {
	Window   int
	PerMsgNs float64
	// ModelMin is the paper's §4.2 lower bound on the window: below
	// MinPollPeriod the sender stalls on completion generation.
	ModelMin int
}

// WindowedPutBw posts p messages then polls p completions per window — the
// access pattern behind the paper's §4.2 lower bound
// p >= gen_completion / LLP_post. For windows below the bound the sender
// waits on completion generation; above it the injection overhead flattens
// to the CPU time.
func WindowedPutBw(sys *node.System, window, iters int) *WindowedResult {
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]
	w0 := uct.NewWorker(n0, cfg)
	ep0 := w0.NewEp(uct.PIOInline, 1)
	// The target endpoint exists only to terminate the QP: put_bw is
	// one-sided, so the target CPU never progresses its worker and no
	// responder proc is spawned.
	ep1 := uct.NewWorker(n1, cfg).NewEp(uct.PIOInline, 1)
	uct.Connect(ep0, ep1)
	tgt := n1.Mem.Alloc("windowed.target", 4096, 64)
	ep0.RemoteBuf = tgt.Base

	msg := make([]byte, 8)
	res := &WindowedResult{Window: window}
	f := &windowedFrame{cfg: cfg, n0: n0, w0: w0, res: res, windows: iters / window, window: window, warmup: 2}
	f.postF = postSpinFrame{w: w0, ep: ep0, kind: postPutShort, msg: msg}
	sys.K.SpawnTask("windowed_put_bw", f)
	sys.Run()
	res.ModelMin = minPollPeriod(cfg)
	return res
}

// windowedFrame drives the poll-window ablation: post a window, poll the
// window's completions before reusing it.
type windowedFrame struct {
	cfg     *config.Config
	n0      *node.Node
	w0      *uct.Worker
	res     *WindowedResult
	windows int
	window  int
	warmup  int

	postF     postSpinFrame
	pc        int
	wnd       int
	i         int
	completed int
	target    int
	start     units.Time
}

func (f *windowedFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0: // window head
			if f.wnd >= f.windows+f.warmup {
				f.res.PerMsgNs = (t.Now() - f.start).Ns() / float64(f.windows*f.window)
				t.Return()
				return
			}
			if f.wnd == f.warmup {
				f.start = t.Now()
				f.completed = 0
			}
			f.i = 0
			f.pc = 1
		case 1: // post loop head
			if f.i >= f.window {
				// Poll the window's completions before reusing it.
				f.target = f.completed + f.window
				f.pc = 3
				continue
			}
			f.pc = 2
			f.postF.start(t)
			return
		case 2:
			f.i++
			f.pc = 1
		case 3: // poll loop head
			if f.completed < f.target {
				f.pc = 4
				f.w0.StartProgress(t)
				return
			}
			t.Advance(f.cfg.SW.MeasUpdate.Sample(f.n0.Rand))
			f.wnd++
			f.pc = 0
		case 4:
			f.completed += f.w0.LastProgress()
			f.pc = 3
		}
	}
}

// WindowedSweep runs WindowedPutBw across window sizes, one fresh system
// per point, fanned out on a parallelism-wide pool (<= 0 selects
// GOMAXPROCS); mkSys must be safe to call concurrently.
func WindowedSweep(mkSys func() *node.System, windows []int, iters, parallelism int) []*WindowedResult {
	return campaign.Map(parallelism, windows, func(_, window int) *WindowedResult {
		sys := mkSys()
		defer sys.Shutdown()
		return WindowedPutBw(sys, window, iters)
	})
}

// minPollPeriod evaluates the §4.2 bound from the configured means.
// gen_completion uses the Table-1 calibration targets (the live config
// values measure to these through the methodology).
func minPollPeriod(cfg *config.Config) int {
	return int(config.TabGenCompletion/cfg.LLPPostMean()) + 1
}
