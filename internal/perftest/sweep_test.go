package perftest

import (
	"reflect"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
)

func mkDet() *node.System {
	return node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
}

func TestLatencySizeSweepMonotone(t *testing.T) {
	pts := LatencySizeSweep(mkDet, []int{8, 64, 512, 4096}, 150, 0)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyNs <= pts[i-1].LatencyNs {
			t.Errorf("latency not increasing with size: %v -> %v",
				pts[i-1], pts[i])
		}
	}
}

func TestLatencySizeSweepSoftwareShareFalls(t *testing.T) {
	// The paper's §1 motivation: the software share matters for small
	// messages and collapses for large ones.
	pts := LatencySizeSweep(mkDet, []int{8, 4096}, 150, 0)
	small, large := pts[0], pts[1]
	if small.SoftwarePct < 15 {
		t.Errorf("8B software share = %.1f%%, expected substantial", small.SoftwarePct)
	}
	if large.SoftwarePct > small.SoftwarePct/2 {
		t.Errorf("4KB software share = %.1f%% vs 8B %.1f%%: should collapse",
			large.SoftwarePct, small.SoftwarePct)
	}
}

func TestSizeSweepPathSwitch(t *testing.T) {
	// Crossing the inline limit (32B) moves to the buffered-copy path,
	// which pays the descriptor and payload DMA reads: a visible jump.
	pts := LatencySizeSweep(mkDet, []int{32, 64}, 120, 0)
	jump := pts[1].LatencyNs - pts[0].LatencyNs
	if jump < 300 {
		t.Errorf("inline->bcopy jump = %.2f ns, expected the DMA round trips", jump)
	}
}

func TestSweepsParallelMatchesSerial(t *testing.T) {
	// Sweep points are isolated systems, so pool width must not change a
	// bit of the output.
	sizes := []int{8, 64, 1024}
	if a, b := LatencySizeSweep(mkDet, sizes, 100, 1), LatencySizeSweep(mkDet, sizes, 100, 4); !reflect.DeepEqual(a, b) {
		t.Errorf("size sweep diverges:\nserial   %v\nparallel %v", a, b)
	}
	windows := []int{1, 8, 32}
	a, b := WindowedSweep(mkDet, windows, 512, 1), WindowedSweep(mkDet, windows, 512, 4)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("windowed sweep diverges:\nserial   %v\nparallel %v", a, b)
	}
	cores := []int{1, 4}
	c, d := MultiCoreSweep(mkDet, cores, Options{Iters: 400}, 1), MultiCoreSweep(mkDet, cores, Options{Iters: 400}, 4)
	if !reflect.DeepEqual(c, d) {
		t.Errorf("multi-core sweep diverges:\nserial   %v\nparallel %v", c, d)
	}
}

func TestWindowedPutBwBound(t *testing.T) {
	results := map[int]float64{}
	for _, res := range WindowedSweep(mkDet, []int{1, 8, 32}, 1024, 0) {
		results[res.Window] = res.PerMsgNs
		if res.ModelMin != 8 {
			t.Errorf("model min window = %d, want 8 (paper §4.2)", res.ModelMin)
		}
	}
	// Window 1 is the synchronous post the paper warns about: dominated
	// by completion generation (~1.3 us), several times slower.
	if results[1] < 3*results[32] {
		t.Errorf("window-1 = %.2f vs window-32 = %.2f: synchronous penalty missing",
			results[1], results[32])
	}
	// Past the bound, most of the benefit is already realized: window 8
	// is within 50% of window 32's steady state.
	if results[8] > 1.5*results[32] {
		t.Errorf("window-8 = %.2f vs window-32 = %.2f: bound not flattening",
			results[8], results[32])
	}
}
