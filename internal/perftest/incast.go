package perftest

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// winShared is the measured-window state shared by the concurrent senders
// of a scenario: the window opens when the last sender finishes warmup and
// closes when the last sender finishes posting.
type winShared struct {
	start, end units.Time
	done       int
}

// putLoopFrame is one sender of the incast and multicore scenarios: the
// put_bw loop (warmup, measured iterations with batched polling, in-flight
// drain) against a shared measured window.
type putLoopFrame struct {
	cfg  *config.Config
	rand *rng.Rand // jitter stream for the bench-loop advances
	w    *uct.Worker
	ep   *uct.Ep
	opt  *Options
	st   *winShared
	// marks, when set, collects each measured iteration's completion
	// time — the flap-incast scenario splits the run into pre/dip/post
	// windows from them. Nil on the hot scenarios.
	marks *[]units.Time

	postF postSpinFrame
	pc    int
	i     int
}

func (f *putLoopFrame) Step(t *sim.Task) {
	cfg := f.cfg
	for {
		switch f.pc {
		case 0: // warmup loop head
			if f.i >= f.opt.Warmup {
				if t.Now() > f.st.start {
					// The window opens when the last sender finishes
					// warmup.
					f.st.start = t.Now()
				}
				f.i = 0
				f.pc = 3
				continue
			}
			f.pc = 1
			f.postF.start(t)
			return
		case 1:
			if (f.i+1)%cfg.Bench.PollBatch == 0 {
				f.i++
				f.pc = 0
				f.w.StartProgress(t)
				return
			}
			f.i++
			f.pc = 0
		case 3: // measured loop head
			if f.i >= f.opt.Iters {
				if t.Now() > f.st.end {
					f.st.end = t.Now()
				}
				f.pc = 6
				continue
			}
			f.pc = 4
			f.postF.start(t)
			return
		case 4:
			if (f.i+1)%cfg.Bench.PollBatch == 0 {
				f.pc = 5
				f.w.StartProgress(t)
				return
			}
			f.pc = 5
		case 5:
			t.Advance(cfg.SW.MeasUpdate.Sample(f.rand))
			t.Advance(cfg.SW.BenchLoop.Sample(f.rand))
			if f.marks != nil {
				*f.marks = append(*f.marks, t.Now())
			}
			f.i++
			f.pc = 3
		case 6: // drain the in-flight tail outside the window
			if f.ep.InFlight() > 0 {
				f.w.StartProgress(t)
				return
			}
			f.st.done++
			t.Return()
			return
		}
	}
}

// IncastResult reports the N-senders -> one-receiver congestion scenario.
type IncastResult struct {
	Senders  int
	MsgSize  int
	Messages int
	Elapsed  units.Time
	// AggMsgRate is messages per second across every sender.
	AggMsgRate float64
	// PerSenderMsgRate is the per-sender average — the number that
	// collapses as the shared receiver downlink port congests.
	PerSenderMsgRate float64
	// PerSenderBwMBs is the matching per-sender goodput in MB/s.
	PerSenderBwMBs float64
	// MaxSwitchQueue is the deepest switch output-port queue of the run
	// (the incast hotspot is the receiver's downlink port).
	MaxSwitchQueue int
	// CreditStalls counts egress stalls on exhausted link credits —
	// backpressure reaching the senders.
	CreditStalls uint64
}

// clampSenders resolves the senders argument of the incast-family
// scenarios: <= 0 (or more than the nodes available) selects every node
// but the receiver.
func clampSenders(sys *node.System, senders int) int {
	if senders <= 0 || senders > len(sys.Nodes)-1 {
		senders = len(sys.Nodes) - 1
	}
	return senders
}

// incastWindow is the sender machinery shared by the incast-family
// scenarios (IncastPutBw, OversubscribedPutBw): `senders` sender nodes
// (sys.Nodes[1..senders]) run the put_bw loop into node 0 concurrently
// and the system runs to completion. The measured window opens when the
// last sender finishes warmup and closes when the last sender finishes
// posting its measured iterations; each sender drains its in-flight tail
// outside the window. name prefixes the spawned procs and target labels.
// The returned endpoints (sender side, receiver worker) expose the QP
// statistics the scenarios report.
func incastWindow(sys *node.System, senders int, opt Options, name string) (elapsed units.Time, senderEps []*uct.Ep, recvW *uct.Worker) {
	cfg := sys.Cfg
	recv := sys.Nodes[0]
	recvW = uct.NewWorker(recv, cfg)

	st := &winShared{}
	for s := 1; s <= senders; s++ {
		n := sys.Nodes[s]
		w := uct.NewWorker(n, cfg)
		ep := w.NewEp(opt.Mode, opt.SignalPeriod)
		epR := recvW.NewEp(opt.Mode, opt.SignalPeriod)
		uct.Connect(ep, epR)
		tgt := recv.Mem.Alloc(fmt.Sprintf("%s.target%d", name, s), uint64(max(opt.MsgSize, 64)), 64)
		ep.RemoteBuf = tgt.Base
		senderEps = append(senderEps, ep)

		msg := make([]byte, opt.MsgSize)
		f := &putLoopFrame{cfg: cfg, rand: n.Rand, w: w, ep: ep, opt: &opt, st: st}
		f.postF = postSpinFrame{w: w, ep: ep, kind: postPutAuto, strict: true, msg: msg}
		sys.K.SpawnTask(fmt.Sprintf("%s.sender%d", name, s), f)
	}
	sys.Run()
	if st.done != senders {
		panic(fmt.Sprintf("perftest: only %d of %d %s senders finished", st.done, senders, name))
	}
	return st.end - st.start, senderEps, recvW
}

// IncastPutBw runs the put_bw loop from `senders` sender nodes
// (sys.Nodes[1..senders]) into node 0 concurrently: the classic incast.
// All flows converge on the receiver's downlink switch port, whose
// serialization queue and credit backpressure the topology models;
// senders <= 0 selects every node but the receiver. With one sender it
// doubles as the uncontended baseline on the identical path.
func IncastPutBw(sys *node.System, senders int, opt Options) *IncastResult {
	opt.Defaults(sys.Cfg)
	senders = clampSenders(sys, senders)
	res := &IncastResult{Senders: senders, MsgSize: opt.MsgSize}
	res.Elapsed, _, _ = incastWindow(sys, senders, opt, "incast")

	res.Messages = senders * opt.Iters
	res.AggMsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	res.PerSenderMsgRate = res.AggMsgRate / float64(senders)
	res.PerSenderBwMBs = res.PerSenderMsgRate * float64(opt.MsgSize) / 1e6
	res.MaxSwitchQueue = sys.Topo().MaxSwitchQueue()
	res.CreditStalls = sys.Topo().CreditStalls()
	return res
}

// String renders the result.
func (r *IncastResult) String() string {
	return fmt.Sprintf("incast put_bw: %d senders x %dB, %d msgs in %v -> %.0f msg/s/sender (%.1f MB/s/sender; max switch queue %d, %d credit stalls)",
		r.Senders, r.MsgSize, r.Messages, r.Elapsed, r.PerSenderMsgRate, r.PerSenderBwMBs, r.MaxSwitchQueue, r.CreditStalls)
}

// AllToAllResult reports the all-to-all congestion scenario.
type AllToAllResult struct {
	Nodes    int
	MsgSize  int
	Messages int
	Elapsed  units.Time
	// AggMsgRate is messages per second across the whole system.
	AggMsgRate float64
	// PerNodeMsgRate is the per-node injection average.
	PerNodeMsgRate float64
	MaxSwitchQueue int
	CreditStalls   uint64
}

// AllToAllPutBw runs opt.Iters rounds in which every node RDMA-writes one
// message to every other node, polling a completion every
// Bench.PollBatch posts — the uniform traffic matrix that loads every
// tier of a multi-switch topology (cross-leaf flows share leaf-spine
// links in the fat-tree).
func AllToAllPutBw(sys *node.System, opt Options) *AllToAllResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n := len(sys.Nodes)
	res := &AllToAllResult{Nodes: n, MsgSize: opt.MsgSize}

	workers := make([]*uct.Worker, n)
	for i := range workers {
		workers[i] = uct.NewWorker(sys.Nodes[i], cfg)
	}
	// eps[i][j] is node i's endpoint towards node j.
	eps := make([][]*uct.Ep, n)
	for i := range eps {
		eps[i] = make([]*uct.Ep, n)
		for j := range eps[i] {
			if i != j {
				eps[i][j] = workers[i].NewEp(opt.Mode, opt.SignalPeriod)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			uct.Connect(eps[i][j], eps[j][i])
			ti := sys.Nodes[j].Mem.Alloc(fmt.Sprintf("a2a.%d.%d", i, j), uint64(max(opt.MsgSize, 64)), 64)
			eps[i][j].RemoteBuf = ti.Base
			tj := sys.Nodes[i].Mem.Alloc(fmt.Sprintf("a2a.%d.%d", j, i), uint64(max(opt.MsgSize, 64)), 64)
			eps[j][i].RemoteBuf = tj.Base
		}
	}

	st := &winShared{}
	for i := 0; i < n; i++ {
		msg := make([]byte, opt.MsgSize)
		f := &a2aNodeFrame{cfg: cfg, rand: sys.Nodes[i].Rand, w: workers[i], me: i, n: n, eps: eps, opt: &opt, st: st}
		f.postF = postSpinFrame{w: workers[i], kind: postPutAuto, strict: true, msg: msg}
		sys.K.SpawnTask(fmt.Sprintf("a2a.node%d", i), f)
	}
	sys.Run()
	if st.done != n {
		panic(fmt.Sprintf("perftest: only %d of %d all-to-all nodes finished", st.done, n))
	}

	res.Messages = n * (n - 1) * opt.Iters
	res.Elapsed = st.end - st.start
	res.AggMsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	res.PerNodeMsgRate = res.AggMsgRate / float64(n)
	res.MaxSwitchQueue = sys.Topo().MaxSwitchQueue()
	res.CreditStalls = sys.Topo().CreditStalls()
	return res
}

// a2aNodeFrame is one node of the all-to-all: rounds of one put to every
// peer with batched polling, then a per-peer in-flight drain.
type a2aNodeFrame struct {
	cfg  *config.Config
	rand *rng.Rand
	w    *uct.Worker
	me   int
	n    int
	eps  [][]*uct.Ep
	opt  *Options
	st   *winShared

	postF postSpinFrame
	pc    int
	r     int // round index (warmup, then measured)
	j     int // peer index within a round / drain
	retPc int // state to resume after the current round
	posts int
}

func (f *a2aNodeFrame) Step(t *sim.Task) {
	cfg := f.cfg
	for {
		switch f.pc {
		case 0: // warmup rounds head
			if f.r >= f.opt.Warmup {
				if t.Now() > f.st.start {
					f.st.start = t.Now()
				}
				f.r = 0
				f.pc = 4
				continue
			}
			f.retPc = 1
			f.j = 0
			f.pc = 2
		case 1:
			f.r++
			f.pc = 0
		case 4: // measured rounds head
			if f.r >= f.opt.Iters {
				if t.Now() > f.st.end {
					f.st.end = t.Now()
				}
				f.j = 0
				f.pc = 6
				continue
			}
			f.retPc = 5
			f.j = 0
			f.pc = 2
		case 5:
			t.Advance(cfg.SW.MeasUpdate.Sample(f.rand))
			t.Advance(cfg.SW.BenchLoop.Sample(f.rand))
			f.r++
			f.pc = 4
		case 2: // one round: put to every peer
			if f.j >= f.n {
				f.pc = f.retPc
				continue
			}
			if f.j == f.me {
				f.j++
				continue
			}
			f.pc = 3
			f.postF.ep = f.eps[f.me][f.j]
			f.postF.start(t)
			return
		case 3:
			f.posts++
			if f.posts%cfg.Bench.PollBatch == 0 {
				f.pc = 31
				f.w.StartProgress(t)
				return
			}
			f.j++
			f.pc = 2
		case 31:
			f.j++
			f.pc = 2
		case 6: // drain every peer's in-flight tail
			if f.j >= f.n {
				f.st.done++
				t.Return()
				return
			}
			if f.j == f.me {
				f.j++
				continue
			}
			if f.eps[f.me][f.j].InFlight() > 0 {
				f.w.StartProgress(t)
				return
			}
			f.j++
		}
	}
}

// String renders the result.
func (r *AllToAllResult) String() string {
	return fmt.Sprintf("all-to-all put_bw: %d nodes x %dB, %d msgs in %v -> %.0f msg/s aggregate (max switch queue %d, %d credit stalls)",
		r.Nodes, r.MsgSize, r.Messages, r.Elapsed, r.AggMsgRate, r.MaxSwitchQueue, r.CreditStalls)
}
