package perftest

import (
	"fmt"

	"breakband/internal/mlx"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// putAuto posts data on ep through the size-appropriate path (inline short
// below mlx.InlineMax, buffered-copy above), spinning on progress while
// the transmit queue is full.
func putAuto(p *sim.Proc, w *uct.Worker, ep *uct.Ep, off uint64, msg []byte) {
	for {
		var err error
		if len(msg) <= mlx.InlineMax {
			err = ep.PutShort(p, off, msg)
		} else {
			err = ep.PutBcopy(p, off, msg)
		}
		if err == nil {
			return
		}
		if err != uct.ErrNoResource {
			panic(fmt.Sprintf("perftest: put: %v", err))
		}
		w.Progress(p)
	}
}

// IncastResult reports the N-senders -> one-receiver congestion scenario.
type IncastResult struct {
	Senders  int
	MsgSize  int
	Messages int
	Elapsed  units.Time
	// AggMsgRate is messages per second across every sender.
	AggMsgRate float64
	// PerSenderMsgRate is the per-sender average — the number that
	// collapses as the shared receiver downlink port congests.
	PerSenderMsgRate float64
	// PerSenderBwMBs is the matching per-sender goodput in MB/s.
	PerSenderBwMBs float64
	// MaxSwitchQueue is the deepest switch output-port queue of the run
	// (the incast hotspot is the receiver's downlink port).
	MaxSwitchQueue int
	// CreditStalls counts egress stalls on exhausted link credits —
	// backpressure reaching the senders.
	CreditStalls uint64
}

// clampSenders resolves the senders argument of the incast-family
// scenarios: <= 0 (or more than the nodes available) selects every node
// but the receiver.
func clampSenders(sys *node.System, senders int) int {
	if senders <= 0 || senders > len(sys.Nodes)-1 {
		senders = len(sys.Nodes) - 1
	}
	return senders
}

// incastWindow is the sender machinery shared by the incast-family
// scenarios (IncastPutBw, OversubscribedPutBw): `senders` sender nodes
// (sys.Nodes[1..senders]) run the put_bw loop into node 0 concurrently
// and the system runs to completion. The measured window opens when the
// last sender finishes warmup and closes when the last sender finishes
// posting its measured iterations; each sender drains its in-flight tail
// outside the window. name prefixes the spawned procs and target labels.
// The returned endpoints (sender side, receiver worker) expose the QP
// statistics the scenarios report.
func incastWindow(sys *node.System, senders int, opt Options, name string) (elapsed units.Time, senderEps []*uct.Ep, recvW *uct.Worker) {
	cfg := sys.Cfg
	recv := sys.Nodes[0]
	recvW = uct.NewWorker(recv, cfg)

	var start, end units.Time
	done := 0

	for s := 1; s <= senders; s++ {
		n := sys.Nodes[s]
		w := uct.NewWorker(n, cfg)
		ep := w.NewEp(opt.Mode, opt.SignalPeriod)
		epR := recvW.NewEp(opt.Mode, opt.SignalPeriod)
		uct.Connect(ep, epR)
		tgt := recv.Mem.Alloc(fmt.Sprintf("%s.target%d", name, s), uint64(max(opt.MsgSize, 64)), 64)
		ep.RemoteBuf = tgt.Base
		senderEps = append(senderEps, ep)

		msg := make([]byte, opt.MsgSize)
		nd, wS, epS := n, w, ep
		sys.K.Spawn(fmt.Sprintf("%s.sender%d", name, s), func(p *sim.Proc) {
			for i := 0; i < opt.Warmup; i++ {
				putAuto(p, wS, epS, 0, msg)
				if (i+1)%cfg.Bench.PollBatch == 0 {
					wS.Progress(p)
				}
			}
			if p.Now() > start {
				start = p.Now() // window opens when the last sender finishes warmup
			}
			for i := 0; i < opt.Iters; i++ {
				putAuto(p, wS, epS, 0, msg)
				if (i+1)%cfg.Bench.PollBatch == 0 {
					wS.Progress(p)
				}
				p.Advance(cfg.SW.MeasUpdate.Sample(nd.Rand))
				p.Advance(cfg.SW.BenchLoop.Sample(nd.Rand))
			}
			if p.Now() > end {
				end = p.Now()
			}
			for epS.InFlight() > 0 {
				wS.Progress(p)
			}
			done++
		})
	}
	sys.Run()
	if done != senders {
		panic(fmt.Sprintf("perftest: only %d of %d %s senders finished", done, senders, name))
	}
	return end - start, senderEps, recvW
}

// IncastPutBw runs the put_bw loop from `senders` sender nodes
// (sys.Nodes[1..senders]) into node 0 concurrently: the classic incast.
// All flows converge on the receiver's downlink switch port, whose
// serialization queue and credit backpressure the topology models;
// senders <= 0 selects every node but the receiver. With one sender it
// doubles as the uncontended baseline on the identical path.
func IncastPutBw(sys *node.System, senders int, opt Options) *IncastResult {
	opt.Defaults(sys.Cfg)
	senders = clampSenders(sys, senders)
	res := &IncastResult{Senders: senders, MsgSize: opt.MsgSize}
	res.Elapsed, _, _ = incastWindow(sys, senders, opt, "incast")

	res.Messages = senders * opt.Iters
	res.AggMsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	res.PerSenderMsgRate = res.AggMsgRate / float64(senders)
	res.PerSenderBwMBs = res.PerSenderMsgRate * float64(opt.MsgSize) / 1e6
	res.MaxSwitchQueue = sys.Topo().MaxSwitchQueue()
	res.CreditStalls = sys.Topo().CreditStalls()
	return res
}

// String renders the result.
func (r *IncastResult) String() string {
	return fmt.Sprintf("incast put_bw: %d senders x %dB, %d msgs in %v -> %.0f msg/s/sender (%.1f MB/s/sender; max switch queue %d, %d credit stalls)",
		r.Senders, r.MsgSize, r.Messages, r.Elapsed, r.PerSenderMsgRate, r.PerSenderBwMBs, r.MaxSwitchQueue, r.CreditStalls)
}

// AllToAllResult reports the all-to-all congestion scenario.
type AllToAllResult struct {
	Nodes    int
	MsgSize  int
	Messages int
	Elapsed  units.Time
	// AggMsgRate is messages per second across the whole system.
	AggMsgRate float64
	// PerNodeMsgRate is the per-node injection average.
	PerNodeMsgRate float64
	MaxSwitchQueue int
	CreditStalls   uint64
}

// AllToAllPutBw runs opt.Iters rounds in which every node RDMA-writes one
// message to every other node, polling a completion every
// Bench.PollBatch posts — the uniform traffic matrix that loads every
// tier of a multi-switch topology (cross-leaf flows share leaf-spine
// links in the fat-tree).
func AllToAllPutBw(sys *node.System, opt Options) *AllToAllResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n := len(sys.Nodes)
	res := &AllToAllResult{Nodes: n, MsgSize: opt.MsgSize}

	workers := make([]*uct.Worker, n)
	for i := range workers {
		workers[i] = uct.NewWorker(sys.Nodes[i], cfg)
	}
	// eps[i][j] is node i's endpoint towards node j.
	eps := make([][]*uct.Ep, n)
	for i := range eps {
		eps[i] = make([]*uct.Ep, n)
		for j := range eps[i] {
			if i != j {
				eps[i][j] = workers[i].NewEp(opt.Mode, opt.SignalPeriod)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			uct.Connect(eps[i][j], eps[j][i])
			ti := sys.Nodes[j].Mem.Alloc(fmt.Sprintf("a2a.%d.%d", i, j), uint64(max(opt.MsgSize, 64)), 64)
			eps[i][j].RemoteBuf = ti.Base
			tj := sys.Nodes[i].Mem.Alloc(fmt.Sprintf("a2a.%d.%d", j, i), uint64(max(opt.MsgSize, 64)), 64)
			eps[j][i].RemoteBuf = tj.Base
		}
	}

	var start, end units.Time
	done := 0
	for i := 0; i < n; i++ {
		me := i
		nd, w := sys.Nodes[i], workers[i]
		msg := make([]byte, opt.MsgSize)
		sys.K.Spawn(fmt.Sprintf("a2a.node%d", me), func(p *sim.Proc) {
			posts := 0
			round := func() {
				for j := 0; j < n; j++ {
					if j == me {
						continue
					}
					putAuto(p, w, eps[me][j], 0, msg)
					posts++
					if posts%cfg.Bench.PollBatch == 0 {
						w.Progress(p)
					}
				}
			}
			for r := 0; r < opt.Warmup; r++ {
				round()
			}
			if p.Now() > start {
				start = p.Now()
			}
			for r := 0; r < opt.Iters; r++ {
				round()
				p.Advance(cfg.SW.MeasUpdate.Sample(nd.Rand))
				p.Advance(cfg.SW.BenchLoop.Sample(nd.Rand))
			}
			if p.Now() > end {
				end = p.Now()
			}
			for j := 0; j < n; j++ {
				if j == me {
					continue
				}
				for eps[me][j].InFlight() > 0 {
					w.Progress(p)
				}
			}
			done++
		})
	}
	sys.Run()
	if done != n {
		panic(fmt.Sprintf("perftest: only %d of %d all-to-all nodes finished", done, n))
	}

	res.Messages = n * (n - 1) * opt.Iters
	res.Elapsed = end - start
	res.AggMsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	res.PerNodeMsgRate = res.AggMsgRate / float64(n)
	res.MaxSwitchQueue = sys.Topo().MaxSwitchQueue()
	res.CreditStalls = sys.Topo().CreditStalls()
	return res
}

// String renders the result.
func (r *AllToAllResult) String() string {
	return fmt.Sprintf("all-to-all put_bw: %d nodes x %dB, %d msgs in %v -> %.0f msg/s aggregate (max switch queue %d, %d credit stalls)",
		r.Nodes, r.MsgSize, r.Messages, r.Elapsed, r.AggMsgRate, r.MaxSwitchQueue, r.CreditStalls)
}
