package perftest

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/topo"
)

// TestScenariosRunHandoffFree asserts the tentpole property of the
// continuation migration at runtime: every perftest driver runs its entire
// steady state on run-to-completion task frames, so the kernel performs ZERO
// kernel→goroutine handoffs (sim.Kernel.Handoffs). The static gate in the
// root package keeps blocking constructs out of the source; this test proves
// the executions themselves never leave the scheduler loop.
func TestScenariosRunHandoffFree(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(t *testing.T) *node.System
	}{
		{"put_bw", func(t *testing.T) *node.System {
			sys := newSys(t, config.NoiseOff, 1)
			PutBw(sys, Options{Iters: 300})
			return sys
		}},
		{"am_lat", func(t *testing.T) *node.System {
			sys := newSys(t, config.NoiseOn, 2)
			AmLat(sys, Options{Iters: 200})
			return sys
		}},
		{"multi_put_bw", func(t *testing.T) *node.System {
			sys := newSys(t, config.NoiseOn, 3)
			MultiPutBw(sys, 4, Options{Iters: 150})
			return sys
		}},
		{"windowed_put_bw", func(t *testing.T) *node.System {
			sys := newSys(t, config.NoiseOff, 4)
			WindowedPutBw(sys, 32, 320)
			return sys
		}},
		{"incast", func(t *testing.T) *node.System {
			cfg := config.TX2CX4(config.NoiseOff, 5, true)
			cfg.NICRxBudget = 16
			sys := node.NewSystem(cfg, 4)
			IncastPutBw(sys, 3, Options{Iters: 100, MsgSize: 64})
			return sys
		}},
		{"alltoall", func(t *testing.T) *node.System {
			cfg := config.TX2CX4(config.NoiseOff, 6, true)
			cfg.Topology = topo.Spec{Kind: topo.FatTree}
			sys := node.NewSystem(cfg, 4)
			AllToAllPutBw(sys, Options{Iters: 60, MsgSize: 64})
			return sys
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			sys := sc.run(t)
			defer sys.Shutdown()
			if h := sys.K.Handoffs(); h != 0 {
				t.Errorf("%s performed %d goroutine handoffs, want 0 (a blocking proc crept back into a hot path)", sc.name, h)
			}
		})
	}
}
