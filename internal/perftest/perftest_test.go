package perftest

import (
	"math"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/uct"
)

func newSys(t *testing.T, noise config.NoiseLevel, seed uint64) *node.System {
	t.Helper()
	return node.NewSystem(config.TX2CX4(noise, seed, true), 2)
}

func TestPutBwMatchesInjectionModel(t *testing.T) {
	sys := newSys(t, config.NoiseOff, 1)
	defer sys.Shutdown()
	res := PutBw(sys, Options{Iters: 2000})
	if err := relErr(res.MeanInjNs, config.TabLLPInjModel); err > 0.05 {
		t.Errorf("put_bw inverse rate %.2f vs model %.2f (%.1f%% off)",
			res.MeanInjNs, config.TabLLPInjModel, err*100)
	}
	// Steady state: roughly one busy post per successful post (paper
	// §4.2 "in the average case, after every successful LLP_post, there
	// occurs a busy post").
	ratio := float64(res.Stats.BusyPosts) / float64(res.Messages)
	if ratio < 0.85 || ratio > 1.0 {
		t.Errorf("busy posts per message = %.3f", ratio)
	}
}

func TestPutBwAnalyzerAgreesWithLoop(t *testing.T) {
	sys := newSys(t, config.NoiseOff, 1)
	defer sys.Shutdown()
	res := PutBw(sys, Options{Iters: 1000, ClearTrace: true})
	down := sys.Nodes[0].Tap.TLPs(pcieDown(), pcieMWr(), 64, 64)
	if len(down) < 1000 {
		t.Fatalf("trace captured %d posts", len(down))
	}
	var mean float64
	for i := 1; i < len(down); i++ {
		mean += (down[i].At - down[i-1].At).Ns()
	}
	mean /= float64(len(down) - 1)
	if relErr(mean, res.MeanInjNs) > 0.02 {
		t.Errorf("analyzer mean %.2f vs loop mean %.2f", mean, res.MeanInjNs)
	}
}

func TestAmLatMatchesLatencyModel(t *testing.T) {
	sys := newSys(t, config.NoiseOff, 1)
	defer sys.Shutdown()
	res := AmLat(sys, Options{Iters: 500})
	if err := relErr(res.AdjustedNs, config.TabLLPLatencyModel); err > 0.05 {
		t.Errorf("am_lat %.2f vs model %.2f (%.1f%% off)",
			res.AdjustedNs, config.TabLLPLatencyModel, err*100)
	}
	if res.RTTs.N() != 500 {
		t.Errorf("RTT samples = %d", res.RTTs.N())
	}
}

func TestAmLatAdjustment(t *testing.T) {
	sys := newSys(t, config.NoiseOff, 1)
	defer sys.Shutdown()
	res := AmLat(sys, Options{Iters: 100})
	want := res.ReportedNs - config.TabMeasUpdate/2
	if math.Abs(res.AdjustedNs-want) > 1e-9 {
		t.Errorf("adjustment wrong: %v vs %v", res.AdjustedNs, want)
	}
}

func TestDoorbellModesAreSlower(t *testing.T) {
	lat := func(mode uct.PostMode) float64 {
		sys := newSys(t, config.NoiseOff, 1)
		defer sys.Shutdown()
		return AmLat(sys, Options{Iters: 200, Mode: mode}).AdjustedNs
	}
	pio := lat(uct.PIOInline)
	dbi := lat(uct.DoorbellInline)
	dbg := lat(uct.DoorbellGather)
	if !(pio < dbi && dbi < dbg) {
		t.Errorf("latency ordering violated: pio=%.2f doorbell=%.2f gather=%.2f", pio, dbi, dbg)
	}
	// Each extra DMA read costs a PCIe round trip plus the memory read
	// (paper §2): at least ~300 ns apiece.
	if dbi-pio < 300 || dbg-dbi < 300 {
		t.Errorf("DMA-read penalties too small: %+.2f, %+.2f", dbi-pio, dbg-dbi)
	}
}

func TestSeededNoiseReproducible(t *testing.T) {
	run := func() float64 {
		sys := newSys(t, config.NoiseOn, 42)
		defer sys.Shutdown()
		return PutBw(sys, Options{Iters: 500}).MeanInjNs
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seed produced %v and %v", a, b)
	}
	sys := newSys(t, config.NoiseOn, 43)
	defer sys.Shutdown()
	c := PutBw(sys, Options{Iters: 500}).MeanInjNs
	if c == a {
		t.Error("different seeds produced identical timings (suspicious)")
	}
}

func TestNoisyStillNearModel(t *testing.T) {
	sys := newSys(t, config.NoiseOn, 7)
	defer sys.Shutdown()
	res := PutBw(sys, Options{Iters: 2000})
	if err := relErr(res.MeanInjNs, config.TabLLPInjModel); err > 0.07 {
		t.Errorf("noisy put_bw %.2f vs model %.2f", res.MeanInjNs, config.TabLLPInjModel)
	}
}

func TestMultiPutBwScaling(t *testing.T) {
	per := map[int]float64{}
	for _, cores := range []int{1, 4} {
		sys := newSys(t, config.NoiseOff, 1)
		res := MultiPutBw(sys, cores, Options{Iters: 500})
		per[cores] = res.PerMsgNs
		if res.Messages != cores*500 {
			t.Errorf("message count %d", res.Messages)
		}
		sys.Shutdown()
	}
	// 4 cores should be ~4x the aggregate rate (no shared bottleneck at
	// this scale).
	speedup := per[1] / per[4]
	if speedup < 3.5 || speedup > 4.5 {
		t.Errorf("4-core speedup = %.2f", speedup)
	}
}

func TestStringers(t *testing.T) {
	pb := &PutBwResult{Messages: 10, Elapsed: 1000, MsgRate: 1, MeanInjNs: 2}
	if pb.String() == "" {
		t.Error("PutBwResult string")
	}
	al := &AmLatResult{Iters: 5}
	if al.String() == "" {
		t.Error("AmLatResult string")
	}
	mp := &MultiPutBwResult{}
	if mp.String() == "" {
		t.Error("MultiPutBwResult string")
	}
}

func relErr(a, b float64) float64 { return math.Abs(a-b) / b }
