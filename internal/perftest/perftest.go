// Package perftest reimplements the two UCX perftest microbenchmarks the
// paper drives its low-level analysis with (§4):
//
//   - put_bw: single-threaded RDMA-write injection-rate test. Every message
//     generates a completion; the benchmark polls one completion every
//     PollBatch (16) posts, so once the transmit queue's depth is exhausted
//     each successful post is preceded by a busy post on average — the
//     steady state the paper's injection model describes.
//   - am_lat: ping-pong latency with send-receive (active message)
//     semantics; the benchmark reports half the round-trip time and performs
//     its measurement update inside the round trip.
//
// Beyond the paper's two-node tests the package carries the scenario
// suite over the internal/topo layer: WindowedPutBw and MultiPutBw
// (ablations), IncastPutBw and AllToAllPutBw (congestion), and
// OversubscribedPutBw (receiver-side backpressure with a bounded NIC rx
// budget: RNR NAK, sender backoff, go-back-N replay). ARCHITECTURE.md
// catalogs them with the bbperftest command that runs each.
package perftest

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Options shapes a perftest run.
type Options struct {
	Iters   int
	Warmup  int
	MsgSize int
	// Mode selects the descriptor path (PIO+inline by default).
	Mode uct.PostMode
	// SignalPeriod: 1 = every message signaled (the perftest behaviour).
	SignalPeriod int
	// ClearTrace, when true, clears the initiator's PCIe analyzer at the
	// start of the measured phase so the captured trace covers steady
	// state only.
	ClearTrace bool
	// ProfStage selects one LLP region to profile on the initiator
	// (paper §3: one component at a time).
	ProfStage uct.Stage
	// Calibrate runs the profiler's overhead calibration before the
	// benchmark (required when ProfStage is set).
	Calibrate bool
}

// Defaults fills unset fields from cfg.
func (o *Options) Defaults(cfg *config.Config) {
	if o.Iters == 0 {
		o.Iters = cfg.Bench.Iters
	}
	if o.Warmup == 0 {
		o.Warmup = cfg.Bench.Warmup
	}
	if o.MsgSize == 0 {
		o.MsgSize = 8 // "Each message is 8 bytes, the size of a double."
	}
	if o.SignalPeriod == 0 {
		o.SignalPeriod = 1
	}
}

// PutBwResult reports a put_bw run.
type PutBwResult struct {
	Messages int
	Elapsed  units.Time
	// MsgRate is messages per second as the benchmark reports it.
	MsgRate float64
	// MeanInjNs is the inverse rate: mean time between injected messages.
	MeanInjNs float64
	Stats     uct.Stats
	Worker    *uct.Worker
}

// PutBw runs the RDMA-write injection benchmark from node 0 to node 1 of
// sys. The target's CPU is not involved (one-sided writes).
func PutBw(sys *node.System, opt Options) *PutBwResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]

	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(opt.Mode, opt.SignalPeriod)
	ep1 := w1.NewEp(opt.Mode, opt.SignalPeriod)
	uct.Connect(ep0, ep1)
	tgt := n1.Mem.Alloc("putbw.target", 4096, 64)
	ep0.RemoteBuf = tgt.Base

	res := &PutBwResult{Worker: w0}
	msg := make([]byte, opt.MsgSize)
	for i := range msg {
		msg[i] = byte(i)
	}

	w0.ProfStage = opt.ProfStage
	sys.K.Spawn("put_bw", func(p *sim.Proc) {
		if opt.Calibrate {
			n0.Prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		}
		post := func() {
			for ep0.PutShort(p, 0, msg) == uct.ErrNoResource {
				w0.Progress(p)
			}
		}
		for i := 0; i < opt.Warmup; i++ {
			post()
			if (i+1)%cfg.Bench.PollBatch == 0 {
				w0.Progress(p)
			}
		}
		if opt.ClearTrace {
			// The analyzer is fed by link events: settle the lazy clock
			// so every TLP up to the proc's current time is recorded
			// (and cleared) before the measured window opens.
			p.Sync()
			n0.Tap.Clear()
		}
		start := p.Now()
		for i := 0; i < opt.Iters; i++ {
			post()
			if (i+1)%cfg.Bench.PollBatch == 0 {
				w0.Progress(p)
			}
			// Timestamp + injection-rate measurement update, then the
			// residual loop logic.
			p.Advance(cfg.SW.MeasUpdate.Sample(n0.Rand))
			p.Advance(cfg.SW.BenchLoop.Sample(n0.Rand))
		}
		res.Elapsed = p.Now() - start
		// Drain outside the measured window.
		for ep0.InFlight() > 0 {
			w0.Progress(p)
		}
	})
	sys.Run()

	res.Messages = opt.Iters
	res.MeanInjNs = res.Elapsed.Ns() / float64(opt.Iters)
	res.MsgRate = float64(opt.Iters) / res.Elapsed.Seconds()
	res.Stats = w0.Stats
	return res
}

// AmLatResult reports an am_lat run.
type AmLatResult struct {
	Iters int
	// ReportedNs is what the benchmark prints: round trip / 2, including
	// its own measurement update inside the loop.
	ReportedNs float64
	// AdjustedNs deducts half the measurement-update mean, the paper's
	// §4.3 correction, for comparison against the latency model.
	AdjustedNs float64
	// RTTs holds per-iteration round-trip times (ns).
	RTTs *stats.Sample
	// Workers expose LLP stats (initiator, target).
	W0, W1 *uct.Worker
	// Ep0 and Ep1 expose the endpoints (trace queries filter by their
	// ring addresses).
	Ep0, Ep1 *uct.Ep
}

// AmLat runs the send-receive ping-pong between node 0 (initiator) and
// node 1 (responder).
func AmLat(sys *node.System, opt Options) *AmLatResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]

	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(opt.Mode, opt.SignalPeriod)
	ep1 := w1.NewEp(opt.Mode, opt.SignalPeriod)
	uct.Connect(ep0, ep1)

	const amPing, amPong = 2, 3
	gotPong, gotPing := false, false
	w0.SetAmHandler(amPong, func(p *sim.Proc, data []byte) { gotPong = true })
	w1.SetAmHandler(amPing, func(p *sim.Proc, data []byte) { gotPing = true })

	res := &AmLatResult{Iters: opt.Iters, RTTs: &stats.Sample{}, W0: w0, W1: w1, Ep0: ep0, Ep1: ep1}
	msg := make([]byte, opt.MsgSize)
	total := opt.Warmup + opt.Iters

	// Responder: wait for each ping, answer with a pong.
	sys.K.Spawn("am_lat.responder", func(p *sim.Proc) {
		ep1.PostRecvs(p, 64)
		for i := 0; i < total; i++ {
			for !gotPing {
				w1.Progress(p)
			}
			gotPing = false
			for ep1.AmShort(p, amPong, msg) == uct.ErrNoResource {
				w1.Progress(p)
			}
		}
	})

	// Initiator: ping, update measurement, spin for the pong.
	w0.ProfStage = opt.ProfStage
	sys.K.Spawn("am_lat.initiator", func(p *sim.Proc) {
		if opt.Calibrate {
			n0.Prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		}
		ep0.PostRecvs(p, 64)
		var start units.Time
		for i := 0; i < total; i++ {
			if i == opt.Warmup {
				if opt.ClearTrace {
					p.Sync() // see PutBw: settle the trace before clearing
					n0.Tap.Clear()
				}
				start = p.Now()
			}
			t0 := p.Now()
			for ep0.AmShort(p, amPing, msg) == uct.ErrNoResource {
				w0.Progress(p)
			}
			// The measurement update happens inside the round trip
			// (paper §4.3: half of it is deducted when comparing to
			// the model).
			p.Advance(cfg.SW.MeasUpdate.Sample(n0.Rand))
			for !gotPong {
				w0.Progress(p)
			}
			gotPong = false
			p.Advance(cfg.SW.BenchLoop.Sample(n0.Rand))
			if i >= opt.Warmup {
				res.RTTs.Add((p.Now() - t0).Ns())
			}
		}
		elapsed := p.Now() - start
		res.ReportedNs = elapsed.Ns() / float64(2*opt.Iters)
	})
	sys.Run()

	res.AdjustedNs = res.ReportedNs - cfg.SW.MeasUpdate.Mean().Ns()/2
	return res
}

// String renders a put_bw result like the ucx_perftest footer.
func (r *PutBwResult) String() string {
	return fmt.Sprintf("put_bw: %d msgs in %v -> %.0f msg/s (%.2f ns between messages; %d busy posts)",
		r.Messages, r.Elapsed, r.MsgRate, r.MeanInjNs, r.Stats.BusyPosts)
}

// String renders an am_lat result.
func (r *AmLatResult) String() string {
	return fmt.Sprintf("am_lat: %d iters, reported %.2f ns (adjusted %.2f ns)",
		r.Iters, r.ReportedNs, r.AdjustedNs)
}
