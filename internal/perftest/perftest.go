// Package perftest reimplements the two UCX perftest microbenchmarks the
// paper drives its low-level analysis with (§4):
//
//   - put_bw: single-threaded RDMA-write injection-rate test. Every message
//     generates a completion; the benchmark polls one completion every
//     PollBatch (16) posts, so once the transmit queue's depth is exhausted
//     each successful post is preceded by a busy post on average — the
//     steady state the paper's injection model describes.
//   - am_lat: ping-pong latency with send-receive (active message)
//     semantics; the benchmark reports half the round-trip time and performs
//     its measurement update inside the round trip.
//
// Beyond the paper's two-node tests the package carries the scenario
// suite over the internal/topo layer: WindowedPutBw and MultiPutBw
// (ablations), IncastPutBw and AllToAllPutBw (congestion), and
// OversubscribedPutBw (receiver-side backpressure with a bounded NIC rx
// budget: RNR NAK, sender backoff, go-back-N replay). ARCHITECTURE.md
// catalogs them with the bbperftest command that runs each.
package perftest

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Options shapes a perftest run.
type Options struct {
	Iters   int
	Warmup  int
	MsgSize int
	// Mode selects the descriptor path (PIO+inline by default).
	Mode uct.PostMode
	// SignalPeriod: 1 = every message signaled (the perftest behaviour).
	SignalPeriod int
	// ClearTrace, when true, clears the initiator's PCIe analyzer at the
	// start of the measured phase so the captured trace covers steady
	// state only.
	ClearTrace bool
	// ProfStage selects one LLP region to profile on the initiator
	// (paper §3: one component at a time).
	ProfStage uct.Stage
	// Calibrate runs the profiler's overhead calibration before the
	// benchmark (required when ProfStage is set).
	Calibrate bool
}

// Defaults fills unset fields from cfg.
func (o *Options) Defaults(cfg *config.Config) {
	if o.Iters == 0 {
		o.Iters = cfg.Bench.Iters
	}
	if o.Warmup == 0 {
		o.Warmup = cfg.Bench.Warmup
	}
	if o.MsgSize == 0 {
		o.MsgSize = 8 // "Each message is 8 bytes, the size of a double."
	}
	if o.SignalPeriod == 0 {
		o.SignalPeriod = 1
	}
}

// PutBwResult reports a put_bw run.
type PutBwResult struct {
	Messages int
	Elapsed  units.Time
	// MsgRate is messages per second as the benchmark reports it.
	MsgRate float64
	// MeanInjNs is the inverse rate: mean time between injected messages.
	MeanInjNs float64
	Stats     uct.Stats
	Worker    *uct.Worker
}

// PutBw runs the RDMA-write injection benchmark from node 0 to node 1 of
// sys. The target's CPU is not involved (one-sided writes).
func PutBw(sys *node.System, opt Options) *PutBwResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]

	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(opt.Mode, opt.SignalPeriod)
	ep1 := w1.NewEp(opt.Mode, opt.SignalPeriod)
	uct.Connect(ep0, ep1)
	tgt := n1.Mem.Alloc("putbw.target", 4096, 64)
	ep0.RemoteBuf = tgt.Base

	res := &PutBwResult{Worker: w0}
	msg := make([]byte, opt.MsgSize)
	for i := range msg {
		msg[i] = byte(i)
	}

	w0.ProfStage = opt.ProfStage
	f := &putBwFrame{cfg: cfg, n0: n0, w0: w0, ep0: ep0, opt: &opt, res: res}
	f.postF = postSpinFrame{w: w0, ep: ep0, kind: postPutShort, msg: msg}
	sys.K.SpawnTask("put_bw", f)
	sys.Run()

	res.Messages = opt.Iters
	res.MeanInjNs = res.Elapsed.Ns() / float64(opt.Iters)
	res.MsgRate = float64(opt.Iters) / res.Elapsed.Seconds()
	res.Stats = w0.Stats
	return res
}

// putBwFrame is the single put_bw driver: warmup posts, optional trace
// clear, the measured injection loop, then an in-flight drain outside the
// measured window.
type putBwFrame struct {
	cfg *config.Config
	n0  *node.Node
	w0  *uct.Worker
	ep0 *uct.Ep
	opt *Options
	res *PutBwResult

	postF postSpinFrame
	pc    int
	i     int
	start units.Time
}

func (f *putBwFrame) Step(t *sim.Task) {
	cfg := f.cfg
	for {
		switch f.pc {
		case 0:
			if f.opt.Calibrate {
				f.n0.Prof.Calibrate(t, cfg.Prof.CalibrationSamples)
			}
			f.pc = 1
		case 1: // warmup loop head
			if f.i >= f.opt.Warmup {
				f.pc = 3
				continue
			}
			f.pc = 2
			f.postF.start(t)
			return
		case 2: // after a warmup post: batched poll
			if (f.i+1)%cfg.Bench.PollBatch == 0 {
				f.i++
				f.pc = 1
				f.w0.StartProgress(t)
				return
			}
			f.i++
			f.pc = 1
		case 3:
			if !f.opt.ClearTrace {
				f.pc = 4
				continue
			}
			// The analyzer is fed by link events: settle the lazy clock
			// so every TLP up to the task's current time is recorded
			// (and cleared) before the measured window opens.
			f.pc = 31
			if t.Pause() {
				return
			}
		case 31:
			f.n0.Tap.Clear()
			f.pc = 4
		case 4:
			f.start = t.Now()
			f.i = 0
			f.pc = 5
		case 5: // measured loop head
			if f.i >= f.opt.Iters {
				f.pc = 8
				continue
			}
			f.pc = 6
			f.postF.start(t)
			return
		case 6: // after a measured post: batched poll
			if (f.i+1)%cfg.Bench.PollBatch == 0 {
				f.pc = 7
				f.w0.StartProgress(t)
				return
			}
			f.pc = 7
		case 7:
			// Timestamp + injection-rate measurement update, then the
			// residual loop logic.
			t.Advance(cfg.SW.MeasUpdate.Sample(f.n0.Rand))
			t.Advance(cfg.SW.BenchLoop.Sample(f.n0.Rand))
			f.i++
			f.pc = 5
		case 8:
			f.res.Elapsed = t.Now() - f.start
			f.pc = 9
		case 9: // drain outside the measured window
			if f.ep0.InFlight() > 0 {
				f.w0.StartProgress(t)
				return
			}
			t.Return()
			return
		}
	}
}

// AmLatResult reports an am_lat run.
type AmLatResult struct {
	Iters int
	// ReportedNs is what the benchmark prints: round trip / 2, including
	// its own measurement update inside the loop.
	ReportedNs float64
	// AdjustedNs deducts half the measurement-update mean, the paper's
	// §4.3 correction, for comparison against the latency model.
	AdjustedNs float64
	// RTTs holds per-iteration round-trip times (ns).
	RTTs *stats.Sample
	// Workers expose LLP stats (initiator, target).
	W0, W1 *uct.Worker
	// Ep0 and Ep1 expose the endpoints (trace queries filter by their
	// ring addresses).
	Ep0, Ep1 *uct.Ep
}

// AmLat runs the send-receive ping-pong between node 0 (initiator) and
// node 1 (responder).
func AmLat(sys *node.System, opt Options) *AmLatResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]

	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(opt.Mode, opt.SignalPeriod)
	ep1 := w1.NewEp(opt.Mode, opt.SignalPeriod)
	uct.Connect(ep0, ep1)

	const amPing, amPong = 2, 3
	gotPong, gotPing := false, false
	w0.SetAmHandler(amPong, func(t *sim.Task, data []byte) { gotPong = true })
	w1.SetAmHandler(amPing, func(t *sim.Task, data []byte) { gotPing = true })

	res := &AmLatResult{Iters: opt.Iters, RTTs: &stats.Sample{}, W0: w0, W1: w1, Ep0: ep0, Ep1: ep1}
	msg := make([]byte, opt.MsgSize)
	total := opt.Warmup + opt.Iters

	// Responder: wait for each ping, answer with a pong.
	echo := &amLatEchoFrame{w: w1, ep: ep1, total: total, gotPing: &gotPing}
	echo.postF = postSpinFrame{w: w1, ep: ep1, kind: postAmShort, id: amPong, msg: msg}
	sys.K.SpawnTask("am_lat.responder", echo)

	// Initiator: ping, update measurement, spin for the pong.
	w0.ProfStage = opt.ProfStage
	ping := &amLatPingFrame{cfg: cfg, n0: n0, w0: w0, opt: &opt, res: res, total: total, gotPong: &gotPong}
	ping.postF = postSpinFrame{w: w0, ep: ep0, kind: postAmShort, id: amPing, msg: msg}
	sys.K.SpawnTask("am_lat.initiator", ping)
	sys.Run()

	res.AdjustedNs = res.ReportedNs - cfg.SW.MeasUpdate.Mean().Ns()/2
	return res
}

// amLatEchoFrame is the ping-pong responder: wait for each ping, answer
// with a pong. The sweep's responder reuses it with an auto-path postF.
type amLatEchoFrame struct {
	w       *uct.Worker
	ep      *uct.Ep
	total   int
	gotPing *bool

	postF postSpinFrame
	pc    int
	i     int
}

func (f *amLatEchoFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.ep.StartPostRecvs(t, 64)
			return
		case 1: // iteration head
			if f.i >= f.total {
				t.Return()
				return
			}
			f.pc = 2
		case 2: // spin for the ping
			if !*f.gotPing {
				f.pc = 3
				f.w.StartProgress(t)
				return
			}
			*f.gotPing = false
			f.pc = 4
			f.postF.start(t)
			return
		case 3:
			f.pc = 2
		case 4:
			f.i++
			f.pc = 1
		}
	}
}

// amLatPingFrame is the ping-pong initiator: post the ping, run the
// measurement update inside the round trip, spin for the pong. The sweep's
// initiator reuses it with an auto-path postF.
type amLatPingFrame struct {
	cfg     *config.Config
	n0      *node.Node
	w0      *uct.Worker
	opt     *Options
	res     *AmLatResult
	total   int
	gotPong *bool

	postF postSpinFrame
	pc    int
	i     int
	t0    units.Time
	start units.Time
}

func (f *amLatPingFrame) Step(t *sim.Task) {
	cfg := f.cfg
	for {
		switch f.pc {
		case 0:
			if f.opt.Calibrate {
				f.n0.Prof.Calibrate(t, cfg.Prof.CalibrationSamples)
			}
			f.pc = 1
			f.postF.ep.StartPostRecvs(t, 64)
			return
		case 1: // iteration head
			if f.i >= f.total {
				elapsed := t.Now() - f.start
				f.res.ReportedNs = elapsed.Ns() / float64(2*f.opt.Iters)
				t.Return()
				return
			}
			if f.i == f.opt.Warmup {
				if f.opt.ClearTrace {
					// See PutBw: settle the trace before clearing.
					f.pc = 11
					if t.Pause() {
						return
					}
					continue
				}
				f.start = t.Now()
			}
			f.pc = 2
		case 11:
			f.n0.Tap.Clear()
			f.start = t.Now()
			f.pc = 2
		case 2: // post the ping
			f.t0 = t.Now()
			f.pc = 3
			f.postF.start(t)
			return
		case 3:
			// The measurement update happens inside the round trip
			// (paper §4.3: half of it is deducted when comparing to
			// the model).
			t.Advance(cfg.SW.MeasUpdate.Sample(f.n0.Rand))
			f.pc = 4
		case 4: // spin for the pong
			if !*f.gotPong {
				f.pc = 5
				f.w0.StartProgress(t)
				return
			}
			*f.gotPong = false
			t.Advance(cfg.SW.BenchLoop.Sample(f.n0.Rand))
			if f.i >= f.opt.Warmup {
				f.res.RTTs.Add((t.Now() - f.t0).Ns())
			}
			f.i++
			f.pc = 1
		case 5:
			f.pc = 4
		}
	}
}

// String renders a put_bw result like the ucx_perftest footer.
func (r *PutBwResult) String() string {
	return fmt.Sprintf("put_bw: %d msgs in %v -> %.0f msg/s (%.2f ns between messages; %d busy posts)",
		r.Messages, r.Elapsed, r.MsgRate, r.MeanInjNs, r.Stats.BusyPosts)
}

// String renders an am_lat result.
func (r *AmLatResult) String() string {
	return fmt.Sprintf("am_lat: %d iters, reported %.2f ns (adjusted %.2f ns)",
		r.Iters, r.ReportedNs, r.AdjustedNs)
}
