package perftest

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/node"
	"breakband/internal/topo"
	"breakband/internal/units"
	"breakband/internal/workload"
)

// incastConfig builds a single-switch N-node NoiseOff configuration.
func incastConfig(credits int) *config.Config {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch, Credits: credits}
	return cfg
}

// TestIncastContention is the acceptance check for the topology layer:
// senders funnelling 4 KiB writes into one receiver over a shared switch
// port must see measurably lower per-sender bandwidth than a single
// sender on the identical path, the contended steady state must sit at
// the shared port's service rate (N serializations per delivered
// message), and the hotspot must show up as switch-port queueing.
func TestIncastContention(t *testing.T) {
	const size = 4096
	opt := Options{Iters: 400, Warmup: 250, MsgSize: size}
	run := func(nodes, senders int) *IncastResult {
		sys := node.NewSystem(incastConfig(0), nodes)
		defer sys.Shutdown()
		return IncastPutBw(sys, senders, opt)
	}

	solo := run(5, 1)
	four := run(5, 4)
	eight := run(9, 8)
	t.Logf("solo:  %v", solo)
	t.Logf("four:  %v", four)
	t.Logf("eight: %v", eight)

	if solo.PerSenderMsgRate <= 0 || four.PerSenderMsgRate <= 0 {
		t.Fatalf("degenerate rates: solo %v, contended %v", solo, four)
	}
	if solo.MaxSwitchQueue > 1 {
		t.Errorf("solo sender queued %d deep; uncontended path should not congest", solo.MaxSwitchQueue)
	}

	// N=4: measurably lower per-sender bandwidth than the same path
	// uncontended (the solo floor is the sender's own descriptor-fetch
	// pipeline, so the port only partially dominates at 4 senders).
	ratio4 := four.PerSenderMsgRate / solo.PerSenderMsgRate
	t.Logf("per-sender rate ratio: four %.3f, eight %.3f",
		ratio4, eight.PerSenderMsgRate/solo.PerSenderMsgRate)
	if ratio4 > 0.9 {
		t.Errorf("4-sender incast kept %.0f%% of solo per-sender bandwidth; contention is not modelled", ratio4*100)
	}
	if four.MaxSwitchQueue < 2 {
		t.Errorf("max switch queue %d under incast, want >= 2", four.MaxSwitchQueue)
	}

	// The contended steady state is the receiver draining N flows at its
	// PCIe service rate: for 4 KiB messages the posted-credit round trip
	// per MWr (PCIeWriteCycle) is slower than the shared port's wire
	// serialization, and — since deferred frame release ties the fabric
	// credits to the PCIe pend queue — the senders converge to one
	// message per N cycles, not per N serializations.
	cfg := incastConfig(0)
	cycleNs := PCIeWriteCycle(cfg, size).Ns()
	if serNs := cfg.Fabric.SerTime(size).Ns(); cycleNs <= serNs {
		t.Fatalf("scenario mis-sized: PCIe cycle %.1f ns not slower than wire serialization %.1f ns", cycleNs, serNs)
	}
	for _, c := range []struct {
		res *IncastResult
		n   float64
	}{{four, 4}, {eight, 8}} {
		gotNs := 1e9 / c.res.PerSenderMsgRate
		wantNs := c.n * cycleNs
		if gotNs < wantNs || gotNs > wantNs*1.1 {
			t.Errorf("%d-sender per-sender interval %.1f ns, want the receiver PCIe service time %.1f ns (+<10%%)",
				int(c.n), gotNs, wantNs)
		}
	}

	// More senders, proportionally less per-sender bandwidth.
	if r := eight.PerSenderMsgRate / four.PerSenderMsgRate; r > 0.55 {
		t.Errorf("8-sender incast kept %.0f%% of the 4-sender rate, want ~50%%", r*100)
	}
}

// TestIncastBackpressure: with a tiny credit budget the congestion
// propagates to the senders as credit stalls.
func TestIncastBackpressure(t *testing.T) {
	sys := node.NewSystem(incastConfig(2), 5)
	defer sys.Shutdown()
	res := IncastPutBw(sys, 4, Options{Iters: 200, Warmup: 30, MsgSize: 4096})
	if res.CreditStalls == 0 {
		t.Errorf("no credit stalls with credits=2 under incast: %v", res)
	}
}

// TestIncastSmallMessages: 8-byte incast must still run (wire serialization
// is negligible next to the injection interval, so it stays uncongested).
func TestIncastSmallMessages(t *testing.T) {
	sys := node.NewSystem(incastConfig(0), 4)
	defer sys.Shutdown()
	res := IncastPutBw(sys, 0, Options{Iters: 150, Warmup: 20})
	if res.Senders != 3 || res.Messages != 3*150 {
		t.Fatalf("senders/messages: %v", res)
	}
	if res.PerSenderMsgRate <= 0 {
		t.Fatalf("no progress: %v", res)
	}
}

// TestAllToAllFatTree drives the uniform matrix over a radix-4 fat-tree
// and requires every flow to complete deterministically.
func TestAllToAllFatTree(t *testing.T) {
	mk := func() *node.System {
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Topology = topo.Spec{Kind: topo.FatTree}
		return node.NewSystem(cfg, 4)
	}
	run := func() *AllToAllResult {
		sys := mk()
		defer sys.Shutdown()
		return AllToAllPutBw(sys, Options{Iters: 60, Warmup: 10, MsgSize: 1024})
	}
	a, b := run(), run()
	if a.Messages != 4*3*60 {
		t.Fatalf("messages %d, want %d", a.Messages, 4*3*60)
	}
	if a.AggMsgRate <= 0 {
		t.Fatalf("no progress: %v", a)
	}
	if a.Elapsed != b.Elapsed || a.MaxSwitchQueue != b.MaxSwitchQueue {
		t.Errorf("all-to-all not deterministic: %v vs %v", a, b)
	}
	t.Logf("%v", a)
}

// TestScenarioPoolsDrained asserts the arena live-slot counters return to
// zero after each perftest scenario: a frame or TLP held past delivery is
// a borrow-contract violation that must fail tests, not grow pools.
func TestScenarioPoolsDrained(t *testing.T) {
	check := func(t *testing.T, sys *node.System) {
		t.Helper()
		if n := sys.Net.InUseFrames(); n != 0 {
			t.Errorf("fabric frame pool: %d frames still live after the run", n)
		}
		for _, nd := range sys.Nodes {
			if tlps, dllps := nd.Link.InUsePackets(); tlps != 0 || dllps != 0 {
				t.Errorf("node%d PCIe pools: %d TLPs, %d DLLPs still live", nd.ID, tlps, dllps)
			}
		}
	}
	two := func() *node.System {
		return node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
	}

	t.Run("put_bw", func(t *testing.T) {
		sys := two()
		defer sys.Shutdown()
		PutBw(sys, Options{Iters: 100, Warmup: 20})
		check(t, sys)
	})
	t.Run("am_lat", func(t *testing.T) {
		sys := two()
		defer sys.Shutdown()
		AmLat(sys, Options{Iters: 50, Warmup: 10})
		check(t, sys)
	})
	t.Run("windowed", func(t *testing.T) {
		sys := two()
		defer sys.Shutdown()
		WindowedPutBw(sys, 16, 160)
		check(t, sys)
	})
	t.Run("multi", func(t *testing.T) {
		sys := two()
		defer sys.Shutdown()
		MultiPutBw(sys, 3, Options{Iters: 60, Warmup: 10})
		check(t, sys)
	})
	t.Run("incast", func(t *testing.T) {
		sys := node.NewSystem(incastConfig(0), 5)
		defer sys.Shutdown()
		IncastPutBw(sys, 4, Options{Iters: 80, Warmup: 10, MsgSize: 4096})
		check(t, sys)
	})
	t.Run("oversub", func(t *testing.T) {
		// The NAK/retry path must not leak either: refused and discarded
		// frames release immediately, held frames release when their last
		// write issues, and replayed frames are fresh pool allocations.
		sys := node.NewSystem(oversubConfig(8), 5)
		defer sys.Shutdown()
		OversubscribedPutBw(sys, 4, Options{Iters: 80, Warmup: 10, MsgSize: 4096})
		check(t, sys)
	})
	t.Run("oversub_budget1", func(t *testing.T) {
		sys := node.NewSystem(oversubConfig(1), 4)
		defer sys.Shutdown()
		OversubscribedPutBw(sys, 3, Options{Iters: 40, Warmup: 5, MsgSize: 4096})
		check(t, sys)
	})
	t.Run("lossy", func(t *testing.T) {
		// Dropped frames, corrupt-discarded frames and retransmissions
		// must all hand their buffers back.
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Faults.DropRate = 0.02
		cfg.Faults.CorruptRate = 0.02
		sys := node.NewSystem(cfg, 2)
		defer sys.Shutdown()
		LossyPutBw(sys, Options{Iters: 300, MsgSize: 64})
		check(t, sys)
	})
	t.Run("flap", func(t *testing.T) {
		// Frames drained from a dead port's queue release too.
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Topology = topo.Spec{Kind: topo.FatTree, Radix: 4}
		cfg.Faults.Flaps = []faults.Flap{{
			Port: "leaf1.up0",
			Down: units.Microseconds(50), Up: units.Microseconds(150),
		}}
		sys := node.NewSystem(cfg, 6)
		defer sys.Shutdown()
		FlapIncastPutBw(sys, 4, Options{Iters: 150, Warmup: 1, MsgSize: 4096})
		check(t, sys)
	})
	t.Run("alltoall", func(t *testing.T) {
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Topology = topo.Spec{Kind: topo.FatTree}
		sys := node.NewSystem(cfg, 8)
		defer sys.Shutdown()
		AllToAllPutBw(sys, Options{Iters: 30, Warmup: 5, MsgSize: 512})
		check(t, sys)
	})
	// Spec-compiled open-loop injectors must drain too: every generated
	// message's frames and TLPs return to their pools once the cohorts
	// finish, clean and under transport loss alike.
	wlSpec := func() *workload.Spec {
		return &workload.Spec{
			Name:     "pools",
			Nodes:    8,
			Topology: "fattree",
			Cohorts: []workload.Cohort{{
				Name:     "storm",
				Clients:  32,
				Src:      []int{1, 2, 3, 4, 5, 6, 7},
				Dst:      []int{0},
				Duration: units.Microseconds(100),
				Arrival:  workload.ArrivalSpec{Process: workload.ProcPoisson, Rate: 40e3},
				Size: workload.SizeSpec{Dist: workload.SizeDistChoice, Choices: []workload.SizeChoice{
					{Bytes: 32, Weight: 3}, {Bytes: 256, Weight: 1}}},
			}},
		}
	}
	runWl := func(t *testing.T, spec *workload.Spec) {
		sys := node.NewSystem(spec.BuildConfig(config.NoiseOff, 1), spec.Nodes)
		defer sys.Shutdown()
		if _, err := workload.Run(spec, sys, workload.RunOpt{}); err != nil {
			t.Fatal(err)
		}
		check(t, sys)
	}
	t.Run("workload", func(t *testing.T) { runWl(t, wlSpec()) })
	t.Run("workload_lossy", func(t *testing.T) {
		spec := wlSpec()
		spec.Faults = workload.FaultSpec{DropRate: 0.02, CorruptRate: 0.02}
		runWl(t, spec)
	})
}
