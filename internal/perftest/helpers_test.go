package perftest

import "breakband/internal/pcie"

func pcieDown() pcie.Dir    { return pcie.Down }
func pcieMWr() pcie.TLPType { return pcie.MWr }
