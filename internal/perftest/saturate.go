package perftest

import (
	"fmt"
	"strings"

	"breakband/internal/campaign"
	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/trace"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// NewCalib builds the stall-attribution calibration from the config the
// system was compiled with. The formulas mirror the simulator's own
// arithmetic term by term (topo link propagation is WireProp/2 per cable,
// switch forwarding folds into every hop but the last, the NIC pipeline
// delays bracket the fabric), so on an uncontended run every component but
// Ideal attributes to exactly zero — the conservation tests pin this.
func NewCalib(cfg *config.Config) trace.Calib {
	fab := cfg.Fabric
	txp := cfg.NIC.TxProcess
	rxp := cfg.NIC.RxProcess
	return trace.Calib{
		WireIdeal: func(bytes, hops int) units.Time {
			if hops <= 1 {
				// Ideal two-endpoint tier: one serialization plus the
				// calibrated constant flight.
				return txp + fab.SerTime(bytes) + fab.FlightTime()
			}
			// Compiled topology: every hop serializes onto its cable
			// (flight WireProp/2); store-and-forward switching adds the
			// forwarding latency on every hop except the final one into
			// the destination host.
			h := units.Time(hops)
			return txp + h*fab.SerTime(bytes) + h*(fab.WireProp/2) + (h-1)*fab.SwitchLatency
		},
		// With PCIe credits available the delivered frame's MWr issues
		// synchronously, so the uncontended receiver hold is the NIC
		// receive pipeline alone; anything beyond it is PCIe pend time.
		RxHold: func(bytes int) units.Time { return rxp },
	}
}

// StallReport attributes the system's captured trace window (nil when
// tracing is disabled, i.e. Config.TraceCapacity was zero).
func StallReport(sys *node.System) *trace.Report {
	tr := sys.Tracer()
	if tr == nil {
		return nil
	}
	return trace.Attribute(tr.Events(), NewCalib(sys.Cfg))
}

// SaturationBottleneck reports the predicted per-message service time at
// the slowest stage of an incast into one receiver: the receiver's downlink
// wire serialization or its PCIe write cycle, whichever is slower. The PCIe
// cycle gates the wire even without an rx budget — a delivered frame only
// returns its link credit once its host-memory write has issued, so the
// final hop's credit loop runs at the receiver's PCIe service rate. The
// inverse is the analytic saturation rate the sweep's knee is validated
// against.
func SaturationBottleneck(cfg *config.Config, msgSize int) units.Time {
	b := cfg.Fabric.SerTime(msgSize)
	if p := PCIeWriteCycle(cfg, msgSize); p > b {
		b = p
	}
	return b
}

// pacedPutFrame is one open-loop sender of the saturation sweep: it posts
// one RDMA write every period (posting immediately, back to back, when the
// fabric's backpressure has pushed it past a deadline), polling a
// completion after each post, then drains its in-flight tail. The measured
// window opens when the last sender finishes warmup and closes when the
// last sender has drained — so under saturation the window stretches past
// iters*period and the delivered rate falls below the offered rate.
type pacedPutFrame struct {
	cfg    *config.Config
	rand   *rng.Rand
	w      *uct.Worker
	ep     *uct.Ep
	period units.Time
	opt    *Options
	st     *winShared

	postF postSpinFrame
	pc    int
	i     int
	next  units.Time // next posting deadline
}

func (f *pacedPutFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0: // arm the pacing clock
			f.next = t.Now()
			f.pc = 1
		case 1: // loop head
			if f.i == f.opt.Warmup && t.Now() > f.st.start {
				f.st.start = t.Now()
			}
			if f.i >= f.opt.Warmup+f.opt.Iters {
				f.pc = 4
				continue
			}
			if d := f.next - t.Now(); d > 0 {
				t.Advance(d)
			}
			f.pc = 2
			f.postF.start(t)
			return
		case 2:
			f.next += f.period
			f.i++
			f.pc = 3
			f.w.StartProgress(t)
			return
		case 3:
			t.Advance(f.cfg.SW.BenchLoop.Sample(f.rand))
			f.pc = 1
		case 4: // drain the in-flight tail; the window closes when empty
			if f.ep.InFlight() > 0 {
				f.w.StartProgress(t)
				return
			}
			if t.Now() > f.st.end {
				f.st.end = t.Now()
			}
			f.st.done++
			t.Return()
			return
		}
	}
}

// SaturationPoint is one offered-load step of the sweep.
type SaturationPoint struct {
	// Load is the offered load as a fraction of the predicted bottleneck
	// service rate (1.0 = the analytic saturation point).
	Load float64
	// Offered and Delivered are aggregate message rates (msg/s) across all
	// senders: Offered = senders/period, Delivered = messages over the
	// measured window (posting plus drain).
	Offered, Delivered float64
	Elapsed            units.Time
	// MeanLatency and Shares come from stall attribution over the traced
	// window (zero when tracing is disabled). Shares order matches
	// trace.Report.Shares: ideal, queue, stall, pend, backoff, waste.
	MeanLatency units.Time
	Shares      [6]float64
	Incomplete  int
	// HotPort is the egress port with the deepest queue; its depth
	// distribution is sampled at every enqueue/dequeue transition.
	HotPort            string
	QueueP50, QueueP99 float64
	MaxQueue           int
	// HotUtilization is the hot port's wire occupancy over the whole run
	// (warmup is paced at the same load, so the run approximates steady
	// state).
	HotUtilization float64
}

// SaturationResult is the full sweep: offered load stepped across the
// predicted saturation point, with the knee — the first step whose
// delivered rate falls measurably short of offered — located against it.
type SaturationResult struct {
	Senders int
	MsgSize int
	// Bottleneck is the predicted per-message service time at the
	// saturating stage; Capacity is its inverse (msg/s).
	Bottleneck units.Time
	Capacity   float64
	Points     []SaturationPoint
	// KneeIndex locates the first saturated point (-1 when the sweep never
	// saturated). The model predicts the knee at Load 1.0.
	KneeIndex int
}

// kneeFrac is the delivered/offered ratio below which a point counts as
// saturated: comfortably below pacing jitter and the drain-tail skew of an
// unsaturated point, comfortably above the shortfall one extra load step
// past the knee produces.
const kneeFrac = 0.95

// Knee reports the first saturated point, nil when the sweep never
// saturated.
func (r *SaturationResult) Knee() *SaturationPoint {
	if r.KneeIndex < 0 {
		return nil
	}
	return &r.Points[r.KneeIndex]
}

// SaturationSweep steps offered load across the predicted saturation point
// of an incast into node 0: at each load fraction, `senders` paced senders
// (sys.Nodes[1..senders]) each post every senders*Bottleneck/load. Every
// point runs on a fresh system from mkSys (fanned out on a
// parallelism-wide pool, <= 0 selects GOMAXPROCS; mkSys must be safe to
// call concurrently); build the config with TraceCapacity set to get
// per-point latency attribution in the result.
func SaturationSweep(mkSys func() *node.System, senders int, loads []float64, opt Options, parallelism int) *SaturationResult {
	probe := mkSys()
	opt.Defaults(probe.Cfg)
	res := &SaturationResult{
		Senders:    clampSenders(probe, senders),
		MsgSize:    opt.MsgSize,
		Bottleneck: SaturationBottleneck(probe.Cfg, opt.MsgSize),
		KneeIndex:  -1,
	}
	res.Capacity = 1 / res.Bottleneck.Seconds()
	probe.Shutdown()

	res.Points = campaign.Map(parallelism, loads, func(_ int, load float64) SaturationPoint {
		sys := mkSys()
		defer sys.Shutdown()
		return saturationPoint(sys, res.Senders, load, res.Bottleneck, opt)
	})
	for i := range res.Points {
		p := &res.Points[i]
		if p.Delivered < kneeFrac*p.Offered {
			res.KneeIndex = i
			break
		}
	}
	return res
}

// saturationPoint runs one load step: paced senders, queue-depth sampling
// on every egress port, then rate and attribution accounting.
func saturationPoint(sys *node.System, senders int, load float64, bottleneck units.Time, opt Options) SaturationPoint {
	cfg := sys.Cfg
	period := units.Time(float64(senders) * float64(bottleneck) / load)
	pt := SaturationPoint{Load: load, Offered: float64(senders) / period.Seconds()}

	depths := map[string]*stats.Sample{}
	sys.Topo().OnDepth = func(at units.Time, port string, depth int) {
		s := depths[port]
		if s == nil {
			s = &stats.Sample{}
			depths[port] = s
		}
		s.Add(float64(depth))
	}

	recv := sys.Nodes[0]
	recvW := uct.NewWorker(recv, cfg)
	st := &winShared{}
	for s := 1; s <= senders; s++ {
		n := sys.Nodes[s]
		w := uct.NewWorker(n, cfg)
		ep := w.NewEp(opt.Mode, opt.SignalPeriod)
		epR := recvW.NewEp(opt.Mode, opt.SignalPeriod)
		uct.Connect(ep, epR)
		tgt := recv.Mem.Alloc(fmt.Sprintf("sat.target%d", s), uint64(max(opt.MsgSize, 64)), 64)
		ep.RemoteBuf = tgt.Base

		msg := make([]byte, opt.MsgSize)
		f := &pacedPutFrame{cfg: cfg, rand: n.Rand, w: w, ep: ep, period: period, opt: &opt, st: st}
		f.postF = postSpinFrame{w: w, ep: ep, kind: postPutAuto, strict: true, msg: msg}
		sys.K.SpawnTask(fmt.Sprintf("sat.sender%d", s), f)
	}
	sys.Run()
	if st.done != senders {
		panic(fmt.Sprintf("perftest: only %d of %d saturation senders finished", st.done, senders))
	}

	pt.Elapsed = st.end - st.start
	pt.Delivered = float64(senders*opt.Iters) / pt.Elapsed.Seconds()

	if rep := StallReport(sys); rep != nil && len(rep.Msgs) > 0 {
		pt.MeanLatency = rep.Measured / units.Time(len(rep.Msgs))
		pt.Shares = rep.Shares()
		pt.Incomplete = rep.Incomplete
	}

	for _, ps := range sys.Topo().PortStats() {
		if ps.MaxQueue > pt.MaxQueue {
			pt.MaxQueue = ps.MaxQueue
			pt.HotPort = ps.Name
			pt.HotUtilization = float64(ps.Busy) / float64(st.end)
			if s := depths[ps.Name]; s != nil {
				pt.QueueP50 = s.Quantile(0.5)
				pt.QueueP99 = s.Quantile(0.99)
			}
		}
	}
	return pt
}

// Format renders the sweep as a table: one row per load step with rates,
// latency, the dominant stall components and the hot port, then the knee
// verdict against the analytic capacity.
func (r *SaturationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "saturation sweep: %d senders x %dB -> node 0, bottleneck %v/msg (capacity %.0f msg/s)\n",
		r.Senders, r.MsgSize, r.Bottleneck, r.Capacity)
	fmt.Fprintf(&b, "  %-5s %12s %12s %10s %7s %7s %7s %7s  %s\n",
		"load", "offered/s", "delivered/s", "mean lat", "queue%", "stall%", "pend%", "waste%", "hot port (p50/p99/max depth, util)")
	for i := range r.Points {
		p := &r.Points[i]
		mark := " "
		if i == r.KneeIndex {
			mark = "*"
		}
		hot := "-"
		if p.HotPort != "" {
			hot = fmt.Sprintf("%s (%.0f/%.0f/%d, %.0f%%)",
				p.HotPort, p.QueueP50, p.QueueP99, p.MaxQueue, 100*p.HotUtilization)
		}
		fmt.Fprintf(&b, "%s %-5.2f %12.0f %12.0f %10v %6.1f%% %6.1f%% %6.1f%% %6.1f%%  %s\n",
			mark, p.Load, p.Offered, p.Delivered, p.MeanLatency,
			100*p.Shares[1], 100*p.Shares[2], 100*p.Shares[3], 100*(p.Shares[4]+p.Shares[5]), hot)
	}
	if r.KneeIndex >= 0 {
		fmt.Fprintf(&b, "  knee at load %.2f (*): delivered %.0f msg/s vs %.0f offered; model predicts saturation at load 1.00\n",
			r.Points[r.KneeIndex].Load, r.Points[r.KneeIndex].Delivered, r.Points[r.KneeIndex].Offered)
	} else {
		fmt.Fprintf(&b, "  no knee: delivered tracked offered at every step\n")
	}
	return b.String()
}
