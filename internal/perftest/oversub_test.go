package perftest

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/topo"
)

// oversubConfig builds a single-switch NoiseOff configuration with the
// receiver rx budget set.
func oversubConfig(budget int) *config.Config {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
	cfg.NICRxBudget = budget
	return cfg
}

// TestOversubscribedBoundedAndConverged is the acceptance check for
// receiver-side backpressure: under a saturating 4 KiB incast with the rx
// budget enabled, the NIC's held-frame count and the NIC->RC pend queue
// stay bounded by the budget — the queue that grew with offered load
// before this existed — and per-sender goodput converges to the receiver's
// PCIe service rate. With the budget equal to the per-link fabric credits
// (16) arrivals are credit-gated exactly at the budget boundary, so the
// throttling is lossless: deferred frame release does all the work and no
// frame ever needs a NAK.
func TestOversubscribedBoundedAndConverged(t *testing.T) {
	const budget, senders, size = 16, 4, 4096
	sys := node.NewSystem(oversubConfig(budget), senders+1)
	defer sys.Shutdown()
	res := OversubscribedPutBw(sys, senders, Options{Iters: 400, Warmup: 250, MsgSize: size})
	t.Logf("%v", res)

	if res.MaxRxHeld > budget {
		t.Errorf("rx held high-water %d exceeds budget %d", res.MaxRxHeld, budget)
	}
	if res.MaxRxHeld != budget {
		t.Errorf("rx held high-water %d; a saturating incast should fill the budget %d", res.MaxRxHeld, budget)
	}
	if res.MaxUpPend > budget {
		t.Errorf("NIC->RC pend queue reached %d, budget %d", res.MaxUpPend, budget)
	}
	gotNs := 1e9 / res.PerSenderMsgRate
	wantNs := float64(senders) * res.ModelCycleNs
	if gotNs < wantNs || gotNs > wantNs*1.1 {
		t.Errorf("per-sender interval %.1f ns, want the receiver PCIe service time %.1f ns (+<10%%)", gotNs, wantNs)
	}
	if res.RNRNaks != 0 {
		t.Errorf("budget == credits should be losslessly credit-gated, got %d NAKs", res.RNRNaks)
	}
}

// TestOversubscribedBelowCreditsNaksAndThrottles pushes the budget below
// the fabric credit budget, so frames keep arriving while the budget is
// full and admission control — RNR NAK, sender backoff, go-back-N replay —
// carries the overload. The bound still holds; goodput sits measurably
// below the lossless PCIe rate (the replay traffic re-burns shared wire
// time — RNR throttling is expensive, exactly as on real RC transports)
// but stays within a small factor of it: throttled, not collapsed.
func TestOversubscribedBelowCreditsNaksAndThrottles(t *testing.T) {
	const budget, senders, size = 8, 4, 4096
	sys := node.NewSystem(oversubConfig(budget), senders+1)
	defer sys.Shutdown()
	res := OversubscribedPutBw(sys, senders, Options{Iters: 400, Warmup: 250, MsgSize: size})
	t.Logf("%v", res)

	if res.MaxRxHeld > budget {
		t.Errorf("rx held high-water %d exceeds budget %d", res.MaxRxHeld, budget)
	}
	if res.MaxUpPend > budget {
		t.Errorf("NIC->RC pend queue reached %d, budget %d", res.MaxUpPend, budget)
	}
	if res.RNRNaks == 0 || res.Retransmits == 0 {
		t.Errorf("overload produced no NAK/replay activity: %d NAKs, %d replays", res.RNRNaks, res.Retransmits)
	}
	if res.RetryStall == 0 {
		t.Error("no sender backoff stall time accumulated")
	}
	gotNs := 1e9 / res.PerSenderMsgRate
	floorNs := float64(senders) * res.ModelCycleNs
	if gotNs < floorNs {
		t.Errorf("per-sender interval %.1f ns beat the PCIe service floor %.1f ns", gotNs, floorNs)
	}
	if gotNs > 3*floorNs {
		t.Errorf("per-sender interval %.1f ns, want within 3x of the PCIe service floor %.1f ns", gotNs, floorNs)
	}
}

// TestOversubscribedBudgetOneLockstep is the degenerate bound: with a
// single-frame budget the receiver accepts one frame at a time and NAKs
// everything else, yet every message still gets through exactly once and
// the pend queue never holds more than that one frame's write.
func TestOversubscribedBudgetOneLockstep(t *testing.T) {
	const senders = 3
	sys := node.NewSystem(oversubConfig(1), senders+1)
	defer sys.Shutdown()
	res := OversubscribedPutBw(sys, senders, Options{Iters: 60, Warmup: 10, MsgSize: 4096})
	t.Logf("%v", res)

	if res.Messages != senders*60 {
		t.Fatalf("messages = %d, want %d", res.Messages, senders*60)
	}
	if res.PerSenderMsgRate <= 0 {
		t.Fatalf("no progress: %v", res)
	}
	if res.MaxRxHeld > 1 {
		t.Errorf("rx held high-water %d with budget 1", res.MaxRxHeld)
	}
	if res.MaxUpPend > 1 {
		t.Errorf("pend queue reached %d with budget 1", res.MaxUpPend)
	}
	if res.RNRNaks == 0 {
		t.Error("budget-1 lockstep produced no NAKs")
	}
}

// TestOversubscribedDeterministic pins run-to-run determinism of the
// NAK/retry machinery (backoff timers ride the ordinary event queue).
func TestOversubscribedDeterministic(t *testing.T) {
	run := func() *OversubscribedResult {
		sys := node.NewSystem(oversubConfig(8), 4)
		defer sys.Shutdown()
		return OversubscribedPutBw(sys, 3, Options{Iters: 80, Warmup: 20, MsgSize: 4096})
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.RNRNaks != b.RNRNaks || a.Retransmits != b.Retransmits {
		t.Errorf("oversubscribed run not deterministic:\n  %v\n  %v", a, b)
	}
}

// TestZeroBudgetNeverNaks pins the budget-off behaviour: with the budget
// at zero the receiver never refuses a frame — overload is absorbed
// entirely by deferred release, which caps buffering at the final-hop
// fabric credit budget (the switch queues, not the PCIe pend queue, soak
// the rest). Admission control stays completely out of the picture.
func TestZeroBudgetNeverNaks(t *testing.T) {
	sys := node.NewSystem(oversubConfig(0), 5)
	defer sys.Shutdown()
	res := OversubscribedPutBw(sys, 4, Options{Iters: 200, Warmup: 50, MsgSize: 4096})
	t.Logf("%v", res)
	if res.RNRNaks != 0 || res.Retransmits != 0 {
		t.Errorf("budget-off receiver produced NAK/retry activity: %v", res)
	}
	// Buffering fills up to the final-hop credit budget and no further.
	credits := topo.DefaultCredits
	if res.MaxRxHeld != credits {
		t.Errorf("held high-water %d, want the full credit budget %d", res.MaxRxHeld, credits)
	}
	if res.MaxUpPend > credits {
		t.Errorf("pend queue reached %d, want <= the credit budget %d", res.MaxUpPend, credits)
	}
}
