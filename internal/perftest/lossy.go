package perftest

import (
	"encoding/binary"
	"fmt"

	"breakband/internal/config"
	"breakband/internal/nic"
	"breakband/internal/node"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// amLossy is the active-message id the lossy stream rides on.
const amLossy = 5

// lossyShared is the state the lossy sender, receiver and verifier share:
// the receiver-side sequence check that turns "the transport recovered"
// into an application-layer assertion.
type lossyShared struct {
	total    int
	msgSize  int
	expected uint64 // next sequence number the application must see
	received int
	lastRx   units.Time
	// Integrity violations — all must stay zero at any drop rate short of
	// QP failure.
	dups, gaps, corrupt, badLen int
	failed                      bool // the sender's QP errored (retry exhaustion)
	senderDone                  bool
}

// verify is the receiver's AM handler: every delivered payload must carry
// the next sequence number (little-endian in bytes 0..7) and the exact
// pattern fill behind it — exactly once, in order, uncorrupted.
func (sh *lossyShared) verify(t *sim.Task, data []byte) {
	sh.lastRx = t.Now()
	if len(data) != sh.msgSize {
		sh.badLen++
		return
	}
	seq := binary.LittleEndian.Uint64(data[:8])
	d := int64(seq - sh.expected)
	switch {
	case d == 0:
		sh.expected++
		sh.received++
		for j := 8; j < len(data); j++ {
			if data[j] != byte(seq+uint64(j)) {
				sh.corrupt++
				break
			}
		}
	case d < 0:
		sh.dups++
	default:
		sh.gaps++
	}
}

// stamp writes message i's payload: sequence number plus pattern fill.
func lossyStamp(msg []byte, i int) {
	binary.LittleEndian.PutUint64(msg[:8], uint64(i))
	for j := 8; j < len(msg); j++ {
		msg[j] = byte(uint64(i) + uint64(j))
	}
}

// lossySendFrame streams sh.total sequence-stamped active messages with
// batched polling, aborting when the QP fails (retry exhaustion under
// heavy loss), then drains its in-flight tail.
type lossySendFrame struct {
	cfg  *config.Config
	rand *rng.Rand
	w    *uct.Worker
	ep   *uct.Ep
	sh   *lossyShared

	postF postSpinFrame
	msg   []byte
	pc    int
	i     int
}

func (f *lossySendFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0: // loop head
			if f.i >= f.sh.total {
				f.pc = 2
				continue
			}
			lossyStamp(f.msg, f.i)
			f.pc = 1
			f.postF.start(t)
			return
		case 1:
			if f.ep.Err != nil {
				f.pc = 2
				continue
			}
			if (f.i+1)%f.cfg.Bench.PollBatch == 0 {
				f.i++
				f.pc = 0
				f.w.StartProgress(t)
				return
			}
			f.i++
			f.pc = 0
		case 2: // drain the in-flight tail
			if f.ep.Err != nil {
				f.sh.failed = true
				f.sh.senderDone = true
				t.Return()
				return
			}
			if f.ep.InFlight() > 0 {
				f.w.StartProgress(t)
				return
			}
			f.sh.senderDone = true
			t.Return()
			return
		}
	}
}

// lossyRecvFrame polls the receiver worker until every message arrived (or
// the sender gave up), driving the AM verifier.
type lossyRecvFrame struct {
	w  *uct.Worker
	ep *uct.Ep
	sh *lossyShared
	pc int
}

func (f *lossyRecvFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.ep.StartPostRecvs(t, 64)
			return
		case 1:
			if f.sh.received >= f.sh.total || (f.sh.failed && f.sh.senderDone) {
				t.Return()
				return
			}
			f.pc = 2
			f.w.StartProgress(t)
			return
		case 2:
			f.pc = 1
		}
	}
}

// LossyResult reports one lossy stream run.
type LossyResult struct {
	DropRate    float64
	CorruptRate float64
	Total       int
	// Delivered counts messages the application accepted in sequence;
	// short of Failed it must equal Total.
	Delivered int
	// Application-layer integrity violations — all must be zero at any
	// loss rate the transport survives.
	Duplicated int
	Misordered int
	Corrupted  int
	BadLength  int
	// Failed marks a run the sender QP did not survive (retry
	// exhaustion, e.g. at 100% drop).
	Failed bool
	// Elapsed is start-of-run to last accepted delivery; GoodputMBs the
	// delivered payload over it.
	Elapsed    units.Time
	GoodputMBs float64
	// Transport/wire observability.
	SenderStats   nic.Stats
	ReceiverStats nic.Stats
	WireDropped   uint64
	WireCorrupted uint64
}

// LossyPutBw streams opt.Iters sequence-stamped active messages from node
// 0 to node 1 over whatever fault schedule sys was built with, and verifies
// at the application layer that delivery is bit-exact, exactly-once and
// in-order — the transport's PSN/ACK-timeout/NAK machinery has to absorb
// every injected drop and corruption. Goodput degrades with the loss rate;
// integrity must not.
func LossyPutBw(sys *node.System, opt Options) *LossyResult {
	opt.Defaults(sys.Cfg)
	if opt.MsgSize < 8 {
		opt.MsgSize = 8
	}
	cfg := sys.Cfg
	n0, n1 := sys.Nodes[0], sys.Nodes[1]

	w0 := uct.NewWorker(n0, cfg)
	w1 := uct.NewWorker(n1, cfg)
	ep0 := w0.NewEp(opt.Mode, opt.SignalPeriod)
	ep1 := w1.NewEp(opt.Mode, opt.SignalPeriod)
	uct.Connect(ep0, ep1)

	sh := &lossyShared{total: opt.Iters, msgSize: opt.MsgSize}
	w1.SetAmHandler(amLossy, sh.verify)

	send := &lossySendFrame{cfg: cfg, rand: n0.Rand, w: w0, ep: ep0, sh: sh, msg: make([]byte, opt.MsgSize)}
	send.postF = postSpinFrame{w: w0, ep: ep0, kind: postAmAuto, id: amLossy, msg: send.msg}
	recv := &lossyRecvFrame{w: w1, ep: ep1, sh: sh}
	sys.K.SpawnTask("lossy.sender", send)
	sys.K.SpawnTask("lossy.receiver", recv)
	sys.Run()

	if !sh.failed && sh.received != sh.total {
		panic(fmt.Sprintf("perftest: lossy run ended with %d of %d delivered and no QP error", sh.received, sh.total))
	}
	res := &LossyResult{
		DropRate:      cfg.Faults.DropRate,
		CorruptRate:   cfg.Faults.CorruptRate,
		Total:         sh.total,
		Delivered:     sh.received,
		Duplicated:    sh.dups,
		Misordered:    sh.gaps,
		Corrupted:     sh.corrupt,
		BadLength:     sh.badLen,
		Failed:        sh.failed,
		Elapsed:       sh.lastRx,
		SenderStats:   n0.NIC.Stats(),
		ReceiverStats: n1.NIC.Stats(),
	}
	if res.Elapsed > 0 {
		res.GoodputMBs = float64(res.Delivered) * float64(opt.MsgSize) / 1e6 / res.Elapsed.Seconds()
	}
	if sys.Faults != nil {
		res.WireDropped, res.WireCorrupted, _ = sys.Faults.Totals()
	}
	return res
}

// LossySweep runs LossyPutBw across a ladder of loss rates (each applied
// as both the drop and the corrupt rate), building a fresh system per
// point — the payoff scenario of the fault-injection subsystem. Rate zero
// is the lossless baseline: no injector is compiled and the timeout
// machinery stays disarmed.
func LossySweep(base *config.Config, rates []float64, opt Options) []*LossyResult {
	out := make([]*LossyResult, 0, len(rates))
	for _, r := range rates {
		c := *base
		c.Faults.DropRate = r
		c.Faults.CorruptRate = r
		sys := node.NewSystem(&c, 2)
		res := LossyPutBw(sys, opt)
		sys.Shutdown()
		out = append(out, res)
	}
	return out
}

// String renders the result.
func (r *LossyResult) String() string {
	state := "ok"
	if r.Failed {
		state = "FAILED (retry exhaustion)"
	}
	return fmt.Sprintf("lossy put_bw: drop %g corrupt %g: %d/%d delivered (%d dup, %d misordered, %d corrupt) in %v -> %.2f MB/s, wire -%d/-%d, %s",
		r.DropRate, r.CorruptRate, r.Delivered, r.Total, r.Duplicated, r.Misordered, r.Corrupted,
		r.Elapsed, r.GoodputMBs, r.WireDropped, r.WireCorrupted, state)
}

// FlapIncastResult reports the link-flap incast scenario.
type FlapIncastResult struct {
	Senders int
	MsgSize int
	// Down/Up is the first configured flap window.
	Down, Up units.Time
	Elapsed  units.Time
	// Aggregate measured-iteration completion rates (msg/s) before the
	// link went down, while it was down, and after it came back — the
	// recovery assertion is PostRate ~= PreRate.
	PreRate, DipRate, PostRate float64
	PreN, DipN, PostN          int
	// Transport recovery activity across the sender NICs.
	AckTimeouts, SeqNaks, Retransmits uint64
	WireDropped                       uint64
	Flaps                             uint64
}

// FlapIncastPutBw runs the incast put_bw loop over a fault schedule that
// flaps a fabric link — sys must be built with at least one
// cfg.Faults.Flaps entry, typically a fat-tree leaf up-link some of the
// flows ride. Unlike IncastPutBw it takes its `senders` senders from the
// END of the node list (sys.Nodes[len-senders:] into node 0), so on a
// fat-tree the set can be kept leaf-symmetric: a sender sharing the
// receiver's leaf runs a much shorter RTT and would skew the windowed
// rates. While the link is down ECMP re-hashes the affected flows around
// the dead path and the ACK-timeout machinery replays what the flap
// swallowed; after recovery the routes rehash back and the aggregate rate
// must return to the pre-fault steady state. Per-iteration completion
// timestamps split the run into pre/dip/post windows.
func FlapIncastPutBw(sys *node.System, senders int, opt Options) *FlapIncastResult {
	opt.Defaults(sys.Cfg)
	cfg := sys.Cfg
	if len(cfg.Faults.Flaps) == 0 {
		panic("perftest: FlapIncastPutBw needs a cfg.Faults.Flaps schedule")
	}
	senders = clampSenders(sys, senders)
	recv := sys.Nodes[0]
	recvW := uct.NewWorker(recv, cfg)

	st := &winShared{}
	marks := make([][]units.Time, senders)
	for s := 1; s <= senders; s++ {
		n := sys.Nodes[len(sys.Nodes)-senders+s-1]
		w := uct.NewWorker(n, cfg)
		ep := w.NewEp(opt.Mode, opt.SignalPeriod)
		epR := recvW.NewEp(opt.Mode, opt.SignalPeriod)
		uct.Connect(ep, epR)
		tgt := recv.Mem.Alloc(fmt.Sprintf("flap.target%d", s), uint64(max(opt.MsgSize, 64)), 64)
		ep.RemoteBuf = tgt.Base

		msg := make([]byte, opt.MsgSize)
		f := &putLoopFrame{cfg: cfg, rand: n.Rand, w: w, ep: ep, opt: &opt, st: st, marks: &marks[s-1]}
		f.postF = postSpinFrame{w: w, ep: ep, kind: postPutAuto, strict: true, msg: msg}
		sys.K.SpawnTask(fmt.Sprintf("flap.sender%d", s), f)
	}
	sys.Run()
	if st.done != senders {
		panic(fmt.Sprintf("perftest: only %d of %d flap senders finished", st.done, senders))
	}

	fl := cfg.Faults.Flaps[0]
	res := &FlapIncastResult{
		Senders: senders, MsgSize: opt.MsgSize,
		Down: fl.Down, Up: fl.Up,
		Elapsed: st.end - st.start,
	}
	// The pre and post windows are interior so the rates compare like
	// with like: the pre window opens halfway to the flap (past the
	// initial pipeline-fill burst, which posts far faster than the
	// congested steady state), and the post window opens a settle margin
	// after restore (past the reorder/replay churn of the path moving
	// back) and closes when the first sender runs out of work (past that
	// point fewer flows are active and the aggregate is not comparable).
	postEnd := st.end
	for _, ms := range marks {
		if len(ms) > 0 && ms[len(ms)-1] < postEnd {
			postEnd = ms[len(ms)-1]
		}
	}
	preLo, preHi := fl.Down/2, fl.Down
	postLo := fl.Up + (fl.Up-fl.Down)/2
	for _, ms := range marks {
		for _, at := range ms {
			switch {
			case at >= preLo && at < preHi:
				res.PreN++
			case at >= fl.Down && at < fl.Up:
				res.DipN++
			case at >= postLo && at < postEnd:
				res.PostN++
			}
		}
	}
	rate := func(n int, span units.Time) float64 {
		if span <= 0 {
			return 0
		}
		return float64(n) / span.Seconds()
	}
	res.PreRate = rate(res.PreN, preHi-preLo)
	res.DipRate = rate(res.DipN, fl.Up-fl.Down)
	res.PostRate = rate(res.PostN, postEnd-postLo)
	for s := 1; s <= senders; s++ {
		ns := sys.Nodes[len(sys.Nodes)-senders+s-1].NIC.Stats()
		res.AckTimeouts += ns.AckTimeouts
		res.SeqNaks += ns.SeqNaksRecv
		res.Retransmits += ns.Retransmits
	}
	if sys.Faults != nil {
		res.WireDropped, _, res.Flaps = sys.Faults.Totals()
	}
	return res
}

// String renders the result.
func (r *FlapIncastResult) String() string {
	return fmt.Sprintf("flap incast: %d senders x %dB, link down %v..%v: %.0f msg/s pre -> %.0f dip -> %.0f post (%d timeouts, %d seq-naks, %d retransmits, wire -%d)",
		r.Senders, r.MsgSize, r.Down, r.Up, r.PreRate, r.DipRate, r.PostRate,
		r.AckTimeouts, r.SeqNaks, r.Retransmits, r.WireDropped)
}
