package sim

import (
	"math/rand"
	"testing"
)

// --- continuation task semantics ---

// tickFrame advances a fixed delta and pauses, forever, counting resumes.
type tickFrame struct {
	pc    int
	ticks *int
}

func (f *tickFrame) Step(t *Task) {
	for {
		switch f.pc {
		case 0:
			t.Advance(10)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			*f.ticks++
			f.pc = 0
		}
	}
}

func TestTaskCancelStopsResumes(t *testing.T) {
	k := NewKernel()
	ticks := 0
	task := k.SpawnTask("ticker", &tickFrame{ticks: &ticks})
	k.RunUntil(35)
	if ticks != 3 {
		t.Fatalf("ticks before cancel = %d, want 3", ticks)
	}
	task.Cancel()
	if !task.Done() {
		t.Error("cancelled task not done")
	}
	k.RunUntil(200)
	if ticks != 3 {
		t.Errorf("cancelled task ticked again: %d", ticks)
	}
	task.Cancel() // cancelling twice is a no-op
	k.Shutdown()
}

// callerFrame pushes a sub-frame and records whether it ever resumed after
// the call returned.
type callerFrame struct {
	pc      int
	sub     Frame
	resumed *bool
}

func (f *callerFrame) Step(t *Task) {
	switch f.pc {
	case 0:
		f.pc = 1
		t.Call(f.sub)
	case 1:
		*f.resumed = true
		t.Return()
	}
}

// onePauseFrame advances once, pauses once, returns.
type onePauseFrame struct {
	pc int
	d  Time
}

func (f *onePauseFrame) Step(t *Task) {
	for {
		switch f.pc {
		case 0:
			t.Advance(f.d)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			t.Return()
			return
		}
	}
}

func TestTaskCancelMidChain(t *testing.T) {
	// Cancel while a sub-frame is paused: neither the sub-frame nor its
	// caller may resume, and the scheduled resume event must be dropped.
	k := NewKernel()
	resumed := false
	task := k.SpawnTask("chain", &callerFrame{
		sub:     &onePauseFrame{d: 50},
		resumed: &resumed,
	})
	k.RunUntil(20) // sub-frame is now paused until t=50
	if task.Done() {
		t.Fatal("task finished before its pause elapsed")
	}
	pending := k.Pending()
	task.Cancel()
	if got := k.Pending(); got != pending-1 {
		t.Errorf("cancel dropped %d events, want 1", pending-got)
	}
	k.Run()
	if resumed {
		t.Error("caller frame resumed after mid-chain cancel")
	}
	if !task.Done() {
		t.Error("cancelled task not done")
	}
	k.Shutdown()
}

func TestTaskCancelBlockingAdapterPanics(t *testing.T) {
	k := NewKernel()
	panicked := false
	k.Spawn("holder", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Task().Cancel()
	})
	k.Run()
	k.Shutdown()
	if !panicked {
		t.Error("Cancel on a blocking adapter did not panic")
	}
}

// boomFrame pauses once, then panics on resume.
type boomFrame struct{ pc int }

func (f *boomFrame) Step(t *Task) {
	for {
		switch f.pc {
		case 0:
			t.Advance(5)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			panic("boom: frame failure")
		}
	}
}

func TestTaskPanicPropagatesOutOfRun(t *testing.T) {
	// A panic inside a frame Step executes in kernel event context, so it
	// must surface out of Run (no swallowed errors, no deadlock), and
	// Shutdown afterwards must still clean up without hanging.
	k := NewKernel()
	k.SpawnTask("boom", &boomFrame{})
	var got any
	func() {
		defer func() { got = recover() }()
		k.Run()
	}()
	if got != "boom: frame failure" {
		t.Fatalf("recovered %v, want frame panic", got)
	}
	k.Shutdown()
}

// --- continuation vs goroutine twin soak ---

// scriptOp is one step of a generated workload: advance by adv, optionally
// synchronize (Sync/Pause — always a matched pair across the two styles),
// optionally record a trace mark.
type scriptOp struct {
	adv  Time
	sync bool
	mark bool
}

// twinMark is one trace entry: who recorded it, the virtual time they
// observed, and how many events the kernel had fired.
type twinMark struct {
	who   int
	at    Time
	fired uint64
}

// scriptFrame replays a script in continuation style: one Pause site per
// sync op, mirroring the goroutine twin's Sync call site one-for-one.
type scriptFrame struct {
	ops   []scriptOp
	who   int
	trace *[]twinMark
	i     int
	pc    int
}

func (f *scriptFrame) Step(t *Task) {
	for {
		if f.i >= len(f.ops) {
			t.Return()
			return
		}
		op := f.ops[f.i]
		switch f.pc {
		case 0:
			t.Advance(op.adv)
			f.pc = 1
			if op.sync && t.Pause() {
				return
			}
		case 1:
			if op.mark {
				*f.trace = append(*f.trace, twinMark{f.who, t.Now(), t.Kernel().Fired()})
			}
			f.i++
			f.pc = 0
		}
	}
}

// genScript draws a workload from r: small advances, frequent syncs, some
// zero-length advances (the free-Pause path), and trace marks.
func genScript(r *rand.Rand, n int) []scriptOp {
	ops := make([]scriptOp, n)
	for i := range ops {
		adv := Time(r.Intn(40))
		if r.Intn(4) == 0 {
			adv = 0 // exercise the lag-free Pause/Sync fast path
		}
		ops[i] = scriptOp{adv: adv, sync: r.Intn(3) != 0, mark: r.Intn(2) == 0}
	}
	return ops
}

// TestTaskProcTwin soaks the equivalence contract documented on Task: a
// stack converted from goroutine Procs to continuation frames schedules the
// same events at the same times in the same order, so interleaved workloads
// produce bit-identical traces in both styles.
func TestTaskProcTwin(t *testing.T) {
	const workers = 3
	for seed := int64(0); seed < 25; seed++ {
		scripts := make([][]scriptOp, workers)
		r := rand.New(rand.NewSource(seed))
		for w := range scripts {
			scripts[w] = genScript(r, 120)
		}

		run := func(continuation bool) ([]twinMark, Time, uint64) {
			k := NewKernel()
			var trace []twinMark
			// Background pure events interleave with the workers in
			// both modes; they must land at identical points.
			for at := Time(7); at < 500; at += 61 {
				at := at
				k.At(at, func() {
					trace = append(trace, twinMark{-1, k.Now(), k.Fired()})
				})
			}
			for w := 0; w < workers; w++ {
				w := w
				if continuation {
					k.SpawnTask("twin", &scriptFrame{ops: scripts[w], who: w, trace: &trace})
					continue
				}
				k.Spawn("twin", func(p *Proc) {
					for _, op := range scripts[w] {
						p.Advance(op.adv)
						if op.sync {
							p.Sync()
						}
						if op.mark {
							trace = append(trace, twinMark{w, p.Now(), k.Fired()})
						}
					}
				})
			}
			k.Run()
			defer k.Shutdown()
			return trace, k.Now(), k.Fired()
		}

		ct, cNow, cFired := run(true)
		gt, gNow, gFired := run(false)
		if cNow != gNow || cFired != gFired {
			t.Fatalf("seed %d: end state diverged: task (now %v, %d events) vs proc (now %v, %d events)",
				seed, cNow, cFired, gNow, gFired)
		}
		if len(ct) != len(gt) {
			t.Fatalf("seed %d: trace lengths %d vs %d", seed, len(ct), len(gt))
		}
		for i := range ct {
			if ct[i] != gt[i] {
				t.Fatalf("seed %d: trace[%d] = %+v (task) vs %+v (proc)", seed, i, ct[i], gt[i])
			}
		}
	}
}
