// Package sim implements the discrete-event simulation kernel that the whole
// breakband system runs on.
//
// The kernel owns a virtual clock (integer picoseconds) and a priority queue
// of events. Hardware components (PCIe links, NICs, the network fabric) are
// written in event-callback style. Simulated software threads come in two
// styles sharing one timeline:
//
//   - Tasks (task.go) are run-to-completion continuations: a stack of
//     resumable Frames executed inside kernel event context. Where a thread
//     would suspend, the frame records its program counter, schedules its
//     own resume as one pooled event (Pause), and returns to the event
//     loop. The hot software stacks — uct, verbs, ucp, mpi, and the osu /
//     perftest drivers — run exclusively as tasks: no goroutine, no channel
//     handoff, zero allocations in steady state.
//   - Procs (proc.go) are goroutines that advance virtual time with
//     Sleep/Sync. Each suspension costs a kernel event plus two goroutine
//     handoffs (counted by Kernel.Handoffs), so procs are reserved for cold
//     paths — the measurement campaign, tests, ad-hoc drivers — where
//     direct style is worth the price. Proc.Task adapts a proc so it can
//     call the frame-based stacks synchronously.
//
// Tasks and procs never run concurrently with each other or with the
// kernel: at any instant exactly one frame Step, proc body, or event
// callback is executing, so shared simulation state needs no locking and
// runs are fully deterministic: events at equal timestamps fire in
// scheduling order (a monotone sequence number breaks ties). The two styles
// are observationally equivalent — each former Sync call site maps to one
// Pause call site, so a converted stack schedules identical events
// (TestTaskProcTwin soaks this; the golden fixtures pin it end to end).
//
// # Event-queue internals
//
// The queue is built for the hot path — tens of millions of schedule/fire
// pairs per simulated benchmark — rather than for generality:
//
//   - Events live in a pooled arena ([]slot) indexed by a small integer id.
//     Scheduling reuses a free slot instead of heap-allocating, so the
//     steady-state schedule path performs zero allocations.
//   - The priority queue is a hand-rolled value-typed 4-ary min-heap of
//     {at, seq, id} entries ordered by (at, seq). Compared to
//     container/heap's interface-based binary heap this removes the
//     per-operation boxing and interface dispatch and halves the tree
//     depth, trading slightly more comparisons per level for far fewer
//     cache misses.
//   - EventRef is a value handle {kernel, id, generation}. Each slot carries
//     a generation counter bumped on every reuse, so cancelling a fired (and
//     since recycled) event is a detectable no-op rather than a
//     use-after-free of somebody else's event.
//   - Cancellation is lazy: Cancel marks the slot dead and the heap entry is
//     discarded when it surfaces. A live counter keeps Pending O(1).
//
// # Batched time advancement
//
// Tasks and procs carry a lazy local clock (Advance / Pause, Proc.Advance /
// Proc.Sync): consecutive pure-delay advances accumulate locally and
// materialize as a single kernel event at the next synchronization point.
// The contract is identical in both styles: Advance only pure delay, and
// synchronize (Pause/Sync) before reading or writing any state outside the
// simulated thread. See task.go and proc.go.
//
// # Closure-free continuations
//
// The device models (internal/pcie, internal/fabric, internal/nic) schedule
// one or more events per simulated message. Scheduling those through
// After(d, func(){...}) would allocate a closure per message, so the kernel
// also offers AtArg/AfterArg: the callback func(any) is bound once when the
// component is constructed, and the per-event state (a pooled TLP, DLLP or
// frame — always a pointer, so the any box itself is allocation-free) rides
// in the arg word of the pooled event slot. Steady-state device traffic
// therefore schedules continuations without capturing anything.
//
// ARCHITECTURE.md (repo root) summarizes this event/time contract next to
// the ownership and credit contracts the device layers build on it.
package sim

import (
	"fmt"
	"strings"

	"breakband/internal/trace"
	"breakband/internal/units"
)

// Time aliases the repository-wide picosecond time type for convenience.
type Time = units.Time

// slot is one pooled event in the arena. The schedule-relevant ordering keys
// (at, seq) live in the heap entry, not here, so heap sifting never chases
// arena pointers. An event carries either a plain callback (fn) or an
// argument-taking callback plus its argument (afn, arg): the latter is the
// closure-free form used by the device models, whose continuation functions
// are bound once at construction time and receive the in-flight object
// (a pooled TLP, DLLP or frame) through arg.
type slot struct {
	fn  func()
	afn func(any)
	arg any
	// gen is bumped every time the slot is recycled; EventRefs carry the
	// generation they were issued with, so stale handles are no-ops.
	gen uint32
	// live is true from scheduling until the event fires or is cancelled.
	live bool
}

// heapEnt is a value-typed entry of the 4-ary min-heap.
type heapEnt struct {
	at  Time
	seq uint64
	id  int32
}

// less orders entries by (at, seq): time first, scheduling order at ties.
func (e heapEnt) less(o heapEnt) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// EventRef is valid and cancels nothing.
type EventRef struct {
	k   *Kernel
	id  int32
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired,
// already-cancelled, or zero ref is a no-op: the slot generation recorded in
// the ref no longer matches once the slot has been recycled, so a stale ref
// can never kill an unrelated event that happens to reuse the slot.
//
// Cancelling an AtArg/AfterArg event drops the arg without any cleanup: the
// kernel does not know how to dispose of it, so a caller cancelling an
// event that carries a pooled object (a TLP, DLLP or frame) takes over
// ownership and must Release the object through its own reference.
func (r EventRef) Cancel() {
	if r.k == nil {
		return
	}
	s := &r.k.slots[r.id]
	if s.gen != r.gen || !s.live {
		return
	}
	s.live = false
	s.fn = nil
	s.afn = nil
	s.arg = nil
	r.k.live--
}

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now  Time
	seq  uint64
	heap []heapEnt

	slots []slot
	free  []int32
	live  int // scheduled-and-not-cancelled events; keeps Pending O(1)

	fired   uint64
	procs   []*Proc
	tasks   []*Task
	stopped bool
	limit   uint64 // safety valve: max events per Run (0 = unlimited)
	// handoffs counts kernel→proc goroutine transfers (the costliest kernel
	// primitive). Continuation tasks never increment it; the hot-stack
	// scenarios assert it stays zero.
	handoffs uint64

	// tracer is the optional flight recorder shared by every component on
	// this kernel's timeline (nil = tracing disabled). It lives on the
	// kernel so layers built at different times observe one ring; each
	// component captures the pointer at construction and guards every emit
	// with a single nil test, keeping the disabled path byte-identical.
	tracer *trace.Tracer
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have executed, a cheap progress/size metric
// used by tests.
func (k *Kernel) Fired() uint64 { return k.fired }

// Handoffs reports how many goroutine handoffs (kernel→proc control
// transfers) have occurred. A scenario running purely on continuation tasks
// reports zero; tests assert this for every steady-state perftest/osu
// driver.
func (k *Kernel) Handoffs() uint64 { return k.handoffs }

// SetEventLimit installs a safety valve: Run panics after n events. Tests use
// it to convert accidental non-termination into a diagnosable failure.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// SetTracer installs the system-wide flight recorder. It must be called
// before components are constructed: layers capture the pointer once at
// build time, so a tracer installed later is not observed.
func (k *Kernel) SetTracer(tr *trace.Tracer) { k.tracer = tr }

// Tracer reports the installed flight recorder (nil = tracing disabled).
// Components call this once in their constructors.
func (k *Kernel) Tracer() *trace.Tracer { return k.tracer }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a causality bug in a component model.
func (k *Kernel) At(at Time, fn func()) EventRef {
	id, s := k.allocSlot(at)
	s.fn = fn
	return EventRef{k: k, id: id, gen: s.gen}
}

// After schedules fn to run d from now. Negative delays panic.
func (k *Kernel) After(d Time, fn func()) EventRef {
	return k.At(k.now+d, fn)
}

// AtArg schedules fn(arg) to run at absolute time at. It is the closure-free
// scheduling form: fn is typically bound once when a component is built, and
// arg carries the per-event object, so the steady-state path captures
// nothing and allocates nothing. arg should be a pointer (or nil): storing a
// non-pointer value in the slot's any field would heap-allocate the very box
// this API exists to avoid.
func (k *Kernel) AtArg(at Time, fn func(any), arg any) EventRef {
	id, s := k.allocSlot(at)
	s.afn = fn
	s.arg = arg
	return EventRef{k: k, id: id, gen: s.gen}
}

// AfterArg schedules fn(arg) to run d from now. See AtArg.
func (k *Kernel) AfterArg(d Time, fn func(any), arg any) EventRef {
	return k.AtArg(k.now+d, fn, arg)
}

// allocSlot takes a pooled slot, marks it live and queues it at time at.
func (k *Kernel) allocSlot(at Time) (int32, *slot) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (now=%v at=%v)", k.now, at))
	}
	var id int32
	if n := len(k.free); n > 0 {
		id = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		id = int32(len(k.slots))
		k.slots = append(k.slots, slot{})
	}
	s := &k.slots[id]
	s.live = true
	k.live++
	k.push(heapEnt{at: at, seq: k.seq, id: id})
	k.seq++
	return id, s
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue empties, Stop is called, or the event
// limit trips. It returns the number of events fired during this call.
func (k *Kernel) Run() uint64 {
	return k.RunUntil(units.MaxTime)
}

// RunUntil executes events with timestamps <= deadline. The clock is left at
// the last executed event's time.
func (k *Kernel) RunUntil(deadline Time) uint64 {
	k.stopped = false
	var fired uint64
	for len(k.heap) > 0 && !k.stopped {
		if k.heap[0].at > deadline {
			break
		}
		e := k.pop()
		s := &k.slots[e.id]
		wasLive := s.live
		fn := s.fn
		afn, arg := s.afn, s.arg
		// Recycle the slot before firing: the callback may cancel other
		// events or schedule new ones (which may reuse this very slot
		// under a fresh generation).
		s.fn = nil
		s.afn = nil
		s.arg = nil
		s.live = false
		s.gen++
		k.free = append(k.free, e.id)
		if !wasLive {
			continue // cancelled while queued
		}
		k.live--
		k.now = e.at
		k.fired++
		fired++
		if k.limit > 0 && k.fired > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v (runaway simulation?)", k.limit, k.now))
		}
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
	}
	return fired
}

// Pending reports the number of live events still queued.
func (k *Kernel) Pending() int { return k.live }

// StuckTasks reports the continuation tasks that are still live — neither
// done nor cancelled — at the moment of the call. After a clean Run (event
// queue drained) the slice is empty: a paused task always holds a scheduled
// resume event, so live tasks can only survive a drain if something
// cancelled their wake-up, and they survive a RunUntil/Stop/event-limit
// exit whenever they are deadlocked or livelocked (e.g. polling a
// completion that can never arrive). Blocking Proc adapters are not
// tracked here; Kernel.Shutdown owns those.
func (k *Kernel) StuckTasks() []*Task {
	var out []*Task
	for _, t := range k.tasks {
		if t.done || t.cancelled {
			continue
		}
		out = append(out, t)
	}
	return out
}

// StallReport is the kernel's quiescence watchdog: it renders one line per
// stuck task naming the task and its pause site (the frame type on top of
// its stack plus the stack depth), or "" when every task terminated. Run a
// bounded simulation (RunUntil or SetEventLimit plus recover), then consult
// the report — a non-empty report turns a silent truncated run into stall
// attribution: exactly which simulated threads are blocked, and in which
// layer's frame they stopped.
func (k *Kernel) StallReport() string {
	stuck := k.StuckTasks()
	if len(stuck) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %d stuck task(s) at t=%v (%d event(s) still pending):\n", len(stuck), k.now, k.live)
	for _, t := range stuck {
		fmt.Fprintf(&b, "  - %s\n", t.StallSite())
	}
	return b.String()
}

// --- 4-ary min-heap over heapEnt, ordered by (at, seq) ---

// push inserts e, sifting up from the tail.
func (k *Kernel) push(e heapEnt) {
	k.heap = append(k.heap, e)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].less(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// pop removes and returns the minimum entry, sifting the tail down.
func (k *Kernel) pop() heapEnt {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	k.heap = h[:n]
	h = k.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].less(h[m]) {
				m = j
			}
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
