// Package sim implements the discrete-event simulation kernel that the whole
// breakband system runs on.
//
// The kernel owns a virtual clock (integer picoseconds) and a priority queue
// of events. Hardware components (PCIe links, NICs, the network fabric) are
// written in event-callback style; software stacks (UCT/UCP/MPI and the
// benchmarks) are written in direct style as Procs — goroutines that advance
// virtual time with Sleep and never run concurrently with each other or with
// the kernel. At any instant exactly one goroutine is executing, so shared
// simulation state needs no locking and runs are fully deterministic: events
// at equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties).
package sim

import (
	"container/heap"
	"fmt"

	"breakband/internal/units"
)

// Time aliases the repository-wide picosecond time type for convenience.
type Time = units.Time

type event struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
	idx  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// EventRef identifies a scheduled event so it can be cancelled.
type EventRef struct{ e *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (r EventRef) Cancel() {
	if r.e != nil {
		r.e.dead = true
	}
}

// Kernel is a discrete-event simulator instance.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	fired   uint64
	procs   []*Proc
	stopped bool
	limit   uint64 // safety valve: max events per Run (0 = unlimited)
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Fired reports how many events have executed, a cheap progress/size metric
// used by tests.
func (k *Kernel) Fired() uint64 { return k.fired }

// SetEventLimit installs a safety valve: Run panics after n events. Tests use
// it to convert accidental non-termination into a diagnosable failure.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// it always indicates a causality bug in a component model.
func (k *Kernel) At(at Time, fn func()) EventRef {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event in the past (now=%v at=%v)", k.now, at))
	}
	e := &event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return EventRef{e}
}

// After schedules fn to run d from now. Negative delays panic.
func (k *Kernel) After(d Time, fn func()) EventRef {
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue empties, Stop is called, or the event
// limit trips. It returns the number of events fired during this call.
func (k *Kernel) Run() uint64 {
	return k.RunUntil(units.MaxTime)
}

// RunUntil executes events with timestamps <= deadline. The clock is left at
// the last executed event's time (or the deadline if nothing remained).
func (k *Kernel) RunUntil(deadline Time) uint64 {
	k.stopped = false
	var fired uint64
	for len(k.events) > 0 && !k.stopped {
		e := k.events[0]
		if e.at > deadline {
			break
		}
		heap.Pop(&k.events)
		if e.dead {
			continue
		}
		k.now = e.at
		k.fired++
		fired++
		if k.limit > 0 && k.fired > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%v (runaway simulation?)", k.limit, k.now))
		}
		e.fn()
	}
	return fired
}

// Pending reports the number of live events still queued.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.events {
		if !e.dead {
			n++
		}
	}
	return n
}
