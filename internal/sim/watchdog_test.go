package sim

import (
	"strings"
	"testing"
)

// pollFlagFrame models a software stack polling a completion flag: advance,
// pause, check, repeat. If the flag is never set it livelocks — the
// deliberately-stuck scenario the quiescence watchdog must attribute.
type pollFlagFrame struct {
	pc   int
	flag *bool
}

func (f *pollFlagFrame) Step(t *Task) {
	for {
		switch f.pc {
		case 0:
			if *f.flag {
				t.Return()
				return
			}
			t.Advance(100)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			f.pc = 0
		}
	}
}

// callPollFrame calls pollFlagFrame as a sub-frame, so the stuck stack has
// depth 2 and the watchdog names the innermost frame.
type callPollFrame struct {
	pc   int
	flag *bool
}

func (f *callPollFrame) Step(t *Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			t.Call(&pollFlagFrame{flag: f.flag})
			return
		case 1:
			t.Return()
			return
		}
	}
}

// TestWatchdogNamesStuckTask: a deliberately-stuck scenario — one task polls
// a flag nobody sets while another terminates cleanly — must produce a
// stall report naming exactly the blocked task and its pause site (frame
// type and stack depth).
func TestWatchdogNamesStuckTask(t *testing.T) {
	k := NewKernel()
	var never, soon bool
	k.SpawnTask("stuck.poller", &callPollFrame{flag: &never})
	k.SpawnTask("clean.poller", &pollFlagFrame{flag: &soon})
	k.At(500, func() { soon = true })

	k.RunUntil(100_000)

	stuck := k.StuckTasks()
	if len(stuck) != 1 {
		t.Fatalf("StuckTasks = %d tasks, want exactly the poller", len(stuck))
	}
	rep := k.StallReport()
	if rep == "" {
		t.Fatal("empty stall report with a livelocked task")
	}
	t.Logf("report:\n%s", rep)
	if !strings.Contains(rep, "stuck.poller") {
		t.Errorf("report does not name the blocked task:\n%s", rep)
	}
	if !strings.Contains(rep, "*sim.pollFlagFrame") {
		t.Errorf("report does not name the pause-site frame type:\n%s", rep)
	}
	if !strings.Contains(rep, "stack depth 2") {
		t.Errorf("report does not carry the stack depth:\n%s", rep)
	}
	if strings.Contains(rep, "clean.poller") {
		t.Errorf("report names a task that terminated cleanly:\n%s", rep)
	}
}

// TestWatchdogCleanAfterDrain: a fully-drained run reports nothing — the
// watchdog's no-false-positive side.
func TestWatchdogCleanAfterDrain(t *testing.T) {
	k := NewKernel()
	var flag bool
	k.SpawnTask("poller", &pollFlagFrame{flag: &flag})
	k.At(500, func() { flag = true })
	k.Run()
	if rep := k.StallReport(); rep != "" {
		t.Fatalf("stall report after clean drain:\n%s", rep)
	}
	if n := len(k.StuckTasks()); n != 0 {
		t.Fatalf("%d stuck tasks after clean drain", n)
	}
}
