package sim

import (
	"fmt"
)

// procKilled is the panic payload used to unwind a Proc goroutine when the
// kernel shuts down. It is recovered inside the proc wrapper and never
// escapes to user code.
type procKilled struct{ name string }

// Proc is a simulated sequential thread of execution (one per software agent:
// a CPU core running a benchmark, a progress loop, ...). Procs advance
// virtual time with Sleep; between Sleeps their Go code executes atomically
// with respect to the rest of the simulation.
//
// Concurrency model: the kernel and all procs form a single logical thread.
// Control is handed to a proc via its resume channel and handed back via its
// yield channel, so exactly one goroutine is ever running. This keeps all
// simulation state lock-free and every run bit-for-bit deterministic.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	exited chan struct{}
	done   bool
	killed bool
}

// Name reports the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Done reports whether the proc's body has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn starts body as a simulated process at the current virtual time. The
// body begins executing when the kernel reaches the spawn event; it runs
// interleaved with other events, exclusively, until it Sleeps or returns.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		exited: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	go func() {
		defer close(p.exited)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); ok {
					p.done = true
					return // kernel shutdown: exit silently
				}
				panic(r) // real bug: re-panic on the proc goroutine
			}
		}()
		<-p.resume // wait for the start event
		if p.killed {
			panic(procKilled{p.name})
		}
		body(p)
		p.done = true
		p.yield <- struct{}{} // hand control back one final time
	}()
	k.After(0, func() { p.step() })
	return p
}

// step transfers control to the proc and blocks until it yields again. It
// runs in kernel (event) context.
func (p *Proc) step() {
	if p.done || p.killed {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// Sleep suspends the proc for d of virtual time. d must be >= 0; Sleep(0)
// yields to co-timed events (useful to model "the rest of the system catches
// up before the next instruction").
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in proc %q", d, p.name))
	}
	p.k.After(d, func() { p.step() })
	p.yield <- struct{}{} // give control back to the kernel
	<-p.resume            // wait until the wake event fires
	if p.killed {
		panic(procKilled{p.name})
	}
}

// Shutdown terminates all procs that have not finished. It must be called
// outside Run (after the event loop returns); at that point every live proc
// is parked on its resume channel, so waking it causes it to unwind via a
// procKilled panic. Shutdown waits for each goroutine to exit, so no
// goroutines leak across repeated simulation runs in tests and benchmarks.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		p.killed = true
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-p.exited
	}
	k.procs = nil
}
