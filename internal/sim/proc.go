package sim

import (
	"fmt"
)

// procKilled is the panic payload used to unwind a Proc goroutine when the
// kernel shuts down. It is recovered inside the proc wrapper and never
// escapes to user code.
type procKilled struct{ name string }

// Proc is a simulated sequential thread of execution (one per software agent:
// a CPU core running a benchmark, a progress loop, ...). Procs advance
// virtual time with Sleep and Advance; between yields their Go code executes
// atomically with respect to the rest of the simulation.
//
// Concurrency model: the kernel and all procs form a single logical thread.
// Control is handed to a proc via its resume channel and handed back via its
// yield channel, so exactly one goroutine is ever running. This keeps all
// simulation state lock-free and every run bit-for-bit deterministic.
//
// # Batched time advancement
//
// A goroutine handoff is the kernel's most expensive primitive (one pooled
// event plus two channel operations), and the software stacks above the
// kernel advance time in long runs of pure delays — model stages that touch
// nothing but the proc's own state. Advance accumulates such delays in a
// proc-local lazy clock instead of yielding: Now reflects the accumulated
// lag immediately, while the kernel's clock lags behind until the proc
// synchronizes. Sync (or any Sleep) materializes the whole accumulated lag
// as a single kernel event and a single handoff.
//
// The correctness contract: between an Advance and the next Sync the proc
// must not interact with state outside itself — no simulated memory reads or
// writes, no MMIO, no posting of receive credits, nothing an event callback
// could observe or mutate. Call Sync immediately before any such
// interaction; the proc then observes exactly the state it would have seen
// had every Advance been a Sleep, and runs remain bit-for-bit identical.
// Code that never calls Advance needs no Syncs: Sleep folds any pending lag
// and always yields, preserving the original one-event-per-Sleep semantics.
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	yield  chan struct{}
	exited chan struct{}
	// lag is the proc-local lazy clock: virtual time the proc has advanced
	// past the kernel clock without yielding yet.
	lag Time
	// wake is the preallocated resume closure, so the Sleep/Sync hot path
	// schedules events without allocating.
	wake   func()
	done   bool
	killed bool
	// task is the lazily-built blocking Task adapter (see Proc.Task).
	task *Task
}

// Name reports the name the proc was spawned with.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time as observed by this proc: the kernel
// clock plus any not-yet-materialized lag from Advance.
func (p *Proc) Now() Time { return p.k.Now() + p.lag }

// Done reports whether the proc's body has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn starts body as a simulated process at the current virtual time. The
// body begins executing when the kernel reaches the spawn event; it runs
// interleaved with other events, exclusively, until it Sleeps or returns.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		exited: make(chan struct{}),
	}
	p.wake = func() { p.step() }
	k.procs = append(k.procs, p)
	go func() {
		defer close(p.exited)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); ok {
					p.done = true
					return // kernel shutdown: exit silently
				}
				panic(r) // real bug: re-panic on the proc goroutine
			}
		}()
		<-p.resume // wait for the start event
		if p.killed {
			panic(procKilled{p.name})
		}
		body(p)
		p.done = true
		p.yield <- struct{}{} // hand control back one final time
	}()
	k.After(0, p.wake)
	return p
}

// step transfers control to the proc and blocks until it yields again. It
// runs in kernel (event) context.
func (p *Proc) step() {
	if p.done || p.killed {
		return
	}
	p.k.handoffs++
	p.resume <- struct{}{}
	<-p.yield
}

// Sleep suspends the proc for d of virtual time (plus any pending lag from
// earlier Advance calls). d must be >= 0; Sleep(0) yields to co-timed events
// (useful to model "the rest of the system catches up before the next
// instruction").
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in proc %q", d, p.name))
	}
	d += p.lag
	p.lag = 0
	p.park(d)
}

// Advance adds d to the proc's lazy clock without yielding: the delay
// becomes visible in Now immediately and is materialized as part of the next
// Sync or Sleep. Use it for pure delays only — see the batched-advancement
// contract in the type documentation.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v in proc %q", d, p.name))
	}
	p.lag += d
}

// Sync materializes any pending lag as one kernel event and one goroutine
// handoff, bringing the kernel clock up to the proc's local clock so every
// event scheduled in between has fired. A proc must Sync before touching any
// state outside itself. With no pending lag Sync is free: it does not yield.
func (p *Proc) Sync() {
	if p.lag == 0 {
		return
	}
	d := p.lag
	p.lag = 0
	p.park(d)
}

// park schedules the proc's wake event d from now and hands control back to
// the kernel until it fires.
func (p *Proc) park(d Time) {
	p.k.After(d, p.wake)
	p.yield <- struct{}{} // give control back to the kernel
	<-p.resume            // wait until the wake event fires
	if p.killed {
		panic(procKilled{p.name})
	}
}

// Shutdown terminates all procs and continuation tasks that have not
// finished. It must be called outside Run (after the event loop returns); at
// that point every live proc is parked on its resume channel, so waking it
// causes it to unwind via a procKilled panic. Shutdown waits for each
// goroutine to exit, so no goroutines leak across repeated simulation runs
// in tests and benchmarks. Continuation tasks hold no goroutines at all:
// they are cancelled in place (pending resume events dropped).
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		p.killed = true
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-p.exited
	}
	k.procs = nil
	for _, t := range k.tasks {
		if !t.done {
			t.Cancel()
		}
	}
	k.tasks = nil
}
