package sim

import (
	"container/heap"
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"breakband/internal/rng"
	"breakband/internal/units"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("clock = %v, want 30", k.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	// Events scheduled for the same instant fire in scheduling order.
	k := NewKernel()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	if !sort.IntsAreSorted(order) {
		t.Error("same-time events fired out of scheduling order")
	}
}

func TestAfter(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(100, func() {
		at = k.Now()
		k.After(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 150 {
		t.Errorf("nested After landed at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ref := k.At(10, func() { fired = true })
	ref.Cancel()
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling twice or after the run is a no-op.
	ref.Cancel()
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("RunUntil(25) fired %v", fired)
	}
	k.Run()
	if len(fired) != 4 {
		t.Errorf("resumed run fired %v", fired)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.At(10, func() { n++; k.Stop() })
	k.At(20, func() { n++ })
	k.Run()
	if n != 1 {
		t.Errorf("Stop did not halt the loop, n=%d", n)
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.SetEventLimit(10)
	var reschedule func()
	reschedule = func() { k.After(1, reschedule) }
	k.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Error("runaway simulation did not trip the event limit")
		}
	}()
	k.Run()
}

func TestPending(t *testing.T) {
	k := NewKernel()
	ref := k.At(10, func() {})
	k.At(20, func() {})
	if k.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", k.Pending())
	}
	ref.Cancel()
	if k.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", k.Pending())
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("worker", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Sleep(0)
		times = append(times, p.Now())
	})
	k.Run()
	if len(times) != 3 || times[0] != 0 || times[1] != 100 || times[2] != 100 {
		t.Errorf("times = %v", times)
	}
}

func TestProcNegativeSleepPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	k.Run()
	k.Shutdown()
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 5; i++ {
					log = append(log, name)
					p.Sleep(10)
				}
			})
		}
		k.Run()
		k.Shutdown()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("interleaving length changed between runs")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("interleaving diverged at %d: %v vs %v", i, got, first)
				}
			}
		}
	}
}

func TestProcEventInterleaving(t *testing.T) {
	// A proc sleeping across an event sees the event's effects: events and
	// procs share one timeline.
	k := NewKernel()
	value := 0
	k.At(50, func() { value = 42 })
	var seen int
	k.Spawn("reader", func(p *Proc) {
		p.Sleep(60)
		seen = value
	})
	k.Run()
	if seen != 42 {
		t.Errorf("proc observed %d, want 42", seen)
	}
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	// Mixed mode: every kernel shuts down parked goroutine procs AND
	// paused continuation tasks together; neither may leak (procs hold a
	// goroutine each, tasks hold only a pending event).
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		k := NewKernel()
		k.Spawn("sleeper", func(p *Proc) {
			p.Sleep(units.Second) // would park ~forever
		})
		ticks := 0
		task := k.SpawnTask("ticker", &tickFrame{ticks: &ticks})
		k.RunUntil(10) // stop long before the wake event
		k.Shutdown()
		if !task.Done() {
			t.Fatal("paused task not cancelled by Shutdown")
		}
	}
	// Allow the runtime to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestShutdownBeforeStart(t *testing.T) {
	// A proc whose start event never fires must still terminate cleanly.
	k := NewKernel()
	k.Spawn("never", func(p *Proc) {
		t.Error("body of never-started proc ran")
	})
	// Do not run the kernel at all.
	k.Shutdown()
}

func TestProcDone(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("quick", func(p *Proc) { p.Sleep(5) })
	if p.Done() {
		t.Error("proc done before running")
	}
	k.Run()
	if !p.Done() {
		t.Error("proc not done after run")
	}
	if p.Name() != "quick" {
		t.Errorf("name = %q", p.Name())
	}
	k.Shutdown()
}

func TestQuickEventOrderInvariant(t *testing.T) {
	// Property: for any set of delays, execution times are non-decreasing.
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			k.At(Time(d), func() { times = append(times, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// --- event cancellation under pooling ---

func TestCancelAfterFireIsNoop(t *testing.T) {
	k := NewKernel()
	fired := 0
	ref := k.At(10, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The slot is recycled; the stale ref must not touch its new tenant.
	ok := false
	k.At(20, func() { ok = true })
	ref.Cancel()
	if k.Pending() != 1 {
		t.Errorf("stale Cancel changed Pending: %d", k.Pending())
	}
	k.Run()
	if !ok {
		t.Error("stale Cancel killed an unrelated event in the reused slot")
	}
}

func TestCancelTwiceAndPending(t *testing.T) {
	k := NewKernel()
	ref := k.At(10, func() { t.Error("cancelled event fired") })
	k.At(20, func() {})
	if k.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", k.Pending())
	}
	ref.Cancel()
	ref.Cancel() // second cancel: no-op, must not double-decrement
	if k.Pending() != 1 {
		t.Errorf("Pending after double cancel = %d, want 1", k.Pending())
	}
	k.Run()
	if k.Pending() != 0 {
		t.Errorf("Pending after run = %d, want 0", k.Pending())
	}
}

func TestCancelGenerationMismatchOnReusedSlot(t *testing.T) {
	k := NewKernel()
	// Fire one event so its slot returns to the pool.
	stale := k.At(5, func() {})
	k.Run()
	// The next schedule reuses the slot under a bumped generation.
	fired := false
	fresh := k.At(10, func() { fired = true })
	stale.Cancel() // generation mismatch: must be a no-op
	if k.Pending() != 1 {
		t.Fatalf("stale cancel affected Pending: %d", k.Pending())
	}
	k.Run()
	if !fired {
		t.Error("generation-mismatched Cancel killed the slot's new event")
	}
	fresh.Cancel() // after fire: also a no-op
	if k.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", k.Pending())
	}
}

func TestZeroEventRefCancel(t *testing.T) {
	var ref EventRef
	ref.Cancel() // must not panic
}

func TestCancelInsideOwnCallback(t *testing.T) {
	k := NewKernel()
	var self EventRef
	n := 0
	self = k.At(10, func() {
		n++
		self.Cancel() // the slot is already recycled: no-op
	})
	k.At(10, func() { n++ })
	k.Run()
	if n != 2 {
		t.Errorf("fired %d events, want 2", n)
	}
}

// --- fuzz-style schedule/cancel soak against a container/heap reference ---

// refKernel reimplements the event queue exactly as the pre-optimization
// kernel did (container/heap over *event with a dead flag), as an oracle for
// the pooled 4-ary heap.
type refKernel struct {
	now    Time
	seq    uint64
	events refHeap
}

type refEvent struct {
	at   Time
	seq  uint64
	fn   func()
	dead bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (r *refKernel) at(at Time, fn func()) *refEvent {
	e := &refEvent{at: at, seq: r.seq, fn: fn}
	r.seq++
	heap.Push(&r.events, e)
	return e
}
func (r *refKernel) runUntil(deadline Time) {
	for len(r.events) > 0 {
		e := r.events[0]
		if e.at > deadline {
			return
		}
		heap.Pop(&r.events)
		if e.dead {
			continue
		}
		r.now = e.at
		e.fn()
	}
}

// TestSoakAgainstReferenceHeap drives the pooled kernel and the reference
// through an identical randomized schedule/cancel/run workload and demands
// identical firing sequences (event identity and timestamp) plus an always
// consistent O(1) Pending counter.
func TestSoakAgainstReferenceHeap(t *testing.T) {
	rnd := rng.New(42)
	k := NewKernel()
	ref := &refKernel{}

	var gotLog, wantLog [][2]uint64
	type pair struct {
		newRef EventRef
		oldRef *refEvent
		id     uint64
	}
	var live []pair
	var nextID uint64

	for round := 0; round < 200; round++ {
		// Schedule a burst at random offsets (including co-timed events).
		for n := rnd.Intn(20); n > 0; n-- {
			id := nextID
			nextID++
			d := Time(rnd.Intn(50))
			at := k.Now() + d
			live = append(live, pair{
				newRef: k.At(at, func() { gotLog = append(gotLog, [2]uint64{id, uint64(k.Now())}) }),
				oldRef: ref.at(at, func() { wantLog = append(wantLog, [2]uint64{id, uint64(ref.now)}) }),
				id:     id,
			})
		}
		// Cancel a few random refs — some pending, some long fired, so
		// stale handles constantly poke recycled slots.
		for n := rnd.Intn(6); n > 0 && len(live) > 0; n-- {
			i := rnd.Intn(len(live))
			live[i].newRef.Cancel()
			live[i].oldRef.dead = true
		}
		// Run both to the same random deadline.
		deadline := k.Now() + Time(rnd.Intn(40))
		k.RunUntil(deadline)
		ref.runUntil(deadline)

		if len(gotLog) != len(wantLog) {
			t.Fatalf("round %d: fired %d events, reference fired %d", round, len(gotLog), len(wantLog))
		}
		// Cross-check the O(1) live counter against the reference queue.
		wantPending := 0
		for _, e := range ref.events {
			if !e.dead {
				wantPending++
			}
		}
		if k.Pending() != wantPending {
			t.Fatalf("round %d: Pending = %d, reference = %d", round, k.Pending(), wantPending)
		}
	}
	k.Run()
	ref.runUntil(units.MaxTime)
	for i := range wantLog {
		if gotLog[i] != wantLog[i] {
			t.Fatalf("firing sequence diverged at %d: got id=%d t=%d, want id=%d t=%d",
				i, gotLog[i][0], gotLog[i][1], wantLog[i][0], wantLog[i][1])
		}
	}
	if len(gotLog) != len(wantLog) {
		t.Fatalf("total fired %d vs reference %d", len(gotLog), len(wantLog))
	}
}

// --- batched time advancement ---

func TestAdvanceIsLazy(t *testing.T) {
	k := NewKernel()
	value := 0
	k.At(50, func() { value = 42 })
	var lazySaw, syncedSaw int
	var procNow, kernelNow Time
	k.Spawn("lazy", func(p *Proc) {
		p.Advance(100)
		procNow, kernelNow = p.Now(), k.Now()
		lazySaw = value // no Sync yet: the t=50 event has not fired
		p.Sync()
		syncedSaw = value
	})
	k.Run()
	if procNow != 100 {
		t.Errorf("proc Now = %v, want 100", procNow)
	}
	if kernelNow != 0 {
		t.Errorf("kernel Now during lazy span = %v, want 0", kernelNow)
	}
	if lazySaw != 0 {
		t.Errorf("lazy read saw %d; Advance must not run co-pending events", lazySaw)
	}
	if syncedSaw != 42 {
		t.Errorf("post-Sync read saw %d, want 42", syncedSaw)
	}
	if k.Now() != 100 {
		t.Errorf("kernel clock = %v after run, want 100", k.Now())
	}
}

func TestSleepFoldsPendingLag(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("fold", func(p *Proc) {
		p.Advance(30)
		p.Sleep(20) // materializes 30+20 as one event
		woke = p.Now()
	})
	fired := k.Run()
	if woke != 50 {
		t.Errorf("woke at %v, want 50", woke)
	}
	// Spawn start + one combined wake: the two advances cost one event.
	if fired != 2 {
		t.Errorf("fired %d events, want 2", fired)
	}
}

func TestSyncWithoutLagDoesNotYield(t *testing.T) {
	k := NewKernel()
	k.Spawn("noop", func(p *Proc) {
		before := k.Fired()
		p.Sync()
		if k.Fired() != before {
			t.Error("Sync with zero lag scheduled an event")
		}
	})
	k.Run()
}

func TestSleepZeroYieldsToCoTimedEvents(t *testing.T) {
	k := NewKernel()
	seen := 0
	k.Spawn("z", func(p *Proc) {
		p.Advance(10)
		// The event below lands at t=10 with an earlier sequence than the
		// wake Sleep(0) schedules, so it must fire during the yield.
		p.Sleep(0)
		seen = seen * 10
	})
	k.At(10, func() { seen += 3 })
	k.Run()
	if seen != 30 {
		t.Errorf("seen = %d, want 30 (event before resumed proc)", seen)
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative advance did not panic")
			}
		}()
		p.Advance(-1)
	})
	k.Run()
	k.Shutdown()
}

func TestAfterArg(t *testing.T) {
	k := NewKernel()
	type payload struct{ v int }
	arg := &payload{v: 7}
	var got *payload
	var at Time
	fn := func(a any) {
		got = a.(*payload)
		at = k.Now()
	}
	k.AfterArg(5, fn, arg)
	k.Run()
	if got != arg || at != 5 {
		t.Errorf("AfterArg fired with %v at %v, want %v at 5", got, at, arg)
	}
}

func TestAfterArgCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ref := k.AfterArg(5, func(any) { fired = true }, nil)
	ref.Cancel()
	k.Run()
	if fired {
		t.Error("cancelled AfterArg event fired")
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d after cancel", k.Pending())
	}
}

func TestAfterArgInterleavesWithAfter(t *testing.T) {
	// Arg-carrying and plain events share the pool and the (at, seq)
	// order; a recycled slot must not leak one form's callback into the
	// other.
	k := NewKernel()
	var order []int
	one, two := 1, 2
	k.After(1, func() { order = append(order, 0) })
	k.AfterArg(1, func(a any) { order = append(order, *a.(*int)) }, &one)
	k.Run()
	k.After(1, func() { order = append(order, 3) }) // reuses the arg slot
	k.AfterArg(1, func(a any) { order = append(order, *a.(*int)) }, &two)
	k.Run()
	want := []int{0, 1, 3, 2}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
