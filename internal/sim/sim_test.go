package sim

import (
	"runtime"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"breakband/internal/units"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("clock = %v, want 30", k.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	// Events scheduled for the same instant fire in scheduling order.
	k := NewKernel()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	if !sort.IntsAreSorted(order) {
		t.Error("same-time events fired out of scheduling order")
	}
}

func TestAfter(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(100, func() {
		at = k.Now()
		k.After(50, func() { at = k.Now() })
	})
	k.Run()
	if at != 150 {
		t.Errorf("nested After landed at %v, want 150", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	ref := k.At(10, func() { fired = true })
	ref.Cancel()
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling twice or after the run is a no-op.
	ref.Cancel()
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(25)
	if len(fired) != 2 {
		t.Errorf("RunUntil(25) fired %v", fired)
	}
	k.Run()
	if len(fired) != 4 {
		t.Errorf("resumed run fired %v", fired)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	n := 0
	k.At(10, func() { n++; k.Stop() })
	k.At(20, func() { n++ })
	k.Run()
	if n != 1 {
		t.Errorf("Stop did not halt the loop, n=%d", n)
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.SetEventLimit(10)
	var reschedule func()
	reschedule = func() { k.After(1, reschedule) }
	k.After(1, reschedule)
	defer func() {
		if recover() == nil {
			t.Error("runaway simulation did not trip the event limit")
		}
	}()
	k.Run()
}

func TestPending(t *testing.T) {
	k := NewKernel()
	ref := k.At(10, func() {})
	k.At(20, func() {})
	if k.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", k.Pending())
	}
	ref.Cancel()
	if k.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", k.Pending())
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var times []Time
	k.Spawn("worker", func(p *Proc) {
		times = append(times, p.Now())
		p.Sleep(100)
		times = append(times, p.Now())
		p.Sleep(0)
		times = append(times, p.Now())
	})
	k.Run()
	if len(times) != 3 || times[0] != 0 || times[1] != 100 || times[2] != 100 {
		t.Errorf("times = %v", times)
	}
}

func TestProcNegativeSleepPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	k.Run()
	k.Shutdown()
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 5; i++ {
					log = append(log, name)
					p.Sleep(10)
				}
			})
		}
		k.Run()
		k.Shutdown()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("interleaving length changed between runs")
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("interleaving diverged at %d: %v vs %v", i, got, first)
				}
			}
		}
	}
}

func TestProcEventInterleaving(t *testing.T) {
	// A proc sleeping across an event sees the event's effects: events and
	// procs share one timeline.
	k := NewKernel()
	value := 0
	k.At(50, func() { value = 42 })
	var seen int
	k.Spawn("reader", func(p *Proc) {
		p.Sleep(60)
		seen = value
	})
	k.Run()
	if seen != 42 {
		t.Errorf("proc observed %d, want 42", seen)
	}
}

func TestShutdownReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		k := NewKernel()
		k.Spawn("sleeper", func(p *Proc) {
			p.Sleep(units.Second) // would park ~forever
		})
		k.RunUntil(10) // stop long before the wake event
		k.Shutdown()
	}
	// Allow the runtime to reap exited goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestShutdownBeforeStart(t *testing.T) {
	// A proc whose start event never fires must still terminate cleanly.
	k := NewKernel()
	k.Spawn("never", func(p *Proc) {
		t.Error("body of never-started proc ran")
	})
	// Do not run the kernel at all.
	k.Shutdown()
}

func TestProcDone(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("quick", func(p *Proc) { p.Sleep(5) })
	if p.Done() {
		t.Error("proc done before running")
	}
	k.Run()
	if !p.Done() {
		t.Error("proc not done after run")
	}
	if p.Name() != "quick" {
		t.Errorf("name = %q", p.Name())
	}
	k.Shutdown()
}

func TestQuickEventOrderInvariant(t *testing.T) {
	// Property: for any set of delays, execution times are non-decreasing.
	f := func(delays []uint16) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			k.At(Time(d), func() { times = append(times, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
