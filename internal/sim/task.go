package sim

import "fmt"

// Ctx is the minimal execution context shared by goroutine Procs and
// run-to-completion Tasks: advancing the local lazy clock and reading it.
// Pure-delay helpers that never synchronize with the kernel (the virtual
// timer, the profiler) accept a Ctx so both execution styles drive them.
type Ctx interface {
	Advance(d Time)
	Now() Time
}

// Frame is one resumable activation record of a continuation task. Step is
// re-entered every time the task resumes with this frame on top of the
// stack; the frame keeps its own program counter and locals across pauses.
//
// The canonical shape is a loop around a pc switch:
//
//	func (f *fooFrame) Step(t *sim.Task) {
//		for {
//			switch f.pc {
//			case 0:
//				t.Advance(cost)
//				f.pc = 1
//				if t.Pause() {
//					return // resumes at case 1 when the lag event fires
//				}
//			case 1:
//				touchSharedState()
//				t.Return()
//				return
//			}
//		}
//	}
//
// Step must leave via return immediately after Pause reports true, after
// Call (pushing a sub-frame), or after Return (popping itself). Pause with
// no pending lag reports false and the loop simply continues inline —
// exactly the "Sync with zero lag is free" semantics of the goroutine path.
type Frame interface {
	Step(t *Task)
}

// Task is a run-to-completion simulated thread: the continuation-style
// replacement for a goroutine Proc on the hot software stacks. A task owns a
// stack of Frames and executes them inside kernel event context; where a
// Proc would park (Sleep/Sync), a task schedules its own resume through the
// pooled AtArg/AfterArg machinery and returns to the event loop. No
// goroutine, no channel handoff: suspending and resuming a task costs
// exactly one pooled kernel event.
//
// # Equivalence with Procs
//
// A task advances time with the same batched lazy clock as a Proc (Advance
// accumulates lag; Pause materializes it as one kernel event scheduled at
// now+lag). Because each former Proc.Sync call site maps to one Pause call
// site, a converted stack schedules the same events at the same times in
// the same seq order as its goroutine twin — runs are bit-for-bit
// identical. TestTaskProcTwin in this package soaks that property.
//
// # Blocking adapter
//
// A Task obtained from Proc.Task is a blocking adapter: it executes the
// same Frames synchronously on the proc's goroutine, translating Advance to
// Proc.Advance and Pause to Proc.Sync. Cold-path code (the measurement
// campaign, tests) keeps its direct goroutine style while calling into the
// frame-based hot stacks; both styles run one shared implementation.
//
// Like Procs, tasks never run concurrently with each other or the kernel:
// at any instant exactly one frame Step (or one proc body) is executing.
type Task struct {
	k    *Kernel
	p    *Proc // non-nil: blocking adapter bound to a goroutine proc
	name string
	// lag is the task-local lazy clock (continuation mode only; the
	// blocking adapter delegates to the proc's lag).
	lag       Time
	stack     []Frame
	paused    bool
	done      bool
	cancelled bool
	// pending is the scheduled resume event while paused (for Cancel).
	pending EventRef
}

// taskStep is the shared continuation entry point: the task pointer rides in
// the pooled event slot's arg word, so scheduling a resume allocates
// nothing.
func taskStep(a any) { a.(*Task).step() }

// SpawnTask starts a continuation task with root as its outermost frame. The
// first Step runs when the kernel reaches the spawn event, exactly like a
// Proc spawn; the task completes when its frame stack empties.
func (k *Kernel) SpawnTask(name string, root Frame) *Task {
	t := &Task{k: k, name: name}
	t.stack = append(make([]Frame, 0, 8), root)
	k.tasks = append(k.tasks, t)
	k.AfterArg(0, taskStep, t)
	return t
}

// Task returns the blocking adapter bound to this proc, creating it on first
// use. Frame-based APIs called through it run synchronously on the proc's
// goroutine with identical event scheduling (Pause becomes Proc.Sync).
func (p *Proc) Task() *Task {
	if p.task == nil {
		p.task = &Task{k: p.k, p: p, name: p.name}
	}
	return p.task
}

// step runs frames until the task pauses or its stack empties. It executes
// in kernel (event) context.
func (t *Task) step() {
	if t.cancelled {
		return
	}
	t.paused = false
	for !t.paused && len(t.stack) > 0 {
		t.stack[len(t.stack)-1].Step(t)
	}
	if len(t.stack) == 0 {
		t.done = true
	}
}

// Name reports the name the task was spawned with.
func (t *Task) Name() string { return t.name }

// StallSite describes where a live task currently sits: its name, the type
// of the frame on top of its stack (the pause site — frame types are
// layer-specific, so %T names the blocked layer directly), and the stack
// depth. The kernel's StallReport renders one StallSite per stuck task.
func (t *Task) StallSite() string {
	if len(t.stack) == 0 {
		return fmt.Sprintf("%s: empty frame stack", t.name)
	}
	return fmt.Sprintf("%s: paused in %T (stack depth %d)", t.name, t.stack[len(t.stack)-1], len(t.stack))
}

// Kernel returns the owning kernel.
func (t *Task) Kernel() *Kernel { return t.k }

// Blocking reports whether this task is a Proc-bound blocking adapter.
func (t *Task) Blocking() bool { return t.p != nil }

// Done reports whether the task's frame stack has emptied.
func (t *Task) Done() bool { return t.done }

// Now reports current virtual time as observed by this task: the kernel
// clock plus any not-yet-materialized lag.
func (t *Task) Now() Time {
	if t.p != nil {
		return t.p.Now()
	}
	return t.k.now + t.lag
}

// Advance adds d to the task's lazy clock without suspending; the batched
// time-advancement contract of Proc.Advance applies unchanged (pure delays
// only between here and the next Pause).
func (t *Task) Advance(d Time) {
	if t.p != nil {
		t.p.Advance(d)
		return
	}
	if d < 0 {
		panic(fmt.Sprintf("sim: negative advance %v in task %q", d, t.name))
	}
	t.lag += d
}

// Pause materializes any pending lag as one kernel event and suspends the
// task until it fires, bringing the kernel clock up to the task's local
// clock — the continuation replacement for Proc.Sync, and like Sync it is
// free with no pending lag. It reports whether the task actually suspended:
// the caller's Step must return immediately when Pause reports true, and
// simply continue when it reports false. On a blocking adapter Pause
// performs Proc.Sync and always reports false (the caller just ran it
// synchronously).
func (t *Task) Pause() bool {
	if t.p != nil {
		t.p.Sync()
		return false
	}
	if t.lag == 0 {
		return false
	}
	d := t.lag
	t.lag = 0
	t.paused = true
	t.pending = t.k.AfterArg(d, taskStep, t)
	return true
}

// BlockingOnly panics unless t is a blocking adapter. The synchronous
// convenience wrappers on the software stacks (which return results
// directly) guard themselves with it: a continuation task must use the
// Start*/Last* forms, because a wrapper's result is not ready until the
// pushed frame has run.
func (t *Task) BlockingOnly(api string) {
	if t.p == nil {
		panic("sim: " + api + " called on a continuation task; use the Start form")
	}
}

// Call pushes f as a sub-frame; it begins executing before the caller's
// Step is re-entered, and the caller resumes (at its updated pc) once f
// Returns. Set the pc past the call site before calling, then return from
// Step. On a blocking adapter Call drives f synchronously to completion
// before returning, so the caller may also simply fall through.
func (t *Task) Call(f Frame) {
	t.stack = append(t.stack, f)
	if t.p == nil {
		return
	}
	base := len(t.stack) - 1
	for len(t.stack) > base {
		t.stack[len(t.stack)-1].Step(t)
	}
}

// Return pops the current frame: the sub-frame's way of completing back to
// its caller (or, for the root frame, of finishing the task). The frame's
// Step must return immediately afterwards. Results travel through fields on
// the frame, which the caller owns.
func (t *Task) Return() {
	t.stack = t.stack[:len(t.stack)-1]
}

// Cancel terminates a paused continuation task mid-chain: its scheduled
// resume event is cancelled and no further frames run. Cancelling a
// finished task is a no-op; blocking adapters cannot be cancelled (their
// lifetime is the proc's).
func (t *Task) Cancel() {
	if t.p != nil {
		panic(fmt.Sprintf("sim: cancel of blocking task %q (shut the proc down instead)", t.name))
	}
	if t.done || t.cancelled {
		return
	}
	t.cancelled = true
	t.done = true
	t.pending.Cancel()
	t.stack = t.stack[:0]
}
