package sim_test

// The benchmark bodies live in internal/simbench so cmd/bbbench can run the
// exact same code via testing.Benchmark and record BENCH_kernel.json; these
// wrappers put them under `go test -bench . ./internal/sim/...`, which CI
// smokes with -benchtime=1x so they cannot rot.

import (
	"testing"

	"breakband/internal/simbench"
)

func BenchmarkSchedule(b *testing.B)            { simbench.Schedule(b) }
func BenchmarkSleepHandoff(b *testing.B)        { simbench.SleepHandoff(b) }
func BenchmarkHandoffFreeStep(b *testing.B)     { simbench.HandoffFreeStep(b) }
func BenchmarkHandoffFreeCall(b *testing.B)     { simbench.HandoffFreeCall(b) }
func BenchmarkPutBwEndToEnd(b *testing.B)       { simbench.PutBwEndToEnd(b) }
func BenchmarkWindowedPutBw(b *testing.B)       { simbench.WindowedPutBw(b) }
func BenchmarkIncastPutBw(b *testing.B)         { simbench.IncastPutBw(b) }
func BenchmarkOversubscribedPutBw(b *testing.B) { simbench.OversubscribedPutBw(b) }
func BenchmarkWorkloadInject(b *testing.B)      { simbench.WorkloadInject(b) }
