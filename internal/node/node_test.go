package node

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/topo"
)

// TestNewSystemMultiNode: N-node systems compile their configured topology
// and wire every node onto it.
func TestNewSystemMultiNode(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.FatTree}
	sys := NewSystem(cfg, 8)
	defer sys.Shutdown()
	if len(sys.Nodes) != 8 {
		t.Fatalf("nodes = %d", len(sys.Nodes))
	}
	fab := sys.Topo()
	if got := len(fab.Switches()); got != 6 {
		t.Errorf("fat-tree of 8 hosts compiled %d switches, want 6", got)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("fresh system has %d live frames", fab.InUseFrames())
	}
}

func TestNewSystem(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := NewSystem(cfg, 2)
	defer sys.Shutdown()
	if len(sys.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(sys.Nodes))
	}
	for i, n := range sys.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Mem == nil || n.Link == nil || n.RC == nil || n.NIC == nil ||
			n.Tap == nil || n.Timer == nil || n.Prof == nil {
			t.Errorf("node %d incompletely wired", i)
		}
		if n.NIC.ID() != i {
			t.Errorf("NIC id = %d", n.NIC.ID())
		}
		if n.Rand != nil {
			t.Error("deterministic mode should have nil RNG")
		}
	}
}

func TestNoisyNodesGetDistinctStreams(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOn, 5, true)
	sys := NewSystem(cfg, 2)
	defer sys.Shutdown()
	r0, r1 := sys.Nodes[0].Rand, sys.Nodes[1].Rand
	if r0 == nil || r1 == nil {
		t.Fatal("noisy mode should provide generators")
	}
	if r0.Uint64() == r1.Uint64() {
		t.Error("node streams identical")
	}
}

func TestSystemRequiresTwoNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("1-node system did not panic")
		}
	}()
	NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 1)
}

func TestRunAndShutdownIdempotent(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := NewSystem(cfg, 2)
	sys.Run()
	sys.Shutdown()
	sys.Shutdown() // second shutdown is harmless
}
