// Package node composes the hardware substrates into complete nodes and
// N-node systems: per node a host memory, a PCIe link with its Root
// Complex and NIC endpoint, a passive PCIe analyzer tap (the paper's
// Figure 3 places one before node 1's NIC; we give every node one), a
// virtual timer and a profiler; plus the shared network fabric — a
// compiled internal/topo topology selected by Config.Topology (two nodes
// default to the paper's calibrated two-endpoint path, bit for bit).
package node

import (
	"fmt"

	"breakband/internal/analyzer"
	"breakband/internal/config"
	"breakband/internal/fabric"
	"breakband/internal/faults"
	"breakband/internal/memsim"
	"breakband/internal/nic"
	"breakband/internal/pcie"
	"breakband/internal/profile"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/topo"
	"breakband/internal/trace"
	"breakband/internal/vtimer"
)

// Node is one server: CPU-side facilities (timer, profiler, RNG stream for
// software costs), host memory, and the I/O subsystem.
type Node struct {
	ID    int
	Mem   *memsim.Memory
	Link  *pcie.Link
	RC    *pcie.RootComplex
	NIC   *nic.NIC
	Tap   *analyzer.Analyzer
	Timer *vtimer.Timer
	Prof  *profile.Profiler
	Rand  *rng.Rand // software-cost noise stream (nil when noise is off)
}

// System is a set of nodes on a common fabric, driven by one simulation
// kernel.
type System struct {
	K   *sim.Kernel
	Cfg *config.Config
	// Net is the delivery fabric — a compiled topo.Fabric (type-assert to
	// *topo.Fabric for port/queue statistics).
	Net   fabric.Deliverer
	Nodes []*Node
	// Faults is the compiled fault injector, nil unless cfg.Faults enables
	// anything (per-link counters for reports live here).
	Faults *faults.Injector
}

// NewSystem builds n nodes per cfg, wired through the topology
// cfg.Topology compiles to. Node 0 plays the paper's "node 1" initiator
// role in the two-node benchmarks (and the incast receiver in the
// contention scenarios).
func NewSystem(cfg *config.Config, n int) *System {
	if n < 2 {
		panic("node: a system needs at least two nodes")
	}
	k := sim.NewKernel()
	if cfg.TraceCapacity > 0 {
		// The tracer must be on the kernel before any layer is built:
		// fabric, NICs and links capture the pointer at construction.
		k.SetTracer(trace.New(cfg.TraceCapacity))
	}
	sys := &System{K: k, Cfg: cfg, Net: topo.NewFabric(k, cfg.Fabric, cfg.Topology, n)}
	if cfg.Faults.Enabled() {
		inj, err := faults.NewInjector(cfg.Seed, cfg.Faults)
		if err != nil {
			panic(fmt.Sprintf("node: %v", err))
		}
		sys.Faults = inj
		sys.Topo().InjectFaults(inj)
	}
	for i := 0; i < n; i++ {
		sys.Nodes = append(sys.Nodes, newNode(k, sys.Net, cfg, i))
	}
	if sys.Faults != nil {
		sys.scheduleEndpointFaults()
	}
	return sys
}

// scheduleEndpointFaults arms the configured endpoint faults as kernel
// events: NIC crashes (with optional restart) and host pause windows on the
// node's PCIe upstream issue path. Fault schedules naming nonexistent nodes
// panic at build time, like unknown ports in topo.InjectFaults. The
// injector's per-node records count each fault as it actually fires.
func (s *System) scheduleEndpointFaults() {
	cfg := s.Faults.Config()
	for _, c := range cfg.Crashes {
		if c.Node >= len(s.Nodes) {
			panic(fmt.Sprintf("node: crash scheduled on unknown node %d (%d nodes)", c.Node, len(s.Nodes)))
		}
		nd, rec := s.Nodes[c.Node], s.Faults.Node(c.Node)
		s.K.At(c.At, func() {
			rec.Crashes++
			nd.NIC.Crash()
		})
		if c.RestartAt != 0 {
			s.K.At(c.RestartAt, func() { nd.NIC.Restart() })
		}
	}
	for _, p := range cfg.Pauses {
		if p.Node >= len(s.Nodes) {
			panic(fmt.Sprintf("node: pause scheduled on unknown node %d (%d nodes)", p.Node, len(s.Nodes)))
		}
		nd, rec := s.Nodes[p.Node], s.Faults.Node(p.Node)
		s.K.At(p.At, func() {
			rec.Pauses++
			nd.Link.PauseUp()
		})
		s.K.At(p.Resume, func() { nd.Link.ResumeUp() })
	}
}

// Topo reports the system's compiled topology fabric.
func (s *System) Topo() *topo.Fabric { return s.Net.(*topo.Fabric) }

// Tracer reports the system's event tracer (nil when Config.TraceCapacity
// is zero).
func (s *System) Tracer() *trace.Tracer { return s.K.Tracer() }

func newNode(k *sim.Kernel, net fabric.Deliverer, cfg *config.Config, id int) *Node {
	mem := memsim.New(cfg.MemBytes)
	link := pcie.NewLink(k, cfg.Link)
	link.SetTraceNode(id)
	rc := pcie.NewRootComplex(k, mem, link, cfg.RC)
	nc := cfg.NIC
	if cfg.NICRxBudget > 0 {
		// The system-level knob wins over a per-NIC setting only when
		// set, so configs that tune cfg.NIC directly keep working.
		nc.RxBudget = cfg.NICRxBudget
	}
	if cfg.NICRxBudgetPerQP > 0 {
		nc.RxBudgetPerQP = cfg.NICRxBudgetPerQP
	}
	if cfg.Faults.Enabled() && nc.AckTimeout == 0 {
		// A lossy fabric needs the timeout recovery armed; a config that
		// sets NIC.AckTimeout explicitly keeps its value. Without faults
		// the timer stays disabled and the NIC is byte-identical with the
		// pre-reliability model.
		nc.AckTimeout = nic.DefaultAckTimeout
	}
	dev := nic.New(k, id, mem, link, net, nc)
	tap := analyzer.New(fmt.Sprintf("node%d", id))
	link.AddTap(tap)
	r := cfg.Rand(fmt.Sprintf("node%d", id))
	tmr := vtimer.New(k, cfg.Prof.TimerHz, cfg.Prof.Isb, cfg.Prof.Read, r)
	return &Node{
		ID:    id,
		Mem:   mem,
		Link:  link,
		RC:    rc,
		NIC:   dev,
		Tap:   tap,
		Timer: tmr,
		Prof:  profile.New(tmr),
		Rand:  r,
	}
}

// Run executes the simulation until the event queue drains.
func (s *System) Run() uint64 { return s.K.Run() }

// Shutdown terminates any leftover procs. Always call it when a simulation
// is finished, especially from tests that build many systems.
func (s *System) Shutdown() { s.K.Shutdown() }
