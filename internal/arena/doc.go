// Package arena provides the pooled, generation-checked object arena the
// device models share: value-typed slots stored in fixed-size chunks (so
// pointers stay stable while the arena grows), a free list for recycling,
// and stale-handle detection via per-slot generations.
//
// A pooled type embeds Slot and is allocated from an Arena bound to it with
// New. The zero Slot marks a directly-constructed (unpooled) object:
// Release on it is a no-op and handles to it resolve to nil, so tests may
// build pooled types with plain literals.
//
// # Slot and generation invariants
//
// Every slot obeys these invariants, and the hot paths rely on them:
//
//   - Stable addresses: slots live in fixed-size chunks (Chunk entries);
//     growing the arena appends chunks and never moves existing slots, so
//     a *T obtained from Alloc stays valid for the object's whole
//     lifetime — pointers may ride in event args and FIFO queues freely.
//   - Single ownership: Alloc marks a slot live; exactly one Release
//     returns it. A second Release panics (double-free is a bug, not a
//     condition to tolerate). Unpooled objects (zero Slot) are exempt.
//   - Generations: Release increments the slot's generation. A Ref
//     captures {arena, slot id, generation} and Get resolves to nil once
//     the object was released — even if the slot has since been recycled
//     for a new object. Holders that outlive their borrow window must
//     hold a Ref, not a *T.
//   - Reset-on-alloc, retain-capacity: Alloc runs the arena's reset
//     function before handing a slot out. Reset truncates reusable
//     buffers ([:0]) instead of nilling them, which is what makes
//     steady-state traffic allocation-free: payload capacity survives
//     recycling.
//   - Accounting: InUse = allocated − released. Pool-owning components
//     surface it (Link.InUsePackets, Network/Fabric.InUseFrames) and
//     tests assert it returns to zero — a leaked borrow is a test
//     failure, not silent pool growth.
//   - Release hooks: SetOnRelease runs just before a slot recycles, with
//     the object's fields still intact. Delivery layers use it to tie
//     resource accounting to the ownership hand-back — internal/topo
//     returns a frame's final-hop link credit from it, which is the
//     mechanism that turns the NIC's deferred frame release into fabric
//     backpressure (see ARCHITECTURE.md).
//
// Grow is the shared reusable-buffer idiom: resize to n bytes reusing
// capacity, contents undefined — for read-into fills like DMA completions.
package arena
