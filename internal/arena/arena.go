package arena

// Chunk is the slot count of one arena chunk. Chunked growth keeps slot
// pointers stable across arena expansion.
const Chunk = 64

// recycler is the arena as seen from a Slot, avoiding a generic
// back-reference inside the non-generic Slot.
type recycler interface {
	recycle(id int32)
}

// Slot is the per-object bookkeeping embedded in pooled value types.
type Slot struct {
	id    int32
	gen   uint32
	live  bool
	owner recycler
}

// Release returns the object to its arena. The owner must call it exactly
// once; a second Release panics, and Release on an unpooled object is a
// no-op.
func (s *Slot) Release() {
	if s.owner == nil {
		return
	}
	if !s.live {
		panic("arena: object released twice")
	}
	s.live = false
	s.gen++
	s.owner.recycle(s.id)
}

// Arena is a pool of value-typed T slots. Construct with New.
type Arena[T any] struct {
	chunks    [][]T
	used      int32
	free      []int32
	slot      func(*T) *Slot
	reset     func(*T)
	onRelease func(*T)
}

// SetOnRelease registers fn to run when an object is released, just before
// its slot recycles (the object's fields are still intact). Delivery
// layers use it to tie resource accounting — e.g. link buffer credits —
// to the borrow contract's ownership hand-back.
func (a *Arena[T]) SetOnRelease(fn func(*T)) { a.onRelease = fn }

// New builds an arena for T. slot returns the embedded Slot of an object;
// reset clears an object's payload fields before reuse (reusable buffer
// capacity should be retained by truncating, not nilling).
func New[T any](slot func(*T) *Slot, reset func(*T)) *Arena[T] {
	return &Arena[T]{slot: slot, reset: reset}
}

func (a *Arena[T]) get(id int32) *T {
	return &a.chunks[id/Chunk][id%Chunk]
}

func (a *Arena[T]) recycle(id int32) {
	if a.onRelease != nil {
		a.onRelease(a.get(id))
	}
	a.free = append(a.free, id)
}

// Alloc returns a reset object, reusing a released slot when available.
func (a *Arena[T]) Alloc() *T {
	var t *T
	var s *Slot
	if n := len(a.free); n > 0 {
		t = a.get(a.free[n-1])
		a.free = a.free[:n-1]
		s = a.slot(t)
	} else {
		if int(a.used) == len(a.chunks)*Chunk {
			a.chunks = append(a.chunks, make([]T, Chunk))
		}
		id := a.used
		a.used++
		t = a.get(id)
		s = a.slot(t)
		s.id = id
		s.owner = a
	}
	a.reset(t)
	s.live = true
	return t
}

// InUse reports the number of live slots: allocated and not yet released.
// Pool-owning components expose it so tests can assert that every borrowed
// object was returned (a leak check that turns silent pool growth into a
// test failure).
func (a *Arena[T]) InUse() int { return int(a.used) - len(a.free) }

// Grow returns buf resized to n bytes (previous contents undefined),
// reusing its capacity when possible — the reusable-buffer idiom the pooled
// types share (TLP payloads, receive staging, WC payload slots).
func Grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// Ref is a generation-checked handle to a pooled object: it records the
// slot generation at handle time, so it resolves to nil once the object has
// been released (or released and recycled). The zero Ref resolves to nil.
type Ref[T any] struct {
	a   *Arena[T]
	id  int32
	gen uint32
}

// MakeRef returns a handle to t, whose embedded Slot is s. Unpooled objects
// yield the zero Ref.
func MakeRef[T any](t *T, s *Slot) Ref[T] {
	a, ok := s.owner.(*Arena[T])
	if !ok {
		return Ref[T]{}
	}
	return Ref[T]{a: a, id: s.id, gen: s.gen}
}

// Get resolves the handle, or returns nil if it is stale.
func (r Ref[T]) Get() *T {
	if r.a == nil {
		return nil
	}
	t := r.a.get(r.id)
	s := r.a.slot(t)
	if !s.live || s.gen != r.gen {
		return nil
	}
	return t
}
