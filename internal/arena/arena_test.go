package arena

import "testing"

type thing struct {
	v   int
	buf []byte
	Slot
}

func newThingArena() *Arena[thing] {
	return New(
		func(t *thing) *Slot { return &t.Slot },
		func(t *thing) {
			t.v = 0
			t.buf = t.buf[:0]
		})
}

func TestAllocResetAndReuse(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	x.v = 7
	x.buf = append(x.buf, 1, 2, 3)
	x.Release()
	y := a.Alloc()
	if y != x {
		t.Error("released slot not reused")
	}
	if y.v != 0 || len(y.buf) != 0 {
		t.Errorf("recycled object not reset: %+v", y)
	}
	if cap(y.buf) < 3 {
		t.Error("reset dropped the reusable buffer capacity")
	}
}

func TestRefGenerationCheck(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	ref := MakeRef(x, &x.Slot)
	if ref.Get() != x {
		t.Fatal("fresh ref does not resolve")
	}
	x.Release()
	if ref.Get() != nil {
		t.Error("stale ref resolved after release")
	}
	y := a.Alloc() // recycles x's slot under a new generation
	if ref.Get() != nil {
		t.Error("old-generation ref resolved against the recycled slot")
	}
	if MakeRef(y, &y.Slot).Get() != y {
		t.Error("recycled slot's new ref does not resolve")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	x.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	x.Release()
}

func TestUnpooledObjectIsInert(t *testing.T) {
	x := &thing{v: 1}
	x.Release() // no-op
	if MakeRef(x, &x.Slot).Get() != nil {
		t.Error("unpooled ref should resolve to nil")
	}
}

func TestPointerStabilityAcrossGrowth(t *testing.T) {
	a := newThingArena()
	first := a.Alloc()
	first.v = 42
	// Force several chunk growths.
	for i := 0; i < Chunk*4; i++ {
		a.Alloc()
	}
	if first.v != 42 || a.get(0) != first {
		t.Error("slot pointer invalidated by arena growth")
	}
}

func TestAllocIsAllocFreeOnReuse(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	x.Release()
	if allocs := testing.AllocsPerRun(200, func() {
		y := a.Alloc()
		y.Release()
	}); allocs != 0 {
		t.Errorf("steady-state alloc/release allocates %.2f per op, want 0", allocs)
	}
}

func TestInUse(t *testing.T) {
	a := newThingArena()
	if a.InUse() != 0 {
		t.Fatalf("fresh arena reports %d in use", a.InUse())
	}
	x, y := a.Alloc(), a.Alloc()
	if a.InUse() != 2 {
		t.Errorf("2 live slots, InUse() = %d", a.InUse())
	}
	x.Release()
	if a.InUse() != 1 {
		t.Errorf("1 live slot, InUse() = %d", a.InUse())
	}
	y.Release()
	if a.InUse() != 0 {
		t.Errorf("all released, InUse() = %d", a.InUse())
	}
	// Reuse keeps the count exact.
	a.Alloc()
	if a.InUse() != 1 {
		t.Errorf("after reuse, InUse() = %d", a.InUse())
	}
}

func TestOnReleaseHook(t *testing.T) {
	a := newThingArena()
	var seen []*thing
	a.SetOnRelease(func(x *thing) { seen = append(seen, x) })
	x := a.Alloc()
	x.v = 7
	if len(seen) != 0 {
		t.Fatal("hook ran before release")
	}
	x.Release()
	if len(seen) != 1 || seen[0] != x {
		t.Fatalf("hook saw %v, want the released object", seen)
	}
	if seen[0].v != 7 {
		t.Error("hook should observe the object's fields before reset")
	}
	// Unpooled objects never enter the arena, so the hook stays silent.
	(&thing{}).Release()
	if len(seen) != 1 {
		t.Error("hook ran for an unpooled object")
	}
}
