package arena

import "testing"

type thing struct {
	v   int
	buf []byte
	Slot
}

func newThingArena() *Arena[thing] {
	return New(
		func(t *thing) *Slot { return &t.Slot },
		func(t *thing) {
			t.v = 0
			t.buf = t.buf[:0]
		})
}

func TestAllocResetAndReuse(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	x.v = 7
	x.buf = append(x.buf, 1, 2, 3)
	x.Release()
	y := a.Alloc()
	if y != x {
		t.Error("released slot not reused")
	}
	if y.v != 0 || len(y.buf) != 0 {
		t.Errorf("recycled object not reset: %+v", y)
	}
	if cap(y.buf) < 3 {
		t.Error("reset dropped the reusable buffer capacity")
	}
}

func TestRefGenerationCheck(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	ref := MakeRef(x, &x.Slot)
	if ref.Get() != x {
		t.Fatal("fresh ref does not resolve")
	}
	x.Release()
	if ref.Get() != nil {
		t.Error("stale ref resolved after release")
	}
	y := a.Alloc() // recycles x's slot under a new generation
	if ref.Get() != nil {
		t.Error("old-generation ref resolved against the recycled slot")
	}
	if MakeRef(y, &y.Slot).Get() != y {
		t.Error("recycled slot's new ref does not resolve")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	x.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	x.Release()
}

func TestUnpooledObjectIsInert(t *testing.T) {
	x := &thing{v: 1}
	x.Release() // no-op
	if MakeRef(x, &x.Slot).Get() != nil {
		t.Error("unpooled ref should resolve to nil")
	}
}

func TestPointerStabilityAcrossGrowth(t *testing.T) {
	a := newThingArena()
	first := a.Alloc()
	first.v = 42
	// Force several chunk growths.
	for i := 0; i < Chunk*4; i++ {
		a.Alloc()
	}
	if first.v != 42 || a.get(0) != first {
		t.Error("slot pointer invalidated by arena growth")
	}
}

func TestAllocIsAllocFreeOnReuse(t *testing.T) {
	a := newThingArena()
	x := a.Alloc()
	x.Release()
	if allocs := testing.AllocsPerRun(200, func() {
		y := a.Alloc()
		y.Release()
	}); allocs != 0 {
		t.Errorf("steady-state alloc/release allocates %.2f per op, want 0", allocs)
	}
}
