package mpi

import (
	"bytes"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

func harness(t *testing.T) (*node.System, *Comm) {
	t.Helper()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Bench.SignalPeriod = 1 // blocking sends complete via per-message CQEs
	sys := node.NewSystem(cfg, 2)
	comm := NewComm(sys.Nodes[:2], cfg, uct.PIOInline)
	return sys, comm
}

func TestSendRecvRoundTrip(t *testing.T) {
	sys, comm := harness(t)
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	ping := []byte{1, 2, 3, 4}
	pong := []byte{5, 6, 7, 8}
	var got0, got1 []byte
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		tk := p.Task()
		r1.PreparePostedRecvs(tk, 16)
		got1 = r1.Recv(tk, 0, 1)
		r1.Send(tk, 0, 2, pong)
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microsecond)
		r0.Send(tk, 1, 1, ping)
		got0 = r0.Recv(tk, 1, 2)
	})
	sys.Run()
	if !bytes.Equal(got1, ping) || !bytes.Equal(got0, pong) {
		t.Errorf("ping=%v pong=%v", got1, got0)
	}
	if r0.Stats.Isends != 1 || r0.Stats.Irecvs != 1 || r0.Stats.Waits != 2 {
		t.Errorf("rank0 stats: %+v", r0.Stats)
	}
}

func TestIsendIrecvNonblocking(t *testing.T) {
	sys, comm := harness(t)
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	const n = 8
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		tk := p.Task()
		r1.PreparePostedRecvs(tk, 64)
		reqs := make([]*Request, n)
		for i := range reqs {
			reqs[i] = r1.Irecv(tk, 0, i)
		}
		r1.Waitall(tk, reqs)
		for i, req := range reqs {
			if !req.Done() {
				t.Errorf("recv %d incomplete after waitall", i)
			}
			if want := byte(i); len(req.Data()) != 1 || req.Data()[0] != want {
				t.Errorf("recv %d data = %v", i, req.Data())
			}
		}
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 64)
		p.Sleep(units.Microsecond)
		reqs := make([]*Request, n)
		for i := range reqs {
			reqs[i] = r0.Isend(tk, 1, i, []byte{byte(i)})
		}
		r0.Waitall(tk, reqs)
	})
	sys.Run()
}

func TestTagMatching(t *testing.T) {
	sys, comm := harness(t)
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	// Two sends with distinct tags; receives posted in opposite order
	// must match by tag, not arrival order.
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		tk := p.Task()
		r1.PreparePostedRecvs(tk, 16)
		reqB := r1.Irecv(tk, 0, 200)
		reqA := r1.Irecv(tk, 0, 100)
		r1.Wait(tk, reqB)
		r1.Wait(tk, reqA)
		if reqA.Data()[0] != 100 || reqB.Data()[0] != 200 {
			t.Errorf("tag matching broken: A=%v B=%v", reqA.Data(), reqB.Data())
		}
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microsecond)
		r0.Isend(tk, 1, 100, []byte{100})
		req := r0.Isend(tk, 1, 200, []byte{200})
		r0.Wait(tk, req)
	})
	sys.Run()
}

func TestUnexpectedThenIrecv(t *testing.T) {
	sys, comm := harness(t)
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		tk := p.Task()
		r1.PreparePostedRecvs(tk, 16)
		// Progress until the eager message is sitting in the
		// unexpected queue, then post the receive.
		for r1.Worker.Stats.UnexpectedMsgs == 0 {
			r1.Worker.Progress(tk)
		}
		req := r1.Irecv(tk, 0, 5)
		r1.Wait(tk, req)
		if req.Data()[0] != 55 {
			t.Errorf("unexpected-path data = %v", req.Data())
		}
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microsecond)
		r0.Send(tk, 1, 5, []byte{55})
	})
	sys.Run()
	if r1.Worker.Stats.UnexpectedMsgs != 1 {
		t.Errorf("unexpected msgs = %d", r1.Worker.Stats.UnexpectedMsgs)
	}
}

func TestWaitRecvCountsLoops(t *testing.T) {
	sys, comm := harness(t)
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		tk := p.Task()
		r1.PreparePostedRecvs(tk, 16)
		r1.Recv(tk, 0, 1)
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microsecond)
		r0.Send(tk, 1, 1, []byte{1})
	})
	sys.Run()
	if r1.Stats.RecvWaits != 1 {
		t.Errorf("recv waits = %d", r1.Stats.RecvWaits)
	}
	if r1.Stats.RecvWaitLoops == 0 {
		t.Error("recv wait loops not counted")
	}
}

func TestIsendToUnknownRankPanics(t *testing.T) {
	sys, comm := harness(t)
	defer sys.Shutdown()
	r0 := comm.Ranks[0]
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		defer func() {
			if recover() == nil {
				t.Error("isend to unconnected rank did not panic")
			}
		}()
		r0.Isend(tk, 99, 0, []byte{1})
	})
	sys.Run()
}

func TestCommFullyConnected(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := node.NewSystem(cfg, 3)
	defer sys.Shutdown()
	comm := NewComm(sys.Nodes, cfg, uct.PIOInline)
	if len(comm.Ranks) != 3 {
		t.Fatalf("ranks = %d", len(comm.Ranks))
	}
	for i, r := range comm.Ranks {
		if len(r.eps) != 2 {
			t.Errorf("rank %d has %d connections, want 2", i, len(r.eps))
		}
	}
}

func TestThreeRankRing(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Bench.SignalPeriod = 1
	sys := node.NewSystem(cfg, 3)
	defer sys.Shutdown()
	comm := NewComm(sys.Nodes, cfg, uct.PIOInline)
	var sums [3]byte
	for i := range comm.Ranks {
		i := i
		r := comm.Ranks[i]
		next := (i + 1) % 3
		prev := (i + 2) % 3
		sys.K.Spawn("rank", func(p *sim.Proc) {
			tk := p.Task()
			r.PreparePostedRecvs(tk, 16)
			p.Sleep(units.Microsecond)
			r.Isend(tk, next, 7, []byte{byte(10 * (i + 1))})
			data := r.Recv(tk, prev, 7)
			sums[i] = data[0]
		})
	}
	sys.Run()
	if sums != [3]byte{30, 10, 20} {
		t.Errorf("ring results = %v", sums)
	}
}

func TestRequestData(t *testing.T) {
	req := &Request{}
	if req.Data() != nil {
		t.Error("incomplete request returned data")
	}
}
