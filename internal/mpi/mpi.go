// Package mpi implements the top of the high-level protocol stack: an
// MPICH-CH4-style MPI library over ucp, with nonblocking point-to-point
// operations, a blocking progress engine, and the registered completion
// callbacks whose costs the paper's §5 breakdown attributes.
//
// Call structure mirrors MPICH over UCX: MPI_Isend decides how to execute
// the operation and calls ucp_tag_send_nb; MPI_Wait loops the progress
// engine over ucp_worker_progress; completions bubble up through the UCT →
// UCP → MPICH callback chain before the progress call returns (paper §5).
//
// Like the layers below, the blocking operations are resumable sim.Frame
// state machines: continuation tasks use the Start*/Last* forms, blocking
// tasks (Proc.Task) the synchronous wrappers. One task drives a Rank at a
// time.
package mpi

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/profile"
	"breakband/internal/sim"
	"breakband/internal/ucp"
	"breakband/internal/uct"
)

// Request is an MPI request handle.
type Request struct {
	rank   *Rank
	ucpReq *ucp.Request
	done   bool
	isRecv bool
	src    int // receive source rank (error attribution)
	err    error
}

// Done reports completion (for test assertions; applications use Wait).
func (r *Request) Done() bool { return r.done }

// Err reports the failure that terminated the request — the MPI analogue of
// a non-MPI_SUCCESS status in MPI_Wait. Nil on success or while in flight.
// Requests fail when their endpoint's QP enters the error state: the send
// was flushed undelivered, or the posted receive was cancelled because the
// peer died.
func (r *Request) Err() error {
	if r.err != nil {
		return r.err
	}
	if r.ucpReq != nil {
		return r.ucpReq.Err()
	}
	return nil
}

// Data returns the payload of a completed receive.
func (r *Request) Data() []byte {
	if !r.done || !r.isRecv {
		return nil
	}
	return r.ucpReq.Data()
}

// Stats counts MPI-level events.
type Stats struct {
	Isends, Irecvs uint64
	Waits          uint64
	WaitLoops      uint64
	SendCallbacks  uint64
	RecvCallbacks  uint64
	// RecvWaits and RecvWaitLoops reconstruct per-wait progress totals
	// (Sum = mean x loops/waits) in the §5 methodology.
	RecvWaits     uint64
	RecvWaitLoops uint64
}

// Rank is one MPI process (one simulated core).
type Rank struct {
	ID     int
	Node   *node.Node
	Cfg    *config.Config
	Worker *ucp.Worker
	eps    map[int]*ucp.Ep
	// epList holds the connections in creation order so credit posting
	// iterates deterministically (map order would vary run to run).
	epList []*ucp.Ep

	Stats Stats

	// Instrumentation knobs used by the measurement methodology: when
	// set, the named regions are profiled with the node's profiler. The
	// Wait-related scopes apply to receive waits only (the paper's §5
	// receive-side analysis); ProfUcpProg and ProfUctInWait are gated to
	// the interior of a receive wait so that per-wait totals can be
	// reconstructed from means and loop counts.
	ProfIsend     bool      // "mpi_isend" scope
	ProfUcpSend   bool      // "ucp_tag_send_nb" scope
	ProfWait      bool      // "mpi_wait_recv" scope
	ProfUcpProg   bool      // "ucp_worker_progress" scope (inside recv waits)
	ProfMpichCB   bool      // "mpich_recv_cb" scope
	ProfAfterProg bool      // "mpich_after_progress" scope
	ProfUctInWait uct.Stage // LLP stage profiled inside recv waits

	inRecvWait bool

	prepF    prepFrame
	isendF   isendFrame
	waitF    waitFrame
	waitallF waitallFrame
	sendF    sendFrame
	recvF    recvFrame
}

// Comm is a communicator over a set of ranks.
type Comm struct {
	Ranks []*Rank
}

// tagFor packs (src, tag) so matching is pairwise like MPI's
// (communicator, source, tag) triple.
func tagFor(src int, tag int) uint64 {
	return uint64(src)<<32 | uint64(uint32(tag))
}

// NewComm builds one rank per node (rank i on nodes[i]) and fully connects
// them with the given post mode. It mirrors MPI_Init plus connection setup.
func NewComm(nodes []*node.Node, cfg *config.Config, mode uct.PostMode) *Comm {
	c := &Comm{}
	for i, n := range nodes {
		u := uct.NewWorker(n, cfg)
		w := ucp.NewWorker(u, cfg)
		r := &Rank{ID: i, Node: n, Cfg: cfg, Worker: w, eps: make(map[int]*ucp.Ep)}
		r.prepF.r = r
		r.isendF.r = r
		r.waitF.r = r
		r.waitallF.r = r
		r.sendF.r = r
		r.recvF.r = r
		c.Ranks = append(c.Ranks, r)
	}
	// Fully connect: one ep (and QP) per peer per rank.
	for i, a := range c.Ranks {
		for j, b := range c.Ranks {
			if i >= j {
				continue
			}
			ea := a.Worker.NewEp(mode)
			eb := b.Worker.NewEp(mode)
			uct.Connect(ea.UctEp, eb.UctEp)
			a.eps[j] = ea
			b.eps[i] = eb
			a.epList = append(a.epList, ea)
			b.epList = append(b.epList, eb)
		}
	}
	return c
}

// StartPreparePostedRecvs begins posting n receive credits on every
// connection, in connection-creation order; run it on each rank before
// traffic flows.
func (r *Rank) StartPreparePostedRecvs(t *sim.Task, n int) {
	r.prepF.pc = 0
	r.prepF.i = 0
	r.prepF.n = n
	t.Call(&r.prepF)
}

// PreparePostedRecvs is the synchronous form of StartPreparePostedRecvs for
// blocking tasks.
func (r *Rank) PreparePostedRecvs(t *sim.Task, n int) {
	t.BlockingOnly("mpi.Rank.PreparePostedRecvs")
	r.StartPreparePostedRecvs(t, n)
}

type prepFrame struct {
	r    *Rank
	pc   int
	i, n int
}

func (f *prepFrame) Step(t *sim.Task) {
	r := f.r
	if f.i >= len(r.epList) {
		t.Return()
		return
	}
	ep := r.epList[f.i]
	f.i++
	ep.UctEp.StartPostRecvs(t, f.n)
}

// StartIsend begins a nonblocking standard send of data to rank dst; the
// request is reported by LastIsend once the frame returns.
func (r *Rank) StartIsend(t *sim.Task, dst int, tag int, data []byte) {
	f := &r.isendF
	f.pc = 0
	f.dst = dst
	f.tag = tag
	f.data = data
	t.Call(f)
}

// LastIsend reports the request created by the most recently completed
// isend frame.
func (r *Rank) LastIsend() *Request { return r.isendF.res }

// Isend is the synchronous form of StartIsend for blocking tasks.
func (r *Rank) Isend(t *sim.Task, dst int, tag int, data []byte) *Request {
	t.BlockingOnly("mpi.Rank.Isend")
	r.StartIsend(t, dst, tag, data)
	return r.isendF.res
}

type isendFrame struct {
	r        *Rank
	pc       int
	dst, tag int
	data     []byte

	ep       *ucp.Ep
	req      *Request
	isendTok profTok
	ucpTok   profTok
	res      *Request
}

func (f *isendFrame) Step(t *sim.Task) {
	r := f.r
	switch f.pc {
	case 0:
		ep, ok := r.eps[f.dst]
		if !ok {
			panic(fmt.Sprintf("mpi: rank %d has no connection to %d", r.ID, f.dst))
		}
		f.ep = ep
		r.Stats.Isends++
		req := &Request{rank: r}
		f.req = req

		f.isendTok, f.ucpTok = profTok{}, profTok{}
		if r.ProfIsend {
			f.isendTok = r.profBegin(t)
		}
		// MPICH-side work: datatype/contiguity checks, choosing the path.
		t.Advance(r.Cfg.SW.MpiIsend.Sample(r.Node.Rand))
		if r.ProfUcpSend {
			f.ucpTok = r.profBegin(t)
		}
		f.pc = 1
		ep.StartTagSend(t, tagFor(r.ID, f.tag), f.data, func(ct *sim.Task) {
			// MPICH send-completion callback.
			ct.Advance(r.Cfg.SW.MpichSendCB.Sample(r.Node.Rand))
			r.Stats.SendCallbacks++
			req.done = true
		})
	case 1:
		ucpReq, err := f.ep.LastSend()
		if err != nil {
			// Initiation failed (the endpoint's QP is in the error
			// state): the request terminates immediately with the error
			// instead of panicking — MPI_Wait reports it as a status.
			f.req.err = err
			f.req.done = true
		}
		f.req.ucpReq = ucpReq
		r.profEndAs(t, f.ucpTok, r.ProfUcpSend, "ucp_tag_send_nb")
		r.profEndAs(t, f.isendTok, r.ProfIsend, "mpi_isend")
		f.res = f.req
		f.req = nil
		f.data = nil
		t.Return()
	}
}

// Irecv starts a nonblocking receive matching (src, tag). It is pause-free,
// so it works identically on continuation and blocking tasks and needs no
// Start form.
func (r *Rank) Irecv(t *sim.Task, src int, tag int) *Request {
	r.Stats.Irecvs++
	req := &Request{rank: r, isRecv: true, src: src}
	t.Advance(r.Cfg.SW.MpiIrecv.Sample(r.Node.Rand))
	req.ucpReq = r.Worker.TagRecvNB(t, tagFor(src, tag), func(ct *sim.Task) {
		// MPICH receive callback (paper Table 1: 47.99 ns).
		var tok profTok
		if r.ProfMpichCB {
			tok = r.profBegin(ct)
		}
		ct.Advance(r.Cfg.SW.MpichRecvCB.Sample(r.Node.Rand))
		r.Stats.RecvCallbacks++
		req.done = true
		r.profEndAs(ct, tok, r.ProfMpichCB, "mpich_recv_cb")
	})
	// An unexpected message may have completed it synchronously.
	if req.ucpReq.Completed() {
		req.done = true
		return req
	}
	// Late post against a dead peer: short-circuit with the endpoint error
	// instead of waiting for a match that will never arrive (mirrors the
	// CQEFlushErr contract for posts against an errored QP). A message
	// already delivered before the failure still matches above.
	if ep, ok := r.eps[src]; ok && ep.Err() != nil {
		r.Worker.CancelRecv(t, req.ucpReq, ep.Err())
		req.done = true
	}
	return req
}

// checkFailed tests a pending request against its endpoint's health and
// terminates it if the transport has failed: a posted receive whose source
// endpoint errored is cancelled (the MPICH receive callback still runs, so
// the request machinery observes completion). It reports whether the
// request terminated. Healthy endpoints cost one map lookup and schedule
// nothing.
func (r *Rank) checkFailed(t *sim.Task, req *Request) bool {
	if req.done {
		return true
	}
	if !req.isRecv {
		return false
	}
	ep, ok := r.eps[req.src]
	if !ok || ep.Err() == nil {
		return false
	}
	r.Worker.CancelRecv(t, req.ucpReq, ep.Err())
	req.done = true
	return true
}

// CheckFailed is the public form of the wait loop's failure test, for
// callers that drive the progress engine themselves (chaos harnesses,
// failure detectors): it terminates a pending receive whose source endpoint
// has errored and reports whether the request is finished (by success or
// failure).
func (r *Rank) CheckFailed(t *sim.Task, req *Request) bool {
	return r.checkFailed(t, req)
}

// CancelRecv abandons a pending receive with the given error, as when an
// application-level deadline expires while the peer is unreachable. The
// request terminates (Err reports err) and its buffer slot is released; a
// receive that already completed is left alone and false is returned.
func (r *Rank) CancelRecv(t *sim.Task, req *Request, err error) bool {
	if req.done || !req.isRecv {
		return false
	}
	if !r.Worker.CancelRecv(t, req.ucpReq, err) {
		return false
	}
	req.done = true
	return true
}

// StartWait begins blocking until req completes, driving the progress
// engine (MPI_Wait).
func (r *Rank) StartWait(t *sim.Task, req *Request) {
	r.waitF.pc = 0
	r.waitF.req = req
	t.Call(&r.waitF)
}

// Wait is the synchronous form of StartWait for blocking tasks.
func (r *Rank) Wait(t *sim.Task, req *Request) {
	t.BlockingOnly("mpi.Rank.Wait")
	r.StartWait(t, req)
}

type waitFrame struct {
	r   *Rank
	pc  int
	req *Request

	measured bool
	waitTok  profTok
	progTok  profTok
	progProf bool
}

func (f *waitFrame) Step(t *sim.Task) {
	r := f.r
	for {
		switch f.pc {
		case 0:
			r.Stats.Waits++
			f.measured = f.req.isRecv
			if f.measured {
				r.Stats.RecvWaits++
				r.inRecvWait = true
				if r.ProfUctInWait != uct.StNone {
					r.Worker.Uct.ProfStage = r.ProfUctInWait
				}
			}
			f.waitTok = profTok{}
			if r.ProfWait && f.measured {
				f.waitTok = r.profBegin(t)
			}
			// Entry/exit bookkeeping (request inspection, state machine).
			t.Advance(r.Cfg.SW.MpichWaitEnt.Sample(r.Node.Rand))
			f.pc = 1
		case 1:
			if r.checkFailed(t, f.req) {
				f.pc = 3
				continue
			}
			r.Stats.WaitLoops++
			if f.measured {
				r.Stats.RecvWaitLoops++
			}
			t.Advance(r.Cfg.SW.MpichWaitLoop.Sample(r.Node.Rand))
			f.beginProgress(t)
			f.pc = 2
			r.Worker.StartProgress(t)
			return
		case 2:
			r.profEndAs(t, f.progTok, f.progProf, "ucp_worker_progress")
			f.pc = 1
		case 3:
			// MPICH work after the successful ucp_worker_progress (paper
			// §6: 36.89 ns).
			afterTok := profTok{}
			if r.ProfAfterProg && f.measured {
				afterTok = r.profBegin(t)
			}
			t.Advance(r.Cfg.SW.MpichAfterPrg.Sample(r.Node.Rand))
			r.profEndAs(t, afterTok, r.ProfAfterProg && f.measured, "mpich_after_progress")
			r.profEndAs(t, f.waitTok, r.ProfWait && f.measured, "mpi_wait_recv")
			if f.measured {
				r.inRecvWait = false
				if r.ProfUctInWait != uct.StNone {
					r.Worker.Uct.ProfStage = uct.StNone
				}
			}
			f.req = nil
			t.Return()
			return
		}
	}
}

// beginProgress opens the optionally-profiled ucp_worker_progress scope
// (inside receive waits only, so per-wait totals reconstruct cleanly).
func (f *waitFrame) beginProgress(t *sim.Task) {
	r := f.r
	f.progProf = r.ProfUcpProg && r.inRecvWait
	f.progTok = profTok{}
	if f.progProf {
		f.progTok = r.profBegin(t)
	}
}

// StartWaitall begins blocking until all requests complete (MPI_Waitall).
// MPICH executes its progress engine until every listed operation completes.
func (r *Rank) StartWaitall(t *sim.Task, reqs []*Request) {
	r.waitallF.pc = 0
	r.waitallF.reqs = reqs
	t.Call(&r.waitallF)
}

// Waitall is the synchronous form of StartWaitall for blocking tasks.
func (r *Rank) Waitall(t *sim.Task, reqs []*Request) {
	t.BlockingOnly("mpi.Rank.Waitall")
	r.StartWaitall(t, reqs)
}

type waitallFrame struct {
	r    *Rank
	pc   int
	reqs []*Request

	progTok  profTok
	progProf bool
}

func (f *waitallFrame) Step(t *sim.Task) {
	r := f.r
	for {
		switch f.pc {
		case 0:
			t.Advance(r.Cfg.SW.MpichWaitEnt.Sample(r.Node.Rand))
			f.pc = 1
		case 1:
			remaining := 0
			for _, q := range f.reqs {
				if !r.checkFailed(t, q) {
					remaining++
				}
			}
			if remaining == 0 {
				f.reqs = nil
				t.Return()
				return
			}
			r.Stats.WaitLoops++
			// Per-operation bookkeeping share of the waitall loop.
			t.Advance(r.Cfg.SW.MpichWaitallOp.Sample(r.Node.Rand))
			f.progProf = r.ProfUcpProg && r.inRecvWait
			f.progTok = profTok{}
			if f.progProf {
				f.progTok = r.profBegin(t)
			}
			f.pc = 2
			r.Worker.StartProgress(t)
			return
		case 2:
			r.profEndAs(t, f.progTok, f.progProf, "ucp_worker_progress")
			f.pc = 1
		}
	}
}

// StartSend begins a blocking standard send (Isend + Wait), as used by the
// OSU latency benchmark.
func (r *Rank) StartSend(t *sim.Task, dst int, tag int, data []byte) {
	r.sendF.pc = 0
	r.sendF.dst = dst
	r.sendF.tag = tag
	r.sendF.data = data
	t.Call(&r.sendF)
}

// Send is the synchronous form of StartSend for blocking tasks.
func (r *Rank) Send(t *sim.Task, dst int, tag int, data []byte) {
	t.BlockingOnly("mpi.Rank.Send")
	r.Wait(t, r.Isend(t, dst, tag, data))
}

type sendFrame struct {
	r        *Rank
	pc       int
	dst, tag int
	data     []byte
}

func (f *sendFrame) Step(t *sim.Task) {
	r := f.r
	switch f.pc {
	case 0:
		f.pc = 1
		r.StartIsend(t, f.dst, f.tag, f.data)
	case 1:
		f.pc = 2
		r.StartWait(t, r.LastIsend())
	case 2:
		f.data = nil
		t.Return()
	}
}

// StartRecv begins a blocking receive (Irecv + Wait); the payload is
// reported by LastRecv once the frame returns.
func (r *Rank) StartRecv(t *sim.Task, src int, tag int) {
	r.recvF.pc = 0
	r.recvF.src = src
	r.recvF.tag = tag
	t.Call(&r.recvF)
}

// LastRecv reports the payload received by the most recently completed recv
// frame.
func (r *Rank) LastRecv() []byte { return r.recvF.data }

// Recv is the synchronous form of StartRecv for blocking tasks.
func (r *Rank) Recv(t *sim.Task, src int, tag int) []byte {
	t.BlockingOnly("mpi.Rank.Recv")
	req := r.Irecv(t, src, tag)
	r.Wait(t, req)
	return req.Data()
}

type recvFrame struct {
	r        *Rank
	pc       int
	src, tag int
	req      *Request
	data     []byte
}

func (f *recvFrame) Step(t *sim.Task) {
	r := f.r
	switch f.pc {
	case 0:
		f.req = r.Irecv(t, f.src, f.tag)
		f.pc = 1
		r.StartWait(t, f.req)
	case 1:
		f.data = f.req.Data()
		f.req = nil
		t.Return()
	}
}

// --- profiling helpers ---

type profTok struct {
	tok  profile.Token
	real bool
}

func (r *Rank) profBegin(t *sim.Task) profTok {
	return profTok{tok: r.Node.Prof.BeginAnon(t), real: true}
}

func (r *Rank) profEndAs(t *sim.Task, tk profTok, enabled bool, name string) {
	if tk.real && enabled {
		r.Node.Prof.EndAs(t, tk.tok, name)
	}
}
