// Package mpi implements the top of the high-level protocol stack: an
// MPICH-CH4-style MPI library over ucp, with nonblocking point-to-point
// operations, a blocking progress engine, and the registered completion
// callbacks whose costs the paper's §5 breakdown attributes.
//
// Call structure mirrors MPICH over UCX: MPI_Isend decides how to execute
// the operation and calls ucp_tag_send_nb; MPI_Wait loops the progress
// engine over ucp_worker_progress; completions bubble up through the UCT →
// UCP → MPICH callback chain before the progress call returns (paper §5).
package mpi

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/profile"
	"breakband/internal/sim"
	"breakband/internal/ucp"
	"breakband/internal/uct"
)

// Request is an MPI request handle.
type Request struct {
	rank   *Rank
	ucpReq *ucp.Request
	done   bool
	isRecv bool
}

// Done reports completion (for test assertions; applications use Wait).
func (r *Request) Done() bool { return r.done }

// Data returns the payload of a completed receive.
func (r *Request) Data() []byte {
	if !r.done || !r.isRecv {
		return nil
	}
	return r.ucpReq.Data()
}

// Stats counts MPI-level events.
type Stats struct {
	Isends, Irecvs uint64
	Waits          uint64
	WaitLoops      uint64
	SendCallbacks  uint64
	RecvCallbacks  uint64
	// RecvWaits and RecvWaitLoops reconstruct per-wait progress totals
	// (Sum = mean x loops/waits) in the §5 methodology.
	RecvWaits     uint64
	RecvWaitLoops uint64
}

// Rank is one MPI process (one simulated core).
type Rank struct {
	ID     int
	Node   *node.Node
	Cfg    *config.Config
	Worker *ucp.Worker
	eps    map[int]*ucp.Ep

	Stats Stats

	// Instrumentation knobs used by the measurement methodology: when
	// set, the named regions are profiled with the node's profiler. The
	// Wait-related scopes apply to receive waits only (the paper's §5
	// receive-side analysis); ProfUcpProg and ProfUctInWait are gated to
	// the interior of a receive wait so that per-wait totals can be
	// reconstructed from means and loop counts.
	ProfIsend     bool      // "mpi_isend" scope
	ProfUcpSend   bool      // "ucp_tag_send_nb" scope
	ProfWait      bool      // "mpi_wait_recv" scope
	ProfUcpProg   bool      // "ucp_worker_progress" scope (inside recv waits)
	ProfMpichCB   bool      // "mpich_recv_cb" scope
	ProfAfterProg bool      // "mpich_after_progress" scope
	ProfUctInWait uct.Stage // LLP stage profiled inside recv waits

	inRecvWait bool
}

// Comm is a communicator over a set of ranks.
type Comm struct {
	Ranks []*Rank
}

// tagFor packs (src, tag) so matching is pairwise like MPI's
// (communicator, source, tag) triple.
func tagFor(src int, tag int) uint64 {
	return uint64(src)<<32 | uint64(uint32(tag))
}

// NewComm builds one rank per node (rank i on nodes[i]) and fully connects
// them with the given post mode. It mirrors MPI_Init plus connection setup.
func NewComm(nodes []*node.Node, cfg *config.Config, mode uct.PostMode) *Comm {
	c := &Comm{}
	for i, n := range nodes {
		u := uct.NewWorker(n, cfg)
		w := ucp.NewWorker(u, cfg)
		c.Ranks = append(c.Ranks, &Rank{ID: i, Node: n, Cfg: cfg, Worker: w, eps: make(map[int]*ucp.Ep)})
	}
	// Fully connect: one ep (and QP) per peer per rank.
	for i, a := range c.Ranks {
		for j, b := range c.Ranks {
			if i >= j {
				continue
			}
			ea := a.Worker.NewEp(mode)
			eb := b.Worker.NewEp(mode)
			uct.Connect(ea.UctEp, eb.UctEp)
			a.eps[j] = ea
			b.eps[i] = eb
		}
	}
	return c
}

// PreparePostedRecvs posts n receive credits on every connection; call it
// from a proc on each rank before traffic flows.
func (r *Rank) PreparePostedRecvs(p *sim.Proc, n int) {
	for _, ep := range r.eps {
		ep.UctEp.PostRecvs(p, n)
	}
}

// Isend starts a nonblocking standard send of data to rank dst.
func (r *Rank) Isend(p *sim.Proc, dst int, tag int, data []byte) *Request {
	ep, ok := r.eps[dst]
	if !ok {
		panic(fmt.Sprintf("mpi: rank %d has no connection to %d", r.ID, dst))
	}
	r.Stats.Isends++
	req := &Request{rank: r}

	var isendTok, ucpTok profTok
	if r.ProfIsend {
		isendTok = r.profBegin(p)
	}
	// MPICH-side work: datatype/contiguity checks, choosing the path.
	p.Advance(r.Cfg.SW.MpiIsend.Sample(r.Node.Rand))
	if r.ProfUcpSend {
		ucpTok = r.profBegin(p)
	}
	ucpReq, err := ep.TagSendNB(p, tagFor(r.ID, tag), data, func(cp *sim.Proc) {
		// MPICH send-completion callback.
		cp.Advance(r.Cfg.SW.MpichSendCB.Sample(r.Node.Rand))
		r.Stats.SendCallbacks++
		req.done = true
	})
	if err != nil {
		panic(fmt.Sprintf("mpi: isend: %v", err))
	}
	req.ucpReq = ucpReq
	r.profEndAs(p, ucpTok, r.ProfUcpSend, "ucp_tag_send_nb")
	r.profEndAs(p, isendTok, r.ProfIsend, "mpi_isend")
	return req
}

// Irecv starts a nonblocking receive matching (src, tag).
func (r *Rank) Irecv(p *sim.Proc, src int, tag int) *Request {
	r.Stats.Irecvs++
	req := &Request{rank: r, isRecv: true}
	p.Advance(r.Cfg.SW.MpiIrecv.Sample(r.Node.Rand))
	req.ucpReq = r.Worker.TagRecvNB(p, tagFor(src, tag), func(cp *sim.Proc) {
		// MPICH receive callback (paper Table 1: 47.99 ns).
		var tok profTok
		if r.ProfMpichCB {
			tok = r.profBegin(cp)
		}
		cp.Advance(r.Cfg.SW.MpichRecvCB.Sample(r.Node.Rand))
		r.Stats.RecvCallbacks++
		req.done = true
		r.profEndAs(cp, tok, r.ProfMpichCB, "mpich_recv_cb")
	})
	// An unexpected message may have completed it synchronously.
	if req.ucpReq.Completed() {
		req.done = true
	}
	return req
}

// Wait blocks until req completes, driving the progress engine (MPI_Wait).
func (r *Rank) Wait(p *sim.Proc, req *Request) {
	r.Stats.Waits++
	measured := req.isRecv
	if measured {
		r.Stats.RecvWaits++
		r.inRecvWait = true
		if r.ProfUctInWait != uct.StNone {
			r.Worker.Uct.ProfStage = r.ProfUctInWait
		}
	}
	var waitTok profTok
	if r.ProfWait && measured {
		waitTok = r.profBegin(p)
	}
	// Entry/exit bookkeeping (request inspection, state machine).
	p.Advance(r.Cfg.SW.MpichWaitEnt.Sample(r.Node.Rand))
	for !req.done {
		r.Stats.WaitLoops++
		if measured {
			r.Stats.RecvWaitLoops++
		}
		p.Advance(r.Cfg.SW.MpichWaitLoop.Sample(r.Node.Rand))
		r.progressOnce(p)
	}
	// MPICH work after the successful ucp_worker_progress (paper §6:
	// 36.89 ns).
	var afterTok profTok
	if r.ProfAfterProg && measured {
		afterTok = r.profBegin(p)
	}
	p.Advance(r.Cfg.SW.MpichAfterPrg.Sample(r.Node.Rand))
	r.profEndAs(p, afterTok, r.ProfAfterProg && measured, "mpich_after_progress")
	r.profEndAs(p, waitTok, r.ProfWait && measured, "mpi_wait_recv")
	if measured {
		r.inRecvWait = false
		if r.ProfUctInWait != uct.StNone {
			r.Worker.Uct.ProfStage = uct.StNone
		}
	}
}

// Waitall blocks until all requests complete (MPI_Waitall). MPICH executes
// its progress engine until every listed operation completes.
func (r *Rank) Waitall(p *sim.Proc, reqs []*Request) {
	p.Advance(r.Cfg.SW.MpichWaitEnt.Sample(r.Node.Rand))
	remaining := func() int {
		n := 0
		for _, q := range reqs {
			if !q.done {
				n++
			}
		}
		return n
	}
	for remaining() > 0 {
		r.Stats.WaitLoops++
		// Per-operation bookkeeping share of the waitall loop.
		p.Advance(r.Cfg.SW.MpichWaitallOp.Sample(r.Node.Rand))
		r.progressOnce(p)
	}
}

// progressOnce runs one ucp_worker_progress pass, optionally profiled
// (inside receive waits only, so per-wait totals reconstruct cleanly).
func (r *Rank) progressOnce(p *sim.Proc) int {
	prof := r.ProfUcpProg && r.inRecvWait
	var tok profTok
	if prof {
		tok = r.profBegin(p)
	}
	n := r.Worker.Progress(p)
	r.profEndAs(p, tok, prof, "ucp_worker_progress")
	return n
}

// Send is a blocking standard send (Isend + Wait), as used by the OSU
// latency benchmark.
func (r *Rank) Send(p *sim.Proc, dst int, tag int, data []byte) {
	r.Wait(p, r.Isend(p, dst, tag, data))
}

// Recv is a blocking receive (Irecv + Wait).
func (r *Rank) Recv(p *sim.Proc, src int, tag int) []byte {
	req := r.Irecv(p, src, tag)
	r.Wait(p, req)
	return req.Data()
}

// --- profiling helpers ---

type profTok struct {
	tok  profile.Token
	real bool
}

func (r *Rank) profBegin(p *sim.Proc) profTok {
	return profTok{tok: r.Node.Prof.BeginAnon(p), real: true}
}

func (r *Rank) profEndAs(p *sim.Proc, t profTok, enabled bool, name string) {
	if t.real && enabled {
		r.Node.Prof.EndAs(p, t.tok, name)
	}
}
