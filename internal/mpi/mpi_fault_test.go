package mpi

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// faultHarness builds the two-node harness with node 1's NIC scheduled to
// crash at the given time (no restart: the peer stays dead).
func faultHarness(t *testing.T, crashAt units.Time) (*node.System, *Comm) {
	t.Helper()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Bench.SignalPeriod = 1 // blocking sends complete via per-message CQEs
	cfg.Faults.Crashes = []faults.Crash{{Node: 1, At: crashAt}}
	sys := node.NewSystem(cfg, 2)
	comm := NewComm(sys.Nodes[:2], cfg, uct.PIOInline)
	return sys, comm
}

// TestSendToCrashedPeerErrors: a send posted after the peer died must
// complete with an error (ACK-timeout -> retry exhaustion), not hang — the
// flush-semantics contract surfaced at the MPI layer.
func TestSendToCrashedPeerErrors(t *testing.T) {
	sys, comm := faultHarness(t, units.Microseconds(5))
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	var sendErr error
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		r1.PreparePostedRecvs(p.Task(), 16)
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microseconds(10)) // peer is dead by now
		req := r0.Isend(tk, 1, 1, []byte{1})
		r0.Wait(tk, req)
		if !req.Done() {
			t.Error("request not done after Wait")
		}
		sendErr = req.Err()
	})
	sys.Run()
	if sendErr == nil {
		t.Fatal("send to crashed peer completed without error")
	}
	if r0.Worker.Stats.SendFailures == 0 {
		t.Errorf("worker recorded no send failures: %+v", r0.Worker.Stats)
	}
}

// TestRecvFromCrashedPeerErrors: a receive posted before the peer died is
// cancelled by the wait loop once the transport marks the endpoint failed
// (here: a probe send exhausting its retries). A receive posted after the
// endpoint error short-circuits immediately instead of waiting for a match
// that cannot arrive — mirroring the NIC's CQEFlushErr contract for work
// posted to an errored QP.
func TestRecvFromCrashedPeerErrors(t *testing.T) {
	sys, comm := faultHarness(t, units.Microseconds(5))
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	var pendingErr, lateErr error
	var lateTook units.Time
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		r1.PreparePostedRecvs(p.Task(), 16)
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microseconds(10))
		// The posted receive cannot learn of the death on its own — the
		// probe send drives the transport to retry exhaustion, which marks
		// the endpoint and lets the wait loop cancel the receive.
		pending := r0.Irecv(tk, 1, 1)
		probe := r0.Isend(tk, 1, 2, []byte{2})
		r0.Wait(tk, probe)
		r0.Wait(tk, pending)
		pendingErr = pending.Err()
		// Late post against the now-known-dead endpoint: no waiting at all.
		start := sys.K.Now()
		late := r0.Irecv(tk, 1, 3)
		r0.Wait(tk, late)
		lateErr = late.Err()
		lateTook = sys.K.Now() - start
	})
	sys.Run()
	if pendingErr == nil {
		t.Error("pending receive against crashed peer completed without error")
	}
	if lateErr == nil {
		t.Error("late-posted receive against dead endpoint did not short-circuit with an error")
	}
	if lateTook > units.Microsecond {
		t.Errorf("late-posted receive took %v, want immediate short-circuit", lateTook)
	}
	if r0.Worker.Stats.RecvFailures == 0 {
		t.Errorf("worker recorded no recv failures: %+v", r0.Worker.Stats)
	}
}

// TestLocalCrashFlushesRecv: the rank whose own NIC dies sees its posted
// receive flushed (error recv CQE -> endpoint error -> cancelled request)
// rather than blocking forever on buffers the device will never fill.
func TestLocalCrashFlushesRecv(t *testing.T) {
	sys, comm := faultHarness(t, units.Microseconds(5))
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	var recvErr error
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		r0.PreparePostedRecvs(p.Task(), 16)
	})
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		tk := p.Task()
		r1.PreparePostedRecvs(tk, 16)
		req := r1.Irecv(tk, 0, 1) // node 1's own NIC crashes at 5us
		r1.Wait(tk, req)
		if !req.Done() {
			t.Error("request not done after Wait")
		}
		recvErr = req.Err()
	})
	sys.Run()
	if recvErr == nil {
		t.Fatal("receive on crashed node completed without error")
	}
	if fr := sys.Nodes[1].NIC.Stats().FlushedRecvs; fr == 0 {
		t.Error("crashed NIC flushed no posted receives")
	}
}

// TestWaitallMixedOutcomes: Waitall over a batch where some requests fail
// must terminate with per-request errors — failed ones report, successful
// ones stay clean.
func TestWaitallMixedOutcomes(t *testing.T) {
	sys, comm := faultHarness(t, units.Microseconds(50))
	defer sys.Shutdown()
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	var early, late *Request
	sys.K.Spawn("rank1", func(p *sim.Proc) {
		r1.PreparePostedRecvs(p.Task(), 16)
		// Match only the pre-crash send, then stop progressing.
		got := r1.Recv(p.Task(), 0, 1)
		if len(got) != 1 || got[0] != 7 {
			t.Errorf("pre-crash recv = %v", got)
		}
	})
	sys.K.Spawn("rank0", func(p *sim.Proc) {
		tk := p.Task()
		r0.PreparePostedRecvs(tk, 16)
		p.Sleep(units.Microsecond)
		early = r0.Isend(tk, 1, 1, []byte{7}) // completes before the crash
		p.Sleep(units.Microseconds(100))      // peer dies at 50us
		late = r0.Isend(tk, 1, 2, []byte{8})
		r0.Waitall(tk, []*Request{early, late})
	})
	sys.Run()
	if !early.Done() || !late.Done() {
		t.Fatalf("waitall did not terminate both requests: early=%v late=%v", early.Done(), late.Done())
	}
	if early.Err() != nil {
		t.Errorf("pre-crash send errored: %v", early.Err())
	}
	if late.Err() == nil {
		t.Error("post-crash send completed without error")
	}
}
