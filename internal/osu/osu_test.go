package osu

import (
	"math"
	"testing"

	"breakband/internal/config"
	"breakband/internal/mpi"
	"breakband/internal/node"
)

func newSys(t *testing.T, noise config.NoiseLevel) *node.System {
	t.Helper()
	return node.NewSystem(config.TX2CX4(noise, 1, true), 2)
}

func TestMessageRateNearModel(t *testing.T) {
	sys := newSys(t, config.NoiseOff)
	defer sys.Shutdown()
	res := MessageRate(sys, Options{Windows: 12})
	// Paper's Equation-2 value: 264.97 ns.
	if math.Abs(res.MeanInjNs-264.97)/264.97 > 0.05 {
		t.Errorf("message-rate inverse %.2f vs 264.97", res.MeanInjNs)
	}
	if res.Messages != 12*sys.Cfg.Bench.Window {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestMessageRateBusyPosts(t *testing.T) {
	sys := newSys(t, config.NoiseOff)
	defer sys.Shutdown()
	res := MessageRate(sys, Options{Windows: 10})
	// Window (192) beyond queue depth (128): 64 busy posts per window.
	wantPerWindow := sys.Cfg.Bench.Window - sys.Cfg.Bench.SQDepth
	if int(res.BusyPosts) != 10*wantPerWindow {
		t.Errorf("busy posts = %d, want %d", res.BusyPosts, 10*wantPerWindow)
	}
	// The §6 Misc term: ~3 ns per op at these shapes (paper: 3.17).
	misc := float64(res.BusyPosts) * config.TabBusyPost / float64(res.Messages)
	if misc < 2 || misc > 4.5 {
		t.Errorf("Misc per op = %.2f ns", misc)
	}
}

func TestMessageRateWaitallAccounting(t *testing.T) {
	sys := newSys(t, config.NoiseOff)
	defer sys.Shutdown()
	res := MessageRate(sys, Options{Windows: 8})
	if res.WaitallTotalNs <= 0 {
		t.Fatal("waitall total not tracked")
	}
	// After deducting deferred LLP_posts, the §6 Post_prog lands near
	// 59.82 ns/op.
	postProg := (res.WaitallTotalNs - float64(res.BusyPosts)*config.TabLLPPost) / float64(res.Messages)
	if math.Abs(postProg-59.82)/59.82 > 0.10 {
		t.Errorf("Post_prog = %.2f ns/op, want ~59.82", postProg)
	}
}

// TestBenchmarksRunHandoffFree asserts both OSU drivers execute entirely on
// continuation task frames: zero kernel→goroutine handoffs over the whole
// run (the static gate in the root package keeps the sources clean; this
// checks the executions).
func TestBenchmarksRunHandoffFree(t *testing.T) {
	sys := newSys(t, config.NoiseOn)
	defer sys.Shutdown()
	MessageRate(sys, Options{Windows: 6})
	if h := sys.K.Handoffs(); h != 0 {
		t.Errorf("osu_mbw_mr performed %d goroutine handoffs, want 0", h)
	}
	sys2 := node.NewSystem(config.TX2CX4(config.NoiseOn, 2, true), 2)
	defer sys2.Shutdown()
	Latency(sys2, Options{Iters: 200})
	if h := sys2.K.Handoffs(); h != 0 {
		t.Errorf("osu_latency performed %d goroutine handoffs, want 0", h)
	}
}

func TestLatencyNearModel(t *testing.T) {
	sys := newSys(t, config.NoiseOff)
	defer sys.Shutdown()
	res := Latency(sys, Options{Iters: 500})
	if math.Abs(res.ReportedNs-config.TabE2ELatencyModel)/config.TabE2ELatencyModel > 0.05 {
		t.Errorf("latency %.2f vs model %.2f", res.ReportedNs, config.TabE2ELatencyModel)
	}
	if res.RTTs.N() != 500 {
		t.Errorf("samples = %d", res.RTTs.N())
	}
}

func TestLatencyNoisyWithinTolerance(t *testing.T) {
	sys := node.NewSystem(config.TX2CX4(config.NoiseOn, 3, true), 2)
	defer sys.Shutdown()
	res := Latency(sys, Options{Iters: 500})
	if math.Abs(res.ReportedNs-config.TabE2ELatencyModel)/config.TabE2ELatencyModel > 0.07 {
		t.Errorf("noisy latency %.2f vs model %.2f", res.ReportedNs, config.TabE2ELatencyModel)
	}
}

func TestSetupHookRuns(t *testing.T) {
	sys := newSys(t, config.NoiseOff)
	defer sys.Shutdown()
	called := false
	Latency(sys, Options{Iters: 50, Setup: func(r0, r1 *mpi.Rank) {
		called = true
		if r0 == nil || r1 == nil {
			t.Error("nil ranks in setup")
		}
	}})
	if !called {
		t.Error("setup hook not invoked")
	}
}

func TestStringers(t *testing.T) {
	if (&MessageRateResult{}).String() == "" || (&LatencyResult{}).String() == "" {
		t.Error("stringers broken")
	}
}
