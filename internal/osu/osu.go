// Package osu reimplements the two OSU microbenchmarks the paper validates
// its full-stack models against (§6):
//
//   - MessageRate (osu_mbw_mr-style): windows of MPI_Isend followed by
//     MPI_Waitall. Per the paper's footnote, the per-window send-receive
//     synchronization is removed for clean analysis: the receiver only
//     drives progress and sinks messages. The inverse of the measured rate
//     is the observed overall injection overhead.
//   - Latency (osu_latency-style): blocking MPI Send/Recv ping-pong;
//     reports half the round trip, the observed end-to-end latency.
package osu

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/mpi"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Options shapes an OSU run.
type Options struct {
	// Windows is the number of isend windows (message rate).
	Windows int
	// Window is the isends per window; defaults from config (chosen with
	// the queue depth so a realistic share of posts go busy).
	Window int
	// Iters is the ping-pong count (latency).
	Iters  int
	Warmup int
	// MsgSize is the user payload (8 bytes by default).
	MsgSize int
	// Setup, if set, runs after the communicator is built and before any
	// proc starts — the measurement methodology uses it to arm exactly
	// one profiling scope per run (paper §3).
	Setup func(r0, r1 *mpi.Rank)
	// Calibrate runs profiler overhead calibration on rank 0's node
	// before the benchmark.
	Calibrate bool
}

func (o *Options) defaults(cfg *config.Config) {
	if o.Windows == 0 {
		o.Windows = 20
	}
	if o.Window == 0 {
		o.Window = cfg.Bench.Window
	}
	if o.Iters == 0 {
		o.Iters = cfg.Bench.Iters
	}
	if o.Warmup == 0 {
		o.Warmup = cfg.Bench.Warmup
	}
	if o.MsgSize == 0 {
		o.MsgSize = 8
	}
}

// MessageRateResult reports an osu_mbw_mr-style run.
type MessageRateResult struct {
	Messages int
	Elapsed  units.Time
	// MsgRate is messages/second; MeanInjNs its inverse — the observed
	// overall injection overhead of §6.
	MsgRate   float64
	MeanInjNs float64
	// BusyPosts and WaitallTimeNs feed the §6 methodology (Post_prog and
	// Misc derivations).
	BusyPosts      uint64
	WaitallTotalNs float64
	Sender         *mpi.Rank
	Receiver       *mpi.Rank
}

// MessageRate runs the message-rate benchmark from rank 0 to rank 1.
func MessageRate(sys *node.System, opt Options) *MessageRateResult {
	opt.defaults(sys.Cfg)
	cfg := sys.Cfg
	comm := mpi.NewComm(sys.Nodes[:2], cfg, uct.PIOInline)
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	if opt.Setup != nil {
		opt.Setup(r0, r1)
	}
	res := &MessageRateResult{Sender: r0, Receiver: r1}

	totalMsgs := (opt.Windows + 1) * opt.Window // +1 warmup window
	data := make([]byte, opt.MsgSize)

	// Receiver: sink everything at the protocol level (no per-window
	// sync, per the paper's footnote).
	sys.K.Spawn("osu_mr.recv", func(p *sim.Proc) {
		r1.PreparePostedRecvs(p, 512)
		for int(r1.Worker.Stats.RecvCompletions+r1.Worker.Stats.UnexpectedMsgs) < totalMsgs {
			r1.Worker.Progress(p)
		}
	})

	sys.K.Spawn("osu_mr.send", func(p *sim.Proc) {
		if opt.Calibrate {
			r0.Node.Prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		}
		r0.PreparePostedRecvs(p, 512)
		window := func(tagBase int) {
			reqs := make([]*mpi.Request, opt.Window)
			for i := range reqs {
				reqs[i] = r0.Isend(p, 1, tagBase+i, data)
			}
			t0 := p.Now()
			r0.Waitall(p, reqs)
			res.WaitallTotalNs += (p.Now() - t0).Ns()
		}
		window(0) // warmup
		res.WaitallTotalNs = 0
		busy0 := r0.Worker.Stats.BusyPosts
		start := p.Now()
		for wnd := 0; wnd < opt.Windows; wnd++ {
			window((wnd + 1) * opt.Window)
			p.Advance(cfg.SW.BenchLoop.Sample(r0.Node.Rand))
		}
		res.Elapsed = p.Now() - start
		res.BusyPosts = r0.Worker.Stats.BusyPosts - busy0
	})
	sys.Run()

	res.Messages = opt.Windows * opt.Window
	res.MeanInjNs = res.Elapsed.Ns() / float64(res.Messages)
	res.MsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	return res
}

// LatencyResult reports an osu_latency-style run.
type LatencyResult struct {
	Iters int
	// ReportedNs is half the mean round trip — the observed end-to-end
	// latency of §6.
	ReportedNs float64
	RTTs       *stats.Sample
	Rank0      *mpi.Rank
	Rank1      *mpi.Rank
}

// Latency runs the blocking ping-pong between ranks 0 and 1. Sends are
// signaled every message here (the latency path does not batch completions),
// while the message-rate test keeps the configured unsignaled period.
func Latency(sys *node.System, opt Options) *LatencyResult {
	opt.defaults(sys.Cfg)
	cfg := *sys.Cfg // shallow copy: per-run signal period tweak
	cfg.Bench.SignalPeriod = 1
	comm := mpi.NewComm(sys.Nodes[:2], &cfg, uct.PIOInline)
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	if opt.Setup != nil {
		opt.Setup(r0, r1)
	}
	res := &LatencyResult{Iters: opt.Iters, RTTs: &stats.Sample{}, Rank0: r0, Rank1: r1}

	total := opt.Warmup + opt.Iters
	data := make([]byte, opt.MsgSize)

	sys.K.Spawn("osu_lat.rank1", func(p *sim.Proc) {
		r1.PreparePostedRecvs(p, 64)
		for i := 0; i < total; i++ {
			r1.Recv(p, 0, i)
			r1.Send(p, 0, i, data)
		}
	})

	sys.K.Spawn("osu_lat.rank0", func(p *sim.Proc) {
		if opt.Calibrate {
			r0.Node.Prof.Calibrate(p, cfg.Prof.CalibrationSamples)
		}
		r0.PreparePostedRecvs(p, 64)
		var start units.Time
		for i := 0; i < total; i++ {
			if i == opt.Warmup {
				start = p.Now()
			}
			t0 := p.Now()
			r0.Send(p, 1, i, data)
			r0.Recv(p, 1, i)
			p.Advance(cfg.SW.BenchLoop.Sample(r0.Node.Rand))
			if i >= opt.Warmup {
				res.RTTs.Add((p.Now() - t0).Ns())
			}
		}
		res.ReportedNs = (p.Now() - start).Ns() / float64(2*opt.Iters)
	})
	sys.Run()
	return res
}

// String renders the message-rate result.
func (r *MessageRateResult) String() string {
	return fmt.Sprintf("osu_mr: %d msgs in %v -> %.0f msg/s (%.2f ns/msg, %d busy posts)",
		r.Messages, r.Elapsed, r.MsgRate, r.MeanInjNs, r.BusyPosts)
}

// String renders the latency result.
func (r *LatencyResult) String() string {
	return fmt.Sprintf("osu_latency: %d iters -> %.2f ns one-way", r.Iters, r.ReportedNs)
}
