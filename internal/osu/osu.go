// Package osu reimplements the two OSU microbenchmarks the paper validates
// its full-stack models against (§6):
//
//   - MessageRate (osu_mbw_mr-style): windows of MPI_Isend followed by
//     MPI_Waitall. Per the paper's footnote, the per-window send-receive
//     synchronization is removed for clean analysis: the receiver only
//     drives progress and sinks messages. The inverse of the measured rate
//     is the observed overall injection overhead.
//   - Latency (osu_latency-style): blocking MPI Send/Recv ping-pong;
//     reports half the round trip, the observed end-to-end latency.
//
// Both drivers run as continuation tasks (sim.SpawnTask): the steady state
// executes with zero goroutine handoffs, each rank a resumable frame
// machine over the frame-based MPI layer.
package osu

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/mpi"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Options shapes an OSU run.
type Options struct {
	// Windows is the number of isend windows (message rate).
	Windows int
	// Window is the isends per window; defaults from config (chosen with
	// the queue depth so a realistic share of posts go busy).
	Window int
	// Iters is the ping-pong count (latency).
	Iters  int
	Warmup int
	// MsgSize is the user payload (8 bytes by default).
	MsgSize int
	// Setup, if set, runs after the communicator is built and before any
	// proc starts — the measurement methodology uses it to arm exactly
	// one profiling scope per run (paper §3).
	Setup func(r0, r1 *mpi.Rank)
	// Calibrate runs profiler overhead calibration on rank 0's node
	// before the benchmark.
	Calibrate bool
}

func (o *Options) defaults(cfg *config.Config) {
	if o.Windows == 0 {
		o.Windows = 20
	}
	if o.Window == 0 {
		o.Window = cfg.Bench.Window
	}
	if o.Iters == 0 {
		o.Iters = cfg.Bench.Iters
	}
	if o.Warmup == 0 {
		o.Warmup = cfg.Bench.Warmup
	}
	if o.MsgSize == 0 {
		o.MsgSize = 8
	}
}

// MessageRateResult reports an osu_mbw_mr-style run.
type MessageRateResult struct {
	Messages int
	Elapsed  units.Time
	// MsgRate is messages/second; MeanInjNs its inverse — the observed
	// overall injection overhead of §6.
	MsgRate   float64
	MeanInjNs float64
	// BusyPosts and WaitallTimeNs feed the §6 methodology (Post_prog and
	// Misc derivations).
	BusyPosts      uint64
	WaitallTotalNs float64
	Sender         *mpi.Rank
	Receiver       *mpi.Rank
}

// mrRecvFrame sinks everything at the protocol level (no per-window sync,
// per the paper's footnote).
type mrRecvFrame struct {
	r     *mpi.Rank
	total int
	pc    int
}

func (f *mrRecvFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.r.StartPreparePostedRecvs(t, 512)
			return
		case 1:
			if int(f.r.Worker.Stats.RecvCompletions+f.r.Worker.Stats.UnexpectedMsgs) >= f.total {
				t.Return()
				return
			}
			f.pc = 2
			f.r.Worker.StartProgress(t)
			return
		case 2:
			f.pc = 1
		}
	}
}

// mrSendFrame drives the isend windows: one warmup window, then the
// measured ones, mirroring the goroutine driver statement for statement.
type mrSendFrame struct {
	r   *mpi.Rank
	cfg *config.Config
	opt *Options
	res *MessageRateResult
	pc  int

	data    []byte
	reqs    []*mpi.Request
	i       int
	wnd     int
	tagBase int
	warmed  bool
	busy0   uint64
	t0      units.Time
	start   units.Time
}

func (f *mrSendFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			if f.opt.Calibrate {
				f.r.Node.Prof.Calibrate(t, f.cfg.Prof.CalibrationSamples)
			}
			f.pc = 10
			f.r.StartPreparePostedRecvs(t, 512)
			return
		case 10: // window start
			f.reqs = make([]*mpi.Request, f.opt.Window)
			f.i = 0
			f.pc = 11
		case 11: // post loop head
			if f.i < len(f.reqs) {
				f.pc = 12
				f.r.StartIsend(t, 1, f.tagBase+f.i, f.data)
				return
			}
			f.t0 = t.Now()
			f.pc = 13
			f.r.StartWaitall(t, f.reqs)
			return
		case 12:
			f.reqs[f.i] = f.r.LastIsend()
			f.i++
			f.pc = 11
		case 13: // window done
			f.res.WaitallTotalNs += (t.Now() - f.t0).Ns()
			if !f.warmed {
				// The warmup window just finished: reset and start the
				// measured region.
				f.warmed = true
				f.res.WaitallTotalNs = 0
				f.busy0 = f.r.Worker.Stats.BusyPosts
				f.start = t.Now()
			} else {
				t.Advance(f.cfg.SW.BenchLoop.Sample(f.r.Node.Rand))
				f.wnd++
			}
			if f.wnd < f.opt.Windows {
				f.tagBase = (f.wnd + 1) * f.opt.Window
				f.pc = 10
				continue
			}
			f.res.Elapsed = t.Now() - f.start
			f.res.BusyPosts = f.r.Worker.Stats.BusyPosts - f.busy0
			t.Return()
			return
		}
	}
}

// MessageRate runs the message-rate benchmark from rank 0 to rank 1.
func MessageRate(sys *node.System, opt Options) *MessageRateResult {
	opt.defaults(sys.Cfg)
	cfg := sys.Cfg
	comm := mpi.NewComm(sys.Nodes[:2], cfg, uct.PIOInline)
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	if opt.Setup != nil {
		opt.Setup(r0, r1)
	}
	res := &MessageRateResult{Sender: r0, Receiver: r1}

	totalMsgs := (opt.Windows + 1) * opt.Window // +1 warmup window
	data := make([]byte, opt.MsgSize)

	sys.K.SpawnTask("osu_mr.recv", &mrRecvFrame{r: r1, total: totalMsgs})
	sys.K.SpawnTask("osu_mr.send", &mrSendFrame{r: r0, cfg: cfg, opt: &opt, res: res, data: data})
	sys.Run()

	res.Messages = opt.Windows * opt.Window
	res.MeanInjNs = res.Elapsed.Ns() / float64(res.Messages)
	res.MsgRate = float64(res.Messages) / res.Elapsed.Seconds()
	return res
}

// LatencyResult reports an osu_latency-style run.
type LatencyResult struct {
	Iters int
	// ReportedNs is half the mean round trip — the observed end-to-end
	// latency of §6.
	ReportedNs float64
	RTTs       *stats.Sample
	Rank0      *mpi.Rank
	Rank1      *mpi.Rank
}

// latEchoFrame is rank 1 of the ping-pong: recv then send, total times.
type latEchoFrame struct {
	r     *mpi.Rank
	total int
	data  []byte
	pc    int
	i     int
}

func (f *latEchoFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			f.r.StartPreparePostedRecvs(t, 64)
			return
		case 1:
			if f.i >= f.total {
				t.Return()
				return
			}
			f.pc = 2
			f.r.StartRecv(t, 0, f.i)
			return
		case 2:
			f.pc = 3
			f.r.StartSend(t, 0, f.i, f.data)
			return
		case 3:
			f.i++
			f.pc = 1
		}
	}
}

// latPingFrame is rank 0 of the ping-pong: send then recv, timing the
// post-warmup round trips.
type latPingFrame struct {
	r   *mpi.Rank
	cfg *config.Config
	opt *Options
	res *LatencyResult
	pc  int

	data  []byte
	total int
	i     int
	t0    units.Time
	start units.Time
}

func (f *latPingFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			if f.opt.Calibrate {
				f.r.Node.Prof.Calibrate(t, f.cfg.Prof.CalibrationSamples)
			}
			f.pc = 1
			f.r.StartPreparePostedRecvs(t, 64)
			return
		case 1: // iteration head
			if f.i >= f.total {
				f.res.ReportedNs = (t.Now() - f.start).Ns() / float64(2*f.opt.Iters)
				t.Return()
				return
			}
			if f.i == f.opt.Warmup {
				f.start = t.Now()
			}
			f.t0 = t.Now()
			f.pc = 2
			f.r.StartSend(t, 1, f.i, f.data)
			return
		case 2:
			f.pc = 3
			f.r.StartRecv(t, 1, f.i)
			return
		case 3:
			t.Advance(f.cfg.SW.BenchLoop.Sample(f.r.Node.Rand))
			if f.i >= f.opt.Warmup {
				f.res.RTTs.Add((t.Now() - f.t0).Ns())
			}
			f.i++
			f.pc = 1
		}
	}
}

// Latency runs the blocking ping-pong between ranks 0 and 1. Sends are
// signaled every message here (the latency path does not batch completions),
// while the message-rate test keeps the configured unsignaled period.
func Latency(sys *node.System, opt Options) *LatencyResult {
	opt.defaults(sys.Cfg)
	cfg := *sys.Cfg // shallow copy: per-run signal period tweak
	cfg.Bench.SignalPeriod = 1
	comm := mpi.NewComm(sys.Nodes[:2], &cfg, uct.PIOInline)
	r0, r1 := comm.Ranks[0], comm.Ranks[1]
	if opt.Setup != nil {
		opt.Setup(r0, r1)
	}
	res := &LatencyResult{Iters: opt.Iters, RTTs: &stats.Sample{}, Rank0: r0, Rank1: r1}

	total := opt.Warmup + opt.Iters
	data := make([]byte, opt.MsgSize)

	sys.K.SpawnTask("osu_lat.rank1", &latEchoFrame{r: r1, total: total, data: data})
	sys.K.SpawnTask("osu_lat.rank0", &latPingFrame{r: r0, cfg: &cfg, opt: &opt, res: res, data: data, total: total})
	sys.Run()
	return res
}

// String renders the message-rate result.
func (r *MessageRateResult) String() string {
	return fmt.Sprintf("osu_mr: %d msgs in %v -> %.0f msg/s (%.2f ns/msg, %d busy posts)",
		r.Messages, r.Elapsed, r.MsgRate, r.MeanInjNs, r.BusyPosts)
}

// String renders the latency result.
func (r *LatencyResult) String() string {
	return fmt.Sprintf("osu_latency: %d iters -> %.2f ns one-way", r.Iters, r.ReportedNs)
}
