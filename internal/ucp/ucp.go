// Package ucp implements the high-level communication protocols (the HLP's
// lower half): a UCP-style layer on top of uct providing tagged,
// request-based nonblocking sends and receives.
//
// It reproduces the protocol behaviours the paper's §6 analysis depends on:
//
//   - Unsignaled completions: only every c-th transport post is signaled;
//     one CQE retires the whole batch, amortizing progress cost (c = 64).
//   - Pending queue: a busy post (transmit queue full) is queued and its
//     LLP_post is executed later, during progress — so initiation cost moves
//     into the progress phase, which the paper's measurement methodology
//     explicitly corrects for.
//   - Registered callbacks: completions run upper-layer (MPICH) callbacks
//     from inside the progress call chain, before uct_worker_progress
//     returns.
package ucp

import (
	"encoding/binary"
	"fmt"

	"breakband/internal/config"
	"breakband/internal/profile"
	"breakband/internal/sim"
	"breakband/internal/uct"
)

// amEager is the active-message id carrying eager tagged messages.
const amEager uint8 = 1

// tagHeaderBytes is the eager protocol header (the 8-byte tag).
const tagHeaderBytes = 8

// MaxEager is the largest payload an eager short send can carry.
const MaxEager = 32 - tagHeaderBytes

// MaxBcopy is the largest payload the eager buffered-copy path carries
// (larger transfers would use a rendezvous protocol, out of scope for the
// paper's small-message analysis).
const MaxBcopy = uct.MaxBcopy - tagHeaderBytes

// Callback is an upper-layer completion callback, invoked from inside
// progress.
type Callback func(p *sim.Proc)

// Request is a nonblocking operation handle.
type Request struct {
	completed bool
	cb        Callback
	// recv-side fields
	tag  uint64
	data []byte
}

// Completed reports whether the operation has finished.
func (r *Request) Completed() bool { return r.completed }

// Data returns the received payload (valid once a receive completes).
func (r *Request) Data() []byte { return r.data }

type pendingPost struct {
	ep      *Ep
	payload []byte
	req     *Request
}

type unexpMsg struct {
	tag  uint64
	data []byte
}

// Stats counts UCP-level events.
type Stats struct {
	Sends, Recvs    uint64
	BusyPosts       uint64
	PendingExecuted uint64
	SendCompletions uint64
	RecvCompletions uint64
	UnexpectedMsgs  uint64
}

// Worker is the UCP progress context on one core.
type Worker struct {
	Uct *uct.Worker
	Cfg *config.Config

	// inflight tracks successfully posted, uncompleted sends in post
	// order (the reliable connection completes in order).
	inflight []*Request
	pending  []pendingPost

	expected   []*Request
	unexpected []unexpMsg

	// ProfRecvCB, when set, profiles the UCP receive callback (including
	// the nested upper-layer callback, as real instrumentation wrapping
	// the registered callback would) under scope "ucp_recv_cb".
	ProfRecvCB bool

	Stats Stats
}

// NewWorker wraps a uct worker. It registers the send-completion and
// active-message callbacks with the LLP.
func NewWorker(u *uct.Worker, cfg *config.Config) *Worker {
	w := &Worker{Uct: u, Cfg: cfg}
	u.SetSendCompletion(w.onSendComplete)
	u.SetAmHandler(amEager, w.onEager)
	return w
}

// Ep is a UCP endpoint bound to a uct endpoint.
type Ep struct {
	W     *Worker
	UctEp *uct.Ep
}

// NewEp creates a UCP endpoint over a fresh uct endpoint using the
// configured unsignaled-completion period.
func (w *Worker) NewEp(mode uct.PostMode) *Ep {
	return &Ep{W: w, UctEp: w.Uct.NewEp(mode, w.Cfg.Bench.SignalPeriod)}
}

// encodeEager builds the eager wire payload: 8-byte tag header + data.
func encodeEager(tag uint64, data []byte) []byte {
	buf := make([]byte, tagHeaderBytes+len(data))
	binary.LittleEndian.PutUint64(buf, tag)
	copy(buf[tagHeaderBytes:], data)
	return buf
}

// TagSendNB initiates a nonblocking tagged send (ucp_tag_send_nb). cb runs
// when the operation completes. A full transmit queue does not fail the
// operation: it is queued as pending and posted during progress. Payloads up
// to MaxEager go through the inline short path; larger ones (to MaxBcopy)
// through the buffered-copy path, as UCX selects by size.
func (e *Ep) TagSendNB(p *sim.Proc, tag uint64, data []byte, cb Callback) (*Request, error) {
	w := e.W
	if len(data) > MaxBcopy {
		return nil, fmt.Errorf("ucp: eager send limited to %d bytes, got %d", MaxBcopy, len(data))
	}
	p.Advance(w.Cfg.SW.UcpIsend.Sample(w.Uct.Node.Rand))
	w.Stats.Sends++
	req := &Request{cb: cb}
	payload := encodeEager(tag, data)
	var err error
	if len(data) <= MaxEager {
		err = e.UctEp.AmShort(p, amEager, payload)
	} else {
		err = e.UctEp.AmBcopy(p, amEager, payload)
	}
	switch err {
	case nil:
		w.inflight = append(w.inflight, req)
	case uct.ErrNoResource:
		// Busy post: schedule for execution during progress (paper §6
		// caveat one).
		w.Stats.BusyPosts++
		p.Advance(w.Cfg.SW.UcpPending.Sample(w.Uct.Node.Rand))
		w.pending = append(w.pending, pendingPost{ep: e, payload: payload, req: req})
	default:
		return nil, err
	}
	return req, nil
}

// TagRecvNB posts a nonblocking tagged receive (matching is exact-tag; the
// benchmarks and examples do not use wildcards).
func (w *Worker) TagRecvNB(p *sim.Proc, tag uint64, cb Callback) *Request {
	w.Stats.Recvs++
	req := &Request{cb: cb, tag: tag}
	// Check the unexpected queue first.
	for i, m := range w.unexpected {
		if m.tag == tag {
			w.unexpected = append(w.unexpected[:i], w.unexpected[i+1:]...)
			w.completeRecv(p, req, m.data)
			return req
		}
	}
	w.expected = append(w.expected, req)
	return req
}

// Progress drives the pending queue and the LLP (ucp_worker_progress). It
// returns the number of LLP operations retired.
func (w *Worker) Progress(p *sim.Proc) int {
	p.Advance(w.Cfg.SW.UcpProgress.Sample(w.Uct.Node.Rand))
	// Execute deferred LLP_posts for busy posts while slots are free.
	for len(w.pending) > 0 && w.pending[0].ep.UctEp.FreeSlots() > 0 {
		pp := w.pending[0]
		post := pp.ep.UctEp.AmShort
		if len(pp.payload) > tagHeaderBytes+MaxEager {
			post = pp.ep.UctEp.AmBcopy
		}
		if err := post(p, amEager, pp.payload); err != nil {
			break // raced with another consumer of the slot
		}
		w.pending = w.pending[1:]
		w.inflight = append(w.inflight, pp.req)
		w.Stats.PendingExecuted++
	}
	return w.Uct.Progress(p)
}

// onSendComplete retires the n oldest in-flight sends (one signaled CQE
// covers a whole unsignaled batch).
func (w *Worker) onSendComplete(p *sim.Proc, n int) {
	if n > len(w.inflight) {
		panic(fmt.Sprintf("ucp: completion for %d sends with only %d in flight", n, len(w.inflight)))
	}
	done := w.inflight[:n]
	w.inflight = w.inflight[n:]
	for _, req := range done {
		p.Advance(w.Cfg.SW.UcpSendCB.Sample(w.Uct.Node.Rand))
		req.completed = true
		w.Stats.SendCompletions++
		if req.cb != nil {
			req.cb(p)
		}
	}
}

// onEager handles an arriving eager message inside uct progress.
func (w *Worker) onEager(p *sim.Proc, payload []byte) {
	if len(payload) < tagHeaderBytes {
		panic("ucp: short eager payload")
	}
	tag := binary.LittleEndian.Uint64(payload)
	data := append([]byte(nil), payload[tagHeaderBytes:]...)
	for i, req := range w.expected {
		if req.tag == tag {
			w.expected = append(w.expected[:i], w.expected[i+1:]...)
			w.completeRecv(p, req, data)
			return
		}
	}
	w.Stats.UnexpectedMsgs++
	w.unexpected = append(w.unexpected, unexpMsg{tag: tag, data: data})
}

// completeRecv runs the UCP receive callback (its cost is the paper's
// "Callback for a completed MPI_Irecv in UCP") and then the registered
// upper-layer callback.
func (w *Worker) completeRecv(p *sim.Proc, req *Request, data []byte) {
	var tok profile.Token
	if w.ProfRecvCB {
		tok = w.Uct.Node.Prof.BeginAnon(p)
	}
	p.Advance(w.Cfg.SW.UcpRecvCB.Sample(w.Uct.Node.Rand))
	req.data = data
	req.completed = true
	w.Stats.RecvCompletions++
	if req.cb != nil {
		req.cb(p)
	}
	if w.ProfRecvCB {
		w.Uct.Node.Prof.EndAs(p, tok, "ucp_recv_cb")
	}
}
