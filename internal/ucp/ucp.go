// Package ucp implements the high-level communication protocols (the HLP's
// lower half): a UCP-style layer on top of uct providing tagged,
// request-based nonblocking sends and receives.
//
// It reproduces the protocol behaviours the paper's §6 analysis depends on:
//
//   - Unsignaled completions: only every c-th transport post is signaled;
//     one CQE retires the whole batch, amortizing progress cost (c = 64).
//   - Pending queue: a busy post (transmit queue full) is queued and its
//     LLP_post is executed later, during progress — so initiation cost moves
//     into the progress phase, which the paper's measurement methodology
//     explicitly corrects for.
//   - Registered callbacks: completions run upper-layer (MPICH) callbacks
//     from inside the progress call chain, before uct_worker_progress
//     returns.
//
// Like internal/uct, the data path is written as resumable sim.Frame state
// machines: continuation tasks use StartTagSend/StartProgress plus the Last*
// getters, while blocking tasks (Proc.Task) use the synchronous wrappers.
// One task may drive a Worker (and each Ep) at a time.
package ucp

import (
	"encoding/binary"
	"fmt"

	"breakband/internal/config"
	"breakband/internal/profile"
	"breakband/internal/sim"
	"breakband/internal/uct"
)

// amEager is the active-message id carrying eager tagged messages.
const amEager uint8 = 1

// tagHeaderBytes is the eager protocol header (the 8-byte tag).
const tagHeaderBytes = 8

// MaxEager is the largest payload an eager short send can carry.
const MaxEager = 32 - tagHeaderBytes

// MaxBcopy is the largest payload the eager buffered-copy path carries
// (larger transfers would use a rendezvous protocol, out of scope for the
// paper's small-message analysis).
const MaxBcopy = uct.MaxBcopy - tagHeaderBytes

// Callback is an upper-layer completion callback, invoked from inside
// progress. It must be pause-free (Advance only).
type Callback func(t *sim.Task)

// Request is a nonblocking operation handle.
type Request struct {
	completed bool
	err       error
	cb        Callback
	// recv-side fields
	tag  uint64
	data []byte
}

// Completed reports whether the operation has finished — successfully or
// with an error (every request terminates; inspect Err to distinguish).
func (r *Request) Completed() bool { return r.completed }

// Err reports the failure that terminated the request, nil on success (or
// while still in flight). A send fails when its endpoint's QP enters the
// error state (retry exhaustion against a dead peer, a local NIC crash); a
// receive fails when it is cancelled against an errored endpoint.
func (r *Request) Err() error { return r.err }

// Data returns the received payload (valid once a receive completes).
func (r *Request) Data() []byte { return r.data }

// inflightSend pairs a posted-but-uncompleted send with the endpoint that
// carries it, so error completions can be attributed to the right requests.
type inflightSend struct {
	req *Request
	ep  *uct.Ep
}

type pendingPost struct {
	ep      *Ep
	payload []byte
	req     *Request
}

type unexpMsg struct {
	tag  uint64
	data []byte
}

// Stats counts UCP-level events.
type Stats struct {
	Sends, Recvs    uint64
	BusyPosts       uint64
	PendingExecuted uint64
	SendCompletions uint64
	RecvCompletions uint64
	UnexpectedMsgs  uint64
	// SendFailures and RecvFailures count requests terminated with an
	// error instead of a delivery (endpoint failure propagation).
	SendFailures uint64
	RecvFailures uint64
}

// Worker is the UCP progress context on one core.
type Worker struct {
	Uct *uct.Worker
	Cfg *config.Config

	// inflight tracks successfully posted, uncompleted sends in post
	// order (the reliable connection completes in order), each tagged
	// with its carrying endpoint for error attribution.
	inflight []inflightSend
	pending  []pendingPost

	expected   []*Request
	unexpected []unexpMsg

	// ProfRecvCB, when set, profiles the UCP receive callback (including
	// the nested upper-layer callback, as real instrumentation wrapping
	// the registered callback would) under scope "ucp_recv_cb".
	ProfRecvCB bool

	Stats Stats

	progF progressFrame
}

// NewWorker wraps a uct worker. It registers the send-completion and
// active-message callbacks with the LLP.
func NewWorker(u *uct.Worker, cfg *config.Config) *Worker {
	w := &Worker{Uct: u, Cfg: cfg}
	w.progF.w = w
	u.SetSendCompletion(w.onSendComplete)
	u.SetAmHandler(amEager, w.onEager)
	return w
}

// Ep is a UCP endpoint bound to a uct endpoint.
type Ep struct {
	W     *Worker
	UctEp *uct.Ep

	sendF tagSendFrame
}

// NewEp creates a UCP endpoint over a fresh uct endpoint using the
// configured unsignaled-completion period.
func (w *Worker) NewEp(mode uct.PostMode) *Ep {
	e := &Ep{W: w, UctEp: w.Uct.NewEp(mode, w.Cfg.Bench.SignalPeriod)}
	e.sendF.e = e
	return e
}

// Err reports the transport failure recorded on the underlying endpoint
// (nil while healthy). Once set, sends short-circuit with the error and
// posted receives from this peer can be cancelled — see CancelRecv.
func (e *Ep) Err() error { return e.UctEp.Err }

// encodeEager builds the eager wire payload: 8-byte tag header + data.
func encodeEager(tag uint64, data []byte) []byte {
	buf := make([]byte, tagHeaderBytes+len(data))
	binary.LittleEndian.PutUint64(buf, tag)
	copy(buf[tagHeaderBytes:], data)
	return buf
}

// StartTagSend initiates a nonblocking tagged send (ucp_tag_send_nb). cb
// runs when the operation completes. A full transmit queue does not fail the
// operation: it is queued as pending and posted during progress. Payloads up
// to MaxEager go through the inline short path; larger ones (to MaxBcopy)
// through the buffered-copy path, as UCX selects by size. The request and
// initiation error are reported by LastSend once the frame returns.
func (e *Ep) StartTagSend(t *sim.Task, tag uint64, data []byte, cb Callback) {
	f := &e.sendF
	f.pc = 0
	f.tag = tag
	f.data = data
	f.cb = cb
	t.Call(f)
}

// LastSend reports the outcome of the most recently completed tag-send
// frame.
func (e *Ep) LastSend() (*Request, error) { return e.sendF.res, e.sendF.err }

// TagSendNB is the synchronous form of StartTagSend for blocking tasks.
func (e *Ep) TagSendNB(t *sim.Task, tag uint64, data []byte, cb Callback) (*Request, error) {
	t.BlockingOnly("ucp.Ep.TagSendNB")
	e.StartTagSend(t, tag, data, cb)
	return e.sendF.res, e.sendF.err
}

// tagSendFrame runs the eager tagged-send initiation.
type tagSendFrame struct {
	e    *Ep
	pc   int
	tag  uint64
	data []byte
	cb   Callback

	payload []byte
	req     *Request
	res     *Request
	err     error
}

func (f *tagSendFrame) Step(t *sim.Task) {
	e := f.e
	w := e.W
	for {
		switch f.pc {
		case 0:
			if len(f.data) > MaxBcopy {
				f.res, f.err = nil, fmt.Errorf("ucp: eager send limited to %d bytes, got %d", MaxBcopy, len(f.data))
				t.Return()
				return
			}
			t.Advance(w.Cfg.SW.UcpIsend.Sample(w.Uct.Node.Rand))
			w.Stats.Sends++
			f.req = &Request{cb: f.cb}
			f.payload = encodeEager(f.tag, f.data)
			f.pc = 1
			if len(f.data) <= MaxEager {
				e.UctEp.StartAmShort(t, amEager, f.payload)
			} else {
				e.UctEp.StartAmBcopy(t, amEager, f.payload)
			}
			return
		case 1:
			switch err := e.UctEp.LastPost(); err {
			case nil:
				w.inflight = append(w.inflight, inflightSend{req: f.req, ep: e.UctEp})
			case uct.ErrNoResource:
				// Busy post: schedule for execution during progress
				// (paper §6 caveat one).
				w.Stats.BusyPosts++
				t.Advance(w.Cfg.SW.UcpPending.Sample(w.Uct.Node.Rand))
				w.pending = append(w.pending, pendingPost{ep: e, payload: f.payload, req: f.req})
			default:
				f.res, f.err = nil, err
				t.Return()
				return
			}
			f.res, f.err = f.req, nil
			f.req = nil
			f.data = nil
			f.payload = nil
			t.Return()
			return
		}
	}
}

// TagRecvNB posts a nonblocking tagged receive (matching is exact-tag; the
// benchmarks and examples do not use wildcards). It is pause-free, so it
// works identically on continuation and blocking tasks and needs no Start
// form.
func (w *Worker) TagRecvNB(t *sim.Task, tag uint64, cb Callback) *Request {
	w.Stats.Recvs++
	req := &Request{cb: cb, tag: tag}
	// Check the unexpected queue first.
	for i, m := range w.unexpected {
		if m.tag == tag {
			w.unexpected = append(w.unexpected[:i], w.unexpected[i+1:]...)
			w.completeRecv(t, req, m.data)
			return req
		}
	}
	w.expected = append(w.expected, req)
	return req
}

// StartProgress begins one ucp_worker_progress: drive the pending queue,
// then the LLP. The number of LLP operations retired is reported by
// LastProgress once the frame returns.
func (w *Worker) StartProgress(t *sim.Task) {
	w.progF.pc = 0
	t.Call(&w.progF)
}

// LastProgress reports the LLP operation count retired by the most recently
// completed progress frame.
func (w *Worker) LastProgress() int { return w.progF.n }

// Progress is the synchronous form of StartProgress for blocking tasks.
func (w *Worker) Progress(t *sim.Task) int {
	t.BlockingOnly("ucp.Worker.Progress")
	w.StartProgress(t)
	return w.progF.n
}

// progressFrame executes deferred LLP_posts for busy posts while slots are
// free, then runs one LLP progress.
type progressFrame struct {
	w  *Worker
	pc int
	n  int
}

func (f *progressFrame) Step(t *sim.Task) {
	w := f.w
	for {
		switch f.pc {
		case 0:
			t.Advance(w.Cfg.SW.UcpProgress.Sample(w.Uct.Node.Rand))
			f.pc = 1
		case 1:
			if len(w.pending) == 0 || w.pending[0].ep.UctEp.FreeSlots() == 0 {
				f.pc = 3
				continue
			}
			pp := w.pending[0]
			f.pc = 2
			if len(pp.payload) > tagHeaderBytes+MaxEager {
				pp.ep.UctEp.StartAmBcopy(t, amEager, pp.payload)
			} else {
				pp.ep.UctEp.StartAmShort(t, amEager, pp.payload)
			}
			return
		case 2:
			pp := w.pending[0]
			switch err := pp.ep.UctEp.LastPost(); {
			case err == nil:
				w.pending = w.pending[1:]
				w.inflight = append(w.inflight, inflightSend{req: pp.req, ep: pp.ep.UctEp})
				w.Stats.PendingExecuted++
				f.pc = 1
			case err == uct.ErrNoResource:
				// Raced with another consumer of the slot.
				f.pc = 3
			default:
				// The endpoint failed while the post sat in the pending
				// queue; it will never be transmitted. Terminate the
				// request with the error instead of retrying forever.
				w.pending = w.pending[1:]
				w.failSend(t, pp.req, err)
				f.pc = 1
			}
		case 3:
			f.pc = 4
			w.Uct.StartProgress(t)
			return
		case 4:
			f.n = w.Uct.LastProgress()
			t.Return()
			return
		}
	}
}

// onSendComplete retires the n oldest in-flight sends (one signaled CQE
// covers a whole unsignaled batch). A successful completion retires the
// globally oldest n — the reliable connection completes in order. An error
// completion (the endpoint's QP failed and flushed its queue) retires the
// oldest n posted on that endpoint, terminating each with the error: the
// other endpoints' in-flight sends are unaffected.
func (w *Worker) onSendComplete(t *sim.Task, ep *uct.Ep, n int, err error) {
	if err != nil {
		for i := 0; i < len(w.inflight) && n > 0; {
			if w.inflight[i].ep != ep {
				i++
				continue
			}
			req := w.inflight[i].req
			w.inflight = append(w.inflight[:i], w.inflight[i+1:]...)
			n--
			w.failSend(t, req, err)
		}
		return
	}
	if n > len(w.inflight) {
		panic(fmt.Sprintf("ucp: completion for %d sends with only %d in flight", n, len(w.inflight)))
	}
	done := w.inflight[:n]
	w.inflight = w.inflight[n:]
	for _, s := range done {
		t.Advance(w.Cfg.SW.UcpSendCB.Sample(w.Uct.Node.Rand))
		s.req.completed = true
		w.Stats.SendCompletions++
		if s.req.cb != nil {
			s.req.cb(t)
		}
	}
}

// failSend terminates a send request with an error; the upper-layer
// callback still runs so MPI request machinery observes the completion.
func (w *Worker) failSend(t *sim.Task, req *Request, err error) {
	req.err = err
	req.completed = true
	w.Stats.SendFailures++
	if req.cb != nil {
		req.cb(t)
	}
}

// CancelRecv terminates a posted-but-unmatched receive with an error (the
// source endpoint died and nothing will arrive). It reports false if the
// request is no longer expected — it already completed, possibly with data
// that arrived before the failure. Mirrors the CQEFlushErr contract: flushed
// operations complete with an error instead of hanging.
func (w *Worker) CancelRecv(t *sim.Task, req *Request, err error) bool {
	for i, q := range w.expected {
		if q == req {
			w.expected = append(w.expected[:i], w.expected[i+1:]...)
			req.err = err
			req.completed = true
			w.Stats.RecvFailures++
			if req.cb != nil {
				req.cb(t)
			}
			return true
		}
	}
	return false
}

// onEager handles an arriving eager message inside uct progress.
func (w *Worker) onEager(t *sim.Task, payload []byte) {
	if len(payload) < tagHeaderBytes {
		panic("ucp: short eager payload")
	}
	tag := binary.LittleEndian.Uint64(payload)
	data := append([]byte(nil), payload[tagHeaderBytes:]...)
	for i, req := range w.expected {
		if req.tag == tag {
			w.expected = append(w.expected[:i], w.expected[i+1:]...)
			w.completeRecv(t, req, data)
			return
		}
	}
	w.Stats.UnexpectedMsgs++
	w.unexpected = append(w.unexpected, unexpMsg{tag: tag, data: data})
}

// completeRecv runs the UCP receive callback (its cost is the paper's
// "Callback for a completed MPI_Irecv in UCP") and then the registered
// upper-layer callback.
func (w *Worker) completeRecv(t *sim.Task, req *Request, data []byte) {
	var tok profile.Token
	if w.ProfRecvCB {
		tok = w.Uct.Node.Prof.BeginAnon(t)
	}
	t.Advance(w.Cfg.SW.UcpRecvCB.Sample(w.Uct.Node.Rand))
	req.data = data
	req.completed = true
	w.Stats.RecvCompletions++
	if req.cb != nil {
		req.cb(t)
	}
	if w.ProfRecvCB {
		w.Uct.Node.Prof.EndAs(t, tok, "ucp_recv_cb")
	}
}
