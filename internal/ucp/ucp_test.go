package ucp

import (
	"bytes"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/uct"
	"breakband/internal/units"
)

func harness(t *testing.T, signalPeriod int) (*node.System, *Worker, *Worker, *Ep, *Ep) {
	t.Helper()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Bench.SignalPeriod = signalPeriod
	sys := node.NewSystem(cfg, 2)
	u0 := uct.NewWorker(sys.Nodes[0], cfg)
	u1 := uct.NewWorker(sys.Nodes[1], cfg)
	w0 := NewWorker(u0, cfg)
	w1 := NewWorker(u1, cfg)
	e0 := w0.NewEp(uct.PIOInline)
	e1 := w1.NewEp(uct.PIOInline)
	uct.Connect(e0.UctEp, e1.UctEp)
	return sys, w0, w1, e0, e1
}

func TestTagSendRecv(t *testing.T) {
	sys, w0, w1, e0, e1 := harness(t, 1)
	defer sys.Shutdown()
	payload := []byte{1, 2, 3}
	var sendDone, recvDone bool
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		e1.UctEp.PostRecvs(tk, 8)
		req := w1.TagRecvNB(tk, 42, func(cp *sim.Task) { recvDone = true })
		for !req.Completed() {
			w1.Progress(tk)
		}
		if !bytes.Equal(req.Data(), payload) {
			t.Errorf("received %v", req.Data())
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		req, err := e0.TagSendNB(tk, 42, payload, func(cp *sim.Task) { sendDone = true })
		if err != nil {
			t.Fatalf("send: %v", err)
		}
		for !req.Completed() {
			w0.Progress(tk)
		}
	})
	sys.Run()
	if !sendDone || !recvDone {
		t.Errorf("callbacks: send=%v recv=%v", sendDone, recvDone)
	}
}

func TestUnexpectedMessage(t *testing.T) {
	sys, w0, w1, e0, e1 := harness(t, 1)
	defer sys.Shutdown()
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		e1.UctEp.PostRecvs(tk, 8)
		// Drive progress without a posted receive: the message must
		// land in the unexpected queue.
		for w1.Stats.UnexpectedMsgs == 0 {
			w1.Progress(tk)
		}
		// A matching receive posted afterwards completes immediately.
		req := w1.TagRecvNB(tk, 9, nil)
		if !req.Completed() {
			t.Error("late receive did not match the unexpected queue")
		}
		if !bytes.Equal(req.Data(), []byte{0xFF}) {
			t.Errorf("unexpected payload = %v", req.Data())
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		if _, err := e0.TagSendNB(tk, 9, []byte{0xFF}, nil); err != nil {
			t.Fatal(err)
		}
		for w0.Uct.Stats.SendCQEs == 0 {
			w0.Progress(tk)
		}
	})
	sys.Run()
}

func TestPendingBusyPosts(t *testing.T) {
	sys, w0, w1, e0, e1 := harness(t, 64)
	defer sys.Shutdown()
	depth := e0.UctEp.QP().SQ.Depth
	// A multiple of the unsignaled period past the queue depth, so the
	// final batch is retired by a signaled CQE (real UCX would flush a
	// ragged tail; the benchmarks always post aligned windows).
	n := depth + 64
	var completed int
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		e1.UctEp.PostRecvs(tk, 512)
		for int(w1.Stats.RecvCompletions+w1.Stats.UnexpectedMsgs) < n {
			w1.Progress(tk)
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		reqs := make([]*Request, 0, n)
		for i := 0; i < n; i++ {
			req, err := e0.TagSendNB(tk, uint64(i), []byte{byte(i)}, func(cp *sim.Task) { completed++ })
			if err != nil {
				t.Fatalf("send %d: %v", i, err)
			}
			reqs = append(reqs, req)
		}
		if w0.Stats.BusyPosts == 0 {
			t.Error("expected busy posts beyond the queue depth")
		}
		for {
			all := true
			for _, r := range reqs {
				if !r.Completed() {
					all = false
					break
				}
			}
			if all {
				break
			}
			w0.Progress(tk)
		}
	})
	sys.Run()
	if completed != n {
		t.Errorf("completed %d of %d", completed, n)
	}
	if w0.Stats.PendingExecuted != w0.Stats.BusyPosts {
		t.Errorf("pending executed %d != busy posts %d", w0.Stats.PendingExecuted, w0.Stats.BusyPosts)
	}
}

func TestUnsignaledBatchCompletion(t *testing.T) {
	sys, w0, w1, e0, e1 := harness(t, 8)
	defer sys.Shutdown()
	const n = 16
	var completions int
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		e1.UctEp.PostRecvs(tk, 64)
		for int(w1.Stats.RecvCompletions+w1.Stats.UnexpectedMsgs) < n {
			w1.Progress(tk)
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		for i := 0; i < n; i++ {
			if _, err := e0.TagSendNB(tk, uint64(i), []byte{1}, func(cp *sim.Task) { completions++ }); err != nil {
				t.Fatal(err)
			}
		}
		for completions < n {
			w0.Progress(tk)
		}
	})
	sys.Run()
	// 16 sends at c=8 -> exactly 2 transport CQEs.
	if got := w0.Uct.Stats.SendCQEs; got != 2 {
		t.Errorf("send CQEs = %d, want 2", got)
	}
}

func TestEagerSizeLimit(t *testing.T) {
	sys, _, _, e0, _ := harness(t, 1)
	defer sys.Shutdown()
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		if _, err := e0.TagSendNB(tk, 1, make([]byte, MaxBcopy+1), nil); err == nil {
			t.Error("oversized eager send accepted")
		}
	})
	sys.Run()
}

func TestBcopyPathSendRecv(t *testing.T) {
	sys, w0, w1, e0, e1 := harness(t, 1)
	defer sys.Shutdown()
	payload := make([]byte, 2048) // beyond MaxEager: buffered-copy path
	for i := range payload {
		payload[i] = byte(i)
	}
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		e1.UctEp.PostRecvs(tk, 8)
		req := w1.TagRecvNB(tk, 3, nil)
		for !req.Completed() {
			w1.Progress(tk)
		}
		if !bytes.Equal(req.Data(), payload) {
			t.Error("bcopy payload corrupted")
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		req, err := e0.TagSendNB(tk, 3, payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		for !req.Completed() {
			w0.Progress(tk)
		}
	})
	sys.Run()
}
