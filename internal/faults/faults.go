package faults

import (
	"fmt"
	"sort"

	"breakband/internal/rng"
	"breakband/internal/units"
)

// ScriptedDrop drops exactly the N-th frame (1-based, in per-link transmit
// order) that departs the named port.
type ScriptedDrop struct {
	Port string
	N    uint64
}

// Flap takes the named port's link down at Down and restores it at Up
// (absolute simulation times). While down the port transmits nothing, its
// queued frames are dropped, and — where the topology has path redundancy —
// ECMP routes divert around it.
type Flap struct {
	Port string
	Down units.Time
	Up   units.Time
}

// Crash schedules an endpoint failure: the named node's NIC goes dark at At.
// Inbound frames are discarded, every QP fails locally with a fatal error
// CQE, posted receives are flushed, and peers discover the death through
// their own ACK-timeout → retry-exhaustion path. RestartAt, when nonzero,
// brings the NIC back up at that time with its QP table wiped: recovery
// requires fresh-epoch QPs (software reconnects; the dead generation's QPs
// stay errored forever).
type Crash struct {
	Node      int
	At        units.Time
	RestartAt units.Time // zero: the node stays dead
}

// Pause stalls the named node's host between At and Resume: the endpoint→RC
// PCIe issue path parks every upstream TLP (the model of a GC pause, an OS
// scheduling stall, or SMI jitter). The NIC keeps receiving but cannot
// complete host-memory writes, so its bounded rx buffering fills and the
// node answers with RNR NAKs until the host resumes.
type Pause struct {
	Node   int
	At     units.Time
	Resume units.Time
}

// Config declares a deterministic fault schedule. The zero Config injects
// nothing and costs nothing (Enabled reports false and the delivery layers
// keep their fault hooks nil).
type Config struct {
	// DropRate is the per-frame Bernoulli probability that a departing
	// frame is lost on the wire, applied to every link. In [0, 1].
	DropRate float64
	// CorruptRate is the per-frame Bernoulli probability that a departing
	// frame arrives with a bad CRC and is discarded at the next
	// store-and-forward check. In [0, 1]; drop is decided first, so at most
	// one fault applies per frame.
	CorruptRate float64
	// DropNth lists scripted one-shot drops.
	DropNth []ScriptedDrop
	// Flaps lists link down/up windows.
	Flaps []Flap
	// Crashes lists endpoint NIC failures (with optional restart).
	Crashes []Crash
	// Pauses lists host PCIe-issue stall windows.
	Pauses []Pause
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	return c.DropRate > 0 || c.CorruptRate > 0 || len(c.DropNth) > 0 ||
		len(c.Flaps) > 0 || len(c.Crashes) > 0 || len(c.Pauses) > 0
}

// Validate checks the schedule: rates must lie in [0, 1], scripted drops
// must name a port and a positive ordinal, and flaps must name a port and
// go down strictly before they come back up.
func (c *Config) Validate() error {
	if c.DropRate < 0 || c.DropRate > 1 {
		return fmt.Errorf("faults: drop rate %v outside [0, 1]", c.DropRate)
	}
	if c.CorruptRate < 0 || c.CorruptRate > 1 {
		return fmt.Errorf("faults: corrupt rate %v outside [0, 1]", c.CorruptRate)
	}
	if c.DropRate+c.CorruptRate > 1 {
		return fmt.Errorf("faults: drop rate %v + corrupt rate %v exceeds 1", c.DropRate, c.CorruptRate)
	}
	for _, d := range c.DropNth {
		if d.Port == "" {
			return fmt.Errorf("faults: scripted drop without a port name")
		}
		if d.N == 0 {
			return fmt.Errorf("faults: scripted drop on %q: frame ordinals are 1-based, got 0", d.Port)
		}
	}
	for _, f := range c.Flaps {
		if f.Port == "" {
			return fmt.Errorf("faults: flap without a port name")
		}
		if f.Down >= f.Up {
			return fmt.Errorf("faults: flap on %q: down %v >= up %v", f.Port, f.Down, f.Up)
		}
	}
	for _, cr := range c.Crashes {
		if cr.Node < 0 {
			return fmt.Errorf("faults: crash on negative node %d", cr.Node)
		}
		if cr.RestartAt != 0 && cr.RestartAt <= cr.At {
			return fmt.Errorf("faults: crash on node %d: restart %v <= crash %v", cr.Node, cr.RestartAt, cr.At)
		}
	}
	for _, p := range c.Pauses {
		if p.Node < 0 {
			return fmt.Errorf("faults: pause on negative node %d", p.Node)
		}
		if p.Resume <= p.At {
			return fmt.Errorf("faults: pause on node %d: resume %v <= pause %v", p.Node, p.Resume, p.At)
		}
	}
	return nil
}

// Outcome is one transmit decision.
type Outcome uint8

// Transmit outcomes.
const (
	// Deliver lets the frame fly untouched.
	Deliver Outcome = iota
	// Drop loses the frame on the wire after serialization.
	Drop
	// Corrupt delivers the frame with a bad CRC: it consumes wire
	// bandwidth but is discarded by the next store-and-forward check.
	Corrupt
)

// Link is one port's fault state: its RNG stream, its slice of the
// scripted schedule, and the observability counters the delivery layers
// and reports read.
type Link struct {
	// Name is the compiled port name this state belongs to.
	Name string

	rand    *rng.Rand // nil when both Bernoulli rates are zero
	drop    float64
	corrupt float64
	script  map[uint64]struct{} // scripted drop ordinals (1-based)
	sent    uint64              // frames decided so far

	// Dropped and Corrupted count faults injected on this link (scripted
	// and flap-induced drops included); Flaps counts down transitions.
	Dropped   uint64
	Corrupted uint64
	Flaps     uint64
}

// Decide returns the departing frame's fate. Scripted drops fire first;
// the Bernoulli draw is keyed to the per-link frame ordinal alone, so a
// decision depends only on (seed, port, ordinal) — never on event
// interleaving across links.
func (l *Link) Decide() Outcome {
	l.sent++
	// The draw is unconditional so the stream stays ordinal-aligned:
	// adding a scripted drop leaves every other Bernoulli decision on the
	// link unchanged.
	u := 1.0
	if l.rand != nil {
		u = l.rand.Float64()
	}
	if l.script != nil {
		if _, hit := l.script[l.sent]; hit {
			l.Dropped++
			return Drop
		}
	}
	if u < l.drop {
		l.Dropped++
		return Drop
	}
	if u < l.drop+l.corrupt {
		l.Corrupted++
		return Corrupt
	}
	return Deliver
}

// CountDrop records a fault-induced drop decided outside Decide (a frame
// dropped from a dead port's queue, or pushed at a dead port).
func (l *Link) CountDrop() { l.Dropped++ }

// CountFlap records a down transition.
func (l *Link) CountFlap() { l.Flaps++ }

// Sent reports how many transmit decisions this link has made.
func (l *Link) Sent() uint64 { return l.sent }

// Injector compiles a validated Config against a seed into per-link
// decision state. Delivery layers adopt it once at system build time
// (topo.Fabric.InjectFaults / fabric.Network.InjectFaults) and then
// consult the per-port Links on their transmit paths.
type Injector struct {
	seed  uint64
	cfg   Config
	links map[string]*Link
	nodes map[int]*NodeFaults
}

// NodeFaults is one node's endpoint fault record: how many times its NIC
// crashed and how many host pause windows it served. The node layer counts
// into it as the scheduled events actually fire.
type NodeFaults struct {
	Node    int
	Crashes uint64
	Pauses  uint64
}

// NewInjector validates cfg and builds the injector. The seed is the
// campaign seed; per-link streams derive from it and the port name.
func NewInjector(seed uint64, cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{seed: seed, cfg: cfg, links: make(map[string]*Link), nodes: make(map[int]*NodeFaults)}, nil
}

// MustInjector is NewInjector for callers whose Config was already
// validated (panics on error).
func MustInjector(seed uint64, cfg Config) *Injector {
	inj, err := NewInjector(seed, cfg)
	if err != nil {
		panic(err)
	}
	return inj
}

// Config reports the compiled schedule.
func (i *Injector) Config() Config { return i.cfg }

// Bernoulli reports whether every link needs fault state (a nonzero rate
// applies fabric-wide); otherwise only scripted/flapped ports do.
func (i *Injector) Bernoulli() bool { return i.cfg.DropRate > 0 || i.cfg.CorruptRate > 0 }

// Link returns (creating on first use) the fault state for the named port.
func (i *Injector) Link(name string) *Link {
	if l, ok := i.links[name]; ok {
		return l
	}
	l := &Link{Name: name, drop: i.cfg.DropRate, corrupt: i.cfg.CorruptRate}
	if i.Bernoulli() {
		l.rand = rng.Stream(i.seed, "faults/"+name)
	}
	for _, d := range i.cfg.DropNth {
		if d.Port != name {
			continue
		}
		if l.script == nil {
			l.script = make(map[uint64]struct{})
		}
		l.script[d.N] = struct{}{}
	}
	i.links[name] = l
	return l
}

// ScriptPorts reports the sorted, deduplicated port names the scripted
// drops and flaps reference — the names a delivery layer must resolve (and
// panic on, when unknown) at adoption time.
func (i *Injector) ScriptPorts() []string {
	seen := map[string]bool{}
	for _, d := range i.cfg.DropNth {
		seen[d.Port] = true
	}
	for _, f := range i.cfg.Flaps {
		seen[f.Port] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FlapsFor reports the flap windows scheduled for the named port, in
// config order.
func (i *Injector) FlapsFor(name string) []Flap {
	var out []Flap
	for _, f := range i.cfg.Flaps {
		if f.Port == name {
			out = append(out, f)
		}
	}
	return out
}

// Links snapshots every instantiated per-link state, sorted by port name —
// the per-link Dropped/Corrupted/Flaps report.
func (i *Injector) Links() []*Link {
	out := make([]*Link, 0, len(i.links))
	for _, l := range i.links {
		out = append(out, l)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Totals sums the per-link counters.
func (i *Injector) Totals() (dropped, corrupted, flaps uint64) {
	for _, l := range i.links {
		dropped += l.Dropped
		corrupted += l.Corrupted
		flaps += l.Flaps
	}
	return
}

// Node returns (creating on first use) the endpoint fault record for the
// given node id.
func (i *Injector) Node(id int) *NodeFaults {
	if n, ok := i.nodes[id]; ok {
		return n
	}
	n := &NodeFaults{Node: id}
	i.nodes[id] = n
	return n
}

// CrashesFor reports the crash schedule for the given node, in config order.
func (i *Injector) CrashesFor(node int) []Crash {
	var out []Crash
	for _, c := range i.cfg.Crashes {
		if c.Node == node {
			out = append(out, c)
		}
	}
	return out
}

// PausesFor reports the pause windows for the given node, in config order.
func (i *Injector) PausesFor(node int) []Pause {
	var out []Pause
	for _, p := range i.cfg.Pauses {
		if p.Node == node {
			out = append(out, p)
		}
	}
	return out
}

// NodeFaultRecords snapshots every instantiated per-node record, sorted by
// node id — the per-node crash/pause report.
func (i *Injector) NodeFaultRecords() []*NodeFaults {
	out := make([]*NodeFaults, 0, len(i.nodes))
	for _, n := range i.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Node < out[b].Node })
	return out
}

// NodeTotals sums the per-node endpoint fault counters.
func (i *Injector) NodeTotals() (crashes, pauses uint64) {
	for _, n := range i.nodes {
		crashes += n.Crashes
		pauses += n.Pauses
	}
	return
}
