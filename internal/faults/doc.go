// Package faults is the deterministic fault-injection subsystem: it turns a
// declarative Config — Bernoulli per-link frame drop and CRC-corruption
// rates, scripted one-shot drops ("drop exactly the Nth frame on this
// port"), and link flap schedules ("down at t1, up at t2") — into per-link
// decision state the delivery layers consult at their transmit points.
//
// # Injection points
//
// The fabric owns the wire, so the fabric decides the wire's fate. Two
// layers consult an Injector:
//
//   - internal/topo: every compiled output port (host egress and switch
//     egress) decides at transmission-complete time whether the departing
//     frame is delivered, lost on the cable, or delivered with a corrupted
//     CRC; link flaps mark ports dead, drop their queued frames and divert
//     ECMP routes around the dead path.
//   - internal/fabric: the calibrated back-to-back/ideal two-endpoint path
//     decides at Send time on the source's egress ("host<N>.egress", the
//     same names topo compiles).
//
// A dropped frame vanishes after consuming its serialization time (the
// transmitter cannot know); a corrupted frame flies on and is discarded by
// the next store-and-forward CRC check (switch ingress or destination
// port), consuming wire bandwidth but never reaching the NIC — exactly the
// two failure shapes the RC transport's PSN/ACK-timeout machinery
// (internal/nic) must recover from.
//
// # Determinism
//
// Every link draws from its own rng.Stream derived from the campaign seed
// and the port name ("faults/" + name), and decisions consume exactly one
// draw per departing frame in per-link transmit order. Decisions are
// therefore a pure function of (seed, port name, per-link frame ordinal):
// independent of event interleaving across links, of host parallelism, and
// of whether other links fault at all — serial and parallel runs are
// bit-identical, and a fixed seed pins the whole fault schedule for golden
// tests.
//
// # Validation and the unrouted-port contract
//
// Config.Validate rejects rates outside [0,1] and flap schedules with
// down >= up. Port names are resolved when a delivery layer adopts the
// injector (topo.Fabric.InjectFaults / fabric.Network.InjectFaults): a
// scripted drop or flap naming a port the compiled topology does not have
// panics with the port named, the same contract as topo's attach panics —
// a fault schedule that silently never fires is a test that silently
// passes.
package faults
