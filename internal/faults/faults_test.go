package faults

import (
	"strings"
	"testing"

	"breakband/internal/units"
)

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"drop_negative", Config{DropRate: -0.1}, "outside [0, 1]"},
		{"drop_over_one", Config{DropRate: 1.5}, "outside [0, 1]"},
		{"corrupt_negative", Config{CorruptRate: -1}, "outside [0, 1]"},
		{"corrupt_over_one", Config{CorruptRate: 2}, "outside [0, 1]"},
		{"sum_over_one", Config{DropRate: 0.6, CorruptRate: 0.6}, "exceeds 1"},
		{"script_no_port", Config{DropNth: []ScriptedDrop{{N: 1}}}, "without a port name"},
		{"script_zero_ordinal", Config{DropNth: []ScriptedDrop{{Port: "x", N: 0}}}, "1-based"},
		{"flap_no_port", Config{Flaps: []Flap{{Down: 1, Up: 2}}}, "without a port name"},
		{"flap_down_after_up", Config{Flaps: []Flap{{Port: "x", Down: 5, Up: 5}}}, ">= up"},
		{"crash_negative_node", Config{Crashes: []Crash{{Node: -1, At: 1}}}, "negative node"},
		{"crash_restart_before_crash", Config{Crashes: []Crash{{Node: 0, At: 5, RestartAt: 5}}}, "restart"},
		{"pause_negative_node", Config{Pauses: []Pause{{Node: -2, At: 1, Resume: 2}}}, "negative node"},
		{"pause_resume_before_pause", Config{Pauses: []Pause{{Node: 0, At: 5, Resume: 5}}}, "resume"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted an invalid schedule", c.cfg)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
			if _, err := NewInjector(1, c.cfg); err == nil {
				t.Error("NewInjector accepted the invalid schedule")
			}
		})
	}
	ok := Config{DropRate: 0.5, CorruptRate: 0.5,
		DropNth: []ScriptedDrop{{Port: "a", N: 1}},
		Flaps:   []Flap{{Port: "b", Down: 1, Up: units.Microseconds(1)}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Error("zero Config reports enabled")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("zero Config invalid: %v", err)
	}
}

// TestDecisionsDependOnlyOnSeedPortOrdinal is the serial==parallel
// determinism contract: a link's decision sequence is a pure function of
// (seed, port name, ordinal) — other links, their creation order, and the
// interleaving of their decisions must not perturb it.
func TestDecisionsDependOnlyOnSeedPortOrdinal(t *testing.T) {
	cfg := Config{DropRate: 0.2, CorruptRate: 0.1}
	const n = 200

	seq := func(l *Link) []Outcome {
		out := make([]Outcome, n)
		for i := range out {
			out[i] = l.Decide()
		}
		return out
	}

	// Run A: one lonely link.
	a := MustInjector(7, cfg)
	want := seq(a.Link("leaf0.up1"))

	// Run B: same seed, the same link created after and interleaved with
	// two others.
	b := MustInjector(7, cfg)
	x, y := b.Link("leaf0.up0"), b.Link("spine1.port3")
	lk := b.Link("leaf0.up1")
	got := make([]Outcome, n)
	for i := range got {
		x.Decide()
		got[i] = lk.Decide()
		y.Decide()
		y.Decide()
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision %d differs with other links present: %v vs %v", i, got[i], want[i])
		}
	}

	// Run C: a different seed must (overwhelmingly) differ somewhere.
	c := MustInjector(8, cfg)
	diff := seq(c.Link("leaf0.up1"))
	same := true
	for i := range want {
		if diff[i] != want[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("200 decisions identical across seeds; the stream is not seed-keyed")
	}
}

// TestScriptedDropExactlyN: the scripted ordinal drops, everything else
// delivers, and the script does not shift the Bernoulli stream.
func TestScriptedDropExactlyN(t *testing.T) {
	inj := MustInjector(1, Config{DropNth: []ScriptedDrop{{Port: "p", N: 3}, {Port: "p", N: 7}}})
	lk := inj.Link("p")
	for i := 1; i <= 10; i++ {
		got := lk.Decide()
		want := Deliver
		if i == 3 || i == 7 {
			want = Drop
		}
		if got != want {
			t.Errorf("frame %d: %v, want %v", i, got, want)
		}
	}
	if lk.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", lk.Dropped)
	}

	// Ordinal alignment: with Bernoulli rates on, adding a script entry
	// leaves every non-scripted decision identical.
	plain := MustInjector(3, Config{DropRate: 0.3}).Link("q")
	scripted := MustInjector(3, Config{DropRate: 0.3, DropNth: []ScriptedDrop{{Port: "q", N: 5}}}).Link("q")
	for i := 1; i <= 50; i++ {
		p, s := plain.Decide(), scripted.Decide()
		if i == 5 {
			if s != Drop {
				t.Errorf("scripted frame 5 = %v, want Drop", s)
			}
			continue
		}
		if p != s {
			t.Errorf("frame %d: script shifted the Bernoulli stream (%v vs %v)", i, p, s)
		}
	}
}

func TestInjectorBookkeeping(t *testing.T) {
	cfg := Config{
		DropNth: []ScriptedDrop{{Port: "b", N: 1}, {Port: "a", N: 2}, {Port: "b", N: 4}},
		Flaps:   []Flap{{Port: "c", Down: 1, Up: 2}, {Port: "a", Down: 3, Up: 9}},
	}
	inj := MustInjector(1, cfg)
	if got := inj.ScriptPorts(); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("ScriptPorts = %v, want [a b c]", got)
	}
	if fl := inj.FlapsFor("a"); len(fl) != 1 || fl[0].Down != 3 {
		t.Errorf("FlapsFor(a) = %v", fl)
	}
	if fl := inj.FlapsFor("b"); len(fl) != 0 {
		t.Errorf("FlapsFor(b) = %v, want none", fl)
	}
	if inj.Bernoulli() {
		t.Error("script-only schedule reports Bernoulli")
	}

	lk := inj.Link("b")
	lk.Decide() // scripted drop
	lk.Decide()
	lk.CountFlap()
	inj.Link("a").CountDrop()
	if lk2 := inj.Link("b"); lk2 != lk {
		t.Error("Link is not idempotent per name")
	}
	d, c, f := inj.Totals()
	if d != 2 || c != 0 || f != 1 {
		t.Errorf("Totals = %d/%d/%d, want 2/0/1", d, c, f)
	}
	links := inj.Links()
	if len(links) != 2 || links[0].Name != "a" || links[1].Name != "b" {
		t.Errorf("Links = %v", links)
	}
}

func TestEndpointFaultBookkeeping(t *testing.T) {
	cfg := Config{
		Crashes: []Crash{
			{Node: 3, At: units.Microseconds(5)},
			{Node: 1, At: units.Microseconds(2), RestartAt: units.Microseconds(9)},
			{Node: 3, At: units.Microseconds(20)},
		},
		Pauses: []Pause{{Node: 2, At: 1, Resume: units.Microseconds(1)}},
	}
	inj := MustInjector(1, cfg)
	if !cfg.Enabled() {
		t.Error("endpoint-only schedule reports disabled")
	}
	if cr := inj.CrashesFor(3); len(cr) != 2 || cr[0].At != units.Microseconds(5) {
		t.Errorf("CrashesFor(3) = %v, want both node-3 crashes in config order", cr)
	}
	if cr := inj.CrashesFor(0); len(cr) != 0 {
		t.Errorf("CrashesFor(0) = %v, want none", cr)
	}
	if pa := inj.PausesFor(2); len(pa) != 1 || pa[0].Resume != units.Microseconds(1) {
		t.Errorf("PausesFor(2) = %v", pa)
	}

	// Simulate the node layer counting delivered faults.
	inj.Node(3).Crashes += 2
	inj.Node(1).Crashes++
	inj.Node(2).Pauses++
	if n := inj.Node(3); n.Crashes != 2 {
		t.Error("Node is not idempotent per id")
	}
	recs := inj.NodeFaultRecords()
	if len(recs) != 3 || recs[0].Node != 1 || recs[1].Node != 2 || recs[2].Node != 3 {
		t.Fatalf("NodeFaultRecords = %v, want sorted by node id", recs)
	}
	crashes, pauses := inj.NodeTotals()
	if crashes != 3 || pauses != 1 {
		t.Errorf("NodeTotals = %d/%d, want 3/1", crashes, pauses)
	}
}
