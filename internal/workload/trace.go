package workload

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"

	"breakband/internal/units"
)

// traceMagic and traceVersion head every encoded trace. Decoders reject
// other versions, so the format can evolve without silently misreading old
// captures.
const (
	traceMagic   = "bbwktrace"
	traceVersion = 1
)

// Rec is one offered message: cohort/client identify the logical sender,
// At is the arrival instant the generator scheduled (absolute sim time),
// Size the payload bytes and Dst the destination node.
type Rec struct {
	Cohort int32
	Client int32
	At     units.Time
	Size   int32
	Dst    int32
}

// TraceCohort is the per-cohort header a trace carries so replay can verify
// it is being applied to the spec that produced it.
type TraceCohort struct {
	Name    string
	Clients int
}

// Trace is a recorded workload run: every offered message in generation
// order. Traces are deterministic — recording the same spec and seed twice
// yields byte-identical encodings, and a replayed run re-records the same
// bytes again.
type Trace struct {
	Name    string
	Seed    uint64
	Nodes   int
	Cohorts []TraceCohort
	Recs    []Rec
}

// newTrace builds an empty trace headed for the given spec.
func newTrace(spec *Spec, seed uint64) *Trace {
	tr := &Trace{Name: spec.Name, Seed: seed, Nodes: spec.Nodes}
	for i := range spec.Cohorts {
		c := &spec.Cohorts[i]
		tr.Cohorts = append(tr.Cohorts, TraceCohort{Name: c.Name, Clients: c.Clients})
	}
	return tr
}

// add appends one record. Amortized growth keeps the recording path cheap;
// the zero-alloc simbench pin measures the non-recording path.
func (tr *Trace) add(cohort, client int32, at units.Time, size, dst int32) {
	tr.Recs = append(tr.Recs, Rec{Cohort: cohort, Client: client, At: at, Size: size, Dst: dst})
}

// CompatibleWith reports why the trace cannot replay against the spec, or
// nil: the spec must carry the same name, node count and cohort shapes the
// recording run had.
func (tr *Trace) CompatibleWith(spec *Spec) error {
	if tr.Name != spec.Name {
		return fmt.Errorf("workload: trace is for spec %q, not %q", tr.Name, spec.Name)
	}
	if tr.Nodes != spec.Nodes {
		return fmt.Errorf("workload: trace recorded %d nodes, spec has %d", tr.Nodes, spec.Nodes)
	}
	if len(tr.Cohorts) != len(spec.Cohorts) {
		return fmt.Errorf("workload: trace recorded %d cohorts, spec has %d", len(tr.Cohorts), len(spec.Cohorts))
	}
	for i, tc := range tr.Cohorts {
		sc := &spec.Cohorts[i]
		if tc.Name != sc.Name || tc.Clients != sc.Clients {
			return fmt.Errorf("workload: trace cohort %d is %q/%d clients, spec has %q/%d",
				i, tc.Name, tc.Clients, sc.Name, sc.Clients)
		}
	}
	for i := range tr.Recs {
		r := &tr.Recs[i]
		if int(r.Cohort) >= len(spec.Cohorts) {
			return fmt.Errorf("workload: trace record %d names cohort %d of %d", i, r.Cohort, len(spec.Cohorts))
		}
		c := &spec.Cohorts[r.Cohort]
		if int(r.Client) >= c.Clients || r.Client < 0 {
			return fmt.Errorf("workload: trace record %d names client %d of cohort %q (%d clients)",
				i, r.Client, c.Name, c.Clients)
		}
		if want := c.ClientDst(int(r.Client)); int(r.Dst) != want {
			return fmt.Errorf("workload: trace record %d sends to node %d; spec routes client %d of %q to %d",
				i, r.Dst, r.Client, c.Name, want)
		}
		if r.Size < 1 || r.Size > MaxMsgBytes {
			return fmt.Errorf("workload: trace record %d has size %d outside [1, %d]", i, r.Size, MaxMsgBytes)
		}
	}
	return nil
}

// Encode renders the trace in its versioned text format.
func (tr *Trace) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s v%d\n", traceMagic, traceVersion)
	fmt.Fprintf(&b, "spec %s\n", tr.Name)
	fmt.Fprintf(&b, "seed %d\n", tr.Seed)
	fmt.Fprintf(&b, "nodes %d\n", tr.Nodes)
	fmt.Fprintf(&b, "cohorts %d\n", len(tr.Cohorts))
	for _, c := range tr.Cohorts {
		fmt.Fprintf(&b, "cohort %s %d\n", c.Name, c.Clients)
	}
	fmt.Fprintf(&b, "records %d\n", len(tr.Recs))
	for i := range tr.Recs {
		r := &tr.Recs[i]
		fmt.Fprintf(&b, "%d %d %d %d %d\n", r.Cohort, r.Client, int64(r.At), r.Size, r.Dst)
	}
	return b.Bytes()
}

// WriteFile encodes the trace to a file.
func (tr *Trace) WriteFile(path string) error {
	return os.WriteFile(path, tr.Encode(), 0o644)
}

// ReadTraceFile reads and decodes a trace file.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	tr, err := DecodeTrace(data)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %v", path, err)
	}
	return tr, nil
}

// DecodeTrace parses an encoded trace. It never panics; malformed input
// returns an error naming the offending line.
func DecodeTrace(data []byte) (*Trace, error) {
	lines := strings.Split(string(data), "\n")
	ln := 0
	nextLine := func() (string, bool) {
		for ln < len(lines) {
			s := strings.TrimRight(lines[ln], "\r")
			ln++
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	head, ok := nextLine()
	if !ok || head != fmt.Sprintf("%s v%d", traceMagic, traceVersion) {
		return nil, fmt.Errorf("not a %s v%d trace (header %q)", traceMagic, traceVersion, head)
	}
	tr := &Trace{}
	field := func(key string) (string, error) {
		s, ok := nextLine()
		if !ok {
			return "", fmt.Errorf("line %d: truncated trace (missing %q)", ln, key)
		}
		val, found := strings.CutPrefix(s, key+" ")
		if !found {
			return "", fmt.Errorf("line %d: expected %q, got %q", ln, key, s)
		}
		return val, nil
	}
	name, err := field("spec")
	if err != nil {
		return nil, err
	}
	tr.Name = name
	seedS, err := field("seed")
	if err != nil {
		return nil, err
	}
	if tr.Seed, err = strconv.ParseUint(seedS, 10, 64); err != nil {
		return nil, fmt.Errorf("line %d: bad seed %q", ln, seedS)
	}
	nodesS, err := field("nodes")
	if err != nil {
		return nil, err
	}
	if tr.Nodes, err = strconv.Atoi(nodesS); err != nil || tr.Nodes < 2 {
		return nil, fmt.Errorf("line %d: bad node count %q", ln, nodesS)
	}
	ncS, err := field("cohorts")
	if err != nil {
		return nil, err
	}
	nc, err := strconv.Atoi(ncS)
	if err != nil || nc < 0 || nc > 1<<20 {
		return nil, fmt.Errorf("line %d: bad cohort count %q", ln, ncS)
	}
	for i := 0; i < nc; i++ {
		val, err := field("cohort")
		if err != nil {
			return nil, err
		}
		name, countS, found := strings.Cut(val, " ")
		if !found {
			return nil, fmt.Errorf("line %d: bad cohort header %q", ln, val)
		}
		count, err := strconv.Atoi(countS)
		if err != nil || count < 1 {
			return nil, fmt.Errorf("line %d: bad cohort client count %q", ln, countS)
		}
		tr.Cohorts = append(tr.Cohorts, TraceCohort{Name: name, Clients: count})
	}
	nrS, err := field("records")
	if err != nil {
		return nil, err
	}
	nr, err := strconv.Atoi(nrS)
	if err != nil || nr < 0 {
		return nil, fmt.Errorf("line %d: bad record count %q", ln, nrS)
	}
	tr.Recs = make([]Rec, 0, nr)
	for i := 0; i < nr; i++ {
		s, ok := nextLine()
		if !ok {
			return nil, fmt.Errorf("line %d: truncated trace (%d of %d records)", ln, i, nr)
		}
		var r Rec
		var at int64
		if _, err := fmt.Sscanf(s, "%d %d %d %d %d", &r.Cohort, &r.Client, &at, &r.Size, &r.Dst); err != nil {
			return nil, fmt.Errorf("line %d: bad record %q", ln, s)
		}
		if r.Cohort < 0 || int(r.Cohort) >= nc {
			return nil, fmt.Errorf("line %d: record cohort %d out of range", ln, r.Cohort)
		}
		if at < 0 {
			return nil, fmt.Errorf("line %d: negative arrival time", ln)
		}
		r.At = units.Time(at)
		tr.Recs = append(tr.Recs, r)
	}
	if s, ok := nextLine(); ok {
		return nil, fmt.Errorf("line %d: trailing content %q after %d records", ln, s, nr)
	}
	return tr, nil
}
