// Package workload is the open-loop traffic-generation layer: declarative
// workload specs (client cohorts x message-size distributions x open-loop
// arrival processes) that validate up front and compile into per-QP paced
// injectors over any internal/topo topology.
//
// # Model
//
// A Spec names a topology and a set of cohorts. Each cohort is a population
// of clients that share an arrival process (Poisson, Gamma or Weibull
// interarrivals at a per-client mean rate, optionally modulated by a
// piecewise-constant rate envelope — ramps and diurnal-style schedules), a
// message-size distribution (fixed, uniform, lognormal or a weighted
// choice mixture) and an active window. Clients map round-robin onto the
// cohort's source and destination node sets; all clients of one cohort on
// one source node multiplex onto that node's per-destination QPs, so a
// million clients cost a million lightweight arrival states, not a million
// queue pairs.
//
// # Determinism
//
// Every random draw is made on a per-client stream derived as
// rng.Stream(seed, "workload/<cohort>/<client>"), and each client consumes
// its stream in a fixed per-message order (size draw, then the next
// interarrival). Arrival merging inside an injector orders by (time,
// client), a pure function of the draws. Consequently cohorts decouple
// completely — adding a cohort never perturbs another cohort's offered
// traffic — and serial and parallel campaign executions are bit-identical.
//
// # Execution
//
// Injectors are goroutine-free sim.Task continuation frames (zero handoffs
// in steady state): one injector per (cohort, source node) paces its
// clients' merged arrivals with a preallocated binary heap, posts RDMA
// writes through internal/uct, and records per-cohort delivery and latency
// statistics from send completions. The steady-state injection path
// allocates nothing (enforced by internal/simbench).
//
// # Trace record and replay
//
// A run can record every offered message as a (client, at, size, dst)
// tuple into a versioned trace (Trace, EncodeTrace/DecodeTrace). Replaying
// the trace against the same spec reproduces the run bit-identically —
// the replay injector walks the recorded tuples through the same pacing
// frame the generator used — including under injected link faults, whose
// RNG streams are disjoint from the workload's.
package workload
