package workload

// A minimal YAML-subset reader for workload specs. The repo takes no
// third-party dependencies, so instead of a full YAML implementation this
// file parses the disciplined subset the spec schema needs:
//
//   - maps as "key: value" lines, nested by indentation (spaces only)
//   - lists as "- item" lines, including the "- key: value" map-item
//     shorthand with the remaining keys indented to align
//   - inline maps {k: v, ...} and inline lists [a, b, ...]
//   - scalars: numbers (including exponents), booleans, bare and
//     single/double-quoted strings, durations like "150us"
//   - comments with '#' and blank lines anywhere
//
// Anchors, multi-document streams, flow folding and block scalars are out of
// scope and rejected with errors. The parser never panics on any input
// (fuzz-enforced); every error carries a line number.

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"breakband/internal/units"
)

// LoadSpec reads, parses and validates a workload spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %v", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %v", path, err)
	}
	return s, nil
}

// ParseSpec parses a YAML workload spec and validates it. It never panics;
// malformed input returns an error.
func ParseSpec(data []byte) (*Spec, error) {
	tree, err := parseYAML(string(data))
	if err != nil {
		return nil, err
	}
	s, err := decodeSpec(tree)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Tree layer: indentation-structured text -> map[string]any / []any / scalar.

// scalar is a raw unparsed scalar with its source line for error reporting.
type scalar struct {
	text string
	line int
}

type yamlLine struct {
	indent int
	text   string
	num    int
}

func parseYAML(src string) (any, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty spec")
	}
	v, next, err := parseBlock(lines, 0, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: unexpected content %q (bad indentation?)", lines[next].num, lines[next].text)
	}
	return v, nil
}

func splitLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		trimmed := strings.TrimRight(line, " \r")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" {
			continue
		}
		indent := len(trimmed) - len(body)
		if strings.ContainsRune(trimmed[:indent], '\t') || strings.HasPrefix(body, "\t") {
			return nil, fmt.Errorf("line %d: tabs are not allowed in indentation", num+1)
		}
		if body == "---" {
			if len(out) > 0 {
				return nil, fmt.Errorf("line %d: multi-document streams are not supported", num+1)
			}
			continue
		}
		out = append(out, yamlLine{indent: indent, text: body, num: num + 1})
	}
	return out, nil
}

// stripComment removes a trailing '# ...' comment that is not inside quotes.
func stripComment(line string) string {
	var quote byte
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t'):
			return line[:i]
		}
	}
	return line
}

// parseBlock parses the block starting at lines[i], whose entries sit at
// exactly the given indent. Returns the value and the index one past it.
func parseBlock(lines []yamlLine, i, indent int) (any, int, error) {
	if i >= len(lines) {
		return nil, i, fmt.Errorf("unexpected end of spec")
	}
	if lines[i].indent != indent {
		return nil, i, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	if isListItem(lines[i].text) {
		return parseListBlock(lines, i, indent)
	}
	return parseMapBlock(lines, i, indent)
}

func isListItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func parseListBlock(lines []yamlLine, i, indent int) (any, int, error) {
	var list []any
	for i < len(lines) && lines[i].indent == indent && isListItem(lines[i].text) {
		ln := lines[i]
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block below.
			v, next, err := parseNested(lines, i+1, indent, ln.num)
			if err != nil {
				return nil, i, err
			}
			list = append(list, v)
			i = next
			continue
		}
		if key, val, ok := splitKey(rest); ok {
			// "- key: value" map-item shorthand: remaining keys align
			// under the key (indent of '-' + 2).
			item, next, err := parseMapItem(lines, i+1, indent+2, key, val, ln.num)
			if err != nil {
				return nil, i, err
			}
			list = append(list, item)
			i = next
			continue
		}
		v, err := parseValue(rest, ln.num)
		if err != nil {
			return nil, i, err
		}
		list = append(list, v)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return list, i, nil
}

func parseMapBlock(lines []yamlLine, i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if isListItem(ln.text) {
			return nil, i, fmt.Errorf("line %d: list item amid map entries", ln.num)
		}
		key, val, ok := splitKey(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		var v any
		var err error
		if val == "" {
			v, i, err = parseNested(lines, i+1, indent, ln.num)
		} else {
			v, err = parseValue(val, ln.num)
			i++
		}
		if err != nil {
			return nil, i, err
		}
		m[key] = v
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return m, i, nil
}

// parseMapItem parses a map started inline by a "- key: value" list item:
// the first entry is given, the rest follow at itemIndent.
func parseMapItem(lines []yamlLine, i, itemIndent int, key, val string, num int) (any, int, error) {
	m := map[string]any{}
	var v any
	var err error
	if val == "" {
		v, i, err = parseNested(lines, i, itemIndent-2, num)
		// The nested block of the first key sits deeper than the item
		// body; parseNested anchored at the '-' indent handles it only
		// when no sibling keys follow. Keep it simple: require a value.
		if err == nil {
			return nil, i, fmt.Errorf("line %d: %q: a \"- key:\" item needs an inline value for its first key", num, key)
		}
		return nil, i, err
	}
	v, err = parseValue(val, num)
	if err != nil {
		return nil, i, err
	}
	m[key] = v
	for i < len(lines) && lines[i].indent == itemIndent && !isListItem(lines[i].text) {
		ln := lines[i]
		k, val, ok := splitKey(ln.text)
		if !ok {
			return nil, i, fmt.Errorf("line %d: expected \"key: value\", got %q", ln.num, ln.text)
		}
		if _, dup := m[k]; dup {
			return nil, i, fmt.Errorf("line %d: duplicate key %q", ln.num, k)
		}
		if val == "" {
			v, i, err = parseNested(lines, i+1, itemIndent, ln.num)
		} else {
			v, err = parseValue(val, ln.num)
			i++
		}
		if err != nil {
			return nil, i, err
		}
		m[k] = v
	}
	return m, i, nil
}

// parseNested parses the indented block following a "key:" (or "-") line at
// parentIndent.
func parseNested(lines []yamlLine, i, parentIndent, parentNum int) (any, int, error) {
	if i >= len(lines) || lines[i].indent <= parentIndent {
		return nil, i, fmt.Errorf("line %d: expected an indented block", parentNum)
	}
	return parseBlock(lines, i, lines[i].indent)
}

// splitKey splits "key: value" (or "key:") at the first top-level colon.
// Returns ok=false when the text is not a map entry.
func splitKey(text string) (key, val string, ok bool) {
	var quote byte
	depth := 0
	for i := 0; i < len(text); i++ {
		switch c := text[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '{' || c == '[':
			depth++
		case c == '}' || c == ']':
			depth--
		case c == ':' && depth == 0 && (i+1 == len(text) || text[i+1] == ' '):
			key = strings.TrimSpace(text[:i])
			if key == "" || strings.ContainsAny(key, "{}[],") {
				return "", "", false
			}
			return unquote(key), strings.TrimSpace(text[i+1:]), true
		}
	}
	return "", "", false
}

// parseValue parses an inline value: scalar, {map} or [list].
func parseValue(text string, num int) (any, error) {
	switch {
	case strings.HasPrefix(text, "{"):
		if !strings.HasSuffix(text, "}") {
			return nil, fmt.Errorf("line %d: unterminated inline map %q", num, text)
		}
		return parseInlineMap(text[1:len(text)-1], num)
	case strings.HasPrefix(text, "["):
		if !strings.HasSuffix(text, "]") {
			return nil, fmt.Errorf("line %d: unterminated inline list %q", num, text)
		}
		return parseInlineList(text[1:len(text)-1], num)
	case strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*") || strings.HasPrefix(text, "|") || strings.HasPrefix(text, ">"):
		return nil, fmt.Errorf("line %d: anchors and block scalars are not supported (%q)", num, text)
	default:
		return scalar{text: unquote(text), line: num}, nil
	}
}

func parseInlineMap(body string, num int) (any, error) {
	m := map[string]any{}
	for _, part := range splitTop(body) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := splitKey(part)
		if !ok || val == "" {
			return nil, fmt.Errorf("line %d: expected \"key: value\" in inline map, got %q", num, part)
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", num, key)
		}
		v, err := parseValue(val, num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

func parseInlineList(body string, num int) (any, error) {
	list := []any{}
	for _, part := range splitTop(body) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := parseValue(part, num)
		if err != nil {
			return nil, err
		}
		list = append(list, v)
	}
	return list, nil
}

// splitTop splits on commas outside quotes/brackets.
func splitTop(s string) []string {
	var parts []string
	var quote byte
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '{' || c == '[':
			depth++
		case c == '}' || c == ']':
			depth--
		case c == ',' && depth == 0:
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return s[1 : len(s)-1]
		}
	}
	return s
}

// ---------------------------------------------------------------------------
// Decode layer: generic tree -> Spec, with strict unknown-key checking.

type decodeError struct {
	path string
	msg  string
}

func (e *decodeError) Error() string { return fmt.Sprintf("%s: %s", e.path, e.msg) }

func errAt(path, format string, args ...any) error {
	return &decodeError{path: path, msg: fmt.Sprintf(format, args...)}
}

func asMap(v any, path string) (map[string]any, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, errAt(path, "expected a mapping")
	}
	return m, nil
}

func asList(v any, path string) ([]any, error) {
	l, ok := v.([]any)
	if !ok {
		return nil, errAt(path, "expected a list")
	}
	return l, nil
}

func asScalar(v any, path string) (scalar, error) {
	s, ok := v.(scalar)
	if !ok {
		return scalar{}, errAt(path, "expected a scalar value")
	}
	return s, nil
}

func checkKeys(m map[string]any, path string, allowed ...string) error {
	for k := range m {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			return errAt(path, "unknown key %q (allowed: %s)", k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

func decStr(m map[string]any, key, path string, dst *string) error {
	v, ok := m[key]
	if !ok {
		return nil
	}
	s, err := asScalar(v, path+"."+key)
	if err != nil {
		return err
	}
	*dst = s.text
	return nil
}

func decInt(m map[string]any, key, path string, dst *int) error {
	v, ok := m[key]
	if !ok {
		return nil
	}
	s, err := asScalar(v, path+"."+key)
	if err != nil {
		return err
	}
	n, err := strconv.ParseInt(s.text, 10, 64)
	if err != nil || n != int64(int(n)) {
		return errAt(path+"."+key, "line %d: %q is not an integer", s.line, s.text)
	}
	*dst = int(n)
	return nil
}

func decUint(m map[string]any, key, path string, dst *uint64) error {
	v, ok := m[key]
	if !ok {
		return nil
	}
	s, err := asScalar(v, path+"."+key)
	if err != nil {
		return err
	}
	n, err := strconv.ParseUint(s.text, 10, 64)
	if err != nil {
		return errAt(path+"."+key, "line %d: %q is not an unsigned integer", s.line, s.text)
	}
	*dst = n
	return nil
}

func decFloat(m map[string]any, key, path string, dst *float64) error {
	v, ok := m[key]
	if !ok {
		return nil
	}
	s, err := asScalar(v, path+"."+key)
	if err != nil {
		return err
	}
	f, err := strconv.ParseFloat(s.text, 64)
	if err != nil || math.IsNaN(f) {
		return errAt(path+"."+key, "line %d: %q is not a number", s.line, s.text)
	}
	*dst = f
	return nil
}

func decTime(m map[string]any, key, path string, dst *units.Time) error {
	v, ok := m[key]
	if !ok {
		return nil
	}
	s, err := asScalar(v, path+"."+key)
	if err != nil {
		return err
	}
	d, err := parseTime(s.text)
	if err != nil {
		return errAt(path+"."+key, "line %d: %v", s.line, err)
	}
	*dst = d
	return nil
}

func decIntList(m map[string]any, key, path string, dst *[]int) error {
	v, ok := m[key]
	if !ok {
		return nil
	}
	l, err := asList(v, path+"."+key)
	if err != nil {
		return err
	}
	out := make([]int, 0, len(l))
	for i, e := range l {
		p := fmt.Sprintf("%s.%s[%d]", path, key, i)
		s, err := asScalar(e, p)
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(s.text, 10, 64)
		if err != nil || n != int64(int(n)) {
			return errAt(p, "line %d: %q is not an integer", s.line, s.text)
		}
		out = append(out, int(n))
	}
	*dst = out
	return nil
}

// parseTime parses a duration scalar: a float with a unit suffix (ps, ns,
// us, ms, s), or the bare "0".
func parseTime(s string) (units.Time, error) {
	if s == "0" {
		return 0, nil
	}
	unit := units.Time(0)
	var num string
	switch {
	case strings.HasSuffix(s, "ps"):
		unit, num = units.Picosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		unit, num = units.Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = units.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = units.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = units.Second, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("duration %q needs a unit suffix (ps, ns, us, ms or s)", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("duration %q is not a number with a unit", s)
	}
	ps := f * float64(unit)
	if ps > float64(math.MaxInt64) || ps < float64(math.MinInt64) {
		return 0, fmt.Errorf("duration %q overflows the picosecond clock", s)
	}
	return units.Time(math.Round(ps)), nil
}

func decodeSpec(tree any) (*Spec, error) {
	m, err := asMap(tree, "spec")
	if err != nil {
		return nil, err
	}
	if err := checkKeys(m, "spec", "name", "nodes", "topology", "radix",
		"credits", "rxbudget", "seed", "faults", "cohorts"); err != nil {
		return nil, err
	}
	s := &Spec{}
	for _, step := range []func() error{
		func() error { return decStr(m, "name", "spec", &s.Name) },
		func() error { return decInt(m, "nodes", "spec", &s.Nodes) },
		func() error { return decStr(m, "topology", "spec", &s.Topology) },
		func() error { return decInt(m, "radix", "spec", &s.Radix) },
		func() error { return decInt(m, "credits", "spec", &s.Credits) },
		func() error { return decInt(m, "rxbudget", "spec", &s.RxBudget) },
		func() error { return decUint(m, "seed", "spec", &s.Seed) },
	} {
		if err := step(); err != nil {
			return nil, err
		}
	}
	if v, ok := m["faults"]; ok {
		fm, err := asMap(v, "spec.faults")
		if err != nil {
			return nil, err
		}
		if err := checkKeys(fm, "spec.faults", "droprate", "corruptrate"); err != nil {
			return nil, err
		}
		if err := decFloat(fm, "droprate", "spec.faults", &s.Faults.DropRate); err != nil {
			return nil, err
		}
		if err := decFloat(fm, "corruptrate", "spec.faults", &s.Faults.CorruptRate); err != nil {
			return nil, err
		}
	}
	if v, ok := m["cohorts"]; ok {
		list, err := asList(v, "spec.cohorts")
		if err != nil {
			return nil, err
		}
		for i, e := range list {
			c, err := decodeCohort(e, fmt.Sprintf("spec.cohorts[%d]", i))
			if err != nil {
				return nil, err
			}
			s.Cohorts = append(s.Cohorts, *c)
		}
	}
	return s, nil
}

func decodeCohort(v any, path string) (*Cohort, error) {
	m, err := asMap(v, path)
	if err != nil {
		return nil, err
	}
	if err := checkKeys(m, path, "name", "clients", "src", "dst", "start",
		"duration", "arrival", "size", "envelope"); err != nil {
		return nil, err
	}
	c := &Cohort{}
	for _, step := range []func() error{
		func() error { return decStr(m, "name", path, &c.Name) },
		func() error { return decInt(m, "clients", path, &c.Clients) },
		func() error { return decIntList(m, "src", path, &c.Src) },
		func() error { return decIntList(m, "dst", path, &c.Dst) },
		func() error { return decTime(m, "start", path, &c.Start) },
		func() error { return decTime(m, "duration", path, &c.Duration) },
	} {
		if err := step(); err != nil {
			return nil, err
		}
	}
	if v, ok := m["arrival"]; ok {
		am, err := asMap(v, path+".arrival")
		if err != nil {
			return nil, err
		}
		if err := checkKeys(am, path+".arrival", "process", "rate", "shape"); err != nil {
			return nil, err
		}
		if err := decStr(am, "process", path+".arrival", &c.Arrival.Process); err != nil {
			return nil, err
		}
		if err := decFloat(am, "rate", path+".arrival", &c.Arrival.Rate); err != nil {
			return nil, err
		}
		if err := decFloat(am, "shape", path+".arrival", &c.Arrival.Shape); err != nil {
			return nil, err
		}
	}
	if v, ok := m["size"]; ok {
		if err := decodeSize(v, path+".size", &c.Size); err != nil {
			return nil, err
		}
	}
	if v, ok := m["envelope"]; ok {
		list, err := asList(v, path+".envelope")
		if err != nil {
			return nil, err
		}
		for i, e := range list {
			p := fmt.Sprintf("%s.envelope[%d]", path, i)
			em, err := asMap(e, p)
			if err != nil {
				return nil, err
			}
			if err := checkKeys(em, p, "from", "to", "factor"); err != nil {
				return nil, err
			}
			var w EnvelopeWindow
			if err := decTime(em, "from", p, &w.From); err != nil {
				return nil, err
			}
			if err := decTime(em, "to", p, &w.To); err != nil {
				return nil, err
			}
			if err := decFloat(em, "factor", p, &w.Factor); err != nil {
				return nil, err
			}
			c.Envelope = append(c.Envelope, w)
		}
	}
	return c, nil
}

func decodeSize(v any, path string, s *SizeSpec) error {
	m, err := asMap(v, path)
	if err != nil {
		return err
	}
	if err := checkKeys(m, path, "dist", "bytes", "min", "max", "mean", "cv", "choices"); err != nil {
		return err
	}
	for _, step := range []func() error{
		func() error { return decStr(m, "dist", path, &s.Dist) },
		func() error { return decInt(m, "bytes", path, &s.Bytes) },
		func() error { return decInt(m, "min", path, &s.Min) },
		func() error { return decInt(m, "max", path, &s.Max) },
		func() error { return decFloat(m, "mean", path, &s.Mean) },
		func() error { return decFloat(m, "cv", path, &s.CV) },
	} {
		if err := step(); err != nil {
			return err
		}
	}
	if v, ok := m["choices"]; ok {
		list, err := asList(v, path+".choices")
		if err != nil {
			return err
		}
		for i, e := range list {
			p := fmt.Sprintf("%s.choices[%d]", path, i)
			cm, err := asMap(e, p)
			if err != nil {
				return err
			}
			if err := checkKeys(cm, p, "bytes", "weight"); err != nil {
				return err
			}
			var c SizeChoice
			if err := decInt(cm, "bytes", p, &c.Bytes); err != nil {
				return err
			}
			if err := decFloat(cm, "weight", p, &c.Weight); err != nil {
				return err
			}
			s.Choices = append(s.Choices, c)
		}
	}
	return nil
}
