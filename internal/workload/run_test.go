package workload

import (
	"bytes"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/units"
)

// incastSpec is the ISSUE's acceptance shape: an open-loop Poisson incast
// over the 8-node fat-tree.
func incastSpec() *Spec {
	return &Spec{
		Name:     "incast8",
		Nodes:    8,
		Topology: "fattree",
		Cohorts: []Cohort{{
			Name:     "storm",
			Clients:  64,
			Src:      []int{1, 2, 3, 4, 5, 6, 7},
			Dst:      []int{0},
			Duration: 200 * units.Microsecond,
			Arrival:  ArrivalSpec{Process: ProcPoisson, Rate: 40e3}, // ~2.5M msg/s aggregate
			Size:     SizeSpec{Dist: SizeDistFixed, Bytes: 64},
		}},
	}
}

func runSpec(t *testing.T, spec *Spec, noise config.NoiseLevel, seed uint64, opt RunOpt) *Result {
	t.Helper()
	cfg := spec.BuildConfig(noise, seed)
	sys := node.NewSystem(cfg, spec.Nodes)
	defer sys.Shutdown()
	res, err := Run(spec, sys, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestIncastRunDelivers(t *testing.T) {
	res := runSpec(t, incastSpec(), config.NoiseOff, 7, RunOpt{Record: true})
	c := &res.Cohorts[0]
	if c.Offered == 0 {
		t.Fatal("no arrivals generated")
	}
	if c.Delivered != c.Offered || c.Failed != 0 {
		t.Fatalf("delivered %d + failed %d of %d offered", c.Delivered, c.Failed, c.Offered)
	}
	if c.Bytes != uint64(64*c.Delivered) {
		t.Fatalf("bytes %d, want %d", c.Bytes, 64*c.Delivered)
	}
	if c.Goodput() <= 0 {
		t.Fatal("zero goodput")
	}
	if got := c.Latency.N(); got != c.Delivered {
		t.Fatalf("latency samples %d, want %d", got, c.Delivered)
	}
	if len(res.Trace.Recs) != c.Offered {
		t.Fatalf("trace records %d, want %d", len(res.Trace.Recs), c.Offered)
	}
}

// TestRecordReplayBitIdentical is the acceptance assertion: a recorded run
// replays byte-identically — the replay re-records the exact trace bytes
// and reproduces every per-cohort statistic.
func TestRecordReplayBitIdentical(t *testing.T) {
	spec := incastSpec()
	orig := runSpec(t, spec, config.NoiseOff, 7, RunOpt{Record: true})
	enc := orig.Trace.Encode()

	dec, err := DecodeTrace(enc)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	rep := runSpec(t, spec, config.NoiseOff, 7, RunOpt{Record: true, Replay: dec})
	if !bytes.Equal(rep.Trace.Encode(), enc) {
		t.Fatal("replayed re-recording differs from the original trace")
	}
	a, b := &orig.Cohorts[0], &rep.Cohorts[0]
	if a.Offered != b.Offered || a.Delivered != b.Delivered || a.Failed != b.Failed ||
		a.Bytes != b.Bytes || a.FirstAt != b.FirstAt || a.LastDone != b.LastDone {
		t.Fatalf("replay stats differ: %+v vs %+v", a, b)
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.Max() != b.Latency.Max() {
		t.Fatal("replay latency distribution differs")
	}
}

func TestTraceEncodeDecodeRoundTrip(t *testing.T) {
	res := runSpec(t, incastSpec(), config.NoiseOff, 3, RunOpt{Record: true})
	enc := res.Trace.Encode()
	dec, err := DecodeTrace(enc)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("encode(decode(x)) != x")
	}
	if err := dec.CompatibleWith(incastSpec()); err != nil {
		t.Fatalf("CompatibleWith: %v", err)
	}
}
