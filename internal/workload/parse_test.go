package workload

import (
	"strings"
	"testing"

	"breakband/internal/config"
	"breakband/internal/units"
)

const validYAML = `# comment
name: incast8
nodes: 8
topology: fattree
cohorts:
  - name: storm
    clients: 64
    src: [1, 2, 3, 4, 5, 6, 7]
    dst: [0]
    start: 0
    duration: 200us
    arrival: {process: poisson, rate: 40e3}
    size: {dist: fixed, bytes: 64}
`

func TestParseSpecValid(t *testing.T) {
	spec, err := ParseSpec([]byte(validYAML))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Name != "incast8" || spec.Nodes != 8 || spec.Topology != "fattree" {
		t.Fatalf("header mismatch: %+v", spec)
	}
	c := &spec.Cohorts[0]
	if c.Name != "storm" || c.Clients != 64 || len(c.Src) != 7 || c.Dst[0] != 0 {
		t.Fatalf("cohort mismatch: %+v", c)
	}
	if c.Duration != 200*units.Microsecond {
		t.Fatalf("duration %v, want 200us", c.Duration)
	}
	if c.Arrival.Process != ProcPoisson || c.Arrival.Rate != 40e3 {
		t.Fatalf("arrival mismatch: %+v", c.Arrival)
	}
	if c.Size.Dist != SizeDistFixed || c.Size.Bytes != 64 {
		t.Fatalf("size mismatch: %+v", c.Size)
	}
}

// TestParseSpecErrors is the negative battery: every malformed document must
// return an error — never a panic, never a silently defaulted spec.
func TestParseSpecErrors(t *testing.T) {
	// mut rewrites the valid doc for the in-place cases below.
	mut := func(old, new string) string {
		if !strings.Contains(validYAML, old) {
			t.Fatalf("mutation anchor %q not in valid doc", old)
		}
		return strings.Replace(validYAML, old, new, 1)
	}
	cases := []struct {
		name string
		doc  string
		want string // substring expected in the error
	}{
		{"empty", "", "empty"},
		{"tab indentation", "name: x\n\tnodes: 8\n", "tab"},
		{"unknown top key", mut("topology: fattree", "topolgy: fattree"), "unknown key"},
		{"unknown cohort key", mut("clients: 64", "clints: 64"), "unknown key"},
		{"missing name", mut("name: incast8\n", ""), "name"},
		{"one node", mut("nodes: 8", "nodes: 1"), "nodes"},
		{"bad topology", mut("topology: fattree", "topology: moebius"), "topology"},
		{"no cohorts", "name: x\nnodes: 8\ntopology: fattree\ncohorts: []\n", "cohort"},
		{"zero clients", mut("clients: 64", "clients: 0"), "clients"},
		{"negative clients", mut("clients: 64", "clients: -3"), "clients"},
		{"zero rate", mut("rate: 40e3", "rate: 0"), "rate"},
		{"negative rate", mut("rate: 40e3", "rate: -1"), "rate"},
		{"rate not a number", mut("rate: 40e3", "rate: fast"), "rate"},
		{"negative size", mut("bytes: 64", "bytes: -64"), "outside"},
		{"oversize message", mut("bytes: 64", "bytes: 65536"), "outside"},
		{"unknown process", mut("process: poisson", "process: cauchy"), "process"},
		{"gamma without shape", mut("process: poisson", "process: gamma"), "shape"},
		{"unknown size dist", mut("dist: fixed", "dist: zipf"), "distribution"},
		{"src out of range", mut("dst: [0]", "dst: [8]"), "out of range"},
		{"self send", mut("dst: [0]", "dst: [1]"), "itself"},
		{"negative start", mut("start: 0", "start: -5us"), "start"},
		{"zero duration", mut("duration: 200us", "duration: 0"), "duration"},
		{"bad time suffix", mut("duration: 200us", "duration: 200parsecs"), "duration"},
		{"duplicate cohorts", mut("  - name: storm", "  - name: storm\n    clients: 1\n    src: [1]\n    dst: [0]\n    duration: 1us\n    arrival: {process: poisson, rate: 1e3}\n    size: {dist: fixed, bytes: 8}\n  - name: storm"), "duplicate"},
		{"overlapping envelopes", mut("size: {dist: fixed, bytes: 64}",
			"size: {dist: fixed, bytes: 64}\n    envelope:\n      - {from: 0, to: 100us, factor: 2}\n      - {from: 50us, to: 150us, factor: 3}"), "overlap"},
		{"envelope zero factor", mut("size: {dist: fixed, bytes: 64}",
			"size: {dist: fixed, bytes: 64}\n    envelope:\n      - {from: 0, to: 100us, factor: 0}"), "factor"},
		{"multi-doc", "---\nname: x\n---\nname: y\n", ""},
		{"anchor", "name: &a x\n", ""},
		{"unclosed inline map", mut("arrival: {process: poisson, rate: 40e3}", "arrival: {process: poisson, rate: 40e3"), ""},
		{"unclosed inline list", mut("dst: [0]", "dst: [0"), ""},
		{"scalar where map expected", mut("arrival: {process: poisson, rate: 40e3}", "arrival: soon"), ""},
		{"list where map expected", "name: x\nnodes: 8\ntopology: fattree\ncohorts:\n  - name: c\n    clients: 1\n    src: [1]\n    dst: [0]\n    duration: 1us\n    arrival:\n      - poisson\n    size: {dist: fixed, bytes: 8}\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted malformed doc: %+v", spec)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestTraceCompatibleWithRejects covers the replay-side validation: traces
// from a different spec shape must be refused before a single task spawns.
func TestTraceCompatibleWithRejects(t *testing.T) {
	res := runSpec(t, incastSpec(), config.NoiseOff, 7, RunOpt{Record: true})
	tr := res.Trace

	check := func(name string, mutate func(*Spec)) {
		t.Run(name, func(t *testing.T) {
			spec := incastSpec()
			mutate(spec)
			if err := tr.CompatibleWith(spec); err == nil {
				t.Error("incompatible spec accepted")
			}
		})
	}
	check("renamed spec", func(s *Spec) { s.Name = "other" })
	check("node count", func(s *Spec) { s.Nodes = 16 })
	check("renamed cohort", func(s *Spec) { s.Cohorts[0].Name = "calm" })
	check("client count", func(s *Spec) { s.Cohorts[0].Clients = 8 })
	check("extra cohort", func(s *Spec) {
		c := s.Cohorts[0]
		c.Name = "extra"
		c.Src, c.Dst = []int{3}, []int{2}
		s.Cohorts = append(s.Cohorts, c)
	})

	t.Run("unknown cohort record", func(t *testing.T) {
		bad := *tr
		bad.Recs = append([]Rec(nil), tr.Recs...)
		bad.Recs[0].Cohort = 9
		if err := bad.CompatibleWith(incastSpec()); err == nil {
			t.Error("record with unknown cohort accepted")
		}
	})
	t.Run("destination mismatch", func(t *testing.T) {
		bad := *tr
		bad.Recs = append([]Rec(nil), tr.Recs...)
		bad.Recs[0].Dst = 5 // storm's round-robin dst for every client is 0
		if err := bad.CompatibleWith(incastSpec()); err == nil {
			t.Error("record with wrong destination accepted")
		}
	})
}

// FuzzParseSpec drives the parser with arbitrary bytes: any outcome but a
// panic is acceptable. `go test` runs the seed corpus; `go test -fuzz` digs.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(validYAML))
	f.Add([]byte(""))
	f.Add([]byte("name: x\nnodes: two\n"))
	f.Add([]byte("cohorts:\n  - - -\n"))
	f.Add([]byte("a:\n b:\n  c: [1, {d: 2}, ']'\n"))
	f.Add([]byte(strings.Repeat("  ", 100) + "deep: 1\n"))
	f.Add([]byte("name: \"un\nterminated\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err == nil && spec == nil {
			t.Error("nil spec with nil error")
		}
	})
}
