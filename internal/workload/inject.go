package workload

import (
	"fmt"

	"breakband/internal/config"
	"breakband/internal/mlx"
	"breakband/internal/node"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/stats"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// RunOpt selects recording and replay for a workload run.
type RunOpt struct {
	// Record captures every offered message into Result.Trace.
	Record bool
	// Replay, when non-nil, drives the run from a recorded trace instead of
	// the arrival generators. The trace must be CompatibleWith the spec.
	// Record may be combined with Replay; a replayed re-recording encodes
	// byte-identically to the original.
	Replay *Trace
}

// Recovery aggregates a cohort's transport-recovery counters across its
// send-side QPs (labelled "wl/<cohort>" on the NIC).
type Recovery struct {
	AckTimeouts uint64
	SeqNaksRecv uint64
	RNRNaksRecv uint64
	Retransmits uint64
}

// Any reports whether any recovery machinery fired.
func (r Recovery) Any() bool {
	return r.AckTimeouts+r.SeqNaksRecv+r.RNRNaksRecv+r.Retransmits > 0
}

// CohortResult is one cohort's delivery accounting for a run.
type CohortResult struct {
	Name string
	// Offered counts generated arrivals; Delivered successful completions;
	// Failed operations retired by error CQEs or refused posts.
	Offered, Delivered, Failed int
	// Bytes is the delivered payload volume.
	Bytes uint64
	// FirstAt is the earliest offered arrival; LastDone the latest
	// completion.
	FirstAt, LastDone units.Time
	// Latency samples per-message arrival-to-completion times in
	// nanoseconds (queueing delay behind a backlogged injector included —
	// open-loop latency, not bare wire time).
	Latency stats.Sample
	// Recovery aggregates the cohort's transport-recovery counters.
	Recovery Recovery
}

// Goodput reports delivered bytes per second over the cohort's active span.
func (c *CohortResult) Goodput() float64 {
	span := c.LastDone - c.FirstAt
	if span <= 0 {
		return 0
	}
	return float64(c.Bytes) / span.Seconds()
}

// Result is a completed workload run.
type Result struct {
	Name    string
	Seed    uint64
	Cohorts []CohortResult
	// Elapsed is the full simulated span (first arrival to last
	// completion across cohorts).
	Elapsed units.Time
	// Trace is the recorded trace when RunOpt.Record was set.
	Trace *Trace
}

// Run compiles the spec into injectors on sys, runs the simulation to
// completion and reports per-cohort results. The system must have been
// built for the spec (node count equal to spec.Nodes — BuildConfig +
// node.NewSystem is the canonical recipe). Run validates the spec first and
// never panics on bad input.
func Run(spec *Spec, sys *node.System, opt RunOpt) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(sys.Nodes) != spec.Nodes {
		return nil, fmt.Errorf("workload %q: spec wants %d nodes, system has %d", spec.Name, spec.Nodes, len(sys.Nodes))
	}
	if opt.Replay != nil {
		if err := opt.Replay.CompatibleWith(spec); err != nil {
			return nil, err
		}
	}
	b, err := build(spec, sys, opt)
	if err != nil {
		return nil, err
	}
	sys.Run()
	return b.collect()
}

// builder wires a validated spec into injector tasks on a system.
type builder struct {
	spec *Spec
	sys  *node.System
	cfg  *config.Config
	res  *Result

	recvWorkers map[int]*uct.Worker
	injectors   []*injectFrame
	finished    int
}

func build(spec *Spec, sys *node.System, opt RunOpt) (*builder, error) {
	cfg := sys.Cfg
	b := &builder{
		spec:        spec,
		sys:         sys,
		cfg:         cfg,
		recvWorkers: make(map[int]*uct.Worker),
		res:         &Result{Name: spec.Name, Seed: cfg.Seed},
	}
	b.res.Cohorts = make([]CohortResult, len(spec.Cohorts))

	var rec *Trace
	if opt.Record {
		rec = newTrace(spec, cfg.Seed)
		b.res.Trace = rec
	}

	// Partition replay records per (cohort, source node), preserving the
	// recorded order within each injector.
	var replayParts map[int64][]int32
	if opt.Replay != nil {
		replayParts = make(map[int64][]int32)
		for i := range opt.Replay.Recs {
			r := &opt.Replay.Recs[i]
			c := &spec.Cohorts[r.Cohort]
			key := int64(r.Cohort)<<32 | int64(c.ClientSrc(int(r.Client)))
			replayParts[key] = append(replayParts[key], int32(i))
		}
	}

	for ci := range spec.Cohorts {
		c := &spec.Cohorts[ci]
		b.res.Cohorts[ci].Name = c.Name
		for _, src := range distinctInts(c.Src) {
			f, err := b.newInjector(int32(ci), c, src, opt, rec, replayParts)
			if err != nil {
				return nil, err
			}
			if f == nil {
				continue // no clients landed on this source
			}
			b.injectors = append(b.injectors, f)
			sys.K.SpawnTask(fmt.Sprintf("wl.%s.n%d", c.Name, src), f)
		}
	}
	return b, nil
}

func (b *builder) recvWorker(dst int) *uct.Worker {
	w := b.recvWorkers[dst]
	if w == nil {
		w = uct.NewWorker(b.sys.Nodes[dst], b.cfg)
		w.SetRand(b.cfg.Rand(fmt.Sprintf("workload/rx/node%d", dst)))
		b.recvWorkers[dst] = w
	}
	return w
}

func distinctInts(xs []int) []int {
	var out []int
	for _, x := range xs {
		dup := false
		for _, o := range out {
			if o == x {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

func (b *builder) newInjector(ci int32, c *Cohort, src int, opt RunOpt, rec *Trace, replayParts map[int64][]int32) (*injectFrame, error) {
	f := &injectFrame{
		b:     b,
		cidx:  ci,
		res:   &b.res.Cohorts[ci],
		cfg:   b.cfg,
		clock: newArrivalClock(c),
		sizes: newSizeGen(&c.Size),
		rec:   rec,
	}
	f.w = uct.NewWorker(b.sys.Nodes[src], b.cfg)
	f.w.SetRand(b.cfg.Rand(fmt.Sprintf("workload/%s/node%d", c.Name, src)))
	f.w.SetSendCompletion(f.onComplete)

	// One endpoint per distinct destination of the cohort; dstToEp maps a
	// node id to its endpoint ordinal.
	dsts := distinctInts(c.Dst)
	f.dstToEp = make([]int32, b.spec.Nodes)
	for i := range f.dstToEp {
		f.dstToEp[i] = -1
	}
	bufBytes := c.Size.MaxBytes()
	if bufBytes < 64 {
		bufBytes = 64
	}
	for _, dst := range dsts {
		ep := f.w.NewEp(uct.PIOInline, 1)
		ep.SetLabel("wl/" + c.Name)
		rw := b.recvWorker(dst)
		rep := rw.NewEp(uct.PIOInline, 1)
		rep.SetLabel("wl/" + c.Name + "/rx")
		uct.Connect(ep, rep)
		tgt := b.sys.Nodes[dst].Mem.Alloc(
			fmt.Sprintf("wl.%s.n%d->n%d", c.Name, src, dst), uint64(bufBytes), 64)
		ep.RemoteBuf = tgt.Base
		f.dstToEp[dst] = int32(len(f.eps))
		f.eps = append(f.eps, ep)
		f.dstOf = append(f.dstOf, int32(dst))
		f.rings = append(f.rings, compRing{buf: make([]compEntry, b.cfg.Bench.SQDepth)})
	}
	f.buf = make([]byte, bufBytes)
	f.postF.w = f.w

	if opt.Replay != nil {
		f.tr = opt.Replay
		f.recs = replayParts[int64(ci)<<32|int64(src)]
		if len(f.recs) == 0 {
			return nil, nil
		}
		return f, nil
	}

	// Generate mode: seed one clientState per cohort client homed on this
	// source. Each client's first arrival is its stream's first draw from
	// the cohort start.
	for i := 0; i < c.Clients; i++ {
		if c.ClientSrc(i) != src {
			continue
		}
		cs := clientState{
			rand: *rng.Stream(b.cfg.Seed, fmt.Sprintf("workload/%s/%d", c.Name, i)),
			id:   int32(i),
			ep:   f.dstToEp[c.ClientDst(i)],
		}
		cs.next = f.clock.next(c.Start, &cs.rand)
		if cs.next >= f.clock.end {
			continue // window too short for this client's first draw
		}
		f.heap.clients = append(f.heap.clients, cs)
	}
	if len(f.heap.clients) == 0 {
		return nil, nil
	}
	f.heap.slots = make([]int32, len(f.heap.clients))
	for i := range f.heap.slots {
		f.heap.slots[i] = int32(i)
	}
	f.heap.init()
	return f, nil
}

// compEntry is one in-flight message awaiting its send completion.
type compEntry struct {
	at   units.Time
	size int32
}

// compRing is a fixed-capacity FIFO parallel to the NIC's per-QP completion
// order. Capacity is the send-queue depth: the post path spins on a full
// queue, so in-flight never exceeds it.
type compRing struct {
	buf     []compEntry
	head, n int
}

func (r *compRing) push(e compEntry) {
	if r.n == len(r.buf) {
		panic("workload: completion ring overflow")
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

func (r *compRing) pop() compEntry {
	if r.n == 0 {
		panic("workload: completion ring underflow")
	}
	e := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return e
}

// injectFrame is one injector: the paced open-loop sender for all clients of
// one cohort homed on one source node. It runs as a goroutine-free sim.Task
// continuation; the steady-state loop allocates nothing.
type injectFrame struct {
	b     *builder
	cidx  int32
	res   *CohortResult
	cfg   *config.Config
	w     *uct.Worker
	eps   []*uct.Ep
	dstOf []int32 // endpoint ordinal -> destination node
	rings []compRing
	clock arrivalClock
	sizes sizeGen
	heap  clientHeap
	buf   []byte

	dstToEp []int32 // node id -> endpoint ordinal (-1 when unused)

	// Replay state (generate mode when recs is nil).
	tr   *Trace
	recs []int32
	ri   int

	rec *Trace // recording sink (nil when not recording)

	postF wlPostFrame
	pAt   units.Time
	pSize int32
	pEp   int32
	pc    int
	done  bool
}

// nextGen pops the earliest client arrival and redraws its clock.
func (f *injectFrame) nextGen() (at units.Time, size int32, epi, client int32, ok bool) {
	if f.heap.len() == 0 {
		return 0, 0, 0, 0, false
	}
	ci := f.heap.min()
	c := &f.heap.clients[ci]
	at, client, epi = c.next, c.id, c.ep
	size = int32(f.sizes.draw(&c.rand))
	nxt := f.clock.next(at, &c.rand)
	if nxt >= f.clock.end {
		f.heap.pop()
	} else {
		c.next = nxt
		f.heap.fix()
	}
	return at, size, epi, client, true
}

// nextReplay walks this injector's slice of the recorded trace.
func (f *injectFrame) nextReplay() (at units.Time, size int32, epi, client int32, ok bool) {
	if f.ri >= len(f.recs) {
		return 0, 0, 0, 0, false
	}
	r := &f.tr.Recs[f.recs[f.ri]]
	f.ri++
	return r.At, r.Size, f.dstToEp[r.Dst], r.Client, true
}

func (f *injectFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0: // loop head: admit the next arrival
			var at units.Time
			var size, epi, client int32
			var ok bool
			if f.recs != nil {
				at, size, epi, client, ok = f.nextReplay()
			} else {
				at, size, epi, client, ok = f.nextGen()
			}
			if !ok {
				f.pc = 3
				continue
			}
			// Pace to the arrival; a backlogged injector (fabric
			// backpressure pushed it past the deadline) posts immediately,
			// open-loop.
			if d := at - t.Now(); d > 0 {
				t.Advance(d)
			}
			if f.rec != nil {
				f.rec.add(f.cidx, client, at, size, f.dstOf[epi])
			}
			if f.res.Offered == 0 || at < f.res.FirstAt {
				f.res.FirstAt = at
			}
			f.res.Offered++
			f.pAt, f.pSize, f.pEp = at, size, epi
			f.postF.ep = f.eps[epi]
			f.postF.msg = f.buf[:size]
			f.pc = 1
			f.postF.start(t)
			return
		case 1: // post returned: enqueue completion bookkeeping
			if err := f.eps[f.pEp].LastPost(); err != nil {
				f.res.Failed++
			} else {
				f.rings[f.pEp].push(compEntry{at: f.pAt, size: f.pSize})
			}
			f.pc = 2
			f.w.StartProgress(t)
			return
		case 2:
			f.pc = 0
		case 3: // drain the in-flight tail
			for _, ep := range f.eps {
				if ep.InFlight() > 0 {
					f.w.StartProgress(t)
					return
				}
			}
			f.done = true
			f.b.finished++
			t.Return()
			return
		}
	}
}

// onComplete is the worker's send-completion callback: completions retire
// FIFO per endpoint, so each pops its ring in order.
func (f *injectFrame) onComplete(t *sim.Task, ep *uct.Ep, count int, err error) {
	var ring *compRing
	for i, e := range f.eps {
		if e == ep {
			ring = &f.rings[i]
			break
		}
	}
	if ring == nil {
		panic("workload: completion for unknown endpoint")
	}
	now := t.Now()
	for i := 0; i < count; i++ {
		e := ring.pop()
		if err != nil {
			f.res.Failed++
			continue
		}
		f.res.Delivered++
		f.res.Bytes += uint64(e.size)
		f.res.Latency.Add((now - e.at).Ns())
		if now > f.res.LastDone {
			f.res.LastDone = now
		}
	}
}

// wlPostFrame posts one put, short or bcopy by size, spinning on worker
// progress while the transmit queue is full (the perftest post discipline).
// Errors other than a full queue are left in Ep.LastPost for the caller.
type wlPostFrame struct {
	w   *uct.Worker
	ep  *uct.Ep
	msg []byte
	pc  int
}

func (f *wlPostFrame) start(t *sim.Task) {
	f.pc = 0
	t.Call(f)
}

func (f *wlPostFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			f.pc = 1
			if len(f.msg) <= mlx.InlineMax {
				f.ep.StartPutShort(t, 0, f.msg)
			} else {
				f.ep.StartPutBcopy(t, 0, f.msg)
			}
			return
		case 1:
			if f.ep.LastPost() == uct.ErrNoResource {
				f.pc = 2
				f.w.StartProgress(t)
				return
			}
			t.Return()
			return
		case 2:
			f.pc = 0
		}
	}
}

// collect assembles the result after the kernel ran to completion.
func (b *builder) collect() (*Result, error) {
	for _, f := range b.injectors {
		if !f.done {
			return nil, fmt.Errorf("workload %q: injector for cohort %q did not finish (deadlocked fabric?)",
				b.spec.Name, b.spec.Cohorts[f.cidx].Name)
		}
		rec := &f.res.Recovery
		for _, ep := range f.eps {
			qp := ep.QP()
			rec.AckTimeouts += qp.AckTimeouts
			rec.SeqNaksRecv += qp.SeqNaksRecv
			rec.RNRNaksRecv += qp.RNRNaksRecv
			rec.Retransmits += qp.Retransmits + qp.RnrRetransmits
		}
	}
	var first, last units.Time
	firstSet := false
	for i := range b.res.Cohorts {
		c := &b.res.Cohorts[i]
		if c.Offered == 0 {
			continue
		}
		if !firstSet || c.FirstAt < first {
			first, firstSet = c.FirstAt, true
		}
		if c.LastDone > last {
			last = c.LastDone
		}
	}
	if firstSet {
		b.res.Elapsed = last - first
	}
	return b.res, nil
}
