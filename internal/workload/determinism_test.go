package workload

import (
	"bytes"
	"fmt"
	"testing"

	"breakband/internal/campaign"
	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/units"
)

// mixedSpec is a compact two-cohort spec used by the decoupling and fault
// tests: opposing flows, different processes, a mid-run envelope.
func mixedSpec() *Spec {
	return &Spec{
		Name:     "mixed",
		Nodes:    8,
		Topology: "fattree",
		Cohorts: []Cohort{{
			Name:     "bursty",
			Clients:  24,
			Src:      []int{4, 5, 6, 7},
			Dst:      []int{0, 1},
			Duration: 120 * units.Microsecond,
			Arrival:  ArrivalSpec{Process: ProcWeibull, Rate: 25e3, Shape: 0.7},
			Size: SizeSpec{Dist: SizeDistChoice, Choices: []SizeChoice{
				{Bytes: 32, Weight: 3}, {Bytes: 256, Weight: 1}}},
			Envelope: []EnvelopeWindow{{From: 40 * units.Microsecond, To: 80 * units.Microsecond, Factor: 3}},
		}, {
			Name:     "steady",
			Clients:  8,
			Src:      []int{0, 1},
			Dst:      []int{4, 5, 6, 7},
			Start:    20 * units.Microsecond,
			Duration: 80 * units.Microsecond,
			Arrival:  ArrivalSpec{Process: ProcGamma, Rate: 10e3, Shape: 4},
			Size:     SizeSpec{Dist: SizeDistLogNormal, Mean: 1024, CV: 0.5},
		}},
	}
}

// TestSerialParallelCampaignIdentical runs a multi-seed campaign once on one
// worker and once on eight; the recorded traces must be bit-identical, byte
// for byte, whatever the pool width.
func TestSerialParallelCampaignIdentical(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13}
	record := func(_ int, seed uint64) []byte {
		spec := incastSpec()
		cfg := spec.BuildConfig(config.NoiseOff, seed)
		sys := node.NewSystem(cfg, spec.Nodes)
		defer sys.Shutdown()
		res, err := Run(spec, sys, RunOpt{Record: true})
		if err != nil {
			panic(fmt.Sprintf("Run(seed %d): %v", seed, err))
		}
		return res.Trace.Encode()
	}
	serial := campaign.Map(1, seeds, record)
	parallel := campaign.Map(8, seeds, record)
	for i, seed := range seeds {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("seed %d: serial and parallel traces differ", seed)
		}
	}
	// Distinct seeds must produce distinct schedules (the campaign is not
	// degenerately reusing one stream).
	if bytes.Equal(serial[0], serial[1]) {
		t.Error("seeds 1 and 2 produced identical traces")
	}
}

// TestTraceIndependentOfFaults asserts the open-loop property: the recorded
// arrival schedule is a pure function of spec and seed. Turning on lossy
// links must not move, drop, or resize a single recorded arrival, and a
// trace recorded under faults replays bit-identically under faults.
func TestTraceIndependentOfFaults(t *testing.T) {
	clean := runSpec(t, mixedSpec(), config.NoiseOff, 11, RunOpt{Record: true})

	lossy := mixedSpec()
	lossy.Faults = FaultSpec{DropRate: 0.02}
	faulty := runSpec(t, lossy, config.NoiseOff, 11, RunOpt{Record: true})

	if !bytes.Equal(clean.Trace.Encode(), faulty.Trace.Encode()) {
		t.Fatal("fault injection changed the recorded arrival schedule")
	}

	// Replay the faulty-run trace under the same lossy config: the re-recorded
	// trace must be byte-identical, faults and all.
	rep := runSpec(t, lossy, config.NoiseOff, 11, RunOpt{Record: true, Replay: faulty.Trace})
	if !bytes.Equal(rep.Trace.Encode(), faulty.Trace.Encode()) {
		t.Fatal("replay under lossy links is not bit-identical")
	}
	for i := range faulty.Cohorts {
		a, b := &faulty.Cohorts[i], &rep.Cohorts[i]
		if a.Delivered != b.Delivered || a.LastDone != b.LastDone {
			t.Fatalf("cohort %s: replay delivery differs: %d@%v vs %d@%v",
				a.Name, a.Delivered, a.LastDone, b.Delivered, b.LastDone)
		}
	}
}

// perClient canonicalizes a trace into per-client arrival sequences for one
// cohort (each client's sequence is strictly ordered in time, so this is
// scheduler-independent).
func perClient(tr *Trace, cohort int32) map[int32][]Rec {
	out := map[int32][]Rec{}
	for _, rec := range tr.Recs {
		if rec.Cohort == cohort {
			out[rec.Client] = append(out[rec.Client], rec)
		}
	}
	return out
}

// TestCohortDecoupling deletes one cohort and asserts the other's arrivals
// are untouched: per-cohort RNG streams mean tenants cannot perturb each
// other's offered traffic.
func TestCohortDecoupling(t *testing.T) {
	both := runSpec(t, mixedSpec(), config.NoiseOff, 4, RunOpt{Record: true})

	solo := mixedSpec()
	solo.Cohorts = solo.Cohorts[:1] // drop "steady"
	alone := runSpec(t, solo, config.NoiseOff, 4, RunOpt{Record: true})

	want := perClient(both.Trace, 0)
	got := perClient(alone.Trace, 0)
	if len(got) != len(want) {
		t.Fatalf("client count changed: %d vs %d", len(got), len(want))
	}
	for id, recs := range want {
		g := got[id]
		if len(g) != len(recs) {
			t.Fatalf("client %d: arrival count %d vs %d", id, len(g), len(recs))
		}
		for i := range recs {
			if g[i] != recs[i] {
				t.Fatalf("client %d arrival %d: %+v vs %+v", id, i, g[i], recs[i])
			}
		}
	}
}
