package workload

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"breakband/internal/rng"
	"breakband/internal/stats"
	"breakband/internal/units"
)

// clockFor compiles a bare arrival clock for distribution tests: cohort
// start 0, a horizon long enough that no test draw is retired.
func clockFor(proc string, rate, shape float64, env []EnvelopeWindow) arrivalClock {
	c := &Cohort{
		Start:    0,
		Duration: units.MaxTime / 2,
		Arrival:  ArrivalSpec{Process: proc, Rate: rate, Shape: shape},
		Envelope: env,
	}
	return newArrivalClock(c)
}

// gaps draws n consecutive interarrival times (in picoseconds) from a fixed
// stream.
func gaps(clock arrivalClock, streamName string, n int) []float64 {
	r := rng.Stream(99, streamName)
	out := make([]float64, n)
	prev := units.Time(0)
	for i := range out {
		next := clock.next(prev, r)
		out[i] = float64(next - prev)
		prev = next
	}
	return out
}

// TestInterarrivalMoments is the fixed-seed moment battery: the mean of every
// process must be 1/rate and the CV must match the analytic value for the
// process (1 for Poisson, 1/sqrt(shape) for Gamma, the Gamma-function ratio
// for Weibull).
func TestInterarrivalMoments(t *testing.T) {
	const n = 200_000
	cases := []struct {
		proc   string
		rate   float64 // per second
		shape  float64
		wantCV float64
	}{
		{ProcPoisson, 1e6, 0, 1},
		{ProcGamma, 2e6, 4, 0.5},
		{ProcGamma, 5e5, 0.5, math.Sqrt2},
		{ProcWeibull, 1e6, 0.7, rng.WeibullCV(0.7)},
		{ProcWeibull, 1e6, 2, rng.WeibullCV(2)},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("%s/shape=%g", tc.proc, tc.shape)
		t.Run(name, func(t *testing.T) {
			clock := clockFor(tc.proc, tc.rate, tc.shape, nil)
			var s stats.Sample
			for _, g := range gaps(clock, "moments/"+name, n) {
				s.Add(g)
			}
			wantMean := float64(units.Second) / tc.rate // ps per arrival
			if rel := math.Abs(s.Mean()-wantMean) / wantMean; rel > 0.02 {
				t.Errorf("mean %.1fps, want %.1fps (rel err %.4f)", s.Mean(), wantMean, rel)
			}
			cv := s.Std() / s.Mean()
			if rel := math.Abs(cv-tc.wantCV) / tc.wantCV; rel > 0.03 {
				t.Errorf("cv %.4f, want %.4f (rel err %.4f)", cv, tc.wantCV, rel)
			}
		})
	}
}

// TestEnvelopeWindowRates checks the operational time change: within a
// factor-F window the realized arrival rate is F times the base rate, and
// outside every window it is the base rate.
func TestEnvelopeWindowRates(t *testing.T) {
	const (
		rate   = 1e8 // per second, high enough for tight counts
		factor = 3.0
	)
	var (
		winFrom = 100 * units.Microsecond
		winTo   = 300 * units.Microsecond
		horizon = 400 * units.Microsecond
	)
	clock := clockFor(ProcPoisson, rate, 0, []EnvelopeWindow{{From: winFrom, To: winTo, Factor: factor}})
	r := rng.Stream(17, "envelope")
	var before, inside, after int
	for at := clock.next(0, r); at < horizon; at = clock.next(at, r) {
		switch {
		case at < winFrom:
			before++
		case at < winTo:
			inside++
		default:
			after++
		}
	}
	ratePs := rate / float64(units.Second)
	check := func(name string, got int, span units.Time, f float64) {
		want := ratePs * f * float64(span)
		if rel := math.Abs(float64(got)-want) / want; rel > 0.05 {
			t.Errorf("%s: %d arrivals, want ~%.0f (rel err %.4f)", name, got, want, rel)
		}
	}
	check("before window", before, winFrom, 1)
	check("inside window", inside, winTo-winFrom, factor)
	check("after window", after, horizon-winTo, 1)
}

// TestPoissonChiSquare bins the exponential CDF of generated interarrivals
// into 20 equiprobable cells; the chi-square statistic must stay below the
// 19-dof p=0.001 critical value at the fixed seed.
func TestPoissonChiSquare(t *testing.T) {
	const (
		n    = 20_000
		bins = 20
		crit = 43.82 // chi-square, 19 dof, p = 0.001
	)
	clock := clockFor(ProcPoisson, 1e6, 0, nil)
	var obs [bins]int
	for _, g := range gaps(clock, "chisq", n) {
		u := 1 - math.Exp(-clock.ratePs*g)
		b := int(u * bins)
		if b >= bins {
			b = bins - 1
		}
		obs[b]++
	}
	exp := float64(n) / bins
	chi2 := 0.0
	for _, o := range obs {
		d := float64(o) - exp
		chi2 += d * d / exp
	}
	if chi2 > crit {
		t.Errorf("chi-square %.2f exceeds the %.2f critical value", chi2, crit)
	}
}

// TestPoissonKS is the Kolmogorov-Smirnov sanity check on the same
// exponential transform: sqrt(n)*D_n must stay below the p=0.001 critical
// value at the fixed seed.
func TestPoissonKS(t *testing.T) {
	const (
		n    = 20_000
		crit = 1.95 // K_alpha for p = 0.001
	)
	clock := clockFor(ProcPoisson, 1e6, 0, nil)
	us := make([]float64, 0, n)
	for _, g := range gaps(clock, "ks", n) {
		us = append(us, 1-math.Exp(-clock.ratePs*g))
	}
	sort.Float64s(us)
	d := 0.0
	for i, u := range us {
		hi := float64(i+1)/n - u // D+ at this order statistic
		lo := u - float64(i)/n   // D-
		if hi > d {
			d = hi
		}
		if lo > d {
			d = lo
		}
	}
	if stat := math.Sqrt(n) * d; stat > crit {
		t.Errorf("KS statistic %.3f exceeds the %.2f critical value", stat, crit)
	}
}
