package workload

import (
	"fmt"
	"math"

	"breakband/internal/config"
	"breakband/internal/faults"
	"breakband/internal/topo"
	"breakband/internal/uct"
	"breakband/internal/units"
)

// Arrival process names accepted by ArrivalSpec.Process.
const (
	ProcPoisson = "poisson"
	ProcGamma   = "gamma"
	ProcWeibull = "weibull"
)

// Size distribution names accepted by SizeSpec.Dist.
const (
	SizeDistFixed     = "fixed"
	SizeDistUniform   = "uniform"
	SizeDistLogNormal = "lognormal"
	SizeDistChoice    = "choice"
)

// MaxMsgBytes bounds a single workload message: everything up to the UCT
// bcopy ceiling posts as one put.
const MaxMsgBytes = uct.MaxBcopy

// Spec is a declarative workload: a topology plus a set of client cohorts.
// Specs are plain data — parse one with ParseSpec/LoadSpec or build it
// directly — and must pass Validate before compiling into injectors.
type Spec struct {
	// Name labels the workload in reports and traces.
	Name string
	// Nodes is the host count of the simulated system (>= 2).
	Nodes int
	// Topology is a topo kind name: auto, backtoback, switch or fattree.
	// Empty means auto.
	Topology string
	// Radix is the fat-tree switch radix (0 = smallest that fits).
	Radix int
	// Credits is the per-link credit budget (0 = topo.DefaultCredits).
	Credits int
	// RxBudget bounds each NIC's receive-side pend buffering
	// (config.Config.NICRxBudget; 0 = unbounded).
	RxBudget int
	// Seed overrides the run seed when nonzero.
	Seed uint64
	// Faults optionally enables stochastic link faults for the run.
	Faults FaultSpec
	// Cohorts are the client populations offering traffic.
	Cohorts []Cohort
}

// FaultSpec is the subset of the fault schedule a workload spec can enable:
// stochastic per-frame link faults. Scripted faults (flaps, crashes) stay
// CLI/test territory.
type FaultSpec struct {
	DropRate    float64
	CorruptRate float64
}

// Cohort is one client population: every client shares the arrival process,
// size distribution and active window, and maps round-robin onto the Src and
// Dst node sets (client i sends from Src[i%len(Src)] to Dst[i%len(Dst)]).
type Cohort struct {
	Name    string
	Clients int
	// Src and Dst are node indices in [0, Spec.Nodes).
	Src, Dst []int
	// Start and Duration bound the cohort's offered-traffic window:
	// arrivals are generated in [Start, Start+Duration).
	Start    units.Time
	Duration units.Time
	Arrival  ArrivalSpec
	Size     SizeSpec
	// Envelope optionally modulates the arrival rate with
	// piecewise-constant factors; outside every window the factor is 1.
	Envelope []EnvelopeWindow
}

// ArrivalSpec selects the interarrival process of a cohort's clients.
type ArrivalSpec struct {
	// Process is poisson, gamma or weibull.
	Process string
	// Rate is the per-client mean arrival rate in messages per second
	// (before envelope modulation).
	Rate float64
	// Shape is the gamma/weibull shape parameter (ignored for poisson;
	// 1 reduces both to poisson).
	Shape float64
}

// SizeSpec selects a cohort's message-size distribution. Sizes are bytes in
// [1, MaxMsgBytes].
type SizeSpec struct {
	// Dist is fixed, uniform, lognormal or choice.
	Dist string
	// Bytes is the fixed size (Dist == fixed).
	Bytes int
	// Min and Max bound the uniform draw (Dist == uniform), inclusive.
	Min, Max int
	// Mean and CV parameterize the lognormal draw (Dist == lognormal);
	// draws clamp into [1, MaxMsgBytes].
	Mean, CV float64
	// Choices is the weighted mixture (Dist == choice).
	Choices []SizeChoice
}

// SizeChoice is one element of a weighted size mixture.
type SizeChoice struct {
	Bytes  int
	Weight float64
}

// EnvelopeWindow scales a cohort's arrival rate by Factor over [From, To)
// (cohort-relative times). Windows must not overlap.
type EnvelopeWindow struct {
	From, To units.Time
	Factor   float64
}

// ClientSrc reports the source node of the cohort's client i.
func (c *Cohort) ClientSrc(i int) int { return c.Src[i%len(c.Src)] }

// ClientDst reports the destination node of the cohort's client i.
func (c *Cohort) ClientDst(i int) int { return c.Dst[i%len(c.Dst)] }

// MeanBytes reports the mean message size of the cohort's distribution.
func (s *SizeSpec) MeanBytes() float64 {
	switch s.Dist {
	case SizeDistFixed:
		return float64(s.Bytes)
	case SizeDistUniform:
		return float64(s.Min+s.Max) / 2
	case SizeDistLogNormal:
		return s.Mean
	case SizeDistChoice:
		var sum, w float64
		for _, c := range s.Choices {
			sum += float64(c.Bytes) * c.Weight
			w += c.Weight
		}
		return sum / w
	}
	return 0
}

// MaxBytes reports an upper bound on the cohort's message size (the buffer
// sizing bound; lognormal clamps at MaxMsgBytes).
func (s *SizeSpec) MaxBytes() int {
	switch s.Dist {
	case SizeDistFixed:
		return s.Bytes
	case SizeDistUniform:
		return s.Max
	case SizeDistLogNormal:
		return MaxMsgBytes
	case SizeDistChoice:
		max := 0
		for _, c := range s.Choices {
			if c.Bytes > max {
				max = c.Bytes
			}
		}
		return max
	}
	return 0
}

// TopoSpec resolves the spec's topology fields into a topo.Spec.
func (s *Spec) TopoSpec() (topo.Spec, error) {
	kind := topo.Auto
	if s.Topology != "" {
		var err error
		kind, err = topo.ParseKind(s.Topology)
		if err != nil {
			return topo.Spec{}, err
		}
	}
	return topo.Spec{Kind: kind, Radix: s.Radix, Credits: s.Credits}, nil
}

// End reports the cohort-absolute end of the offered-traffic window.
func (c *Cohort) End() units.Time { return c.Start + c.Duration }

// Horizon reports the latest cohort end across the spec — the time by which
// all offered traffic has been generated.
func (s *Spec) Horizon() units.Time {
	var h units.Time
	for i := range s.Cohorts {
		if e := s.Cohorts[i].End(); e > h {
			h = e
		}
	}
	return h
}

// TotalClients reports the client count summed over cohorts.
func (s *Spec) TotalClients() int {
	n := 0
	for i := range s.Cohorts {
		n += s.Cohorts[i].Clients
	}
	return n
}

// Cohort returns the named cohort, or nil.
func (s *Spec) Cohort(name string) *Cohort {
	for i := range s.Cohorts {
		if s.Cohorts[i].Name == name {
			return &s.Cohorts[i]
		}
	}
	return nil
}

// Validate checks the whole spec up front and reports the first problem
// found, or nil. A validated spec is guaranteed to compile into injectors
// without panicking.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if s.Nodes < 2 {
		return fmt.Errorf("workload %q: nodes must be >= 2, got %d", s.Name, s.Nodes)
	}
	ts, err := s.TopoSpec()
	if err != nil {
		return fmt.Errorf("workload %q: %v", s.Name, err)
	}
	// Validate the topology against a switched reference fabric (the
	// workload runner always builds switched systems).
	probe := config.TX2CX4(config.NoiseOff, 1, true)
	if err := ts.Validate(probe.Fabric, s.Nodes); err != nil {
		return fmt.Errorf("workload %q: %v", s.Name, err)
	}
	if s.RxBudget < 0 {
		return fmt.Errorf("workload %q: rxbudget must be >= 0, got %d", s.Name, s.RxBudget)
	}
	if err := s.Faults.validate(); err != nil {
		return fmt.Errorf("workload %q: %v", s.Name, err)
	}
	if len(s.Cohorts) == 0 {
		return fmt.Errorf("workload %q: at least one cohort required", s.Name)
	}
	seen := make(map[string]bool, len(s.Cohorts))
	for i := range s.Cohorts {
		c := &s.Cohorts[i]
		if c.Name == "" {
			return fmt.Errorf("workload %q: cohort %d needs a name", s.Name, i)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload %q: duplicate cohort name %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(s.Nodes); err != nil {
			return fmt.Errorf("workload %q: cohort %q: %v", s.Name, c.Name, err)
		}
	}
	return nil
}

func (f *FaultSpec) validate() error {
	fc := faults.Config{DropRate: f.DropRate, CorruptRate: f.CorruptRate}
	if err := fc.Validate(); err != nil {
		return err
	}
	return nil
}

func (c *Cohort) validate(nodes int) error {
	if c.Clients <= 0 {
		return fmt.Errorf("clients must be positive, got %d", c.Clients)
	}
	if len(c.Src) == 0 || len(c.Dst) == 0 {
		return fmt.Errorf("src and dst node sets must be non-empty")
	}
	for _, set := range []struct {
		name  string
		nodes []int
	}{{"src", c.Src}, {"dst", c.Dst}} {
		for _, n := range set.nodes {
			if n < 0 || n >= nodes {
				return fmt.Errorf("%s node %d out of range [0, %d)", set.name, n, nodes)
			}
		}
	}
	// Round-robin assignment repeats with period lcm(|Src|, |Dst|) <=
	// |Src|*|Dst|; checking one period (or every client if fewer) covers
	// all self-sends.
	period := len(c.Src) * len(c.Dst)
	if c.Clients < period {
		period = c.Clients
	}
	for i := 0; i < period; i++ {
		if c.ClientSrc(i) == c.ClientDst(i) {
			return fmt.Errorf("client %d would send to itself (node %d)", i, c.ClientSrc(i))
		}
	}
	if c.Start < 0 {
		return fmt.Errorf("start must be >= 0, got %v", c.Start)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("duration must be positive, got %v", c.Duration)
	}
	if err := c.Arrival.validate(); err != nil {
		return err
	}
	if err := c.Size.validate(); err != nil {
		return err
	}
	return validateEnvelope(c.Envelope)
}

func (a *ArrivalSpec) validate() error {
	switch a.Process {
	case ProcPoisson:
	case ProcGamma, ProcWeibull:
		if a.Shape <= 0 || math.IsNaN(a.Shape) || math.IsInf(a.Shape, 0) {
			return fmt.Errorf("%s shape must be positive and finite, got %v", a.Process, a.Shape)
		}
	default:
		return fmt.Errorf("unknown arrival process %q (want poisson, gamma or weibull)", a.Process)
	}
	if !(a.Rate > 0) || math.IsInf(a.Rate, 0) {
		return fmt.Errorf("arrival rate must be positive and finite, got %v", a.Rate)
	}
	return nil
}

func (s *SizeSpec) validate() error {
	checkBytes := func(what string, b int) error {
		if b < 1 || b > MaxMsgBytes {
			return fmt.Errorf("%s %d outside [1, %d]", what, b, MaxMsgBytes)
		}
		return nil
	}
	switch s.Dist {
	case SizeDistFixed:
		return checkBytes("fixed size", s.Bytes)
	case SizeDistUniform:
		if err := checkBytes("uniform min", s.Min); err != nil {
			return err
		}
		if err := checkBytes("uniform max", s.Max); err != nil {
			return err
		}
		if s.Min > s.Max {
			return fmt.Errorf("uniform min %d > max %d", s.Min, s.Max)
		}
		return nil
	case SizeDistLogNormal:
		if !(s.Mean >= 1) || s.Mean > MaxMsgBytes || math.IsInf(s.Mean, 0) {
			return fmt.Errorf("lognormal mean %v outside [1, %d]", s.Mean, MaxMsgBytes)
		}
		if !(s.CV > 0) || math.IsInf(s.CV, 0) {
			return fmt.Errorf("lognormal cv must be positive and finite, got %v", s.CV)
		}
		return nil
	case SizeDistChoice:
		if len(s.Choices) == 0 {
			return fmt.Errorf("choice distribution needs at least one entry")
		}
		for i, c := range s.Choices {
			if err := checkBytes(fmt.Sprintf("choice %d size", i), c.Bytes); err != nil {
				return err
			}
			if !(c.Weight > 0) || math.IsInf(c.Weight, 0) {
				return fmt.Errorf("choice %d weight must be positive and finite, got %v", i, c.Weight)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown size distribution %q (want fixed, uniform, lognormal or choice)", s.Dist)
	}
}

func validateEnvelope(ws []EnvelopeWindow) error {
	for i, w := range ws {
		if w.From < 0 || w.To <= w.From {
			return fmt.Errorf("envelope window %d: need 0 <= from < to, got [%v, %v)", i, w.From, w.To)
		}
		if !(w.Factor > 0) || math.IsInf(w.Factor, 0) {
			return fmt.Errorf("envelope window %d: factor must be positive and finite, got %v", i, w.Factor)
		}
		for j := 0; j < i; j++ {
			if w.From < ws[j].To && ws[j].From < w.To {
				return fmt.Errorf("envelope windows %d and %d overlap ([%v, %v) vs [%v, %v))",
					j, i, ws[j].From, ws[j].To, w.From, w.To)
			}
		}
	}
	return nil
}

// BuildConfig compiles a validated spec into a run configuration: topology,
// credits, NIC rx budget and fault rates land in the returned Config. The
// spec's Seed (when nonzero) overrides seed. Call Validate first —
// BuildConfig trusts its input.
func (s *Spec) BuildConfig(noise config.NoiseLevel, seed uint64) *config.Config {
	if s.Seed != 0 {
		seed = s.Seed
	}
	cfg := config.TX2CX4(noise, seed, true)
	ts, err := s.TopoSpec()
	if err != nil {
		panic("workload: BuildConfig on unvalidated spec: " + err.Error())
	}
	cfg.Topology = ts
	cfg.NICRxBudget = s.RxBudget
	cfg.Faults.DropRate = s.Faults.DropRate
	cfg.Faults.CorruptRate = s.Faults.CorruptRate
	return cfg
}
