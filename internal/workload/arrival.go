package workload

import (
	"math"

	"breakband/internal/rng"
	"breakband/internal/units"
)

// arrivalClock is a cohort's compiled interarrival generator. It converts
// unit-mean renewal draws into wall-clock arrival times, applying the
// cohort's rate envelope by operational time change: a draw worth W units of
// work elapses when the integral of rate*factor over wall time reaches W.
// For Poisson arrivals the time change is exact (a thinned/stretched Poisson
// process is again Poisson with the modulated rate); for Gamma and Weibull
// renewals it is the standard rate-modulation approximation.
type arrivalClock struct {
	proc    string
	shape   float64
	invMean float64 // 1 / mean of the unit draw (rescales to mean 1)
	ratePs  float64 // base arrivals per picosecond
	env     []EnvelopeWindow
	start   units.Time // cohort-absolute window
	end     units.Time
}

func newArrivalClock(c *Cohort) arrivalClock {
	a := arrivalClock{
		proc:   c.Arrival.Process,
		shape:  c.Arrival.Shape,
		ratePs: c.Arrival.Rate / float64(units.Second),
		env:    sortedEnvelope(c.Envelope),
		start:  c.Start,
		end:    c.End(),
	}
	switch a.proc {
	case ProcPoisson:
		a.invMean = 1
	case ProcGamma:
		a.invMean = 1 / a.shape
	case ProcWeibull:
		a.invMean = 1 / rng.WeibullMean(a.shape)
	}
	return a
}

// sortedEnvelope returns the windows ordered by From (validated
// non-overlapping, so From order is total). The spec's slice is not mutated.
func sortedEnvelope(ws []EnvelopeWindow) []EnvelopeWindow {
	if len(ws) == 0 {
		return nil
	}
	out := make([]EnvelopeWindow, len(ws))
	copy(out, ws)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].From < out[j-1].From; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// drawWork returns one unit-mean renewal draw from the client's stream.
// Exactly one logical draw per call, always in the same order, so a client's
// stream replays identically whatever the scheduler does around it.
func (a *arrivalClock) drawWork(r *rng.Rand) float64 {
	switch a.proc {
	case ProcGamma:
		return r.Gamma(a.shape) * a.invMean
	case ProcWeibull:
		return r.Weibull(a.shape) * a.invMean
	default:
		return r.Exp()
	}
}

// next converts the client's draw into the next arrival instant after prev
// (cohort-absolute). It walks the envelope integrating rate*factor; outside
// every window the factor is 1. Returns a time past the cohort end when the
// client's window is exhausted (the caller retires it).
func (a *arrivalClock) next(prev units.Time, r *rng.Rand) units.Time {
	// R is the remaining work expressed as picoseconds at factor 1.
	R := a.drawWork(r) / a.ratePs
	rel := float64(prev - a.start) // envelope times are cohort-relative
	for i := range a.env {
		w := &a.env[i]
		wf, wt := float64(w.From), float64(w.To)
		if rel >= wt {
			continue
		}
		if rel < wf { // gap before the window runs at factor 1
			gap := wf - rel
			if R <= gap {
				rel += R
				R = 0
				break
			}
			R -= gap
			rel = wf
		}
		capacity := (wt - rel) * w.Factor
		if R <= capacity {
			rel += R / w.Factor
			R = 0
			break
		}
		R -= capacity
		rel = wt
	}
	rel += R // past the last window: factor 1 forever
	if rel > float64(math.MaxInt64) {
		return units.MaxTime
	}
	return a.start + units.Time(math.Round(rel))
}

// sizeGen is a cohort's compiled message-size generator. Like the arrival
// clock it consumes a fixed number of draws per call (zero for fixed, one
// otherwise).
type sizeGen struct {
	dist     string
	bytes    int // fixed
	min, max int // uniform
	mean, cv float64
	choices  []SizeChoice
	cum      []float64 // cumulative weights, normalized to [0, 1]
}

func newSizeGen(s *SizeSpec) sizeGen {
	g := sizeGen{dist: s.Dist, bytes: s.Bytes, min: s.Min, max: s.Max,
		mean: s.Mean, cv: s.CV, choices: s.Choices}
	if s.Dist == SizeDistChoice {
		var total float64
		for _, c := range s.Choices {
			total += c.Weight
		}
		g.cum = make([]float64, len(s.Choices))
		acc := 0.0
		for i, c := range s.Choices {
			acc += c.Weight / total
			g.cum[i] = acc
		}
		g.cum[len(g.cum)-1] = 1 // close rounding gaps
	}
	return g
}

func (g *sizeGen) draw(r *rng.Rand) int {
	switch g.dist {
	case SizeDistUniform:
		span := g.max - g.min + 1
		return g.min + int(r.Float64()*float64(span))%span
	case SizeDistLogNormal:
		b := int(math.Round(r.LogNormal(g.mean, g.cv)))
		if b < 1 {
			b = 1
		}
		if b > MaxMsgBytes {
			b = MaxMsgBytes
		}
		return b
	case SizeDistChoice:
		u := r.Float64()
		for i, c := range g.cum {
			if u < c {
				return g.choices[i].Bytes
			}
		}
		return g.choices[len(g.choices)-1].Bytes
	default: // fixed: no draw
		return g.bytes
	}
}

// clientState is one client's generator state, stored by value: a million
// clients are one flat slice, not a million heap objects.
type clientState struct {
	rand rng.Rand   // per-client stream (value copy; draws mutate in place)
	next units.Time // scheduled next arrival (cohort-absolute)
	id   int32      // cohort-local client index
	ep   int32      // injector-local endpoint ordinal (destination)
}

// clientHeap is a binary min-heap of injector-local client slots ordered by
// (next arrival, client id) — a total order that is a pure function of the
// draws, never of scheduling. Storage is preallocated at compile time; heap
// operations allocate nothing.
type clientHeap struct {
	clients []clientState
	slots   []int32 // heap of indices into clients
}

func (h *clientHeap) less(a, b int32) bool {
	ca, cb := &h.clients[a], &h.clients[b]
	if ca.next != cb.next {
		return ca.next < cb.next
	}
	return ca.id < cb.id
}

// init heapifies the current slots.
func (h *clientHeap) init() {
	for i := len(h.slots)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *clientHeap) len() int { return len(h.slots) }

// min reports the index (into clients) of the earliest client.
func (h *clientHeap) min() int32 { return h.slots[0] }

// fix restores heap order after the minimum client's next time changed.
func (h *clientHeap) fix() { h.siftDown(0) }

// pop removes the minimum client.
func (h *clientHeap) pop() {
	n := len(h.slots) - 1
	h.slots[0] = h.slots[n]
	h.slots = h.slots[:n]
	if n > 0 {
		h.siftDown(0)
	}
}

func (h *clientHeap) siftDown(i int) {
	n := len(h.slots)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(h.slots[l], h.slots[small]) {
			small = l
		}
		if r < n && h.less(h.slots[r], h.slots[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.slots[i], h.slots[small] = h.slots[small], h.slots[i]
		i = small
	}
}
