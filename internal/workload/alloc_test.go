package workload

import (
	"fmt"
	"testing"

	"breakband/internal/rng"
	"breakband/internal/units"
)

// TestArrivalGenerationZeroAlloc pins the injection-side generation loop —
// heap min, size draw, envelope-walked arrival clock, heap fix — at exactly
// zero allocations per arrival. Client state is stored by value in one flat
// slice, the heap operates on preallocated index slots, and every draw
// mutates the client's embedded stream in place, so a million-client cohort
// generates arrivals without a single heap object.
func TestArrivalGenerationZeroAlloc(t *testing.T) {
	const clients = 1024
	c := &Cohort{
		Name:     "gate",
		Clients:  clients,
		Start:    0,
		Duration: units.MaxTime / 2,
		Arrival:  ArrivalSpec{Process: ProcWeibull, Rate: 1e6, Shape: 0.7},
		Size: SizeSpec{Dist: SizeDistChoice, Choices: []SizeChoice{
			{Bytes: 32, Weight: 3}, {Bytes: 256, Weight: 1}}},
		Envelope: []EnvelopeWindow{
			{From: 10 * units.Microsecond, To: 20 * units.Microsecond, Factor: 3},
			{From: 40 * units.Microsecond, To: 50 * units.Microsecond, Factor: 0.5},
		},
	}
	clock := newArrivalClock(c)
	sizes := newSizeGen(&c.Size)
	h := &clientHeap{
		clients: make([]clientState, clients),
		slots:   make([]int32, clients),
	}
	for i := range h.clients {
		cs := &h.clients[i]
		cs.id = int32(i)
		cs.rand = *rng.Stream(1, fmt.Sprintf("alloc-gate/%d", i))
		cs.next = clock.next(0, &cs.rand)
		h.slots[i] = int32(i)
	}
	h.init()

	sink := 0
	if allocs := testing.AllocsPerRun(10_000, func() {
		cs := &h.clients[h.min()]
		sink += sizes.draw(&cs.rand)
		cs.next = clock.next(cs.next, &cs.rand)
		h.fix()
	}); allocs != 0 {
		t.Errorf("arrival generation allocates %.2f per arrival, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("size generator drew nothing")
	}
}
