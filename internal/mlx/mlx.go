// Package mlx defines the wire formats of the simulated NIC's work and
// completion queues, modelled on Mellanox mlx5 conventions: 64-byte Work
// Queue Entries (WQEs) with inline data segments, 64-byte Completion Queue
// Entries (CQEs) with an ownership byte and inline payload scatter for small
// messages, and power-of-two rings living in host memory.
//
// Everything is byte-encoded: software encodes a WQE into the bytes it PIO
// copies (or that the NIC DMA-reads), and the NIC decodes those bytes — so a
// corrupted or truncated descriptor fails loudly, as on real hardware.
package mlx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"breakband/internal/memsim"
)

// Fixed sizes.
const (
	WQESize   = 64 // one basic WQE building block ("the PIO occurs in 64-byte chunks")
	CQESize   = 64 // "a completion ... is 64 bytes in Mellanox InfiniBand"
	InlineMax = 32 // inline payload capacity of a single-chunk WQE
	// ScatterMax is the largest payload a recv CQE can carry inline
	// (CQE inline scatter, used for small sends so the payload and the
	// completion arrive in one DMA write).
	ScatterMax = 32
)

// Opcode is the WQE operation.
type Opcode uint8

// Opcodes.
const (
	OpNop Opcode = iota
	OpRDMAWrite
	OpSend
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	switch o {
	case OpNop:
		return "NOP"
	case OpRDMAWrite:
		return "RDMA_WRITE"
	case OpSend:
		return "SEND"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// WQE flag bits.
const (
	flagSignaled = 1 << 0
	flagInline   = 1 << 1
)

// WQE is a decoded work queue entry.
type WQE struct {
	Opcode   Opcode
	Signaled bool // request a CQE for this WQE's completion
	Inline   bool // payload embedded in the descriptor
	WQEIdx   uint16
	QPN      uint32
	AmID     uint8
	// Inline payload (Inline == true), at most InlineMax bytes.
	Payload []byte
	// Gather descriptor (Inline == false).
	GatherAddr uint64
	GatherLen  uint32
	// RDMA target (OpRDMAWrite).
	RemoteAddr uint64
}

// Layout of the 64-byte WQE:
//
//	 0: opcode  (1)    1: flags (1)    2: wqe idx (2)
//	 4: qpn (4)        8: payload len (4)   12: am id (1), pad (3)
//	16: remote addr (8)   24: gather addr (8)   32: inline payload (32)
const (
	offOpcode  = 0
	offFlags   = 1
	offWQEIdx  = 2
	offQPN     = 4
	offLen     = 8
	offAmID    = 12
	offRaddr   = 16
	offGather  = 24
	offPayload = 32
)

// Encode serializes w into a 64-byte descriptor.
func (w *WQE) Encode() ([WQESize]byte, error) {
	var b [WQESize]byte
	if w.Inline && len(w.Payload) > InlineMax {
		return b, fmt.Errorf("mlx: inline payload %d exceeds %d bytes", len(w.Payload), InlineMax)
	}
	b[offOpcode] = byte(w.Opcode)
	var fl byte
	if w.Signaled {
		fl |= flagSignaled
	}
	if w.Inline {
		fl |= flagInline
	}
	b[offFlags] = fl
	binary.LittleEndian.PutUint16(b[offWQEIdx:], w.WQEIdx)
	binary.LittleEndian.PutUint32(b[offQPN:], w.QPN)
	b[offAmID] = w.AmID
	binary.LittleEndian.PutUint64(b[offRaddr:], w.RemoteAddr)
	if w.Inline {
		binary.LittleEndian.PutUint32(b[offLen:], uint32(len(w.Payload)))
		copy(b[offPayload:], w.Payload)
	} else {
		binary.LittleEndian.PutUint32(b[offLen:], w.GatherLen)
		binary.LittleEndian.PutUint64(b[offGather:], w.GatherAddr)
	}
	return b, nil
}

// DecodeFrom parses a 64-byte descriptor into w, overwriting every field.
// The inline payload is copied into w's reusable Payload buffer, so a
// caller-owned scratch WQE decodes messages without allocating in steady
// state. On error w is left partially overwritten and must not be used.
func (w *WQE) DecodeFrom(b []byte) error {
	if len(b) < WQESize {
		return fmt.Errorf("mlx: short WQE (%d bytes)", len(b))
	}
	w.Opcode = Opcode(b[offOpcode])
	w.Signaled = b[offFlags]&flagSignaled != 0
	w.Inline = b[offFlags]&flagInline != 0
	w.WQEIdx = binary.LittleEndian.Uint16(b[offWQEIdx:])
	w.QPN = binary.LittleEndian.Uint32(b[offQPN:])
	w.AmID = b[offAmID]
	if w.Opcode == OpNop || w.Opcode > OpSend {
		return fmt.Errorf("mlx: bad WQE opcode %d", b[offOpcode])
	}
	n := binary.LittleEndian.Uint32(b[offLen:])
	w.RemoteAddr = binary.LittleEndian.Uint64(b[offRaddr:])
	if w.Inline {
		if n > InlineMax {
			return fmt.Errorf("mlx: inline length %d exceeds %d", n, InlineMax)
		}
		w.GatherAddr, w.GatherLen = 0, 0
		w.Payload = append(w.Payload[:0], b[offPayload:offPayload+int(n)]...)
	} else {
		w.GatherLen = n
		w.GatherAddr = binary.LittleEndian.Uint64(b[offGather:])
		w.Payload = w.Payload[:0]
	}
	return nil
}

// DecodeWQE parses a 64-byte descriptor into a fresh WQE.
func DecodeWQE(b []byte) (*WQE, error) {
	w := &WQE{}
	if err := w.DecodeFrom(b); err != nil {
		return nil, err
	}
	return w, nil
}

// CQEOp distinguishes completion kinds.
type CQEOp uint8

// CQE kinds.
const (
	CQEReq  CQEOp = iota // send/write request completed (initiator side)
	CQERecv              // incoming send landed (target side)
)

// CQE status codes (the mlx5 syndrome byte, reduced to what the model can
// produce). A nonzero status marks an error completion: the hardware gave up
// on the WQE and software must not treat the transfer as delivered.
const (
	// CQEOK is a successful completion.
	CQEOK uint8 = 0
	// CQERnrRetryExc reports that the remote peer kept answering RNR NAK
	// past the QP's retry budget (IBV_WC_RNR_RETRY_EXC_ERR). The CQE
	// retires every outstanding WQE up to its counter, all failed.
	CQERnrRetryExc uint8 = 1
	// CQEFlushErr reports a WQE flushed without transmission because the
	// QP was already in error state when it executed
	// (IBV_WC_WR_FLUSH_ERR) — e.g. software posted between retry
	// exhaustion and polling the error CQE.
	CQEFlushErr uint8 = 2
	// CQERetryExc reports transport-retry exhaustion
	// (IBV_WC_RETRY_EXC_ERR): the QP spent its retry budget on ACK
	// timeouts and sequence-error NAKs without forward progress — the
	// peer, or every path to it, is effectively unreachable. Distinct
	// from CQERnrRetryExc, where the peer was reachable but never ready.
	CQERetryExc uint8 = 3
	// CQEFatalErr reports that the local device itself died
	// (IBV_WC_FATAL_ERR): the NIC crashed with this WQE outstanding, and
	// the driver synthesized the completion while failing the QP.
	CQEFatalErr uint8 = 4
)

// CQE is a decoded completion queue entry.
type CQE struct {
	Op CQEOp
	// WQECounter is the producer counter of the last completed WQE; with
	// unsignaled completions it retires every earlier WQE too (paper §6).
	WQECounter uint16
	QPN        uint32
	ByteCnt    uint32
	AmID       uint8
	// Status is CQEOK for successful completions; a nonzero value (e.g.
	// CQERnrRetryExc) marks an error completion.
	Status uint8
	// Payload is the inline-scattered data for small CQERecv completions.
	Payload []byte
	// Gen is the ring-pass generation owning the slot; consumers compare
	// it against the expected generation for validity (mlx5 owner bit,
	// widened to a byte so torn generations are detectable in tests).
	Gen uint8
}

// CQE layout: 0 op, 1 am id, 2 wqe counter(2), 4 qpn(4), 8 byte count(4),
// 12 status, 16.. inline scatter, 63 generation/owner byte.
const (
	cqeOffOp      = 0
	cqeOffAmID    = 1
	cqeOffCounter = 2
	cqeOffQPN     = 4
	cqeOffByteCnt = 8
	cqeOffStatus  = 12
	cqeOffScatter = 16
	cqeOffGen     = 63
)

// Encode serializes the CQE.
func (c *CQE) Encode() ([CQESize]byte, error) {
	var b [CQESize]byte
	if len(c.Payload) > ScatterMax {
		return b, fmt.Errorf("mlx: CQE scatter %d exceeds %d bytes", len(c.Payload), ScatterMax)
	}
	b[cqeOffOp] = byte(c.Op)
	b[cqeOffAmID] = c.AmID
	binary.LittleEndian.PutUint16(b[cqeOffCounter:], c.WQECounter)
	binary.LittleEndian.PutUint32(b[cqeOffQPN:], c.QPN)
	binary.LittleEndian.PutUint32(b[cqeOffByteCnt:], c.ByteCnt)
	b[cqeOffStatus] = c.Status
	copy(b[cqeOffScatter:], c.Payload)
	b[cqeOffGen] = c.Gen
	return b, nil
}

// DecodeFrom parses a 64-byte completion into c, overwriting every field.
// The inline-scattered payload (length min(ByteCnt, ScatterMax)) is copied
// into c's reusable Payload buffer, so a caller-owned scratch CQE decodes
// completions without allocating; the buffer's contents are only valid
// until the next DecodeFrom on the same CQE.
func (c *CQE) DecodeFrom(b []byte) error {
	if len(b) < CQESize {
		return fmt.Errorf("mlx: short CQE (%d bytes)", len(b))
	}
	c.Op = CQEOp(b[cqeOffOp])
	c.AmID = b[cqeOffAmID]
	c.WQECounter = binary.LittleEndian.Uint16(b[cqeOffCounter:])
	c.QPN = binary.LittleEndian.Uint32(b[cqeOffQPN:])
	c.ByteCnt = binary.LittleEndian.Uint32(b[cqeOffByteCnt:])
	c.Status = b[cqeOffStatus]
	c.Gen = b[cqeOffGen]
	if c.Op > CQERecv {
		return errors.New("mlx: bad CQE op")
	}
	n := int(c.ByteCnt)
	if n > ScatterMax {
		n = ScatterMax
	}
	c.Payload = append(c.Payload[:0], b[cqeOffScatter:cqeOffScatter+n]...)
	return nil
}

// DecodeCQE parses a 64-byte completion into a fresh CQE. The payload slice
// length is min(ByteCnt, ScatterMax).
func DecodeCQE(b []byte) (*CQE, error) {
	c := &CQE{}
	if err := c.DecodeFrom(b); err != nil {
		return nil, err
	}
	return c, nil
}

// Ring is a power-of-two circular buffer of fixed-size entries in host
// memory, shared between software and the NIC.
type Ring struct {
	Region    memsim.Region
	Depth     int
	EntrySize int
}

// NewRing allocates a ring in mem. Depth must be a power of two.
func NewRing(mem *memsim.Memory, name string, depth, entrySize int) Ring {
	if depth <= 0 || depth&(depth-1) != 0 {
		panic(fmt.Sprintf("mlx: ring depth %d not a power of two", depth))
	}
	r := mem.Alloc(name, uint64(depth*entrySize), 64)
	return Ring{Region: r, Depth: depth, EntrySize: entrySize}
}

// Slot reports the ring slot for producer counter i.
func (r Ring) Slot(i uint16) int { return int(i) & (r.Depth - 1) }

// EntryAddr reports the host address of counter i's slot.
func (r Ring) EntryAddr(i uint16) uint64 {
	return r.Region.Base + uint64(r.Slot(i)*r.EntrySize)
}

// Gen reports the generation (ownership) value for counter i: the ring pass
// number folded into 1..255. Zero is never produced, so freshly zeroed
// memory is always invalid, and consecutive passes over a slot always carry
// different generations.
func (r Ring) Gen(i uint16) uint8 {
	return uint8((int(i)/r.Depth)%255) + 1
}
