package mlx

import (
	"bytes"
	"testing"
	"testing/quick"

	"breakband/internal/memsim"
)

func TestWQERoundTrip(t *testing.T) {
	w := &WQE{
		Opcode:     OpSend,
		Signaled:   true,
		Inline:     true,
		WQEIdx:     0xBEEF,
		QPN:        7,
		AmID:       3,
		Payload:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		RemoteAddr: 0xDEAD0000,
	}
	enc, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWQE(enc[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Opcode != w.Opcode || got.Signaled != w.Signaled || got.Inline != w.Inline ||
		got.WQEIdx != w.WQEIdx || got.QPN != w.QPN || got.AmID != w.AmID ||
		got.RemoteAddr != w.RemoteAddr || !bytes.Equal(got.Payload, w.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, w)
	}
}

func TestWQEGatherRoundTrip(t *testing.T) {
	w := &WQE{
		Opcode:     OpRDMAWrite,
		Inline:     false,
		WQEIdx:     1,
		QPN:        2,
		GatherAddr: 0x1000,
		GatherLen:  4096,
		RemoteAddr: 0x2000,
	}
	enc, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWQE(enc[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.GatherAddr != w.GatherAddr || got.GatherLen != w.GatherLen || got.Inline {
		t.Errorf("gather fields lost: %+v", got)
	}
}

func TestWQEInlineTooLong(t *testing.T) {
	w := &WQE{Opcode: OpSend, Inline: true, Payload: make([]byte, InlineMax+1)}
	if _, err := w.Encode(); err == nil {
		t.Error("oversized inline payload encoded without error")
	}
}

func TestDecodeWQEErrors(t *testing.T) {
	if _, err := DecodeWQE(make([]byte, 10)); err == nil {
		t.Error("short buffer decoded")
	}
	var zero [WQESize]byte
	if _, err := DecodeWQE(zero[:]); err == nil {
		t.Error("NOP opcode decoded as valid work")
	}
	bad := zero
	bad[0] = 200
	if _, err := DecodeWQE(bad[:]); err == nil {
		t.Error("garbage opcode decoded")
	}
}

func TestQuickWQERoundTrip(t *testing.T) {
	f := func(op bool, sig bool, idx uint16, qpn uint32, am uint8, payload []byte, raddr uint64) bool {
		if len(payload) > InlineMax {
			payload = payload[:InlineMax]
		}
		w := &WQE{
			Opcode:     OpRDMAWrite,
			Signaled:   sig,
			Inline:     true,
			WQEIdx:     idx,
			QPN:        qpn,
			AmID:       am,
			Payload:    payload,
			RemoteAddr: raddr,
		}
		if op {
			w.Opcode = OpSend
		}
		enc, err := w.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeWQE(enc[:])
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			// nil and empty both decode to empty.
			return len(got.Payload) == 0 && got.WQEIdx == idx && got.QPN == qpn
		}
		return bytes.Equal(got.Payload, payload) && got.Signaled == sig &&
			got.WQEIdx == idx && got.QPN == qpn && got.AmID == am && got.RemoteAddr == raddr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCQERoundTrip(t *testing.T) {
	c := &CQE{
		Op:         CQERecv,
		WQECounter: 900,
		QPN:        5,
		ByteCnt:    8,
		AmID:       2,
		Payload:    []byte{9, 8, 7, 6, 5, 4, 3, 2},
		Gen:        17,
	}
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCQE(enc[:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != c.Op || got.WQECounter != c.WQECounter || got.QPN != c.QPN ||
		got.ByteCnt != c.ByteCnt || got.AmID != c.AmID || got.Gen != c.Gen ||
		!bytes.Equal(got.Payload, c.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, c)
	}
}

func TestCQEScatterTooLong(t *testing.T) {
	c := &CQE{Payload: make([]byte, ScatterMax+1)}
	if _, err := c.Encode(); err == nil {
		t.Error("oversized scatter encoded")
	}
}

func TestQuickCQERoundTrip(t *testing.T) {
	f := func(counter uint16, qpn uint32, am, gen uint8, payload []byte) bool {
		if len(payload) > ScatterMax {
			payload = payload[:ScatterMax]
		}
		c := &CQE{
			Op:         CQEReq,
			WQECounter: counter,
			QPN:        qpn,
			ByteCnt:    uint32(len(payload)),
			AmID:       am,
			Payload:    payload,
			Gen:        gen,
		}
		enc, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := DecodeCQE(enc[:])
		if err != nil {
			return false
		}
		if len(payload) == 0 {
			return len(got.Payload) == 0
		}
		return got.WQECounter == counter && bytes.Equal(got.Payload, payload) && got.Gen == gen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingGeometry(t *testing.T) {
	mem := memsim.New(1 << 20)
	r := NewRing(mem, "sq", 128, WQESize)
	if r.Slot(0) != 0 || r.Slot(127) != 127 || r.Slot(128) != 0 || r.Slot(300) != 300%128 {
		t.Error("slot math wrong")
	}
	if r.EntryAddr(1)-r.EntryAddr(0) != WQESize {
		t.Error("entry stride wrong")
	}
	if r.EntryAddr(128) != r.EntryAddr(0) {
		t.Error("ring does not wrap")
	}
}

func TestRingGen(t *testing.T) {
	mem := memsim.New(1 << 20)
	r := NewRing(mem, "cq", 4, CQESize)
	// Generation is never zero and consecutive passes over a slot always
	// differ — including across the uint16 counter's full range.
	for i := 0; i < 1<<16; i += 4 {
		g := r.Gen(uint16(i))
		if g == 0 {
			t.Fatalf("generation 0 at counter %d", i)
		}
		if next := r.Gen(uint16(i + 4)); next == g && i+4 < 1<<16 {
			t.Fatalf("consecutive passes share generation %d at counter %d", g, i)
		}
	}
}

func TestNewRingValidation(t *testing.T) {
	mem := memsim.New(1 << 20)
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two depth did not panic")
		}
	}()
	NewRing(mem, "bad", 100, WQESize)
}

func TestOpcodeStrings(t *testing.T) {
	if OpRDMAWrite.String() != "RDMA_WRITE" || OpSend.String() != "SEND" || OpNop.String() != "NOP" {
		t.Error("opcode strings wrong")
	}
}

func TestDecodeWQEIntoScratchReusesBuffer(t *testing.T) {
	// A scratch WQE decoded twice must not leak state between decodes and
	// must reuse its payload buffer.
	w1 := &WQE{Opcode: OpSend, Inline: true, Signaled: true, WQEIdx: 3, QPN: 9,
		AmID: 4, Payload: []byte{1, 2, 3, 4, 5}}
	enc1, err := w1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	w2 := &WQE{Opcode: OpRDMAWrite, Inline: false, WQEIdx: 4, QPN: 9,
		GatherAddr: 0x1000, GatherLen: 64, RemoteAddr: 0x2000}
	enc2, err := w2.Encode()
	if err != nil {
		t.Fatal(err)
	}

	var scratch WQE
	if err := scratch.DecodeFrom(enc1[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scratch.Payload, []byte{1, 2, 3, 4, 5}) || !scratch.Inline {
		t.Errorf("first decode = %+v", scratch)
	}
	buf1 := &scratch.Payload[0]
	if err := scratch.DecodeFrom(enc2[:]); err != nil {
		t.Fatal(err)
	}
	if scratch.Inline || scratch.GatherAddr != 0x1000 || scratch.GatherLen != 64 ||
		scratch.RemoteAddr != 0x2000 || len(scratch.Payload) != 0 {
		t.Errorf("second decode leaked state: %+v", scratch)
	}
	if err := scratch.DecodeFrom(enc1[:]); err != nil {
		t.Fatal(err)
	}
	if scratch.GatherAddr != 0 || scratch.GatherLen != 0 {
		t.Errorf("gather fields leaked into inline decode: %+v", scratch)
	}
	if &scratch.Payload[0] != buf1 {
		t.Error("scratch decode did not reuse the payload buffer")
	}
}

func TestDecodeCQEIntoScratchReusesBuffer(t *testing.T) {
	c1 := &CQE{Op: CQERecv, WQECounter: 1, QPN: 2, ByteCnt: 4, AmID: 7,
		Payload: []byte{4, 3, 2, 1}, Gen: 1}
	enc1, err := c1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	c2 := &CQE{Op: CQEReq, WQECounter: 9, QPN: 2, Gen: 2}
	enc2, err := c2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var scratch CQE
	if err := scratch.DecodeFrom(enc1[:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scratch.Payload, []byte{4, 3, 2, 1}) || scratch.AmID != 7 {
		t.Errorf("first decode = %+v", scratch)
	}
	buf := &scratch.Payload[0]
	if err := scratch.DecodeFrom(enc2[:]); err != nil {
		t.Fatal(err)
	}
	if scratch.Op != CQEReq || scratch.WQECounter != 9 || len(scratch.Payload) != 0 {
		t.Errorf("second decode leaked state: %+v", scratch)
	}
	if err := scratch.DecodeFrom(enc1[:]); err != nil {
		t.Fatal(err)
	}
	if &scratch.Payload[0] != buf {
		t.Error("scratch decode did not reuse the payload buffer")
	}
}

func TestScratchDecodeIsAllocFree(t *testing.T) {
	w := &WQE{Opcode: OpSend, Inline: true, Payload: []byte{1, 2, 3}}
	encW, _ := w.Encode()
	c := &CQE{Op: CQERecv, ByteCnt: 3, Payload: []byte{1, 2, 3}, Gen: 1}
	encC, _ := c.Encode()
	var sw WQE
	var sc CQE
	// Warm the payload buffers.
	if err := sw.DecodeFrom(encW[:]); err != nil {
		t.Fatal(err)
	}
	if err := sc.DecodeFrom(encC[:]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := sw.DecodeFrom(encW[:]); err != nil {
			t.Fatal(err)
		}
		if err := sc.DecodeFrom(encC[:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("scratch decode allocates %.1f times per op, want 0", allocs)
	}
}
