package uct

import (
	"bytes"
	"math"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/units"
)

func harness(t *testing.T) (*node.System, *Worker, *Worker, *Ep, *Ep) {
	t.Helper()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := node.NewSystem(cfg, 2)
	w0 := NewWorker(sys.Nodes[0], cfg)
	w1 := NewWorker(sys.Nodes[1], cfg)
	e0 := w0.NewEp(PIOInline, 1)
	e1 := w1.NewEp(PIOInline, 1)
	Connect(e0, e1)
	return sys, w0, w1, e0, e1
}

func TestPutShortDeliversPayload(t *testing.T) {
	sys, w0, _, e0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	e0.RemoteBuf = dst.Base
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		if err := e0.PutShort(tk, 0, payload); err != nil {
			t.Errorf("put: %v", err)
		}
		for e0.InFlight() > 0 {
			w0.Progress(tk)
		}
	})
	sys.Run()
	if got := sys.Nodes[1].Mem.Read(dst.Base, 8); !bytes.Equal(got, payload) {
		t.Errorf("remote buffer = %v", got)
	}
	if w0.Stats.Posts != 1 || w0.Stats.SendCQEs != 1 {
		t.Errorf("stats = %+v", w0.Stats)
	}
}

func TestAmShortInvokesHandler(t *testing.T) {
	sys, w0, w1, e0, e1 := harness(t)
	defer sys.Shutdown()
	var got []byte
	var gotAt units.Time
	w1.SetAmHandler(7, func(p *sim.Task, data []byte) {
		got = append([]byte(nil), data...)
		gotAt = p.Now()
	})
	payload := []byte{0xA, 0xB, 0xC}
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		e1.PostRecvs(tk, 8)
		for got == nil {
			w1.Progress(tk)
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond) // let receives post
		if err := e0.AmShort(tk, 7, payload); err != nil {
			t.Errorf("am: %v", err)
		}
		for e0.InFlight() > 0 {
			w0.Progress(tk)
		}
	})
	sys.Run()
	if !bytes.Equal(got, payload) {
		t.Errorf("handler payload = %v", got)
	}
	if gotAt == 0 {
		t.Error("handler time not captured")
	}
}

func TestBusyPostOnFullQueue(t *testing.T) {
	sys, w0, _, e0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	e0.RemoteBuf = dst.Base
	depth := e0.QP().SQ.Depth
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		for i := 0; i < depth; i++ {
			if err := e0.PutShort(tk, 0, []byte{1}); err != nil {
				t.Fatalf("post %d failed: %v", i, err)
			}
		}
		if e0.FreeSlots() != 0 {
			t.Errorf("FreeSlots = %d after filling", e0.FreeSlots())
		}
		if err := e0.PutShort(tk, 0, []byte{1}); err != ErrNoResource {
			t.Errorf("overfull post returned %v, want ErrNoResource", err)
		}
		if w0.Stats.BusyPosts != 1 {
			t.Errorf("busy posts = %d", w0.Stats.BusyPosts)
		}
		// Progress must free a slot and let the post succeed.
		for w0.Progress(tk) == 0 {
		}
		if err := e0.PutShort(tk, 0, []byte{1}); err != nil {
			t.Errorf("post after progress: %v", err)
		}
		for e0.InFlight() > 0 {
			w0.Progress(tk)
		}
	})
	sys.Run()
}

func TestBusyPostCost(t *testing.T) {
	sys, _, _, e0, _ := harness(t)
	defer sys.Shutdown()
	cfg := sys.Cfg
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	e0.RemoteBuf = dst.Base
	depth := e0.QP().SQ.Depth
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		for i := 0; i < depth; i++ {
			e0.PutShort(tk, 0, []byte{1})
		}
		t0 := p.Now()
		e0.PutShort(tk, 0, []byte{1})
		if d := p.Now() - t0; d != cfg.SW.BusyPost.Mean() {
			t.Errorf("busy post cost %v, want %v", d, cfg.SW.BusyPost.Mean())
		}
	})
	sys.Run()
}

func TestLLPPostCostMatchesTable(t *testing.T) {
	sys, _, _, e0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	e0.RemoteBuf = dst.Base
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		t0 := p.Now()
		e0.PutShort(tk, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
		got := (p.Now() - t0).Ns()
		if math.Abs(got-config.TabLLPPost) > 1e-9 {
			t.Errorf("LLP_post wall time = %v, want %v", got, config.TabLLPPost)
		}
	})
	sys.Run()
}

func TestUnsignaledPeriod(t *testing.T) {
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := node.NewSystem(cfg, 2)
	defer sys.Shutdown()
	w0 := NewWorker(sys.Nodes[0], cfg)
	w1 := NewWorker(sys.Nodes[1], cfg)
	e0 := w0.NewEp(PIOInline, 4) // every 4th signaled
	e1 := w1.NewEp(PIOInline, 4)
	Connect(e0, e1)
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	e0.RemoteBuf = dst.Base
	var freed int
	w0.SetSendCompletion(func(p *sim.Task, _ *Ep, n int, _ error) { freed += n })
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		for i := 0; i < 8; i++ {
			if err := e0.PutShort(tk, 0, []byte{1}); err != nil {
				t.Fatalf("post %d: %v", i, err)
			}
		}
		for e0.InFlight() > 0 {
			w0.Progress(tk)
		}
	})
	sys.Run()
	if w0.Stats.SendCQEs != 2 {
		t.Errorf("CQEs = %d, want 2 (8 posts, c=4)", w0.Stats.SendCQEs)
	}
	if freed != 8 {
		t.Errorf("freed = %d, want 8", freed)
	}
	if w0.Stats.SendsFreed != 8 {
		t.Errorf("SendsFreed = %d", w0.Stats.SendsFreed)
	}
}

func TestOversizedPostRejected(t *testing.T) {
	sys, _, _, e0, _ := harness(t)
	defer sys.Shutdown()
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		if err := e0.PutShort(tk, 0, make([]byte, 33)); err == nil || err == ErrNoResource {
			t.Errorf("oversized post returned %v", err)
		}
	})
	sys.Run()
}

func TestDoorbellModesDeliver(t *testing.T) {
	for _, mode := range []PostMode{DoorbellInline, DoorbellGather} {
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		sys := node.NewSystem(cfg, 2)
		w0 := NewWorker(sys.Nodes[0], cfg)
		w1 := NewWorker(sys.Nodes[1], cfg)
		e0 := w0.NewEp(mode, 1)
		e1 := w1.NewEp(mode, 1)
		Connect(e0, e1)
		dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
		e0.RemoteBuf = dst.Base
		payload := []byte{5, 6, 7, 8}
		sys.K.Spawn("test", func(p *sim.Proc) {
			tk := p.Task()
			if err := e0.PutShort(tk, 0, payload); err != nil {
				t.Errorf("%v post: %v", mode, err)
			}
			for e0.InFlight() > 0 {
				w0.Progress(tk)
			}
		})
		sys.Run()
		if got := sys.Nodes[1].Mem.Read(dst.Base, 4); !bytes.Equal(got, payload) {
			t.Errorf("%v: remote buffer = %v", mode, got)
		}
		sys.Shutdown()
	}
}

func TestStageProfiling(t *testing.T) {
	for _, st := range []Stage{StMDSetup, StBarrierMD, StBarrierDBC, StPIOCopy, StLLPPost} {
		sys, w0, _, e0, _ := harness(t)
		dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
		e0.RemoteBuf = dst.Base
		w0.ProfStage = st
		sys.K.Spawn("test", func(p *sim.Proc) {
			tk := p.Task()
			sys.Nodes[0].Prof.Calibrate(p, 100)
			for i := 0; i < 50; i++ {
				e0.PutShort(tk, 0, []byte{1})
				for e0.InFlight() > 0 {
					w0.Progress(tk)
				}
			}
		})
		sys.Run()
		want := map[Stage]float64{
			StMDSetup:    config.TabMDSetup,
			StBarrierMD:  config.TabBarrierMD,
			StBarrierDBC: config.TabBarrierDBC,
			StPIOCopy:    config.TabPIOCopy,
			StLLPPost:    config.TabLLPPost,
		}[st]
		got := sys.Nodes[0].Prof.MeanNs(st.Name())
		if math.Abs(got-want) > 0.01 {
			t.Errorf("stage %v measured %v, want %v", st, got, want)
		}
		sys.Shutdown()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() units.Time {
		sys, w0, _, e0, _ := harness(t)
		defer sys.Shutdown()
		dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
		e0.RemoteBuf = dst.Base
		var end units.Time
		sys.K.Spawn("test", func(p *sim.Proc) {
			tk := p.Task()
			for i := 0; i < 200; i++ {
				for e0.PutShort(tk, 0, []byte{1}) == ErrNoResource {
					w0.Progress(tk)
				}
			}
			for e0.InFlight() > 0 {
				w0.Progress(tk)
			}
			end = p.Now()
		})
		sys.Run()
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical runs ended at %v and %v", a, b)
	}
}

func TestModeString(t *testing.T) {
	if PIOInline.String() != "pio-inline" || DoorbellInline.String() != "doorbell-inline" ||
		DoorbellGather.String() != "doorbell-gather" {
		t.Error("mode strings")
	}
}
