// Package uct implements the low-level communication protocol (LLP): a
// UCT-style transport layer that drives the NIC directly, mirroring UCX's
// rc_mlx5 data path.
//
// An LLP_post executes the paper's §4.1 sequence: prepare the message
// descriptor (with the payload memcpy'd inline), a store memory barrier, the
// DoorBell-counter increment, a second store barrier, and the PIO copy of
// the 64-byte descriptor to device memory. An LLP_prog reads one completion
// queue entry behind a load memory barrier. Busy posts (attempts against a
// full transmit queue) fail fast with ErrNoResource, exactly the semantic
// the paper's injection model builds on.
//
// # Execution model
//
// The data path is written as resumable sim.Frame state machines driven by a
// sim.Task, so steady-state traffic runs to completion on the kernel with no
// goroutine handoffs. Continuation callers use the Start* methods plus the
// Last* result getters; cold-path code holding a goroutine Proc calls the
// synchronous wrappers (PutShort, Progress, ...) through Proc.Task, which
// drives the same frames inline with identical event scheduling. Every
// frame is preallocated on its owning Worker or Ep, so the steady state
// allocates nothing; the corollary is that a Worker and each Ep may be
// driven by at most one task at a time.
package uct

import (
	"encoding/binary"
	"errors"
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/config"
	"breakband/internal/mlx"
	"breakband/internal/nic"
	"breakband/internal/node"
	"breakband/internal/profile"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/trace"
	"breakband/internal/units"
)

// ErrNoResource is returned by a post against a full transmit queue — the
// paper's "busy" post.
var ErrNoResource = errors.New("uct: no resource (transmit queue full)")

// PostMode selects the descriptor-delivery path (paper §2).
type PostMode int

// Post modes.
const (
	// PIOInline: the CPU PIO-copies the descriptor with the payload
	// inline; no NIC DMA reads (the paper's fast path for small
	// messages).
	PIOInline PostMode = iota
	// DoorbellInline: the descriptor (payload still inline) is written to
	// the send queue in host memory and the 8-byte DoorBell is rung; the
	// NIC DMA-reads the descriptor (one PCIe round trip).
	DoorbellInline
	// DoorbellGather: descriptor and payload are both fetched by the NIC
	// (two PCIe round trips) — the paper's §2 steps (2) and (3).
	DoorbellGather
)

// String implements fmt.Stringer.
func (m PostMode) String() string {
	switch m {
	case PIOInline:
		return "pio-inline"
	case DoorbellInline:
		return "doorbell-inline"
	case DoorbellGather:
		return "doorbell-gather"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Stage identifies an instrumentable region for the measurement methodology
// (one stage is profiled at a time, per paper §3).
type Stage int

// Stages.
const (
	StNone Stage = iota
	StMDSetup
	StBarrierMD
	StBarrierDBC
	StPIOCopy
	StLLPPost // the whole successful post
	StLLPProg // a successful progress (one CQE dequeued)
	StBusyPost
)

// Stage scope names as recorded in the profiler.
var stageNames = map[Stage]string{
	StMDSetup:    "md_setup",
	StBarrierMD:  "barrier_md",
	StBarrierDBC: "barrier_dbc",
	StPIOCopy:    "pio_copy",
	StLLPPost:    "llp_post",
	StLLPProg:    "llp_prog",
	StBusyPost:   "busy_post",
}

// Name reports the profiler scope name for a stage.
func (s Stage) Name() string { return stageNames[s] }

// AmHandler is an active-message receive callback, invoked during Progress
// on the node that received the message. data is borrowed from the worker's
// reusable receive scratch and is only valid for the duration of the call:
// handlers that keep the payload must copy it (internal/ucp does). Handlers
// run inside the progress frame and must be pause-free (Advance only).
type AmHandler func(t *sim.Task, data []byte)

// SendCompletion is invoked during Progress for each completed send-side
// operation (UCP registers it to drive its request machinery). It must be
// pause-free (Advance only). ep is the endpoint whose CQ produced the
// completion; err is nil for a successful CQE and the endpoint failure for
// an error CQE — the count operations are retired either way, but on error
// nothing was delivered and the upper layer must fail the covered requests
// rather than complete them.
type SendCompletion func(t *sim.Task, ep *Ep, count int, err error)

// Stats counts LLP events; the §6 methodology needs the busy-post count.
type Stats struct {
	Posts      uint64
	BusyPosts  uint64
	Progresses uint64
	EmptyPolls uint64
	SendCQEs   uint64
	RecvCQEs   uint64
	SendsFreed uint64 // send slots retired (>= SendCQEs with unsignaled batching)
	// ErrorCQEs counts completions with a nonzero status — the NIC gave
	// up on the operation (e.g. RNR retries exhausted) and the retired
	// WQEs must not be treated as delivered. The endpoint's Err records
	// the last such failure.
	ErrorCQEs uint64
}

// Worker is the LLP progress context for one core.
type Worker struct {
	Node *node.Node
	Cfg  *config.Config
	Eps  []*Ep

	amHandlers map[uint8]AmHandler
	onSend     SendCompletion

	// Instrumentation: when ProfStage is set, the corresponding region is
	// wrapped with the node's profiler.
	ProfStage Stage

	Stats Stats

	// rand is the jitter stream for this worker's software costs. It
	// defaults to the node's stream; SetRand decouples co-node workers
	// (one per simulated core) so their draws are independent of
	// scheduling order.
	rand *rng.Rand

	scratch [mlx.CQESize]byte
	// cqe is the scratch completion readCQ decodes into; its payload
	// buffer is reused, so CQE data handed to AM handlers is only valid
	// for the duration of the callback (copy what you keep).
	cqe mlx.CQE
	// recvBuf is the reusable staging buffer for payloads delivered to
	// the receive pool (too large for CQE inline scatter).
	recvBuf []byte

	// Preallocated frames (one progress chain per worker at a time).
	progF progressFrame
	replF replenishFrame
}

// NewWorker builds an LLP worker on a node. The worker draws its software
// jitter from the node's stream; use SetRand to give co-node workers
// independent streams.
func NewWorker(n *node.Node, cfg *config.Config) *Worker {
	w := &Worker{Node: n, Cfg: cfg, amHandlers: make(map[uint8]AmHandler), rand: n.Rand}
	w.progF.w = w
	return w
}

// SetRand replaces the worker's jitter stream (nil collapses distributions
// to their means, as in NoiseOff mode). The multi-core ablation derives one
// stream per simulated core from the campaign seed and the core identity,
// so co-node cores' draws decouple from event scheduling order.
func (w *Worker) SetRand(r *rng.Rand) { w.rand = r }

// SetAmHandler registers the receive callback for an active-message id.
func (w *Worker) SetAmHandler(id uint8, h AmHandler) { w.amHandlers[id] = h }

// SetSendCompletion registers the send-side completion callback.
func (w *Worker) SetSendCompletion(cb SendCompletion) { w.onSend = cb }

// Ep is a connected endpoint (its own QP, per UCX's RC transport).
type Ep struct {
	w  *Worker
	qp *nic.QP

	Mode PostMode
	// SignalPeriod: every SignalPeriod-th post is signaled (1 = every
	// post; the paper's c = 64 for the MPI path).
	SignalPeriod int

	// Software queue state.
	pi        uint16 // next WQE counter
	completed uint16 // count of WQEs known completed (from CQEs)
	sendCI    uint16 // send CQ consumer counter
	recvCI    uint16 // recv CQ consumer counter
	sinceSig  int

	// RemoteBuf is the peer buffer targeted by PutShort.
	RemoteBuf uint64

	// staging holds payloads for the gather (bcopy) paths: one MaxBcopy
	// bounce buffer per send-queue slot, mirroring UCX's bounce-buffer
	// mpool. A slot's buffer is owned from post until its completion is
	// polled, so concurrent in-flight bcopy sends — and NIC retransmit
	// re-gathers after loss — each read their own stable payload.
	staging uint64

	// Receive buffer pool: posted receives rotate through fixed slots;
	// recvOrder mirrors the NIC's FIFO consumption so large payloads
	// (delivered to the buffer rather than scattered into the CQE) are
	// read back from the right slot.
	recvPool  uint64
	recvSlot  int
	recvOrder []uint64

	// owedRecvCredits counts consumed receives not yet reposted.
	// Replenishment is batched and runs on empty polls (idle time) or
	// when the debt reaches replenishBatch, keeping the repost cost off
	// the receive critical path, as UCX's batched receive posting does.
	owedRecvCredits int

	// Err records the first error completion the endpoint saw (e.g. the
	// peer kept answering RNR NAK past the QP's retry budget). The failed
	// WQEs are retired — InFlight drains — but were never delivered.
	Err error

	// lastPost is the result of the most recent post frame (see LastPost).
	lastPost error

	// Preallocated frames (one in-flight operation per endpoint at a time).
	postF   postFrame
	gatherF gatherFrame
	recvsF  recvsFrame
}

// Receive-pool geometry: slots sized for the largest bcopy message.
const (
	// MaxBcopy is the largest payload the buffered-copy path carries.
	MaxBcopy      = 4096
	recvPoolSlots = 64
)

// replenishBatch forces a repost even on a busy worker once this many
// receive credits are owed.
const replenishBatch = 64

// NewEp creates an endpoint with its own QP.
func (w *Worker) NewEp(mode PostMode, signalPeriod int) *Ep {
	if signalPeriod < 1 {
		signalPeriod = 1
	}
	qp := w.Node.NIC.CreateQP(w.Cfg.Bench.SQDepth, w.Cfg.Bench.CQDepth)
	st := w.Node.Mem.Alloc(fmt.Sprintf("uct.ep%d.staging", qp.QPN), MaxBcopy*uint64(w.Cfg.Bench.SQDepth), 64)
	pool := w.Node.Mem.Alloc(fmt.Sprintf("uct.ep%d.rxpool", qp.QPN), MaxBcopy*recvPoolSlots, 64)
	ep := &Ep{w: w, qp: qp, Mode: mode, SignalPeriod: signalPeriod, staging: st.Base, recvPool: pool.Base}
	ep.postF.e = ep
	ep.gatherF.e = ep
	ep.recvsF.e = ep
	w.Eps = append(w.Eps, ep)
	return ep
}

// QP exposes the underlying queue pair (tests, trace filtering).
func (e *Ep) QP() *nic.QP { return e.qp }

// SetLabel names the endpoint's QP for per-owner reporting (e.g. a workload
// cohort): recovery breakdowns group by it.
func (e *Ep) SetLabel(s string) { e.qp.Label = s }

// stagingSlot is the bounce buffer owned by the send-queue slot about to
// be posted (e.pi has not been advanced yet).
func (e *Ep) stagingSlot() uint64 {
	return e.staging + uint64(int(e.pi)%e.qp.SQ.Depth)*MaxBcopy
}

// Connect wires two endpoints' QPs into a reliable connection.
func Connect(a, b *Ep) { nic.Connect(a.qp, b.qp) }

// StartPostRecvs begins posting n receive credits, each with its own pool
// slot for payloads too large for CQE inline scatter.
func (e *Ep) StartPostRecvs(t *sim.Task, n int) {
	e.recvsF.pc = 0
	e.recvsF.n = n
	e.recvsF.i = 0
	t.Call(&e.recvsF)
}

// PostRecvs is the synchronous form of StartPostRecvs for blocking tasks.
func (e *Ep) PostRecvs(t *sim.Task, n int) {
	t.BlockingOnly("uct.Ep.PostRecvs")
	e.StartPostRecvs(t, n)
}

// recvsFrame posts n receive credits; each credit must become visible to
// in-flight deliveries at its own post time, not batched at the end.
type recvsFrame struct {
	e    *Ep
	pc   int
	n, i int
}

func (f *recvsFrame) Step(t *sim.Task) {
	e := f.e
	for {
		switch f.pc {
		case 0:
			if f.i >= f.n {
				t.Return()
				return
			}
			t.Advance(e.w.Cfg.SW.PostRecv.Sample(e.w.rand))
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			e.postOneRecv()
			f.i++
			f.pc = 0
		}
	}
}

func (e *Ep) postOneRecv() {
	addr := e.recvPool + uint64(e.recvSlot%recvPoolSlots)*MaxBcopy
	e.recvSlot++
	e.recvOrder = append(e.recvOrder, addr)
	e.qp.PostRecv(addr)
}

// InFlight reports send slots currently consumed.
func (e *Ep) InFlight() int { return int(e.pi - e.completed) }

// FreeSlots reports available send slots.
func (e *Ep) FreeSlots() int { return e.qp.SQ.Depth - e.InFlight() }

// LastPost reports the outcome of the most recently completed post frame
// (StartPutShort/StartAmShort/StartPutBcopy/StartAmBcopy). Valid once the
// frame has returned to its caller.
func (e *Ep) LastPost() error { return e.lastPost }

// StartPutShort begins an RDMA write of data (<= mlx.InlineMax bytes) to the
// peer's RemoteBuf + off. The outcome is reported by LastPost:
// ErrNoResource on a full queue (a busy post costing SW.BusyPost, per
// Table 1).
func (e *Ep) StartPutShort(t *sim.Task, off uint64, data []byte) {
	e.startPost(t, mlx.OpRDMAWrite, 0, e.RemoteBuf+off, data)
}

// StartAmShort begins sending an active message (send-receive semantics).
func (e *Ep) StartAmShort(t *sim.Task, id uint8, data []byte) {
	e.startPost(t, mlx.OpSend, id, 0, data)
}

// StartPutBcopy begins an RDMA write of a payload too large for the inline
// path (up to MaxBcopy bytes): the payload is copied into registered staging
// memory and the NIC gathers it by DMA — UCX's buffered-copy protocol.
func (e *Ep) StartPutBcopy(t *sim.Task, off uint64, data []byte) {
	e.startGather(t, mlx.OpRDMAWrite, 0, e.RemoteBuf+off, data)
}

// StartAmBcopy begins sending a large active message through the
// buffered-copy path.
func (e *Ep) StartAmBcopy(t *sim.Task, id uint8, data []byte) {
	e.startGather(t, mlx.OpSend, id, 0, data)
}

// PutShort is the synchronous form of StartPutShort for blocking tasks.
func (e *Ep) PutShort(t *sim.Task, off uint64, data []byte) error {
	t.BlockingOnly("uct.Ep.PutShort")
	e.StartPutShort(t, off, data)
	return e.lastPost
}

// AmShort is the synchronous form of StartAmShort for blocking tasks.
func (e *Ep) AmShort(t *sim.Task, id uint8, data []byte) error {
	t.BlockingOnly("uct.Ep.AmShort")
	e.StartAmShort(t, id, data)
	return e.lastPost
}

// PutBcopy is the synchronous form of StartPutBcopy for blocking tasks.
func (e *Ep) PutBcopy(t *sim.Task, off uint64, data []byte) error {
	t.BlockingOnly("uct.Ep.PutBcopy")
	e.StartPutBcopy(t, off, data)
	return e.lastPost
}

// AmBcopy is the synchronous form of StartAmBcopy for blocking tasks.
func (e *Ep) AmBcopy(t *sim.Task, id uint8, data []byte) error {
	t.BlockingOnly("uct.Ep.AmBcopy")
	e.StartAmBcopy(t, id, data)
	return e.lastPost
}

func (e *Ep) startPost(t *sim.Task, op mlx.Opcode, amID uint8, raddr uint64, data []byte) {
	f := &e.postF
	f.pc = 0
	f.op = op
	f.amID = amID
	f.raddr = raddr
	f.data = data
	t.Call(f)
}

func (e *Ep) startGather(t *sim.Task, op mlx.Opcode, amID uint8, raddr uint64, data []byte) {
	f := &e.gatherF
	f.pc = 0
	f.op = op
	f.amID = amID
	f.raddr = raddr
	f.data = data
	t.Call(f)
}

// postFrame is the short (inline-capable) descriptor path: the paper's §4.1
// LLP_post sequence as a resumable state machine.
type postFrame struct {
	e     *Ep
	pc    int
	op    mlx.Opcode
	amID  uint8
	raddr uint64
	data  []byte
	tok   profTok
	wqe   mlx.WQE
	enc   [mlx.WQESize]byte
}

// finish records the post outcome and pops the frame.
func (f *postFrame) finish(t *sim.Task, err error) {
	f.e.lastPost = err
	f.data = nil
	t.Return()
}

func (f *postFrame) Step(t *sim.Task) {
	e := f.e
	w := e.w
	sw := &w.Cfg.SW
	r := w.rand
	for {
		switch f.pc {
		case 0:
			if len(f.data) > mlx.InlineMax {
				f.finish(t, fmt.Errorf("uct: short post limited to %d bytes, got %d", mlx.InlineMax, len(f.data)))
				return
			}
			if e.Err != nil {
				// The QP failed (e.g. RNR retries exhausted); surface the
				// error instead of posting into a flushing queue.
				f.finish(t, e.Err)
				return
			}

			f.tok = profTok{}
			if w.ProfStage == StLLPPost || w.ProfStage == StBusyPost {
				f.tok = w.profBegin(t)
			}

			if e.FreeSlots() == 0 {
				// Busy post: fail fast; the caller must progress first.
				t.Advance(sw.BusyPost.Sample(r))
				w.Stats.BusyPosts++
				w.profEndAs(t, f.tok, StBusyPost.Name())
				f.finish(t, ErrNoResource)
				return
			}

			// (0/1) Function-call entry, code-path branches.
			t.Advance(sw.LLPPostEntry.Sample(r))

			// (1) Prepare the message descriptor (memcpy of the inline
			// payload). The WQE and its 64-byte encoding live in the
			// preallocated frame, so the steady-state post allocates
			// nothing.
			stTok := w.stageBegin(t, StMDSetup)
			f.wqe = mlx.WQE{
				Opcode:     f.op,
				Signaled:   e.nextSignaled(),
				Inline:     true,
				WQEIdx:     e.pi,
				QPN:        e.qp.QPN,
				AmID:       f.amID,
				Payload:    f.data,
				RemoteAddr: f.raddr,
			}
			enc, err := f.wqe.Encode()
			if err != nil {
				panic(fmt.Sprintf("uct: WQE encode: %v", err))
			}
			f.enc = enc
			t.Advance(sw.MDSetup.Sample(r))
			w.stageEnd(t, StMDSetup, stTok)

			// (2) Store barrier: the MD must be fully written before
			// signalling.
			stTok = w.stageBegin(t, StBarrierMD)
			t.Advance(sw.BarrierMD.Sample(r))
			w.stageEnd(t, StBarrierMD, stTok)

			// (3) DoorBell-counter increment in host memory (enables the
			// NIC's speculative reads). No Pause: the doorbell record is
			// written by the CPU but read by nothing in the device model
			// (the NIC learns the producer counter through the MMIO
			// doorbell), so committing it while the kernel clock still
			// lags the task clock is unobservable.
			var dbr [8]byte
			binary.LittleEndian.PutUint16(dbr[:], e.pi+1)
			w.Node.Mem.Write(e.qp.DBRAddr, dbr[:])
			t.Advance(sw.DBCIncrement.Sample(r))

			// (4) Store barrier: the DBC update must be visible before the
			// device write.
			stTok = w.stageBegin(t, StBarrierDBC)
			t.Advance(sw.BarrierDBC.Sample(r))
			w.stageEnd(t, StBarrierDBC, stTok)

			// (5) Hand the descriptor to the NIC.
			switch e.Mode {
			case PIOInline:
				// PIO copy to Device-GRE memory, in 64-byte chunks.
				stTok = w.stageBegin(t, StPIOCopy)
				t.Advance(sw.PIOCopy.Sample(r))
				w.stageEnd(t, StPIOCopy, stTok)
				f.pc = 1
				if t.Pause() {
					return
				}
			case DoorbellGather:
				// Stage the payload in registered memory for the NIC's
				// second DMA read.
				f.pc = 2
				if t.Pause() {
					return
				}
			case DoorbellInline:
				t.Advance(sw.SQRingWrite.Sample(r))
				f.pc = 3
				if t.Pause() {
					return
				}
			}
		case 1: // PIO: the whole descriptor in one MMIO write. The ring copy
			// is stored first — BlueFlame is a fetch-skipping hint, and the
			// NIC falls back to fetching the ring slot when it cannot consume
			// the hint in order (e.g. a gather descriptor on the same QP is
			// still being fetched).
			w.Node.Mem.Write(e.qp.SQ.EntryAddr(e.pi), f.enc[:])
			w.Node.RC.MMIOWrite(e.qp.BFAddr, f.enc[:])
			f.pc = 5
		case 2: // Gather: stage the payload, rebuild the descriptor.
			w.Node.Mem.Write(e.stagingSlot(), f.data)
			f.wqe.Inline = false
			f.wqe.GatherAddr = e.stagingSlot()
			f.wqe.GatherLen = uint32(len(f.data))
			f.wqe.Payload = nil
			enc, err := f.wqe.Encode()
			if err != nil {
				panic(fmt.Sprintf("uct: WQE encode: %v", err))
			}
			f.enc = enc
			t.Advance(sw.SQRingWrite.Sample(r))
			f.pc = 3
			if t.Pause() {
				return
			}
		case 3: // Regular store of the WQE into the ring, then the
			// 8-byte DoorBell MMIO write.
			w.Node.Mem.Write(e.qp.SQ.EntryAddr(e.pi), f.enc[:])
			t.Advance(sw.DBRecUpdate.Sample(r))
			t.Advance(sw.DoorbellRing.Sample(r))
			f.pc = 4
			if t.Pause() {
				return
			}
		case 4:
			var db [8]byte
			binary.LittleEndian.PutUint16(db[:], e.pi+1)
			w.Node.RC.MMIOWrite(e.qp.DBAddr, db[:])
			f.pc = 5
		case 5:
			t.Advance(sw.LLPPostExit.Sample(r))
			e.pi++
			w.Stats.Posts++
			w.profEndAs(t, f.tok, StLLPPost.Name())
			f.finish(t, nil)
			return
		}
	}
}

// gatherFrame is the buffered-copy descriptor path: stage the payload, write
// a gather WQE into the send queue ring, and ring the 8-byte DoorBell. The
// NIC fetches the descriptor and the payload by DMA (paper §2 steps 2-3).
type gatherFrame struct {
	e     *Ep
	pc    int
	op    mlx.Opcode
	amID  uint8
	raddr uint64
	data  []byte
	tok   profTok
	wqe   mlx.WQE
	enc   [mlx.WQESize]byte
}

func (f *gatherFrame) finish(t *sim.Task, err error) {
	f.e.lastPost = err
	f.data = nil
	t.Return()
}

func (f *gatherFrame) Step(t *sim.Task) {
	e := f.e
	w := e.w
	sw := &w.Cfg.SW
	r := w.rand
	for {
		switch f.pc {
		case 0:
			if len(f.data) > MaxBcopy {
				f.finish(t, fmt.Errorf("uct: bcopy post limited to %d bytes, got %d", MaxBcopy, len(f.data)))
				return
			}
			if e.Err != nil {
				f.finish(t, e.Err)
				return
			}

			f.tok = profTok{}
			if w.ProfStage == StLLPPost || w.ProfStage == StBusyPost {
				f.tok = w.profBegin(t)
			}
			if e.FreeSlots() == 0 {
				t.Advance(sw.BusyPost.Sample(r))
				w.Stats.BusyPosts++
				w.profEndAs(t, f.tok, StBusyPost.Name())
				f.finish(t, ErrNoResource)
				return
			}

			t.Advance(sw.LLPPostEntry.Sample(r))
			// Stage the payload (the bcopy memcpy).
			t.Advance(units.Time(len(f.data)) * sw.MemcpyPerByte)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			w.Node.Mem.Write(e.stagingSlot(), f.data)
			// Build and store the gather descriptor.
			f.wqe = mlx.WQE{
				Opcode:     f.op,
				Signaled:   e.nextSignaled(),
				Inline:     false,
				WQEIdx:     e.pi,
				QPN:        e.qp.QPN,
				AmID:       f.amID,
				GatherAddr: e.stagingSlot(),
				GatherLen:  uint32(len(f.data)),
				RemoteAddr: f.raddr,
			}
			enc, err := f.wqe.Encode()
			if err != nil {
				panic(fmt.Sprintf("uct: WQE encode: %v", err))
			}
			f.enc = enc
			t.Advance(sw.MDSetup.Sample(r))
			t.Advance(sw.SQRingWrite.Sample(r))
			f.pc = 2
			if t.Pause() {
				return
			}
		case 2:
			w.Node.Mem.Write(e.qp.SQ.EntryAddr(e.pi), f.enc[:])
			t.Advance(sw.BarrierMD.Sample(r))
			// No Pause for the doorbell record: see postFrame.
			var dbr [8]byte
			binary.LittleEndian.PutUint16(dbr[:], e.pi+1)
			w.Node.Mem.Write(e.qp.DBRAddr, dbr[:])
			t.Advance(sw.DBCIncrement.Sample(r))
			t.Advance(sw.BarrierDBC.Sample(r))
			t.Advance(sw.DoorbellRing.Sample(r))
			f.pc = 3
			if t.Pause() {
				return
			}
		case 3:
			var db [8]byte
			binary.LittleEndian.PutUint16(db[:], e.pi+1)
			w.Node.RC.MMIOWrite(e.qp.DBAddr, db[:])
			t.Advance(sw.LLPPostExit.Sample(r))
			e.pi++
			w.Stats.Posts++
			w.profEndAs(t, f.tok, StLLPPost.Name())
			f.finish(t, nil)
			return
		}
	}
}

// nextSignaled applies the unsignaled-completion policy.
func (e *Ep) nextSignaled() bool {
	e.sinceSig++
	if e.sinceSig >= e.SignalPeriod {
		e.sinceSig = 0
		return true
	}
	return false
}

// StartProgress begins one completion-queue poll, dequeuing at most one
// entry (the paper's LLP_prog is "dequeuing one entry of the completion
// queue"). The number of operations retired — one CQE can retire several
// with unsignaled completions, 0 means an empty poll — is reported by
// LastProgress once the frame returns.
func (w *Worker) StartProgress(t *sim.Task) {
	w.progF.pc = 0
	t.Call(&w.progF)
}

// Progress is the synchronous form of StartProgress for blocking tasks.
func (w *Worker) Progress(t *sim.Task) int {
	t.BlockingOnly("uct.Worker.Progress")
	w.StartProgress(t)
	return w.progF.n
}

// LastProgress reports the operation count retired by the most recently
// completed progress frame.
func (w *Worker) LastProgress() int { return w.progF.n }

// progressFrame polls the send CQs first, then the receive CQs, scanning
// endpoints in creation order for determinism. Before each CQ read the task
// pauses (free unless lag is pending): the read must observe every
// completion DMA-written up to the task's current virtual time.
type progressFrame struct {
	w  *Worker
	pc int
	i  int // endpoint scan index
	n  int // result: operations retired

	tok profTok
	// Recv-path locals preserved across the large-payload pause.
	amID    uint8
	byteCnt uint32
	bufAddr uint64
	data    []byte
}

func (f *progressFrame) Step(t *sim.Task) {
	w := f.w
	sw := &w.Cfg.SW
	r := w.rand
	for {
		switch f.pc {
		case 0:
			w.Stats.Progresses++
			f.tok = profTok{}
			if w.ProfStage == StLLPProg {
				f.tok = w.profBegin(t)
			}
			// Load barrier: the CQE read must not be reordered with
			// subsequent data-structure updates (paper §4.1, aarch64 weak
			// memory model).
			t.Advance(sw.LLPProgBarrier.Sample(r))
			f.i = 0
			f.pc = 1
		case 1: // about to read ep i's send CQ
			if f.i >= len(w.Eps) {
				f.i = 0
				f.pc = 3
				continue
			}
			f.pc = 2
			if t.Pause() {
				return
			}
		case 2:
			e := w.Eps[f.i]
			cqe := e.readCQ(e.qp.SendCQ, e.sendCI)
			if cqe == nil {
				f.i++
				f.pc = 1
				continue
			}
			t.Advance(sw.LLPProgCQERead.Sample(r))
			e.sendCI++
			n := int(cqe.WQECounter - e.completed + 1)
			e.completed = cqe.WQECounter + 1
			w.Stats.SendCQEs++
			w.Stats.SendsFreed += uint64(n)
			var cqErr error
			if cqe.Status != mlx.CQEOK {
				// Error completion: the NIC flushed the outstanding
				// tail (retry exhaustion, a crashed local NIC, or a
				// flushing errored QP). The slots are freed but
				// nothing was delivered; surface it to the caller.
				w.Stats.ErrorCQEs++
				cqErr = fmt.Errorf("uct: qp %d send failed with completion status %d at counter %d",
					cqe.QPN, cqe.Status, cqe.WQECounter)
				if e.Err == nil {
					e.Err = cqErr
				}
			}
			t.Advance(sw.LLPProgMisc.Sample(r))
			if tr := t.Kernel().Tracer(); tr != nil {
				// Software-visible completion: n sends retired by one CQE.
				tr.Emit(trace.Event{At: t.Now(), Kind: trace.EvComp,
					Node: int16(w.Node.ID), Arg: trace.ArgQP(e.qp.QPN, uint64(n))})
			}
			// Registered callbacks run before uct_worker_progress
			// returns (paper §5), so the profiled scope includes them.
			if w.onSend != nil {
				w.onSend(t, e, n, cqErr)
			}
			w.profEndAs(t, f.tok, StLLPProg.Name())
			f.n = n
			t.Return()
			return
		case 3: // about to read ep i's recv CQ
			if f.i >= len(w.Eps) {
				f.pc = 6
				continue
			}
			f.pc = 4
			if t.Pause() {
				return
			}
		case 4:
			e := w.Eps[f.i]
			cqe := e.readCQ(e.qp.RecvCQ, e.recvCI)
			if cqe == nil {
				f.i++
				f.pc = 3
				continue
			}
			t.Advance(sw.LLPProgCQERead.Sample(r))
			e.recvCI++
			w.Stats.RecvCQEs++
			if cqe.Status != mlx.CQEOK {
				// Flushed receive: the QP entered the error state (the
				// local NIC crashed) and the posted credit was retired
				// undelivered. Record the failure, skip the AM dispatch,
				// and do not replenish — nothing will arrive on this QP
				// again.
				w.Stats.ErrorCQEs++
				if e.Err == nil {
					e.Err = fmt.Errorf("uct: qp %d recv flushed with completion status %d",
						cqe.QPN, cqe.Status)
				}
				if len(e.recvOrder) > 0 {
					e.recvOrder = e.recvOrder[1:]
				}
				t.Advance(sw.LLPProgMisc.Sample(r))
				w.profEndAs(t, f.tok, StLLPProg.Name())
				f.n = 1
				t.Return()
				return
			}
			t.Advance(sw.LLPProgMisc.Sample(r))
			// Every inbound send consumed one posted receive; retire
			// its pool slot in FIFO order.
			if len(e.recvOrder) == 0 {
				panic("uct: recv CQE with no posted receive tracked")
			}
			f.bufAddr = e.recvOrder[0]
			e.recvOrder = e.recvOrder[1:]
			f.amID = cqe.AmID
			f.byteCnt = cqe.ByteCnt
			f.data = cqe.Payload
			if int(cqe.ByteCnt) > mlx.ScatterMax {
				// Large payload: it was DMA-written to the pool slot,
				// not scattered into the CQE. Read it into the
				// worker's reusable staging buffer.
				t.Advance(units.Time(cqe.ByteCnt) * sw.MemcpyPerByte)
				f.pc = 5
				if t.Pause() {
					return
				}
				continue
			}
			f.pc = 7
		case 5:
			w.recvBuf = arena.Grow(w.recvBuf, int(f.byteCnt))
			w.Node.Mem.ReadInto(f.bufAddr, w.recvBuf)
			f.data = w.recvBuf
			f.pc = 7
		case 7: // dispatch the active-message handler (inside progress,
			// as UCX does); the profiled scope includes it, like the
			// send-side callbacks.
			e := w.Eps[f.i]
			t.Advance(sw.AmRxHandle.Sample(r))
			if tr := t.Kernel().Tracer(); tr != nil {
				// Software-visible receive: the AM payload reached its handler.
				tr.Emit(trace.Event{At: t.Now(), Kind: trace.EvComp,
					Node: int16(w.Node.ID), Arg: trace.ArgQP(e.qp.QPN, 1)})
			}
			if h := w.amHandlers[f.amID]; h != nil {
				h(t, f.data)
			}
			w.profEndAs(t, f.tok, StLLPProg.Name())
			e.owedRecvCredits++
			f.n = 1
			f.data = nil
			if e.owedRecvCredits >= replenishBatch {
				w.replF.e = e
				w.replF.pc = 0
				f.pc = 8
				t.Call(&w.replF)
				return
			}
			t.Return()
			return
		case 8:
			t.Return()
			return
		case 6:
			// Empty poll: pay the failed check and use the idle time to
			// repost owed receive credits.
			t.Advance(sw.LLPProgFailChk.Sample(r))
			w.Stats.EmptyPolls++
			w.profEndAs(t, f.tok, "empty_poll")
			f.n = 0
			f.i = 0
			f.pc = 9
		case 9:
			if f.i >= len(w.Eps) {
				t.Return()
				return
			}
			e := w.Eps[f.i]
			f.i++
			if e.owedRecvCredits == 0 {
				continue
			}
			w.replF.e = e
			w.replF.pc = 0
			t.Call(&w.replF)
			return
		}
	}
}

// replenishFrame reposts all owed receive credits of one endpoint;
// visibility: each credit is posted at its own time (see recvsFrame).
type replenishFrame struct {
	e  *Ep
	pc int
}

func (f *replenishFrame) Step(t *sim.Task) {
	e := f.e
	for {
		switch f.pc {
		case 0:
			if e.owedRecvCredits == 0 {
				t.Return()
				return
			}
			t.Advance(e.w.Cfg.SW.PostRecv.Sample(e.w.rand))
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			e.postOneRecv()
			e.owedRecvCredits--
			f.pc = 0
		}
	}
}

// readCQ reads the CQ slot for consumer counter ci and returns the decoded
// CQE if its generation marks it valid. The caller must have paused
// immediately beforehand: the read must observe every completion DMA-written
// up to the task's current virtual time. The returned CQE is the worker's
// scratch: it (and its payload) is only valid until the next read.
func (e *Ep) readCQ(ring mlx.Ring, ci uint16) *mlx.CQE {
	e.w.Node.Mem.ReadInto(ring.EntryAddr(ci), e.w.scratch[:])
	if e.w.scratch[mlx.CQESize-1] != ring.Gen(ci) {
		return nil
	}
	if err := e.w.cqe.DecodeFrom(e.w.scratch[:]); err != nil {
		panic(fmt.Sprintf("uct: corrupt CQE at ci=%d: %v", ci, err))
	}
	return &e.w.cqe
}

// --- profiling helpers ---

// profTok wraps an open measurement. Instrumentation wraps whole calls and
// names the scope by outcome (a post attempt records as llp_post on success
// and busy_post on failure), so every begun scope is ended, as real UCS
// instrumentation does.
type profTok struct {
	tok  profile.Token
	real bool
}

func (w *Worker) profBegin(t *sim.Task) profTok {
	return profTok{tok: w.Node.Prof.BeginAnon(t), real: true}
}

func (w *Worker) profEndAs(t *sim.Task, tk profTok, name string) {
	if tk.real {
		w.Node.Prof.EndAs(t, tk.tok, name)
	}
}

func (w *Worker) stageBegin(t *sim.Task, st Stage) profTok {
	if w.ProfStage != st {
		return profTok{}
	}
	return w.profBegin(t)
}

func (w *Worker) stageEnd(t *sim.Task, st Stage, tk profTok) {
	if w.ProfStage == st {
		w.profEndAs(t, tk, st.Name())
	}
}
