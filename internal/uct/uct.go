// Package uct implements the low-level communication protocol (LLP): a
// UCT-style transport layer that drives the NIC directly, mirroring UCX's
// rc_mlx5 data path.
//
// An LLP_post executes the paper's §4.1 sequence: prepare the message
// descriptor (with the payload memcpy'd inline), a store memory barrier, the
// DoorBell-counter increment, a second store barrier, and the PIO copy of
// the 64-byte descriptor to device memory. An LLP_prog reads one completion
// queue entry behind a load memory barrier. Busy posts (attempts against a
// full transmit queue) fail fast with ErrNoResource, exactly the semantic
// the paper's injection model builds on.
package uct

import (
	"encoding/binary"
	"errors"
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/config"
	"breakband/internal/mlx"
	"breakband/internal/nic"
	"breakband/internal/node"
	"breakband/internal/profile"
	"breakband/internal/rng"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// ErrNoResource is returned by a post against a full transmit queue — the
// paper's "busy" post.
var ErrNoResource = errors.New("uct: no resource (transmit queue full)")

// PostMode selects the descriptor-delivery path (paper §2).
type PostMode int

// Post modes.
const (
	// PIOInline: the CPU PIO-copies the descriptor with the payload
	// inline; no NIC DMA reads (the paper's fast path for small
	// messages).
	PIOInline PostMode = iota
	// DoorbellInline: the descriptor (payload still inline) is written to
	// the send queue in host memory and the 8-byte DoorBell is rung; the
	// NIC DMA-reads the descriptor (one PCIe round trip).
	DoorbellInline
	// DoorbellGather: descriptor and payload are both fetched by the NIC
	// (two PCIe round trips) — the paper's §2 steps (2) and (3).
	DoorbellGather
)

// String implements fmt.Stringer.
func (m PostMode) String() string {
	switch m {
	case PIOInline:
		return "pio-inline"
	case DoorbellInline:
		return "doorbell-inline"
	case DoorbellGather:
		return "doorbell-gather"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Stage identifies an instrumentable region for the measurement methodology
// (one stage is profiled at a time, per paper §3).
type Stage int

// Stages.
const (
	StNone Stage = iota
	StMDSetup
	StBarrierMD
	StBarrierDBC
	StPIOCopy
	StLLPPost // the whole successful post
	StLLPProg // a successful progress (one CQE dequeued)
	StBusyPost
)

// Stage scope names as recorded in the profiler.
var stageNames = map[Stage]string{
	StMDSetup:    "md_setup",
	StBarrierMD:  "barrier_md",
	StBarrierDBC: "barrier_dbc",
	StPIOCopy:    "pio_copy",
	StLLPPost:    "llp_post",
	StLLPProg:    "llp_prog",
	StBusyPost:   "busy_post",
}

// Name reports the profiler scope name for a stage.
func (s Stage) Name() string { return stageNames[s] }

// AmHandler is an active-message receive callback, invoked during Progress
// on the node that received the message. data is borrowed from the worker's
// reusable receive scratch and is only valid for the duration of the call:
// handlers that keep the payload must copy it (internal/ucp does).
type AmHandler func(p *sim.Proc, data []byte)

// SendCompletion is invoked during Progress for each completed send-side
// operation (UCP registers it to drive its request machinery).
type SendCompletion func(p *sim.Proc, count int)

// Stats counts LLP events; the §6 methodology needs the busy-post count.
type Stats struct {
	Posts      uint64
	BusyPosts  uint64
	Progresses uint64
	EmptyPolls uint64
	SendCQEs   uint64
	RecvCQEs   uint64
	SendsFreed uint64 // send slots retired (>= SendCQEs with unsignaled batching)
	// ErrorCQEs counts completions with a nonzero status — the NIC gave
	// up on the operation (e.g. RNR retries exhausted) and the retired
	// WQEs must not be treated as delivered. The endpoint's Err records
	// the last such failure.
	ErrorCQEs uint64
}

// Worker is the LLP progress context for one core.
type Worker struct {
	Node *node.Node
	Cfg  *config.Config
	Eps  []*Ep

	amHandlers map[uint8]AmHandler
	onSend     SendCompletion

	// Instrumentation: when ProfStage is set, the corresponding region is
	// wrapped with the node's profiler.
	ProfStage Stage

	Stats Stats

	// rand is the jitter stream for this worker's software costs. It
	// defaults to the node's stream; SetRand decouples co-node workers
	// (one per simulated core) so their draws are independent of
	// scheduling order.
	rand *rng.Rand

	scratch [mlx.CQESize]byte
	// cqe is the scratch completion peekCQ decodes into; its payload
	// buffer is reused, so CQE data handed to AM handlers is only valid
	// for the duration of the callback (copy what you keep).
	cqe mlx.CQE
	// recvBuf is the reusable staging buffer for payloads delivered to
	// the receive pool (too large for CQE inline scatter).
	recvBuf []byte
}

// NewWorker builds an LLP worker on a node. The worker draws its software
// jitter from the node's stream; use SetRand to give co-node workers
// independent streams.
func NewWorker(n *node.Node, cfg *config.Config) *Worker {
	return &Worker{Node: n, Cfg: cfg, amHandlers: make(map[uint8]AmHandler), rand: n.Rand}
}

// SetRand replaces the worker's jitter stream (nil collapses distributions
// to their means, as in NoiseOff mode). The multi-core ablation derives one
// stream per simulated core from the campaign seed and the core identity,
// so co-node cores' draws decouple from event scheduling order.
func (w *Worker) SetRand(r *rng.Rand) { w.rand = r }

// SetAmHandler registers the receive callback for an active-message id.
func (w *Worker) SetAmHandler(id uint8, h AmHandler) { w.amHandlers[id] = h }

// SetSendCompletion registers the send-side completion callback.
func (w *Worker) SetSendCompletion(cb SendCompletion) { w.onSend = cb }

// Ep is a connected endpoint (its own QP, per UCX's RC transport).
type Ep struct {
	w  *Worker
	qp *nic.QP

	Mode PostMode
	// SignalPeriod: every SignalPeriod-th post is signaled (1 = every
	// post; the paper's c = 64 for the MPI path).
	SignalPeriod int

	// Software queue state.
	pi        uint16 // next WQE counter
	completed uint16 // count of WQEs known completed (from CQEs)
	sendCI    uint16 // send CQ consumer counter
	recvCI    uint16 // recv CQ consumer counter
	sinceSig  int

	// RemoteBuf is the peer buffer targeted by PutShort.
	RemoteBuf uint64

	// staging holds payloads for the DoorbellGather path.
	staging uint64

	// Receive buffer pool: posted receives rotate through fixed slots;
	// recvOrder mirrors the NIC's FIFO consumption so large payloads
	// (delivered to the buffer rather than scattered into the CQE) are
	// read back from the right slot.
	recvPool  uint64
	recvSlot  int
	recvOrder []uint64

	// owedRecvCredits counts consumed receives not yet reposted.
	// Replenishment is batched and runs on empty polls (idle time) or
	// when the debt reaches replenishBatch, keeping the repost cost off
	// the receive critical path, as UCX's batched receive posting does.
	owedRecvCredits int

	// Err records the first error completion the endpoint saw (e.g. the
	// peer kept answering RNR NAK past the QP's retry budget). The failed
	// WQEs are retired — InFlight drains — but were never delivered.
	Err error
}

// Receive-pool geometry: slots sized for the largest bcopy message.
const (
	// MaxBcopy is the largest payload the buffered-copy path carries.
	MaxBcopy      = 4096
	recvPoolSlots = 64
)

// replenishBatch forces a repost even on a busy worker once this many
// receive credits are owed.
const replenishBatch = 64

// NewEp creates an endpoint with its own QP.
func (w *Worker) NewEp(mode PostMode, signalPeriod int) *Ep {
	if signalPeriod < 1 {
		signalPeriod = 1
	}
	qp := w.Node.NIC.CreateQP(w.Cfg.Bench.SQDepth, w.Cfg.Bench.CQDepth)
	st := w.Node.Mem.Alloc(fmt.Sprintf("uct.ep%d.staging", qp.QPN), MaxBcopy, 64)
	pool := w.Node.Mem.Alloc(fmt.Sprintf("uct.ep%d.rxpool", qp.QPN), MaxBcopy*recvPoolSlots, 64)
	ep := &Ep{w: w, qp: qp, Mode: mode, SignalPeriod: signalPeriod, staging: st.Base, recvPool: pool.Base}
	w.Eps = append(w.Eps, ep)
	return ep
}

// QP exposes the underlying queue pair (tests, trace filtering).
func (e *Ep) QP() *nic.QP { return e.qp }

// Connect wires two endpoints' QPs into a reliable connection.
func Connect(a, b *Ep) { nic.Connect(a.qp, b.qp) }

// PostRecvs posts n receive credits, each with its own pool slot for
// payloads too large for CQE inline scatter.
func (e *Ep) PostRecvs(p *sim.Proc, n int) {
	sw := &e.w.Cfg.SW
	for i := 0; i < n; i++ {
		p.Advance(sw.PostRecv.Sample(e.w.rand))
		// Each credit must become visible to in-flight deliveries at its
		// own post time, not batched at the end of the loop.
		p.Sync()
		e.postOneRecv()
	}
}

func (e *Ep) postOneRecv() {
	addr := e.recvPool + uint64(e.recvSlot%recvPoolSlots)*MaxBcopy
	e.recvSlot++
	e.recvOrder = append(e.recvOrder, addr)
	e.qp.PostRecv(addr)
}

// InFlight reports send slots currently consumed.
func (e *Ep) InFlight() int { return int(e.pi - e.completed) }

// FreeSlots reports available send slots.
func (e *Ep) FreeSlots() int { return e.qp.SQ.Depth - e.InFlight() }

// PutShort performs an RDMA write of data (<= mlx.InlineMax bytes) to the
// peer's RemoteBuf + off. It returns ErrNoResource on a full queue (a busy
// post costing SW.BusyPost, per Table 1).
func (e *Ep) PutShort(p *sim.Proc, off uint64, data []byte) error {
	return e.post(p, mlx.OpRDMAWrite, 0, e.RemoteBuf+off, data)
}

// AmShort sends an active message (send-receive semantics).
func (e *Ep) AmShort(p *sim.Proc, id uint8, data []byte) error {
	return e.post(p, mlx.OpSend, id, 0, data)
}

// PutBcopy performs an RDMA write of a payload too large for the inline
// path (up to MaxBcopy bytes): the payload is copied into registered staging
// memory and the NIC gathers it by DMA — UCX's buffered-copy protocol.
func (e *Ep) PutBcopy(p *sim.Proc, off uint64, data []byte) error {
	return e.postGather(p, mlx.OpRDMAWrite, 0, e.RemoteBuf+off, data)
}

// AmBcopy sends a large active message through the buffered-copy path.
func (e *Ep) AmBcopy(p *sim.Proc, id uint8, data []byte) error {
	return e.postGather(p, mlx.OpSend, id, 0, data)
}

// postGather is the buffered-copy descriptor path: stage the payload, write
// a gather WQE into the send queue ring, and ring the 8-byte DoorBell. The
// NIC fetches the descriptor and the payload by DMA (paper §2 steps 2-3).
func (e *Ep) postGather(p *sim.Proc, op mlx.Opcode, amID uint8, raddr uint64, data []byte) error {
	w := e.w
	sw := &w.Cfg.SW
	r := w.rand

	if len(data) > MaxBcopy {
		return fmt.Errorf("uct: bcopy post limited to %d bytes, got %d", MaxBcopy, len(data))
	}
	if e.Err != nil {
		// The QP failed (e.g. RNR retries exhausted); surface the error
		// instead of posting into a flushing queue.
		return e.Err
	}

	var tok profTok
	if w.ProfStage == StLLPPost || w.ProfStage == StBusyPost {
		tok = w.profBegin(p)
	}
	if e.FreeSlots() == 0 {
		p.Advance(sw.BusyPost.Sample(r))
		w.Stats.BusyPosts++
		w.profEndAs(p, tok, StBusyPost.Name())
		return ErrNoResource
	}

	p.Advance(sw.LLPPostEntry.Sample(r))
	// Stage the payload (the bcopy memcpy).
	p.Advance(units.Time(len(data)) * sw.MemcpyPerByte)
	p.Sync()
	w.Node.Mem.Write(e.staging, data)
	// Build and store the gather descriptor (a stack value; see post).
	wqe := mlx.WQE{
		Opcode:     op,
		Signaled:   e.nextSignaled(),
		Inline:     false,
		WQEIdx:     e.pi,
		QPN:        e.qp.QPN,
		AmID:       amID,
		GatherAddr: e.staging,
		GatherLen:  uint32(len(data)),
		RemoteAddr: raddr,
	}
	enc, err := wqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("uct: WQE encode: %v", err))
	}
	p.Advance(sw.MDSetup.Sample(r))
	p.Advance(sw.SQRingWrite.Sample(r))
	p.Sync()
	w.Node.Mem.Write(e.qp.SQ.EntryAddr(e.pi), enc[:])
	p.Advance(sw.BarrierMD.Sample(r))
	// No Sync for the doorbell record: see post.
	var dbr [8]byte
	binary.LittleEndian.PutUint16(dbr[:], e.pi+1)
	w.Node.Mem.Write(e.qp.DBRAddr, dbr[:])
	p.Advance(sw.DBCIncrement.Sample(r))
	p.Advance(sw.BarrierDBC.Sample(r))
	p.Advance(sw.DoorbellRing.Sample(r))
	p.Sync()
	var db [8]byte
	binary.LittleEndian.PutUint16(db[:], e.pi+1)
	w.Node.RC.MMIOWrite(e.qp.DBAddr, db[:])
	p.Advance(sw.LLPPostExit.Sample(r))
	e.pi++
	w.Stats.Posts++
	w.profEndAs(p, tok, StLLPPost.Name())
	return nil
}

func (e *Ep) post(p *sim.Proc, op mlx.Opcode, amID uint8, raddr uint64, data []byte) error {
	w := e.w
	sw := &w.Cfg.SW
	r := w.rand

	if len(data) > mlx.InlineMax {
		return fmt.Errorf("uct: short post limited to %d bytes, got %d", mlx.InlineMax, len(data))
	}
	if e.Err != nil {
		// The QP failed (e.g. RNR retries exhausted); surface the error
		// instead of posting into a flushing queue.
		return e.Err
	}

	var tok profTok
	if w.ProfStage == StLLPPost || w.ProfStage == StBusyPost {
		tok = w.profBegin(p)
	}

	if e.FreeSlots() == 0 {
		// Busy post: fail fast; the caller must progress first.
		p.Advance(sw.BusyPost.Sample(r))
		w.Stats.BusyPosts++
		w.profEndAs(p, tok, StBusyPost.Name())
		return ErrNoResource
	}

	// (0/1) Function-call entry, code-path branches.
	p.Advance(sw.LLPPostEntry.Sample(r))

	// (1) Prepare the message descriptor (memcpy of the inline payload).
	// The WQE is a stack value: Encode copies everything into the 64-byte
	// descriptor, so the steady-state post allocates nothing.
	stTok := w.stageBegin(p, StMDSetup)
	signaled := e.nextSignaled()
	wqe := mlx.WQE{
		Opcode:     op,
		Signaled:   signaled,
		Inline:     true,
		WQEIdx:     e.pi,
		QPN:        e.qp.QPN,
		AmID:       amID,
		Payload:    data,
		RemoteAddr: raddr,
	}
	enc, err := wqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("uct: WQE encode: %v", err))
	}
	p.Advance(sw.MDSetup.Sample(r))
	w.stageEnd(p, StMDSetup, stTok)

	// (2) Store barrier: the MD must be fully written before signalling.
	stTok = w.stageBegin(p, StBarrierMD)
	p.Advance(sw.BarrierMD.Sample(r))
	w.stageEnd(p, StBarrierMD, stTok)

	// (3) DoorBell-counter increment in host memory (enables the NIC's
	// speculative reads). No Sync: the doorbell record is written by the
	// CPU but read by nothing in the device model (the NIC learns the
	// producer counter through the MMIO doorbell), so committing it while
	// the kernel clock still lags the proc clock is unobservable.
	var dbr [8]byte
	binary.LittleEndian.PutUint16(dbr[:], e.pi+1)
	w.Node.Mem.Write(e.qp.DBRAddr, dbr[:])
	p.Advance(sw.DBCIncrement.Sample(r))

	// (4) Store barrier: the DBC update must be visible before the device
	// write.
	stTok = w.stageBegin(p, StBarrierDBC)
	p.Advance(sw.BarrierDBC.Sample(r))
	w.stageEnd(p, StBarrierDBC, stTok)

	// (5) Hand the descriptor to the NIC.
	switch e.Mode {
	case PIOInline:
		// PIO copy to Device-GRE memory, in 64-byte chunks.
		stTok = w.stageBegin(p, StPIOCopy)
		p.Advance(sw.PIOCopy.Sample(r))
		w.stageEnd(p, StPIOCopy, stTok)
		p.Sync()
		w.Node.RC.MMIOWrite(e.qp.BFAddr, enc[:])
	case DoorbellInline, DoorbellGather:
		if e.Mode == DoorbellGather {
			// Stage the payload in registered memory for the NIC's
			// second DMA read.
			p.Sync()
			w.Node.Mem.Write(e.staging, data)
			wqe.Inline = false
			wqe.GatherAddr = e.staging
			wqe.GatherLen = uint32(len(data))
			wqe.Payload = nil
			enc, err = wqe.Encode()
			if err != nil {
				panic(fmt.Sprintf("uct: WQE encode: %v", err))
			}
		}
		// Regular store of the WQE into the ring, then the 8-byte
		// DoorBell MMIO write.
		p.Advance(sw.SQRingWrite.Sample(r))
		p.Sync()
		w.Node.Mem.Write(e.qp.SQ.EntryAddr(e.pi), enc[:])
		p.Advance(sw.DBRecUpdate.Sample(r))
		p.Advance(sw.DoorbellRing.Sample(r))
		p.Sync()
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], e.pi+1)
		w.Node.RC.MMIOWrite(e.qp.DBAddr, db[:])
	}

	p.Advance(sw.LLPPostExit.Sample(r))
	e.pi++
	w.Stats.Posts++
	w.profEndAs(p, tok, StLLPPost.Name())
	return nil
}

// nextSignaled applies the unsignaled-completion policy.
func (e *Ep) nextSignaled() bool {
	e.sinceSig++
	if e.sinceSig >= e.SignalPeriod {
		e.sinceSig = 0
		return true
	}
	return false
}

// Progress polls the completion queues, dequeuing at most one entry (the
// paper's LLP_prog is "dequeuing one entry of the completion queue"). It
// returns the number of operations retired (one CQE can retire several with
// unsignaled completions) or 0 for an empty poll.
func (w *Worker) Progress(p *sim.Proc) int {
	sw := &w.Cfg.SW
	r := w.rand
	w.Stats.Progresses++

	var tok profTok
	if w.ProfStage == StLLPProg {
		tok = w.profBegin(p)
	}

	// Load barrier: the CQE read must not be reordered with subsequent
	// data-structure updates (paper §4.1, aarch64 weak memory model).
	p.Advance(sw.LLPProgBarrier.Sample(r))

	// Send completion queues first, then receive queues; one entry per
	// call, scanning endpoints in creation order for determinism.
	for _, e := range w.Eps {
		if cqe := e.peekCQ(p, e.qp.SendCQ, e.sendCI); cqe != nil {
			p.Advance(sw.LLPProgCQERead.Sample(r))
			e.sendCI++
			n := int(cqe.WQECounter - e.completed + 1)
			e.completed = cqe.WQECounter + 1
			w.Stats.SendCQEs++
			w.Stats.SendsFreed += uint64(n)
			if cqe.Status != mlx.CQEOK {
				// Error completion: the NIC flushed the outstanding
				// tail (retry exhaustion). The slots are freed but
				// nothing was delivered; surface it to the caller.
				w.Stats.ErrorCQEs++
				if e.Err == nil {
					e.Err = fmt.Errorf("uct: qp %d send failed with completion status %d at counter %d",
						cqe.QPN, cqe.Status, cqe.WQECounter)
				}
			}
			p.Advance(sw.LLPProgMisc.Sample(r))
			// Registered callbacks run before uct_worker_progress
			// returns (paper §5), so the profiled scope includes them.
			if w.onSend != nil {
				w.onSend(p, n)
			}
			w.profEndAs(p, tok, StLLPProg.Name())
			return n
		}
	}
	for _, e := range w.Eps {
		if cqe := e.peekCQ(p, e.qp.RecvCQ, e.recvCI); cqe != nil {
			p.Advance(sw.LLPProgCQERead.Sample(r))
			e.recvCI++
			w.Stats.RecvCQEs++
			p.Advance(sw.LLPProgMisc.Sample(r))
			// Every inbound send consumed one posted receive; retire
			// its pool slot in FIFO order.
			if len(e.recvOrder) == 0 {
				panic("uct: recv CQE with no posted receive tracked")
			}
			bufAddr := e.recvOrder[0]
			e.recvOrder = e.recvOrder[1:]
			data := cqe.Payload
			if int(cqe.ByteCnt) > mlx.ScatterMax {
				// Large payload: it was DMA-written to the pool
				// slot, not scattered into the CQE. Read it into
				// the worker's reusable staging buffer.
				p.Advance(units.Time(cqe.ByteCnt) * sw.MemcpyPerByte)
				p.Sync()
				w.recvBuf = arena.Grow(w.recvBuf, int(cqe.ByteCnt))
				w.Node.Mem.ReadInto(bufAddr, w.recvBuf)
				data = w.recvBuf
			}
			// Dispatch the active-message handler (inside progress,
			// as UCX does); the profiled scope includes it, like the
			// send-side callbacks.
			p.Advance(sw.AmRxHandle.Sample(r))
			if h := w.amHandlers[cqe.AmID]; h != nil {
				h(p, data)
			}
			w.profEndAs(p, tok, StLLPProg.Name())
			e.owedRecvCredits++
			if e.owedRecvCredits >= replenishBatch {
				e.replenish(p)
			}
			return 1
		}
	}

	// Empty poll: pay the failed check and use the idle time to repost
	// owed receive credits.
	p.Advance(sw.LLPProgFailChk.Sample(r))
	w.Stats.EmptyPolls++
	w.profEndAs(p, tok, "empty_poll")
	for _, e := range w.Eps {
		e.replenish(p)
	}
	return 0
}

// replenish reposts all owed receive credits.
func (e *Ep) replenish(p *sim.Proc) {
	for ; e.owedRecvCredits > 0; e.owedRecvCredits-- {
		p.Advance(e.w.Cfg.SW.PostRecv.Sample(e.w.rand))
		// Visibility: each credit is posted at its own time (see
		// PostRecvs).
		p.Sync()
		e.postOneRecv()
	}
}

// peekCQ reads the CQ slot for consumer counter ci and returns the decoded
// CQE if its generation marks it valid. It synchronizes the proc first: the
// read must observe every completion DMA-written up to the proc's current
// virtual time. The returned CQE is the worker's scratch: it (and its
// payload) is only valid until the next peek.
func (e *Ep) peekCQ(p *sim.Proc, ring mlx.Ring, ci uint16) *mlx.CQE {
	p.Sync()
	e.w.Node.Mem.ReadInto(ring.EntryAddr(ci), e.w.scratch[:])
	if e.w.scratch[mlx.CQESize-1] != ring.Gen(ci) {
		return nil
	}
	if err := e.w.cqe.DecodeFrom(e.w.scratch[:]); err != nil {
		panic(fmt.Sprintf("uct: corrupt CQE at ci=%d: %v", ci, err))
	}
	return &e.w.cqe
}

// --- profiling helpers ---

// profTok wraps an open measurement. Instrumentation wraps whole calls and
// names the scope by outcome (a post attempt records as llp_post on success
// and busy_post on failure), so every begun scope is ended, as real UCS
// instrumentation does.
type profTok struct {
	tok  profile.Token
	real bool
}

func (w *Worker) profBegin(p *sim.Proc) profTok {
	return profTok{tok: w.Node.Prof.BeginAnon(p), real: true}
}

func (w *Worker) profEndAs(p *sim.Proc, t profTok, name string) {
	if t.real {
		w.Node.Prof.EndAs(p, t.tok, name)
	}
}

func (w *Worker) stageBegin(p *sim.Proc, st Stage) profTok {
	if w.ProfStage != st {
		return profTok{}
	}
	return w.profBegin(p)
}

func (w *Worker) stageEnd(p *sim.Proc, st Stage, t profTok) {
	if w.ProfStage == st {
		w.profEndAs(p, t, st.Name())
	}
}
