package pcie

import (
	"fmt"

	"breakband/internal/sim"
	"breakband/internal/units"
)

// LinkConfig parameterizes a PCIe link.
type LinkConfig struct {
	// Prop is the one-way propagation latency of the link (flight time
	// through the slot, retimers and PHY).
	Prop units.Time
	// PerByte is the serialization cost per byte (e.g. ~63.5 ps/B for
	// Gen3 x16).
	PerByte units.Time
	// TLPHeader is the per-TLP header+framing overhead in bytes.
	TLPHeader int
	// DLLPBytes is the on-wire size of a DLLP.
	DLLPBytes int
	// AckDelay is the receiver's ACK turnaround time.
	AckDelay units.Time
	// FlowControl enables credit accounting. When disabled the link is an
	// infinite-credit ideal, useful for isolating effects in tests.
	FlowControl bool
	// PostedCredits and NonPostedCredits are the receiver-advertised
	// pools per direction.
	PostedCredits    Credits
	NonPostedCredits Credits
	// RxProcess is how long the receiver holds a TLP's credits before
	// returning them via UpdateFC.
	RxProcess units.Time
}

// DefaultLinkConfig returns a Gen3 x16-flavoured configuration. Credit pools
// are sized so that one posting core never exhausts them (the paper's
// observation) while a many-core burst can (our ablation X3).
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		Prop:             units.Nanoseconds(134),
		PerByte:          units.Time(64), // 64 ps/B ~ 15.75 GB/s
		TLPHeader:        24,
		DLLPBytes:        8,
		AckDelay:         units.Nanoseconds(2),
		FlowControl:      true,
		PostedCredits:    Credits{Hdr: 32, Data: 256},
		NonPostedCredits: Credits{Hdr: 16},
	}
}

// channel is one direction of the link.
type channel struct {
	link      *Link
	dir       Dir
	busyUntil units.Time
	seq       uint64
	// Sender-side credit view of the receiver's pools.
	avail map[CreditKind]Credits
	// pend holds TLPs blocked on credits, in order.
	pend []*TLP
	// stats
	sentTLP, sentDLLP uint64
	blocked           uint64
}

// Link is the full-duplex RC<->endpoint link.
type Link struct {
	k    *sim.Kernel
	cfg  LinkConfig
	down *channel // RC -> endpoint
	up   *channel // endpoint -> RC
	// receivers
	rcSide Receiver // handles Up TLPs (the Root Complex)
	epSide Receiver // handles Down TLPs (the NIC)
	taps   []Tap
}

// NewLink builds a link; attach receivers with SetRCSide/SetEndpointSide
// before sending.
func NewLink(k *sim.Kernel, cfg LinkConfig) *Link {
	l := &Link{k: k, cfg: cfg}
	l.down = &channel{link: l, dir: Down, avail: map[CreditKind]Credits{
		Posted: cfg.PostedCredits, NonPosted: cfg.NonPostedCredits,
	}}
	l.up = &channel{link: l, dir: Up, avail: map[CreditKind]Credits{
		Posted: cfg.PostedCredits, NonPosted: cfg.NonPostedCredits,
	}}
	return l
}

// Config reports the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetRCSide attaches the upstream receiver (the Root Complex).
func (l *Link) SetRCSide(r Receiver) { l.rcSide = r }

// SetEndpointSide attaches the downstream receiver (the NIC).
func (l *Link) SetEndpointSide(r Receiver) { l.epSide = r }

// AddTap registers a passive observer positioned just before the endpoint.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SendDown transmits a TLP from the RC towards the endpoint.
func (l *Link) SendDown(t *TLP) { l.down.send(t) }

// SendUp transmits a TLP from the endpoint towards the RC.
func (l *Link) SendUp(t *TLP) { l.up.send(t) }

// Blocked reports how many TLP sends stalled on credits, per direction.
func (l *Link) Blocked() (down, up uint64) { return l.down.blocked, l.up.blocked }

// Sent reports TLPs transmitted per direction.
func (l *Link) Sent() (down, up uint64) { return l.down.sentTLP, l.up.sentTLP }

func (c *channel) serialize(bytes int) units.Time {
	return units.Time(bytes) * c.link.cfg.PerByte
}

// send enqueues t for transmission, blocking it on credits if necessary.
func (c *channel) send(t *TLP) {
	if c.link.cfg.FlowControl {
		kind, need := creditsFor(t)
		if need.Hdr > 0 {
			have := c.avail[kind]
			if have.Hdr < need.Hdr || have.Data < need.Data {
				c.pend = append(c.pend, t)
				c.blocked++
				return
			}
			have.Hdr -= need.Hdr
			have.Data -= need.Data
			c.avail[kind] = have
		}
	}
	c.transmit(t)
}

// transmit serializes t onto the wire and schedules its arrival.
func (c *channel) transmit(t *TLP) {
	k := c.link.k
	t.Seq = c.seq
	c.seq++
	c.sentTLP++
	start := units.Max(k.Now(), c.busyUntil)
	txDone := start + c.serialize(t.WireBytes(c.link.cfg.TLPHeader))
	c.busyUntil = txDone
	arrival := txDone + c.link.cfg.Prop

	// The analyzer tap sits just before the endpoint: downstream packets
	// pass it at arrival; upstream packets pass it as they leave the
	// endpoint.
	switch c.dir {
	case Down:
		k.At(arrival, func() {
			for _, tap := range c.link.taps {
				tap.ObserveTLP(k.Now(), Down, t)
			}
			c.deliver(t)
		})
	case Up:
		k.At(txDone, func() {
			for _, tap := range c.link.taps {
				tap.ObserveTLP(k.Now(), Up, t)
			}
		})
		k.At(arrival, func() { c.deliver(t) })
	}
}

// deliver hands t to the receiving side, emits the ACK DLLP, and schedules
// the credit return.
func (c *channel) deliver(t *TLP) {
	l := c.link
	// Data-link ACK back to the sender after the turnaround delay.
	ack := &DLLP{Type: Ack, AckSeq: t.Seq}
	l.k.After(l.cfg.AckDelay, func() { c.reverse().sendDLLP(ack) })

	// Credit return after the receiver has processed the TLP.
	if l.cfg.FlowControl {
		kind, need := creditsFor(t)
		if need.Hdr > 0 {
			upd := &DLLP{Type: UpdateFC, Kind: kind, Credit: need}
			l.k.After(l.cfg.RxProcess+l.cfg.AckDelay, func() { c.reverse().sendDLLP(upd) })
		}
	}

	var rx Receiver
	if c.dir == Down {
		rx = l.epSide
	} else {
		rx = l.rcSide
	}
	if rx == nil {
		panic(fmt.Sprintf("pcie: no receiver attached for %v direction", c.dir))
	}
	rx.RxTLP(t)
}

func (c *channel) reverse() *channel {
	if c.dir == Down {
		return c.link.up
	}
	return c.link.down
}

// sendDLLP transmits a DLLP on this channel. DLLPs share the wire with TLPs
// (they occupy the serializer) and pass the tap under the same placement
// rules.
func (c *channel) sendDLLP(d *DLLP) {
	k := c.link.k
	c.sentDLLP++
	start := units.Max(k.Now(), c.busyUntil)
	txDone := start + c.serialize(c.link.cfg.DLLPBytes)
	c.busyUntil = txDone
	arrival := txDone + c.link.cfg.Prop

	switch c.dir {
	case Down:
		k.At(arrival, func() {
			for _, tap := range c.link.taps {
				tap.ObserveDLLP(k.Now(), Down, d)
			}
			c.deliverDLLP(d)
		})
	case Up:
		k.At(txDone, func() {
			for _, tap := range c.link.taps {
				tap.ObserveDLLP(k.Now(), Up, d)
			}
		})
		k.At(arrival, func() { c.deliverDLLP(d) })
	}
}

// deliverDLLP applies a DLLP at the receiving side. ACKs retire the replay
// buffer (not modelled beyond accounting); UpdateFC restores the *opposite*
// channel's sender credits and unblocks pending TLPs.
func (c *channel) deliverDLLP(d *DLLP) {
	if d.Type != UpdateFC {
		return
	}
	fwd := c.reverse() // credits apply to traffic flowing opposite the DLLP
	have := fwd.avail[d.Kind]
	have.Hdr += d.Credit.Hdr
	have.Data += d.Credit.Data
	fwd.avail[d.Kind] = have
	fwd.retryPending()
}

// retryPending attempts to transmit credit-blocked TLPs in order. Ordering
// is preserved: the scan stops at the first TLP that still lacks credits.
func (c *channel) retryPending() {
	for len(c.pend) > 0 {
		t := c.pend[0]
		kind, need := creditsFor(t)
		have := c.avail[kind]
		if have.Hdr < need.Hdr || have.Data < need.Data {
			return
		}
		have.Hdr -= need.Hdr
		have.Data -= need.Data
		c.avail[kind] = have
		c.pend = c.pend[1:]
		c.transmit(t)
	}
}
