package pcie

import (
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/sim"
	"breakband/internal/trace"
	"breakband/internal/units"
)

// LinkConfig parameterizes a PCIe link.
type LinkConfig struct {
	// Prop is the one-way propagation latency of the link (flight time
	// through the slot, retimers and PHY).
	Prop units.Time
	// PerByte is the serialization cost per byte (e.g. ~63.5 ps/B for
	// Gen3 x16).
	PerByte units.Time
	// TLPHeader is the per-TLP header+framing overhead in bytes.
	TLPHeader int
	// DLLPBytes is the on-wire size of a DLLP.
	DLLPBytes int
	// AckDelay is the receiver's ACK turnaround time.
	AckDelay units.Time
	// FlowControl enables credit accounting. When disabled the link is an
	// infinite-credit ideal, useful for isolating effects in tests.
	FlowControl bool
	// PostedCredits and NonPostedCredits are the receiver-advertised
	// pools per direction.
	PostedCredits    Credits
	NonPostedCredits Credits
	// RxProcess is how long the receiver holds a TLP's credits before
	// returning them via UpdateFC.
	RxProcess units.Time
}

// DefaultLinkConfig returns a Gen3 x16-flavoured configuration. Credit pools
// are sized so that one posting core never exhausts them (the paper's
// observation) while a many-core burst can (our ablation X3).
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{
		Prop:             units.Nanoseconds(134),
		PerByte:          units.Time(64), // 64 ps/B ~ 15.75 GB/s
		TLPHeader:        24,
		DLLPBytes:        8,
		AckDelay:         units.Nanoseconds(2),
		FlowControl:      true,
		PostedCredits:    Credits{Hdr: 32, Data: 256},
		NonPostedCredits: Credits{Hdr: 16},
	}
}

// channel is one direction of the link.
type channel struct {
	link      *Link
	dir       Dir
	busyUntil units.Time
	seq       uint64
	// Sender-side credit view of the receiver's pools, indexed by
	// CreditKind.
	avail [2]Credits
	// pend holds TLPs blocked on credits, in order. pendPosted counts the
	// posted writes among them: per the PCIe ordering rules nothing may
	// pass a blocked posted write (producer-consumer ordering), while
	// posted writes and completions may pass blocked non-posted reads
	// (deadlock avoidance).
	pend       []*TLP
	pendPosted int
	// stalled parks every send unconditionally — the host-pause fault
	// model (the issue path is frozen; credits and ordering are evaluated
	// again when the channel resumes).
	stalled bool
	// stats
	sentTLP, sentDLLP uint64
	blocked           uint64
	maxPend           int

	// Continuations, bound once at link construction so the steady-state
	// per-packet path schedules events without allocating closures.
	arriveTLPFn  func(any) // arrival: taps (Down only) + deliver
	tapTLPFn     func(any) // Up only: tap as the packet leaves the endpoint
	arriveDLLPFn func(any)
	tapDLLPFn    func(any) // Up only
	sendDLLPFn   func(any) // delayed DLLP emission (ACK / UpdateFC)
}

// Link is the full-duplex RC<->endpoint link.
type Link struct {
	k    *sim.Kernel
	cfg  LinkConfig
	down *channel // RC -> endpoint
	up   *channel // endpoint -> RC
	// receivers
	rcSide Receiver // handles Up TLPs (the Root Complex)
	epSide Receiver // handles Down TLPs (the NIC)
	taps   []Tap
	// onUpIssued, when set, observes each previously credit-blocked
	// upstream TLP at the moment it finally transmits, in pend-FIFO order.
	// The endpoint uses it to defer resource hand-back (fabric frame
	// release) until its host-memory write has actually been issued.
	onUpIssued func(*TLP)
	// tr is the kernel tracer (nil when tracing is disabled); trNode is the
	// owning node's identity, set by the system builder, so upstream
	// pend/issue events localize PCIe pressure to a host.
	tr     *trace.Tracer
	trNode int16

	// Packet pools; see the package borrow contract.
	tlps  *arena.Arena[TLP]
	dllps *arena.Arena[DLLP]
}

// NewLink builds a link; attach receivers with SetRCSide/SetEndpointSide
// before sending.
func NewLink(k *sim.Kernel, cfg LinkConfig) *Link {
	l := &Link{k: k, cfg: cfg, tlps: newTLPArena(), dllps: newDLLPArena(), tr: k.Tracer()}
	pools := [2]Credits{Posted: cfg.PostedCredits, NonPosted: cfg.NonPostedCredits}
	l.down = &channel{link: l, dir: Down, avail: pools}
	l.up = &channel{link: l, dir: Up, avail: pools}
	// The analyzer tap sits just before the endpoint, so the two
	// directions wire their continuations differently: downstream packets
	// pass the tap at arrival (folded into the arrive continuation);
	// upstream packets pass it at departure (a separate tap event) and
	// arrive untapped.
	down, up := l.down, l.up
	down.arriveTLPFn = func(a any) {
		t := a.(*TLP)
		for _, tap := range l.taps {
			tap.ObserveTLP(l.k.Now(), Down, t)
		}
		down.deliver(t)
	}
	down.arriveDLLPFn = func(a any) {
		d := a.(*DLLP)
		for _, tap := range l.taps {
			tap.ObserveDLLP(l.k.Now(), Down, d)
		}
		down.deliverDLLP(d)
		d.Release()
	}
	down.sendDLLPFn = func(a any) { down.sendDLLP(a.(*DLLP)) }
	up.tapTLPFn = func(a any) {
		t := a.(*TLP)
		for _, tap := range l.taps {
			tap.ObserveTLP(l.k.Now(), Up, t)
		}
	}
	up.tapDLLPFn = func(a any) {
		d := a.(*DLLP)
		for _, tap := range l.taps {
			tap.ObserveDLLP(l.k.Now(), Up, d)
		}
	}
	up.arriveTLPFn = func(a any) { up.deliver(a.(*TLP)) }
	up.arriveDLLPFn = func(a any) {
		d := a.(*DLLP)
		up.deliverDLLP(d)
		d.Release()
	}
	up.sendDLLPFn = func(a any) { up.sendDLLP(a.(*DLLP)) }
	return l
}

// NewTLP allocates a pooled TLP owned by the caller until it is handed to
// SendDown/SendUp. Fields are zeroed and Data is empty with its previous
// capacity retained.
func (l *Link) NewTLP() *TLP { return l.tlps.Alloc() }

// Config reports the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// SetRCSide attaches the upstream receiver (the Root Complex).
func (l *Link) SetRCSide(r Receiver) { l.rcSide = r }

// SetEndpointSide attaches the downstream receiver (the NIC).
func (l *Link) SetEndpointSide(r Receiver) { l.epSide = r }

// AddTap registers a passive observer positioned just before the endpoint.
func (l *Link) AddTap(t Tap) { l.taps = append(l.taps, t) }

// SetTraceNode tags this link's trace events with the owning node's
// identity. The system builder calls it once at construction; without it
// (or with tracing disabled) pend/issue events carry node 0.
func (l *Link) SetTraceNode(node int) { l.trNode = int16(node) }

// SetOnUpIssued registers fn to be called each time a previously
// credit-blocked upstream TLP is popped from the pend queue and actually
// transmitted. Calls arrive strictly in pend-queue (FIFO) order, one per
// TLP whose SendUp returned false, so the endpoint can mirror the queue
// with its own bookkeeping.
func (l *Link) SetOnUpIssued(fn func(*TLP)) { l.onUpIssued = fn }

// SendDown transmits a TLP from the RC towards the endpoint.
func (l *Link) SendDown(t *TLP) { l.down.send(t) }

// SendUp transmits a TLP from the endpoint towards the RC. It reports
// whether the TLP was issued immediately: false means it is parked in the
// pend queue waiting for posted/non-posted credits, and the registered
// OnUpIssued hook will see it when it finally transmits.
func (l *Link) SendUp(t *TLP) bool { return l.up.send(t) }

// PauseUp freezes the endpoint→RC issue path: every subsequent SendUp parks
// in the pend queue (OnUpIssued fires when it finally transmits), and
// UpdateFC arrivals drain nothing until ResumeUp. This is the host-pause
// fault model — the NIC's host-memory writes stall exactly as they would
// under a GC pause or OS jitter window, so its bounded rx buffering fills
// and backpressure (RNR NAK) propagates to peers.
func (l *Link) PauseUp() { l.up.stalled = true }

// ResumeUp unfreezes the endpoint→RC issue path and drains whatever parked
// during the pause, in FIFO order under the usual credit/ordering rules.
func (l *Link) ResumeUp() {
	l.up.stalled = false
	l.up.retryPending()
}

// UpPaused reports whether the endpoint→RC issue path is currently frozen.
func (l *Link) UpPaused() bool { return l.up.stalled }

// Blocked reports how many TLP sends stalled on credits, per direction.
func (l *Link) Blocked() (down, up uint64) { return l.down.blocked, l.up.blocked }

// Sent reports TLPs transmitted per direction.
func (l *Link) Sent() (down, up uint64) { return l.down.sentTLP, l.up.sentTLP }

// PendDepth reports the TLPs currently credit-blocked, per direction.
func (l *Link) PendDepth() (down, up int) { return len(l.down.pend), len(l.up.pend) }

// MaxPend reports the deepest credit-blocked pend queue each direction
// reached — the headline number for receiver-side overload: with the NIC's
// rx budget enabled the upstream value is bounded by that budget instead of
// growing with offered load.
func (l *Link) MaxPend() (down, up int) { return l.down.maxPend, l.up.maxPend }

// InUsePackets reports live TLP and DLLP pool slots — the pool-leak check:
// both must return to zero once the event queue has drained and every
// receiver has released what was delivered to it.
func (l *Link) InUsePackets() (tlps, dllps int) {
	return l.tlps.InUse(), l.dllps.InUse()
}

func (c *channel) serialize(bytes int) units.Time {
	return units.Time(bytes) * c.link.cfg.PerByte
}

// send enqueues t for transmission, blocking it on credits — or on
// ordering — if necessary. It reports whether the TLP was issued
// immediately (false: parked in the pend queue). Ordering follows the
// PCIe transaction ordering rules: no TLP may pass a blocked posted
// write, non-posted reads additionally keep FIFO order among themselves,
// while posted writes and completions may pass blocked non-posted reads
// (the spec's deadlock-avoidance allowance).
func (c *channel) send(t *TLP) bool {
	if c.stalled {
		c.park(t)
		return false
	}
	if c.link.cfg.FlowControl {
		kind, need := creditsFor(t)
		ordered := c.pendPosted > 0 || (t.Type == MRd && len(c.pend) > 0)
		if ordered || (need.Hdr > 0 && !c.take(kind, need)) {
			c.park(t)
			return false
		}
	}
	c.transmit(t)
	return true
}

// take consumes need from the kind pool if available.
func (c *channel) take(kind CreditKind, need Credits) bool {
	have := c.avail[kind]
	if have.Hdr < need.Hdr || have.Data < need.Data {
		return false
	}
	have.Hdr -= need.Hdr
	have.Data -= need.Data
	c.avail[kind] = have
	return true
}

// park appends t to the pend queue.
func (c *channel) park(t *TLP) {
	c.pend = append(c.pend, t)
	if t.Type == MWr {
		c.pendPosted++
	}
	c.blocked++
	if len(c.pend) > c.maxPend {
		c.maxPend = len(c.pend)
	}
	// Upstream pend is the receiver-overload signal the attribution cares
	// about: a host write waiting out PCIe credits. Arg carries the depth.
	if l := c.link; c.dir == Up && l.tr != nil {
		l.tr.Emit(trace.Event{At: l.k.Now(), Kind: trace.EvPend,
			Node: l.trNode, Arg: uint64(len(c.pend))})
	}
}

// transmit serializes t onto the wire and schedules its arrival.
func (c *channel) transmit(t *TLP) {
	k := c.link.k
	t.Seq = c.seq
	c.seq++
	c.sentTLP++
	start := units.Max(k.Now(), c.busyUntil)
	txDone := start + c.serialize(t.WireBytes(c.link.cfg.TLPHeader))
	c.busyUntil = txDone
	arrival := txDone + c.link.cfg.Prop

	// The analyzer tap sits just before the endpoint: downstream packets
	// pass it at arrival (folded into arriveTLPFn); upstream packets pass
	// it as they leave the endpoint.
	if c.dir == Up {
		k.AtArg(txDone, c.tapTLPFn, t)
	}
	k.AtArg(arrival, c.arriveTLPFn, t)
}

// deliver hands t to the receiving side, emits the ACK DLLP, and schedules
// the credit return. Ownership of t passes to the receiver (see the package
// borrow contract).
func (c *channel) deliver(t *TLP) {
	l := c.link
	// Data-link ACK back to the sender after the turnaround delay.
	ack := l.dllps.Alloc()
	ack.Type = Ack
	ack.AckSeq = t.Seq
	l.k.AfterArg(l.cfg.AckDelay, c.reverse().sendDLLPFn, ack)

	// Credit return after the receiver has processed the TLP.
	if l.cfg.FlowControl {
		kind, need := creditsFor(t)
		if need.Hdr > 0 {
			upd := l.dllps.Alloc()
			upd.Type = UpdateFC
			upd.Kind = kind
			upd.Credit = need
			l.k.AfterArg(l.cfg.RxProcess+l.cfg.AckDelay, c.reverse().sendDLLPFn, upd)
		}
	}

	var rx Receiver
	if c.dir == Down {
		rx = l.epSide
	} else {
		rx = l.rcSide
	}
	if rx == nil {
		panic(fmt.Sprintf("pcie: no receiver attached for %v direction", c.dir))
	}
	rx.RxTLP(t)
}

func (c *channel) reverse() *channel {
	if c.dir == Down {
		return c.link.up
	}
	return c.link.down
}

// sendDLLP transmits a DLLP on this channel. DLLPs share the wire with TLPs
// (they occupy the serializer) and pass the tap under the same placement
// rules.
func (c *channel) sendDLLP(d *DLLP) {
	k := c.link.k
	c.sentDLLP++
	start := units.Max(k.Now(), c.busyUntil)
	txDone := start + c.serialize(c.link.cfg.DLLPBytes)
	c.busyUntil = txDone
	arrival := txDone + c.link.cfg.Prop

	if c.dir == Up {
		k.AtArg(txDone, c.tapDLLPFn, d)
	}
	k.AtArg(arrival, c.arriveDLLPFn, d)
}

// deliverDLLP applies a DLLP at the receiving side. ACKs retire the replay
// buffer (not modelled beyond accounting); UpdateFC restores the *opposite*
// channel's sender credits and unblocks pending TLPs.
func (c *channel) deliverDLLP(d *DLLP) {
	if d.Type != UpdateFC {
		return
	}
	fwd := c.reverse() // credits apply to traffic flowing opposite the DLLP
	have := fwd.avail[d.Kind]
	have.Hdr += d.Credit.Hdr
	have.Data += d.Credit.Data
	fwd.avail[d.Kind] = have
	fwd.retryPending()
}

// retryPending attempts to transmit credit-blocked TLPs in order. Ordering
// is preserved: the scan stops at the first TLP that still lacks credits.
// Each pended upstream TLP that transmits is reported to the OnUpIssued
// hook, in the same FIFO order it was parked. A stalled (host-paused)
// channel drains nothing — an UpdateFC arriving mid-pause must not sneak
// TLPs past the frozen issue path.
func (c *channel) retryPending() {
	if c.stalled {
		return
	}
	for len(c.pend) > 0 {
		t := c.pend[0]
		if !c.link.cfg.FlowControl {
			// Stall-parked TLPs on an ideal (no flow control) link need no
			// credits; taking some here would leak them forever.
			c.popTransmit(t)
			continue
		}
		kind, need := creditsFor(t)
		if need.Hdr > 0 && !c.take(kind, need) {
			return
		}
		c.popTransmit(t)
	}
}

// popTransmit removes the head pend entry (t) and puts it on the wire,
// reporting upstream issues to the OnUpIssued hook.
func (c *channel) popTransmit(t *TLP) {
	c.pend = c.pend[1:]
	if len(c.pend) == 0 {
		c.pend = nil
	}
	if t.Type == MWr {
		c.pendPosted--
	}
	c.transmit(t)
	if l := c.link; c.dir == Up && l.tr != nil {
		l.tr.Emit(trace.Event{At: l.k.Now(), Kind: trace.EvIssue,
			Node: l.trNode, Arg: uint64(len(c.pend))})
	}
	if c.dir == Up && c.link.onUpIssued != nil {
		c.link.onUpIssued(t)
	}
}
