package pcie

import (
	"bytes"
	"testing"
	"testing/quick"

	"breakband/internal/memsim"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// collector is a scriptable endpoint.
type collector struct {
	k    *sim.Kernel
	got  []*TLP
	at   []units.Time
	hook func(t *TLP)
}

func (c *collector) RxTLP(t *TLP) {
	c.got = append(c.got, t)
	c.at = append(c.at, c.k.Now())
	if c.hook != nil {
		c.hook(t)
	}
}

func testLink(cfg LinkConfig) (*sim.Kernel, *Link, *collector, *collector) {
	k := sim.NewKernel()
	l := NewLink(k, cfg)
	rc := &collector{k: k}
	ep := &collector{k: k}
	l.SetRCSide(rc)
	l.SetEndpointSide(ep)
	return k, l, rc, ep
}

func simpleCfg() LinkConfig {
	return LinkConfig{
		Prop:        units.Nanoseconds(100),
		PerByte:     units.Time(64),
		TLPHeader:   24,
		DLLPBytes:   8,
		AckDelay:    units.Nanoseconds(2),
		FlowControl: false,
	}
}

func TestMWrDeliveryLatency(t *testing.T) {
	k, l, _, ep := testLink(simpleCfg())
	k.At(0, func() {
		l.SendDown(&TLP{Type: MWr, Addr: 1, Data: make([]byte, 64)})
	})
	k.Run()
	if len(ep.got) != 1 {
		t.Fatalf("delivered %d TLPs", len(ep.got))
	}
	// serialize (64+24)*64ps = 5.632ns, plus 100ns prop.
	want := units.Nanoseconds(105.632)
	if ep.at[0] != want {
		t.Errorf("arrival at %v, want %v", ep.at[0], want)
	}
}

func TestOrderingPreserved(t *testing.T) {
	k, l, _, ep := testLink(simpleCfg())
	k.At(0, func() {
		l.SendDown(&TLP{Type: MWr, Addr: 1, Data: make([]byte, 256)}) // big first
		l.SendDown(&TLP{Type: MWr, Addr: 2, Data: make([]byte, 8)})   // small second
	})
	k.Run()
	if len(ep.got) != 2 || ep.got[0].Addr != 1 || ep.got[1].Addr != 2 {
		t.Fatalf("order broken: %+v", ep.got)
	}
	if ep.at[1] < ep.at[0] {
		t.Error("second TLP arrived before first")
	}
}

func TestSerializationContention(t *testing.T) {
	// Two same-size TLPs sent at the same instant arrive one
	// serialization apart: the link is a shared serial resource.
	k, l, _, ep := testLink(simpleCfg())
	k.At(0, func() {
		l.SendDown(&TLP{Type: MWr, Addr: 1, Data: make([]byte, 64)})
		l.SendDown(&TLP{Type: MWr, Addr: 2, Data: make([]byte, 64)})
	})
	k.Run()
	ser := units.Time(88) * 64
	if ep.at[1]-ep.at[0] != ser {
		t.Errorf("spacing %v, want %v", ep.at[1]-ep.at[0], ser)
	}
}

func TestSeqAssignedInOrder(t *testing.T) {
	k, l, _, ep := testLink(simpleCfg())
	k.At(0, func() {
		for i := 0; i < 5; i++ {
			l.SendDown(&TLP{Type: MWr, Addr: uint64(i), Data: make([]byte, 8)})
		}
	})
	k.Run()
	for i, tlp := range ep.got {
		if tlp.Seq != uint64(i) {
			t.Errorf("seq[%d] = %d", i, tlp.Seq)
		}
	}
}

func TestCreditBlockingAndUnblock(t *testing.T) {
	cfg := simpleCfg()
	cfg.FlowControl = true
	cfg.PostedCredits = Credits{Hdr: 2, Data: 8}
	cfg.NonPostedCredits = Credits{Hdr: 2}
	k, l, _, ep := testLink(cfg)
	k.At(0, func() {
		for i := 0; i < 6; i++ {
			l.SendDown(&TLP{Type: MWr, Addr: uint64(i), Data: make([]byte, 64)})
		}
	})
	k.Run()
	if len(ep.got) != 6 {
		t.Fatalf("only %d of 6 TLPs delivered; credits never returned?", len(ep.got))
	}
	down, _ := l.Blocked()
	if down == 0 {
		t.Error("expected credit-blocked sends with tiny credit pool")
	}
	// Order must survive blocking.
	for i, tlp := range ep.got {
		if tlp.Addr != uint64(i) {
			t.Fatalf("order broken after credit stall: %v", ep.got)
		}
	}
}

func TestSmallMWrCannotPassBlockedLargeMWr(t *testing.T) {
	// PCIe ordering: a posted write must not pass a blocked posted write,
	// even when the smaller write's credits are available. This is the
	// producer-consumer guarantee the NIC's recv path relies on — the CQE
	// MWr announcing a completion must not reach host memory before the
	// payload MWr it describes.
	cfg := simpleCfg()
	cfg.FlowControl = true
	cfg.PostedCredits = Credits{Hdr: 4, Data: 8} // 8B fits, 4 KiB (256) never does at once
	cfg.RxProcess = units.Nanoseconds(50)
	k, l, _, ep := testLink(cfg)
	k.At(0, func() {
		// Consume the data pool so the big write pends.
		l.SendDown(&TLP{Type: MWr, Addr: 0, Data: make([]byte, 128)})
		l.SendDown(&TLP{Type: MWr, Addr: 1, Data: make([]byte, 128)}) // pends
		l.SendDown(&TLP{Type: MWr, Addr: 2, Data: make([]byte, 8)})   // must wait behind it
	})
	k.Run()
	if len(ep.got) != 3 {
		t.Fatalf("delivered %d of 3 TLPs", len(ep.got))
	}
	for i, tlp := range ep.got {
		if tlp.Addr != uint64(i) {
			t.Fatalf("posted write passed a blocked posted write: order %v %v %v",
				ep.got[0].Addr, ep.got[1].Addr, ep.got[2].Addr)
		}
	}
}

func TestPostedMayPassBlockedNonPosted(t *testing.T) {
	// The converse allowance (PCIe deadlock avoidance): a posted write may
	// pass non-posted reads blocked on their own credit pool.
	cfg := simpleCfg()
	cfg.FlowControl = true
	cfg.PostedCredits = Credits{Hdr: 4, Data: 64}
	cfg.NonPostedCredits = Credits{Hdr: 1}
	cfg.RxProcess = units.Nanoseconds(50)
	k, l, rc, _ := testLink(cfg)
	k.At(0, func() {
		l.SendUp(&TLP{Type: MRd, Addr: 0, ReadLen: 8, Tag: 0})
		l.SendUp(&TLP{Type: MRd, Addr: 1, ReadLen: 8, Tag: 1}) // pends (1 NP header credit)
		l.SendUp(&TLP{Type: MWr, Addr: 2, Data: make([]byte, 8)})
	})
	k.Run()
	if len(rc.got) != 3 {
		t.Fatalf("delivered %d of 3 TLPs", len(rc.got))
	}
	// The posted write (addr 2) must arrive before the blocked read
	// (addr 1) rather than queueing behind it.
	if rc.got[1].Addr != 2 || rc.got[2].Addr != 1 {
		t.Fatalf("posted write queued behind a blocked non-posted read: order %v %v %v",
			rc.got[0].Addr, rc.got[1].Addr, rc.got[2].Addr)
	}
}

func TestQuickCreditConservation(t *testing.T) {
	// Property: any number of MWr posts eventually all deliver (credits
	// are always returned), in order.
	f := func(nRaw uint8, sizeSel []uint8) bool {
		n := int(nRaw%40) + 1
		cfg := simpleCfg()
		cfg.FlowControl = true
		cfg.PostedCredits = Credits{Hdr: 3, Data: 12}
		cfg.NonPostedCredits = Credits{Hdr: 2}
		k, l, _, ep := testLink(cfg)
		k.At(0, func() {
			for i := 0; i < n; i++ {
				size := 8
				if len(sizeSel) > 0 && sizeSel[i%len(sizeSel)]%2 == 0 {
					size = 64
				}
				l.SendDown(&TLP{Type: MWr, Addr: uint64(i), Data: make([]byte, size)})
			}
		})
		k.SetEventLimit(100000)
		k.Run()
		if len(ep.got) != n {
			return false
		}
		for i, tlp := range ep.got {
			if tlp.Addr != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMRdGetsCplD(t *testing.T) {
	k := sim.NewKernel()
	cfg := simpleCfg()
	l := NewLink(k, cfg)
	mem := memsim.New(4096)
	reg := mem.Alloc("data", 64, 8)
	mem.Write(reg.Base, []byte{0xAA, 0xBB, 0xCC, 0xDD})
	rc := NewRootComplex(k, mem, l, RCConfig{
		RCToMemBase: units.Nanoseconds(240), RCToMemBaseBytes: 64,
		MemReadLatency: units.Nanoseconds(150),
	})
	_ = rc
	ep := &collector{k: k}
	l.SetEndpointSide(ep)
	k.At(0, func() {
		l.SendUp(&TLP{Type: MRd, Addr: reg.Base, ReadLen: 4, Tag: 9})
	})
	k.Run()
	if len(ep.got) != 1 || ep.got[0].Type != CplD {
		t.Fatalf("expected one CplD, got %+v", ep.got)
	}
	if ep.got[0].Tag != 9 || !bytes.Equal(ep.got[0].Data, []byte{0xAA, 0xBB, 0xCC, 0xDD}) {
		t.Errorf("CplD content wrong: %+v", ep.got[0])
	}
}

func TestRCCommitDelay(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, simpleCfg())
	mem := memsim.New(4096)
	buf := mem.Alloc("buf", 64, 8)
	rc := NewRootComplex(k, mem, l, RCConfig{
		RCToMemBase: units.Nanoseconds(240.96), RCToMemBaseBytes: 64,
	})
	var commitAt units.Time
	rc.OnCommit(func(addr uint64, n int) { commitAt = k.Now() })
	ep := &collector{k: k}
	l.SetEndpointSide(ep)
	k.At(0, func() {
		l.SendUp(&TLP{Type: MWr, Addr: buf.Base, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	})
	k.Run()
	if rc.Commits != 1 {
		t.Fatal("no commit")
	}
	// serialize (8+24)*64ps = 2.048 + prop 100 + RC-to-MEM 240.96.
	want := units.Nanoseconds(343.008)
	if commitAt != want {
		t.Errorf("commit at %v, want %v", commitAt, want)
	}
	if !bytes.Equal(mem.Read(buf.Base, 8), []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Error("payload not in memory")
	}
}

func TestMMIOWriteRequiresBAR(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, simpleCfg())
	mem := memsim.New(4096)
	rc := NewRootComplex(k, mem, l, RCConfig{})
	defer func() {
		if recover() == nil {
			t.Error("MMIO write to DRAM address did not panic")
		}
	}()
	rc.MMIOWrite(0x1000, []byte{1})
}

func TestMMIOWriteCopiesData(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, simpleCfg())
	mem := memsim.New(4096)
	rc := NewRootComplex(k, mem, l, RCConfig{})
	ep := &collector{k: k}
	l.SetEndpointSide(ep)
	buf := []byte{1, 2, 3}
	k.At(0, func() {
		rc.MMIOWrite(BARBase, buf)
		buf[0] = 99 // caller reuses the buffer immediately
	})
	k.Run()
	if ep.got[0].Data[0] != 1 {
		t.Error("MMIO write aliased the caller's buffer")
	}
}

func TestRCToMemSizing(t *testing.T) {
	cfg := RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemPerByte:   units.Time(500),
		RCToMemBaseBytes: 64,
	}
	if cfg.RCToMem(8) != units.Nanoseconds(240) {
		t.Error("sub-baseline write should cost the base")
	}
	if cfg.RCToMem(128) != units.Nanoseconds(240)+64*500 {
		t.Error("per-byte slope not applied")
	}
}

func TestCreditsFor(t *testing.T) {
	kind, c := creditsFor(&TLP{Type: MWr, Data: make([]byte, 64)})
	if kind != Posted || c.Hdr != 1 || c.Data != 4 {
		t.Errorf("MWr credits = %v %+v", kind, c)
	}
	kind, c = creditsFor(&TLP{Type: MRd, ReadLen: 64})
	if kind != NonPosted || c.Hdr != 1 || c.Data != 0 {
		t.Errorf("MRd credits = %v %+v", kind, c)
	}
	_, c = creditsFor(&TLP{Type: CplD, Data: make([]byte, 64)})
	if c.Hdr != 0 {
		t.Error("CplD should not consume flow-controlled credits here")
	}
}

func TestStringers(t *testing.T) {
	if MWr.String() != "MWr" || MRd.String() != "MRd" || CplD.String() != "CplD" {
		t.Error("TLP type strings")
	}
	if Ack.String() != "Ack" || UpdateFC.String() != "UpdateFC" || Nack.String() != "Nack" {
		t.Error("DLLP type strings")
	}
	if Down.String() != "down" || Up.String() != "up" {
		t.Error("direction strings")
	}
}

func TestWireBytes(t *testing.T) {
	tlp := &TLP{Type: MWr, Data: make([]byte, 64)}
	if tlp.WireBytes(24) != 88 {
		t.Errorf("WireBytes = %d", tlp.WireBytes(24))
	}
	rd := &TLP{Type: MRd, ReadLen: 64}
	if rd.WireBytes(24) != 24 {
		t.Errorf("MRd WireBytes = %d", rd.WireBytes(24))
	}
}

func TestTLPPoolReuse(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, simpleCfg())
	tlp := l.NewTLP()
	tlp.Type = MWr
	tlp.SetData([]byte{1, 2, 3})
	ref := tlp.Ref()
	if ref.Get() != tlp {
		t.Fatal("fresh ref does not resolve")
	}
	tlp.Release()
	if ref.Get() != nil {
		t.Error("stale ref resolved after release")
	}
	again := l.NewTLP()
	if again != tlp {
		t.Error("released slot not reused")
	}
	if len(again.Data) != 0 || again.Type != 0 {
		t.Errorf("recycled TLP not reset: %+v", again)
	}
	if again.Ref().Get() != again {
		t.Error("recycled TLP's new ref does not resolve")
	}
	if ref.Get() != nil {
		t.Error("old-generation ref resolved against the recycled slot")
	}
}

func TestTLPDoubleReleasePanics(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, simpleCfg())
	tlp := l.NewTLP()
	tlp.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	tlp.Release()
}

func TestUnpooledTLPReleaseIsNoop(t *testing.T) {
	tlp := &TLP{Type: MWr}
	tlp.Release() // must not panic
	if tlp.Ref().Get() != nil {
		t.Error("unpooled TLP ref should resolve to nil")
	}
}

func TestSetDataCopiesAndGrowDataReuses(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, simpleCfg())
	tlp := l.NewTLP()
	src := []byte{1, 2, 3, 4}
	tlp.SetData(src)
	src[0] = 99
	if tlp.Data[0] != 1 {
		t.Error("SetData aliased the caller's buffer")
	}
	buf := tlp.GrowData(2)
	if len(buf) != 2 {
		t.Errorf("GrowData len = %d", len(buf))
	}
	tlp.Release()
	reused := l.NewTLP()
	if cap(reused.Data) < 4 {
		t.Error("recycled TLP lost its payload capacity")
	}
}

func TestPooledTLPRoundTripThroughLink(t *testing.T) {
	// A pooled TLP delivered to a test receiver stays valid as long as the
	// receiver (its owner) has not released it.
	k, l, _, ep := testLink(simpleCfg())
	_ = k
	tlp := l.NewTLP()
	tlp.Type = MWr
	tlp.Addr = 42
	tlp.SetData([]byte{9, 8})
	k.At(0, func() { l.SendDown(tlp) })
	k.Run()
	if len(ep.got) != 1 || ep.got[0].Addr != 42 || !bytes.Equal(ep.got[0].Data, []byte{9, 8}) {
		t.Fatalf("pooled TLP mangled in flight: %+v", ep.got)
	}
	ep.got[0].Release()
}
