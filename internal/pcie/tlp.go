// Package pcie models the PCI Express subsystem on the critical path of
// communication: the Root Complex (RC), the point-to-point link to the NIC
// endpoint, Transaction Layer Packets (MWr, MRd, CplD), Data Link Layer
// Packets (ACK/NACK, UpdateFC) and the credit-based flow control that governs
// how many transactions can be outstanding (paper §2).
//
// The link serializes packets (bandwidth contention is modelled, which the
// multi-core ablation exercises) and preserves per-direction ordering, as
// PCIe does. A passive tap interface lets internal/analyzer observe traffic
// "just before the NIC", matching the paper's Lecroy analyzer placement.
package pcie

import (
	"fmt"

	"breakband/internal/units"
)

// TLPType enumerates the Transaction Layer Packet types relevant to the
// paper: posted memory writes, non-posted memory reads, and completions with
// data.
type TLPType uint8

// TLP types.
const (
	MWr  TLPType = iota // Memory Write (posted)
	MRd                 // Memory Read (non-posted)
	CplD                // Completion with Data
)

// String implements fmt.Stringer.
func (t TLPType) String() string {
	switch t {
	case MWr:
		return "MWr"
	case MRd:
		return "MRd"
	case CplD:
		return "CplD"
	default:
		return fmt.Sprintf("TLP(%d)", uint8(t))
	}
}

// TLP is a transaction layer packet in flight on a link.
type TLP struct {
	// Seq is the link-level sequence number, assigned by the sending side
	// and echoed in the ACK DLLP; the analyzer methodology matches a TLP
	// to its ACK through it.
	Seq uint64
	// Type is the transaction type.
	Type TLPType
	// Addr is the target address (bus address for MWr/MRd).
	Addr uint64
	// Data is the payload for MWr and CplD.
	Data []byte
	// ReadLen is the requested byte count for MRd.
	ReadLen int
	// Tag matches an MRd to its CplD.
	Tag uint8
}

// PayloadBytes reports the number of payload bytes carried.
func (t *TLP) PayloadBytes() int {
	switch t.Type {
	case MWr, CplD:
		return len(t.Data)
	default:
		return 0
	}
}

// WireBytes reports the on-wire size given the configured TLP header size
// (header + framing + payload).
func (t *TLP) WireBytes(header int) int { return header + t.PayloadBytes() }

// DLLPType enumerates Data Link Layer Packet types.
type DLLPType uint8

// DLLP types.
const (
	Ack DLLPType = iota
	Nack
	UpdateFC
)

// String implements fmt.Stringer.
func (t DLLPType) String() string {
	switch t {
	case Ack:
		return "Ack"
	case Nack:
		return "Nack"
	case UpdateFC:
		return "UpdateFC"
	default:
		return fmt.Sprintf("DLLP(%d)", uint8(t))
	}
}

// CreditKind selects a flow-control credit pool.
type CreditKind uint8

// Credit pools. Completions are not flow controlled towards the RC (infinite
// advertisement), which matches common root-port behaviour.
const (
	Posted CreditKind = iota
	NonPosted
)

// Credits is a (header, data) credit amount. Data credits are in 16-byte
// units per the PCIe specification.
type Credits struct {
	Hdr  int
	Data int
}

// creditsFor computes the credits a TLP consumes.
func creditsFor(t *TLP) (CreditKind, Credits) {
	switch t.Type {
	case MWr:
		return Posted, Credits{Hdr: 1, Data: (len(t.Data) + 15) / 16}
	case MRd:
		return NonPosted, Credits{Hdr: 1}
	default:
		return NonPosted, Credits{} // CplD: not flow controlled here
	}
}

// DLLP is a data link layer packet.
type DLLP struct {
	Type DLLPType
	// AckSeq is the sequence being acknowledged (Ack/Nack).
	AckSeq uint64
	// Kind and Credit describe an UpdateFC return.
	Kind   CreditKind
	Credit Credits
}

// Dir is a link direction.
type Dir uint8

// Link directions. Down is RC towards the endpoint (NIC); Up is endpoint
// towards the RC. This matches the paper's "downstream/upstream" trace
// filtering.
const (
	Down Dir = iota
	Up
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Tap observes packets passing a fixed point on the link (just before the
// endpoint). Implementations must be passive: they may record but not
// mutate.
type Tap interface {
	ObserveTLP(at units.Time, dir Dir, t *TLP)
	ObserveDLLP(at units.Time, dir Dir, d *DLLP)
}

// Receiver consumes packets delivered by a link.
type Receiver interface {
	RxTLP(t *TLP)
}
