// Package pcie models the PCI Express subsystem on the critical path of
// communication: the Root Complex (RC), the point-to-point link to the NIC
// endpoint, Transaction Layer Packets (MWr, MRd, CplD), Data Link Layer
// Packets (ACK/NACK, UpdateFC) and the credit-based flow control that governs
// how many transactions can be outstanding (paper §2).
//
// The link serializes packets (bandwidth contention is modelled, which the
// multi-core ablation exercises) and preserves per-direction ordering, as
// PCIe does. A passive tap interface lets internal/analyzer observe traffic
// "just before the NIC", matching the paper's Lecroy analyzer placement.
//
// # Pooled packets and the borrow contract
//
// TLPs and DLLPs on the hot path are pooled: each Link owns a
// generation-checked arena of value-typed slots, and the steady-state
// simulated-message path recycles descriptors instead of allocating them.
// The ownership rules are:
//
//   - The sender allocates a TLP with Link.NewTLP, fills it (payloads go in
//     via TLP.SetData / TLP.GrowData, which copy into the slot's reusable
//     buffer), and hands it to SendDown/SendUp. From that point the link
//     owns the packet.
//   - At delivery the link transfers ownership to the Receiver: RxTLP must
//     eventually call TLP.Release — synchronously, or from a later event if
//     the receiver needs the packet beyond delivery (the Root Complex holds
//     an inbound MWr until its RC-to-MEM commit fires).
//   - Taps are passive borrowers: they observe a packet in flight and must
//     copy anything they keep (internal/analyzer copies scalar fields into
//     its own Record). Retaining the *TLP or its Data slice past the
//     observation call is a use-after-release bug waiting to happen.
//   - DLLPs never leave the link layer; the link allocates and releases
//     them itself. Taps borrow them under the same copy-what-you-keep rule.
//
// TLPs constructed directly (&TLP{...}, as tests do) are not pooled;
// Release on them is a no-op and the contract above is vacuous. A stale
// handle can be detected with TLP.Ref / TLPRef.Get, which checks the slot
// generation recorded at allocation time.
//
// # Pend-queue bounding
//
// A TLP that lacks flow-control credits parks in the sending channel's
// pend queue. Link.SendUp reports whether the TLP issued immediately, and
// the Link.SetOnUpIssued hook observes each parked upstream TLP at the
// moment it finally transmits (strict FIFO order), so the endpoint can
// defer its own resource hand-back — the NIC holds a received fabric frame
// until its host-memory writes have issued, see internal/nic — instead of
// letting the pend queue absorb unbounded overload. With the NIC's rx
// budget enabled, the upstream pend depth (Link.PendDepth / Link.MaxPend)
// is bounded by that budget rather than growing with offered load.
//
// ARCHITECTURE.md (repo root) places this package in the full layer map
// and summarizes how the PCIe credit loop composes with the fabric's.
package pcie

import (
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/units"
)

// TLPType enumerates the Transaction Layer Packet types relevant to the
// paper: posted memory writes, non-posted memory reads, and completions with
// data.
type TLPType uint8

// TLP types.
const (
	MWr  TLPType = iota // Memory Write (posted)
	MRd                 // Memory Read (non-posted)
	CplD                // Completion with Data
)

// String implements fmt.Stringer.
func (t TLPType) String() string {
	switch t {
	case MWr:
		return "MWr"
	case MRd:
		return "MRd"
	case CplD:
		return "CplD"
	default:
		return fmt.Sprintf("TLP(%d)", uint8(t))
	}
}

// TLP is a transaction layer packet in flight on a link.
type TLP struct {
	// Seq is the link-level sequence number, assigned by the sending side
	// and echoed in the ACK DLLP; the analyzer methodology matches a TLP
	// to its ACK through it.
	Seq uint64
	// Type is the transaction type.
	Type TLPType
	// Addr is the target address (bus address for MWr/MRd).
	Addr uint64
	// Data is the payload for MWr and CplD. On pooled TLPs it aliases the
	// slot's reusable buffer: fill it through SetData/GrowData (which
	// copy) rather than assigning a foreign slice, or the arena would
	// recycle memory it does not own.
	Data []byte
	// ReadLen is the requested byte count for MRd.
	ReadLen int
	// Tag matches an MRd to its CplD.
	Tag uint8

	// Slot is the pool bookkeeping (zero for TLPs constructed directly);
	// it provides Release.
	arena.Slot
}

// SetData copies b into the TLP's reusable payload buffer. The wire carries
// a copy, so the caller may reuse b immediately.
func (t *TLP) SetData(b []byte) {
	t.Data = append(t.Data[:0], b...)
}

// GrowData resizes the payload buffer to n bytes (previous contents
// undefined) and returns it, for read-into fills such as DMA-read
// completions. The underlying buffer is reused across pool recycles, so
// steady-state growth is free.
func (t *TLP) GrowData(n int) []byte {
	t.Data = arena.Grow(t.Data, n)
	return t.Data
}

// TLPRef is a generation-checked handle to a pooled TLP, for holders that
// want stale-handle detection rather than a borrowed pointer. The zero
// TLPRef (and the Ref of an unpooled TLP) resolves to nil.
type TLPRef = arena.Ref[TLP]

// Ref returns a generation-checked handle to t.
func (t *TLP) Ref() TLPRef { return arena.MakeRef(t, &t.Slot) }

// newTLPArena builds the shared pool of value-typed TLP slots, mirroring
// the kernel's event-slot pool (see internal/arena).
func newTLPArena() *arena.Arena[TLP] {
	return arena.New(
		func(t *TLP) *arena.Slot { return &t.Slot },
		func(t *TLP) {
			t.Seq = 0
			t.Type = 0
			t.Addr = 0
			t.ReadLen = 0
			t.Tag = 0
			t.Data = t.Data[:0]
		})
}

// newDLLPArena builds the DLLP pool; DLLPs are allocated and released by
// the link itself and never escape the link layer.
func newDLLPArena() *arena.Arena[DLLP] {
	return arena.New(
		func(d *DLLP) *arena.Slot { return &d.Slot },
		func(d *DLLP) {
			d.Type = 0
			d.AckSeq = 0
			d.Kind = 0
			d.Credit = Credits{}
		})
}

// PayloadBytes reports the number of payload bytes carried.
func (t *TLP) PayloadBytes() int {
	switch t.Type {
	case MWr, CplD:
		return len(t.Data)
	default:
		return 0
	}
}

// WireBytes reports the on-wire size given the configured TLP header size
// (header + framing + payload).
func (t *TLP) WireBytes(header int) int { return header + t.PayloadBytes() }

// DLLPType enumerates Data Link Layer Packet types.
type DLLPType uint8

// DLLP types.
const (
	Ack DLLPType = iota
	Nack
	UpdateFC
)

// String implements fmt.Stringer.
func (t DLLPType) String() string {
	switch t {
	case Ack:
		return "Ack"
	case Nack:
		return "Nack"
	case UpdateFC:
		return "UpdateFC"
	default:
		return fmt.Sprintf("DLLP(%d)", uint8(t))
	}
}

// CreditKind selects a flow-control credit pool.
type CreditKind uint8

// Credit pools. Completions are not flow controlled towards the RC (infinite
// advertisement), which matches common root-port behaviour.
const (
	Posted CreditKind = iota
	NonPosted
)

// Credits is a (header, data) credit amount. Data credits are in 16-byte
// units per the PCIe specification.
type Credits struct {
	Hdr  int
	Data int
}

// creditsFor computes the credits a TLP consumes.
func creditsFor(t *TLP) (CreditKind, Credits) {
	switch t.Type {
	case MWr:
		return Posted, Credits{Hdr: 1, Data: (len(t.Data) + 15) / 16}
	case MRd:
		return NonPosted, Credits{Hdr: 1}
	default:
		return NonPosted, Credits{} // CplD: not flow controlled here
	}
}

// DLLP is a data link layer packet.
type DLLP struct {
	Type DLLPType
	// AckSeq is the sequence being acknowledged (Ack/Nack).
	AckSeq uint64
	// Kind and Credit describe an UpdateFC return.
	Kind   CreditKind
	Credit Credits

	// Slot is the pool bookkeeping (zero for DLLPs constructed directly).
	arena.Slot
}

// Dir is a link direction.
type Dir uint8

// Link directions. Down is RC towards the endpoint (NIC); Up is endpoint
// towards the RC. This matches the paper's "downstream/upstream" trace
// filtering.
const (
	Down Dir = iota
	Up
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// Tap observes packets passing a fixed point on the link (just before the
// endpoint). Implementations must be passive: they may record but not
// mutate — and because packets are pooled, they must copy anything they
// keep rather than retain the packet or its Data slice.
type Tap interface {
	ObserveTLP(at units.Time, dir Dir, t *TLP)
	ObserveDLLP(at units.Time, dir Dir, d *DLLP)
}

// Receiver consumes packets delivered by a link. Delivery transfers
// ownership of the (pooled) TLP to the receiver, which must call
// TLP.Release exactly once when it is done with the packet — synchronously
// inside RxTLP or from a later event.
type Receiver interface {
	RxTLP(t *TLP)
}
