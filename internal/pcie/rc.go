package pcie

import (
	"fmt"

	"breakband/internal/memsim"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// BARBase is the bus address at which the endpoint's device memory (doorbell
// registers, BlueFlame buffers) is mapped. Host DRAM occupies low addresses.
const BARBase uint64 = 0xD000_0000_0000

// IsBAR reports whether addr targets device memory.
func IsBAR(addr uint64) bool { return addr >= BARBase }

// RCConfig parameterizes the Root Complex.
type RCConfig struct {
	// RCToMemBase is the latency for the RC to commit an inbound write's
	// first byte to memory (the paper's RC-to-MEM component, measured
	// 240.96 ns for 8 bytes).
	RCToMemBase units.Time
	// RCToMemPerByte extends the commit latency for larger writes.
	RCToMemPerByte units.Time
	// RCToMemBaseBytes is the payload size RCToMemBase corresponds to.
	RCToMemBaseBytes int
	// MemReadLatency is the DRAM access time for servicing an MRd (DMA
	// read) request.
	MemReadLatency units.Time
	// GenDelay is the hardware pipeline delay for the RC to turn an MMIO
	// write into a TLP. The paper argues it is a few cycles and excludes
	// it from the models; it defaults to zero but remains configurable so
	// the assumption can be tested.
	GenDelay units.Time
}

// RCToMem reports the commit latency for an n-byte inbound write.
func (c RCConfig) RCToMem(n int) units.Time {
	extra := n - c.RCToMemBaseBytes
	if extra < 0 {
		extra = 0
	}
	return c.RCToMemBase + units.Time(extra)*c.RCToMemPerByte
}

// RootComplex connects the processor and memory to the PCIe fabric
// (paper §2). It turns CPU MMIO writes into downstream MWr TLPs, commits
// inbound DMA writes to host memory after the RC-to-MEM latency, and
// services inbound DMA reads from memory with CplD completions.
type RootComplex struct {
	k    *sim.Kernel
	mem  *memsim.Memory
	link *Link
	cfg  RCConfig

	// Commits counts inbound MWr commits, a test hook.
	Commits uint64
	// onCommit, if set, observes each committed inbound write. The NIC's
	// host-memory doorbell records do not need it; tests do.
	onCommit func(addr uint64, n int)

	// Continuations, bound once so the per-message path schedules events
	// without allocating closures. Each carries the in-flight *TLP, which
	// the RC owns (and must release) from delivery until the deferred
	// work fires.
	commitFn func(any) // commit an inbound DMA write to memory
	mrdFn    func(any) // service an inbound DMA read from memory
	genFn    func(any) // GenDelay'd downstream injection
}

// NewRootComplex builds an RC bound to a kernel, host memory and link. It
// registers itself as the link's RC-side receiver.
func NewRootComplex(k *sim.Kernel, mem *memsim.Memory, link *Link, cfg RCConfig) *RootComplex {
	rc := &RootComplex{k: k, mem: mem, link: link, cfg: cfg}
	rc.commitFn = func(a any) {
		t := a.(*TLP)
		rc.mem.Write(t.Addr, t.Data)
		rc.Commits++
		if rc.onCommit != nil {
			rc.onCommit(t.Addr, len(t.Data))
		}
		t.Release()
	}
	rc.mrdFn = func(a any) {
		t := a.(*TLP)
		cpl := rc.link.NewTLP()
		cpl.Type = CplD
		cpl.Addr = t.Addr
		cpl.Tag = t.Tag
		rc.mem.ReadInto(t.Addr, cpl.GrowData(t.ReadLen))
		rc.link.SendDown(cpl)
		t.Release()
	}
	rc.genFn = func(a any) { rc.link.SendDown(a.(*TLP)) }
	link.SetRCSide(rc)
	return rc
}

// Config reports the RC configuration.
func (rc *RootComplex) Config() RCConfig { return rc.cfg }

// OnCommit registers an observer for inbound write commits.
func (rc *RootComplex) OnCommit(fn func(addr uint64, n int)) { rc.onCommit = fn }

// MMIOWrite issues a posted write from the CPU to device memory. The data is
// copied (into the pooled TLP's reusable buffer), so callers may reuse their
// buffer. This is the hardware half of both the 8-byte DoorBell ring and the
// 64-byte PIO copy (paper §2 steps 1 and the PIO fast path).
func (rc *RootComplex) MMIOWrite(addr uint64, data []byte) {
	if !IsBAR(addr) {
		panic(fmt.Sprintf("pcie: MMIO write to non-BAR address %#x", addr))
	}
	tlp := rc.link.NewTLP()
	tlp.Type = MWr
	tlp.Addr = addr
	tlp.SetData(data)
	if rc.cfg.GenDelay > 0 {
		rc.k.AfterArg(rc.cfg.GenDelay, rc.genFn, tlp)
		return
	}
	rc.link.SendDown(tlp)
}

// RxTLP handles upstream traffic from the endpoint. The RC owns the
// delivered TLP until the deferred commit/completion continuation fires and
// releases it.
func (rc *RootComplex) RxTLP(t *TLP) {
	switch t.Type {
	case MWr:
		// DMA write to host memory: visible to the CPU after the
		// RC-to-MEM latency.
		rc.k.AfterArg(rc.cfg.RCToMem(len(t.Data)), rc.commitFn, t)
	case MRd:
		// DMA read: fetch from memory, then complete downstream.
		rc.k.AfterArg(rc.cfg.MemReadLatency, rc.mrdFn, t)
	case CplD:
		panic("pcie: RC received unexpected CplD (no outstanding host reads are modelled)")
	}
}
