package memsim

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestAllocAlignment(t *testing.T) {
	m := New(1 << 20)
	a := m.Alloc("a", 10, 64)
	b := m.Alloc("b", 100, 64)
	if a.Base%64 != 0 || b.Base%64 != 0 {
		t.Errorf("misaligned: %#x %#x", a.Base, b.Base)
	}
	if b.Base < a.End() {
		t.Error("regions overlap")
	}
	if len(m.Regions()) != 2 {
		t.Error("regions not tracked")
	}
}

func TestAllocBadAlignmentPanics(t *testing.T) {
	m := New(1024)
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two alignment did not panic")
		}
	}()
	m.Alloc("x", 8, 3)
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New(128)
	defer func() {
		if recover() == nil {
			t.Error("exhausted alloc did not panic")
		}
	}()
	m.Alloc("big", 256, 8)
}

func TestWriteRead(t *testing.T) {
	m := New(1024)
	r := m.Alloc("buf", 64, 8)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.Write(r.Base, data)
	if got := m.Read(r.Base, 8); !bytes.Equal(got, data) {
		t.Errorf("read back %v", got)
	}
	if m.Writes() != 1 {
		t.Errorf("write count = %d", m.Writes())
	}
	var dst [4]byte
	m.ReadInto(r.Base+2, dst[:])
	if !bytes.Equal(dst[:], []byte{3, 4, 5, 6}) {
		t.Errorf("ReadInto = %v", dst)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(16)
	for _, f := range []func(){
		func() { m.Write(10, make([]byte, 8)) },
		func() { m.Read(0, 17) },
		func() { m.ReadInto(16, make([]byte, 1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{Base: 100, Size: 64}
	if !r.Contains(100, 64) || !r.Contains(163, 1) {
		t.Error("Contains false negative")
	}
	if r.Contains(99, 1) || r.Contains(164, 1) || r.Contains(160, 8) {
		t.Error("Contains false positive")
	}
}

func TestQuickWriteReadRoundTrip(t *testing.T) {
	m := New(1 << 16)
	r := m.Alloc("q", 4096, 64)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 || len(data) > 256 {
			return true
		}
		o := uint64(off) % (4096 - 256)
		m.Write(r.Base+o, data)
		return bytes.Equal(m.Read(r.Base+o, len(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAllocDisjoint(t *testing.T) {
	// Property: sequential allocations never overlap.
	f := func(sizes []uint8) bool {
		m := New(1 << 20)
		var regs []Region
		for i, s := range sizes {
			if i >= 32 {
				break
			}
			regs = append(regs, m.Alloc("r", uint64(s)+1, 8))
		}
		for i := 1; i < len(regs); i++ {
			if regs[i].Base < regs[i-1].End() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLazyBackingReadsZeros(t *testing.T) {
	// The backing store is lazy: untouched addresses anywhere in the
	// modelled DRAM read as zeros, without ever allocating the full size.
	m := New(1 << 30)
	if got := m.Read((1<<30)-64, 64); !bytes.Equal(got, make([]byte, 64)) {
		t.Errorf("untouched high memory = %v, want zeros", got)
	}
	// ReadInto must overwrite stale destination bytes with those zeros.
	dst := []byte{1, 2, 3, 4}
	m.ReadInto((1<<29)+8, dst)
	if !bytes.Equal(dst, make([]byte, 4)) {
		t.Errorf("ReadInto left stale bytes: %v", dst)
	}
}

func TestLazyBackingGrowsAcrossBoundary(t *testing.T) {
	m := New(1 << 20)
	// A write spanning far past the initial backing commits fully and
	// reads back, with untouched neighbours still zero.
	data := bytes.Repeat([]byte{0xab}, 100)
	m.Write(99_000, data)
	if got := m.Read(99_000, 100); !bytes.Equal(got, data) {
		t.Errorf("read-back mismatch after growth")
	}
	if got := m.Read(98_000, 64); !bytes.Equal(got, make([]byte, 64)) {
		t.Errorf("neighbour below the write not zero: %v", got)
	}
	if got := m.Read(100_000, 64); !bytes.Equal(got, make([]byte, 64)) {
		t.Errorf("neighbour above the write not zero: %v", got)
	}
	if m.Size() != 1<<20 {
		t.Errorf("Size changed to %d", m.Size())
	}
}

func TestWriteAtEndOfMemory(t *testing.T) {
	m := New(4096)
	m.Write(4092, []byte{1, 2, 3, 4})
	if !bytes.Equal(m.Read(4092, 4), []byte{1, 2, 3, 4}) {
		t.Error("write at the last addresses lost")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range write not caught")
		}
	}()
	m.Write(4094, []byte{1, 2, 3, 4})
}

// TestOverflowingAddressesPanic pins the address-arithmetic overflow fix:
// addr+n used to wrap past zero for near-MaxUint64 addresses and sail
// through the bounds check, reading or writing wildly out of range.
func TestOverflowingAddressesPanic(t *testing.T) {
	m := New(1 << 20)
	for _, tc := range []struct {
		name string
		op   func()
	}{
		{"write", func() { m.Write(math.MaxUint64-2, []byte{1, 2, 3, 4}) }},
		{"read", func() { m.Read(math.MaxUint64-2, 4) }},
		{"readinto", func() { m.ReadInto(math.MaxUint64-2, make([]byte, 4)) }},
		{"write-at-size", func() { m.Write(1<<20, []byte{1}) }},
		{"read-max-addr", func() { m.Read(math.MaxUint64, 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: overflowing access did not panic", tc.name)
				}
			}()
			tc.op()
		}()
	}
	// A zero-length access at the very end of memory is legal.
	m.Write(1<<20, nil)
	if got := m.Read(1<<20, 0); len(got) != 0 {
		t.Errorf("zero-length read returned %v", got)
	}
}

// TestRegionContainsOverflow pins the same wrap in Region.Contains:
// addr+n <= End() used to hold spuriously when addr+n wrapped.
func TestRegionContainsOverflow(t *testing.T) {
	r := Region{Name: "r", Base: 64, Size: 128}
	if r.Contains(math.MaxUint64-2, 8) {
		t.Error("Contains accepted a wrapping range")
	}
	if r.Contains(190, 8) {
		t.Error("Contains accepted a range past End")
	}
	if r.Contains(0, -1) {
		t.Error("Contains accepted a negative length")
	}
	if !r.Contains(64, 128) {
		t.Error("Contains rejected the exact region")
	}
	if !r.Contains(192, 0) {
		t.Error("Contains rejected a zero-length range at End")
	}
	// A region spanning the top of the address space must not let End()'s
	// own wraparound leak through Contains.
	top := Region{Name: "top", Base: math.MaxUint64 - 63, Size: 64}
	if !top.Contains(math.MaxUint64-63, 64) {
		t.Error("Contains rejected the exact top-of-memory region")
	}
	if top.Contains(math.MaxUint64-63, 65) {
		t.Error("Contains accepted one byte past the top region")
	}
}

// TestAllocOverflowPanics pins the bump-allocator wrap: base+n overflowing
// used to pass the out-of-memory check.
func TestAllocOverflowPanics(t *testing.T) {
	m := New(1 << 20)
	defer func() {
		if recover() == nil {
			t.Error("overflowing Alloc did not panic")
		}
	}()
	m.Alloc("huge", math.MaxUint64-16, 64)
}

// TestEnsureClampNearTop exercises the ensure clamp-vs-end interaction: a
// legal write near the top of a non-power-of-two memory makes the doubling
// loop overshoot the size; the clamp must never land below the requested
// end. The geometry here (size 10000, doubling hits 16384 > size > end)
// walks exactly that path.
func TestEnsureClampNearTop(t *testing.T) {
	m := New(10000)
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	m.Write(9996, payload) // end=10000: grown 4096->8192->16384, clamped to 10000
	if !bytes.Equal(m.Read(9996, 4), payload) {
		t.Error("write near the top of memory lost after clamped growth")
	}
	// The backing must have grown to exactly the clamp, not the overshoot.
	if got := m.Read(9000, 4); !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Errorf("untouched bytes below the write read %v, want zeros", got)
	}
}
