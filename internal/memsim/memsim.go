// Package memsim models the host memory system of a node.
//
// Memory is a flat byte-addressable space carved into named regions (queue
// rings, doorbell records, receive buffers). Because the simulation kernel
// serializes all activity on the virtual clock, write *timing* is owned by
// whoever performs the write (the Root Complex schedules its commit after the
// RC-to-MEM latency; CPU stores commit at the executing proc's current time),
// and a read simply observes the bytes committed so far — which is exactly
// the memory-consistency behaviour a single coherent host memory provides.
package memsim

import (
	"fmt"
)

// Region is a named allocation inside a Memory.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// End reports the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether [addr, addr+n) lies inside the region. The
// comparison is phrased subtractively: addr+uint64(n) would wrap for
// near-MaxUint64 addresses and wrongly report containment.
func (r Region) Contains(addr uint64, n int) bool {
	if n < 0 || addr < r.Base || addr-r.Base > r.Size {
		return false
	}
	return uint64(n) <= r.Size-(addr-r.Base)
}

// Memory is one node's DRAM plus its allocation bookkeeping.
//
// The backing store is lazy: a fresh Memory owns no buffer, and the buffer
// grows geometrically as writes land. Addresses past the backing read as
// zeros, exactly like untouched DRAM. Regions are bump-allocated from zero,
// so the backing stays a tiny fraction of the modelled DRAM size — which is
// what lets the measurement campaign build hundreds of fresh systems
// without cycling gigabytes through the allocator.
type Memory struct {
	size    uint64
	buf     []byte // lazily grown; [len(buf), size) reads as zeros
	next    uint64
	regions []Region
	// writes counts committed store operations, a cheap invariant hook for
	// tests.
	writes uint64
}

// New creates a memory of the given size in bytes.
func New(size uint64) *Memory {
	return &Memory{size: size}
}

// Size reports the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Writes reports the number of committed store operations.
func (m *Memory) Writes() uint64 { return m.writes }

// Alloc carves out a region of n bytes aligned to align (a power of two).
func (m *Memory) Alloc(name string, n, align uint64) Region {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("memsim: bad alignment %d", align))
	}
	base := (m.next + align - 1) &^ (align - 1)
	// Subtractive bounds check: base+n wraps for huge requests.
	if base > m.size || n > m.size-base {
		panic(fmt.Sprintf("memsim: out of memory allocating %q (%d bytes)", name, n))
	}
	r := Region{Name: name, Base: base, Size: n}
	m.next = base + n
	m.regions = append(m.regions, r)
	return r
}

// Regions lists allocations in order.
func (m *Memory) Regions() []Region {
	out := make([]Region, len(m.regions))
	copy(out, m.regions)
	return out
}

// check panics unless [addr, addr+n) lies inside the memory. Phrased
// subtractively: addr+uint64(n) would wrap for near-MaxUint64 addresses and
// wrongly pass the bounds check.
func (m *Memory) check(addr uint64, n int, op string) {
	if n < 0 || addr > m.size || uint64(n) > m.size-addr {
		panic(fmt.Sprintf("memsim: %s out of range addr=%#x len=%d size=%d", op, addr, n, m.size))
	}
}

// ensure grows the backing store to cover [0, end). The caller must have
// bounds-checked end (end <= m.size): ensure doubles geometrically from 4
// KiB and clamps the growth to the memory size, which can only stay >= end
// — never clamp below a legal request — because end itself is bounded by
// the size. The explicit guard converts any future violation of that
// contract into a panic instead of a silent short buffer.
func (m *Memory) ensure(end uint64) {
	if end <= uint64(len(m.buf)) {
		return
	}
	grown := uint64(4096)
	for grown < end {
		grown *= 2
	}
	if grown > m.size {
		grown = m.size
	}
	if grown < end {
		panic(fmt.Sprintf("memsim: ensure(%d) beyond memory size %d (missing bounds check?)", end, m.size))
	}
	nb := make([]byte, grown)
	copy(nb, m.buf)
	m.buf = nb
}

// readAt copies the bytes at addr into dst, treating addresses past the
// backing store as zeros.
func (m *Memory) readAt(addr uint64, dst []byte) {
	var n int
	if addr < uint64(len(m.buf)) {
		n = copy(dst, m.buf[addr:])
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// Write commits data at addr immediately (at the caller's current virtual
// time).
func (m *Memory) Write(addr uint64, data []byte) {
	m.check(addr, len(data), "write")
	m.ensure(addr + uint64(len(data)))
	copy(m.buf[addr:], data)
	m.writes++
}

// Read copies n bytes at addr into a fresh slice.
func (m *Memory) Read(addr uint64, n int) []byte {
	m.check(addr, n, "read")
	out := make([]byte, n)
	m.readAt(addr, out)
	return out
}

// ReadInto copies len(dst) bytes at addr into dst, avoiding allocation on hot
// polling paths.
func (m *Memory) ReadInto(addr uint64, dst []byte) {
	m.check(addr, len(dst), "read")
	m.readAt(addr, dst)
}
