package verbs

import (
	"bytes"
	"math"
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/units"
)

func harness(t *testing.T) (*node.System, *QP, *QP) {
	t.Helper()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	sys := node.NewSystem(cfg, 2)
	c0 := Open(sys.Nodes[0], cfg)
	c1 := Open(sys.Nodes[1], cfg)
	q0 := c0.CreateQP(128, 1024)
	q1 := c1.CreateQP(128, 1024)
	Connect(q0, q1)
	return sys, q0, q1
}

func TestRDMAWriteInline(t *testing.T) {
	sys, q0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		err := q0.PostSend(tk, &SendWR{
			WRID:       77,
			Opcode:     WROpRDMAWrite,
			Flags:      SendSignaled | SendInline,
			InlineData: payload,
			RemoteAddr: dst.Base,
		})
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		wcs := make([]WC, 4)
		for {
			if n := q0.PollSendCQ(tk, wcs); n > 0 {
				if wcs[0].WRID != 77 || wcs[0].Status != WCSuccess {
					t.Errorf("wc = %+v", wcs[0])
				}
				break
			}
		}
	})
	sys.Run()
	if got := sys.Nodes[1].Mem.Read(dst.Base, 8); !bytes.Equal(got, payload) {
		t.Errorf("remote = %v", got)
	}
}

func TestSendRecv(t *testing.T) {
	sys, q0, q1 := harness(t)
	defer sys.Shutdown()
	rxBuf := sys.Nodes[1].Mem.Alloc("rx", 4096, 64)
	payload := []byte{9, 8, 7}
	var got []byte
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		q1.PostRecv(tk, &RecvWR{WRID: 5, SGE: SGE{Addr: rxBuf.Base, Length: 4096}})
		wcs := make([]WC, 1)
		for {
			if n := q1.PollRecvCQ(tk, wcs); n > 0 {
				if wcs[0].WRID != 5 || wcs[0].Opcode != WROpSend {
					t.Errorf("recv wc = %+v", wcs[0])
				}
				got = wcs[0].Data
				return
			}
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		if err := q0.PostSend(tk, &SendWR{
			WRID: 6, Opcode: WROpSend, Flags: SendSignaled | SendInline, InlineData: payload,
		}); err != nil {
			t.Fatal(err)
		}
	})
	sys.Run()
	if !bytes.Equal(got, payload) {
		t.Errorf("received %v", got)
	}
}

func TestLargeSendViaSGE(t *testing.T) {
	sys, q0, q1 := harness(t)
	defer sys.Shutdown()
	src := sys.Nodes[0].Mem.Alloc("src", 4096, 64)
	rxBuf := sys.Nodes[1].Mem.Alloc("rx", 4096, 64)
	payload := bytes.Repeat([]byte{0xCD}, 2048)
	sys.Nodes[0].Mem.Write(src.Base, payload)
	var got []byte
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		q1.PostRecv(tk, &RecvWR{WRID: 1, SGE: SGE{Addr: rxBuf.Base, Length: 4096}})
		wcs := make([]WC, 1)
		for {
			if n := q1.PollRecvCQ(tk, wcs); n > 0 {
				got = wcs[0].Data
				if wcs[0].ByteLen != 2048 {
					t.Errorf("byte len = %d", wcs[0].ByteLen)
				}
				return
			}
		}
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		// Non-inline: the NIC DMA-reads the payload through the SGE.
		if err := q0.PostSend(tk, &SendWR{
			WRID: 2, Opcode: WROpSend, Flags: SendSignaled,
			SGE: SGE{Addr: src.Base, Length: 2048},
		}); err != nil {
			t.Fatal(err)
		}
	})
	sys.Run()
	if !bytes.Equal(got, payload) {
		t.Error("large payload corrupted in flight")
	}
}

func TestInlinePostCostsLLPPost(t *testing.T) {
	sys, q0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		t0 := p.Now()
		q0.PostSend(tk, &SendWR{
			Opcode: WROpRDMAWrite, Flags: SendSignaled | SendInline,
			InlineData: []byte{1}, RemoteAddr: dst.Base,
		})
		if got := (p.Now() - t0).Ns(); math.Abs(got-config.TabLLPPost) > 1e-9 {
			t.Errorf("inline post cost %.2f ns, want LLP_post %.2f", got, config.TabLLPPost)
		}
	})
	sys.Run()
}

func TestUnsignaledBatchPolling(t *testing.T) {
	sys, q0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		// Three unsignaled then one signaled: one WC retires all four
		// slots, but only the signaled WR is reported (ibverbs
		// semantics).
		for i := 0; i < 4; i++ {
			flags := SendInline
			if i == 3 {
				flags |= SendSignaled
			}
			if err := q0.PostSend(tk, &SendWR{
				WRID: uint64(i), Opcode: WROpRDMAWrite, Flags: flags,
				InlineData: []byte{byte(i)}, RemoteAddr: dst.Base,
			}); err != nil {
				t.Fatal(err)
			}
		}
		wcs := make([]WC, 8)
		total := 0
		for q0.Outstanding() > 0 {
			total += q0.PollSendCQ(tk, wcs)
		}
		if total != 1 {
			t.Errorf("WCs = %d, want 1 (only the signaled WR)", total)
		}
		if wcs[0].WRID != 3 {
			t.Errorf("WC wrid = %d", wcs[0].WRID)
		}
	})
	sys.Run()
}

func TestQPFull(t *testing.T) {
	sys, q0, _ := harness(t)
	defer sys.Shutdown()
	dst := sys.Nodes[1].Mem.Alloc("dst", 64, 8)
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		for i := 0; i < 128; i++ {
			if err := q0.PostSend(tk, &SendWR{
				Opcode: WROpRDMAWrite, Flags: SendSignaled | SendInline,
				InlineData: []byte{1}, RemoteAddr: dst.Base,
			}); err != nil {
				t.Fatalf("post %d: %v", i, err)
			}
		}
		if err := q0.PostSend(tk, &SendWR{
			Opcode: WROpRDMAWrite, Flags: SendSignaled | SendInline,
			InlineData: []byte{1}, RemoteAddr: dst.Base,
		}); err != ErrQPFull {
			t.Errorf("overfull post: %v", err)
		}
	})
	sys.Run()
}

func TestBadOpcode(t *testing.T) {
	sys, q0, _ := harness(t)
	defer sys.Shutdown()
	sys.K.Spawn("test", func(p *sim.Proc) {
		tk := p.Task()
		if err := q0.PostSend(tk, &SendWR{Opcode: 42}); err == nil {
			t.Error("bad opcode accepted")
		}
	})
	sys.Run()
}

func TestBatchedRecvPollPayloadsIndependent(t *testing.T) {
	// Two inline completions drained by a single PollRecvCQ call must
	// return independent payloads: the scratch CQE is reused between
	// decodes, so each WC must carry its own copy.
	sys, q0, q1 := harness(t)
	defer sys.Shutdown()
	rxBuf := sys.Nodes[1].Mem.Alloc("rx", 4096, 64)
	var first, second []byte
	sys.K.Spawn("rx", func(p *sim.Proc) {
		tk := p.Task()
		q1.PostRecv(tk, &RecvWR{WRID: 1, SGE: SGE{Addr: rxBuf.Base, Length: 4096}})
		q1.PostRecv(tk, &RecvWR{WRID: 2, SGE: SGE{Addr: rxBuf.Base, Length: 4096}})
		// Wait until both sends have certainly landed, then drain both
		// completions in one call.
		p.Sleep(100 * units.Microsecond)
		wcs := make([]WC, 2)
		if n := q1.PollRecvCQ(tk, wcs); n != 2 {
			t.Errorf("drained %d completions in one poll, want 2", n)
			return
		}
		first, second = wcs[0].Data, wcs[1].Data
	})
	sys.K.Spawn("tx", func(p *sim.Proc) {
		tk := p.Task()
		p.Sleep(units.Microsecond)
		for i, payload := range [][]byte{{1, 1, 1}, {2, 2, 2}} {
			if err := q0.PostSend(tk, &SendWR{
				WRID: uint64(i), Opcode: WROpSend,
				Flags: SendSignaled | SendInline, InlineData: payload,
			}); err != nil {
				t.Error(err)
			}
		}
	})
	sys.Run()
	if !bytes.Equal(first, []byte{1, 1, 1}) || !bytes.Equal(second, []byte{2, 2, 2}) {
		t.Errorf("batched poll aliased payloads: first=%v second=%v", first, second)
	}
}
