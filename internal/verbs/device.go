package verbs

import "breakband/internal/nic"

// deviceQP is the underlying device queue pair.
type deviceQP = nic.QP

// connectDevice wires two device QPs.
func connectDevice(a, b *deviceQP) { nic.Connect(a, b) }
