// Package verbs provides an ibverbs-flavoured API over the simulated NIC —
// the "low-level communication framework (e.g. Verbs)" the paper names as
// the alternative LLP beneath communication stacks. It exists alongside
// internal/uct so systems written against verbs semantics (work requests,
// scatter-gather entries, batched completion polling) can run on the same
// calibrated hardware model; native Go has no verbs implementation (only cgo
// bindings), which is part of what this repository substitutes.
//
// The cost model reuses the calibrated LLP constants: an inline+signaled
// 8-byte post costs the paper's LLP_post, and polling one completion costs
// LLP_prog.
//
// The verbs data path is written as resumable sim.Frame state machines like
// internal/uct: continuation tasks use the Start*/Last* forms, blocking
// tasks (Proc.Task) the synchronous wrappers. One task drives a QP at a
// time.
package verbs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/config"
	"breakband/internal/mlx"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// Opcodes for work requests.
const (
	WROpRDMAWrite = iota
	WROpSend
)

// Send flags.
const (
	SendSignaled = 1 << iota
	SendInline
)

// Completion status.
const (
	WCSuccess = iota
	// WCRnrRetryExcErr mirrors IBV_WC_RNR_RETRY_EXC_ERR: the remote peer
	// kept answering receiver-not-ready NAKs past the QP's retry budget,
	// and the flushed work requests were never delivered.
	WCRnrRetryExcErr
	// WCFlushErr mirrors IBV_WC_WR_FLUSH_ERR: the work request was
	// flushed unexecuted because the QP was already in error state.
	WCFlushErr
	// WCRetryExcErr mirrors IBV_WC_RETRY_EXC_ERR: the transport retry
	// budget (ACK timeouts plus sequence-error NAKs) was exhausted
	// without forward progress and the flushed work requests were never
	// acknowledged.
	WCRetryExcErr
	// WCFatalErr mirrors IBV_WC_FATAL_ERR: the local device itself died
	// (NIC crash) and the work request can never execute.
	WCFatalErr
)

// wcStatus maps a device CQE status byte to the verbs completion status.
func wcStatus(s uint8) int {
	switch s {
	case mlx.CQERnrRetryExc:
		return WCRnrRetryExcErr
	case mlx.CQEFlushErr:
		return WCFlushErr
	case mlx.CQERetryExc:
		return WCRetryExcErr
	case mlx.CQEFatalErr:
		return WCFatalErr
	}
	return WCSuccess
}

// ErrQPFull mirrors ENOMEM from ibv_post_send on a full send queue.
var ErrQPFull = errors.New("verbs: send queue full")

// SGE is a scatter-gather entry.
type SGE struct {
	Addr   uint64
	Length uint32
}

// SendWR is a send work request (ibv_send_wr).
type SendWR struct {
	WRID       uint64
	Opcode     int
	Flags      int
	SGE        SGE
	RemoteAddr uint64
	// Inline payload used when Flags&SendInline is set and the data is
	// supplied directly (bypassing the SGE).
	InlineData []byte
}

// RecvWR is a receive work request.
type RecvWR struct {
	WRID uint64
	SGE  SGE
}

// WC is a work completion (ibv_wc).
type WC struct {
	WRID    uint64
	Status  int
	Opcode  int
	ByteLen uint32
	// Data carries inline-scattered receive payloads.
	Data []byte
}

// Context is the device context for one node (ibv_context).
type Context struct {
	Node *node.Node
	Cfg  *config.Config
}

// Open returns a device context.
func Open(n *node.Node, cfg *config.Config) *Context {
	return &Context{Node: n, Cfg: cfg}
}

// QP is a queue pair handle with its send and receive completion queues.
type QP struct {
	ctx *Context
	qp  *nicQP

	pi        uint16
	completed uint16
	sendCI    uint16
	recvCI    uint16

	// wrids maps the WQE counter to the caller's WRID for send
	// completions; receives track FIFO order.
	wrids   map[uint16]uint64
	recvWRs []RecvWR
	scratch [mlx.CQESize]byte
	// cqe is the scratch completion the poll paths decode into; its
	// payload is copied into the destination WC before the next decode.
	cqe mlx.CQE

	// lastPost is the most recent send-post outcome (see LastPostSend).
	lastPost error

	sendF     sendFrame
	recvF     recvFrame
	pollSendF pollFrame
	pollRecvF pollFrame
}

// nicQP aliases the device queue pair (kept small to avoid leaking device
// internals into API signatures).
type nicQP = deviceQP

// CreateQP builds a queue pair with the given depths.
func (c *Context) CreateQP(sqDepth, cqDepth int) *QP {
	return &QP{
		ctx:   c,
		qp:    c.Node.NIC.CreateQP(sqDepth, cqDepth),
		wrids: make(map[uint16]uint64),
	}
}

// Connect wires two QPs into a reliable connection (the RTR/RTS modify-QP
// dance collapsed to its effect).
func Connect(a, b *QP) { connectDevice(a.qp, b.qp) }

// StartPostSend begins posting one send work request (ibv_post_send). The
// inline+signaled small-message path costs the paper's LLP_post and goes out
// via PIO; other shapes take the DoorBell path with the NIC DMA-reading the
// descriptor and, for non-inline requests, the payload. The outcome is
// reported by LastPostSend once the frame returns.
func (q *QP) StartPostSend(t *sim.Task, wr *SendWR) {
	q.sendF.q = q
	q.sendF.pc = 0
	q.sendF.wr = wr
	t.Call(&q.sendF)
}

// LastPostSend reports the outcome of the most recently completed send-post
// frame.
func (q *QP) LastPostSend() error { return q.lastPost }

// PostSend is the synchronous form of StartPostSend for blocking tasks.
func (q *QP) PostSend(t *sim.Task, wr *SendWR) error {
	t.BlockingOnly("verbs.QP.PostSend")
	q.StartPostSend(t, wr)
	return q.lastPost
}

type sendFrame struct {
	q      *QP
	pc     int
	wr     *SendWR
	inline bool
	enc    [mlx.WQESize]byte
}

func (f *sendFrame) finish(t *sim.Task, err error) {
	f.q.lastPost = err
	f.wr = nil
	t.Return()
}

func (f *sendFrame) Step(t *sim.Task) {
	q := f.q
	sw := &q.ctx.Cfg.SW
	r := q.ctx.Node.Rand
	for {
		switch f.pc {
		case 0:
			wr := f.wr
			if int(q.pi-q.completed) >= q.qp.SQ.Depth {
				t.Advance(sw.BusyPost.Sample(r))
				f.finish(t, ErrQPFull)
				return
			}

			t.Advance(sw.LLPPostEntry.Sample(r))
			// The WQE is a stack value: Encode copies everything into the
			// frame's 64-byte descriptor, so the post path allocates
			// nothing.
			wqe := mlx.WQE{
				Signaled:   wr.Flags&SendSignaled != 0,
				WQEIdx:     q.pi,
				QPN:        q.qp.QPN,
				RemoteAddr: wr.RemoteAddr,
			}
			switch wr.Opcode {
			case WROpRDMAWrite:
				wqe.Opcode = mlx.OpRDMAWrite
			case WROpSend:
				wqe.Opcode = mlx.OpSend
			default:
				f.finish(t, fmt.Errorf("verbs: unsupported opcode %d", wr.Opcode))
				return
			}

			f.inline = wr.Flags&SendInline != 0 && len(wr.InlineData) <= mlx.InlineMax
			if f.inline {
				wqe.Inline = true
				wqe.Payload = wr.InlineData
			} else {
				wqe.Inline = false
				wqe.GatherAddr = wr.SGE.Addr
				wqe.GatherLen = wr.SGE.Length
			}
			enc, err := wqe.Encode()
			if err != nil {
				f.finish(t, err)
				return
			}
			f.enc = enc
			t.Advance(sw.MDSetup.Sample(r))
			t.Advance(sw.BarrierMD.Sample(r))
			// No Pause: the doorbell record is written by the CPU but read
			// by nothing in the device model (the NIC learns the producer
			// counter through the MMIO doorbell), so the early commit is
			// unobservable.
			var dbr [8]byte
			binary.LittleEndian.PutUint16(dbr[:], q.pi+1)
			q.ctx.Node.Mem.Write(q.qp.DBRAddr, dbr[:])
			t.Advance(sw.DBCIncrement.Sample(r))
			t.Advance(sw.BarrierDBC.Sample(r))

			if f.inline {
				// BlueFlame PIO: the whole descriptor in one MMIO write.
				t.Advance(sw.PIOCopy.Sample(r))
				f.pc = 1
			} else {
				// Ring write + 8-byte DoorBell; the NIC fetches by DMA.
				t.Advance(sw.SQRingWrite.Sample(r))
				f.pc = 2
			}
			if t.Pause() {
				return
			}
		case 1:
			q.ctx.Node.RC.MMIOWrite(q.qp.BFAddr, f.enc[:])
			f.pc = 4
		case 2:
			q.ctx.Node.Mem.Write(q.qp.SQ.EntryAddr(q.pi), f.enc[:])
			t.Advance(sw.DoorbellRing.Sample(r))
			f.pc = 3
			if t.Pause() {
				return
			}
		case 3:
			var db [8]byte
			binary.LittleEndian.PutUint16(db[:], q.pi+1)
			q.ctx.Node.RC.MMIOWrite(q.qp.DBAddr, db[:])
			f.pc = 4
		case 4:
			t.Advance(sw.LLPPostExit.Sample(r))
			q.wrids[q.pi] = f.wr.WRID
			q.pi++
			f.finish(t, nil)
			return
		}
	}
}

// StartPostRecv begins posting one receive work request (ibv_post_recv).
func (q *QP) StartPostRecv(t *sim.Task, wr *RecvWR) {
	q.recvF.q = q
	q.recvF.pc = 0
	q.recvF.wr = *wr
	t.Call(&q.recvF)
}

// PostRecv is the synchronous form of StartPostRecv for blocking tasks.
func (q *QP) PostRecv(t *sim.Task, wr *RecvWR) error {
	t.BlockingOnly("verbs.QP.PostRecv")
	q.StartPostRecv(t, wr)
	return nil
}

type recvFrame struct {
	q  *QP
	pc int
	wr RecvWR
}

func (f *recvFrame) Step(t *sim.Task) {
	q := f.q
	switch f.pc {
	case 0:
		t.Advance(q.ctx.Cfg.SW.PostRecv.Sample(q.ctx.Node.Rand))
		// The credit must be visible to in-flight deliveries at post time.
		f.pc = 1
		if t.Pause() {
			return
		}
		f.Step(t)
	case 1:
		q.recvWRs = append(q.recvWRs, f.wr)
		q.qp.PostRecv(f.wr.SGE.Addr)
		t.Return()
	}
}

// StartPollSendCQ begins polling up to len(wcs) send completions
// (ibv_poll_cq). With unsignaled requests one CQE retires a batch, but verbs
// reports only the signaled request's WC, matching ibverbs semantics. The
// completion count is reported by LastPoll once the frame returns.
func (q *QP) StartPollSendCQ(t *sim.Task, wcs []WC) {
	q.pollSendF.q = q
	q.pollSendF.pc = 0
	q.pollSendF.recv = false
	q.pollSendF.wcs = wcs
	q.pollSendF.n = 0
	t.Call(&q.pollSendF)
}

// StartPollRecvCQ begins polling up to len(wcs) receive completions. Each
// WC.Data is an independent payload: inline scatters are copied into the WC
// slot's own reusable buffer (so a caller that re-polls with the same wcs
// slice pays no steady-state allocations, and a batched poll never aliases
// payloads), and remains valid until that slot is reused by a later poll.
func (q *QP) StartPollRecvCQ(t *sim.Task, wcs []WC) {
	q.pollRecvF.q = q
	q.pollRecvF.pc = 0
	q.pollRecvF.recv = true
	q.pollRecvF.wcs = wcs
	q.pollRecvF.n = 0
	t.Call(&q.pollRecvF)
}

// LastPoll reports the completion count of the most recently completed poll
// frame for the given direction (recv selects the receive-CQ frame).
func (q *QP) LastPoll(recv bool) int {
	if recv {
		return q.pollRecvF.n
	}
	return q.pollSendF.n
}

// PollSendCQ is the synchronous form of StartPollSendCQ for blocking tasks.
func (q *QP) PollSendCQ(t *sim.Task, wcs []WC) int {
	t.BlockingOnly("verbs.QP.PollSendCQ")
	q.StartPollSendCQ(t, wcs)
	return q.pollSendF.n
}

// PollRecvCQ is the synchronous form of StartPollRecvCQ for blocking tasks.
func (q *QP) PollRecvCQ(t *sim.Task, wcs []WC) int {
	t.BlockingOnly("verbs.QP.PollRecvCQ")
	q.StartPollRecvCQ(t, wcs)
	return q.pollRecvF.n
}

type pollFrame struct {
	q    *QP
	pc   int
	recv bool
	wcs  []WC
	n    int

	// Recv-path locals preserved across the large-payload pause.
	wr      RecvWR
	byteCnt uint32
}

func (f *pollFrame) finish(t *sim.Task) {
	f.wcs = nil
	t.Return()
}

func (f *pollFrame) Step(t *sim.Task) {
	q := f.q
	sw := &q.ctx.Cfg.SW
	r := q.ctx.Node.Rand
	for {
		switch f.pc {
		case 0: // loop head: one CQ peek per iteration
			if f.n >= len(f.wcs) {
				f.finish(t)
				return
			}
			t.Advance(sw.LLPProgBarrier.Sample(r))
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			ring, ci := q.qp.SendCQ, q.sendCI
			if f.recv {
				ring, ci = q.qp.RecvCQ, q.recvCI
			}
			q.ctx.Node.Mem.ReadInto(ring.EntryAddr(ci), q.scratch[:])
			if q.scratch[mlx.CQESize-1] != ring.Gen(ci) {
				t.Advance(sw.LLPProgFailChk.Sample(r))
				f.finish(t)
				return
			}
			t.Advance(sw.LLPProgCQERead.Sample(r))
			cqe := &q.cqe
			if err := cqe.DecodeFrom(q.scratch[:]); err != nil {
				panic(fmt.Sprintf("verbs: corrupt CQE: %v", err))
			}
			if !f.recv {
				q.sendCI++
				q.completed = cqe.WQECounter + 1
				wrid := q.wrids[cqe.WQECounter]
				delete(q.wrids, cqe.WQECounter)
				status := wcStatus(cqe.Status)
				// Keep the slot's reusable Data buffer (send completions
				// carry no payload, but a caller sharing one wcs slice
				// between send and recv polls must not lose the recv
				// path's buffer).
				f.wcs[f.n] = WC{WRID: wrid, Status: status, Opcode: WROpRDMAWrite, Data: f.wcs[f.n].Data[:0]}
				f.n++
				t.Advance(sw.LLPProgMisc.Sample(r))
				f.pc = 0
				continue
			}
			q.recvCI++
			if len(q.recvWRs) == 0 {
				panic("verbs: recv CQE without a posted receive")
			}
			f.wr = q.recvWRs[0]
			q.recvWRs = q.recvWRs[1:]
			if st := wcStatus(cqe.Status); st != WCSuccess {
				// Flushed receive (QP errored / NIC crashed): the work
				// request retires unexecuted, carrying no payload.
				f.wcs[f.n] = WC{WRID: f.wr.WRID, Status: st, Opcode: WROpSend, Data: f.wcs[f.n].Data[:0]}
				f.n++
				t.Advance(sw.LLPProgMisc.Sample(r))
				f.pc = 0
				continue
			}
			if int(cqe.ByteCnt) > mlx.ScatterMax {
				// Large payload: it was DMA-written to the posted buffer.
				// Read it into this WC's own reusable buffer.
				f.byteCnt = cqe.ByteCnt
				t.Advance(units.Time(cqe.ByteCnt) * sw.MemcpyPerByte)
				f.pc = 2
				if t.Pause() {
					return
				}
				continue
			}
			// Copy the inline scatter out of the scratch CQE into this
			// WC's own buffer: the scratch is overwritten by the next
			// decode, possibly within this very call.
			data := append(f.wcs[f.n].Data[:0], cqe.Payload...)
			f.wcs[f.n] = WC{WRID: f.wr.WRID, Status: WCSuccess, Opcode: WROpSend, ByteLen: cqe.ByteCnt, Data: data}
			f.n++
			t.Advance(sw.LLPProgMisc.Sample(r))
			f.pc = 0
		case 2:
			data := arena.Grow(f.wcs[f.n].Data, int(f.byteCnt))
			q.ctx.Node.Mem.ReadInto(f.wr.SGE.Addr, data)
			f.wcs[f.n] = WC{WRID: f.wr.WRID, Status: WCSuccess, Opcode: WROpSend, ByteLen: f.byteCnt, Data: data}
			f.n++
			t.Advance(sw.LLPProgMisc.Sample(r))
			f.pc = 0
		}
	}
}

// Outstanding reports send slots in use.
func (q *QP) Outstanding() int { return int(q.pi - q.completed) }
