// Package verbs provides an ibverbs-flavoured API over the simulated NIC —
// the "low-level communication framework (e.g. Verbs)" the paper names as
// the alternative LLP beneath communication stacks. It exists alongside
// internal/uct so systems written against verbs semantics (work requests,
// scatter-gather entries, batched completion polling) can run on the same
// calibrated hardware model; native Go has no verbs implementation (only cgo
// bindings), which is part of what this repository substitutes.
//
// The cost model reuses the calibrated LLP constants: an inline+signaled
// 8-byte post costs the paper's LLP_post, and polling one completion costs
// LLP_prog.
package verbs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/config"
	"breakband/internal/mlx"
	"breakband/internal/node"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// Opcodes for work requests.
const (
	WROpRDMAWrite = iota
	WROpSend
)

// Send flags.
const (
	SendSignaled = 1 << iota
	SendInline
)

// Completion status.
const (
	WCSuccess = iota
	// WCRnrRetryExcErr mirrors IBV_WC_RNR_RETRY_EXC_ERR: the remote peer
	// kept answering receiver-not-ready NAKs past the QP's retry budget,
	// and the flushed work requests were never delivered.
	WCRnrRetryExcErr
	// WCFlushErr mirrors IBV_WC_WR_FLUSH_ERR: the work request was
	// flushed unexecuted because the QP was already in error state.
	WCFlushErr
)

// ErrQPFull mirrors ENOMEM from ibv_post_send on a full send queue.
var ErrQPFull = errors.New("verbs: send queue full")

// SGE is a scatter-gather entry.
type SGE struct {
	Addr   uint64
	Length uint32
}

// SendWR is a send work request (ibv_send_wr).
type SendWR struct {
	WRID       uint64
	Opcode     int
	Flags      int
	SGE        SGE
	RemoteAddr uint64
	// Inline payload used when Flags&SendInline is set and the data is
	// supplied directly (bypassing the SGE).
	InlineData []byte
}

// RecvWR is a receive work request.
type RecvWR struct {
	WRID uint64
	SGE  SGE
}

// WC is a work completion (ibv_wc).
type WC struct {
	WRID    uint64
	Status  int
	Opcode  int
	ByteLen uint32
	// Data carries inline-scattered receive payloads.
	Data []byte
}

// Context is the device context for one node (ibv_context).
type Context struct {
	Node *node.Node
	Cfg  *config.Config
}

// Open returns a device context.
func Open(n *node.Node, cfg *config.Config) *Context {
	return &Context{Node: n, Cfg: cfg}
}

// QP is a queue pair handle with its send and receive completion queues.
type QP struct {
	ctx *Context
	qp  *nicQP

	pi        uint16
	completed uint16
	sendCI    uint16
	recvCI    uint16

	// wrids maps the WQE counter to the caller's WRID for send
	// completions; receives track FIFO order.
	wrids   map[uint16]uint64
	recvWRs []RecvWR
	scratch [mlx.CQESize]byte
	// cqe is the scratch completion the poll paths decode into; its
	// payload is copied into the destination WC before the next decode.
	cqe mlx.CQE
}

// nicQP aliases the device queue pair (kept small to avoid leaking device
// internals into API signatures).
type nicQP = deviceQP

// CreateQP builds a queue pair with the given depths.
func (c *Context) CreateQP(sqDepth, cqDepth int) *QP {
	return &QP{
		ctx:   c,
		qp:    c.Node.NIC.CreateQP(sqDepth, cqDepth),
		wrids: make(map[uint16]uint64),
	}
}

// Connect wires two QPs into a reliable connection (the RTR/RTS modify-QP
// dance collapsed to its effect).
func Connect(a, b *QP) { connectDevice(a.qp, b.qp) }

// PostSend posts one send work request (ibv_post_send). The inline+signaled
// small-message path costs the paper's LLP_post and goes out via PIO; other
// shapes take the DoorBell path with the NIC DMA-reading the descriptor and,
// for non-inline requests, the payload.
func (q *QP) PostSend(p *sim.Proc, wr *SendWR) error {
	sw := &q.ctx.Cfg.SW
	r := q.ctx.Node.Rand
	if int(q.pi-q.completed) >= q.qp.SQ.Depth {
		p.Advance(sw.BusyPost.Sample(r))
		return ErrQPFull
	}

	p.Advance(sw.LLPPostEntry.Sample(r))
	// The WQE is a stack value: Encode copies everything into the 64-byte
	// descriptor, so the post path allocates nothing.
	wqe := mlx.WQE{
		Signaled:   wr.Flags&SendSignaled != 0,
		WQEIdx:     q.pi,
		QPN:        q.qp.QPN,
		RemoteAddr: wr.RemoteAddr,
	}
	switch wr.Opcode {
	case WROpRDMAWrite:
		wqe.Opcode = mlx.OpRDMAWrite
	case WROpSend:
		wqe.Opcode = mlx.OpSend
	default:
		return fmt.Errorf("verbs: unsupported opcode %d", wr.Opcode)
	}

	inline := wr.Flags&SendInline != 0 && len(wr.InlineData) <= mlx.InlineMax
	if inline {
		wqe.Inline = true
		wqe.Payload = wr.InlineData
	} else {
		wqe.Inline = false
		wqe.GatherAddr = wr.SGE.Addr
		wqe.GatherLen = wr.SGE.Length
	}
	enc, err := wqe.Encode()
	if err != nil {
		return err
	}
	p.Advance(sw.MDSetup.Sample(r))
	p.Advance(sw.BarrierMD.Sample(r))
	// No Sync: the doorbell record is written by the CPU but read by
	// nothing in the device model (the NIC learns the producer counter
	// through the MMIO doorbell), so the early commit is unobservable.
	var dbr [8]byte
	binary.LittleEndian.PutUint16(dbr[:], q.pi+1)
	q.ctx.Node.Mem.Write(q.qp.DBRAddr, dbr[:])
	p.Advance(sw.DBCIncrement.Sample(r))
	p.Advance(sw.BarrierDBC.Sample(r))

	if inline {
		// BlueFlame PIO: the whole descriptor in one MMIO write.
		p.Advance(sw.PIOCopy.Sample(r))
		p.Sync()
		q.ctx.Node.RC.MMIOWrite(q.qp.BFAddr, enc[:])
	} else {
		// Ring write + 8-byte DoorBell; the NIC fetches by DMA.
		p.Advance(sw.SQRingWrite.Sample(r))
		p.Sync()
		q.ctx.Node.Mem.Write(q.qp.SQ.EntryAddr(q.pi), enc[:])
		p.Advance(sw.DoorbellRing.Sample(r))
		p.Sync()
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], q.pi+1)
		q.ctx.Node.RC.MMIOWrite(q.qp.DBAddr, db[:])
	}
	p.Advance(sw.LLPPostExit.Sample(r))
	q.wrids[q.pi] = wr.WRID
	q.pi++
	return nil
}

// PostRecv posts one receive work request (ibv_post_recv).
func (q *QP) PostRecv(p *sim.Proc, wr *RecvWR) error {
	p.Advance(q.ctx.Cfg.SW.PostRecv.Sample(q.ctx.Node.Rand))
	// The credit must be visible to in-flight deliveries at post time.
	p.Sync()
	q.recvWRs = append(q.recvWRs, *wr)
	q.qp.PostRecv(wr.SGE.Addr)
	return nil
}

// PollSendCQ polls up to len(wcs) send completions (ibv_poll_cq). With
// unsignaled requests one CQE retires a batch, but verbs reports only the
// signaled request's WC, matching ibverbs semantics.
func (q *QP) PollSendCQ(p *sim.Proc, wcs []WC) int {
	sw := &q.ctx.Cfg.SW
	r := q.ctx.Node.Rand
	n := 0
	for n < len(wcs) {
		p.Advance(sw.LLPProgBarrier.Sample(r))
		p.Sync()
		q.ctx.Node.Mem.ReadInto(q.qp.SendCQ.EntryAddr(q.sendCI), q.scratch[:])
		if q.scratch[mlx.CQESize-1] != q.qp.SendCQ.Gen(q.sendCI) {
			p.Advance(sw.LLPProgFailChk.Sample(r))
			break
		}
		p.Advance(sw.LLPProgCQERead.Sample(r))
		cqe := &q.cqe
		if err := cqe.DecodeFrom(q.scratch[:]); err != nil {
			panic(fmt.Sprintf("verbs: corrupt CQE: %v", err))
		}
		q.sendCI++
		q.completed = cqe.WQECounter + 1
		wrid := q.wrids[cqe.WQECounter]
		delete(q.wrids, cqe.WQECounter)
		status := WCSuccess
		switch cqe.Status {
		case mlx.CQERnrRetryExc:
			status = WCRnrRetryExcErr
		case mlx.CQEFlushErr:
			status = WCFlushErr
		}
		// Keep the slot's reusable Data buffer (send completions carry no
		// payload, but a caller sharing one wcs slice between send and
		// recv polls must not lose the recv path's buffer).
		wcs[n] = WC{WRID: wrid, Status: status, Opcode: WROpRDMAWrite, Data: wcs[n].Data[:0]}
		n++
		p.Advance(sw.LLPProgMisc.Sample(r))
	}
	return n
}

// PollRecvCQ polls up to len(wcs) receive completions. Each WC.Data is an
// independent payload: inline scatters are copied into the WC slot's own
// reusable buffer (so a caller that re-polls with the same wcs slice pays
// no steady-state allocations, and a batched poll never aliases payloads),
// and remains valid until that slot is reused by a later poll.
func (q *QP) PollRecvCQ(p *sim.Proc, wcs []WC) int {
	sw := &q.ctx.Cfg.SW
	r := q.ctx.Node.Rand
	n := 0
	for n < len(wcs) {
		p.Advance(sw.LLPProgBarrier.Sample(r))
		p.Sync()
		q.ctx.Node.Mem.ReadInto(q.qp.RecvCQ.EntryAddr(q.recvCI), q.scratch[:])
		if q.scratch[mlx.CQESize-1] != q.qp.RecvCQ.Gen(q.recvCI) {
			p.Advance(sw.LLPProgFailChk.Sample(r))
			break
		}
		p.Advance(sw.LLPProgCQERead.Sample(r))
		cqe := &q.cqe
		if err := cqe.DecodeFrom(q.scratch[:]); err != nil {
			panic(fmt.Sprintf("verbs: corrupt CQE: %v", err))
		}
		q.recvCI++
		if len(q.recvWRs) == 0 {
			panic("verbs: recv CQE without a posted receive")
		}
		wr := q.recvWRs[0]
		q.recvWRs = q.recvWRs[1:]
		data := wcs[n].Data
		if int(cqe.ByteCnt) > mlx.ScatterMax {
			// Large payload: it was DMA-written to the posted buffer.
			// Read it into this WC's own reusable buffer.
			p.Advance(units.Time(cqe.ByteCnt) * sw.MemcpyPerByte)
			p.Sync()
			data = arena.Grow(data, int(cqe.ByteCnt))
			q.ctx.Node.Mem.ReadInto(wr.SGE.Addr, data)
		} else {
			// Copy the inline scatter out of the scratch CQE into this
			// WC's own buffer: the scratch is overwritten by the next
			// decode, possibly within this very call.
			data = append(data[:0], cqe.Payload...)
		}
		wcs[n] = WC{WRID: wr.WRID, Status: WCSuccess, Opcode: WROpSend, ByteLen: cqe.ByteCnt, Data: data}
		n++
		p.Advance(sw.LLPProgMisc.Sample(r))
	}
	return n
}

// Outstanding reports send slots in use.
func (q *QP) Outstanding() int { return int(q.pi - q.completed) }
