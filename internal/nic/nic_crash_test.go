package nic

import (
	"encoding/binary"
	"testing"

	"breakband/internal/mlx"
	"breakband/internal/units"
)

// TestCrashMidRnrBackoffCancelsTimers: a sender parked in an RNR backoff
// window holds an armed retry timer. A NIC crash in that window must cancel
// it — the QP fails with one fatal error CQE and the simulation drains at
// the crash instant instead of being pinned a backoff (or a whole retry
// ladder) into the future by a timer that would only fire to find the QP
// already dead.
func TestCrashMidRnrBackoffCancelsTimers(t *testing.T) {
	r := newRig(t)
	// No receive is ever posted: the send is RNR-NAKed and the sender backs
	// off, doubling each round. By 4us it has been NAKed at least twice and
	// is waiting out a backoff with the retry timer armed.
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1},
		})
	})
	crashAt := units.Microseconds(4)
	r.k.At(crashAt, func() { r.nic0.Crash() })
	r.k.Run()

	if !r.qp0.Errored || r.qp0.QPFails != 1 {
		t.Fatalf("errored=%v qpfails=%d, want errored QP", r.qp0.Errored, r.qp0.QPFails)
	}
	// The crash hit mid-ladder, not after natural exhaustion.
	if r.qp0.RnrRetransmits == 0 || r.qp0.RnrRetransmits >= uint64(DefaultRnrRetryLimit) {
		t.Errorf("retransmit rounds = %d, want mid-ladder (0 < n < %d)",
			r.qp0.RnrRetransmits, DefaultRnrRetryLimit)
	}
	if r.qp0.RetryExhausted != 0 {
		t.Errorf("RetryExhausted = %d, want 0 (crash, not budget exhaustion)", r.qp0.RetryExhausted)
	}
	// Timer hygiene: with the backoff timer cancelled nothing outlives the
	// crash, so virtual time stops at the crash instant. A leaked timer
	// would fire 2-32us later and push the end-time out.
	if end := r.k.Now(); end > crashAt+units.Microseconds(1) {
		t.Errorf("simulation ended at %v, want ~%v (leaked recovery timer?)", end, crashAt)
	}
	// The outstanding WQE retired with exactly one fatal completion.
	if r.qp0.CQEsWritten != 1 {
		t.Fatalf("CQEs written = %d, want 1 fatal CQE", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQEReq || cqe.Status != mlx.CQEFatalErr || cqe.WQECounter != 0 {
		t.Errorf("crash CQE = %+v, want CQEReq status=%d counter=0", cqe, mlx.CQEFatalErr)
	}
}

// TestCrashFlushesDoorbellWQEs: descriptors rung via the DoorBell around a
// crash must all terminate with completions — fetched or not. Software's
// in-flight accounting counts posted WQEs against CQEs, so a rung
// descriptor that silently vanishes wedges every layer above.
func TestCrashFlushesDoorbellWQEs(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 256, 8)
	for i := 0; i < 3; i++ {
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: uint16(i), QPN: r.qp0.QPN,
			Payload: []byte{byte(10 + i)}, RemoteAddr: dst.Base + uint64(i),
		}
		enc, _ := w.Encode()
		r.mem0.Write(r.qp0.SQ.EntryAddr(uint16(i)), enc[:])
	}
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 3)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	// The crash lands while the doorbell MWr or the first descriptor fetch
	// is still in flight on PCIe: the driver must flush whatever the device
	// never got to.
	r.k.At(units.Nanoseconds(300), func() { r.nic0.Crash() })
	r.k.Run()

	if !r.qp0.Errored {
		t.Fatal("QP not errored after NIC crash")
	}
	// Every rung descriptor terminated: three completions, all errors, in
	// counter order.
	if r.qp0.CQEsWritten != 3 {
		t.Fatalf("CQEs written = %d, want 3 (one per rung WQE)", r.qp0.CQEsWritten)
	}
	for i := uint16(0); i < 3; i++ {
		cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(i), mlx.CQESize))
		if err != nil {
			t.Fatal(err)
		}
		if cqe.Status == mlx.CQEOK {
			t.Errorf("CQE %d completed OK on a crashed NIC: %+v", i, cqe)
		}
		if cqe.WQECounter != i {
			t.Errorf("CQE %d carries counter %d, want counter order preserved", i, cqe.WQECounter)
		}
	}
}

// TestCrashFlushesPostedRecvs: posted receives on a crashed NIC flush with
// error recv CQEs (and count in FlushedRecvs), so a blocked receiver learns
// its buffers are dead instead of waiting forever.
func TestCrashFlushesPostedRecvs(t *testing.T) {
	r := newRig(t)
	r.k.At(0, func() {
		r.qp1.PostRecv(0)
		r.qp1.PostRecv(0)
	})
	r.k.At(units.Microseconds(1), func() { r.nic1.Crash() })
	r.k.Run()

	if r.qp1.FlushedRecvs != 2 || r.qp1.RecvPosted() != 0 {
		t.Fatalf("FlushedRecvs=%d RecvPosted=%d, want both receives flushed",
			r.qp1.FlushedRecvs, r.qp1.RecvPosted())
	}
	for i := uint16(0); i < 2; i++ {
		cqe, err := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(i), mlx.CQESize))
		if err != nil {
			t.Fatal(err)
		}
		if cqe.Op != mlx.CQERecv || cqe.Status != mlx.CQEFlushErr {
			t.Errorf("recv CQE %d = %+v, want CQERecv status=%d", i, cqe, mlx.CQEFlushErr)
		}
	}
	s := r.nic1.Stats()
	if s.FlushedRecvs != 2 || s.QPFails != 1 {
		t.Errorf("nic stats = %+v, want FlushedRecvs=2 QPFails=1", s)
	}
	// A restart wipes the QP table but keeps the dead generation's counters.
	r.nic1.Restart()
	if r.nic1.Dead() {
		t.Error("NIC still dead after Restart")
	}
	if s := r.nic1.Stats(); s.FlushedRecvs != 2 {
		t.Errorf("retired FlushedRecvs = %d, want counters to survive restart", s.FlushedRecvs)
	}
}
