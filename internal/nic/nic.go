// Package nic models the network adapter (ConnectX-4 flavoured) as a PCIe
// endpoint plus a fabric port.
//
// Both descriptor-delivery paths from the paper's §2 are implemented:
//
//   - DoorBell + DMA: software writes the WQE into the send queue ring in
//     host memory, rings the 8-byte DoorBell (MWr), and the NIC DMA-reads
//     the descriptor (MRd/CplD) and, for non-inline payloads, the payload
//     (second MRd/CplD) — the two PCIe round trips the paper highlights as
//     expensive.
//   - PIO (BlueFlame) + inlining: software copies the whole 64-byte WQE,
//     payload included, to device memory in one MWr; the NIC transmits
//     without any DMA read.
//
// Completions: on the transport ACK from the target NIC, a signaled WQE
// produces a 64-byte CQE DMA-written (MWr) to the completion queue; with
// unsignaled completions only every c-th WQE is signaled and one CQE retires
// the whole batch (paper §6). Inbound small sends are delivered as a single
// DMA write of a CQE with inline-scattered payload, so the payload and its
// completion become visible to the polling CPU together.
//
// # Receive-side backpressure: deferred release and RNR NAK
//
// A delivered data frame is not released back to the fabric until every
// host-memory write it generated (the RDMA payload MWr, the receive-buffer
// MWr, the CQE MWr) has actually been issued on the PCIe link. While a
// write sits credit-blocked in the link's pend queue the frame stays held,
// which — because the topology fabric returns the final-hop buffer credit
// only on release — turns receiver-side PCIe overload into hop-by-hop
// fabric backpressure toward the senders for free.
//
// Config.RxBudget bounds how many frames may be held this way. A frame
// arriving with the budget full (or an inbound send with no receive
// posted) is refused with an RNR NAK carrying the refused WQE's counter;
// the target QP then discards every data frame until that counter is
// retransmitted (go-back-N: the trailing in-flight frames are out of
// protocol). The initiator backs off exponentially
// (Config.RnrBackoff..RnrBackoffMax), replays its whole outstanding tail
// from the fixed per-QP retransmit ring, and — after Config.RnrRetryLimit
// consecutive NAKs for the same WQE — fails the QP with an error CQE
// (mlx.CQERnrRetryExc) that retires every outstanding WQE as undelivered.
// With RxBudget zero there is no buffering NAK — held frames are bounded
// only by the fabric's link credits — but a send arriving with no receive
// posted is still RNR-NAKed and retried (that case used to drop silently
// into an RNRDrops counter, stalling the sender forever). See
// ARCHITECTURE.md for how this composes with the PCIe and topology credit
// loops.
//
// The device datapath is allocation-free in steady state: TLPs and frames
// come from the link/network pools (the NIC releases everything delivered
// to it, per the pcie/fabric borrow contracts), DMA-read completions
// dispatch through typed continuation records instead of closures (with
// reads past the 256-tag space queued FIFO rather than failing), and
// descriptors decode into per-QP scratch WQEs whose payload buffers are
// reused. The overload path recycles too: NAK frames and backoff timer
// events are pooled, the retransmit ring and the pend-mirror FIFO reuse
// their buffers, so NAK/retry stays inside the same allocation budget as
// the uncontended path (enforced by internal/simbench).
package nic

import (
	"encoding/binary"
	"fmt"
	"sort"

	"breakband/internal/fabric"
	"breakband/internal/memsim"
	"breakband/internal/mlx"
	"breakband/internal/pcie"
	"breakband/internal/sim"
	"breakband/internal/trace"
	"breakband/internal/units"
)

// Config parameterizes the device.
type Config struct {
	// TxProcess is the NIC pipeline delay from descriptor availability to
	// first wire byte. The paper folds NIC processing into its Wire
	// measurement; it defaults to zero and stays configurable.
	TxProcess units.Time
	// RxProcess is the pipeline delay on inbound frames before DMA.
	RxProcess units.Time
	// AckProcess is the delay from inbound-frame handling to the
	// transport ACK (or RNR NAK) emission.
	AckProcess units.Time
	// BARStride is the device-memory span reserved per QP.
	BARStride uint64

	// RxBudget bounds receive-side pend buffering: the number of inbound
	// data frames the NIC may hold while their host-memory writes wait for
	// PCIe posted credits. A delivered frame is only released back to the
	// fabric (returning its final-hop buffer credit) once every MWr it
	// generated has actually been issued on the link, so held frames
	// backpressure the fabric hop by hop; when RxBudget frames are already
	// held, further data frames are refused with an RNR NAK and the sender
	// retries after a backoff. Zero means unbounded (the pre-RNR
	// behaviour: the NIC buffers everything and the PCIe pend queue grows
	// with overload).
	RxBudget int
	// RxBudgetPerQP additionally bounds how many of the held frames may
	// belong to a single QP. A frame that would push its target QP past
	// the per-QP budget is refused with an RNR NAK even while the NIC-wide
	// budget has room, so one overloaded QP cannot monopolize the shared
	// pend buffering and starve its siblings. Zero disables the per-QP
	// bound (the default; per-QP held counts are still tracked).
	RxBudgetPerQP int
	// RnrRetryLimit is how many RNR retransmit attempts a QP may make for
	// the same head-of-queue WQE before the NIC gives up and writes an
	// error CQE (mlx.CQERnrRetryExc) retiring the whole outstanding tail.
	// The counter resets whenever the QP makes forward progress (an ACK
	// arrives). Zero selects DefaultRnrRetryLimit; negative retries
	// forever (IB's rnr_retry=7 semantics).
	RnrRetryLimit int
	// RnrBackoff is the base sender-side backoff after an RNR NAK; each
	// consecutive NAK for the same WQE doubles it up to RnrBackoffMax.
	// Zero selects DefaultRnrBackoff (zero backoff is not representable —
	// real RNR timers are microseconds, and an instant retry would spin
	// the simulation).
	RnrBackoff units.Time
	// RnrBackoffMax caps the exponential backoff. Zero selects
	// DefaultRnrBackoffMax.
	RnrBackoffMax units.Time
	// RnrNakTimer is the IB-style advertised retry delay the target stamps
	// into the RNR NAKs it sends (AckInfo.Timer). Initiators receiving an
	// advertised timer use it as their backoff base in place of their own
	// RnrBackoff. Zero advertises nothing — initiators fall back to
	// RnrBackoff, bit-identical with the pre-adaptive behaviour.
	RnrNakTimer units.Time

	// AckTimeout is the per-QP local ACK-timeout: how long the initiator
	// waits without transport progress before assuming its unacked tail
	// (or the ACKs for it) was lost and replaying it. Consecutive
	// unanswered timeouts double the wait up to AckTimeoutMax, and each
	// counts against RetryCnt. Zero disables the timer entirely — the
	// lossless-fabric default: no timer events are ever scheduled and
	// behaviour is identical to the pre-reliability NIC.
	AckTimeout units.Time
	// AckTimeoutMax caps the exponential timeout backoff. Zero selects
	// 16 x AckTimeout.
	AckTimeoutMax units.Time
	// RetryCnt is how many transport retries (ACK timeouts plus sequence
	// NAKs) a QP may spend on the same head WQE before the NIC gives up
	// and fails the QP with an error CQE (mlx.CQERetryExc). Resets on any
	// forward progress. Zero selects DefaultRetryCnt; negative retries
	// forever.
	RetryCnt int
}

// RNR retry defaults, applied by New when the Config fields are zero.
const (
	DefaultRnrRetryLimit = 7
	// DefaultRetryCnt mirrors IB's retry_cnt=7.
	DefaultRetryCnt = 7
)

// Default RNR backoff window: ~2 us base (the smallest nonzero IB RNR NAK
// timer class is in that range), doubling to a 32 us cap.
var (
	DefaultRnrBackoff    = units.Microseconds(2)
	DefaultRnrBackoffMax = units.Microseconds(32)
	// DefaultAckTimeout is the ACK-timeout base a lossy-fabric run should
	// start from (internal/node applies it when fault injection is on):
	// comfortably above a healthy round trip, far below a human-visible
	// stall. Note the zero Config value means disabled, not this default.
	DefaultAckTimeout = units.Microseconds(100)
)

// DefaultConfig returns the calibration-neutral configuration.
func DefaultConfig() Config {
	return Config{BARStride: 0x1000}
}

// Register offsets inside a QP's BAR window.
const (
	dbOffset = 0x000 // 8-byte DoorBell register
	bfOffset = 0x100 // 64-byte BlueFlame PIO buffer
)

// txRec tracks an executed, not-yet-acknowledged WQE. It doubles as the
// retransmission record: op and payload are everything needed to rebuild
// the frame when an RNR NAK forces a go-back-N replay (real hardware
// re-reads the WQE from the send queue; the model keeps the equivalent
// state in the ring so the PIO path — whose descriptors never touch host
// memory — replays identically). Records live in a fixed ring sized by the
// send queue depth; payload buffers are reused across ring passes, so the
// steady-state path allocates nothing.
type txRec struct {
	counter  uint16
	signaled bool
	op       fabric.TxOp
	payload  []byte
}

// QP is a queue pair: a send queue, its completion queues, and a reliable
// connection to a remote QP.
type QP struct {
	nic *NIC
	// QPN is the queue pair number, unique per NIC.
	QPN uint32
	// Label optionally names the QP's owner for reports — e.g. a workload
	// cohort ("wl/storm"). Upper layers set it through uct.Ep.SetLabel;
	// the NIC never reads it.
	Label string
	// SQ is the send queue ring in host memory (used by the DoorBell+DMA
	// path; the PIO path bypasses it).
	SQ mlx.Ring
	// SendCQ receives request completions; RecvCQ receives inbound-send
	// completions.
	SendCQ mlx.Ring
	RecvCQ mlx.Ring
	// DBRAddr is the doorbell record (software producer counter) in host
	// memory; DBAddr and BFAddr are the device-memory registers.
	DBRAddr uint64
	DBAddr  uint64
	BFAddr  uint64

	remoteNIC int
	remoteQPN uint32

	// Device-side state.
	fetchNext    uint16 // next WQE counter to DMA-fetch (DoorBell path)
	fetchCounter uint16 // counter of the descriptor currently being fetched
	doorbellPI   uint16 // latest producer counter rung via the DoorBell
	fetching     bool   // a descriptor fetch chain is in flight
	// fetchWQE is the caller-owned scratch the fetch chain decodes into;
	// the fetching flag serializes its use per QP.
	fetchWQE mlx.WQE
	// txRing is the ring of executed, awaiting-ACK WQEs (the retransmit
	// buffer): txRing[txHead] is the oldest outstanding record and txN the
	// live count. Sized to the send queue depth at CreateQP.
	txRing []txRec
	txHead int
	txN    int

	sendCQPI   uint16 // producer counter of SendCQ
	recvCQPI   uint16 // producer counter of RecvCQ
	recvPosted int    // receive credits posted by software
	rqAddrs    []uint64

	// Initiator-side RNR state: awaitingRetry is set between an RNR NAK
	// and its backoff timer firing (new WQEs executed meanwhile are parked
	// in the ring and ride the replay); rnrEv is the pooled backoff event
	// so QP death can cancel it; rnrRetries counts consecutive NAKs for
	// the current head WQE and resets on any ACK.
	awaitingRetry bool
	rnrEv         sim.EventRef
	rnrRetries    int
	// Initiator-side loss-recovery state (all dormant with AckTimeout
	// zero): retries counts transport retries — ACK timeouts plus sequence
	// NAKs — charged against Config.RetryCnt, resetting on progress.
	// ackArmed marks the QP's single lazy timeout event as scheduled;
	// ackWait is when the QP last saw transport progress (the timeout
	// deadline is ackWait plus the current effective timeout); tmoStreak
	// counts consecutive unanswered timeouts, doubling the wait.
	retries   int
	ackArmed  bool
	ackEv     sim.EventRef
	ackWait   units.Time
	tmoStreak int
	// Errored marks a QP that entered the error state — retry-budget
	// exhaustion or a local NIC crash: the NIC wrote an error CQE retiring
	// the outstanding tail and will transmit nothing more. WQEs posted
	// afterwards are flushed with CQEFlushErr completions (counted in
	// Flushed), as ibverbs flushes work requests on an error-state QP.
	Errored bool
	// Flushed counts WQEs flushed unexecuted on an errored QP.
	Flushed uint64
	// QPFails counts transitions into the error state (at most one per
	// QP); FlushedRecvs counts posted receives flushed with error CQEs
	// when the local NIC crashed.
	QPFails      uint64
	FlushedRecvs uint64

	// Receive-side pend accounting for this QP: rxHeld counts the NIC's
	// held frames that target this QP (its share of NIC.RxHeld), rxHeldMax
	// the per-QP high-water mark. With Config.RxBudgetPerQP > 0 admission
	// refuses frames that would push rxHeld past the per-QP budget.
	rxHeld    int
	rxHeldMax int

	// Target-side recovery state: after refusing a frame (RNR) or seeing
	// a sequence gap the QP discards every data frame until the expected
	// PSN (rxResume, always the current rxPSN) is retransmitted — the
	// trailing in-flight frames of a go-back-N replay window arrive out
	// of protocol and are dropped exactly once each.
	rxRecovery bool
	rxResume   uint16
	// rxPSN is the next expected packet sequence number: frames below it
	// are duplicates (suppressed and cumulatively re-ACKed), frames above
	// it are a gap (discarded, answered with one SeqNak per recovery
	// round).
	rxPSN uint16

	// Counters for tests and reports.
	TxFrames, RxFrames, CQEsWritten uint64
	// RNR / retry statistics. Sent/Discarded count on the target side,
	// Recv/Retransmits/Exhausted on the initiator side; RnrStall is the
	// initiator's accumulated backoff time.
	RNRNaksSent    uint64
	RxDiscarded    uint64
	RNRNaksRecv    uint64
	RnrRetransmits uint64
	RetryExhausted uint64
	RnrStall       units.Time
	// Loss-recovery statistics. SeqNaksSent/DupRxFrames count on the
	// target side (sequence gaps NAKed; duplicate deliveries suppressed),
	// SeqNaksRecv/AckTimeouts/Retransmits on the initiator side
	// (Retransmits counts individual frame replays from every recovery
	// path: RNR, sequence NAK and ACK timeout).
	SeqNaksSent uint64
	SeqNaksRecv uint64
	DupRxFrames uint64
	AckTimeouts uint64
	Retransmits uint64
}

// dmaKind selects the typed continuation an MRd completion dispatches to.
type dmaKind uint8

const (
	dmaNone         dmaKind = iota // tag not in use
	dmaWQEFetch                    // descriptor fetch; continues in onWQEFetched
	dmaPayloadFetch                // gather payload fetch; continues in onPayloadFetched
)

// dmaCont is the typed continuation record for one outstanding DMA read —
// the closure-free replacement for the old map of func(*pcie.TLP).
type dmaCont struct {
	kind dmaKind
	qp   *QP
}

// dmaReq is a DMA read waiting for a free tag. The PCIe tag space allows
// 256 outstanding reads; requests beyond that queue here (FIFO) instead of
// failing, exactly as hardware would throttle descriptor fetches.
type dmaReq struct {
	addr uint64
	n    int
	kind dmaKind
	qp   *QP
}

// NIC is the device model.
type NIC struct {
	k    *sim.Kernel
	id   int
	mem  *memsim.Memory
	link *pcie.Link
	net  fabric.Deliverer
	cfg  Config
	// tr is the kernel's event tracer, captured at construction (nil when
	// tracing is disabled — every emit site is behind one pointer test).
	// The NIC is the trace authority for frame identity: it stamps a fresh
	// TID on every transmission (replays included), so each flight is
	// distinguishable downstream.
	tr *trace.Tracer

	qps     map[uint32]*QP
	byBAR   map[uint64]*QP // BAR window base -> QP
	nextQPN uint32
	barNext uint64

	// Endpoint-failure state. dead marks a crashed NIC (inbound frames
	// discard, WQEs flush, nothing transmits); everCrashed stays set across
	// a restart so frames addressed to a wiped pre-crash QP generation
	// discard instead of panicking. retired accumulates the counters of
	// QPs wiped by Restart so Stats survives the generation change;
	// crashDiscards counts frames discarded because the NIC was dark (or
	// addressed a wiped QP).
	dead          bool
	everCrashed   bool
	retired       Stats
	crashDiscards uint64

	// DMA-read engine: typed continuations indexed by PCIe tag, plus the
	// FIFO of reads blocked on tag exhaustion.
	nextTag       uint8
	inflight      [256]dmaCont
	inflightReads int
	dmaPending    []dmaReq

	// bfWQE is the scratch descriptor BlueFlame PIO writes decode into
	// (consumed synchronously by execWQE).
	bfWQE mlx.WQE

	// Receive-side pend accounting. rxHeld counts delivered data frames
	// whose host-memory writes are still credit-blocked on the PCIe link
	// (the frame stays unreleased — and its final-hop fabric credit stays
	// consumed — until the last write issues); rxHeldMax is the high-water
	// mark. upPendQ mirrors the link's upstream pend queue slot for slot:
	// one entry per credit-blocked TLP, holding the frame whose write it
	// is (nil for TLPs not tied to a frame, e.g. descriptor-fetch MRds).
	rxHeld    int
	rxHeldMax int
	upPendQ   frameFIFO

	// Continuations, bound once so the optional processing delays
	// (TxProcess/RxProcess/AckProcess) and the RNR backoff / ACK-timeout
	// timers schedule without closures.
	txFrameFn    func(any)
	rxFrameFn    func(any)
	sendAckFn    func(any)
	retransmitFn func(any)
	ackTimeoutFn func(any)
}

// frameFIFO is a growable ring of frame pointers (nil entries allowed). Its
// capacity reaches a high-water mark bounded by the rx budget and is reused
// thereafter, keeping the overload path allocation-free in steady state.
type frameFIFO struct {
	buf  []*fabric.Frame
	head int
	n    int
}

func (q *frameFIFO) push(f *fabric.Frame) {
	if q.n == len(q.buf) {
		nb := make([]*fabric.Frame, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = nb, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = f
	q.n++
}

func (q *frameFIFO) pop() *fabric.Frame {
	if q.n == 0 {
		panic("nic: pend FIFO underflow (issue notification without a pended TLP)")
	}
	f := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return f
}

var (
	_ pcie.Receiver = (*NIC)(nil)
	_ fabric.Port   = (*NIC)(nil)
)

// New creates a NIC with the given fabric identity, attaching it to the PCIe
// link's endpoint side and to the network (any fabric.Deliverer: the
// two-endpoint fabric.Network or a compiled internal/topo topology).
func New(k *sim.Kernel, id int, mem *memsim.Memory, link *pcie.Link, net fabric.Deliverer, cfg Config) *NIC {
	if cfg.BARStride == 0 {
		cfg.BARStride = 0x1000
	}
	if cfg.RnrRetryLimit == 0 {
		cfg.RnrRetryLimit = DefaultRnrRetryLimit
	}
	if cfg.RnrBackoff == 0 {
		cfg.RnrBackoff = DefaultRnrBackoff
	}
	if cfg.RnrBackoffMax == 0 {
		cfg.RnrBackoffMax = DefaultRnrBackoffMax
	}
	if cfg.RetryCnt == 0 {
		cfg.RetryCnt = DefaultRetryCnt
	}
	if cfg.AckTimeoutMax == 0 {
		cfg.AckTimeoutMax = 16 * cfg.AckTimeout
	}
	n := &NIC{
		k: k, id: id, mem: mem, link: link, net: net, cfg: cfg, tr: k.Tracer(),
		qps:     make(map[uint32]*QP),
		byBAR:   make(map[uint64]*QP),
		barNext: pcie.BARBase,
	}
	n.txFrameFn = func(a any) { n.net.Send(a.(*fabric.Frame)) }
	n.rxFrameFn = func(a any) { n.handleFrame(a.(*fabric.Frame)) }
	n.sendAckFn = func(a any) { n.net.SendAck(a.(*fabric.Frame)) }
	n.retransmitFn = func(a any) { n.retransmit(a.(*QP)) }
	n.ackTimeoutFn = func(a any) { n.ackTimeout(a.(*QP)) }
	link.SetEndpointSide(n)
	link.SetOnUpIssued(n.upIssued)
	net.Attach(id, n)
	return n
}

// RxHeld reports the data frames currently held awaiting their PCIe writes;
// RxHeldMax is the run's high-water mark. With Config.RxBudget > 0 the
// high-water mark never exceeds the budget.
func (n *NIC) RxHeld() int { return n.rxHeld }

// RxHeldMax reports the deepest receive-side pend buffering the NIC
// reached.
func (n *NIC) RxHeldMax() int { return n.rxHeldMax }

// RxBudget reports the configured receive-side pend budget (0 = unbounded).
func (n *NIC) RxBudget() int { return n.cfg.RxBudget }

// RxBudgetPerQP reports the configured per-QP pend budget (0 = disabled).
func (n *NIC) RxBudgetPerQP() int { return n.cfg.RxBudgetPerQP }

// RxHeld reports the held data frames currently targeting this QP — its
// share of the NIC-wide NIC.RxHeld.
func (q *QP) RxHeld() int { return q.rxHeld }

// RxHeldMax reports the QP's held-frame high-water mark. With
// Config.RxBudgetPerQP > 0 it never exceeds the per-QP budget.
func (q *QP) RxHeldMax() int { return q.rxHeldMax }

// ID reports the NIC's fabric identity.
func (n *NIC) ID() int { return n.id }

// Stats aggregates transport counters across the NIC's QPs, the
// fault/recovery observability surface (bbperftest reports it).
type Stats struct {
	TxFrames, RxFrames, CQEsWritten uint64
	// Target side.
	RNRNaksSent, SeqNaksSent, RxDiscarded, DupRxFrames uint64
	// Initiator side.
	RNRNaksRecv, SeqNaksRecv, AckTimeouts uint64
	RnrRetransmits, Retransmits           uint64
	RetryExhausted, Flushed               uint64
	// Endpoint-failure counters: QP error-state transitions, frames
	// discarded because the NIC was dark (or addressed a wiped pre-crash
	// QP), and posted receives flushed by a local crash.
	QPFails, CrashDiscards, FlushedRecvs uint64
}

// addQP folds one QP's counters into the aggregate.
func (s *Stats) addQP(qp *QP) {
	s.TxFrames += qp.TxFrames
	s.RxFrames += qp.RxFrames
	s.CQEsWritten += qp.CQEsWritten
	s.RNRNaksSent += qp.RNRNaksSent
	s.SeqNaksSent += qp.SeqNaksSent
	s.RxDiscarded += qp.RxDiscarded
	s.DupRxFrames += qp.DupRxFrames
	s.RNRNaksRecv += qp.RNRNaksRecv
	s.SeqNaksRecv += qp.SeqNaksRecv
	s.AckTimeouts += qp.AckTimeouts
	s.RnrRetransmits += qp.RnrRetransmits
	s.Retransmits += qp.Retransmits
	s.RetryExhausted += qp.RetryExhausted
	s.Flushed += qp.Flushed
	s.QPFails += qp.QPFails
	s.FlushedRecvs += qp.FlushedRecvs
}

// Stats sums the per-QP transport counters (including QP generations wiped
// by a crash-restart) plus the NIC-level crash discards.
func (n *NIC) Stats() Stats {
	s := n.retired
	for _, qp := range n.qps {
		s.addQP(qp)
	}
	s.CrashDiscards = n.crashDiscards
	return s
}

// QPs returns the live queue pairs in QPN order — the per-QP breakdown of
// the transport counters the aggregate Stats sums. Generations wiped by a
// crash-restart are only visible in the aggregate.
func (n *NIC) QPs() []*QP {
	out := make([]*QP, 0, len(n.qps))
	for _, qp := range n.qps {
		out = append(out, qp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QPN < out[j].QPN })
	return out
}

// CreateQP allocates a queue pair with the given ring depths (powers of
// two). Ring memory and the doorbell record are allocated from host memory;
// the DoorBell and BlueFlame registers from the device BAR.
func (n *NIC) CreateQP(sqDepth, cqDepth int) *QP {
	qpn := n.nextQPN
	n.nextQPN++
	base := n.barNext
	n.barNext += n.cfg.BARStride

	dbr := n.mem.Alloc(fmt.Sprintf("nic%d.qp%d.dbr", n.id, qpn), 8, 8)
	qp := &QP{
		nic:     n,
		QPN:     qpn,
		SQ:      mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.sq", n.id, qpn), sqDepth, mlx.WQESize),
		SendCQ:  mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.scq", n.id, qpn), cqDepth, mlx.CQESize),
		RecvCQ:  mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.rcq", n.id, qpn), cqDepth, mlx.CQESize),
		DBRAddr: dbr.Base,
		DBAddr:  base + dbOffset,
		BFAddr:  base + bfOffset,
		// The retransmit ring holds every executed-but-unacknowledged
		// WQE; software cannot keep more than sqDepth in flight.
		txRing: make([]txRec, sqDepth),
	}
	n.qps[qpn] = qp
	n.byBAR[base] = qp
	return qp
}

// Connect establishes the reliable connection between two QPs on different
// NICs (both directions).
func Connect(a, b *QP) {
	a.remoteNIC, a.remoteQPN = b.nic.id, b.QPN
	b.remoteNIC, b.remoteQPN = a.nic.id, a.QPN
}

// PostRecv adds one receive credit (with its buffer address, used only for
// payloads too large for CQE inline scatter).
func (qp *QP) PostRecv(addr uint64) {
	qp.recvPosted++
	qp.rqAddrs = append(qp.rqAddrs, addr)
}

// RecvPosted reports available receive credits.
func (qp *QP) RecvPosted() int { return qp.recvPosted }

// ---------- PCIe endpoint side ----------

// RxTLP implements pcie.Receiver for downstream traffic. The NIC consumes
// every delivered TLP synchronously (decoding or copying what it needs) and
// releases it before returning.
func (n *NIC) RxTLP(t *pcie.TLP) {
	switch t.Type {
	case pcie.MWr:
		n.rxMMIO(t)
	case pcie.CplD:
		rec := n.inflight[t.Tag]
		if rec.kind == dmaNone {
			panic(fmt.Sprintf("nic%d: CplD with unknown tag %d", n.id, t.Tag))
		}
		n.inflight[t.Tag] = dmaCont{}
		n.inflightReads--
		switch rec.kind {
		case dmaWQEFetch:
			rec.qp.onWQEFetched(t.Data)
		case dmaPayloadFetch:
			rec.qp.onPayloadFetched(t.Data)
		}
		// The freed tag (and any the continuation released) goes to the
		// oldest queued reads, preserving issue order.
		for n.inflightReads < len(n.inflight) && len(n.dmaPending) > 0 {
			rq := n.dmaPending[0]
			n.dmaPending = n.dmaPending[1:]
			if len(n.dmaPending) == 0 {
				n.dmaPending = nil
			}
			n.issueDMARead(rq.addr, rq.n, rq.kind, rq.qp)
		}
	default:
		panic(fmt.Sprintf("nic%d: unexpected downstream %v", n.id, t.Type))
	}
	t.Release()
}

// rxMMIO decodes a device-memory write: an 8-byte DoorBell ring or a 64-byte
// BlueFlame PIO descriptor.
func (n *NIC) rxMMIO(t *pcie.TLP) {
	base := pcie.BARBase + (t.Addr-pcie.BARBase)/n.cfg.BARStride*n.cfg.BARStride
	qp, ok := n.byBAR[base]
	if !ok {
		panic(fmt.Sprintf("nic%d: MWr to unmapped BAR %#x", n.id, t.Addr))
	}
	switch t.Addr - base {
	case dbOffset:
		if len(t.Data) < 2 {
			panic(fmt.Sprintf("nic%d: short DoorBell write (%d bytes)", n.id, len(t.Data)))
		}
		qp.ringDoorbell(binary.LittleEndian.Uint16(t.Data))
	case bfOffset:
		if err := n.bfWQE.DecodeFrom(t.Data); err != nil {
			panic(fmt.Sprintf("nic%d: bad BlueFlame WQE: %v", n.id, err))
		}
		// A BlueFlame write consumes one producer slot without a DoorBell
		// ring; keep both cursors in step so a later DoorBell post (a gather
		// descriptor sharing this QP) fetches only slots the PIO path has not
		// already delivered. When an older descriptor fetch is still in
		// flight the hint cannot be consumed in order, so fall back to
		// fetching the ring copy software stored alongside the PIO write.
		newPI := n.bfWQE.WQEIdx + 1
		qp.doorbellPI = newPI
		if !qp.fetching && qp.fetchNext == n.bfWQE.WQEIdx {
			qp.fetchNext = newPI
			n.execWQE(qp, &n.bfWQE)
		} else {
			qp.fetchNextWQE()
		}
	default:
		panic(fmt.Sprintf("nic%d: MWr to unknown register offset %#x", n.id, t.Addr-base))
	}
}

// sendUp transmits a TLP towards the RC, mirroring the link's pend queue:
// every credit-blocked TLP pushes one upPendQ entry carrying the inbound
// frame whose host write it is (nil when the TLP is not part of receive
// processing), so upIssued can pop entries in the same FIFO order the link
// reports them.
func (n *NIC) sendUp(t *pcie.TLP, f *fabric.Frame) {
	if n.link.SendUp(t) {
		return
	}
	n.upPendQ.push(f)
	if f != nil {
		f.RxPendWrites++
	}
}

// upIssued is the link's OnUpIssued hook: a previously credit-blocked
// upstream TLP finally transmitted. If it was the last outstanding host
// write of a held inbound frame, the frame is released — returning its
// final-hop fabric buffer credit, which is what makes receiver overload
// backpressure the network instead of accumulating in the PCIe pend queue.
func (n *NIC) upIssued(*pcie.TLP) {
	f := n.upPendQ.pop()
	if f == nil {
		return
	}
	f.RxPendWrites--
	if f.RxPendWrites == 0 {
		n.rxHeld--
		// The frame is still alive here, so its target QP is recoverable
		// the same way rxData resolved it at admission.
		if qp, ok := n.qps[f.Op.DstQPN]; ok {
			qp.rxHeld--
		}
		if n.tr != nil && f.TID != 0 {
			n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvRelease, TID: f.TID, Node: int16(n.id)})
		}
		f.Release()
	}
}

// dmaRead issues an MRd with a typed completion record, or queues the
// request when the 256-entry tag space is exhausted (or older requests are
// already queued — FIFO order is preserved either way).
func (n *NIC) dmaRead(addr uint64, ln int, kind dmaKind, qp *QP) {
	if n.inflightReads == len(n.inflight) || len(n.dmaPending) > 0 {
		n.dmaPending = append(n.dmaPending, dmaReq{addr: addr, n: ln, kind: kind, qp: qp})
		return
	}
	n.issueDMARead(addr, ln, kind, qp)
}

// issueDMARead sends the MRd on a free tag. The caller guarantees one
// exists (inflightReads < 256).
func (n *NIC) issueDMARead(addr uint64, ln int, kind dmaKind, qp *QP) {
	for n.inflight[n.nextTag].kind != dmaNone {
		n.nextTag++
	}
	tag := n.nextTag
	n.nextTag++
	n.inflight[tag] = dmaCont{kind: kind, qp: qp}
	n.inflightReads++
	t := n.link.NewTLP()
	t.Type = pcie.MRd
	t.Addr = addr
	t.ReadLen = ln
	t.Tag = tag
	n.sendUp(t, nil)
}

// ringDoorbell handles the 8-byte DoorBell: the NIC learns the new producer
// counter and fetches the outstanding descriptors by DMA, strictly in order.
func (qp *QP) ringDoorbell(newPI uint16) {
	qp.doorbellPI = newPI
	qp.fetchNextWQE()
}

// flushRungWQEs is the dead-device descriptor path: the driver flushes the
// rung-but-unfetched descriptors with error completions so software's
// in-flight accounting still terminates.
func (qp *QP) flushRungWQEs() {
	for qp.fetchNext != qp.doorbellPI {
		qp.Flushed++
		qp.nic.hostWriteSendCQE(qp, qp.fetchNext, mlx.CQEFlushErr)
		qp.fetchNext++
	}
}

// fetchNextWQE starts the next descriptor fetch if none is in flight. The
// drain is iterative: each completion event (onWQEFetched/onPayloadFetched)
// executes the descriptor and calls back here to issue the next read, so a
// deep doorbell batch costs constant stack regardless of depth.
func (qp *QP) fetchNextWQE() {
	if qp.nic.dead {
		qp.flushRungWQEs()
		return
	}
	if qp.fetching || qp.fetchNext == qp.doorbellPI {
		return
	}
	qp.fetching = true
	qp.fetchCounter = qp.fetchNext
	qp.fetchNext++
	qp.nic.dmaRead(qp.SQ.EntryAddr(qp.fetchCounter), mlx.WQESize, dmaWQEFetch, qp)
}

// onWQEFetched continues the fetch chain when the descriptor CplD arrives.
// data is borrowed from the delivered TLP; DecodeFrom copies what the WQE
// keeps.
func (qp *QP) onWQEFetched(data []byte) {
	if err := qp.fetchWQE.DecodeFrom(data); err != nil {
		panic(fmt.Sprintf("nic%d: bad DMA WQE at counter %d: %v", qp.nic.id, qp.fetchCounter, err))
	}
	if qp.fetchWQE.Inline {
		qp.nic.execWQE(qp, &qp.fetchWQE)
		qp.fetching = false
		qp.fetchNextWQE()
		return
	}
	if qp.nic.dead {
		// The NIC died while this descriptor's fetch was in flight: no
		// payload read is possible, so the driver flushes it (and whatever
		// else was rung) instead of gathering.
		qp.Flushed++
		qp.nic.hostWriteSendCQE(qp, qp.fetchCounter, mlx.CQEFlushErr)
		qp.fetching = false
		qp.flushRungWQEs()
		return
	}
	// Second round trip: fetch the payload from registered memory.
	qp.nic.dmaRead(qp.fetchWQE.GatherAddr, int(qp.fetchWQE.GatherLen), dmaPayloadFetch, qp)
}

// onPayloadFetched completes a gather descriptor: the payload is copied out
// of the borrowed CplD data into the scratch WQE, which is then executed.
func (qp *QP) onPayloadFetched(data []byte) {
	qp.fetchWQE.Payload = append(qp.fetchWQE.Payload[:0], data...)
	qp.nic.execWQE(qp, &qp.fetchWQE)
	qp.fetching = false
	qp.fetchNextWQE()
}

// execWQE records a decoded descriptor in the retransmit ring and transmits
// it onto the fabric. The WQE (often a scratch) is consumed synchronously:
// its payload is copied into the ring record and from there into the pooled
// frame. The outstanding record is made at execution time; with a nonzero
// TxProcess the frame itself leaves TxProcess later, which cannot be
// observed out of order because the transport ACK consuming the record
// travels behind the frame. While the QP is waiting out an RNR backoff the
// frame is not transmitted: the record rides the go-back-N replay instead.
func (n *NIC) execWQE(qp *QP, w *mlx.WQE) {
	if w.QPN != qp.QPN {
		panic(fmt.Sprintf("nic%d: WQE qpn %d posted to qp %d", n.id, w.QPN, qp.QPN))
	}
	if qp.Errored {
		// The QP already failed (retry exhaustion or a NIC crash) but
		// software may not have polled the error CQE yet: flush the WQE
		// with an error completion instead of transmitting, as ibverbs
		// does (IBV_WC_WR_FLUSH_ERR). The completion keeps the
		// software-side in-flight accounting consistent. On a dead NIC the
		// flush CQE is driver-synthesized straight into host memory.
		qp.Flushed++
		if n.dead {
			n.hostWriteSendCQE(qp, w.WQEIdx, mlx.CQEFlushErr)
		} else {
			n.writeSendCQE(qp, w.WQEIdx, mlx.CQEFlushErr)
		}
		return
	}
	if qp.txN == len(qp.txRing) {
		panic(fmt.Sprintf("nic%d: qp %d outstanding ring overflow (%d WQEs unacknowledged)", n.id, qp.QPN, qp.txN))
	}
	rec := &qp.txRing[(qp.txHead+qp.txN)%len(qp.txRing)]
	qp.txN++
	rec.counter = w.WQEIdx
	rec.signaled = w.Signaled
	rec.op = fabric.TxOp{
		Opcode:  uint8(w.Opcode),
		SrcQPN:  qp.QPN,
		DstQPN:  qp.remoteQPN,
		RAddr:   w.RemoteAddr,
		AmID:    w.AmID,
		Counter: w.WQEIdx,
	}
	rec.payload = append(rec.payload[:0], w.Payload...)
	qp.TxFrames++
	if n.cfg.AckTimeout > 0 {
		if qp.txN == 1 {
			// First outstanding WQE: the progress clock starts now.
			qp.ackWait = n.k.Now()
		}
		n.armAckTimer(qp)
	}
	if qp.awaitingRetry {
		return
	}
	n.txRecFrame(qp, rec)
}

// txRecFrame builds the wire frame for a ring record and transmits it (the
// shared tail of first transmission and RNR replay).
func (n *NIC) txRecFrame(qp *QP, rec *txRec) {
	f := n.net.NewFrame()
	f.Kind = fabric.Data
	f.Src = n.id
	f.Dst = qp.remoteNIC
	f.Bytes = len(rec.payload)
	f.Op = rec.op
	f.PSN = rec.counter
	f.SetPayload(rec.payload)
	if n.tr != nil {
		f.TID = n.tr.NextTID()
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvInject, TID: f.TID,
			Node: int16(n.id), Arg: trace.ArgMsg(qp.QPN, len(rec.payload), uint32(rec.counter))})
	}
	if n.cfg.TxProcess > 0 {
		n.k.AfterArg(n.cfg.TxProcess, n.txFrameFn, f)
		return
	}
	n.net.Send(f)
}

// ---------- fabric port side ----------

// RxFrame implements fabric.Port. The NIC owns the delivered frame until
// handleFrame releases it (after the optional RxProcess delay).
func (n *NIC) RxFrame(f *fabric.Frame) {
	if n.cfg.RxProcess > 0 {
		n.k.AfterArg(n.cfg.RxProcess, n.rxFrameFn, f)
		return
	}
	n.handleFrame(f)
}

// handleFrame dispatches a delivered frame and releases it — immediately
// for ACKs, NAKs, refused and discarded data frames, or once the last
// host-memory write of an accepted data frame has been issued on the PCIe
// link (rxData reports true for frames held that way; upIssued performs the
// deferred release).
func (n *NIC) handleFrame(f *fabric.Frame) {
	if n.dead {
		// The NIC is dark: whatever arrives is dropped on the floor. Peers
		// discover the death through their own ACK-timeout path.
		n.crashDiscards++
		if n.tr != nil && f.TID != 0 {
			n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvDrop, TID: f.TID, Node: int16(n.id)})
			n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvRelease, TID: f.TID, Node: int16(n.id)})
		}
		f.Release()
		return
	}
	switch f.Kind {
	case fabric.Data:
		if n.rxData(f) {
			return
		}
	case fabric.TransportAck:
		n.rxAck(f.Ack)
	case fabric.RnrNak:
		n.rxNak(f.Ack)
	case fabric.SeqNak:
		n.rxSeqNak(f.Ack)
	}
	// ACK-class frames are never TID-stamped, so this release emit covers
	// exactly the data frames that were not held for deferred release:
	// refused, discarded and duplicate flights (already marked dead) plus
	// accepted frames whose host writes all issued immediately.
	if n.tr != nil && f.TID != 0 {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvRelease, TID: f.TID, Node: int16(n.id)})
	}
	f.Release()
}

// rxData handles an inbound data frame on the target NIC, reporting whether
// the frame is held for deferred release. The frame's payload is borrowed;
// everything the NIC forwards is copied into pooled TLPs before rxData
// returns.
//
// Sequence checking runs first (IB RC BTH PSN semantics): a frame below
// the expected PSN is a duplicate — already delivered, replayed because an
// acknowledgement was lost — and is suppressed with a cumulative re-ACK; a
// frame above it is a gap — something before it was lost — and is
// discarded, answered with one sequence-error NAK per recovery round (the
// trailing frames of a go-back-N replay window drop silently). Then
// admission control: a frame that would exceed the rx pend budget — or a
// send with no receive posted — is refused with an RNR NAK instead of
// being buffered.
func (n *NIC) rxData(f *fabric.Frame) (held bool) {
	op := &f.Op
	qp, ok := n.qps[op.DstQPN]
	if !ok {
		if n.everCrashed {
			// A frame addressed to a QP generation wiped by crash-restart:
			// stale traffic from before the death, silently discarded.
			n.crashDiscards++
			n.traceDrop(f)
			return false
		}
		panic(fmt.Sprintf("nic%d: data frame for unknown qp %d", n.id, op.DstQPN))
	}
	if d := int16(f.PSN - qp.rxPSN); d != 0 {
		if d < 0 {
			// Duplicate: the payload already reached the application
			// exactly once; only the acknowledgement needs repair.
			qp.DupRxFrames++
			n.traceDrop(f)
			n.emitAck(n.net.AckFor(f, fabric.AckInfo{QPN: op.SrcQPN, Counter: qp.rxPSN - 1}))
			return false
		}
		qp.RxDiscarded++
		n.traceDrop(f)
		if !qp.rxRecovery {
			qp.SeqNaksSent++
			qp.rxRecovery = true
			qp.rxResume = qp.rxPSN
			nak := n.net.AckFor(f, fabric.AckInfo{QPN: op.SrcQPN, Counter: qp.rxPSN})
			nak.Kind = fabric.SeqNak
			n.emitAck(nak)
		}
		return false
	}
	needsRecv := mlx.Opcode(op.Opcode) == mlx.OpSend
	if (n.cfg.RxBudget > 0 && n.rxHeld >= n.cfg.RxBudget) ||
		(n.cfg.RxBudgetPerQP > 0 && qp.rxHeld >= n.cfg.RxBudgetPerQP) ||
		(needsRecv && qp.recvPosted == 0) {
		n.refuse(qp, f)
		return false
	}
	qp.rxRecovery = false
	qp.rxPSN++
	qp.RxFrames++
	payload := f.Payload()
	switch mlx.Opcode(op.Opcode) {
	case mlx.OpRDMAWrite:
		// One-sided: DMA-write the payload to the remote address. No
		// CQE, no CPU involvement on this node.
		t := n.link.NewTLP()
		t.Type = pcie.MWr
		t.Addr = op.RAddr
		t.SetData(payload)
		n.sendUp(t, f)
	case mlx.OpSend:
		qp.recvPosted--
		bufAddr := qp.rqAddrs[0]
		qp.rqAddrs = qp.rqAddrs[1:]
		inline := len(payload) <= mlx.ScatterMax
		cqe := mlx.CQE{
			Op:         mlx.CQERecv,
			WQECounter: qp.recvCQPI,
			QPN:        qp.QPN,
			ByteCnt:    uint32(len(payload)),
			AmID:       op.AmID,
			Gen:        qp.RecvCQ.Gen(qp.recvCQPI),
		}
		if inline {
			// CQE inline scatter: payload and completion arrive in
			// one DMA write (paper's RC-to-MEM(xB) + poll model).
			cqe.Payload = payload
		} else {
			// Large payload: DMA-write to the posted buffer, then
			// the CQE.
			t := n.link.NewTLP()
			t.Type = pcie.MWr
			t.Addr = bufAddr
			t.SetData(payload)
			n.sendUp(t, f)
		}
		enc, err := cqe.Encode()
		if err != nil {
			panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
		}
		t := n.link.NewTLP()
		t.Type = pcie.MWr
		t.Addr = qp.RecvCQ.EntryAddr(qp.recvCQPI)
		t.SetData(enc[:])
		qp.recvCQPI++
		qp.CQEsWritten++
		if n.tr != nil {
			n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvCQE,
				Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(cqe.WQECounter))})
		}
		n.sendUp(t, f)
	default:
		panic(fmt.Sprintf("nic%d: unexpected opcode %v", n.id, mlx.Opcode(op.Opcode)))
	}
	if f.RxPendWrites > 0 {
		// At least one host write is credit-blocked: hold the frame (and
		// its final-hop fabric credit) until the last write issues.
		held = true
		n.rxHeld++
		if n.rxHeld > n.rxHeldMax {
			n.rxHeldMax = n.rxHeld
		}
		qp.rxHeld++
		if qp.rxHeld > qp.rxHeldMax {
			qp.rxHeldMax = qp.rxHeld
		}
	}
	// Transport-level acknowledgement back to the initiator (paper §2
	// step 4).
	n.emitAck(n.net.AckFor(f, fabric.AckInfo{QPN: op.SrcQPN, Counter: op.Counter}))
	return held
}

// emitAck transmits a built acknowledgement (ACK or NAK) frame after the
// configured AckProcess delay.
func (n *NIC) emitAck(ack *fabric.Frame) {
	if n.cfg.AckProcess > 0 {
		n.k.AfterArg(n.cfg.AckProcess, n.sendAckFn, ack)
		return
	}
	n.net.SendAck(ack)
}

// traceDrop marks a delivered-but-discarded data frame's flight dead in the
// trace (duplicate, sequence gap, or stale post-crash traffic) so the
// attribution cannot mistake its release for a message completion.
func (n *NIC) traceDrop(f *fabric.Frame) {
	if n.tr != nil && f.TID != 0 {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvDrop, TID: f.TID, Node: int16(n.id)})
	}
}

// refuse answers a data frame the NIC cannot buffer with an RNR NAK and
// puts the target QP into recovery: every later frame is discarded until
// the refused counter is retransmitted. The NAK advertises
// Config.RnrNakTimer (when set) as the initiator's backoff base.
func (n *NIC) refuse(qp *QP, f *fabric.Frame) {
	qp.RNRNaksSent++
	if n.tr != nil && f.TID != 0 {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvRefuse, TID: f.TID,
			Node: int16(n.id), Arg: trace.ArgMsg(f.Op.SrcQPN, 0, uint32(f.PSN))})
	}
	qp.rxRecovery = true
	qp.rxResume = f.Op.Counter
	nak := n.net.AckFor(f, fabric.AckInfo{QPN: f.Op.SrcQPN, Counter: f.Op.Counter, Timer: n.cfg.RnrNakTimer})
	nak.Kind = fabric.RnrNak
	n.emitAck(nak)
}

// rxAck handles a transport ACK on the initiator NIC. ACKs are cumulative
// (IB coalesced-ACK semantics): the carried counter retires every
// outstanding WQE up to and including it, DMA-writing a CQE for each
// signaled one (paper §2 step 5); unsignaled WQEs complete silently and
// the next signaled CQE's counter retires them at the software level. On a
// lossless fabric each ACK retires exactly the head record, byte-identical
// with the old one-ACK-one-WQE path; under loss a cumulative re-ACK after
// a timeout replay retires the whole duplicated stretch at once, and an
// ACK for an already-retired counter (a duplicated acknowledgement) is
// stale and retires nothing. Any forward progress resets the QP's retry
// accounting — the retry budgets are per head WQE, as on real RC
// transports.
func (n *NIC) rxAck(c fabric.AckInfo) {
	qp, ok := n.qps[c.QPN]
	if !ok {
		if n.everCrashed {
			n.crashDiscards++
			return
		}
		panic(fmt.Sprintf("nic%d: ACK for unknown qp %d", n.id, c.QPN))
	}
	if qp.Errored {
		return
	}
	if n.retireThrough(qp, c.Counter) > 0 {
		qp.rnrRetries = 0
		qp.retries = 0
		qp.tmoStreak = 0
		qp.ackWait = n.k.Now()
	}
}

// retireThrough retires every outstanding record whose counter is at or
// before the acknowledged counter (wraparound-safe), writing OK CQEs for
// the signaled ones, and reports how many records it retired.
func (n *NIC) retireThrough(qp *QP, counter uint16) int {
	retired := 0
	for qp.txN > 0 {
		rec := &qp.txRing[qp.txHead]
		if int16(counter-rec.counter) < 0 {
			break
		}
		cnt, signaled := rec.counter, rec.signaled
		qp.txHead = (qp.txHead + 1) % len(qp.txRing)
		qp.txN--
		retired++
		if signaled {
			n.writeSendCQE(qp, cnt, mlx.CQEOK)
		}
	}
	if qp.ackArmed && qp.txN == 0 {
		// The whole tail is acknowledged: nothing is left for the timer
		// to watch, so cancel it rather than let a dead no-op event pin
		// the simulation end-time a timeout into the future.
		qp.ackArmed = false
		qp.ackEv.Cancel()
	}
	return retired
}

// writeSendCQE DMA-writes a request completion with the given status to the
// QP's send CQ.
func (n *NIC) writeSendCQE(qp *QP, counter uint16, status uint8) {
	cqe := mlx.CQE{
		Op:         mlx.CQEReq,
		WQECounter: counter,
		QPN:        qp.QPN,
		Status:     status,
		Gen:        qp.SendCQ.Gen(qp.sendCQPI),
	}
	enc, err := cqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
	}
	t := n.link.NewTLP()
	t.Type = pcie.MWr
	t.Addr = qp.SendCQ.EntryAddr(qp.sendCQPI)
	t.SetData(enc[:])
	qp.sendCQPI++
	qp.CQEsWritten++
	if n.tr != nil {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvCQE,
			Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(counter))})
	}
	n.sendUp(t, nil)
}

// rxNak handles an RNR NAK on the initiator NIC. On a lossless fabric the
// refused WQE is always the head of the outstanding ring (the transport is
// strictly ordered and the target NAKs at most once per replay round); a
// NAK implicitly acknowledges everything before the refused counter, and
// one whose counter is no longer the head — its replay round was
// superseded while the NAK travelled — is stale and ignored. The QP backs
// off exponentially before replaying the whole outstanding tail: the base
// is the NAK's advertised IB-style timer field when the target set one,
// else Config.RnrBackoff (bit-identical with the pre-adaptive default),
// doubling per consecutive NAK up to Config.RnrBackoffMax (but never below
// the advertised base). When consecutive NAKs for the same WQE exceed
// Config.RnrRetryLimit the QP fails with an error CQE instead.
func (n *NIC) rxNak(c fabric.AckInfo) {
	qp, ok := n.qps[c.QPN]
	if !ok {
		if n.everCrashed {
			n.crashDiscards++
			return
		}
		panic(fmt.Sprintf("nic%d: RNR NAK for unknown qp %d", n.id, c.QPN))
	}
	if qp.Errored {
		return
	}
	n.retireThrough(qp, c.Counter-1)
	if qp.txN == 0 || qp.txRing[qp.txHead].counter != c.Counter {
		return
	}
	qp.RNRNaksRecv++
	qp.rnrRetries++
	if n.cfg.RnrRetryLimit >= 0 && qp.rnrRetries > n.cfg.RnrRetryLimit {
		n.failQP(qp, mlx.CQERnrRetryExc)
		return
	}
	shift := qp.rnrRetries - 1
	if shift > 16 {
		shift = 16
	}
	base := n.cfg.RnrBackoff
	if c.Timer > 0 {
		base = c.Timer
	}
	backoff := base << uint(shift)
	if backoff > n.cfg.RnrBackoffMax {
		backoff = n.cfg.RnrBackoffMax
	}
	if backoff < base {
		backoff = base
	}
	qp.awaitingRetry = true
	qp.RnrStall += backoff
	if n.tr != nil {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvNakRx,
			Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(backoff))})
	}
	qp.rnrEv = n.k.AfterArg(backoff, n.retransmitFn, qp)
}

// rxSeqNak handles a sequence-error NAK on the initiator NIC: the target
// saw a gap at the carried counter, so everything before it arrived (the
// NAK acknowledges cumulatively) and the frame carrying that counter was
// lost on the wire. Unlike RNR there is no receiver-not-ready condition to
// wait out — the tail replays immediately. A SeqNak whose counter is not
// the (post-retirement) head is stale: a newer replay round already
// covered the loss. Each accepted SeqNak counts against Config.RetryCnt.
func (n *NIC) rxSeqNak(c fabric.AckInfo) {
	qp, ok := n.qps[c.QPN]
	if !ok {
		if n.everCrashed {
			n.crashDiscards++
			return
		}
		panic(fmt.Sprintf("nic%d: sequence NAK for unknown qp %d", n.id, c.QPN))
	}
	if qp.Errored {
		return
	}
	n.retireThrough(qp, c.Counter-1)
	if qp.txN == 0 || qp.txRing[qp.txHead].counter != c.Counter {
		return
	}
	qp.SeqNaksRecv++
	qp.retries++
	if n.tr != nil {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvSeqNakRx,
			Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(c.Counter))})
	}
	if n.cfg.RetryCnt >= 0 && qp.retries > n.cfg.RetryCnt {
		n.failQP(qp, mlx.CQERetryExc)
		return
	}
	if qp.awaitingRetry {
		// An RNR backoff already owns the tail; its replay covers this
		// loss too.
		return
	}
	qp.ackWait = n.k.Now()
	n.replayTail(qp)
}

// retransmit is the RNR backoff-timer continuation: it replays every
// outstanding WQE from the NAKed head onwards (go-back-N — the target
// discarded everything behind the refused frame), in order, through the
// normal transmission path.
func (n *NIC) retransmit(qp *QP) {
	if qp.Errored {
		return
	}
	qp.awaitingRetry = false
	qp.RnrRetransmits++
	qp.ackWait = n.k.Now()
	n.replayTail(qp)
}

// replayTail replays every outstanding ring record in order, the shared
// go-back-N tail of all three recovery paths (RNR backoff expiry, sequence
// NAK, ACK timeout).
func (n *NIC) replayTail(qp *QP) {
	if n.tr != nil {
		// One retransmission decision per recovery round (RNR backoff
		// expiry, sequence NAK, ACK timeout); it also closes the open
		// backoff window in the attribution.
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvRetx,
			Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(qp.txN))})
	}
	for i := 0; i < qp.txN; i++ {
		qp.Retransmits++
		n.txRecFrame(qp, &qp.txRing[(qp.txHead+i)%len(qp.txRing)])
	}
}

// armAckTimer lazily schedules the QP's single ACK-timeout event. The
// timer is deliberately approximate: it fires a full timeout after arming
// and re-arms for the remainder if the QP made progress meanwhile, so the
// steady-state cost is one pooled event per timeout window — not one per
// WQE — and zero with AckTimeout disabled.
func (n *NIC) armAckTimer(qp *QP) {
	if n.cfg.AckTimeout == 0 || qp.ackArmed || qp.Errored {
		return
	}
	qp.ackArmed = true
	qp.ackEv = n.k.AfterArg(n.cfg.AckTimeout, n.ackTimeoutFn, qp)
}

// effTimeout is the QP's current effective ACK timeout: the configured
// base doubling per consecutive unanswered timeout, capped at
// AckTimeoutMax.
func (n *NIC) effTimeout(qp *QP) units.Time {
	eff := n.cfg.AckTimeout << uint(qp.tmoStreak)
	if eff > n.cfg.AckTimeoutMax || eff <= 0 {
		eff = n.cfg.AckTimeoutMax
	}
	return eff
}

// ackTimeout is the ACK-timeout continuation. The QP timed out when its
// last transport progress (ackWait) is at least one effective timeout ago
// with WQEs still outstanding: the unacked tail — or every acknowledgement
// for it — was lost, so replay the tail (go-back-N; the target's PSN check
// suppresses any duplicates this creates) and charge a retry. Exhausting
// Config.RetryCnt fails the QP with mlx.CQERetryExc. A QP sitting in an
// RNR backoff is not timed out — the backoff owns the tail — but the timer
// keeps watching in case the NAKed replay itself is lost.
func (n *NIC) ackTimeout(qp *QP) {
	qp.ackArmed = false
	if qp.Errored || qp.txN == 0 {
		return
	}
	eff := n.effTimeout(qp)
	if deadline := qp.ackWait + eff; n.k.Now() < deadline {
		qp.ackArmed = true
		qp.ackEv = n.k.AtArg(deadline, n.ackTimeoutFn, qp)
		return
	}
	if qp.awaitingRetry {
		qp.ackArmed = true
		qp.ackEv = n.k.AfterArg(eff, n.ackTimeoutFn, qp)
		return
	}
	qp.AckTimeouts++
	qp.retries++
	if n.tr != nil {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvAckTimeout,
			Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(eff))})
	}
	if n.cfg.RetryCnt >= 0 && qp.retries > n.cfg.RetryCnt {
		n.failQP(qp, mlx.CQERetryExc)
		return
	}
	if qp.tmoStreak < 16 {
		qp.tmoStreak++
	}
	qp.ackWait = n.k.Now()
	n.replayTail(qp)
	qp.ackArmed = true
	qp.ackEv = n.k.AfterArg(n.effTimeout(qp), n.ackTimeoutFn, qp)
}

// cancelQPTimers cancels the QP's pooled recovery timers — the armed ACK
// timeout and any in-flight RNR backoff. Timer hygiene on QP death: a dead
// timer must never fire on a failed QP (the continuations do guard Errored,
// but a cancelled event also stops pinning the simulation end-time a
// timeout into the future).
func (n *NIC) cancelQPTimers(qp *QP) {
	if qp.ackArmed {
		qp.ackArmed = false
		qp.ackEv.Cancel()
	}
	if qp.awaitingRetry {
		qp.awaitingRetry = false
		qp.rnrEv.Cancel()
	}
}

// failQP gives up on a QP whose retry budget is exhausted: one error CQE
// (status mlx.CQERnrRetryExc for RNR exhaustion, mlx.CQERetryExc for
// transport-retry exhaustion) carrying the newest outstanding counter
// retires the entire outstanding tail as failed — errors always complete,
// signaled or not — and the QP stops transmitting. Pending recovery timers
// are cancelled. WQEs posted afterwards are flushed with CQEFlushErr
// completions (see execWQE).
func (n *NIC) failQP(qp *QP, status uint8) {
	qp.Errored = true
	qp.QPFails++
	qp.RetryExhausted++
	if n.tr != nil {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvFlush,
			Node: int16(n.id), Arg: trace.ArgQP(qp.QPN, uint64(qp.txN))})
	}
	n.cancelQPTimers(qp)
	last := qp.txRing[(qp.txHead+qp.txN-1)%len(qp.txRing)]
	qp.txN = 0
	n.writeSendCQE(qp, last.counter, status)
}

// ---------- endpoint failure model ----------

// Dead reports whether the NIC is currently crashed.
func (n *NIC) Dead() bool { return n.dead }

// Crash takes the NIC dark: every QP enters the error state — outstanding
// WQEs retire with one fatal error CQE, posted receives flush with error
// recv CQEs, recovery timers are cancelled — and from this moment inbound
// frames are discarded and nothing transmits. Local software observes the
// death through the error completions (the driver's async-event path
// synthesizes them straight into host memory; the dead device issues no
// PCIe traffic); remote peers observe silence and fail their own QPs
// through the ACK-timeout → retry-exhaustion path. Crashing a dead NIC is
// a no-op.
func (n *NIC) Crash() {
	if n.dead {
		return
	}
	n.dead = true
	n.everCrashed = true
	if n.tr != nil {
		n.tr.Emit(trace.Event{At: n.k.Now(), Kind: trace.EvCrash, Node: int16(n.id)})
	}
	for _, qp := range n.qps {
		n.crashQP(qp)
	}
}

// Restart brings a crashed NIC back up with its QP table wiped: the dead
// generation's counters fold into the retired accumulator, frames still in
// flight toward wiped QPNs discard on arrival, and recovery requires
// fresh-epoch QPs (CreateQP/Connect again — QPNs and BAR windows never
// reuse, so no stale frame can alias a new QP).
func (n *NIC) Restart() {
	if !n.dead {
		return
	}
	for _, qp := range n.qps {
		n.retired.addQP(qp)
	}
	n.qps = make(map[uint32]*QP)
	n.dead = false
}

// crashQP is the local-death path for one QP: error state, cancelled
// timers, a fatal error CQE for any outstanding tail, and flush CQEs for
// every posted receive. CQEs are written synchronously to host memory —
// this is the driver reacting to the device loss, not the device.
func (n *NIC) crashQP(qp *QP) {
	if !qp.Errored {
		qp.Errored = true
		qp.QPFails++
		n.cancelQPTimers(qp)
		if qp.txN > 0 {
			last := qp.txRing[(qp.txHead+qp.txN-1)%len(qp.txRing)]
			qp.txN = 0
			n.hostWriteSendCQE(qp, last.counter, mlx.CQEFatalErr)
		}
	} else {
		n.cancelQPTimers(qp)
	}
	if !qp.fetching {
		// Descriptors rung but not yet fetched would otherwise never
		// complete: no further doorbell is coming once software sees the
		// error. With a fetch in flight the flush instead happens from the
		// completion's dead guard, keeping flush CQEs in counter order.
		qp.flushRungWQEs()
	}
	for qp.recvPosted > 0 {
		qp.recvPosted--
		qp.rqAddrs = qp.rqAddrs[1:]
		qp.FlushedRecvs++
		n.hostWriteRecvFlushCQE(qp)
	}
	if len(qp.rqAddrs) == 0 {
		qp.rqAddrs = nil
	}
}

// hostWriteSendCQE writes a request completion straight into host memory,
// bypassing the (dead) device's PCIe path.
func (n *NIC) hostWriteSendCQE(qp *QP, counter uint16, status uint8) {
	cqe := mlx.CQE{
		Op:         mlx.CQEReq,
		WQECounter: counter,
		QPN:        qp.QPN,
		Status:     status,
		Gen:        qp.SendCQ.Gen(qp.sendCQPI),
	}
	enc, err := cqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
	}
	n.mem.Write(qp.SendCQ.EntryAddr(qp.sendCQPI), enc[:])
	qp.sendCQPI++
	qp.CQEsWritten++
}

// hostWriteRecvFlushCQE writes one flushed-receive error completion
// straight into host memory.
func (n *NIC) hostWriteRecvFlushCQE(qp *QP) {
	cqe := mlx.CQE{
		Op:         mlx.CQERecv,
		WQECounter: qp.recvCQPI,
		QPN:        qp.QPN,
		Status:     mlx.CQEFlushErr,
		Gen:        qp.RecvCQ.Gen(qp.recvCQPI),
	}
	enc, err := cqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
	}
	n.mem.Write(qp.RecvCQ.EntryAddr(qp.recvCQPI), enc[:])
	qp.recvCQPI++
	qp.CQEsWritten++
}
