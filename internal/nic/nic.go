// Package nic models the network adapter (ConnectX-4 flavoured) as a PCIe
// endpoint plus a fabric port.
//
// Both descriptor-delivery paths from the paper's §2 are implemented:
//
//   - DoorBell + DMA: software writes the WQE into the send queue ring in
//     host memory, rings the 8-byte DoorBell (MWr), and the NIC DMA-reads
//     the descriptor (MRd/CplD) and, for non-inline payloads, the payload
//     (second MRd/CplD) — the two PCIe round trips the paper highlights as
//     expensive.
//   - PIO (BlueFlame) + inlining: software copies the whole 64-byte WQE,
//     payload included, to device memory in one MWr; the NIC transmits
//     without any DMA read.
//
// Completions: on the transport ACK from the target NIC, a signaled WQE
// produces a 64-byte CQE DMA-written (MWr) to the completion queue; with
// unsignaled completions only every c-th WQE is signaled and one CQE retires
// the whole batch (paper §6). Inbound small sends are delivered as a single
// DMA write of a CQE with inline-scattered payload, so the payload and its
// completion become visible to the polling CPU together.
package nic

import (
	"encoding/binary"
	"fmt"

	"breakband/internal/fabric"
	"breakband/internal/memsim"
	"breakband/internal/mlx"
	"breakband/internal/pcie"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// Config parameterizes the device.
type Config struct {
	// TxProcess is the NIC pipeline delay from descriptor availability to
	// first wire byte. The paper folds NIC processing into its Wire
	// measurement; it defaults to zero and stays configurable.
	TxProcess units.Time
	// RxProcess is the pipeline delay on inbound frames before DMA.
	RxProcess units.Time
	// AckProcess is the delay from inbound-frame handling to the
	// transport ACK emission.
	AckProcess units.Time
	// BARStride is the device-memory span reserved per QP.
	BARStride uint64
}

// DefaultConfig returns the calibration-neutral configuration.
func DefaultConfig() Config {
	return Config{BARStride: 0x1000}
}

// Register offsets inside a QP's BAR window.
const (
	dbOffset = 0x000 // 8-byte DoorBell register
	bfOffset = 0x100 // 64-byte BlueFlame PIO buffer
)

// txOp is the transport operation carried by a data frame.
type txOp struct {
	opcode  mlx.Opcode
	srcQPN  uint32
	dstQPN  uint32
	payload []byte
	raddr   uint64
	amID    uint8
	counter uint16
}

// ackCookie identifies the WQE being acknowledged.
type ackCookie struct {
	qpn     uint32
	counter uint16
}

// txRec tracks a transmitted, not-yet-acknowledged WQE.
type txRec struct {
	counter  uint16
	signaled bool
}

// QP is a queue pair: a send queue, its completion queues, and a reliable
// connection to a remote QP.
type QP struct {
	nic *NIC
	// QPN is the queue pair number, unique per NIC.
	QPN uint32
	// SQ is the send queue ring in host memory (used by the DoorBell+DMA
	// path; the PIO path bypasses it).
	SQ mlx.Ring
	// SendCQ receives request completions; RecvCQ receives inbound-send
	// completions.
	SendCQ mlx.Ring
	RecvCQ mlx.Ring
	// DBRAddr is the doorbell record (software producer counter) in host
	// memory; DBAddr and BFAddr are the device-memory registers.
	DBRAddr uint64
	DBAddr  uint64
	BFAddr  uint64

	remoteNIC int
	remoteQPN uint32

	// Device-side state.
	fetchNext   uint16  // next WQE counter to DMA-fetch (DoorBell path)
	doorbellPI  uint16  // latest producer counter rung via the DoorBell
	fetching    bool    // a descriptor fetch chain is in flight
	outstanding []txRec // transmitted, awaiting transport ACK (in order)
	sendCQPI    uint16  // producer counter of SendCQ
	recvCQPI    uint16  // producer counter of RecvCQ
	recvPosted  int     // receive credits posted by software
	rqAddrs     []uint64

	// Counters for tests and reports.
	TxFrames, RxFrames, CQEsWritten, RNRDrops uint64
}

// NIC is the device model.
type NIC struct {
	k    *sim.Kernel
	id   int
	mem  *memsim.Memory
	link *pcie.Link
	net  *fabric.Network
	cfg  Config

	qps      map[uint32]*QP
	byBAR    map[uint64]*QP // BAR window base -> QP
	nextQPN  uint32
	barNext  uint64
	nextTag  uint8
	inflight map[uint8]func(*pcie.TLP) // outstanding MRd continuations
}

var (
	_ pcie.Receiver = (*NIC)(nil)
	_ fabric.Port   = (*NIC)(nil)
)

// New creates a NIC with the given fabric identity, attaching it to the PCIe
// link's endpoint side and to the network.
func New(k *sim.Kernel, id int, mem *memsim.Memory, link *pcie.Link, net *fabric.Network, cfg Config) *NIC {
	if cfg.BARStride == 0 {
		cfg.BARStride = 0x1000
	}
	n := &NIC{
		k: k, id: id, mem: mem, link: link, net: net, cfg: cfg,
		qps:      make(map[uint32]*QP),
		byBAR:    make(map[uint64]*QP),
		barNext:  pcie.BARBase,
		inflight: make(map[uint8]func(*pcie.TLP)),
	}
	link.SetEndpointSide(n)
	net.Attach(id, n)
	return n
}

// ID reports the NIC's fabric identity.
func (n *NIC) ID() int { return n.id }

// CreateQP allocates a queue pair with the given ring depths (powers of
// two). Ring memory and the doorbell record are allocated from host memory;
// the DoorBell and BlueFlame registers from the device BAR.
func (n *NIC) CreateQP(sqDepth, cqDepth int) *QP {
	qpn := n.nextQPN
	n.nextQPN++
	base := n.barNext
	n.barNext += n.cfg.BARStride

	dbr := n.mem.Alloc(fmt.Sprintf("nic%d.qp%d.dbr", n.id, qpn), 8, 8)
	qp := &QP{
		nic:     n,
		QPN:     qpn,
		SQ:      mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.sq", n.id, qpn), sqDepth, mlx.WQESize),
		SendCQ:  mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.scq", n.id, qpn), cqDepth, mlx.CQESize),
		RecvCQ:  mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.rcq", n.id, qpn), cqDepth, mlx.CQESize),
		DBRAddr: dbr.Base,
		DBAddr:  base + dbOffset,
		BFAddr:  base + bfOffset,
	}
	n.qps[qpn] = qp
	n.byBAR[base] = qp
	return qp
}

// Connect establishes the reliable connection between two QPs on different
// NICs (both directions).
func Connect(a, b *QP) {
	a.remoteNIC, a.remoteQPN = b.nic.id, b.QPN
	b.remoteNIC, b.remoteQPN = a.nic.id, a.QPN
}

// PostRecv adds one receive credit (with its buffer address, used only for
// payloads too large for CQE inline scatter).
func (qp *QP) PostRecv(addr uint64) {
	qp.recvPosted++
	qp.rqAddrs = append(qp.rqAddrs, addr)
}

// RecvPosted reports available receive credits.
func (qp *QP) RecvPosted() int { return qp.recvPosted }

// ---------- PCIe endpoint side ----------

// RxTLP implements pcie.Receiver for downstream traffic.
func (n *NIC) RxTLP(t *pcie.TLP) {
	switch t.Type {
	case pcie.MWr:
		n.rxMMIO(t)
	case pcie.CplD:
		cont, ok := n.inflight[t.Tag]
		if !ok {
			panic(fmt.Sprintf("nic%d: CplD with unknown tag %d", n.id, t.Tag))
		}
		delete(n.inflight, t.Tag)
		cont(t)
	default:
		panic(fmt.Sprintf("nic%d: unexpected downstream %v", n.id, t.Type))
	}
}

// rxMMIO decodes a device-memory write: an 8-byte DoorBell ring or a 64-byte
// BlueFlame PIO descriptor.
func (n *NIC) rxMMIO(t *pcie.TLP) {
	base := pcie.BARBase + (t.Addr-pcie.BARBase)/n.cfg.BARStride*n.cfg.BARStride
	qp, ok := n.byBAR[base]
	if !ok {
		panic(fmt.Sprintf("nic%d: MWr to unmapped BAR %#x", n.id, t.Addr))
	}
	switch t.Addr - base {
	case dbOffset:
		if len(t.Data) < 2 {
			panic(fmt.Sprintf("nic%d: short DoorBell write (%d bytes)", n.id, len(t.Data)))
		}
		qp.ringDoorbell(binary.LittleEndian.Uint16(t.Data))
	case bfOffset:
		wqe, err := mlx.DecodeWQE(t.Data)
		if err != nil {
			panic(fmt.Sprintf("nic%d: bad BlueFlame WQE: %v", n.id, err))
		}
		n.execWQE(qp, wqe)
	default:
		panic(fmt.Sprintf("nic%d: MWr to unknown register offset %#x", n.id, t.Addr-base))
	}
}

// dmaRead issues an MRd and registers the completion continuation.
func (n *NIC) dmaRead(addr uint64, len int, cont func(data []byte)) {
	tag := n.nextTag
	n.nextTag++
	if _, busy := n.inflight[tag]; busy {
		panic(fmt.Sprintf("nic%d: DMA tag space exhausted (256 outstanding reads)", n.id))
	}
	n.inflight[tag] = func(t *pcie.TLP) { cont(t.Data) }
	n.link.SendUp(&pcie.TLP{Type: pcie.MRd, Addr: addr, ReadLen: len, Tag: tag})
}

// ringDoorbell handles the 8-byte DoorBell: the NIC learns the new producer
// counter and fetches the outstanding descriptors by DMA, strictly in order.
func (qp *QP) ringDoorbell(newPI uint16) {
	qp.doorbellPI = newPI
	qp.fetchLoop()
}

func (qp *QP) fetchLoop() {
	if qp.fetching || qp.fetchNext == qp.doorbellPI {
		return
	}
	qp.fetching = true
	counter := qp.fetchNext
	qp.fetchNext++
	qp.nic.dmaRead(qp.SQ.EntryAddr(counter), mlx.WQESize, func(data []byte) {
		wqe, err := mlx.DecodeWQE(data)
		if err != nil {
			panic(fmt.Sprintf("nic%d: bad DMA WQE at counter %d: %v", qp.nic.id, counter, err))
		}
		if wqe.Inline {
			qp.nic.execWQE(qp, wqe)
			qp.fetching = false
			qp.fetchLoop()
			return
		}
		// Second round trip: fetch the payload from registered memory.
		qp.nic.dmaRead(wqe.GatherAddr, int(wqe.GatherLen), func(payload []byte) {
			wqe.Payload = payload
			qp.nic.execWQE(qp, wqe)
			qp.fetching = false
			qp.fetchLoop()
		})
	})
}

// execWQE transmits a decoded descriptor onto the fabric.
func (n *NIC) execWQE(qp *QP, w *mlx.WQE) {
	if w.QPN != qp.QPN {
		panic(fmt.Sprintf("nic%d: WQE qpn %d posted to qp %d", n.id, w.QPN, qp.QPN))
	}
	send := func() {
		qp.outstanding = append(qp.outstanding, txRec{counter: w.WQEIdx, signaled: w.Signaled})
		qp.TxFrames++
		n.net.Send(&fabric.Frame{
			Kind:  fabric.Data,
			Src:   n.id,
			Dst:   qp.remoteNIC,
			Bytes: len(w.Payload),
			Op: &txOp{
				opcode:  w.Opcode,
				srcQPN:  qp.QPN,
				dstQPN:  qp.remoteQPN,
				payload: w.Payload,
				raddr:   w.RemoteAddr,
				amID:    w.AmID,
				counter: w.WQEIdx,
			},
		})
	}
	if n.cfg.TxProcess > 0 {
		n.k.After(n.cfg.TxProcess, send)
		return
	}
	send()
}

// ---------- fabric port side ----------

// RxFrame implements fabric.Port.
func (n *NIC) RxFrame(f *fabric.Frame) {
	handle := func() {
		switch f.Kind {
		case fabric.Data:
			n.rxData(f)
		case fabric.TransportAck:
			n.rxAck(f.AckOf.(ackCookie))
		}
	}
	if n.cfg.RxProcess > 0 {
		n.k.After(n.cfg.RxProcess, handle)
		return
	}
	handle()
}

// rxData handles an inbound data frame on the target NIC.
func (n *NIC) rxData(f *fabric.Frame) {
	op := f.Op.(*txOp)
	qp, ok := n.qps[op.dstQPN]
	if !ok {
		panic(fmt.Sprintf("nic%d: data frame for unknown qp %d", n.id, op.dstQPN))
	}
	qp.RxFrames++
	switch op.opcode {
	case mlx.OpRDMAWrite:
		// One-sided: DMA-write the payload to the remote address. No
		// CQE, no CPU involvement on this node.
		n.link.SendUp(&pcie.TLP{Type: pcie.MWr, Addr: op.raddr, Data: op.payload})
	case mlx.OpSend:
		if qp.recvPosted == 0 {
			// Receiver not ready. Real hardware would RNR-NAK and
			// retry; the benchmarks always keep receives posted, so
			// we count and drop (no ACK, so the sender would stall
			// visibly rather than silently succeed).
			qp.RNRDrops++
			return
		}
		qp.recvPosted--
		bufAddr := qp.rqAddrs[0]
		qp.rqAddrs = qp.rqAddrs[1:]
		inline := len(op.payload) <= mlx.ScatterMax
		cqe := &mlx.CQE{
			Op:         mlx.CQERecv,
			WQECounter: qp.recvCQPI,
			QPN:        qp.QPN,
			ByteCnt:    uint32(len(op.payload)),
			AmID:       op.amID,
			Gen:        qp.RecvCQ.Gen(qp.recvCQPI),
		}
		if inline {
			// CQE inline scatter: payload and completion arrive in
			// one DMA write (paper's RC-to-MEM(xB) + poll model).
			cqe.Payload = op.payload
		} else {
			// Large payload: DMA-write to the posted buffer, then
			// the CQE.
			n.link.SendUp(&pcie.TLP{Type: pcie.MWr, Addr: bufAddr, Data: op.payload})
		}
		enc, err := cqe.Encode()
		if err != nil {
			panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
		}
		addr := qp.RecvCQ.EntryAddr(qp.recvCQPI)
		qp.recvCQPI++
		qp.CQEsWritten++
		n.link.SendUp(&pcie.TLP{Type: pcie.MWr, Addr: addr, Data: enc[:]})
	default:
		panic(fmt.Sprintf("nic%d: unexpected opcode %v", n.id, op.opcode))
	}
	// Transport-level acknowledgement back to the initiator (paper §2
	// step 4).
	ack := func() { n.net.Ack(f, ackCookie{qpn: op.srcQPN, counter: op.counter}) }
	if n.cfg.AckProcess > 0 {
		n.k.After(n.cfg.AckProcess, ack)
		return
	}
	ack()
}

// rxAck handles the transport ACK on the initiator NIC: it retires the
// oldest outstanding WQE and, if that WQE was signaled, DMA-writes the CQE
// (paper §2 step 5). Unsignaled WQEs complete silently; the next signaled
// CQE's counter retires them at the software level.
func (n *NIC) rxAck(c ackCookie) {
	qp, ok := n.qps[c.qpn]
	if !ok {
		panic(fmt.Sprintf("nic%d: ACK for unknown qp %d", n.id, c.qpn))
	}
	if len(qp.outstanding) == 0 {
		panic(fmt.Sprintf("nic%d: ACK for qp %d with nothing outstanding", n.id, c.qpn))
	}
	rec := qp.outstanding[0]
	if rec.counter != c.counter {
		panic(fmt.Sprintf("nic%d: out-of-order ACK: got %d want %d", n.id, c.counter, rec.counter))
	}
	qp.outstanding = qp.outstanding[1:]
	if !rec.signaled {
		return
	}
	cqe := &mlx.CQE{
		Op:         mlx.CQEReq,
		WQECounter: rec.counter,
		QPN:        qp.QPN,
		Gen:        qp.SendCQ.Gen(qp.sendCQPI),
	}
	enc, err := cqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
	}
	addr := qp.SendCQ.EntryAddr(qp.sendCQPI)
	qp.sendCQPI++
	qp.CQEsWritten++
	n.link.SendUp(&pcie.TLP{Type: pcie.MWr, Addr: addr, Data: enc[:]})
}
