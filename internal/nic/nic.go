// Package nic models the network adapter (ConnectX-4 flavoured) as a PCIe
// endpoint plus a fabric port.
//
// Both descriptor-delivery paths from the paper's §2 are implemented:
//
//   - DoorBell + DMA: software writes the WQE into the send queue ring in
//     host memory, rings the 8-byte DoorBell (MWr), and the NIC DMA-reads
//     the descriptor (MRd/CplD) and, for non-inline payloads, the payload
//     (second MRd/CplD) — the two PCIe round trips the paper highlights as
//     expensive.
//   - PIO (BlueFlame) + inlining: software copies the whole 64-byte WQE,
//     payload included, to device memory in one MWr; the NIC transmits
//     without any DMA read.
//
// Completions: on the transport ACK from the target NIC, a signaled WQE
// produces a 64-byte CQE DMA-written (MWr) to the completion queue; with
// unsignaled completions only every c-th WQE is signaled and one CQE retires
// the whole batch (paper §6). Inbound small sends are delivered as a single
// DMA write of a CQE with inline-scattered payload, so the payload and its
// completion become visible to the polling CPU together.
//
// The device datapath is allocation-free in steady state: TLPs and frames
// come from the link/network pools (the NIC releases everything delivered
// to it, per the pcie/fabric borrow contracts), DMA-read completions
// dispatch through typed continuation records instead of closures (with
// reads past the 256-tag space queued FIFO rather than failing), and
// descriptors decode into per-QP scratch WQEs whose payload buffers are
// reused.
package nic

import (
	"encoding/binary"
	"fmt"

	"breakband/internal/fabric"
	"breakband/internal/memsim"
	"breakband/internal/mlx"
	"breakband/internal/pcie"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// Config parameterizes the device.
type Config struct {
	// TxProcess is the NIC pipeline delay from descriptor availability to
	// first wire byte. The paper folds NIC processing into its Wire
	// measurement; it defaults to zero and stays configurable.
	TxProcess units.Time
	// RxProcess is the pipeline delay on inbound frames before DMA.
	RxProcess units.Time
	// AckProcess is the delay from inbound-frame handling to the
	// transport ACK emission.
	AckProcess units.Time
	// BARStride is the device-memory span reserved per QP.
	BARStride uint64
}

// DefaultConfig returns the calibration-neutral configuration.
func DefaultConfig() Config {
	return Config{BARStride: 0x1000}
}

// Register offsets inside a QP's BAR window.
const (
	dbOffset = 0x000 // 8-byte DoorBell register
	bfOffset = 0x100 // 64-byte BlueFlame PIO buffer
)

// txRec tracks a transmitted, not-yet-acknowledged WQE.
type txRec struct {
	counter  uint16
	signaled bool
}

// QP is a queue pair: a send queue, its completion queues, and a reliable
// connection to a remote QP.
type QP struct {
	nic *NIC
	// QPN is the queue pair number, unique per NIC.
	QPN uint32
	// SQ is the send queue ring in host memory (used by the DoorBell+DMA
	// path; the PIO path bypasses it).
	SQ mlx.Ring
	// SendCQ receives request completions; RecvCQ receives inbound-send
	// completions.
	SendCQ mlx.Ring
	RecvCQ mlx.Ring
	// DBRAddr is the doorbell record (software producer counter) in host
	// memory; DBAddr and BFAddr are the device-memory registers.
	DBRAddr uint64
	DBAddr  uint64
	BFAddr  uint64

	remoteNIC int
	remoteQPN uint32

	// Device-side state.
	fetchNext    uint16 // next WQE counter to DMA-fetch (DoorBell path)
	fetchCounter uint16 // counter of the descriptor currently being fetched
	doorbellPI   uint16 // latest producer counter rung via the DoorBell
	fetching     bool   // a descriptor fetch chain is in flight
	// fetchWQE is the caller-owned scratch the fetch chain decodes into;
	// the fetching flag serializes its use per QP.
	fetchWQE    mlx.WQE
	outstanding []txRec // transmitted, awaiting transport ACK (in order)
	sendCQPI    uint16  // producer counter of SendCQ
	recvCQPI    uint16  // producer counter of RecvCQ
	recvPosted  int     // receive credits posted by software
	rqAddrs     []uint64

	// Counters for tests and reports.
	TxFrames, RxFrames, CQEsWritten, RNRDrops uint64
}

// dmaKind selects the typed continuation an MRd completion dispatches to.
type dmaKind uint8

const (
	dmaNone         dmaKind = iota // tag not in use
	dmaWQEFetch                    // descriptor fetch; continues in onWQEFetched
	dmaPayloadFetch                // gather payload fetch; continues in onPayloadFetched
)

// dmaCont is the typed continuation record for one outstanding DMA read —
// the closure-free replacement for the old map of func(*pcie.TLP).
type dmaCont struct {
	kind dmaKind
	qp   *QP
}

// dmaReq is a DMA read waiting for a free tag. The PCIe tag space allows
// 256 outstanding reads; requests beyond that queue here (FIFO) instead of
// failing, exactly as hardware would throttle descriptor fetches.
type dmaReq struct {
	addr uint64
	n    int
	kind dmaKind
	qp   *QP
}

// NIC is the device model.
type NIC struct {
	k    *sim.Kernel
	id   int
	mem  *memsim.Memory
	link *pcie.Link
	net  fabric.Deliverer
	cfg  Config

	qps     map[uint32]*QP
	byBAR   map[uint64]*QP // BAR window base -> QP
	nextQPN uint32
	barNext uint64

	// DMA-read engine: typed continuations indexed by PCIe tag, plus the
	// FIFO of reads blocked on tag exhaustion.
	nextTag       uint8
	inflight      [256]dmaCont
	inflightReads int
	dmaPending    []dmaReq

	// bfWQE is the scratch descriptor BlueFlame PIO writes decode into
	// (consumed synchronously by execWQE).
	bfWQE mlx.WQE

	// Continuations, bound once so the optional processing delays
	// (TxProcess/RxProcess/AckProcess) schedule without closures.
	txFrameFn func(any)
	rxFrameFn func(any)
	sendAckFn func(any)
}

var (
	_ pcie.Receiver = (*NIC)(nil)
	_ fabric.Port   = (*NIC)(nil)
)

// New creates a NIC with the given fabric identity, attaching it to the PCIe
// link's endpoint side and to the network (any fabric.Deliverer: the
// two-endpoint fabric.Network or a compiled internal/topo topology).
func New(k *sim.Kernel, id int, mem *memsim.Memory, link *pcie.Link, net fabric.Deliverer, cfg Config) *NIC {
	if cfg.BARStride == 0 {
		cfg.BARStride = 0x1000
	}
	n := &NIC{
		k: k, id: id, mem: mem, link: link, net: net, cfg: cfg,
		qps:     make(map[uint32]*QP),
		byBAR:   make(map[uint64]*QP),
		barNext: pcie.BARBase,
	}
	n.txFrameFn = func(a any) { n.net.Send(a.(*fabric.Frame)) }
	n.rxFrameFn = func(a any) { n.handleFrame(a.(*fabric.Frame)) }
	n.sendAckFn = func(a any) { n.net.SendAck(a.(*fabric.Frame)) }
	link.SetEndpointSide(n)
	net.Attach(id, n)
	return n
}

// ID reports the NIC's fabric identity.
func (n *NIC) ID() int { return n.id }

// CreateQP allocates a queue pair with the given ring depths (powers of
// two). Ring memory and the doorbell record are allocated from host memory;
// the DoorBell and BlueFlame registers from the device BAR.
func (n *NIC) CreateQP(sqDepth, cqDepth int) *QP {
	qpn := n.nextQPN
	n.nextQPN++
	base := n.barNext
	n.barNext += n.cfg.BARStride

	dbr := n.mem.Alloc(fmt.Sprintf("nic%d.qp%d.dbr", n.id, qpn), 8, 8)
	qp := &QP{
		nic:     n,
		QPN:     qpn,
		SQ:      mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.sq", n.id, qpn), sqDepth, mlx.WQESize),
		SendCQ:  mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.scq", n.id, qpn), cqDepth, mlx.CQESize),
		RecvCQ:  mlx.NewRing(n.mem, fmt.Sprintf("nic%d.qp%d.rcq", n.id, qpn), cqDepth, mlx.CQESize),
		DBRAddr: dbr.Base,
		DBAddr:  base + dbOffset,
		BFAddr:  base + bfOffset,
	}
	n.qps[qpn] = qp
	n.byBAR[base] = qp
	return qp
}

// Connect establishes the reliable connection between two QPs on different
// NICs (both directions).
func Connect(a, b *QP) {
	a.remoteNIC, a.remoteQPN = b.nic.id, b.QPN
	b.remoteNIC, b.remoteQPN = a.nic.id, a.QPN
}

// PostRecv adds one receive credit (with its buffer address, used only for
// payloads too large for CQE inline scatter).
func (qp *QP) PostRecv(addr uint64) {
	qp.recvPosted++
	qp.rqAddrs = append(qp.rqAddrs, addr)
}

// RecvPosted reports available receive credits.
func (qp *QP) RecvPosted() int { return qp.recvPosted }

// ---------- PCIe endpoint side ----------

// RxTLP implements pcie.Receiver for downstream traffic. The NIC consumes
// every delivered TLP synchronously (decoding or copying what it needs) and
// releases it before returning.
func (n *NIC) RxTLP(t *pcie.TLP) {
	switch t.Type {
	case pcie.MWr:
		n.rxMMIO(t)
	case pcie.CplD:
		rec := n.inflight[t.Tag]
		if rec.kind == dmaNone {
			panic(fmt.Sprintf("nic%d: CplD with unknown tag %d", n.id, t.Tag))
		}
		n.inflight[t.Tag] = dmaCont{}
		n.inflightReads--
		switch rec.kind {
		case dmaWQEFetch:
			rec.qp.onWQEFetched(t.Data)
		case dmaPayloadFetch:
			rec.qp.onPayloadFetched(t.Data)
		}
		// The freed tag (and any the continuation released) goes to the
		// oldest queued reads, preserving issue order.
		for n.inflightReads < len(n.inflight) && len(n.dmaPending) > 0 {
			rq := n.dmaPending[0]
			n.dmaPending = n.dmaPending[1:]
			if len(n.dmaPending) == 0 {
				n.dmaPending = nil
			}
			n.issueDMARead(rq.addr, rq.n, rq.kind, rq.qp)
		}
	default:
		panic(fmt.Sprintf("nic%d: unexpected downstream %v", n.id, t.Type))
	}
	t.Release()
}

// rxMMIO decodes a device-memory write: an 8-byte DoorBell ring or a 64-byte
// BlueFlame PIO descriptor.
func (n *NIC) rxMMIO(t *pcie.TLP) {
	base := pcie.BARBase + (t.Addr-pcie.BARBase)/n.cfg.BARStride*n.cfg.BARStride
	qp, ok := n.byBAR[base]
	if !ok {
		panic(fmt.Sprintf("nic%d: MWr to unmapped BAR %#x", n.id, t.Addr))
	}
	switch t.Addr - base {
	case dbOffset:
		if len(t.Data) < 2 {
			panic(fmt.Sprintf("nic%d: short DoorBell write (%d bytes)", n.id, len(t.Data)))
		}
		qp.ringDoorbell(binary.LittleEndian.Uint16(t.Data))
	case bfOffset:
		if err := n.bfWQE.DecodeFrom(t.Data); err != nil {
			panic(fmt.Sprintf("nic%d: bad BlueFlame WQE: %v", n.id, err))
		}
		n.execWQE(qp, &n.bfWQE)
	default:
		panic(fmt.Sprintf("nic%d: MWr to unknown register offset %#x", n.id, t.Addr-base))
	}
}

// dmaRead issues an MRd with a typed completion record, or queues the
// request when the 256-entry tag space is exhausted (or older requests are
// already queued — FIFO order is preserved either way).
func (n *NIC) dmaRead(addr uint64, ln int, kind dmaKind, qp *QP) {
	if n.inflightReads == len(n.inflight) || len(n.dmaPending) > 0 {
		n.dmaPending = append(n.dmaPending, dmaReq{addr: addr, n: ln, kind: kind, qp: qp})
		return
	}
	n.issueDMARead(addr, ln, kind, qp)
}

// issueDMARead sends the MRd on a free tag. The caller guarantees one
// exists (inflightReads < 256).
func (n *NIC) issueDMARead(addr uint64, ln int, kind dmaKind, qp *QP) {
	for n.inflight[n.nextTag].kind != dmaNone {
		n.nextTag++
	}
	tag := n.nextTag
	n.nextTag++
	n.inflight[tag] = dmaCont{kind: kind, qp: qp}
	n.inflightReads++
	t := n.link.NewTLP()
	t.Type = pcie.MRd
	t.Addr = addr
	t.ReadLen = ln
	t.Tag = tag
	n.link.SendUp(t)
}

// ringDoorbell handles the 8-byte DoorBell: the NIC learns the new producer
// counter and fetches the outstanding descriptors by DMA, strictly in order.
func (qp *QP) ringDoorbell(newPI uint16) {
	qp.doorbellPI = newPI
	qp.fetchNextWQE()
}

// fetchNextWQE starts the next descriptor fetch if none is in flight. The
// drain is iterative: each completion event (onWQEFetched/onPayloadFetched)
// executes the descriptor and calls back here to issue the next read, so a
// deep doorbell batch costs constant stack regardless of depth.
func (qp *QP) fetchNextWQE() {
	if qp.fetching || qp.fetchNext == qp.doorbellPI {
		return
	}
	qp.fetching = true
	qp.fetchCounter = qp.fetchNext
	qp.fetchNext++
	qp.nic.dmaRead(qp.SQ.EntryAddr(qp.fetchCounter), mlx.WQESize, dmaWQEFetch, qp)
}

// onWQEFetched continues the fetch chain when the descriptor CplD arrives.
// data is borrowed from the delivered TLP; DecodeFrom copies what the WQE
// keeps.
func (qp *QP) onWQEFetched(data []byte) {
	if err := qp.fetchWQE.DecodeFrom(data); err != nil {
		panic(fmt.Sprintf("nic%d: bad DMA WQE at counter %d: %v", qp.nic.id, qp.fetchCounter, err))
	}
	if qp.fetchWQE.Inline {
		qp.nic.execWQE(qp, &qp.fetchWQE)
		qp.fetching = false
		qp.fetchNextWQE()
		return
	}
	// Second round trip: fetch the payload from registered memory.
	qp.nic.dmaRead(qp.fetchWQE.GatherAddr, int(qp.fetchWQE.GatherLen), dmaPayloadFetch, qp)
}

// onPayloadFetched completes a gather descriptor: the payload is copied out
// of the borrowed CplD data into the scratch WQE, which is then executed.
func (qp *QP) onPayloadFetched(data []byte) {
	qp.fetchWQE.Payload = append(qp.fetchWQE.Payload[:0], data...)
	qp.nic.execWQE(qp, &qp.fetchWQE)
	qp.fetching = false
	qp.fetchNextWQE()
}

// execWQE transmits a decoded descriptor onto the fabric. The WQE (often a
// scratch) is consumed synchronously: its payload is copied into the pooled
// frame. The outstanding record is made at execution time; with a nonzero
// TxProcess the frame itself leaves TxProcess later, which cannot be
// observed out of order because the transport ACK consuming the record
// travels behind the frame.
func (n *NIC) execWQE(qp *QP, w *mlx.WQE) {
	if w.QPN != qp.QPN {
		panic(fmt.Sprintf("nic%d: WQE qpn %d posted to qp %d", n.id, w.QPN, qp.QPN))
	}
	qp.outstanding = append(qp.outstanding, txRec{counter: w.WQEIdx, signaled: w.Signaled})
	qp.TxFrames++
	f := n.net.NewFrame()
	f.Kind = fabric.Data
	f.Src = n.id
	f.Dst = qp.remoteNIC
	f.Bytes = len(w.Payload)
	f.Op = fabric.TxOp{
		Opcode:  uint8(w.Opcode),
		SrcQPN:  qp.QPN,
		DstQPN:  qp.remoteQPN,
		RAddr:   w.RemoteAddr,
		AmID:    w.AmID,
		Counter: w.WQEIdx,
	}
	f.SetPayload(w.Payload)
	if n.cfg.TxProcess > 0 {
		n.k.AfterArg(n.cfg.TxProcess, n.txFrameFn, f)
		return
	}
	n.net.Send(f)
}

// ---------- fabric port side ----------

// RxFrame implements fabric.Port. The NIC owns the delivered frame until
// handleFrame releases it (after the optional RxProcess delay).
func (n *NIC) RxFrame(f *fabric.Frame) {
	if n.cfg.RxProcess > 0 {
		n.k.AfterArg(n.cfg.RxProcess, n.rxFrameFn, f)
		return
	}
	n.handleFrame(f)
}

// handleFrame dispatches a delivered frame and releases it.
func (n *NIC) handleFrame(f *fabric.Frame) {
	switch f.Kind {
	case fabric.Data:
		n.rxData(f)
	case fabric.TransportAck:
		n.rxAck(f.Ack)
	}
	f.Release()
}

// rxData handles an inbound data frame on the target NIC. The frame's
// payload is borrowed; everything the NIC forwards is copied into pooled
// TLPs before rxData returns.
func (n *NIC) rxData(f *fabric.Frame) {
	op := &f.Op
	qp, ok := n.qps[op.DstQPN]
	if !ok {
		panic(fmt.Sprintf("nic%d: data frame for unknown qp %d", n.id, op.DstQPN))
	}
	qp.RxFrames++
	payload := f.Payload()
	switch mlx.Opcode(op.Opcode) {
	case mlx.OpRDMAWrite:
		// One-sided: DMA-write the payload to the remote address. No
		// CQE, no CPU involvement on this node.
		t := n.link.NewTLP()
		t.Type = pcie.MWr
		t.Addr = op.RAddr
		t.SetData(payload)
		n.link.SendUp(t)
	case mlx.OpSend:
		if qp.recvPosted == 0 {
			// Receiver not ready. Real hardware would RNR-NAK and
			// retry; the benchmarks always keep receives posted, so
			// we count and drop (no ACK, so the sender would stall
			// visibly rather than silently succeed).
			qp.RNRDrops++
			return
		}
		qp.recvPosted--
		bufAddr := qp.rqAddrs[0]
		qp.rqAddrs = qp.rqAddrs[1:]
		inline := len(payload) <= mlx.ScatterMax
		cqe := mlx.CQE{
			Op:         mlx.CQERecv,
			WQECounter: qp.recvCQPI,
			QPN:        qp.QPN,
			ByteCnt:    uint32(len(payload)),
			AmID:       op.AmID,
			Gen:        qp.RecvCQ.Gen(qp.recvCQPI),
		}
		if inline {
			// CQE inline scatter: payload and completion arrive in
			// one DMA write (paper's RC-to-MEM(xB) + poll model).
			cqe.Payload = payload
		} else {
			// Large payload: DMA-write to the posted buffer, then
			// the CQE.
			t := n.link.NewTLP()
			t.Type = pcie.MWr
			t.Addr = bufAddr
			t.SetData(payload)
			n.link.SendUp(t)
		}
		enc, err := cqe.Encode()
		if err != nil {
			panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
		}
		t := n.link.NewTLP()
		t.Type = pcie.MWr
		t.Addr = qp.RecvCQ.EntryAddr(qp.recvCQPI)
		t.SetData(enc[:])
		qp.recvCQPI++
		qp.CQEsWritten++
		n.link.SendUp(t)
	default:
		panic(fmt.Sprintf("nic%d: unexpected opcode %v", n.id, mlx.Opcode(op.Opcode)))
	}
	// Transport-level acknowledgement back to the initiator (paper §2
	// step 4).
	ack := n.net.AckFor(f, fabric.AckInfo{QPN: op.SrcQPN, Counter: op.Counter})
	if n.cfg.AckProcess > 0 {
		n.k.AfterArg(n.cfg.AckProcess, n.sendAckFn, ack)
		return
	}
	n.net.SendAck(ack)
}

// rxAck handles the transport ACK on the initiator NIC: it retires the
// oldest outstanding WQE and, if that WQE was signaled, DMA-writes the CQE
// (paper §2 step 5). Unsignaled WQEs complete silently; the next signaled
// CQE's counter retires them at the software level.
func (n *NIC) rxAck(c fabric.AckInfo) {
	qp, ok := n.qps[c.QPN]
	if !ok {
		panic(fmt.Sprintf("nic%d: ACK for unknown qp %d", n.id, c.QPN))
	}
	if len(qp.outstanding) == 0 {
		panic(fmt.Sprintf("nic%d: ACK for qp %d with nothing outstanding", n.id, c.QPN))
	}
	rec := qp.outstanding[0]
	if rec.counter != c.Counter {
		panic(fmt.Sprintf("nic%d: out-of-order ACK: got %d want %d", n.id, c.Counter, rec.counter))
	}
	qp.outstanding = qp.outstanding[1:]
	if !rec.signaled {
		return
	}
	cqe := mlx.CQE{
		Op:         mlx.CQEReq,
		WQECounter: rec.counter,
		QPN:        qp.QPN,
		Gen:        qp.SendCQ.Gen(qp.sendCQPI),
	}
	enc, err := cqe.Encode()
	if err != nil {
		panic(fmt.Sprintf("nic%d: CQE encode: %v", n.id, err))
	}
	t := n.link.NewTLP()
	t.Type = pcie.MWr
	t.Addr = qp.SendCQ.EntryAddr(qp.sendCQPI)
	t.SetData(enc[:])
	qp.sendCQPI++
	qp.CQEsWritten++
	n.link.SendUp(t)
}
