package nic

import (
	"bytes"
	"encoding/binary"
	"testing"

	"breakband/internal/fabric"
	"breakband/internal/memsim"
	"breakband/internal/mlx"
	"breakband/internal/pcie"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// rig is a two-node hardware harness without any software stack.
type rig struct {
	k          *sim.Kernel
	mem0, mem1 *memsim.Memory
	rc0        *pcie.RootComplex
	nic0, nic1 *NIC
	qp0, qp1   *QP
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     true,
	})
	linkCfg := pcie.DefaultLinkConfig()
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 20)
	link0 := pcie.NewLink(k, linkCfg)
	rc0 := pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, DefaultConfig())

	mem1 := memsim.New(1 << 20)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	nic1 := New(k, 1, mem1, link1, net, DefaultConfig())

	qp0 := nic0.CreateQP(64, 256)
	qp1 := nic1.CreateQP(64, 256)
	Connect(qp0, qp1)
	return &rig{k: k, mem0: mem0, mem1: mem1, rc0: rc0, nic0: nic0, nic1: nic1, qp0: qp0, qp1: qp1}
}

// pioPost PIO-writes a WQE to qp0's BlueFlame register via the RC.
func (r *rig) pioPost(t *testing.T, w *mlx.WQE) {
	t.Helper()
	enc, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r.rc0.MMIOWrite(r.qp0.BFAddr, enc[:])
}

func TestPIORDMAWrite(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 64, 8)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: payload, RemoteAddr: dst.Base,
		})
	})
	r.k.Run()
	if got := r.mem1.Read(dst.Base, 8); !bytes.Equal(got, payload) {
		t.Errorf("remote memory = %v", got)
	}
	// Signaled: one CQE DMA-written to the send CQ on node 0.
	if r.qp0.CQEsWritten != 1 {
		t.Errorf("CQEs written = %d", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQEReq || cqe.WQECounter != 0 || cqe.Gen != r.qp0.SendCQ.Gen(0) {
		t.Errorf("send CQE = %+v", cqe)
	}
}

func TestUnsignaledBatch(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 64, 8)
	r.k.At(0, func() {
		for i := 0; i < 4; i++ {
			r.pioPost(t, &mlx.WQE{
				Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: i == 3,
				WQEIdx: uint16(i), QPN: r.qp0.QPN,
				Payload: []byte{byte(i)}, RemoteAddr: dst.Base,
			})
		}
	})
	r.k.Run()
	if r.qp0.CQEsWritten != 1 {
		t.Errorf("unsignaled batch produced %d CQEs, want 1", r.qp0.CQEsWritten)
	}
	cqe, _ := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if cqe.WQECounter != 3 {
		t.Errorf("batch CQE counter = %d, want 3", cqe.WQECounter)
	}
}

func TestSendWithInlineScatter(t *testing.T) {
	r := newRig(t)
	r.qp1.PostRecv(0)
	payload := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, AmID: 5, Payload: payload,
		})
	})
	r.k.Run()
	// One recv CQE on node 1 carrying the payload inline.
	cqe, err := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQERecv || cqe.AmID != 5 || !bytes.Equal(cqe.Payload, payload) {
		t.Errorf("recv CQE = %+v", cqe)
	}
	if r.qp1.RecvPosted() != 0 {
		t.Error("receive credit not consumed")
	}
}

func TestSendLargePayloadUsesBuffer(t *testing.T) {
	r := newRig(t)
	buf := r.mem1.Alloc("rxbuf", 256, 8)
	r.qp1.PostRecv(buf.Base)
	payload := bytes.Repeat([]byte{7}, 64) // > ScatterMax
	// Large sends arrive via the DoorBell+gather path in practice; here
	// the frame payload is what matters, so use a gather WQE through the
	// ring.
	w := &mlx.WQE{
		Opcode: mlx.OpSend, Inline: false, Signaled: true,
		WQEIdx: 0, QPN: r.qp0.QPN, GatherAddr: 0, GatherLen: 64,
	}
	stage := r.mem0.Alloc("stage", 64, 8)
	r.mem0.Write(stage.Base, payload)
	w.GatherAddr = stage.Base
	enc, _ := w.Encode()
	r.mem0.Write(r.qp0.SQ.EntryAddr(0), enc[:])
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 1)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	r.k.Run()
	if got := r.mem1.Read(buf.Base, 64); !bytes.Equal(got, payload) {
		t.Error("large payload not written to the posted buffer")
	}
	cqe, _ := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(0), mlx.CQESize))
	if cqe.ByteCnt != 64 {
		t.Errorf("recv CQE byte count = %d", cqe.ByteCnt)
	}
}

func TestRNRDrop(t *testing.T) {
	r := newRig(t)
	// No receive posted on qp1.
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1},
		})
	})
	r.k.Run()
	if r.qp1.RNRDrops != 1 {
		t.Errorf("RNR drops = %d", r.qp1.RNRDrops)
	}
	// No ACK means the WQE stays outstanding and no CQE is written.
	if r.qp0.CQEsWritten != 0 {
		t.Error("dropped send still completed")
	}
}

func TestDoorbellDMAFetch(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 64, 8)
	payload := []byte{4, 4, 4, 4}
	w := &mlx.WQE{
		Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
		WQEIdx: 0, QPN: r.qp0.QPN, Payload: payload, RemoteAddr: dst.Base,
	}
	enc, _ := w.Encode()
	r.mem0.Write(r.qp0.SQ.EntryAddr(0), enc[:])
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 1)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	r.k.Run()
	if got := r.mem1.Read(dst.Base, 4); !bytes.Equal(got, payload) {
		t.Errorf("doorbell path payload = %v", got)
	}
}

func TestDoorbellMultipleWQEs(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 256, 8)
	for i := 0; i < 3; i++ {
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: uint16(i), QPN: r.qp0.QPN,
			Payload: []byte{byte(10 + i)}, RemoteAddr: dst.Base + uint64(i),
		}
		enc, _ := w.Encode()
		r.mem0.Write(r.qp0.SQ.EntryAddr(uint16(i)), enc[:])
	}
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 3)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	r.k.Run()
	if got := r.mem1.Read(dst.Base, 3); !bytes.Equal(got, []byte{10, 11, 12}) {
		t.Errorf("multi-WQE doorbell: %v", got)
	}
	if r.qp0.CQEsWritten != 3 {
		t.Errorf("CQEs = %d", r.qp0.CQEsWritten)
	}
}

func TestPIOFasterThanDoorbell(t *testing.T) {
	// The paper's core §2 point: PIO+inline eliminates the descriptor
	// DMA read (a PCIe round trip plus a memory read).
	arrival := func(useDoorbell bool) units.Time {
		r := newRig(t)
		dst := r.mem1.Alloc("dst", 64, 8)
		var committed units.Time
		// Observe the remote write commit time via memory contents.
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: false,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1}, RemoteAddr: dst.Base,
		}
		if useDoorbell {
			enc, _ := w.Encode()
			r.mem0.Write(r.qp0.SQ.EntryAddr(0), enc[:])
			r.k.At(0, func() {
				var db [8]byte
				binary.LittleEndian.PutUint16(db[:], 1)
				r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
			})
		} else {
			r.k.At(0, func() { r.pioPost(t, w) })
		}
		r.k.Run()
		if r.mem1.Read(dst.Base, 1)[0] != 1 {
			t.Fatal("payload missing")
		}
		// Find the commit time from the fabric delivery counters via a
		// rerun is overkill; approximate with final clock (last event is
		// the UpdateFC after the commit chain — identical structure for
		// both paths, so the comparison holds).
		committed = r.k.Now()
		return committed
	}
	pio := arrival(false)
	db := arrival(true)
	if db <= pio {
		t.Errorf("doorbell path (%v) should be slower than PIO (%v)", db, pio)
	}
	// The difference must include at least one PCIe round trip (~2 x
	// 137ns) plus the 150ns memory read.
	if db-pio < units.Nanoseconds(300) {
		t.Errorf("doorbell penalty only %v", db-pio)
	}
}

func TestBadMMIOPanics(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Error("unmapped BAR write did not panic")
		}
	}()
	r.k.At(0, func() {
		r.rc0.MMIOWrite(pcie.BARBase+0x500, []byte{1}) // unknown register offset
	})
	r.k.Run()
}

func TestDMATagExhaustionQueues(t *testing.T) {
	// More than 256 concurrent DMA reads must queue on tag exhaustion
	// (not panic) and all complete in order. Drive 300 QPs, each with one
	// ring-resident WQE, and ring every doorbell in the same event so 300
	// descriptor fetches are requested back to back.
	const qps = 300
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:    units.Nanoseconds(270),
		WirePerByte: units.Time(80),
	})
	linkCfg := pcie.DefaultLinkConfig()
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 22)
	link0 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, DefaultConfig())
	mem1 := memsim.New(1 << 22)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	nic1 := New(k, 1, mem1, link1, net, DefaultConfig())
	dst := mem1.Alloc("dst", qps, 8)

	var qs []*QP
	for i := 0; i < qps; i++ {
		q0 := nic0.CreateQP(4, 4)
		q1 := nic1.CreateQP(4, 4)
		Connect(q0, q1)
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: false,
			WQEIdx: 0, QPN: q0.QPN,
			Payload: []byte{byte(i)}, RemoteAddr: dst.Base + uint64(i),
		}
		enc, err := w.Encode()
		if err != nil {
			t.Fatal(err)
		}
		mem0.Write(q0.SQ.EntryAddr(0), enc[:])
		qs = append(qs, q0)
	}
	sawQueued := false
	k.At(0, func() {
		for _, q := range qs {
			q.ringDoorbell(1)
		}
		sawQueued = len(nic0.dmaPending) > 0 && nic0.inflightReads == 256
	})
	k.SetEventLimit(1_000_000)
	k.Run()
	for i := 0; i < qps; i++ {
		if got := mem1.Read(dst.Base+uint64(i), 1)[0]; got != byte(i) {
			t.Fatalf("payload %d = %d, want %d", i, got, byte(i))
		}
	}
	if !sawQueued {
		t.Error("tag space never saturated: the test did not exercise queueing")
	}
	if nic0.inflightReads != 0 || len(nic0.dmaPending) != 0 {
		t.Errorf("DMA engine not drained: %d in flight, %d queued",
			nic0.inflightReads, len(nic0.dmaPending))
	}
}

func TestQPAccounting(t *testing.T) {
	r := newRig(t)
	if r.qp0.QPN == r.qp1.QPN && r.nic0 == r.nic1 {
		t.Error("QPNs collide")
	}
	if r.qp0.DBAddr == r.qp0.BFAddr {
		t.Error("register offsets collide")
	}
	qpB := r.nic0.CreateQP(64, 256)
	if qpB.QPN == r.qp0.QPN {
		t.Error("second QP reuses QPN")
	}
	if qpB.BFAddr == r.qp0.BFAddr {
		t.Error("second QP reuses BAR window")
	}
}
