package nic

import (
	"bytes"
	"encoding/binary"
	"testing"

	"breakband/internal/fabric"
	"breakband/internal/memsim"
	"breakband/internal/mlx"
	"breakband/internal/pcie"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// rig is a two-node hardware harness without any software stack.
type rig struct {
	k          *sim.Kernel
	mem0, mem1 *memsim.Memory
	rc0        *pcie.RootComplex
	link1      *pcie.Link
	nic0, nic1 *NIC
	qp0, qp1   *QP
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     true,
	})
	linkCfg := pcie.DefaultLinkConfig()
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 20)
	link0 := pcie.NewLink(k, linkCfg)
	rc0 := pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, DefaultConfig())

	mem1 := memsim.New(1 << 20)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	nic1 := New(k, 1, mem1, link1, net, DefaultConfig())

	qp0 := nic0.CreateQP(64, 256)
	qp1 := nic1.CreateQP(64, 256)
	Connect(qp0, qp1)
	return &rig{k: k, mem0: mem0, mem1: mem1, rc0: rc0, link1: link1, nic0: nic0, nic1: nic1, qp0: qp0, qp1: qp1}
}

// pioPost PIO-writes a WQE to qp0's BlueFlame register via the RC.
func (r *rig) pioPost(t *testing.T, w *mlx.WQE) {
	t.Helper()
	enc, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	r.rc0.MMIOWrite(r.qp0.BFAddr, enc[:])
}

func TestPIORDMAWrite(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 64, 8)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: payload, RemoteAddr: dst.Base,
		})
	})
	r.k.Run()
	if got := r.mem1.Read(dst.Base, 8); !bytes.Equal(got, payload) {
		t.Errorf("remote memory = %v", got)
	}
	// Signaled: one CQE DMA-written to the send CQ on node 0.
	if r.qp0.CQEsWritten != 1 {
		t.Errorf("CQEs written = %d", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQEReq || cqe.WQECounter != 0 || cqe.Gen != r.qp0.SendCQ.Gen(0) {
		t.Errorf("send CQE = %+v", cqe)
	}
}

func TestUnsignaledBatch(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 64, 8)
	r.k.At(0, func() {
		for i := 0; i < 4; i++ {
			r.pioPost(t, &mlx.WQE{
				Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: i == 3,
				WQEIdx: uint16(i), QPN: r.qp0.QPN,
				Payload: []byte{byte(i)}, RemoteAddr: dst.Base,
			})
		}
	})
	r.k.Run()
	if r.qp0.CQEsWritten != 1 {
		t.Errorf("unsignaled batch produced %d CQEs, want 1", r.qp0.CQEsWritten)
	}
	cqe, _ := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if cqe.WQECounter != 3 {
		t.Errorf("batch CQE counter = %d, want 3", cqe.WQECounter)
	}
}

func TestSendWithInlineScatter(t *testing.T) {
	r := newRig(t)
	r.qp1.PostRecv(0)
	payload := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, AmID: 5, Payload: payload,
		})
	})
	r.k.Run()
	// One recv CQE on node 1 carrying the payload inline.
	cqe, err := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQERecv || cqe.AmID != 5 || !bytes.Equal(cqe.Payload, payload) {
		t.Errorf("recv CQE = %+v", cqe)
	}
	if r.qp1.RecvPosted() != 0 {
		t.Error("receive credit not consumed")
	}
}

func TestSendLargePayloadUsesBuffer(t *testing.T) {
	r := newRig(t)
	buf := r.mem1.Alloc("rxbuf", 256, 8)
	r.qp1.PostRecv(buf.Base)
	payload := bytes.Repeat([]byte{7}, 64) // > ScatterMax
	// Large sends arrive via the DoorBell+gather path in practice; here
	// the frame payload is what matters, so use a gather WQE through the
	// ring.
	w := &mlx.WQE{
		Opcode: mlx.OpSend, Inline: false, Signaled: true,
		WQEIdx: 0, QPN: r.qp0.QPN, GatherAddr: 0, GatherLen: 64,
	}
	stage := r.mem0.Alloc("stage", 64, 8)
	r.mem0.Write(stage.Base, payload)
	w.GatherAddr = stage.Base
	enc, _ := w.Encode()
	r.mem0.Write(r.qp0.SQ.EntryAddr(0), enc[:])
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 1)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	r.k.Run()
	if got := r.mem1.Read(buf.Base, 64); !bytes.Equal(got, payload) {
		t.Error("large payload not written to the posted buffer")
	}
	cqe, _ := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(0), mlx.CQESize))
	if cqe.ByteCnt != 64 {
		t.Errorf("recv CQE byte count = %d", cqe.ByteCnt)
	}
}

func TestRNRNakRetryDelivers(t *testing.T) {
	r := newRig(t)
	payload := []byte{1, 2, 3}
	// No receive posted on qp1 yet: the send is refused with an RNR NAK
	// and the sender backs off. A receive posted while the sender is
	// waiting lets a later retransmission land.
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, AmID: 7, Payload: payload,
		})
	})
	r.k.At(units.Microseconds(5), func() { r.qp1.PostRecv(0) })
	r.k.Run()

	if r.qp1.RNRNaksSent == 0 || r.qp0.RNRNaksRecv == 0 {
		t.Errorf("NAKs sent/recv = %d/%d, want > 0", r.qp1.RNRNaksSent, r.qp0.RNRNaksRecv)
	}
	if r.qp0.RnrRetransmits == 0 {
		t.Errorf("no retransmission rounds ran")
	}
	if r.qp0.RnrStall == 0 {
		t.Errorf("no backoff stall time accumulated")
	}
	if r.qp0.Errored {
		t.Fatalf("QP errored although a receive was eventually posted")
	}
	// The retransmission delivered exactly once: one recv CQE with the
	// payload, one successful send CQE.
	cqe, err := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQERecv || cqe.AmID != 7 || !bytes.Equal(cqe.Payload, payload) {
		t.Errorf("recv CQE = %+v", cqe)
	}
	if r.qp1.RxFrames != 1 {
		t.Errorf("RxFrames = %d, want exactly 1 (no duplicate delivery)", r.qp1.RxFrames)
	}
	scqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if scqe.Status != mlx.CQEOK {
		t.Errorf("send CQE status = %d, want OK", scqe.Status)
	}
}

func TestRNRRetryExhaustionErrorCQE(t *testing.T) {
	r := newRig(t)
	// No receive is ever posted: every retransmission is NAKed again until
	// the retry budget runs out and the NIC fails the WQE with an error
	// CQE instead of retrying forever (or silently dropping).
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1},
		})
	})
	r.k.Run()

	if !r.qp0.Errored || r.qp0.RetryExhausted != 1 {
		t.Fatalf("QP not errored after exhaustion: errored=%v exhausted=%d",
			r.qp0.Errored, r.qp0.RetryExhausted)
	}
	if want := uint64(DefaultRnrRetryLimit + 1); r.qp0.RNRNaksRecv != want {
		t.Errorf("NAKs received = %d, want %d (limit+1)", r.qp0.RNRNaksRecv, want)
	}
	if r.qp0.RnrRetransmits != uint64(DefaultRnrRetryLimit) {
		t.Errorf("retransmit rounds = %d, want %d", r.qp0.RnrRetransmits, DefaultRnrRetryLimit)
	}
	// Exactly one CQE: the error completion retiring the failed WQE.
	if r.qp0.CQEsWritten != 1 {
		t.Fatalf("CQEs written = %d, want 1 error CQE", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQEReq || cqe.Status != mlx.CQERnrRetryExc || cqe.WQECounter != 0 {
		t.Errorf("error CQE = %+v, want CQEReq status=%d counter=0", cqe, mlx.CQERnrRetryExc)
	}
	// Nothing was ever delivered.
	if r.qp1.RxFrames != 0 {
		t.Errorf("receiver processed %d frames", r.qp1.RxFrames)
	}
}

func TestPostAfterExhaustionFlushes(t *testing.T) {
	r := newRig(t)
	// WQE 0 exhausts its RNR retries (no receive is ever posted). A WQE
	// posted afterwards — software may race the error CQE — must be
	// flushed with an error completion, not transmitted and not panicked
	// on.
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1},
		})
	})
	r.k.At(units.Microseconds(500), func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpSend, Inline: true, Signaled: true,
			WQEIdx: 1, QPN: r.qp0.QPN, Payload: []byte{2},
		})
	})
	r.k.Run()

	if !r.qp0.Errored || r.qp0.Flushed != 1 {
		t.Fatalf("errored=%v flushed=%d, want errored with 1 flushed WQE", r.qp0.Errored, r.qp0.Flushed)
	}
	if r.qp0.CQEsWritten != 2 {
		t.Fatalf("CQEs written = %d, want the error CQE plus the flush CQE", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(1), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Status != mlx.CQEFlushErr || cqe.WQECounter != 1 {
		t.Errorf("flush CQE = %+v, want status=%d counter=1", cqe, mlx.CQEFlushErr)
	}
	// Nothing of either WQE reached the wire after the failure.
	if r.qp1.RxFrames != 0 {
		t.Errorf("receiver processed %d frames", r.qp1.RxFrames)
	}
}

func TestRNRNakRacedWithInFlightFrames(t *testing.T) {
	r := newRig(t)
	// Three back-to-back sends with no receive posted: the first is
	// refused, and the two frames already in flight behind it arrive
	// during recovery and must be discarded — then replayed in order by
	// the go-back-N retransmission once receives exist.
	r.k.At(0, func() {
		for i := 0; i < 3; i++ {
			r.pioPost(t, &mlx.WQE{
				Opcode: mlx.OpSend, Inline: true, Signaled: true,
				WQEIdx: uint16(i), QPN: r.qp0.QPN, Payload: []byte{byte(10 + i)},
			})
		}
	})
	r.k.At(units.Microseconds(1), func() {
		for i := 0; i < 3; i++ {
			r.qp1.PostRecv(0)
		}
	})
	r.k.Run()

	if r.qp1.RxDiscarded < 2 {
		t.Errorf("RxDiscarded = %d, want >= 2 (trailing in-flight frames)", r.qp1.RxDiscarded)
	}
	if r.qp0.Errored {
		t.Fatal("QP errored; replay should have delivered")
	}
	// All three delivered exactly once, in order.
	if r.qp1.RxFrames != 3 {
		t.Fatalf("RxFrames = %d, want 3", r.qp1.RxFrames)
	}
	for i := 0; i < 3; i++ {
		cqe, err := mlx.DecodeCQE(r.mem1.Read(r.qp1.RecvCQ.EntryAddr(uint16(i)), mlx.CQESize))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cqe.Payload, []byte{byte(10 + i)}) {
			t.Errorf("recv CQE %d payload = %v", i, cqe.Payload)
		}
	}
}

// newBudgetRig builds a rig whose receiver link has almost no posted
// credits and a slow credit return, so host writes block and frames are
// held against the rx budget.
func newBudgetRig(t *testing.T, budget int) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
	})
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 20)
	link0 := pcie.NewLink(k, pcie.DefaultLinkConfig())
	rc0 := pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, DefaultConfig())

	// Receiver side: one posted header+data credit at a time, returned
	// only after a long RxProcess, so MWr writes park in the pend queue.
	linkCfg := pcie.DefaultLinkConfig()
	linkCfg.PostedCredits = pcie.Credits{Hdr: 1, Data: 4}
	linkCfg.RxProcess = units.Microseconds(3)
	mem1 := memsim.New(1 << 20)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	cfg := DefaultConfig()
	cfg.RxBudget = budget
	nic1 := New(k, 1, mem1, link1, net, cfg)

	qp0 := nic0.CreateQP(64, 256)
	qp1 := nic1.CreateQP(64, 256)
	Connect(qp0, qp1)
	return &rig{k: k, mem0: mem0, mem1: mem1, rc0: rc0, link1: link1, nic0: nic0, nic1: nic1, qp0: qp0, qp1: qp1}
}

func TestRxBudgetBoundsHeldFramesAndPend(t *testing.T) {
	const budget = 1
	r := newBudgetRig(t, budget)
	dst := r.mem1.Alloc("dst", 256, 8)
	// Six back-to-back RDMA writes: the first one's MWr consumes the only
	// posted credit, the second is held (budget 1), the rest must be
	// NAKed and replayed — never buffered past the budget.
	r.k.At(0, func() {
		for i := 0; i < 6; i++ {
			r.pioPost(t, &mlx.WQE{
				Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: i == 5,
				WQEIdx: uint16(i), QPN: r.qp0.QPN,
				Payload: []byte{byte(20 + i)}, RemoteAddr: dst.Base + uint64(i),
			})
		}
	})
	r.k.Run()

	if r.nic1.RxHeldMax() > budget {
		t.Errorf("rx held high-water %d exceeds budget %d", r.nic1.RxHeldMax(), budget)
	}
	if _, up := r.link1.MaxPend(); up > budget {
		t.Errorf("receiver pend queue reached %d, budget %d", up, budget)
	}
	if r.qp1.RNRNaksSent == 0 {
		t.Error("budget overflow never NAKed")
	}
	if r.nic1.RxHeld() != 0 {
		t.Errorf("%d frames still held after drain", r.nic1.RxHeld())
	}
	// Every write eventually landed, exactly once, in order.
	for i := 0; i < 6; i++ {
		if got := r.mem1.Read(dst.Base+uint64(i), 1)[0]; got != byte(20+i) {
			t.Errorf("write %d = %d, want %d", i, got, byte(20+i))
		}
	}
	if r.qp1.RxFrames != 6 {
		t.Errorf("RxFrames = %d, want 6", r.qp1.RxFrames)
	}
}

// TestRxBudgetPerQPIsolatesSiblingQP floods one QP past its per-QP pend
// budget on a receiver with an unbounded NIC-wide budget: the flooded QP
// must be refused with RNR NAKs while a sibling QP on the same NIC keeps
// delivering untouched — the per-QP bound stops one connection from
// monopolizing the shared pend buffering.
func TestRxBudgetPerQPIsolatesSiblingQP(t *testing.T) {
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
	})
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 20)
	link0 := pcie.NewLink(k, pcie.DefaultLinkConfig())
	rc0 := pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, DefaultConfig())

	// Receiver: starved posted credits and a slow credit return hold
	// inbound frames, but only the per-QP budget bounds them.
	linkCfg := pcie.DefaultLinkConfig()
	linkCfg.PostedCredits = pcie.Credits{Hdr: 1, Data: 4}
	linkCfg.RxProcess = units.Microseconds(3)
	mem1 := memsim.New(1 << 20)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	cfg := DefaultConfig()
	cfg.RxBudgetPerQP = 1
	nic1 := New(k, 1, mem1, link1, net, cfg)

	qpA0 := nic0.CreateQP(64, 256)
	qpA1 := nic1.CreateQP(64, 256)
	Connect(qpA0, qpA1)
	qpB0 := nic0.CreateQP(64, 256)
	qpB1 := nic1.CreateQP(64, 256)
	Connect(qpB0, qpB1)

	dstA := mem1.Alloc("dstA", 256, 8)
	dstB := mem1.Alloc("dstB", 64, 8)
	post := func(qp *QP, w *mlx.WQE) {
		enc, err := w.Encode()
		if err != nil {
			t.Fatal(err)
		}
		rc0.MMIOWrite(qp.BFAddr, enc[:])
	}
	k.At(0, func() {
		// Six back-to-back writes gang up on QP A; QP B sends one.
		for i := 0; i < 6; i++ {
			post(qpA0, &mlx.WQE{
				Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: i == 5,
				WQEIdx: uint16(i), QPN: qpA0.QPN,
				Payload: []byte{byte(20 + i)}, RemoteAddr: dstA.Base + uint64(i),
			})
		}
		post(qpB0, &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: qpB0.QPN,
			Payload: []byte{77}, RemoteAddr: dstB.Base,
		})
	})
	k.Run()

	if qpA1.RNRNaksSent == 0 {
		t.Error("flooded QP was never NAKed by the per-QP budget")
	}
	if qpA1.RxHeldMax() > cfg.RxBudgetPerQP {
		t.Errorf("flooded QP held high-water %d exceeds per-QP budget %d",
			qpA1.RxHeldMax(), cfg.RxBudgetPerQP)
	}
	if qpB1.RNRNaksSent != 0 {
		t.Errorf("sibling QP was NAKed %d times", qpB1.RNRNaksSent)
	}
	if qpB1.RxFrames != 1 {
		t.Errorf("sibling RxFrames = %d, want 1", qpB1.RxFrames)
	}
	if got := mem1.Read(dstB.Base, 1)[0]; got != 77 {
		t.Errorf("sibling write = %d, want 77", got)
	}
	// The flooded QP's writes all land eventually, exactly once, in order.
	for i := 0; i < 6; i++ {
		if got := mem1.Read(dstA.Base+uint64(i), 1)[0]; got != byte(20+i) {
			t.Errorf("write %d = %d, want %d", i, got, byte(20+i))
		}
	}
	if nic1.RxHeld() != 0 || qpA1.RxHeld() != 0 || qpB1.RxHeld() != 0 {
		t.Errorf("held counts after drain: nic=%d qpA=%d qpB=%d",
			nic1.RxHeld(), qpA1.RxHeld(), qpB1.RxHeld())
	}
}

func TestDoorbellDMAFetch(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 64, 8)
	payload := []byte{4, 4, 4, 4}
	w := &mlx.WQE{
		Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
		WQEIdx: 0, QPN: r.qp0.QPN, Payload: payload, RemoteAddr: dst.Base,
	}
	enc, _ := w.Encode()
	r.mem0.Write(r.qp0.SQ.EntryAddr(0), enc[:])
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 1)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	r.k.Run()
	if got := r.mem1.Read(dst.Base, 4); !bytes.Equal(got, payload) {
		t.Errorf("doorbell path payload = %v", got)
	}
}

func TestDoorbellMultipleWQEs(t *testing.T) {
	r := newRig(t)
	dst := r.mem1.Alloc("dst", 256, 8)
	for i := 0; i < 3; i++ {
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: uint16(i), QPN: r.qp0.QPN,
			Payload: []byte{byte(10 + i)}, RemoteAddr: dst.Base + uint64(i),
		}
		enc, _ := w.Encode()
		r.mem0.Write(r.qp0.SQ.EntryAddr(uint16(i)), enc[:])
	}
	r.k.At(0, func() {
		var db [8]byte
		binary.LittleEndian.PutUint16(db[:], 3)
		r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
	})
	r.k.Run()
	if got := r.mem1.Read(dst.Base, 3); !bytes.Equal(got, []byte{10, 11, 12}) {
		t.Errorf("multi-WQE doorbell: %v", got)
	}
	if r.qp0.CQEsWritten != 3 {
		t.Errorf("CQEs = %d", r.qp0.CQEsWritten)
	}
}

func TestPIOFasterThanDoorbell(t *testing.T) {
	// The paper's core §2 point: PIO+inline eliminates the descriptor
	// DMA read (a PCIe round trip plus a memory read).
	arrival := func(useDoorbell bool) units.Time {
		r := newRig(t)
		dst := r.mem1.Alloc("dst", 64, 8)
		var committed units.Time
		// Observe the remote write commit time via memory contents.
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: false,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1}, RemoteAddr: dst.Base,
		}
		if useDoorbell {
			enc, _ := w.Encode()
			r.mem0.Write(r.qp0.SQ.EntryAddr(0), enc[:])
			r.k.At(0, func() {
				var db [8]byte
				binary.LittleEndian.PutUint16(db[:], 1)
				r.rc0.MMIOWrite(r.qp0.DBAddr, db[:])
			})
		} else {
			r.k.At(0, func() { r.pioPost(t, w) })
		}
		r.k.Run()
		if r.mem1.Read(dst.Base, 1)[0] != 1 {
			t.Fatal("payload missing")
		}
		// Find the commit time from the fabric delivery counters via a
		// rerun is overkill; approximate with final clock (last event is
		// the UpdateFC after the commit chain — identical structure for
		// both paths, so the comparison holds).
		committed = r.k.Now()
		return committed
	}
	pio := arrival(false)
	db := arrival(true)
	if db <= pio {
		t.Errorf("doorbell path (%v) should be slower than PIO (%v)", db, pio)
	}
	// The difference must include at least one PCIe round trip (~2 x
	// 137ns) plus the 150ns memory read.
	if db-pio < units.Nanoseconds(300) {
		t.Errorf("doorbell penalty only %v", db-pio)
	}
}

func TestBadMMIOPanics(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Error("unmapped BAR write did not panic")
		}
	}()
	r.k.At(0, func() {
		r.rc0.MMIOWrite(pcie.BARBase+0x500, []byte{1}) // unknown register offset
	})
	r.k.Run()
}

func TestDMATagExhaustionQueues(t *testing.T) {
	// More than 256 concurrent DMA reads must queue on tag exhaustion
	// (not panic) and all complete in order. Drive 300 QPs, each with one
	// ring-resident WQE, and ring every doorbell in the same event so 300
	// descriptor fetches are requested back to back.
	const qps = 300
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:    units.Nanoseconds(270),
		WirePerByte: units.Time(80),
	})
	linkCfg := pcie.DefaultLinkConfig()
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 22)
	link0 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, DefaultConfig())
	mem1 := memsim.New(1 << 22)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	nic1 := New(k, 1, mem1, link1, net, DefaultConfig())
	dst := mem1.Alloc("dst", qps, 8)

	var qs []*QP
	for i := 0; i < qps; i++ {
		q0 := nic0.CreateQP(4, 4)
		q1 := nic1.CreateQP(4, 4)
		Connect(q0, q1)
		w := &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: false,
			WQEIdx: 0, QPN: q0.QPN,
			Payload: []byte{byte(i)}, RemoteAddr: dst.Base + uint64(i),
		}
		enc, err := w.Encode()
		if err != nil {
			t.Fatal(err)
		}
		mem0.Write(q0.SQ.EntryAddr(0), enc[:])
		qs = append(qs, q0)
	}
	sawQueued := false
	k.At(0, func() {
		for _, q := range qs {
			q.ringDoorbell(1)
		}
		sawQueued = len(nic0.dmaPending) > 0 && nic0.inflightReads == 256
	})
	k.SetEventLimit(1_000_000)
	k.Run()
	for i := 0; i < qps; i++ {
		if got := mem1.Read(dst.Base+uint64(i), 1)[0]; got != byte(i) {
			t.Fatalf("payload %d = %d, want %d", i, got, byte(i))
		}
	}
	if !sawQueued {
		t.Error("tag space never saturated: the test did not exercise queueing")
	}
	if nic0.inflightReads != 0 || len(nic0.dmaPending) != 0 {
		t.Errorf("DMA engine not drained: %d in flight, %d queued",
			nic0.inflightReads, len(nic0.dmaPending))
	}
}

func TestQPAccounting(t *testing.T) {
	r := newRig(t)
	if r.qp0.QPN == r.qp1.QPN && r.nic0 == r.nic1 {
		t.Error("QPNs collide")
	}
	if r.qp0.DBAddr == r.qp0.BFAddr {
		t.Error("register offsets collide")
	}
	qpB := r.nic0.CreateQP(64, 256)
	if qpB.QPN == r.qp0.QPN {
		t.Error("second QP reuses QPN")
	}
	if qpB.BFAddr == r.qp0.BFAddr {
		t.Error("second QP reuses BAR window")
	}
}
