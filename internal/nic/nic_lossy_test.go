package nic

import (
	"bytes"
	"testing"

	"breakband/internal/fabric"
	"breakband/internal/faults"
	"breakband/internal/memsim"
	"breakband/internal/mlx"
	"breakband/internal/pcie"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// lossyRig is the two-NIC rig with a fault schedule compiled into the
// back-to-back fabric and the reliability timers armed.
func lossyRig(t *testing.T, cfg Config, fcfg faults.Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	net := fabric.New(k, fabric.Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     true,
	})
	linkCfg := pcie.DefaultLinkConfig()
	rcCfg := pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(240),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}
	mem0 := memsim.New(1 << 20)
	link0 := pcie.NewLink(k, linkCfg)
	rc0 := pcie.NewRootComplex(k, mem0, link0, rcCfg)
	nic0 := New(k, 0, mem0, link0, net, cfg)

	mem1 := memsim.New(1 << 20)
	link1 := pcie.NewLink(k, linkCfg)
	pcie.NewRootComplex(k, mem1, link1, rcCfg)
	nic1 := New(k, 1, mem1, link1, net, cfg)

	net.InjectFaults(faults.MustInjector(1, fcfg))

	qp0 := nic0.CreateQP(64, 256)
	qp1 := nic1.CreateQP(64, 256)
	Connect(qp0, qp1)
	return &rig{k: k, mem0: mem0, mem1: mem1, rc0: rc0, link1: link1, nic0: nic0, nic1: nic1, qp0: qp0, qp1: qp1}
}

// lossyConfig is the rig NIC config with a short ACK timeout so retry
// rounds fit in microseconds of simulated time.
func lossyConfig() Config {
	cfg := DefaultConfig()
	cfg.AckTimeout = units.Microseconds(3)
	return cfg
}

// TestAckLossDuplicateSuppressed drops the responder's first ACK: the
// initiator must time out and replay, and the responder must recognize
// the replayed PSN as a duplicate — re-ACKing without delivering twice.
func TestAckLossDuplicateSuppressed(t *testing.T) {
	// The responder's first egress frame is the ACK for the data frame.
	r := lossyRig(t, lossyConfig(), faults.Config{
		DropNth: []faults.ScriptedDrop{{Port: fabric.EgressName(1), N: 1}},
	})
	dst := r.mem1.Alloc("dst", 64, 8)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: payload, RemoteAddr: dst.Base,
		})
	})
	r.k.Run()

	if got := r.mem1.Read(dst.Base, 8); !bytes.Equal(got, payload) {
		t.Errorf("remote memory = %v", got)
	}
	if r.qp0.AckTimeouts != 1 || r.qp0.Retransmits != 1 {
		t.Errorf("timeouts/retransmits = %d/%d, want 1/1", r.qp0.AckTimeouts, r.qp0.Retransmits)
	}
	if r.qp1.RxFrames != 1 || r.qp1.DupRxFrames != 1 {
		t.Errorf("responder rx/dup = %d/%d, want 1/1 (duplicate must be suppressed)",
			r.qp1.RxFrames, r.qp1.DupRxFrames)
	}
	if r.qp0.Errored {
		t.Fatal("QP errored although the replay was ACKed")
	}
	// Exactly one successful completion despite the wire-level duplicate.
	if r.qp0.CQEsWritten != 1 {
		t.Errorf("CQEs written = %d, want 1", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Status != mlx.CQEOK || cqe.WQECounter != 0 {
		t.Errorf("send CQE = %+v, want OK counter=0", cqe)
	}
}

// TestDataLossSequenceNak drops the first data frame of a two-WQE burst:
// the responder sees PSN 1 while expecting 0, NAKs the gap, and the
// initiator replays the tail immediately — well before its ACK timeout.
func TestDataLossSequenceNak(t *testing.T) {
	cfg := lossyConfig()
	cfg.AckTimeout = units.Microseconds(100) // NAK recovery must beat this
	r := lossyRig(t, cfg, faults.Config{
		DropNth: []faults.ScriptedDrop{{Port: fabric.EgressName(0), N: 1}},
	})
	dst := r.mem1.Alloc("dst", 64, 16)
	r.k.At(0, func() {
		for i := 0; i < 2; i++ {
			r.pioPost(t, &mlx.WQE{
				Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: i == 1,
				WQEIdx: uint16(i), QPN: r.qp0.QPN,
				Payload: []byte{byte(10 + i)}, RemoteAddr: dst.Base + uint64(i),
			})
		}
	})
	r.k.Run()

	if got := r.mem1.Read(dst.Base, 2); !bytes.Equal(got, []byte{10, 11}) {
		t.Errorf("remote memory = %v, want [10 11]", got)
	}
	if r.qp1.SeqNaksSent != 1 || r.qp0.SeqNaksRecv != 1 {
		t.Errorf("seq NAKs sent/recv = %d/%d, want 1/1", r.qp1.SeqNaksSent, r.qp0.SeqNaksRecv)
	}
	if r.qp0.AckTimeouts != 0 {
		t.Errorf("ACK timeout fired %d times; the NAK should have recovered first", r.qp0.AckTimeouts)
	}
	if r.qp0.Retransmits != 2 {
		t.Errorf("retransmits = %d, want 2 (go-back-N from the lost PSN)", r.qp0.Retransmits)
	}
	if r.qp1.RxDiscarded == 0 {
		t.Error("the out-of-sequence frame was not discarded")
	}
	if r.qp0.Errored {
		t.Fatal("QP errored")
	}
	if r.k.Now() > units.Microseconds(50) {
		t.Errorf("recovery took %v; NAK-driven replay should not wait for the ACK timeout", r.k.Now())
	}
}

// TestSequenceNakLossTimeoutCovers drops a data frame and then the
// sequence NAK it provokes: the ACK timeout is the recovery of last
// resort and must replay the window.
func TestSequenceNakLossTimeoutCovers(t *testing.T) {
	r := lossyRig(t, lossyConfig(), faults.Config{
		DropNth: []faults.ScriptedDrop{
			{Port: fabric.EgressName(0), N: 1}, // first data frame
			{Port: fabric.EgressName(1), N: 1}, // the SeqNak it provokes
		},
	})
	dst := r.mem1.Alloc("dst", 64, 16)
	r.k.At(0, func() {
		for i := 0; i < 2; i++ {
			r.pioPost(t, &mlx.WQE{
				Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: i == 1,
				WQEIdx: uint16(i), QPN: r.qp0.QPN,
				Payload: []byte{byte(20 + i)}, RemoteAddr: dst.Base + uint64(i),
			})
		}
	})
	r.k.Run()

	if got := r.mem1.Read(dst.Base, 2); !bytes.Equal(got, []byte{20, 21}) {
		t.Errorf("remote memory = %v, want [20 21]", got)
	}
	if r.qp1.SeqNaksSent != 1 {
		t.Errorf("seq NAKs sent = %d, want 1 (then dropped)", r.qp1.SeqNaksSent)
	}
	if r.qp0.SeqNaksRecv != 0 {
		t.Errorf("seq NAKs received = %d, want 0 (the NAK was lost)", r.qp0.SeqNaksRecv)
	}
	if r.qp0.AckTimeouts == 0 {
		t.Error("ACK timeout never fired; nothing else could recover the loss")
	}
	if r.qp0.Errored {
		t.Fatal("QP errored")
	}
	if r.qp0.CQEsWritten != 1 {
		t.Errorf("CQEs written = %d, want 1", r.qp0.CQEsWritten)
	}
}

// TestTotalLossRetryExhaustion runs against a 100% drop link: the
// initiator must burn its whole retry budget in timeout rounds and then
// fail the QP with a transport-retry-exceeded error CQE — not hang, not
// retry forever.
func TestTotalLossRetryExhaustion(t *testing.T) {
	r := lossyRig(t, lossyConfig(), faults.Config{DropRate: 1.0})
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1}, RemoteAddr: r.mem1.Alloc("dst", 64, 8).Base,
		})
	})
	r.k.Run()

	if !r.qp0.Errored {
		t.Fatal("QP survived a 100% lossy link")
	}
	if want := uint64(DefaultRetryCnt + 1); r.qp0.AckTimeouts != want {
		t.Errorf("ACK timeouts = %d, want %d (budget + the failing round)", r.qp0.AckTimeouts, want)
	}
	if r.qp0.Retransmits != uint64(DefaultRetryCnt) {
		t.Errorf("retransmit rounds = %d, want %d", r.qp0.Retransmits, DefaultRetryCnt)
	}
	if r.qp1.RxFrames != 0 {
		t.Errorf("receiver processed %d frames over a dead link", r.qp1.RxFrames)
	}
	if r.qp0.CQEsWritten != 1 {
		t.Fatalf("CQEs written = %d, want 1 error CQE", r.qp0.CQEsWritten)
	}
	cqe, err := mlx.DecodeCQE(r.mem0.Read(r.qp0.SendCQ.EntryAddr(0), mlx.CQESize))
	if err != nil {
		t.Fatal(err)
	}
	if cqe.Op != mlx.CQEReq || cqe.Status != mlx.CQERetryExc || cqe.WQECounter != 0 {
		t.Errorf("error CQE = %+v, want CQEReq status=%d counter=0", cqe, mlx.CQERetryExc)
	}
}

// TestTimeoutBackoffExponential checks the timeout streak doubles the
// wait: with every frame dropped, round N fires no earlier than
// AckTimeout << N after the previous one.
func TestTimeoutBackoffExponential(t *testing.T) {
	cfg := lossyConfig()
	cfg.RetryCnt = 3
	r := lossyRig(t, cfg, faults.Config{DropRate: 1.0})
	r.k.At(0, func() {
		r.pioPost(t, &mlx.WQE{
			Opcode: mlx.OpRDMAWrite, Inline: true, Signaled: true,
			WQEIdx: 0, QPN: r.qp0.QPN, Payload: []byte{1}, RemoteAddr: r.mem1.Alloc("dst", 64, 8).Base,
		})
	})
	r.k.Run()
	// Rounds at ~3, +6, +12, +24 µs: the run must outlast the sum of the
	// exponential ladder but stay under a flat-times-rounds regime's
	// worst case plus slack.
	base := cfg.AckTimeout
	minEnd := base + 2*base + 4*base // first three gaps, each doubled
	if r.k.Now() < minEnd {
		t.Errorf("run ended at %v, want >= %v (backoff not exponential)", r.k.Now(), minEnd)
	}
	if want := uint64(cfg.RetryCnt + 1); r.qp0.AckTimeouts != want {
		t.Errorf("ACK timeouts = %d, want %d", r.qp0.AckTimeouts, want)
	}
}

// TestAdaptiveRnrTimer checks the initiator honors the responder's
// advertised RNR timer field instead of its own configured backoff base.
func TestAdaptiveRnrTimer(t *testing.T) {
	run := func(advertised units.Time) units.Time {
		k := sim.NewKernel()
		net := fabric.New(k, fabric.Config{
			WireProp:      units.Nanoseconds(270),
			WirePerByte:   units.Time(80),
			FrameOverhead: 30,
			SwitchLatency: units.Nanoseconds(108),
			UseSwitch:     true,
		})
		linkCfg := pcie.DefaultLinkConfig()
		rcCfg := pcie.RCConfig{
			RCToMemBase:      units.Nanoseconds(240),
			RCToMemBaseBytes: 64,
			MemReadLatency:   units.Nanoseconds(150),
		}
		mem0 := memsim.New(1 << 20)
		link0 := pcie.NewLink(k, linkCfg)
		rc0 := pcie.NewRootComplex(k, mem0, link0, rcCfg)
		nic0 := New(k, 0, mem0, link0, net, DefaultConfig())

		respCfg := DefaultConfig()
		respCfg.RnrNakTimer = advertised
		mem1 := memsim.New(1 << 20)
		link1 := pcie.NewLink(k, linkCfg)
		pcie.NewRootComplex(k, mem1, link1, rcCfg)
		nic1 := New(k, 1, mem1, link1, net, respCfg)

		qp0 := nic0.CreateQP(64, 256)
		qp1 := nic1.CreateQP(64, 256)
		Connect(qp0, qp1)

		k.At(0, func() {
			enc, err := (&mlx.WQE{
				Opcode: mlx.OpSend, Inline: true, Signaled: true,
				WQEIdx: 0, QPN: qp0.QPN, AmID: 1, Payload: []byte{1},
			}).Encode()
			if err != nil {
				t.Fatal(err)
			}
			rc0.MMIOWrite(qp0.BFAddr, enc[:])
		})
		// Post the receive immediately after the first refusal would have
		// been seen; completion time then tracks the backoff base.
		k.At(units.Microseconds(2), func() { qp1.PostRecv(0) })
		k.Run()
		if qp0.Errored {
			t.Fatal("QP errored")
		}
		return k.Now()
	}

	deflt := run(0)
	slow := run(units.Microseconds(40))
	if slow <= deflt {
		t.Errorf("advertised 40us RNR timer finished at %v, default at %v; the initiator ignored the timer field",
			slow, deflt)
	}
	if slow < units.Microseconds(40) {
		t.Errorf("retry landed at %v, before the advertised 40us RNR delay elapsed", slow)
	}
}
