package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNanoseconds(t *testing.T) {
	cases := []struct {
		ns   float64
		want Time
	}{
		{0, 0},
		{1, 1000},
		{27.78, 27780},
		{94.25, 94250},
		{0.0005, 1}, // rounds to nearest picosecond
		{-1.5, -1500},
	}
	for _, c := range cases {
		if got := Nanoseconds(c.ns); got != c.want {
			t.Errorf("Nanoseconds(%v) = %v, want %v", c.ns, got, c.want)
		}
	}
}

func TestNsRoundTrip(t *testing.T) {
	// Table-1 style values must survive the ns -> Time -> ns round trip
	// exactly (they have at most 2 decimal places).
	vals := []float64{27.78, 17.33, 21.07, 94.25, 14.99, 175.42, 61.63, 8.99,
		49.69, 137.49, 274.81, 108, 240.96, 24.37, 2.19, 47.99, 293.29, 139.78, 150.51}
	for _, v := range vals {
		if got := Nanoseconds(v).Ns(); got != v {
			t.Errorf("round trip of %v ns = %v", v, got)
		}
	}
}

func TestMicroseconds(t *testing.T) {
	if got := Microseconds(1.5); got != 1500*Nanosecond {
		t.Errorf("Microseconds(1.5) = %v", got)
	}
}

func TestConversions(t *testing.T) {
	tm := 2500 * Nanosecond
	if tm.Us() != 2.5 {
		t.Errorf("Us() = %v", tm.Us())
	}
	if Second.Seconds() != 1 {
		t.Errorf("Seconds() = %v", Second.Seconds())
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ps"},
		{282330, "282.33ns"},
		{1387020, "1387.02ns"},
		{15 * Microsecond, "15.000us"},
		{20 * Millisecond, "0.020000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
}

func TestQuickNsConsistency(t *testing.T) {
	// Property: Time -> Ns -> Nanoseconds is the identity for all times
	// representable exactly as float64 nanoseconds.
	f := func(raw int32) bool {
		tm := Time(raw) * Nanosecond
		return Nanoseconds(tm.Ns()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinMaxOrdering(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Time(a), Time(b)
		lo, hi := Min(x, y), Max(x, y)
		return lo <= hi && (lo == x || lo == y) && (hi == x || hi == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxTime(t *testing.T) {
	if MaxTime != Time(math.MaxInt64) {
		t.Error("MaxTime changed")
	}
}
