// Package units defines the simulated time base used throughout breakband.
//
// All simulation timestamps and durations are integer picoseconds. An int64
// picosecond clock covers ~106 days of simulated time, far beyond any
// experiment in this repository, while representing every calibration
// constant from the paper (e.g. 27.78 ns) exactly.
package units

import (
	"fmt"
	"math"
)

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable instant. It is used as an "infinitely
// far in the future" sentinel by schedulers.
const MaxTime Time = math.MaxInt64

// Nanoseconds converts a floating-point nanosecond quantity (the unit used by
// the paper's Table 1) to a Time, rounding to the nearest picosecond.
func Nanoseconds(ns float64) Time {
	return Time(math.Round(ns * 1000))
}

// Microseconds converts a floating-point microsecond quantity to a Time.
func Microseconds(us float64) Time {
	return Time(math.Round(us * 1e6))
}

// Ns reports t in nanoseconds as a float64. This is the presentation unit for
// every table and figure in the paper.
func (t Time) Ns() float64 { return float64(t) / 1000 }

// Us reports t in microseconds as a float64.
func (t Time) Us() float64 { return float64(t) / 1e6 }

// Seconds reports t in seconds as a float64.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the time with an adaptive unit, e.g. "282.33ns" or "1.39us".
func (t Time) String() string {
	switch abs := t.abs(); {
	case abs < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case abs < 10*Microsecond:
		return fmt.Sprintf("%.2fns", t.Ns())
	case abs < 10*Millisecond:
		return fmt.Sprintf("%.3fus", t.Us())
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

func (t Time) abs() Time {
	if t < 0 {
		return -t
	}
	return t
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
