package campaign

import (
	"fmt"
	"runtime"
	"sync"
)

// Task is one isolated unit of work. Name identifies the task in panics
// (and is what callers derive per-task noise seeds from, see
// rng.DeriveSeed); Run executes it.
type Task struct {
	Name string
	Run  func()
}

// Workers resolves a Parallelism-style option: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is taken as-is.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// taskPanic records a panicking task so the pool can re-raise it
// deterministically.
type taskPanic struct {
	index int
	name  string
	value any
}

// Run executes tasks on a pool of Workers(parallelism) goroutines and
// returns when every task has finished. Task results must flow through the
// tasks' own slots; the engine imposes no ordering. If tasks panic, Run
// panics with the first one in slice order — independent of pool width, so
// failures reproduce identically under any parallelism.
func Run(parallelism int, tasks []Task) {
	workers := Workers(parallelism)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		failed *taskPanic
	)
	runOne := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				mu.Lock()
				if failed == nil || i < failed.index {
					failed = &taskPanic{index: i, name: tasks[i].Name, value: v}
				}
				mu.Unlock()
			}
		}()
		tasks[i].Run()
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runOne(i)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if failed != nil {
		panic(fmt.Sprintf("campaign: task %q: %v", failed.name, failed.value))
	}
}

// Map fans fn out over items on a Run pool and returns the results in item
// order. fn must be safe to call concurrently and, like a Task, must not
// share mutable state across items.
func Map[T, R any](parallelism int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	tasks := make([]Task, len(items))
	for i := range items {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("map[%d]", i),
			Run:  func() { out[i] = fn(i, items[i]) },
		}
	}
	Run(parallelism, tasks)
	return out
}
