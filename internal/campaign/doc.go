// Package campaign is the bounded-parallel task engine behind the
// measurement campaign and the perftest sweeps.
//
// The paper's §3 methodology ("we do not simultaneously measure time in any
// other component") forces every sub-measurement to build a fresh,
// independent system; nothing is shared between them, so they can execute
// concurrently with results bit-identical to a serial run. The engine
// enforces only the scheduling side of that contract: tasks run on a worker
// pool of configurable width (Workers resolves 0 to GOMAXPROCS, 1 forces
// serial) and Run returns when all of them have finished; Map is the
// generic fan-out over a slice with one result slot per item.
//
// # Ownership rules for tasks
//
// Isolation is the task author's side of the contract. A task must:
//
//   - build its own config and simulated system (never share a
//     node.System, sim.Kernel, or any component between tasks — the
//     kernel is single-threaded by design);
//   - derive its own random stream from the campaign seed and the task's
//     *name* (rng.DeriveSeed), never from its execution order or worker
//     index, so parallel and serial runs draw identically;
//   - write only to its own result slot (the Task closure's captured
//     pointer, or Map's per-index return) — results are published by the
//     pool's completion barrier, so no further synchronization is needed;
//   - shut its system down before returning (leaked procs outlive the
//     task and show up in later measurements' wall clock).
//
// A panic inside a task is captured and re-raised on the caller's
// goroutine after the pool drains, with the task name attached and the
// first panicking task chosen in slice order (independent of pool width,
// so even failures are deterministic) — a misbehaving sub-measurement
// fails the campaign loudly instead of deadlocking it.
package campaign
