package campaign

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}

func TestRunExecutesEveryTask(t *testing.T) {
	for _, par := range []int{1, 3, 16} {
		ran := make([]int32, 40)
		var tasks []Task
		for i := range ran {
			i := i
			tasks = append(tasks, Task{Name: "t", Run: func() { atomic.AddInt32(&ran[i], 1) }})
		}
		Run(par, tasks)
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", par, i, n)
			}
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const par = 3
	var cur, peak int32
	var tasks []Task
	for i := 0; i < 24; i++ {
		tasks = append(tasks, Task{Name: "t", Run: func() {
			n := atomic.AddInt32(&cur, 1)
			for {
				p := atomic.LoadInt32(&peak)
				if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
					break
				}
			}
			runtime.Gosched()
			atomic.AddInt32(&cur, -1)
		}})
	}
	Run(par, tasks)
	if peak > par {
		t.Errorf("observed %d concurrent tasks, pool bound is %d", peak, par)
	}
}

func TestRunPanicsWithFirstTaskInSliceOrder(t *testing.T) {
	for _, par := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("parallelism %d: panic not propagated", par)
				}
				msg, ok := v.(string)
				if !ok || !strings.Contains(msg, `"boom-1"`) {
					t.Errorf("parallelism %d: panic = %v, want the lowest-index task boom-1", par, v)
				}
			}()
			Run(par, []Task{
				{Name: "ok", Run: func() {}},
				{Name: "boom-1", Run: func() { panic("first") }},
				{Name: "ok2", Run: func() {}},
				{Name: "boom-3", Run: func() { panic("second") }},
			})
		}()
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	out := Map(8, in, func(i, v int) int {
		if i != v {
			t.Errorf("index %d paired with item %d", i, v)
		}
		return v * v
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
