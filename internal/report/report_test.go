package report

import (
	"strings"
	"testing"

	"breakband/internal/core/breakdown"
	"breakband/internal/core/model"
	"breakband/internal/core/whatif"
	"breakband/internal/stats"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "b"}}
	tb.AddRow("x", "1")
	tb.AddRow("longer", "2")
	out := tb.String()
	for _, want := range []string{"T\n", "a", "b", "x", "longer", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header and rows must be aligned to the same width.
	if len(lines[1]) == 0 || len(lines) != 5 {
		t.Errorf("unexpected layout: %q", lines)
	}
}

func TestTableRowArity(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	defer func() {
		if recover() == nil {
			t.Error("wrong arity row did not panic")
		}
	}()
	tb.AddRow("only one")
}

func TestCSV(t *testing.T) {
	tb := &Table{Headers: []string{"name", "value"}}
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, "name,value\n") {
		t.Error("csv header missing")
	}
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("csv escaping broken:\n%s", csv)
	}
}

func TestBar(t *testing.T) {
	b := breakdown.New("demo",
		breakdown.Part{Label: "x", Ns: 30},
		breakdown.Part{Label: "y", Ns: 70},
	)
	out := Bar(b, 50)
	if !strings.Contains(out, "demo (100.00 ns)") {
		t.Errorf("title missing:\n%s", out)
	}
	// The bar body must be exactly the requested width.
	start := strings.Index(out, "[")
	end := strings.Index(out, "]")
	if end-start-1 != 50 {
		t.Errorf("bar width = %d, want 50", end-start-1)
	}
	if !strings.Contains(out, "x 30.00%") || !strings.Contains(out, "y 70.00%") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	c := model.Paper()
	out := Bars(breakdown.Fig14HLPvsLLP(c), 40)
	if strings.Count(out, "[") != 3 {
		t.Errorf("expected 3 bars:\n%s", out)
	}
}

func TestHistogramText(t *testing.T) {
	h := stats.NewHistogram(0, 100, 4)
	for _, v := range []float64{10, 10, 30, 150} {
		h.Add(v)
	}
	out := HistogramText(h, 20)
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	if !strings.Contains(out, "over range") {
		t.Error("over-range note missing")
	}
}

func TestSeriesTable(t *testing.T) {
	c := model.Paper()
	tbl := SeriesTable("fig17d", whatif.Fig17dNetworkLatency(c))
	out := tbl.String()
	for _, want := range []string{"Wire", "Switch", "10%", "90%", "5.45%"} {
		if !strings.Contains(out, want) {
			t.Errorf("series table missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesChart(t *testing.T) {
	c := model.Paper()
	out := SeriesChart("fig17a", whatif.Fig17aCPUInjection(c), 10)
	for _, want := range []string{"fig17a", "a = HLP", "b = LLP", "overhead reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}
