// Package report renders the reproduction's tables and figures as aligned
// text (for the CLI and EXPERIMENTS.md) and CSV (for external plotting).
// Breakdown figures render as stacked percentage bars in the visual style of
// the paper's Figures 4-16; what-if curves render as series tables and an
// ASCII chart like Figure 17.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"breakband/internal/core/breakdown"
	"breakband/internal/core/whatif"
	"breakband/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the header count panic (a report bug).
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, want %d", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := len(t.Headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes around cells
// containing commas).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	write := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	write(t.Headers)
	for _, r := range t.Rows {
		write(r)
	}
	return b.String()
}

// barGlyphs cycles distinct fills for stacked-bar segments.
var barGlyphs = []byte{'#', '=', '+', ':', '.', '%', '*', 'o', '-'}

// Bar renders one breakdown as a stacked percentage bar with a legend, e.g.
//
//	LLP_post (175.42 ns)
//	[######==+++:::::::::::::::::::::::::.....]
//	 # MD setup 15.8%  = Barrier for MD 9.9%  ...
func Bar(b breakdown.Breakdown, width int) string {
	if width <= 0 {
		width = 60
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (%.2f ns)\n[", b.Title, b.TotalNs)
	used := 0
	cells := make([]int, len(b.Parts))
	for i, p := range b.Parts {
		n := int(math.Round(p.Pct / 100 * float64(width)))
		if used+n > width {
			n = width - used
		}
		cells[i] = n
		used += n
	}
	// Distribute rounding leftovers to the largest part.
	if used < width && len(cells) > 0 {
		maxI := 0
		for i, n := range cells {
			if n > cells[maxI] {
				maxI = i
			}
		}
		cells[maxI] += width - used
	}
	for i, n := range cells {
		sb.Write(bytesRepeat(barGlyphs[i%len(barGlyphs)], n))
	}
	sb.WriteString("]\n ")
	for i, p := range b.Parts {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%c %s %.2f%% (%.2f ns)", barGlyphs[i%len(barGlyphs)], p.Label, p.Pct, p.Ns)
	}
	sb.WriteByte('\n')
	return sb.String()
}

func bytesRepeat(c byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// Bars renders several breakdowns, one bar each.
func Bars(bs []breakdown.Breakdown, width int) string {
	var sb strings.Builder
	for i, b := range bs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(Bar(b, width))
	}
	return sb.String()
}

// HistogramText renders a stats.Histogram vertically, in the spirit of the
// paper's Figure 7 probability-density plot.
func HistogramText(h *stats.Histogram, width int) string {
	if width <= 0 {
		width = 50
	}
	maxD := 0.0
	for i := range h.Counts {
		if d := h.Density(i); d > maxD {
			maxD = d
		}
	}
	var sb strings.Builder
	bw := h.BinWidth()
	for i, n := range h.Counts {
		lo := h.Lo + float64(i)*bw
		bar := 0
		if maxD > 0 {
			bar = int(math.Round(h.Density(i) / maxD * float64(width)))
		}
		fmt.Fprintf(&sb, "%8.1f-%-8.1f |%s %d\n", lo, lo+bw, strings.Repeat("#", bar), n)
	}
	if h.Under > 0 {
		fmt.Fprintf(&sb, "   < %-10.1f (%d under range)\n", h.Lo, h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&sb, "   > %-10.1f (%d over range; the paper's Figure 7 also notes its max off-scale)\n", h.Hi, h.Over)
	}
	return sb.String()
}

// SeriesTable renders what-if series as a reduction-by-component table
// (Figure 17's data).
func SeriesTable(title string, series []whatif.Series) *Table {
	t := &Table{Title: title, Headers: []string{"reduction"}}
	for _, s := range series {
		t.Headers = append(t.Headers, s.Name)
	}
	if len(series) == 0 {
		return t
	}
	for i, r := range series[0].Reductions {
		row := []string{fmt.Sprintf("%.0f%%", r*100)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.2f%%", s.SpeedupPct[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// SeriesChart renders the series as a coarse ASCII line chart (speedup vs
// reduction), matching Figure 17's visual form.
func SeriesChart(title string, series []whatif.Series, height int) string {
	if height <= 0 {
		height = 12
	}
	maxY := 0.0
	for _, s := range series {
		for _, v := range s.SpeedupPct {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	cols := len(series[0].Reductions)
	const colW = 8
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = bytesRepeat(' ', cols*colW)
	}
	marks := "abcdefghijklmn"
	for si, s := range series {
		for ci, v := range s.SpeedupPct {
			row := height - 1 - int(math.Round(v/maxY*float64(height-1)))
			col := ci*colW + colW/2
			if grid[row][col] == ' ' {
				grid[row][col] = marks[si%len(marks)]
			} else {
				grid[row][col] = '*' // overlapping points
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (y: speedup %%, max %.2f%%; * = overlap)\n", title, maxY)
	for i, row := range grid {
		y := maxY * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(&sb, "%6.1f%% |%s\n", y, string(row))
	}
	sb.WriteString("        +" + strings.Repeat("-", cols*colW) + "\n         ")
	for _, r := range series[0].Reductions {
		fmt.Fprintf(&sb, "%-*s", colW, fmt.Sprintf("%.0f%%", r*100))
	}
	sb.WriteString("  (overhead reduction)\n")
	for si, s := range series {
		fmt.Fprintf(&sb, "         %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return sb.String()
}

// SortedKeys returns a map's keys sorted, for deterministic report output.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
