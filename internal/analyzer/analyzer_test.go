package analyzer

import (
	"strings"
	"testing"

	"breakband/internal/pcie"
	"breakband/internal/units"
)

func tlp(typ pcie.TLPType, seq uint64, payload int, addr uint64) *pcie.TLP {
	return &pcie.TLP{Type: typ, Seq: seq, Data: make([]byte, payload), Addr: addr}
}

func TestCaptureAndFilter(t *testing.T) {
	a := New("n0")
	a.ObserveTLP(10, pcie.Down, tlp(pcie.MWr, 0, 64, 0x100))
	a.ObserveTLP(20, pcie.Up, tlp(pcie.MWr, 0, 64, 0x200))
	a.ObserveDLLP(30, pcie.Up, &pcie.DLLP{Type: pcie.Ack, AckSeq: 0})
	if len(a.Records()) != 3 {
		t.Fatalf("captured %d", len(a.Records()))
	}
	down := a.TLPs(pcie.Down, pcie.MWr, 64, 64)
	if len(down) != 1 || down[0].Addr != 0x100 {
		t.Errorf("downstream filter: %+v", down)
	}
	if got := a.TLPs(pcie.Down, pcie.MWr, 65, 0); len(got) != 0 {
		t.Error("min-payload filter leaked")
	}
}

func TestDisabledAndClear(t *testing.T) {
	a := New("n0")
	a.SetEnabled(false)
	a.ObserveTLP(10, pcie.Down, tlp(pcie.MWr, 0, 64, 0))
	if len(a.Records()) != 0 {
		t.Error("disabled analyzer recorded")
	}
	a.SetEnabled(true)
	a.ObserveTLP(10, pcie.Down, tlp(pcie.MWr, 0, 64, 0))
	a.Clear()
	if len(a.Records()) != 0 {
		t.Error("Clear left records")
	}
}

func TestLimit(t *testing.T) {
	a := New("n0")
	a.Limit = 2
	for i := 0; i < 5; i++ {
		a.ObserveTLP(units.Time(i), pcie.Down, tlp(pcie.MWr, uint64(i), 8, 0))
	}
	if len(a.Records()) != 2 {
		t.Errorf("limit not enforced: %d", len(a.Records()))
	}
}

func TestDeltas(t *testing.T) {
	recs := []Record{
		{At: units.Nanoseconds(100)},
		{At: units.Nanoseconds(380)},
		{At: units.Nanoseconds(660)},
	}
	s := Deltas(recs)
	if s.N() != 2 || s.Mean() != 280 {
		t.Errorf("deltas n=%d mean=%v", s.N(), s.Mean())
	}
	if Deltas(nil).N() != 0 {
		t.Error("empty deltas nonzero")
	}
}

func TestAckRoundTrips(t *testing.T) {
	a := New("n0")
	// Upstream MWr at 100ns, its ACK (downstream) at 375ns -> half RT 137.5.
	a.ObserveTLP(units.Nanoseconds(100), pcie.Up, tlp(pcie.MWr, 7, 64, 0))
	a.ObserveDLLP(units.Nanoseconds(375), pcie.Down, &pcie.DLLP{Type: pcie.Ack, AckSeq: 7})
	// Unrelated ACK must not match.
	a.ObserveDLLP(units.Nanoseconds(999), pcie.Down, &pcie.DLLP{Type: pcie.Ack, AckSeq: 8})
	s := a.AckRoundTrips(pcie.Up, pcie.MWr)
	if s.N() != 1 || s.Mean() != 137.5 {
		t.Errorf("round trips n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestPairDeltas(t *testing.T) {
	a := New("n0")
	a.ObserveTLP(units.Nanoseconds(0), pcie.Down, tlp(pcie.MWr, 0, 64, 0))
	a.ObserveTLP(units.Nanoseconds(50), pcie.Down, tlp(pcie.MWr, 1, 64, 0)) // ignored: already armed
	a.ObserveTLP(units.Nanoseconds(700), pcie.Up, tlp(pcie.MWr, 0, 64, 0))
	a.ObserveTLP(units.Nanoseconds(1000), pcie.Down, tlp(pcie.MWr, 2, 64, 0))
	a.ObserveTLP(units.Nanoseconds(1800), pcie.Up, tlp(pcie.MWr, 1, 64, 0))
	s := a.PairDeltas(
		func(r Record) bool { return r.Dir == pcie.Down && r.IsTLP },
		func(r Record) bool { return r.Dir == pcie.Up && r.IsTLP },
	)
	if s.N() != 2 {
		t.Fatalf("pairs = %d", s.N())
	}
	if s.Mean() != (700+800)/2 {
		t.Errorf("pair mean = %v", s.Mean())
	}
}

func TestFormatTrace(t *testing.T) {
	a := New("n0")
	a.ObserveTLP(units.Nanoseconds(100), pcie.Down, tlp(pcie.MWr, 3, 64, 0xd000))
	a.ObserveDLLP(units.Nanoseconds(105), pcie.Up, &pcie.DLLP{Type: pcie.Ack, AckSeq: 3})
	out := a.FormatTrace(0)
	for _, want := range []string{"MWr", "Ack", "down", "up", "0xd000"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(New("x").FormatTrace(0), "TIME") {
		t.Error("header missing")
	}
	a.ObserveTLP(units.Nanoseconds(200), pcie.Down, tlp(pcie.MWr, 4, 64, 0))
	if !strings.Contains(a.FormatTrace(1), "more records") {
		t.Error("truncation note missing")
	}
}

func TestKind(t *testing.T) {
	r := Record{IsTLP: true, TLPType: pcie.MWr}
	if r.Kind() != "MWr" {
		t.Error("TLP kind")
	}
	r = Record{IsTLP: false, DLLPType: pcie.UpdateFC}
	if r.Kind() != "UpdateFC" {
		t.Error("DLLP kind")
	}
}

func TestRingWraparound(t *testing.T) {
	a := New("n0")
	a.SetRing(4)
	for i := 0; i < 10; i++ {
		a.ObserveTLP(units.Time(i*100), pcie.Down, tlp(pcie.MWr, uint64(i), 8, uint64(i)))
	}
	if a.Len() != 4 {
		t.Fatalf("ring held %d records, want 4", a.Len())
	}
	if a.Overwritten() != 6 {
		t.Errorf("overwritten %d, want 6", a.Overwritten())
	}
	recs := a.Records()
	for i, r := range recs {
		if want := uint64(6 + i); r.Seq != want {
			t.Errorf("record %d has seq %d, want %d (oldest-first tail)", i, r.Seq, want)
		}
	}
	// The trace table over a wrapped ring must also start at the oldest
	// record, not the overwrite cursor.
	if got := a.FormatTrace(1); !strings.Contains(got, "600ps") {
		t.Errorf("FormatTrace does not start at the oldest record:\n%s", got)
	}
}

func TestRingDeltasAfterWrap(t *testing.T) {
	a := New("n0")
	a.SetRing(3)
	// 7 captures 280ns apart: the ring keeps the last 3, so deltas over
	// Records() must see exactly 2 gaps of 280ns each — time-ordered
	// despite the buffer having wrapped twice.
	for i := 0; i < 7; i++ {
		a.ObserveTLP(units.Nanoseconds(float64(100+280*i)), pcie.Down, tlp(pcie.MWr, uint64(i), 64, 0))
	}
	s := Deltas(a.Records())
	if s.N() != 2 || s.Mean() != 280 {
		t.Errorf("wrapped deltas n=%d mean=%v, want 2 x 280ns", s.N(), s.Mean())
	}
	if s.Min() != s.Max() {
		t.Errorf("wrapped record order is not time order: deltas %v..%v", s.Min(), s.Max())
	}
}

func TestRingClearAndModeSwitch(t *testing.T) {
	a := New("n0")
	a.SetRing(2)
	for i := 0; i < 5; i++ {
		a.ObserveTLP(units.Time(i), pcie.Down, tlp(pcie.MWr, uint64(i), 8, 0))
	}
	a.Clear()
	if a.Len() != 0 || a.Overwritten() != 0 {
		t.Errorf("Clear left len=%d overwritten=%d", a.Len(), a.Overwritten())
	}
	a.ObserveTLP(7, pcie.Down, tlp(pcie.MWr, 7, 8, 0))
	if a.Len() != 1 || a.Records()[0].Seq != 7 {
		t.Error("ring does not capture after Clear")
	}
	// Back to chunked mode: unbounded again, Limit honoured again.
	a.SetRing(0)
	a.Limit = 3
	for i := 0; i < 5; i++ {
		a.ObserveTLP(units.Time(i), pcie.Down, tlp(pcie.MWr, uint64(i), 8, 0))
	}
	if a.Len() != 3 {
		t.Errorf("chunked mode after ring: len=%d, want Limit=3", a.Len())
	}
}
