// Package analyzer models the Lecroy PCIe protocol analyzer from the paper's
// evaluation setup (its Figure 3): a passive instrument sitting on the link
// just before the NIC, timestamping every TLP and DLLP that passes.
//
// All of the paper's hardware-side measurements are derived from trace
// queries implemented here: downstream deltas (injection overhead, Figure 7),
// TLP-to-ACK round trips (the PCIe component), downstream-to-upstream deltas
// (the Network component) and inbound-pong to outbound-ping deltas (the
// RC-to-MEM component, Figure 9).
package analyzer

import (
	"fmt"
	"strings"

	"breakband/internal/pcie"
	"breakband/internal/stats"
	"breakband/internal/units"
)

// Record is one captured packet.
type Record struct {
	At  units.Time
	Dir pcie.Dir
	// TLP fields; Kind=="TLP" when TLPType is meaningful.
	IsTLP   bool
	TLPType pcie.TLPType
	Addr    uint64
	Payload int
	Seq     uint64
	// DLLP fields.
	DLLPType pcie.DLLPType
	AckSeq   uint64
}

// Kind renders "MWr", "Ack", etc.
func (r Record) Kind() string {
	if r.IsTLP {
		return r.TLPType.String()
	}
	return r.DLLPType.String()
}

// recChunk is the record count of one trace chunk. Chunked storage keeps
// long captures append-cheap: a benchmark-length trace grows by adding
// chunks instead of repeatedly re-copying one giant slice.
const recChunk = 4096

// Analyzer is a passive trace recorder implementing pcie.Tap. Because link
// packets are pooled (see the pcie package borrow contract), the analyzer
// copies the fields it keeps into its own Records at observation time and
// never retains the packets themselves.
type Analyzer struct {
	name string
	// chunks hold the trace in capture order; chunks[:active] are full,
	// chunks[active] is the append target. Cleared chunks keep their
	// capacity for reuse.
	chunks  [][]Record
	active  int
	n       int
	enabled bool
	// Limit bounds capture size; 0 means unlimited.
	Limit int
	// ring, when non-nil, switches capture into circular mode (SetRing):
	// length grows to capacity, then ringHead marks the oldest record and
	// new captures overwrite it.
	ring        []Record
	ringHead    int
	overwritten uint64
}

var _ pcie.Tap = (*Analyzer)(nil)

// New returns an enabled analyzer.
func New(name string) *Analyzer {
	return &Analyzer{name: name, enabled: true}
}

// Name reports the analyzer's label.
func (a *Analyzer) Name() string { return a.name }

// full reports whether capture must stop: only the chunked store honours
// Limit — a ring never fills, it wraps.
func (a *Analyzer) full() bool {
	return a.ring == nil && a.Limit > 0 && a.n >= a.Limit
}

// SetEnabled starts or stops capture. A disabled analyzer records nothing,
// and — because taps are passive — has zero effect on timing either way
// (asserted by test).
func (a *Analyzer) SetEnabled(on bool) { a.enabled = on }

// Clear discards the captured trace, retaining chunk (and ring) capacity
// for reuse.
func (a *Analyzer) Clear() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.active = 0
	a.n = 0
	if a.ring != nil {
		a.ring = a.ring[:0]
	}
	a.ringHead = 0
	a.overwritten = 0
}

// SetRing switches capture into circular mode: the analyzer retains only
// the most recent n records, overwriting the oldest once the buffer fills —
// the hardware analyzer's circular capture buffer, which lets a soak run of
// any length keep the trace tail in bounded memory. SetRing(0) returns to
// unbounded chunked capture. Switching modes discards the current trace.
func (a *Analyzer) SetRing(n int) {
	a.Clear()
	if n > 0 {
		a.ring = make([]Record, 0, n)
	} else {
		a.ring = nil
	}
}

// Overwritten reports how many records the ring has discarded to make room
// (always 0 in chunked mode).
func (a *Analyzer) Overwritten() uint64 { return a.overwritten }

// Len reports the number of records currently held.
func (a *Analyzer) Len() int { return a.n }

// add appends one record to the trace: into the circular buffer in ring
// mode, else onto the chunked store.
func (a *Analyzer) add(r Record) {
	if a.ring != nil {
		if len(a.ring) < cap(a.ring) {
			a.ring = append(a.ring, r)
			a.n++
			return
		}
		a.ring[a.ringHead] = r
		a.ringHead = (a.ringHead + 1) % cap(a.ring)
		a.overwritten++
		return
	}
	if a.active == len(a.chunks) {
		a.chunks = append(a.chunks, make([]Record, 0, recChunk))
	}
	c := append(a.chunks[a.active], r)
	a.chunks[a.active] = c
	if len(c) == recChunk {
		a.active++
	}
	a.n++
}

// each calls fn for every held record in capture order (oldest first — in a
// wrapped ring that is ringHead onward, then the records before it).
func (a *Analyzer) each(fn func(Record)) {
	if a.ring != nil {
		for i := a.ringHead; i < len(a.ring); i++ {
			fn(a.ring[i])
		}
		for i := 0; i < a.ringHead; i++ {
			fn(a.ring[i])
		}
		return
	}
	for _, c := range a.chunks {
		for i := range c {
			fn(c[i])
		}
	}
}

// ObserveTLP implements pcie.Tap. The TLP is borrowed; the fields the trace
// keeps are copied here.
func (a *Analyzer) ObserveTLP(at units.Time, dir pcie.Dir, t *pcie.TLP) {
	if !a.enabled || a.full() {
		return
	}
	a.add(Record{
		At: at, Dir: dir, IsTLP: true,
		TLPType: t.Type, Addr: t.Addr, Payload: t.PayloadBytes(), Seq: t.Seq,
	})
}

// ObserveDLLP implements pcie.Tap. The DLLP is borrowed; see ObserveTLP.
func (a *Analyzer) ObserveDLLP(at units.Time, dir pcie.Dir, d *pcie.DLLP) {
	if !a.enabled || a.full() {
		return
	}
	a.add(Record{
		At: at, Dir: dir, IsTLP: false,
		DLLPType: d.Type, AckSeq: d.AckSeq,
	})
}

// Records returns the captured trace in time order (capture order), as one
// freshly assembled slice.
func (a *Analyzer) Records() []Record {
	out := make([]Record, 0, a.n)
	a.each(func(r Record) { out = append(out, r) })
	return out
}

// Filter returns the records matching keep.
func (a *Analyzer) Filter(keep func(Record) bool) []Record {
	var out []Record
	a.each(func(r Record) {
		if keep(r) {
			out = append(out, r)
		}
	})
	return out
}

// TLPs returns captured TLPs of the given direction and type, with payload
// size in [minPayload, maxPayload] (maxPayload<=0 means unbounded).
func (a *Analyzer) TLPs(dir pcie.Dir, typ pcie.TLPType, minPayload, maxPayload int) []Record {
	return a.Filter(func(r Record) bool {
		if !r.IsTLP || r.Dir != dir || r.TLPType != typ {
			return false
		}
		if r.Payload < minPayload {
			return false
		}
		if maxPayload > 0 && r.Payload > maxPayload {
			return false
		}
		return true
	})
}

// Deltas computes successive timestamp differences (ns) over records. This is
// the paper's injection-overhead derivation: deltas of consecutive
// downstream 64-byte MWr transactions (Figures 6 and 7).
func Deltas(recs []Record) *stats.Sample {
	var s stats.Sample
	for i := 1; i < len(recs); i++ {
		s.Add((recs[i].At - recs[i-1].At).Ns())
	}
	return &s
}

// AckRoundTrips matches each TLP in recsDir against the first subsequent ACK
// DLLP in the opposite direction with the same sequence number, and returns
// half the deltas in nanoseconds — the paper's measurement of the PCIe
// component (one-way wire time between analyzer and RC).
func (a *Analyzer) AckRoundTrips(dir pcie.Dir, typ pcie.TLPType) *stats.Sample {
	ackDir := pcie.Down
	if dir == pcie.Down {
		ackDir = pcie.Up
	}
	var s stats.Sample
	pending := map[uint64]units.Time{}
	a.each(func(r Record) {
		switch {
		case r.IsTLP && r.Dir == dir && r.TLPType == typ:
			pending[r.Seq] = r.At
		case !r.IsTLP && r.Dir == ackDir && r.DLLPType == pcie.Ack:
			if t0, ok := pending[r.AckSeq]; ok {
				s.Add((r.At - t0).Ns() / 2)
				delete(pending, r.AckSeq)
			}
		}
	})
	return &s
}

// PairDeltas walks the trace matching each record satisfying first with the
// next later record satisfying second, returning the deltas (ns). It
// implements both the Network measurement (downstream 64B ping -> next
// upstream 64B completion) and the RC-to-MEM methodology of Figure 9
// (inbound pong -> outbound ping).
func (a *Analyzer) PairDeltas(first, second func(Record) bool) *stats.Sample {
	var s stats.Sample
	var t0 units.Time
	armed := false
	a.each(func(r Record) {
		if !armed {
			if first(r) {
				t0 = r.At
				armed = true
			}
			return
		}
		if second(r) {
			s.Add((r.At - t0).Ns())
			armed = false
		}
	})
	return &s
}

// FormatTrace renders up to n records as an aligned text table in the style
// of the paper's Figure 6.
func (a *Analyzer) FormatTrace(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-6s %-6s %-8s %-16s %s\n", "TIME", "DIR", "KIND", "PAYLOAD", "ADDR", "SEQ")
	i := 0
	a.each(func(r Record) {
		if n > 0 && i >= n {
			if i == n {
				fmt.Fprintf(&b, "... (%d more records)\n", a.n-n)
			}
			i++
			return
		}
		i++
		addr := ""
		if r.IsTLP {
			addr = fmt.Sprintf("%#x", r.Addr)
		}
		fmt.Fprintf(&b, "%-14s %-6s %-6s %-8d %-16s %d\n",
			r.At.String(), r.Dir.String(), r.Kind(), r.Payload, addr, r.Seq)
	})
	return b.String()
}
