package rng

import (
	"math"
)

// Rand is a deterministic pseudo-random generator. The zero value is not
// usable; construct with New or Stream.
type Rand struct {
	s [4]uint64
	// cached spare normal variate for Box-Muller
	hasSpare bool
	spare    float64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// used for seeding, following the xoshiro authors' recommendation.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	s := seed
	for i := range r.s {
		r.s[i] = splitmix64(&s)
	}
	// xoshiro requires a non-zero state; splitmix64 of anything gives that
	// with overwhelming probability, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// DeriveSeed deterministically mixes a label into a root seed (FNV-1a),
// yielding the seed of an independent sub-experiment. The measurement
// campaign uses it to give every task its own noise seed derived from the
// campaign seed, so results are independent of task execution order.
func DeriveSeed(seed uint64, name string) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// Stream derives an independent generator from seed and a stream name. Two
// streams with different names are statistically independent; the same
// (seed, name) pair always yields the same stream.
func Stream(seed uint64, name string) *Rand {
	return New(DeriveSeed(seed, name))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box-Muller with caching).
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		m := math.Sqrt(-2 * math.Log(u))
		r.spare = m * math.Sin(2*math.Pi*v)
		r.hasSpare = true
		return m * math.Cos(2*math.Pi*v)
	}
}

// LogNormal returns a lognormal variate with the given mean and coefficient
// of variation (stddev/mean) of the *resulting* distribution. A cv of zero
// returns mean exactly.
func (r *Rand) LogNormal(mean, cv float64) float64 {
	if cv <= 0 || mean <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.Norm())
}
