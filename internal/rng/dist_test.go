package rng

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"breakband/internal/units"
)

func TestFixed(t *testing.T) {
	d := FixedNs(27.78)
	if d.Sample(nil) != units.Nanoseconds(27.78) {
		t.Error("Fixed sample != value")
	}
	if d.Mean() != units.Nanoseconds(27.78) {
		t.Error("Fixed mean != value")
	}
	if !strings.Contains(d.String(), "fixed") {
		t.Error("Fixed String missing kind")
	}
}

func TestLogNormalDistNilRand(t *testing.T) {
	d := LogNormalNs(100, 0.2)
	// A nil generator collapses to the mean (deterministic mode).
	if d.Sample(nil) != d.Mean() {
		t.Error("nil rand should return the mean")
	}
}

func TestLogNormalDistMean(t *testing.T) {
	d := LogNormalNs(100, 0.2)
	r := New(17)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	got := sum / float64(n)
	want := float64(d.Mean())
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("sample mean %v, want ~%v", got, want)
	}
}

func TestSpiked(t *testing.T) {
	base := FixedNs(10)
	d := Spiked{Base: base, P: 0.5, Extra: FixedNs(100)}
	r := New(3)
	spikes := 0
	n := 10000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		switch v {
		case units.Nanoseconds(10):
		case units.Nanoseconds(110):
			spikes++
		default:
			t.Fatalf("unexpected sample %v", v)
		}
	}
	frac := float64(spikes) / float64(n)
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("spike fraction %v, want ~0.5", frac)
	}
	// Mean includes the expected spike contribution.
	if d.Mean() != units.Nanoseconds(60) {
		t.Errorf("Spiked mean = %v, want 60ns", d.Mean())
	}
}

func TestSpikedNilRand(t *testing.T) {
	d := Spiked{Base: FixedNs(10), P: 1, Extra: FixedNs(100)}
	// Without a generator the spike cannot fire.
	if d.Sample(nil) != units.Nanoseconds(10) {
		t.Error("nil rand should bypass spikes")
	}
}

func TestScaled(t *testing.T) {
	d := Scaled{Base: FixedNs(100), Factor: 0.16}
	if d.Sample(nil) != units.Nanoseconds(16) {
		t.Errorf("Scaled sample = %v", d.Sample(nil))
	}
	if d.Mean() != units.Nanoseconds(16) {
		t.Errorf("Scaled mean = %v", d.Mean())
	}
}

func TestQuickScaledMean(t *testing.T) {
	// Property: scaling a Fixed dist scales its mean proportionally.
	f := func(ns uint16, factPct uint8) bool {
		base := FixedNs(float64(ns))
		fct := float64(factPct%101) / 100
		s := Scaled{Base: base, Factor: fct}
		want := units.Time(float64(base.Mean()) * fct)
		return s.Mean() == want && s.Sample(nil) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSpikedMeanMonotone(t *testing.T) {
	// Property: adding a spike never lowers the mean.
	f := func(baseNs, extraNs uint16, pPct uint8) bool {
		base := FixedNs(float64(baseNs))
		d := Spiked{Base: base, P: float64(pPct%101) / 100, Extra: FixedNs(float64(extraNs))}
		return d.Mean() >= base.Mean()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
