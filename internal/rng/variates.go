package rng

import "math"

// Variate generators for the open-loop arrival processes of
// internal/workload. All three return *standard* (scale-1) draws; callers
// rescale to their target mean. Every generator consumes a deterministic
// number-of-draws-per-call sequence from its stream for a given parameter
// set, so per-client streams replay identically regardless of scheduling
// order.

// Exp returns a standard exponential variate (mean 1) by inverse transform.
// The argument to Log is 1-U in (0, 1], so the result is always finite.
func (r *Rand) Exp() float64 {
	return -math.Log(1 - r.Float64())
}

// Gamma returns a standard gamma variate with the given shape (scale 1,
// mean = shape). It panics if shape <= 0. Shape >= 1 uses the
// Marsaglia-Tsang squeeze; shape < 1 boosts through Gamma(shape+1) * U^(1/shape).
func (r *Rand) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U uniform, X*U^(1/shape) ~ Gamma(shape).
		// Draw the boost uniform first so the per-call draw order is fixed.
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Weibull returns a standard Weibull variate with the given shape (scale 1)
// by inverse transform: (-ln(1-U))^(1/shape). Its mean is
// Gamma(1 + 1/shape); callers dividing by WeibullMean get a mean-1 draw.
// It panics if shape <= 0.
func (r *Rand) Weibull(shape float64) float64 {
	if shape <= 0 {
		panic("rng: Weibull with non-positive shape")
	}
	return math.Pow(-math.Log(1-r.Float64()), 1/shape)
}

// WeibullMean reports the mean of a standard (scale-1) Weibull with the
// given shape.
func WeibullMean(shape float64) float64 {
	return math.Gamma(1 + 1/shape)
}

// WeibullCV reports the coefficient of variation of a Weibull with the
// given shape (scale-invariant).
func WeibullCV(shape float64) float64 {
	m1 := math.Gamma(1 + 1/shape)
	m2 := math.Gamma(1 + 2/shape)
	return math.Sqrt(m2/(m1*m1) - 1)
}
