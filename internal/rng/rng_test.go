package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := Stream(7, "node0")
	b := Stream(7, "node1")
	c := Stream(7, "node0")
	if a.Uint64() != c.Uint64() {
		t.Error("same (seed, name) produced different streams")
	}
	if a.Uint64() == b.Uint64() {
		t.Error("different names produced identical streams (suspicious)")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestQuickFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntn(t *testing.T) {
	r := New(9)
	seen := make([]bool, 10)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("value %d never produced in 1000 draws", i)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMoments(t *testing.T) {
	r := New(11)
	const mean, cv = 100.0, 0.3
	n := 200000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.LogNormal(mean, cv)
		if v < 0 {
			t.Fatal("lognormal produced negative value")
		}
		sum += v
		sum2 += v * v
	}
	m := sum / float64(n)
	sd := math.Sqrt(sum2/float64(n) - m*m)
	if math.Abs(m-mean)/mean > 0.02 {
		t.Errorf("lognormal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(sd/m-cv)/cv > 0.06 {
		t.Errorf("lognormal cv = %v, want ~%v", sd/m, cv)
	}
}

func TestLogNormalDegenerate(t *testing.T) {
	r := New(1)
	if v := r.LogNormal(100, 0); v != 100 {
		t.Errorf("cv=0 should return the mean, got %v", v)
	}
	if v := r.LogNormal(0, 0.5); v != 0 {
		t.Errorf("mean=0 should return 0, got %v", v)
	}
}
