package rng

import (
	"fmt"

	"breakband/internal/units"
)

// Dist describes a random duration. Component cost models throughout the
// simulator are expressed as Dists so that a single configuration switch can
// move between exact (deterministic) and noisy operation.
type Dist interface {
	// Sample draws one duration using r. r may be nil only for
	// deterministic distributions.
	Sample(r *Rand) units.Time
	// Mean reports the distribution's mean duration.
	Mean() units.Time
	// String describes the distribution for reports and debugging.
	String() string
}

// Fixed is a deterministic duration.
type Fixed units.Time

// FixedNs builds a Fixed from a float64 nanosecond quantity.
func FixedNs(ns float64) Fixed { return Fixed(units.Nanoseconds(ns)) }

// Sample implements Dist.
func (f Fixed) Sample(*Rand) units.Time { return units.Time(f) }

// Mean implements Dist.
func (f Fixed) Mean() units.Time { return units.Time(f) }

// String implements Dist.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%v)", units.Time(f)) }

// LogNormalDist is a lognormal duration with a given mean and coefficient of
// variation. It models the right-skewed timing of software instruction blocks
// (cache misses, branch mispredictions).
type LogNormalDist struct {
	MeanTime units.Time
	CV       float64
}

// LogNormalNs builds a LogNormalDist from nanoseconds and a cv.
func LogNormalNs(ns, cv float64) LogNormalDist {
	return LogNormalDist{MeanTime: units.Nanoseconds(ns), CV: cv}
}

// Sample implements Dist.
func (d LogNormalDist) Sample(r *Rand) units.Time {
	if r == nil || d.CV <= 0 {
		return d.MeanTime
	}
	v := r.LogNormal(float64(d.MeanTime), d.CV)
	if v < 0 {
		v = 0
	}
	return units.Time(v)
}

// Mean implements Dist.
func (d LogNormalDist) Mean() units.Time { return d.MeanTime }

// String implements Dist.
func (d LogNormalDist) String() string {
	return fmt.Sprintf("lognormal(mean=%v cv=%.3f)", d.MeanTime, d.CV)
}

// Spiked decorates a base distribution with a rare additive spike, modelling
// OS preemption or SMI-style stalls. With probability P a sample gains
// Extra's sample on top of the base sample.
type Spiked struct {
	Base  Dist
	P     float64
	Extra Dist
}

// Sample implements Dist.
func (s Spiked) Sample(r *Rand) units.Time {
	v := s.Base.Sample(r)
	if r != nil && s.P > 0 && r.Float64() < s.P {
		v += s.Extra.Sample(r)
	}
	return v
}

// Mean implements Dist. The spike's expected contribution is included so that
// analytical sums stay aligned with long-run sample means.
func (s Spiked) Mean() units.Time {
	return s.Base.Mean() + units.Time(s.P*float64(s.Extra.Mean()))
}

// String implements Dist.
func (s Spiked) String() string {
	return fmt.Sprintf("spiked(%v p=%g extra=%v)", s.Base, s.P, s.Extra)
}

// Scaled multiplies every sample of a base distribution by a factor. The
// what-if ablations use it to apply "reduce component X by r%" directly to a
// running system.
type Scaled struct {
	Base   Dist
	Factor float64
}

// Sample implements Dist.
func (s Scaled) Sample(r *Rand) units.Time {
	return units.Time(float64(s.Base.Sample(r)) * s.Factor)
}

// Mean implements Dist.
func (s Scaled) Mean() units.Time {
	return units.Time(float64(s.Base.Mean()) * s.Factor)
}

// String implements Dist.
func (s Scaled) String() string { return fmt.Sprintf("scaled(%v x%.3f)", s.Base, s.Factor) }
