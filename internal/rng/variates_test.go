package rng

import (
	"math"
	"testing"
)

// sampleStats draws n variates and reports their sample mean and CV.
func sampleStats(n int, draw func() float64) (mean, cv float64) {
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumsq += x * x
	}
	mean = sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	return mean, math.Sqrt(variance) / mean
}

func TestExpMoments(t *testing.T) {
	r := Stream(7, "variates/exp")
	mean, cv := sampleStats(200_000, r.Exp)
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("Exp mean %.4f, want 1 +- 0.01", mean)
	}
	if math.Abs(cv-1) > 0.02 {
		t.Errorf("Exp cv %.4f, want 1 +- 0.02", cv)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2, 4.5} {
		r := Stream(7, "variates/gamma")
		mean, cv := sampleStats(200_000, func() float64 { return r.Gamma(shape) })
		if want := shape; math.Abs(mean-want)/want > 0.02 {
			t.Errorf("Gamma(%g) mean %.4f, want %.4f +- 2%%", shape, mean, want)
		}
		if want := 1 / math.Sqrt(shape); math.Abs(cv-want)/want > 0.03 {
			t.Errorf("Gamma(%g) cv %.4f, want %.4f +- 3%%", shape, cv, want)
		}
	}
}

func TestWeibullMoments(t *testing.T) {
	for _, shape := range []float64{0.8, 1, 1.5, 3} {
		r := Stream(7, "variates/weibull")
		mean, cv := sampleStats(200_000, func() float64 { return r.Weibull(shape) })
		if want := WeibullMean(shape); math.Abs(mean-want)/want > 0.02 {
			t.Errorf("Weibull(%g) mean %.4f, want %.4f +- 2%%", shape, mean, want)
		}
		if want := WeibullCV(shape); math.Abs(cv-want)/want > 0.03 {
			t.Errorf("Weibull(%g) cv %.4f, want %.4f +- 3%%", shape, cv, want)
		}
	}
}

// TestWeibullShape1IsExp: Weibull with shape 1 is the exponential; both the
// analytic helpers and the sampler must agree.
func TestWeibullShape1IsExp(t *testing.T) {
	if m := WeibullMean(1); math.Abs(m-1) > 1e-12 {
		t.Errorf("WeibullMean(1) = %v, want 1", m)
	}
	if cv := WeibullCV(1); math.Abs(cv-1) > 1e-9 {
		t.Errorf("WeibullCV(1) = %v, want 1", cv)
	}
}

func TestVariatePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"gamma":   func() { New(1).Gamma(0) },
		"weibull": func() { New(1).Weibull(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with non-positive shape did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestVariatesDeterministic pins that the same (seed, stream) replays the
// same draw sequence — the property every per-client workload stream rides.
func TestVariatesDeterministic(t *testing.T) {
	draw := func() []float64 {
		r := Stream(42, "workload/storm/17")
		out := make([]float64, 0, 30)
		for i := 0; i < 10; i++ {
			out = append(out, r.Exp(), r.Gamma(2.5), r.Weibull(1.5))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
