// Package rng provides the deterministic random-number machinery used by the
// simulator.
//
// Reproducibility is a hard requirement: every experiment in the repository
// must produce identical results for identical seeds, independent of map
// iteration order, goroutine scheduling, or the Go version's global rand
// state. We therefore carry explicit generator state (splitmix64-seeded
// xoshiro256** output) and derive independent named streams from a root
// seed, so adding a new consumer of randomness does not perturb existing
// streams.
//
// # Seed-derivation scheme
//
// All randomness in a run descends from one root seed through named
// streams:
//
//	DeriveSeed(seed, name)   root seed x label -> sub-seed (FNV-1a mix)
//	Stream(seed, name)       generator seeded with DeriveSeed(seed, name)
//
// The naming convention is hierarchical and owned by the consumer:
//
//   - per-node software jitter: Stream(cfg.Seed, "node0"), "node1", ...
//     (config.Config.Rand)
//   - per-core jitter in the multi-core ablation: "node0.core3", so
//     co-node cores' draws are independent of event scheduling order
//     (uct.Worker.SetRand)
//   - per-task campaign seeds: DeriveSeed(campaign seed, task name), so a
//     parallel campaign is bit-identical to a serial one regardless of
//     which worker runs which task (internal/measure, internal/campaign)
//
// The rules that keep runs reproducible: never share one stream between
// concurrently progressing consumers whose interleaving is
// schedule-dependent — derive a stream per consumer instead; never draw
// from a stream in an order that depends on map iteration; and when
// adding a new consumer, give it a new name rather than drawing from an
// existing stream (which would shift every later draw). A nil *Rand is
// the NoiseOff convention: distributions collapse to their means
// (Dist.Sample handles nil).
//
// # Distributions
//
// Component cost models are expressed as Dist values (dist.go): FixedNs
// (NoiseOff), LogNormalNs (mean-preserving software jitter), and Spiked
// (a rare additive preemption spike reproducing the paper's Figure-7
// tail). Sampling with a nil *Rand returns the mean, so a single
// configuration switch turns the whole simulation exact.
package rng
