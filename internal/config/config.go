// Package config holds the calibrated parameter set for the simulated
// system: an Arm ThunderX2-class server with a ConnectX-4-class adapter
// (the paper's evaluation platform), plus the noise model and benchmark
// defaults.
//
// Calibration philosophy: the paper's Table 1 reports component times
// *measured through its methodology* (CPU timers with overhead subtraction,
// PCIe-analyzer trace deltas). We therefore choose raw hardware parameters so
// that re-running the same methodology inside the simulation reproduces the
// Table-1 values, rather than naively assigning the Table-1 values to raw
// latencies (the two differ by serialization, turnaround and polling-lag
// terms, exactly as on real hardware). Software costs are taken directly
// from Table 1 where reported; internal splits the paper does not report are
// documented assumptions here.
package config

import (
	"breakband/internal/fabric"
	"breakband/internal/faults"
	"breakband/internal/nic"
	"breakband/internal/pcie"
	"breakband/internal/rng"
	"breakband/internal/topo"
	"breakband/internal/units"
)

// Paper's Table 1 component means in nanoseconds. These are the calibration
// targets; golden tests pin the analytical pipeline against them.
const (
	TabMDSetup        = 27.78
	TabBarrierMD      = 17.33
	TabBarrierDBC     = 21.07
	TabPIOCopy        = 94.25
	TabLLPPostMisc    = 14.99
	TabLLPPost        = 175.42
	TabLLPProg        = 61.63
	TabBusyPost       = 8.99
	TabMeasUpdate     = 49.69
	TabMiscInj        = 58.68
	TabPCIe           = 137.49
	TabWire           = 274.81
	TabSwitch         = 108.0
	TabNetwork        = 382.81
	TabRCToMem8       = 240.96
	TabMPIIsendMPICH  = 24.37
	TabMPIIsendUCP    = 2.19
	TabMPICHRecvCB    = 47.99
	TabMPIWaitMPICH   = 293.29
	TabUCPRecvCB      = 139.78
	TabMPIWaitUCP     = 150.51
	TabMPICHAfterProg = 36.89 // §6: MPICH work after a successful ucp_worker_progress
	TabHLPTxProgPerOp = 58.86 // §6: Post_prog (59.82) minus its LLP share (61.63/64)
)

// Derived paper values used by golden tests.
const (
	TabHLPPost         = TabMPIIsendMPICH + TabMPIIsendUCP                              // 26.56
	TabPost            = TabHLPPost + TabLLPPost                                        // 201.98
	TabHLPRxProg       = TabMPICHRecvCB + TabUCPRecvCB + TabMPICHAfterProg              // 224.66
	TabLLPInjModel     = TabLLPPost + TabLLPProg + TabMiscInj                           // 295.73
	TabLLPLatencyModel = TabLLPPost + 2*TabPCIe + TabNetwork + TabRCToMem8 + TabLLPProg // 1135.8
	TabE2ELatencyModel = TabHLPPost + TabLLPLatencyModel + TabHLPRxProg                 // 1387.02
	TabObsLLPInjection = 282.33
	TabObsLLPLatency   = 1190.25
	TabObsOverallInj   = 263.91
	TabObsE2ELatency   = 1336.0
	// TabGenCompletion is §4.2's completion-generation time implied by
	// Table 1 — two PCIe+Network traversals (message out, ACK back) plus
	// the completion write — the numerator of the poll-window lower bound
	// p >= gen_completion / LLP_post.
	TabGenCompletion = 2*(TabPCIe+TabNetwork) + TabRCToMem8 // 1281.56
)

// The paper's Figure-7 distribution of the observed injection overhead
// (ns): its mean is TabObsLLPInjection above.
const (
	TabFig7Median = 266.30
	TabFig7Min    = 201.30
	TabFig7Max    = 34951.70
	TabFig7Std    = 58.4866
)

// NoiseLevel selects the stochastic model.
type NoiseLevel int

// Noise levels.
const (
	// NoiseOff makes every cost its mean: runs are exactly reproducible
	// arithmetic, used by golden tests.
	NoiseOff NoiseLevel = iota
	// NoiseOn applies lognormal jitter to software costs plus a rare
	// preemption spike, producing Figure-7-like distributions.
	NoiseOn
)

// Software coefficient-of-variation defaults for NoiseOn.
const (
	swCV = 0.15
	// pioCV is higher: writes to uncached Device-GRE memory stall on
	// write-buffer occupancy, making the PIO copy the dominant variance
	// source of an LLP_post. This yields a Figure-7-like core spread
	// (sigma ~45 ns per injection) while preserving the 94.25 ns mean.
	pioCV   = 0.45
	timerCV = 0.03
	// Preemption spike: rare and huge — reproduces the paper's Figure-7
	// tail (a 34951 ns maximum against a 282 ns mean with sigma 58): one
	// ~15 us stall every ~100k iterations keeps the overall sigma near
	// the paper's while producing the off-scale maximum.
	spikeP  = 1e-5
	spikeNs = 15000.0
)

// SW collects every software cost as a distribution. The LLP_post stage
// means follow the paper's Figure 4 / Table 1 exactly; stage splits the
// paper does not report (flagged "assumption") are chosen to preserve the
// reported totals.
type SW struct {
	// --- LLP (UCT) post stages, paper §4.1 ---
	LLPPostEntry rng.Dist // assumption: function-call/branch share of Misc
	MDSetup      rng.Dist // prepare message descriptor (incl. inline memcpy)
	BarrierMD    rng.Dist // dmb st after MD write
	DBCIncrement rng.Dist // assumption: DoorBell-counter update share of Misc
	BarrierDBC   rng.Dist // dmb st after DBC update
	PIOCopy      rng.Dist // 64-byte copy to Device-GRE memory, per chunk
	LLPPostExit  rng.Dist // assumption: remaining Misc

	// --- LLP progress, paper §4.1 ---
	LLPProgBarrier rng.Dist // load barrier (the one critical category)
	LLPProgCQERead rng.Dist // assumption: CQE read + ownership check
	LLPProgMisc    rng.Dist // assumption: index update, bookkeeping
	LLPProgFailChk rng.Dist // failed ownership check after the barrier
	PostRecv       rng.Dist // posting one receive credit (off critical path)

	// MemcpyPerByte is the per-byte cost of bulk copies (staging bcopy
	// payloads, draining large receives from the pool); ~33 GB/s.
	MemcpyPerByte units.Time

	BusyPost   rng.Dist // a failed LLP_post against a full TxQ
	MeasUpdate rng.Dist // benchmark timestamp + statistics update
	BenchLoop  rng.Dist // residual per-iteration benchmark logic
	AmRxHandle rng.Dist // UCT active-message receive dispatch (target side)

	// --- DoorBell+DMA path (ablation X1) ---
	SQRingWrite  rng.Dist // 64B WQE store to Normal memory (<1 ns, paper §7.1)
	DBRecUpdate  rng.Dist // doorbell record store
	DoorbellRing rng.Dist // 8-byte atomic write to device memory

	// --- HLP: UCP ---
	UcpIsend    rng.Dist // ucp_tag_send_nb above uct_ep_am_short
	UcpProgress rng.Dist // ucp_worker_progress above uct_worker_progress
	UcpSendCB   rng.Dist // assumption: UCP send-completion callback share
	UcpRecvCB   rng.Dist // UCP receive callback body (excl. nested MPICH cb)
	UcpPending  rng.Dist // pending-queue bookkeeping for a busy post

	// --- HLP: MPICH ---
	MpiIsend       rng.Dist // MPI_Isend above ucp_tag_send_nb
	MpiIrecv       rng.Dist // MPI_Irecv posting (overlapped; excluded from models)
	MpichSendCB    rng.Dist // assumption: MPICH send-completion callback share
	MpichRecvCB    rng.Dist // MPICH receive callback
	MpichAfterPrg  rng.Dist // MPICH work after successful ucp_worker_progress
	MpichWaitEnt   rng.Dist // assumption: MPI_Wait entry+exit bookkeeping
	MpichWaitLoop  rng.Dist // assumption: per-iteration progress-engine overhead
	MpichWaitallOp rng.Dist // assumption: MPI_Waitall per-op bookkeeping
}

// Prof holds the profiling-infrastructure costs: the paper's 49.69 ns mean
// (sigma 1.48) per measurement is the sum of the isb and the counter
// read+record.
type Prof struct {
	Isb  rng.Dist
	Read rng.Dist
	// TimerHz is the virtual counter frequency; 1 THz models the "precise
	// CPU timers" the methodology requires.
	TimerHz uint64
	// CalibrationSamples is how many empty scopes calibration averages
	// (the paper used 1000).
	CalibrationSamples int
}

// Bench holds benchmark shape parameters.
type Bench struct {
	// PollBatch: put_bw polls one completion every PollBatch posts
	// (paper §4.2: 16).
	PollBatch int
	// SignalPeriod is UCP's unsignaled-completion period c (paper §6: 64).
	SignalPeriod int
	// Window is the OSU message-rate isend window. Chosen (with SQDepth)
	// so a realistic share of posts go busy, reproducing the paper's
	// Misc term.
	Window int
	// SQDepth and CQDepth are the queue sizes (powers of two).
	SQDepth, CQDepth int
	// Warmup and Iters are default benchmark iteration counts.
	Warmup, Iters int
}

// Config is the complete parameter set for a simulated system.
type Config struct {
	Seed  uint64
	Noise NoiseLevel

	SW    SW
	Prof  Prof
	Bench Bench

	Link   pcie.LinkConfig
	RC     pcie.RCConfig
	Fabric fabric.Config
	NIC    nic.Config

	// Topology selects the compiled fabric shape for N-node systems (see
	// internal/topo). The zero Spec is Auto: two nodes reproduce the
	// paper's calibrated two-endpoint path exactly (back-to-back or
	// single switch per Fabric.UseSwitch); more nodes share a single
	// switch with contended ports.
	Topology topo.Spec

	// NICRxBudget bounds every NIC's receive-side pend buffering: the
	// number of inbound data frames a NIC may hold while their host-memory
	// writes wait for PCIe posted credits. Beyond the budget the NIC
	// refuses frames with RNR NAKs and senders retry after a backoff
	// (retry shape per NIC.Rnr*). Zero keeps the unbounded legacy
	// behaviour. node.NewSystem copies a nonzero value into NIC.RxBudget.
	NICRxBudget int

	// NICRxBudgetPerQP additionally bounds the held frames any single QP
	// may account for, so one overloaded QP cannot monopolize the NIC-wide
	// budget and starve sibling QPs. Zero disables the per-QP bound.
	// node.NewSystem copies a nonzero value into NIC.RxBudgetPerQP.
	NICRxBudgetPerQP int

	// Faults is the deterministic fault-injection schedule: link faults
	// (drop/corrupt rates, scripted drops, link flaps) and endpoint faults
	// (scheduled NIC crashes with optional restart, host pause windows
	// that stall the node's PCIe upstream issue path) — see
	// internal/faults. The zero value injects nothing and adds no cost
	// anywhere. When any fault is enabled, node.NewSystem compiles the
	// schedule against Seed, adopts link faults into the fabric, arms the
	// endpoint faults as kernel events, and — unless NIC.AckTimeout is
	// already set — arms the NICs' ACK-timeout recovery with
	// nic.DefaultAckTimeout (peers discover a dead NIC through it).
	Faults faults.Config

	// MemBytes is each node's host memory size.
	MemBytes uint64

	// TraceCapacity, when positive, enables fabric-wide event tracing:
	// node.NewSystem installs a trace.Tracer whose ring holds this many
	// events on the kernel before any layer is built, so every layer
	// captures it at construction. The ring overwrites oldest-first when
	// full. Zero (the default) disables tracing entirely — no TIDs are
	// stamped, no events emitted, and the hot paths are byte-identical
	// with the untraced build.
	TraceCapacity int
}

func dist(noise NoiseLevel, ns, cv float64) rng.Dist {
	if noise == NoiseOff || cv <= 0 {
		return rng.FixedNs(ns)
	}
	return rng.LogNormalNs(ns, cv)
}

// TX2CX4 returns the calibrated ThunderX2 + ConnectX-4 + EDR InfiniBand
// configuration. useSwitch selects the switched topology (the paper's main
// numbers include the switch).
func TX2CX4(noise NoiseLevel, seed uint64, useSwitch bool) *Config {
	c := &Config{Seed: seed, Noise: noise, MemBytes: 256 << 20}

	// ---- software costs ----
	// LLP_post stages: Table 1 directly; Misc (14.99) split across
	// entry / DBC increment / exit (assumption).
	c.SW.LLPPostEntry = dist(noise, 7.00, swCV)
	c.SW.MDSetup = dist(noise, TabMDSetup, swCV)
	c.SW.BarrierMD = dist(noise, TabBarrierMD, swCV)
	c.SW.DBCIncrement = dist(noise, 4.00, swCV)
	c.SW.BarrierDBC = dist(noise, TabBarrierDBC, swCV)
	c.SW.PIOCopy = dist(noise, TabPIOCopy, pioCV)
	c.SW.LLPPostExit = dist(noise, 3.99, swCV)
	// LLP_prog total 61.63; split is an assumption (barrier is the one
	// category the paper names).
	c.SW.LLPProgBarrier = dist(noise, 18.50, swCV)
	c.SW.LLPProgCQERead = dist(noise, 22.00, swCV)
	c.SW.LLPProgMisc = dist(noise, 21.13, swCV)
	c.SW.LLPProgFailChk = dist(noise, 9.50, swCV)
	c.SW.PostRecv = dist(noise, 10.00, swCV)

	c.SW.BusyPost = dist(noise, TabBusyPost, swCV)
	c.SW.MeasUpdate = dist(noise, TabMeasUpdate, timerCV)
	bench := dist(noise, 3.00, swCV)
	if noise == NoiseOn {
		bench = rng.Spiked{Base: bench, P: spikeP, Extra: dist(noise, spikeNs, 0.3)}
	}
	c.SW.BenchLoop = bench
	c.SW.AmRxHandle = dist(noise, 10.00, swCV)

	c.SW.MemcpyPerByte = 30 // ps/B
	c.SW.SQRingWrite = dist(noise, 0.90, swCV)
	c.SW.DBRecUpdate = dist(noise, 0.90, swCV)
	c.SW.DoorbellRing = dist(noise, 30.00, swCV)

	c.SW.UcpIsend = dist(noise, TabMPIIsendUCP, swCV)
	// ucp_worker_progress's own overhead above uct. Together with the
	// batched receive-credit reposting (~10 ns/op amortized) this
	// reproduces the paper's WaitUCP - UCPRecvCB difference (10.73 ns)
	// when the §5 methodology runs.
	c.SW.UcpProgress = dist(noise, 0.90, swCV)
	c.SW.UcpSendCB = dist(noise, 30.00, swCV)
	c.SW.UcpRecvCB = dist(noise, TabUCPRecvCB, swCV)
	c.SW.UcpPending = dist(noise, 5.00, swCV)

	c.SW.MpiIsend = dist(noise, TabMPIIsendMPICH, swCV)
	c.SW.MpiIrecv = dist(noise, 50.00, swCV)
	c.SW.MpichSendCB = dist(noise, 27.40, swCV)
	c.SW.MpichRecvCB = dist(noise, TabMPICHRecvCB, swCV)
	c.SW.MpichAfterPrg = dist(noise, TabMPICHAfterProg, swCV)
	// MPI_Wait entry bookkeeping: sized so the §5 methodology measures
	// the paper's MPICH share of a successful MPI_Wait (293.29 ns).
	c.SW.MpichWaitEnt = dist(noise, 196.40, swCV)
	c.SW.MpichWaitLoop = dist(noise, 12.00, swCV)
	c.SW.MpichWaitallOp = dist(noise, 13.86, swCV)

	// ---- profiling infrastructure ----
	// isb + read/record = 49.69 ns mean, matching the paper's measured
	// UCS overhead (sigma 1.48 over 1000 samples).
	c.Prof.Isb = dist(noise, 15.00, timerCV)
	c.Prof.Read = dist(noise, 34.69, timerCV)
	c.Prof.TimerHz = 1_000_000_000_000 // 1 THz: precise timers
	c.Prof.CalibrationSamples = 1000

	// ---- benchmark shapes ----
	c.Bench = Bench{
		PollBatch:    16,
		SignalPeriod: 64,
		Window:       192,
		SQDepth:      128,
		CQDepth:      4096,
		Warmup:       100,
		Iters:        1000,
	}

	// ---- PCIe ----
	// The trace methodology measures PCIe as half the TLP->ACK round trip
	// at the tap: RT = 2*Prop + serialize(DLLP) + AckDelay. Solve Prop so
	// the measured value equals Table 1's 137.49 ns.
	link := pcie.DefaultLinkConfig()
	ackDelayNs := 2.0
	dllpSerNs := float64(link.DLLPBytes) * float64(link.PerByte) / 1000
	propNs := TabPCIe - (dllpSerNs+ackDelayNs)/2
	link.Prop = units.Nanoseconds(propNs)
	link.AckDelay = units.Nanoseconds(ackDelayNs)
	c.Link = link

	// ---- Root Complex ----
	// RC-to-MEM commit latency is per cache line for <=64B writes (slope
	// zero), so the 8B payload value applies to the 64B CQE as well. The
	// raw commit latency is set below Table 1's 240.96 ns because the
	// Figure-9 trace methodology unavoidably folds the target's polling
	// lag and receive dispatch into its estimate — running the
	// methodology on this raw value measures ~240.96 ns, as on the
	// paper's hardware.
	// Beyond one cache line the commit scales with streaming DDR write
	// bandwidth (~20 GB/s), which the message-size sweep exercises.
	c.RC = pcie.RCConfig{
		RCToMemBase:      units.Nanoseconds(233.36),
		RCToMemPerByte:   units.Time(50),
		RCToMemBaseBytes: 64,
		MemReadLatency:   units.Nanoseconds(150),
	}

	// ---- fabric ----
	// The am_lat trace methodology measures Network as half the
	// (downstream ping -> upstream completion) delta:
	//   delta = ser(data) + Prop [+Switch] + ser(ack) + Prop [+Switch]
	//           + ser(CQE TLP on PCIe, observed at tap departure)
	// Solve WireProp so the measured no-switch value equals Table 1's
	// Wire (274.81 ns).
	fab := fabric.DefaultConfig()
	fab.UseSwitch = useSwitch
	fab.SwitchLatency = units.Nanoseconds(TabSwitch)
	dataSerNs := float64(8+fab.FrameOverhead) * float64(fab.WirePerByte) / 1000
	ackSerNs := float64(fab.FrameOverhead) * float64(fab.WirePerByte) / 1000
	cqeSerNs := float64(64+link.TLPHeader) * float64(link.PerByte) / 1000
	fab.WireProp = units.Nanoseconds(TabWire - (dataSerNs+ackSerNs+cqeSerNs)/2)
	c.Fabric = fab

	c.NIC = nic.DefaultConfig()
	return c
}

// Rand returns the root RNG for this configuration (nil in NoiseOff so
// distributions collapse to their means).
func (c *Config) Rand(stream string) *rng.Rand {
	if c.Noise == NoiseOff {
		return nil
	}
	return rng.Stream(c.Seed, stream)
}

// LLPPostMean reports the configured LLP_post mean in ns (sum of stages),
// used by tests to confirm the split preserves Table 1's total.
func (c *Config) LLPPostMean() float64 {
	sum := units.Time(0)
	for _, d := range []rng.Dist{
		c.SW.LLPPostEntry, c.SW.MDSetup, c.SW.BarrierMD, c.SW.DBCIncrement,
		c.SW.BarrierDBC, c.SW.PIOCopy, c.SW.LLPPostExit,
	} {
		sum += d.Mean()
	}
	return sum.Ns()
}

// LLPProgMean reports the configured LLP_prog mean in ns.
func (c *Config) LLPProgMean() float64 {
	return (c.SW.LLPProgBarrier.Mean() + c.SW.LLPProgCQERead.Mean() + c.SW.LLPProgMisc.Mean()).Ns()
}
