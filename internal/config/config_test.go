package config

import (
	"math"
	"testing"

	"breakband/internal/rng"
)

func TestDerivedConstantsMatchPaper(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"HLP_post", TabHLPPost, 26.56},
		{"Post", TabPost, 201.98},
		{"HLP_rx_prog", TabHLPRxProg, 224.66},
		{"LLP injection model", TabLLPInjModel, 295.73},
		{"LLP latency model", TabLLPLatencyModel, 1135.8},
		{"E2E latency model", TabE2ELatencyModel, 1387.02},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 0.005 {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestLLPPostSplitPreservesTotal(t *testing.T) {
	cfg := TX2CX4(NoiseOff, 1, true)
	if got := cfg.LLPPostMean(); math.Abs(got-TabLLPPost) > 1e-9 {
		t.Errorf("LLP_post stage sum = %v, want %v", got, TabLLPPost)
	}
	if got := cfg.LLPProgMean(); math.Abs(got-TabLLPProg) > 1e-9 {
		t.Errorf("LLP_prog stage sum = %v, want %v", got, TabLLPProg)
	}
}

func TestDeterministicDistsAreFixed(t *testing.T) {
	cfg := TX2CX4(NoiseOff, 1, true)
	for name, d := range map[string]rng.Dist{
		"MDSetup":  cfg.SW.MDSetup,
		"PIOCopy":  cfg.SW.PIOCopy,
		"BusyPost": cfg.SW.BusyPost,
		"MpiIsend": cfg.SW.MpiIsend,
	} {
		if _, ok := d.(rng.Fixed); !ok {
			t.Errorf("%s is %T in deterministic mode, want Fixed", name, d)
		}
	}
	if cfg.Rand("x") != nil {
		t.Error("deterministic config returned a generator")
	}
}

func TestNoisyDistsPreserveMeans(t *testing.T) {
	det := TX2CX4(NoiseOff, 1, true)
	noisy := TX2CX4(NoiseOn, 1, true)
	pairs := []struct {
		name string
		a, b rng.Dist
	}{
		{"MDSetup", det.SW.MDSetup, noisy.SW.MDSetup},
		{"PIOCopy", det.SW.PIOCopy, noisy.SW.PIOCopy},
		{"UcpRecvCB", det.SW.UcpRecvCB, noisy.SW.UcpRecvCB},
		{"MpichRecvCB", det.SW.MpichRecvCB, noisy.SW.MpichRecvCB},
	}
	for _, p := range pairs {
		if p.a.Mean() != p.b.Mean() {
			t.Errorf("%s mean differs between modes: %v vs %v", p.name, p.a.Mean(), p.b.Mean())
		}
	}
	if noisy.Rand("x") == nil {
		t.Error("noisy config returned no generator")
	}
	if noisy.Rand("x") == noisy.Rand("y") {
		t.Error("streams not distinct")
	}
}

func TestPCIeCalibrationSolvesMethodology(t *testing.T) {
	cfg := TX2CX4(NoiseOff, 1, true)
	// The ACK-round-trip methodology: RT = 2*Prop + serialize(DLLP) +
	// AckDelay, and half of it must equal Table 1's PCIe value.
	ser := float64(cfg.Link.DLLPBytes) * float64(cfg.Link.PerByte) / 1000
	rtHalf := (2*cfg.Link.Prop.Ns() + ser + cfg.Link.AckDelay.Ns()) / 2
	if math.Abs(rtHalf-TabPCIe) > 0.01 {
		t.Errorf("methodology would measure PCIe = %v, want %v", rtHalf, TabPCIe)
	}
}

func TestWireCalibrationSolvesMethodology(t *testing.T) {
	cfg := TX2CX4(NoiseOff, 1, false)
	dataSer := float64(8+cfg.Fabric.FrameOverhead) * float64(cfg.Fabric.WirePerByte) / 1000
	ackSer := float64(cfg.Fabric.FrameOverhead) * float64(cfg.Fabric.WirePerByte) / 1000
	cqeSer := float64(64+cfg.Link.TLPHeader) * float64(cfg.Link.PerByte) / 1000
	measured := (2*cfg.Fabric.WireProp.Ns() + dataSer + ackSer + cqeSer) / 2
	if math.Abs(measured-TabWire) > 0.01 {
		t.Errorf("methodology would measure Wire = %v, want %v", measured, TabWire)
	}
}

func TestSwitchFlagged(t *testing.T) {
	with := TX2CX4(NoiseOff, 1, true)
	without := TX2CX4(NoiseOff, 1, false)
	if !with.Fabric.UseSwitch || without.Fabric.UseSwitch {
		t.Error("useSwitch flag not applied")
	}
	if with.Fabric.SwitchLatency.Ns() != TabSwitch {
		t.Errorf("switch latency = %v", with.Fabric.SwitchLatency.Ns())
	}
}

func TestBenchDefaults(t *testing.T) {
	cfg := TX2CX4(NoiseOff, 1, true)
	if cfg.Bench.PollBatch != 16 {
		t.Error("poll batch must match the paper's put_bw (16)")
	}
	if cfg.Bench.SignalPeriod != 64 {
		t.Error("unsignaled period must match UCX's c=64")
	}
	if cfg.Bench.SQDepth&(cfg.Bench.SQDepth-1) != 0 {
		t.Error("SQ depth must be a power of two")
	}
	if cfg.Bench.Window <= cfg.Bench.SQDepth {
		t.Error("message-rate window should exceed the queue depth so busy posts occur (paper §6)")
	}
}

func TestProfCalibrationTargets(t *testing.T) {
	cfg := TX2CX4(NoiseOff, 1, true)
	total := cfg.Prof.Isb.Mean().Ns() + cfg.Prof.Read.Mean().Ns()
	if math.Abs(total-TabMeasUpdate) > 1e-9 {
		t.Errorf("profiling overhead = %v, want %v", total, TabMeasUpdate)
	}
	if cfg.Prof.TimerHz != 1e12 {
		t.Error("default timer must be 1 THz (precise timers)")
	}
	if cfg.Prof.CalibrationSamples != 1000 {
		t.Error("the paper calibrates with 1000 samples")
	}
}
