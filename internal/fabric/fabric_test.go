package fabric

import (
	"testing"

	"breakband/internal/sim"
	"breakband/internal/units"
)

type port struct {
	k   *sim.Kernel
	got []*Frame
	at  []units.Time
	net *Network
	ack bool // auto-ack data frames
}

func (p *port) RxFrame(f *Frame) {
	p.got = append(p.got, f)
	p.at = append(p.at, p.k.Now())
	if p.ack && f.Kind == Data {
		p.net.Ack(f, AckInfo{QPN: f.Op.SrcQPN, Counter: f.Op.Counter})
	}
}

func build(cfg Config) (*sim.Kernel, *Network, *port, *port) {
	k := sim.NewKernel()
	n := New(k, cfg)
	a := &port{k: k, net: n}
	b := &port{k: k, net: n}
	n.Attach(0, a)
	n.Attach(1, b)
	return k, n, a, b
}

func cfgDirect() Config {
	return Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     false,
	}
}

func TestDirectDelivery(t *testing.T) {
	k, n, _, b := build(cfgDirect())
	k.At(0, func() {
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 8})
	})
	k.Run()
	if len(b.got) != 1 {
		t.Fatal("no delivery")
	}
	// serialize (8+30)*80ps = 3.04ns + 270 prop.
	want := units.Nanoseconds(273.04)
	if b.at[0] != want {
		t.Errorf("arrival %v, want %v", b.at[0], want)
	}
	if n.OneWay(8) != want {
		t.Errorf("OneWay(8) = %v, want %v", n.OneWay(8), want)
	}
}

func TestSwitchAddsLatency(t *testing.T) {
	cfg := cfgDirect()
	cfg.UseSwitch = true
	k, n, _, b := build(cfg)
	k.At(0, func() {
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 8})
	})
	k.Run()
	want := units.Nanoseconds(273.04 + 108)
	if b.at[0] != want {
		t.Errorf("switched arrival %v, want %v", b.at[0], want)
	}
}

func TestAckRoundTrip(t *testing.T) {
	k, n, a, b := build(cfgDirect())
	b.ack = true
	k.At(0, func() {
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 8, Op: TxOp{SrcQPN: 7, Counter: 42}})
	})
	k.Run()
	if len(a.got) != 1 || a.got[0].Kind != TransportAck {
		t.Fatalf("no transport ack: %+v", a.got)
	}
	if a.got[0].Ack != (AckInfo{QPN: 7, Counter: 42}) {
		t.Errorf("ack info lost: %+v", a.got[0].Ack)
	}
	if n.Delivered[Data] != 1 || n.Delivered[TransportAck] != 1 {
		t.Errorf("delivered counts: %v", n.Delivered)
	}
}

func TestAckTurnaround(t *testing.T) {
	cfg := cfgDirect()
	cfg.AckTurnaround = units.Nanoseconds(50)
	k, n, a, b := build(cfg)
	b.ack = true
	k.At(0, func() {
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 0})
	})
	k.Run()
	// data: 2.4 ser + 270 = 272.4; +50 turnaround; ack: 2.4 + 270.
	want := units.Nanoseconds(272.4 + 50 + 272.4)
	if a.at[0] != want {
		t.Errorf("ack at %v, want %v", a.at[0], want)
	}
}

func TestEgressSerialization(t *testing.T) {
	k, n, _, b := build(cfgDirect())
	k.At(0, func() {
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 8})
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 8})
	})
	k.Run()
	if len(b.got) != 2 {
		t.Fatal("missing frames")
	}
	if b.at[1]-b.at[0] != units.Nanoseconds(3.04) {
		t.Errorf("spacing %v, want one serialization", b.at[1]-b.at[0])
	}
}

func TestUnknownPortPanics(t *testing.T) {
	k, n, _, _ := build(cfgDirect())
	defer func() {
		if recover() == nil {
			t.Error("send to unknown port did not panic")
		}
	}()
	k.At(0, func() { n.Send(&Frame{Kind: Data, Src: 0, Dst: 9}) })
	k.Run()
}

func TestDuplicateAttachPanics(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, cfgDirect())
	n.Attach(0, &port{k: k})
	defer func() {
		if recover() == nil {
			t.Error("duplicate attach did not panic")
		}
	}()
	n.Attach(0, &port{k: k})
}

func TestSparseOutOfOrderAttach(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, cfgDirect())
	// Ids may be sparse and attached in any order; busyUntil must cover
	// the largest id.
	ports := map[int]*port{}
	for _, id := range []int{5, 0, 3} {
		p := &port{k: k, net: n}
		ports[id] = p
		n.Attach(id, p)
	}
	k.At(0, func() {
		n.Send(&Frame{Kind: Data, Src: 5, Dst: 0, Bytes: 8})
		n.Send(&Frame{Kind: Data, Src: 0, Dst: 3, Bytes: 8})
	})
	k.Run()
	if len(ports[0].got) != 1 || len(ports[3].got) != 1 {
		t.Errorf("sparse-order attach broke delivery: %d, %d deliveries",
			len(ports[0].got), len(ports[3].got))
	}
}

func TestSendFromUnattachedSourcePanics(t *testing.T) {
	k, n, _, _ := build(cfgDirect())
	defer func() {
		if recover() == nil {
			t.Error("send from unattached source did not panic")
		}
	}()
	k.At(0, func() { n.Send(&Frame{Kind: Data, Src: 9, Dst: 1}) })
	k.Run()
}

// TestOneWayMatchesSend pins the satellite dedup: Send's arrival time on an
// idle egress must be exactly OneWay (both are SerTime + FlightTime).
func TestOneWayMatchesSend(t *testing.T) {
	for _, useSwitch := range []bool{false, true} {
		cfg := cfgDirect()
		cfg.UseSwitch = useSwitch
		k, n, _, b := build(cfg)
		k.At(0, func() { n.Send(&Frame{Kind: Data, Src: 0, Dst: 1, Bytes: 8}) })
		k.Run()
		if b.at[0] != n.OneWay(8) {
			t.Errorf("useSwitch=%v: Send arrived at %v, OneWay reports %v", useSwitch, b.at[0], n.OneWay(8))
		}
	}
}

func TestFrameKindString(t *testing.T) {
	if Data.String() != "data" || TransportAck.String() != "ack" {
		t.Error("frame kind strings")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if !cfg.UseSwitch || cfg.WireProp <= 0 || cfg.SwitchLatency <= 0 {
		t.Error("default config implausible")
	}
}

func TestFramePoolReuse(t *testing.T) {
	k, n, _, b := build(cfgDirect())
	f := n.NewFrame()
	f.Kind = Data
	f.Dst = 1
	f.SetPayload([]byte{1, 2, 3})
	ref := f.Ref()
	k.At(0, func() { n.Send(f) })
	k.Run()
	if len(b.got) != 1 || string(b.got[0].Payload()) != "\x01\x02\x03" {
		t.Fatalf("pooled frame not delivered intact: %+v", b.got)
	}
	// The receiving port owns the frame; release it and the pool must
	// recycle the same slot under a new generation.
	b.got[0].Release()
	if ref.Get() != nil {
		t.Error("stale FrameRef resolved after release")
	}
	g := n.NewFrame()
	if g != f {
		t.Error("released slot not reused")
	}
	if g.Ref().Get() != g {
		t.Error("fresh ref does not resolve")
	}
	if len(g.Payload()) != 0 {
		t.Error("recycled frame kept its payload")
	}
}

func TestFrameDoubleReleasePanics(t *testing.T) {
	_, n, _, _ := build(cfgDirect())
	f := n.NewFrame()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	f.Release()
}

func TestUnpooledFrameReleaseIsNoop(t *testing.T) {
	f := &Frame{Kind: Data}
	f.Release() // must not panic
	if f.Ref().Get() != nil {
		t.Error("unpooled frame ref should resolve to nil")
	}
}

func TestSetPayloadCopies(t *testing.T) {
	_, n, _, _ := build(cfgDirect())
	f := n.NewFrame()
	src := []byte{5, 6}
	f.SetPayload(src)
	src[0] = 99
	if f.Payload()[0] != 5 {
		t.Error("SetPayload aliased the caller's buffer")
	}
}
