// Package fabric models the interconnect between NICs: the physical wire and
// an optional store-and-forward switch (the paper's Network = Wire + Switch
// decomposition), plus the transport-level acknowledgement that drives
// completion generation on the initiator (paper §2 step 4).
//
// # Pooled frames and the borrow contract
//
// Frames on the hot path are pooled: the Network owns a generation-checked
// arena of value-typed frame slots, and the steady-state simulated-message
// path recycles frames instead of allocating them. The rules mirror the
// PCIe packet pool (see internal/pcie):
//
//   - The sending NIC allocates with Network.NewFrame, fills it (payload
//     bytes go in via Frame.SetPayload, which copies into the slot's
//     reusable buffer), and hands it to Send. The network owns the frame in
//     flight.
//   - Delivery transfers ownership to the Port: RxFrame must eventually
//     call Frame.Release — synchronously, or from a later event if receive
//     processing is deferred. The NIC exploits the deferred form for
//     receiver backpressure: it releases a data frame only once the PCIe
//     writes it generated have been issued, so a receiver drowning in
//     overload keeps frames (and, on the topology fabric, their final-hop
//     buffer credits) until its host link catches up.
//   - Anything that wants to keep frame contents past its ownership window
//     must copy them; Payload() aliases the pooled buffer.
//
// Frames constructed directly (&Frame{...}, as tests do) are not pooled and
// Release on them is a no-op.
//
// # Transport ACK and RNR NAK
//
// Every accepted Data frame is answered with a TransportAck retiring the
// initiator's oldest outstanding WQE (paper §2 step 4). A frame the target
// NIC cannot buffer is answered with an RnrNak instead — same reverse-path
// frame shape (AckFor + a Kind retag), same queueing and credits — and the
// initiator retries after a backoff; see internal/nic for the retry state
// machine and ARCHITECTURE.md for the end-to-end credit picture.
//
// Frames carry their transport operation inline (TxOp / AckInfo value
// fields) rather than as boxed interface payloads, so a frame never drags
// heap allocations behind it.
//
// # Delivery implementations
//
// NICs drive the fabric through the Deliverer interface. Network is the
// paper's calibrated two-endpoint model (one wire, at most one ideal
// switch); internal/topo provides the multi-switch implementation with
// routing, per-output-port queueing and credit flow control for N-node
// congestion scenarios. Both honour the same frame pool and borrow
// contract.
package fabric

import (
	"fmt"

	"breakband/internal/arena"
	"breakband/internal/faults"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// FrameKind distinguishes payload-carrying frames from transport ACKs and
// receiver-not-ready NAKs.
type FrameKind uint8

// Frame kinds.
const (
	Data FrameKind = iota
	TransportAck
	// RnrNak is the receiver-not-ready negative acknowledgement: the
	// target NIC refused the Data frame (rx pend budget exhausted, or no
	// receive posted for a send) and the initiator must retransmit after a
	// backoff. It rides the reverse path exactly like a TransportAck —
	// same AckFor shape, same credits and port queues — carrying the
	// refused WQE's identity in the Ack field.
	RnrNak
	// SeqNak is the sequence-error negative acknowledgement: the target
	// NIC saw a PSN gap (a data frame was lost on a faulty link) and asks
	// the initiator to replay from the expected PSN, carried in the Ack
	// field. Unlike an RNR NAK it implies no backoff — the receiver is
	// ready, the wire lost a frame — so the initiator replays immediately.
	SeqNak

	// NumFrameKinds sizes per-kind counter arrays.
	NumFrameKinds = 4
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case Data:
		return "data"
	case TransportAck:
		return "ack"
	case RnrNak:
		return "rnr-nak"
	case SeqNak:
		return "seq-nak"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TxOp describes the transport operation of a Data frame. The fabric treats
// it as opaque metadata (only the NICs interpret it); it is a flat value so
// frames carry no heap-boxed payloads.
type TxOp struct {
	// Opcode is the transport opcode (an mlx.Opcode; kept as a raw byte so
	// the fabric stays below the descriptor-format layer).
	Opcode uint8
	SrcQPN uint32
	DstQPN uint32
	// RAddr is the RDMA target address.
	RAddr uint64
	// AmID is the active-message id for sends.
	AmID uint8
	// Counter is the initiator-side WQE counter, echoed in the ACK.
	Counter uint16
}

// AckInfo identifies the WQE a TransportAck retires on the initiator.
// ACKs are cumulative (IB coalesced-ACK semantics): Counter retires every
// outstanding WQE up to and including it, so a lost ACK is absorbed by the
// next one. For an RnrNak, Counter is the refused WQE; for a SeqNak it is
// the target's expected PSN (everything before it is implicitly acked).
type AckInfo struct {
	QPN     uint32
	Counter uint16
	// Timer is the RNR NAK's advertised minimum retry delay — IB's 5-bit
	// RNR timer field, carried as a duration. Zero means unadvertised: the
	// initiator falls back to its configured RnrBackoff base. Only RnrNak
	// frames set it.
	Timer units.Time
}

// Frame is a link-layer unit travelling between NICs.
type Frame struct {
	Kind FrameKind
	Src  int // source NIC id
	Dst  int // destination NIC id
	// Op describes the transport operation for Data frames.
	Op TxOp
	// Ack carries the initiator-side WQE identity for TransportAck frames.
	Ack AckInfo
	// Bytes is the on-wire payload size used for serialization.
	Bytes int
	// PSN is the per-QP packet sequence number the sending NIC stamps on
	// Data frames (the transport's BTH PSN; one packet per WQE in this
	// model, so it equals Op.Counter). The target NIC sequence-checks it:
	// duplicates are suppressed and re-acked, gaps answered with a SeqNak.
	PSN uint16
	// Corrupted marks a frame whose CRC a fault injector damaged in
	// flight. The delivery layers discard it at the next store-and-forward
	// check (switch ingress or destination port) — the NIC never sees it,
	// and PSN/timeout recovery takes over.
	Corrupted bool

	// TID is the frame's trace id (internal/trace), stamped by the sending
	// NIC when tracing is enabled. Zero means untraced: every trace emit
	// site checks it, so with tracing disabled the field stays zero and
	// costs nothing. Each transmission gets a fresh id — a replayed WQE is
	// a new flight.
	TID uint32

	// payload aliases the pooled slot's reusable buffer; fill through
	// SetPayload.
	payload []byte

	// HopRef is delivery-implementation bookkeeping: internal/topo
	// records the final-hop link (index+1; 0 = none) whose buffer credit
	// a delivered frame occupies, returning the credit when the receiver
	// releases the frame. Senders and receivers never touch it.
	HopRef int32

	// RxPendWrites is receiver-side bookkeeping: the NIC counts the
	// host-memory writes this delivered frame generated that are still
	// credit-blocked on the PCIe link, deferring Release (and therefore
	// the final-hop credit return above) until the count drains to zero.
	// Senders and the delivery layers never touch it.
	RxPendWrites int32

	// Slot is the pool bookkeeping (zero for frames constructed
	// directly); it provides Release.
	arena.Slot
}

// Payload returns the frame's payload bytes. The slice aliases the pooled
// buffer: copy what you keep.
func (f *Frame) Payload() []byte { return f.payload }

// SetPayload copies b into the frame's reusable payload buffer.
func (f *Frame) SetPayload(b []byte) {
	f.payload = append(f.payload[:0], b...)
}

// FrameRef is a generation-checked handle to a pooled frame; see
// pcie.TLPRef for the pattern. The zero FrameRef resolves to nil.
type FrameRef = arena.Ref[Frame]

// Ref returns a generation-checked handle to f.
func (f *Frame) Ref() FrameRef { return arena.MakeRef(f, &f.Slot) }

// NewFrameArena builds a pool of value-typed frame slots (see
// internal/arena). Delivery implementations (Network here, the topology
// fabric in internal/topo) each own one.
func NewFrameArena() *arena.Arena[Frame] {
	return arena.New(
		func(f *Frame) *arena.Slot { return &f.Slot },
		func(f *Frame) {
			f.Kind = 0
			f.Src = 0
			f.Dst = 0
			f.Op = TxOp{}
			f.Ack = AckInfo{}
			f.Bytes = 0
			f.PSN = 0
			f.Corrupted = false
			f.TID = 0
			f.HopRef = 0
			f.RxPendWrites = 0
			f.payload = f.payload[:0]
		})
}

// Port receives frames delivered by the network. Delivery transfers
// ownership of the (pooled) frame to the port, which must call
// Frame.Release exactly once when done with it.
type Port interface {
	RxFrame(f *Frame)
}

// Config parameterizes the fabric.
type Config struct {
	// WireProp is the one-way propagation time of one cable hop
	// (calibrated so the paper's trace methodology measures its Wire
	// value).
	WireProp units.Time
	// WirePerByte is the serialization cost per byte (~80 ps/B at
	// 100 Gb/s).
	WirePerByte units.Time
	// FrameOverhead is per-frame header bytes (LRH/BTH-style).
	FrameOverhead int
	// SwitchLatency is the added forwarding latency of the switch.
	SwitchLatency units.Time
	// UseSwitch selects the two-hop switched topology; otherwise NICs are
	// cabled back to back (the paper measures both to isolate Switch).
	UseSwitch bool
	// AckTurnaround is the target NIC's delay before emitting the
	// transport ACK.
	AckTurnaround units.Time
}

// DefaultConfig returns an EDR-flavoured configuration.
func DefaultConfig() Config {
	return Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     true,
	}
}

// SerTime reports the wire serialization time of a frame carrying b payload
// bytes (header overhead included). It is the single source of the
// serialization arithmetic shared by Send, OneWay and the internal/topo
// switch ports, so the model and its calibration view cannot drift.
func (c Config) SerTime(b int) units.Time {
	return units.Time(b+c.FrameOverhead) * c.WirePerByte
}

// FlightTime reports the post-serialization flight time of the calibrated
// two-endpoint path: the total cable propagation plus, when configured, the
// ideal switch's forwarding latency.
func (c Config) FlightTime() units.Time {
	d := c.WireProp
	if c.UseSwitch {
		d += c.SwitchLatency
	}
	return d
}

// Deliverer is the delivery interface NICs drive: frame allocation from the
// shared pool, transmission towards an attached port, and the transport-ACK
// helpers. Network implements the paper's calibrated two-endpoint model;
// internal/topo implements multi-switch topologies with port contention.
type Deliverer interface {
	// Attach registers port under NIC id (panics on duplicates).
	Attach(id int, p Port)
	// NewFrame allocates a pooled frame owned by the caller until Send.
	NewFrame() *Frame
	// Send transmits f from its Src towards its Dst.
	Send(f *Frame)
	// AckFor allocates the transport ACK answering the Data frame f. The
	// caller may retag the returned frame as an RnrNak before sending it;
	// both kinds ride the reverse path identically.
	AckFor(f *Frame, info AckInfo) *Frame
	// SendAck transmits a previously built ACK (or NAK) after the
	// configured turnaround delay.
	SendAck(ack *Frame)
	// Config reports the wire/switch parameter set.
	Config() Config
	// InUseFrames reports live frame-pool slots (0 once every in-flight
	// frame has been delivered and released — the leak check).
	InUseFrames() int
}

// Network connects NIC ports. With a switch, each endpoint has its own cable
// to the switch; the modelled WireProp is the *total* cable flight time
// end-to-end (the paper's Wire), so each of the two hops contributes half.
type Network struct {
	k     *sim.Kernel
	cfg   Config
	ports map[int]Port
	// busyUntil serializes each endpoint's egress, indexed by NIC id
	// (ids are small and dense; grown on Attach).
	busyUntil []units.Time
	// Delivered counts frames by kind, a test hook.
	Delivered [NumFrameKinds]uint64

	frames *arena.Arena[Frame]

	// flts holds per-egress fault state indexed by NIC id (nil entries —
	// and a nil slice when no injector was adopted — cost one branch on
	// the hot path and nothing else).
	flts []*faults.Link

	// Continuations, bound once so the per-frame path schedules events
	// without allocating closures.
	deliverFn func(any)
	sendFn    func(any)
}

var _ Deliverer = (*Network)(nil)

// New builds an empty network.
func New(k *sim.Kernel, cfg Config) *Network {
	n := &Network{
		k:      k,
		cfg:    cfg,
		ports:  make(map[int]Port),
		frames: NewFrameArena(),
	}
	n.deliverFn = func(a any) {
		f := a.(*Frame)
		if f.Corrupted {
			// The CRC check at the destination port discards the frame
			// before the NIC sees it; transport recovery takes over.
			f.Release()
			return
		}
		n.Delivered[f.Kind]++
		n.ports[f.Dst].RxFrame(f)
	}
	n.sendFn = func(a any) { n.Send(a.(*Frame)) }
	return n
}

// Config reports the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers port under NIC id.
func (n *Network) Attach(id int, p Port) {
	if _, dup := n.ports[id]; dup {
		panic(fmt.Sprintf("fabric: duplicate port id %d", id))
	}
	n.ports[id] = p
	for len(n.busyUntil) <= id {
		n.busyUntil = append(n.busyUntil, 0)
	}
}

// NewFrame allocates a pooled frame owned by the caller until it is handed
// to Send. Fields are zeroed and the payload is empty with its previous
// capacity retained.
func (n *Network) NewFrame() *Frame { return n.frames.Alloc() }

// InUseFrames reports live frame-pool slots, the pool-leak check: it must
// return to zero once every in-flight frame has been delivered and released.
func (n *Network) InUseFrames() int { return n.frames.InUse() }

// OneWay reports the modelled one-way latency for a frame of b payload
// bytes, including switch forwarding when configured. Exposed for tests and
// calibration solvers. It is Send's arrival arithmetic (SerTime +
// FlightTime) applied to an idle egress.
func (n *Network) OneWay(b int) units.Time {
	return n.cfg.SerTime(b) + n.cfg.FlightTime()
}

// Send transmits f from its Src towards its Dst.
func (n *Network) Send(f *Frame) {
	if _, ok := n.ports[f.Dst]; !ok {
		panic(fmt.Sprintf("fabric: no port %d", f.Dst))
	}
	if f.Src < 0 || f.Src >= len(n.busyUntil) {
		panic(fmt.Sprintf("fabric: frame from unattached source port %d", f.Src))
	}
	// Egress serialization at the source NIC, then the shared one-way
	// flight arithmetic (the same terms OneWay reports).
	start := units.Max(n.k.Now(), n.busyUntil[f.Src])
	txDone := start + n.cfg.SerTime(f.Bytes)
	n.busyUntil[f.Src] = txDone
	if n.flts != nil && f.Src < len(n.flts) {
		if fl := n.flts[f.Src]; fl != nil {
			switch fl.Decide() {
			case faults.Drop:
				// Lost on the wire: the egress still serialized it (the
				// transmitter cannot know), but it never arrives.
				f.Release()
				return
			case faults.Corrupt:
				f.Corrupted = true
			}
		}
	}
	n.k.AtArg(txDone+n.cfg.FlightTime(), n.deliverFn, f)
}

// EgressName is the compiled port name of NIC id's injection egress — the
// name fault schedules use, shared with internal/topo's host ports.
func EgressName(id int) string { return fmt.Sprintf("host%d.egress", id) }

// InjectFaults adopts a fault injector: every attached egress gets its
// per-link Bernoulli state, and scripted drops resolve against the
// "host<N>.egress" names. The two-endpoint network has no redundant paths
// or switch ports, so flap schedules (and scripted names it cannot
// resolve) panic with the port named — the same contract as the attach
// panics. Call after every NIC has attached.
func (n *Network) InjectFaults(inj *faults.Injector) {
	for _, name := range inj.ScriptPorts() {
		if !n.egressKnown(name) {
			panic(fmt.Sprintf("fabric: fault injection on unknown port %q (two-endpoint network has only host<N>.egress ports)", name))
		}
	}
	if len(inj.Config().Flaps) > 0 {
		panic(fmt.Sprintf("fabric: link flap on %q: the two-endpoint network has no redundant paths to fail over", inj.Config().Flaps[0].Port))
	}
	n.flts = make([]*faults.Link, len(n.busyUntil))
	for id := range n.ports {
		name := EgressName(id)
		if inj.Bernoulli() || len(inj.FlapsFor(name)) > 0 || scripted(inj, name) {
			n.flts[id] = inj.Link(name)
		}
	}
}

// egressKnown reports whether name is an attached NIC's egress.
func (n *Network) egressKnown(name string) bool {
	for id := range n.ports {
		if EgressName(id) == name {
			return true
		}
	}
	return false
}

// scripted reports whether the injector's schedule names the port.
func scripted(inj *faults.Injector, name string) bool {
	for _, p := range inj.ScriptPorts() {
		if p == name {
			return true
		}
	}
	return false
}

// AckFor allocates the transport-level acknowledgement frame answering the
// received Data frame f. The caller transmits it with SendAck (possibly
// after its own processing delay).
func (n *Network) AckFor(f *Frame, info AckInfo) *Frame {
	ack := n.frames.Alloc()
	ack.Kind = TransportAck
	ack.Src = f.Dst
	ack.Dst = f.Src
	ack.Ack = info
	return ack
}

// SendAck transmits a previously built ACK frame after the configured
// turnaround delay.
func (n *Network) SendAck(ack *Frame) {
	if n.cfg.AckTurnaround > 0 {
		n.k.AfterArg(n.cfg.AckTurnaround, n.sendFn, ack)
		return
	}
	n.Send(ack)
}

// Ack emits the transport-level acknowledgement for a received Data frame
// back to its source.
func (n *Network) Ack(f *Frame, info AckInfo) {
	n.SendAck(n.AckFor(f, info))
}
