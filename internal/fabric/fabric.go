// Package fabric models the interconnect between NICs: the physical wire and
// an optional store-and-forward switch (the paper's Network = Wire + Switch
// decomposition), plus the transport-level acknowledgement that drives
// completion generation on the initiator (paper §2 step 4).
package fabric

import (
	"fmt"

	"breakband/internal/sim"
	"breakband/internal/units"
)

// FrameKind distinguishes payload-carrying frames from transport ACKs.
type FrameKind uint8

// Frame kinds.
const (
	Data FrameKind = iota
	TransportAck
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	if k == Data {
		return "data"
	}
	return "ack"
}

// Frame is a link-layer unit travelling between NICs.
type Frame struct {
	Kind FrameKind
	Src  int // source NIC id
	Dst  int // destination NIC id
	// Op describes the transport operation for Data frames (opaque to the
	// fabric; interpreted by the NICs).
	Op any
	// AckOf carries the initiator-side cookie being acknowledged.
	AckOf any
	// Bytes is the on-wire payload size used for serialization.
	Bytes int
}

// Port receives frames delivered by the network.
type Port interface {
	RxFrame(f *Frame)
}

// Config parameterizes the fabric.
type Config struct {
	// WireProp is the one-way propagation time of one cable hop
	// (calibrated so the paper's trace methodology measures its Wire
	// value).
	WireProp units.Time
	// WirePerByte is the serialization cost per byte (~80 ps/B at
	// 100 Gb/s).
	WirePerByte units.Time
	// FrameOverhead is per-frame header bytes (LRH/BTH-style).
	FrameOverhead int
	// SwitchLatency is the added forwarding latency of the switch.
	SwitchLatency units.Time
	// UseSwitch selects the two-hop switched topology; otherwise NICs are
	// cabled back to back (the paper measures both to isolate Switch).
	UseSwitch bool
	// AckTurnaround is the target NIC's delay before emitting the
	// transport ACK.
	AckTurnaround units.Time
}

// DefaultConfig returns an EDR-flavoured configuration.
func DefaultConfig() Config {
	return Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     true,
	}
}

// Network connects NIC ports. With a switch, each endpoint has its own cable
// to the switch; the modelled WireProp is the *total* cable flight time
// end-to-end (the paper's Wire), so each of the two hops contributes half.
type Network struct {
	k     *sim.Kernel
	cfg   Config
	ports map[int]Port
	// busyUntil serializes each endpoint's egress.
	busyUntil map[int]units.Time
	// Delivered counts frames by kind, a test hook.
	Delivered map[FrameKind]uint64
}

// New builds an empty network.
func New(k *sim.Kernel, cfg Config) *Network {
	return &Network{
		k:         k,
		cfg:       cfg,
		ports:     make(map[int]Port),
		busyUntil: make(map[int]units.Time),
		Delivered: make(map[FrameKind]uint64),
	}
}

// Config reports the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers port under NIC id.
func (n *Network) Attach(id int, p Port) {
	if _, dup := n.ports[id]; dup {
		panic(fmt.Sprintf("fabric: duplicate port id %d", id))
	}
	n.ports[id] = p
}

// OneWay reports the modelled one-way latency for a frame of b payload
// bytes, including switch forwarding when configured. Exposed for tests and
// calibration solvers.
func (n *Network) OneWay(b int) units.Time {
	d := n.cfg.WireProp + units.Time(b+n.cfg.FrameOverhead)*n.cfg.WirePerByte
	if n.cfg.UseSwitch {
		d += n.cfg.SwitchLatency
	}
	return d
}

// Send transmits f from its Src towards its Dst.
func (n *Network) Send(f *Frame) {
	dst, ok := n.ports[f.Dst]
	if !ok {
		panic(fmt.Sprintf("fabric: no port %d", f.Dst))
	}
	// Egress serialization at the source NIC.
	start := units.Max(n.k.Now(), n.busyUntil[f.Src])
	txDone := start + units.Time(f.Bytes+n.cfg.FrameOverhead)*n.cfg.WirePerByte
	n.busyUntil[f.Src] = txDone
	arrival := txDone + n.cfg.WireProp
	if n.cfg.UseSwitch {
		arrival += n.cfg.SwitchLatency
	}
	n.k.At(arrival, func() {
		n.Delivered[f.Kind]++
		dst.RxFrame(f)
	})
}

// Ack emits the transport-level acknowledgement for a received Data frame
// back to its source.
func (n *Network) Ack(f *Frame, cookie any) {
	ack := &Frame{Kind: TransportAck, Src: f.Dst, Dst: f.Src, AckOf: cookie, Bytes: 0}
	if n.cfg.AckTurnaround > 0 {
		n.k.After(n.cfg.AckTurnaround, func() { n.Send(ack) })
		return
	}
	n.Send(ack)
}
