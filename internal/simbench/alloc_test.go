package simbench

import (
	"runtime"
	"testing"

	"breakband/internal/config"
	"breakband/internal/fabric"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/sim"
	"breakband/internal/topo"
	"breakband/internal/trace"
	"breakband/internal/workload"
)

// deviceAllocBudget is the per-simulated-message allocation budget of the
// steady-state device datapath (PIO post -> PCIe -> NIC -> fabric -> remote
// PCIe -> CQE -> poll). The pooled TLP/DLLP/frame arenas, the closure-free
// kernel continuations and the scratch WQE/CQE decode make the marginal
// cost zero; the budget leaves headroom for amortized pool/trace growth.
const deviceAllocBudget = 8.0

// TestSchedulePathZeroAlloc pins the kernel schedule/fire hot path at zero
// allocations per event, for both the plain and the arg-carrying form.
func TestSchedulePathZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	fn := func() {}
	afn := func(any) {}
	arg := &struct{}{}
	// Warm the slot pool and the heap.
	for i := 0; i < 64; i++ {
		k.After(1, fn)
		k.AfterArg(1, afn, arg)
	}
	k.Run()
	if allocs := testing.AllocsPerRun(500, func() {
		k.After(1, fn)
		k.Run()
	}); allocs != 0 {
		t.Errorf("After/Run allocates %.2f per event, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		k.AfterArg(1, afn, arg)
		k.Run()
	}); allocs != 0 {
		t.Errorf("AfterArg/Run allocates %.2f per event, want 0", allocs)
	}
}

// mallocsForPutBw runs a fresh NoiseOff put_bw of the given length and
// reports the process-wide malloc count it consumed (setup included).
func mallocsForPutBw(iters int) float64 {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sys := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
	perftest.PutBw(sys, perftest.Options{Iters: iters, Warmup: 64})
	sys.Shutdown()
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs - m0.Mallocs)
}

// TestDevicePathAllocBudget asserts the marginal per-message allocation
// cost of the full device datapath. Comparing a long run against a short
// one on identical fresh systems cancels construction and warmup, leaving
// the steady-state per-message cost.
func TestDevicePathAllocBudget(t *testing.T) {
	const short, long = 256, 2048
	a1 := mallocsForPutBw(short)
	a2 := mallocsForPutBw(long)
	perMsg := (a2 - a1) / float64(long-short)
	if perMsg > deviceAllocBudget {
		t.Errorf("device path allocates %.2f per message, budget %.0f", perMsg, deviceAllocBudget)
	}
	t.Logf("device path: %.3f allocs/message (budget %.0f)", perMsg, deviceAllocBudget)
}

// releasePort is the minimal fabric.Port: it hands every delivered frame
// straight back to the pool.
type releasePort struct{}

func (releasePort) RxFrame(f *fabric.Frame) { f.Release() }

// TestSwitchPathZeroAlloc pins the topology fabric's steady-state switch
// path at exactly zero allocations per frame-hop: pooled frames ride the
// kernel's pooled arg slots between per-link continuations bound at
// construction, and switch-port queues are reusable rings whose
// high-water mark the credit budget bounds. Measured under contention
// (four sources sharing one output port), after a warmup that grows every
// pool to its steady-state working set.
func TestSwitchPathZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	fab := topo.NewFabric(k, fabric.DefaultConfig(), topo.Spec{Kind: topo.SingleSwitch}, 5)
	for i := 0; i < 5; i++ {
		fab.Attach(i, releasePort{})
	}
	send := func(src int) {
		f := fab.NewFrame()
		f.Kind = fabric.Data
		f.Src = src
		f.Dst = 0
		f.Bytes = 4096
		fab.Send(f)
	}
	// Warm the frame pool, the event pool and every port ring with a
	// contended burst.
	for r := 0; r < 32; r++ {
		for s := 1; s < 5; s++ {
			send(s)
		}
	}
	k.Run()
	// Each iteration pushes four contending frames across two hops each
	// (host egress + shared switch port) and drains them completely.
	if allocs := testing.AllocsPerRun(200, func() {
		for s := 1; s < 5; s++ {
			send(s)
		}
		k.Run()
	}); allocs != 0 {
		t.Errorf("contended switch path allocates %.2f per 4-frame round, want 0 per frame-hop", allocs)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked", fab.InUseFrames())
	}
}

// TestIncastDevicePathAllocBudget applies the end-to-end device budget to
// the contended 4-sender incast. The switch path itself is
// allocation-free (TestSwitchPathZeroAlloc); the residual marginal cost
// here is amortized pool growth on the receiver's PCIe link, whose pend
// queue legitimately deepens while the link is the modelled bottleneck of
// a saturating incast (4 KiB MWr credit round trips are slower than the
// wire's frame rate).
func TestIncastDevicePathAllocBudget(t *testing.T) {
	const senders = 4
	run := func(iters int) float64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
		sys := node.NewSystem(cfg, senders+1)
		perftest.IncastPutBw(sys, senders, perftest.Options{Iters: iters, Warmup: 64, MsgSize: 4096})
		sys.Shutdown()
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs)
	}
	const short, long = 256, 2048
	a1 := run(short)
	a2 := run(long)
	perMsg := (a2 - a1) / float64((long-short)*senders)
	if perMsg > deviceAllocBudget {
		t.Errorf("incast device path allocates %.2f per message, budget %.0f", perMsg, deviceAllocBudget)
	}
	t.Logf("incast device path: %.3f allocs/message (budget %.0f)", perMsg, deviceAllocBudget)
}

// TestOversubscribedDevicePathAllocBudget extends the device budget to the
// RNR NAK / retry path: a bounded-receiver incast (rx budget below the
// link credits) continuously defers frame releases, emits NAKs, runs
// backoff timers and replays go-back-N windows. All of that must recycle —
// pooled NAK frames, the NIC's pend-FIFO ring, the fixed retransmit ring
// with reused payload buffers, and pooled timer events — so the marginal
// per-message cost stays inside the same budget as the uncontended path.
func TestOversubscribedDevicePathAllocBudget(t *testing.T) {
	const senders = 4
	run := func(iters int) float64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
		cfg.NICRxBudget = 8
		sys := node.NewSystem(cfg, senders+1)
		res := perftest.OversubscribedPutBw(sys, senders, perftest.Options{Iters: iters, Warmup: 64, MsgSize: 4096})
		if res.RNRNaks == 0 {
			t.Fatal("scenario exercised no NAK/retry activity")
		}
		sys.Shutdown()
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs)
	}
	const short, long = 256, 2048
	a1 := run(short)
	a2 := run(long)
	perMsg := (a2 - a1) / float64((long-short)*senders)
	if perMsg > deviceAllocBudget {
		t.Errorf("NAK/retry path allocates %.2f per message, budget %.0f", perMsg, deviceAllocBudget)
	}
	t.Logf("NAK/retry path: %.3f allocs/message (budget %.0f)", perMsg, deviceAllocBudget)
}

// TestWindowedDevicePathAllocBudget applies the same budget to the windowed
// pattern, which holds a full window of pooled descriptors in flight.
func TestWindowedDevicePathAllocBudget(t *testing.T) {
	run := func(iters int) float64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		sys := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
		perftest.WindowedPutBw(sys, 32, iters)
		sys.Shutdown()
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs)
	}
	const short, long = 320, 2240
	a1 := run(short)
	a2 := run(long)
	perMsg := (a2 - a1) / float64(long-short)
	if perMsg > deviceAllocBudget {
		t.Errorf("windowed device path allocates %.2f per message, budget %.0f", perMsg, deviceAllocBudget)
	}
	t.Logf("windowed device path: %.3f allocs/message (budget %.0f)", perMsg, deviceAllocBudget)
}

// TestLossyRetransmitAllocBudget applies the device budget to the lossy
// transport path: Bernoulli drops and corruptions force ACK timeouts,
// sequence NAKs and go-back-N replays, all of which must run on pooled
// frames and the per-QP recycled timer event — loss recovery is steady
// state for this subsystem, not an exceptional slow path.
func TestLossyRetransmitAllocBudget(t *testing.T) {
	run := func(iters int) float64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.Faults.DropRate = 5e-3
		cfg.Faults.CorruptRate = 5e-3
		sys := node.NewSystem(cfg, 2)
		res := perftest.LossyPutBw(sys, perftest.Options{Iters: iters, MsgSize: 32})
		if res.Failed || res.SenderStats.Retransmits == 0 {
			t.Fatalf("scenario exercised no loss recovery: %v", res)
		}
		sys.Shutdown()
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs)
	}
	const short, long = 512, 4096
	a1 := run(short)
	a2 := run(long)
	perMsg := (a2 - a1) / float64(long-short)
	if perMsg > deviceAllocBudget {
		t.Errorf("lossy retransmit path allocates %.2f per message, budget %.0f", perMsg, deviceAllocBudget)
	}
	t.Logf("lossy retransmit path: %.3f allocs/message (budget %.0f)", perMsg, deviceAllocBudget)
}

// TestWorkloadInjectAllocBudget applies the device budget to the workload
// injection path: open-loop arrival generation (per-client clocks, the
// min-heap, size draws) plus the full device datapath per message. The
// generation machinery is itself allocation-free (workload's own zero-alloc
// gate); the marginal cost here must stay inside the same budget as the
// hand-written scenarios.
func TestWorkloadInjectAllocBudget(t *testing.T) {
	run := func(n int) (float64, int) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		spec := benchWorkloadSpec(n)
		sys := node.NewSystem(spec.BuildConfig(config.NoiseOff, 1), spec.Nodes)
		res, err := workload.Run(spec, sys, workload.RunOpt{})
		if err != nil {
			t.Fatal(err)
		}
		sys.Shutdown()
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs), res.Cohorts[0].Delivered
	}
	const short, long = 512, 4096
	a1, n1 := run(short)
	a2, n2 := run(long)
	if n2 <= n1 {
		t.Fatalf("long run delivered %d <= short run's %d", n2, n1)
	}
	perMsg := (a2 - a1) / float64(n2-n1)
	if perMsg > deviceAllocBudget {
		t.Errorf("workload injection path allocates %.2f per message, budget %.0f", perMsg, deviceAllocBudget)
	}
	t.Logf("workload injection path: %.3f allocs/message (budget %.0f)", perMsg, deviceAllocBudget)
}

// tracedAllocBudget is the per-message allocation budget of the device
// datapath with event tracing ENABLED. The tracer's ring is allocated once
// at construction and overwrite never grows it, port names are interned at
// fabric build time, and every emit site writes a value event into the
// preallocated ring — so turning tracing on must not move the marginal
// per-message cost at all: the budget is the same as the untraced path.
const tracedAllocBudget = deviceAllocBudget

// TestTracerEmitZeroAlloc pins Tracer.Emit at zero allocations per event,
// including after the ring has wrapped: overwrite recycles slots, it never
// grows the buffer.
func TestTracerEmitZeroAlloc(t *testing.T) {
	tr := trace.New(1024)
	e := trace.Event{Kind: trace.EvQueue, TID: 1}
	for i := 0; i < 2048; i++ {
		tr.Emit(e)
	}
	if allocs := testing.AllocsPerRun(1000, func() { tr.Emit(e) }); allocs != 0 {
		t.Errorf("Emit allocates %.2f per event on a wrapped ring, want 0", allocs)
	}
}

// TestTracedSwitchPathZeroAlloc re-runs the contended switch path with the
// kernel tracer installed and frames TID-stamped: every hop now records
// route/queue/stall/txstart/deliver events, and the steady-state cost must
// stay exactly zero allocations per frame-hop — emits are value writes into
// the construction-time ring.
func TestTracedSwitchPathZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	tr := trace.New(1 << 12)
	k.SetTracer(tr)
	fab := topo.NewFabric(k, fabric.DefaultConfig(), topo.Spec{Kind: topo.SingleSwitch}, 5)
	for i := 0; i < 5; i++ {
		fab.Attach(i, releasePort{})
	}
	send := func(src int) {
		f := fab.NewFrame()
		f.Kind = fabric.Data
		f.Src = src
		f.Dst = 0
		f.Bytes = 4096
		f.TID = tr.NextTID()
		fab.Send(f)
	}
	for r := 0; r < 32; r++ {
		for s := 1; s < 5; s++ {
			send(s)
		}
	}
	k.Run()
	if allocs := testing.AllocsPerRun(200, func() {
		for s := 1; s < 5; s++ {
			send(s)
		}
		k.Run()
	}); allocs != 0 {
		t.Errorf("traced switch path allocates %.2f per 4-frame round, want 0 per frame-hop", allocs)
	}
	if tr.Emitted() == 0 {
		t.Fatal("tracer recorded nothing; the gate is not exercising emits")
	}
}

// TestTracedDevicePathAllocBudget runs the full put_bw datapath with
// tracing enabled and asserts the marginal per-message cost stays inside
// the same budget as the untraced device path (TestDevicePathAllocBudget):
// enabling observability must not buy per-message garbage.
func TestTracedDevicePathAllocBudget(t *testing.T) {
	run := func(iters int) float64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		cfg := config.TX2CX4(config.NoiseOff, 1, true)
		cfg.TraceCapacity = 1 << 15
		sys := node.NewSystem(cfg, 2)
		perftest.PutBw(sys, perftest.Options{Iters: iters, Warmup: 64})
		if sys.Tracer() == nil || sys.Tracer().Emitted() == 0 {
			t.Fatal("tracing did not capture anything")
		}
		sys.Shutdown()
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs - m0.Mallocs)
	}
	const short, long = 256, 2048
	a1 := run(short)
	a2 := run(long)
	perMsg := (a2 - a1) / float64(long-short)
	if perMsg > tracedAllocBudget {
		t.Errorf("traced device path allocates %.2f per message, budget %.0f", perMsg, tracedAllocBudget)
	}
	t.Logf("traced device path: %.3f allocs/message (budget %.0f)", perMsg, tracedAllocBudget)
}
