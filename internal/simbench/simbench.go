// Package simbench holds the kernel microbenchmark bodies shared by the
// `go test -bench` wrappers in internal/sim and the BENCH_kernel.json emitter
// in cmd/bbbench. Keeping the bodies in a normal (non-test) package lets the
// command run the exact benchmarks CI smokes, via testing.Benchmark, so the
// recorded perf trajectory and the test-suite benchmarks can never diverge.
package simbench

import (
	"testing"

	"breakband/internal/config"
	"breakband/internal/node"
	"breakband/internal/perftest"
	"breakband/internal/sim"
	"breakband/internal/topo"
	"breakband/internal/units"
	"breakband/internal/workload"
)

// scheduleWidth is how many self-rescheduling event chains BenchmarkSchedule
// keeps in flight, so the heap holds a realistic working set while events
// recycle through the pool.
const scheduleWidth = 64

// Schedule measures the kernel's schedule+fire hot path: b.N events flow
// through At/Run with a steady-state queue of scheduleWidth, exercising pool
// reuse rather than unbounded heap growth. The schedule path must be
// zero-allocation: the closure is shared, so every At costs only a pooled
// slot and a heap entry.
func Schedule(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	fired := 0
	var reschedule func()
	reschedule = func() {
		fired++
		if fired+scheduleWidth <= b.N {
			k.After(1, reschedule)
		}
	}
	b.ResetTimer()
	for i := 0; i < scheduleWidth && i < b.N; i++ {
		k.After(1, reschedule)
	}
	k.Run()
	b.StopTimer()
	reportEventsPerSec(b, float64(fired))
}

// SleepHandoff measures the full proc suspend/resume round trip: one kernel
// event plus two goroutine handoffs per Sleep. This is the cost the batched
// Advance API amortizes away on the software-stack hot paths.
func SleepHandoff(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	n := b.N
	k.Spawn("sleeper", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Shutdown()
	reportEventsPerSec(b, float64(n))
}

// stepLoopFrame is the continuation twin of SleepHandoff's loop body: one
// Advance+Pause suspend/resume round trip per iteration.
type stepLoopFrame struct {
	pc, i, n int
}

func (f *stepLoopFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			if f.i >= f.n {
				t.Return()
				return
			}
			t.Advance(1)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			f.i++
			f.pc = 0
		}
	}
}

// HandoffFreeStep measures the continuation suspend/resume round trip: one
// pooled kernel event per Pause, zero goroutine handoffs and zero
// allocations. It is the direct twin of SleepHandoff — the ns/op gap between
// the two is the price the goroutine path pays per suspension, and the
// reason the hot software stacks run on task frames.
func HandoffFreeStep(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	f := &stepLoopFrame{n: b.N}
	k.SpawnTask("stepper", f)
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Shutdown()
	if k.Handoffs() != 0 {
		b.Fatalf("continuation benchmark performed %d handoffs", k.Handoffs())
	}
	reportEventsPerSec(b, float64(b.N))
}

// pauseOnceFrame advances one tick, pauses once, and returns to its caller.
type pauseOnceFrame struct{ pc int }

func (f *pauseOnceFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			t.Advance(1)
			f.pc = 1
			if t.Pause() {
				return
			}
		case 1:
			t.Return()
			return
		}
	}
}

// callLoopFrame pushes a preallocated sub-frame per iteration, measuring the
// Call/Return activation discipline the layered stacks (osu→mpi→ucp→uct→
// verbs) use on every operation.
type callLoopFrame struct {
	pc, i, n int
	sub      pauseOnceFrame
}

func (f *callLoopFrame) Step(t *sim.Task) {
	for {
		switch f.pc {
		case 0:
			if f.i >= f.n {
				t.Return()
				return
			}
			f.pc = 1
			f.sub.pc = 0
			t.Call(&f.sub)
			return
		case 1:
			f.i++
			f.pc = 0
		}
	}
}

// HandoffFreeCall measures one sub-frame Call/Return round trip per op (with
// one pause inside the callee), the pattern every layered Start* API runs.
// Like the whole migrated hot path it must stay allocation-free: frames are
// preallocated by their owners and reused.
func HandoffFreeCall(b *testing.B) {
	b.ReportAllocs()
	k := sim.NewKernel()
	k.SpawnTask("caller", &callLoopFrame{n: b.N})
	b.ResetTimer()
	k.Run()
	b.StopTimer()
	k.Shutdown()
	if k.Handoffs() != 0 {
		b.Fatalf("continuation benchmark performed %d handoffs", k.Handoffs())
	}
	reportEventsPerSec(b, float64(b.N))
}

// PutBwEndToEnd measures the whole stack: b.N RDMA-write injections through
// uct over the calibrated NoiseOff system, including the PCIe/NIC/fabric
// event chains and completion polling. This is the number the measurement
// campaign's wall clock follows.
func PutBwEndToEnd(b *testing.B) {
	b.ReportAllocs()
	sys := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
	defer sys.Shutdown()
	b.ResetTimer()
	res := perftest.PutBw(sys, perftest.Options{Iters: b.N, Warmup: 16})
	b.StopTimer()
	if res.Messages != b.N {
		b.Fatalf("put_bw ran %d messages, want %d", res.Messages, b.N)
	}
	reportEventsPerSec(b, float64(sys.K.Fired()))
}

// WindowedPutBw measures the windowed device path: post a window of RDMA
// writes, then poll the window's completions before reusing it (the access
// pattern behind the paper's §4.2 p >= gen_completion / LLP_post bound).
// Compared to PutBwEndToEnd's poll-every-16 pattern it keeps the full
// window in flight, so the pooled TLP/frame arenas see their deepest
// steady-state working set.
func WindowedPutBw(b *testing.B) {
	b.ReportAllocs()
	sys := node.NewSystem(config.TX2CX4(config.NoiseOff, 1, true), 2)
	defer sys.Shutdown()
	window := 32
	if b.N < window {
		window = b.N
	}
	b.ResetTimer()
	res := perftest.WindowedPutBw(sys, window, b.N)
	b.StopTimer()
	if res.PerMsgNs <= 0 {
		b.Fatalf("windowed put_bw reported %v ns/msg", res.PerMsgNs)
	}
	reportEventsPerSec(b, float64(sys.K.Fired()))
}

// IncastPutBw measures the contended switch path: four senders funnel
// 4 KiB buffered-copy writes through one receiver downlink port of a
// 5-node single-switch topology (internal/topo), exercising the
// store-and-forward queues and credit flow control under saturation.
// b.N counts delivered messages across all senders.
func IncastPutBw(b *testing.B) {
	b.ReportAllocs()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
	sys := node.NewSystem(cfg, 5)
	defer sys.Shutdown()
	const senders = 4
	iters := (b.N + senders - 1) / senders
	b.ResetTimer()
	res := perftest.IncastPutBw(sys, senders, perftest.Options{Iters: iters, Warmup: 16, MsgSize: 4096})
	b.StopTimer()
	if res.Messages != senders*iters {
		b.Fatalf("incast ran %d messages, want %d", res.Messages, senders*iters)
	}
	reportEventsPerSec(b, float64(sys.K.Fired()))
}

// OversubscribedPutBw measures the receiver-overload path with bounded rx
// buffering: the IncastPutBw shape against an rx budget (8) below the
// per-link fabric credits, so the run continuously exercises deferred
// frame release, RNR NAK emission, sender backoff timers and go-back-N
// replay on top of the contended switch path. b.N counts delivered
// messages across all senders.
func OversubscribedPutBw(b *testing.B) {
	b.ReportAllocs()
	cfg := config.TX2CX4(config.NoiseOff, 1, true)
	cfg.Topology = topo.Spec{Kind: topo.SingleSwitch}
	cfg.NICRxBudget = 8
	sys := node.NewSystem(cfg, 5)
	defer sys.Shutdown()
	const senders = 4
	iters := (b.N + senders - 1) / senders
	b.ResetTimer()
	res := perftest.OversubscribedPutBw(sys, senders, perftest.Options{Iters: iters, Warmup: 16, MsgSize: 4096})
	b.StopTimer()
	if res.Messages != senders*iters {
		b.Fatalf("oversubscribed incast ran %d messages, want %d", res.Messages, senders*iters)
	}
	reportEventsPerSec(b, float64(sys.K.Fired()))
}

// benchWorkloadSpec compiles the canonical open-loop Poisson incast sized to
// an expected n arrivals: 64 clients on seven source nodes of the 8-node
// fat-tree, 64-byte puts into node 0.
func benchWorkloadSpec(n int) *workload.Spec {
	const clients, rate = 64, 40e3
	aggPs := clients * rate / float64(units.Second) // arrivals per picosecond
	return &workload.Spec{
		Name:     "bench",
		Nodes:    8,
		Topology: "fattree",
		Cohorts: []workload.Cohort{{
			Name:     "storm",
			Clients:  clients,
			Src:      []int{1, 2, 3, 4, 5, 6, 7},
			Dst:      []int{0},
			Duration: units.Time(float64(n)/aggPs) + 1,
			Arrival:  workload.ArrivalSpec{Process: workload.ProcPoisson, Rate: rate},
			Size:     workload.SizeSpec{Dist: workload.SizeDistFixed, Bytes: 64},
		}},
	}
}

// WorkloadInject measures the declarative-workload injection path end to end:
// an open-loop Poisson incast compiled from a workload spec — per-client
// arrival clocks, the min-heap scheduler, paced continuation injectors and
// completion rings — over the 8-node fat-tree. b.N sizes the cohort horizon
// to b.N expected arrivals.
func WorkloadInject(b *testing.B) {
	b.ReportAllocs()
	spec := benchWorkloadSpec(b.N)
	sys := node.NewSystem(spec.BuildConfig(config.NoiseOff, 1), spec.Nodes)
	defer sys.Shutdown()
	b.ResetTimer()
	res, err := workload.Run(spec, sys, workload.RunOpt{})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Cohorts[0].Delivered == 0 {
		b.Fatal("workload delivered nothing")
	}
	reportEventsPerSec(b, float64(sys.K.Fired()))
}

// reportEventsPerSec attaches an events/sec custom metric.
func reportEventsPerSec(b *testing.B, events float64) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(events/sec, "events/sec")
	}
}
