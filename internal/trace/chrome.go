package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"breakband/internal/units"
)

// chromeEvent is one record of the Chrome trace-event JSON format
// (the "JSON Array Format" accepted by chrome://tracing and Perfetto).
// Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	chromePidFabric = 0 // one row per fabric port
	chromePidNodes  = 1 // one row per node for NIC/PCIe decisions
)

func chromeTs(t units.Time) float64 { return t.Us() }

// WriteChrome exports a trace window as Chrome trace-event JSON. Frame
// flights become async spans (one per trace id), port serializations become
// duration slices on per-port rows, and policy decisions become instant
// events on per-node rows. tr supplies port-name resolution; events is
// typically tr.Events() but may be any filtered window.
func WriteChrome(w io.Writer, tr *Tracer, events []Event) error {
	out := make([]chromeEvent, 0, len(events)+8)

	meta := func(pid int, name string) {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePidFabric, "fabric ports")
	meta(chromePidNodes, "nodes")

	// txstart events carry the frame size; recover each slice's duration
	// from the next lifecycle event of the same flight (queue at the next
	// hop, or deliver). Simpler and exact: pair txstart with the following
	// event of the same TID.
	nextAt := make(map[uint32]units.Time) // walked backwards below
	durs := make([]units.Time, len(events))
	for i := len(events) - 1; i >= 0; i-- {
		e := &events[i]
		if e.TID == 0 {
			continue
		}
		switch e.Kind {
		case EvTxStart:
			if at, ok := nextAt[e.TID]; ok {
				durs[i] = at - e.At
			}
			nextAt[e.TID] = e.At
		case EvQueue, EvDeliver, EvStall, EvInject, EvRelease, EvRefuse, EvDrop:
			nextAt[e.TID] = e.At
		}
	}

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case EvInject:
			out = append(out, chromeEvent{
				Name: "msg", Cat: "frame", Ph: "b",
				Ts: chromeTs(e.At), Pid: chromePidNodes, Tid: int(e.Node),
				ID: fmt.Sprintf("f%d", e.TID),
				Args: map[string]any{
					"qpn": MsgQPN(e.Arg), "psn": MsgPSN(e.Arg), "bytes": MsgBytes(e.Arg),
				},
			})
		case EvRelease, EvRefuse, EvDrop:
			if e.TID != 0 {
				out = append(out, chromeEvent{
					Name: "msg", Cat: "frame", Ph: "e",
					Ts: chromeTs(e.At), Pid: chromePidNodes, Tid: int(e.Node),
					ID:   fmt.Sprintf("f%d", e.TID),
					Args: map[string]any{"end": e.Kind.String()},
				})
			}
		case EvTxStart:
			out = append(out, chromeEvent{
				Name: "tx", Cat: "port", Ph: "X",
				Ts: chromeTs(e.At), Dur: durs[i].Us(),
				Pid: chromePidFabric, Tid: int(e.Port),
				Args: map[string]any{"bytes": MsgBytes(e.Arg), "tid": e.TID},
			})
		case EvStall, EvQueue, EvRoute:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "port", Ph: "i",
				Ts: chromeTs(e.At), Pid: chromePidFabric, Tid: int(e.Port),
				Args: map[string]any{"tid": e.TID},
			})
		default: // decision kinds: nakrx, retx, acktimeout, pend, crash, ...
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "decision", Ph: "i",
				Ts: chromeTs(e.At), Pid: chromePidNodes, Tid: int(e.Node),
				Args: map[string]any{"arg": e.Arg},
			})
		}
	}

	// Name the port rows after the interned port names.
	seen := map[int32]bool{}
	for i := range events {
		e := &events[i]
		if e.Port >= 0 && !seen[e.Port] {
			seen[e.Port] = true
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M",
				Pid: chromePidFabric, Tid: int(e.Port),
				Args: map[string]any{"name": tr.PortName(e.Port)},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
