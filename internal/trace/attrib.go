package trace

import (
	"fmt"
	"sort"
	"strings"

	"breakband/internal/units"
)

// Calib supplies the analytically calibrated ideal times the attribution
// subtracts from measured spans. perftest builds one from config.Config
// (wire serialization, flight constants, receiver PCIe write cycle); the
// conservation tests pin that these formulas match the simulator exactly.
type Calib struct {
	// WireIdeal reports the uncontended inject-to-deliver time of a data
	// frame of the given payload size crossing the given number of
	// serialization ports.
	WireIdeal func(bytes, hops int) units.Time
	// RxHold reports the uncontended deliver-to-release time at the
	// receiver: NIC receive processing plus issuing the frame's host-memory
	// writes on an idle PCIe link.
	RxHold func(bytes int) units.Time
}

// Msg is the stall attribution of one message: where the span between its
// first injection and its final delivery actually went. All component
// fields are disjoint; Residual reports what the attribution failed to
// explain (0 when instrumentation and calibration are both exact).
type Msg struct {
	Src     int    // source node
	QPN     uint32 // source queue pair
	PSN     uint32 // packet sequence number (one message = one frame)
	Bytes   int
	Hops    int // serialization ports crossed by the delivered flight
	Flights int // transmissions, 1 = delivered first try

	Inject units.Time // first injection into the fabric
	Done   units.Time // receiver released the delivered frame

	Ideal   units.Time // calibrated uncontended path time (wire + rx hold)
	Queue   units.Time // waiting behind other frames in switch-port FIFOs
	Stall   units.Time // head-of-queue waits for downstream link credits
	Pend    units.Time // receiver PCIe hold beyond the calibrated rx ideal
	Backoff units.Time // RNR backoff windows between first and final inject
	Waste   units.Time // remaining retransmission time (NAK return, replay)
}

// Measured reports the end-to-end latency being attributed.
func (m *Msg) Measured() units.Time { return m.Done - m.Inject }

// Residual reports measured latency minus the sum of all attributed
// components — the conservation error.
func (m *Msg) Residual() units.Time {
	return m.Measured() - (m.Ideal + m.Queue + m.Stall + m.Pend + m.Backoff + m.Waste)
}

// Report is the aggregate stall attribution of a traced window.
type Report struct {
	Msgs []Msg // completed messages, in completion order

	// Component totals over Msgs.
	Ideal, Queue, Stall, Pend, Backoff, Waste units.Time
	Measured                                  units.Time

	// Incomplete counts messages that had injected but not delivered when
	// the window closed.
	Incomplete int
}

// MaxResidual reports the largest absolute per-message conservation error.
func (r *Report) MaxResidual() units.Time {
	var worst units.Time
	for i := range r.Msgs {
		res := r.Msgs[i].Residual()
		if res < 0 {
			res = -res
		}
		if res > worst {
			worst = res
		}
	}
	return worst
}

// Shares reports each component's fraction of total measured latency, in
// the order ideal, queue, stall, pend, backoff, waste.
func (r *Report) Shares() [6]float64 {
	var out [6]float64
	if r.Measured == 0 {
		return out
	}
	tot := float64(r.Measured)
	for i, c := range [6]units.Time{r.Ideal, r.Queue, r.Stall, r.Pend, r.Backoff, r.Waste} {
		out[i] = float64(c) / tot
	}
	return out
}

// Format renders the attribution as a small table: component totals,
// shares, and the conservation residual.
func (r *Report) Format() string {
	var b strings.Builder
	n := len(r.Msgs)
	if n == 0 {
		return "stall attribution: no completed messages in trace window\n"
	}
	fmt.Fprintf(&b, "stall attribution over %d message(s), mean latency %v:\n",
		n, r.Measured/units.Time(n))
	sh := r.Shares()
	rows := []struct {
		name string
		tot  units.Time
		sh   float64
	}{
		{"ideal (wire+rx)", r.Ideal, sh[0]},
		{"switch queueing", r.Queue, sh[1]},
		{"credit stall", r.Stall, sh[2]},
		{"PCIe pend", r.Pend, sh[3]},
		{"RNR backoff", r.Backoff, sh[4]},
		{"retransmit waste", r.Waste, sh[5]},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "  %-17s %12v  (%5.1f%%, %v/msg)\n",
			row.name, row.tot, 100*row.sh, row.tot/units.Time(n))
	}
	fmt.Fprintf(&b, "  conservation: max |residual| = %v over %d msg(s), %d flight(s) incomplete\n",
		r.MaxResidual(), n, r.Incomplete)
	return b.String()
}

// flight is the in-air state of one traced frame transmission.
type flight struct {
	key     uint64
	t0      units.Time // inject
	mark    units.Time // last lifecycle boundary processed
	deliver units.Time
	queue   units.Time
	stall   units.Time
	bytes   int
	hops    int
	stalled bool
	dead    bool // refused, dropped or discarded — cannot complete a message
}

// msgState accumulates a message across its flights until delivery.
type msgState struct {
	inject  units.Time
	flights int
}

// qpState tracks one initiator QP's backoff windows during the window.
type qpState struct {
	backoffAt units.Time // arm time of an open backoff window (-1 = none)
	windows   [][2]units.Time
}

func msgKey(node int16, qpn, psn uint32) uint64 {
	return uint64(uint16(node))<<48 | uint64(qpn&0xffffff)<<24 | uint64(psn&0xffffff)
}

func qpKey(node int16, qpn uint32) uint64 {
	return uint64(uint16(node))<<24 | uint64(qpn&0xffffff)
}

// Attribute folds a trace window (Tracer.Events order) into per-message
// stall attribution. Flights whose inject was overwritten in the ring are
// ignored; messages still incomplete at the end of the window are counted
// in Report.Incomplete.
func Attribute(events []Event, calib Calib) *Report {
	rep := &Report{}
	flights := make(map[uint32]*flight)
	msgs := make(map[uint64]*msgState)
	qps := make(map[uint64]*qpState)

	for i := range events {
		e := &events[i]
		switch e.Kind {
		case EvInject:
			f := &flight{
				key:   msgKey(e.Node, MsgQPN(e.Arg), MsgPSN(e.Arg)),
				t0:    e.At,
				mark:  e.At,
				bytes: MsgBytes(e.Arg),
			}
			flights[e.TID] = f
			m := msgs[f.key]
			if m == nil {
				msgs[f.key] = &msgState{inject: e.At, flights: 1}
			} else {
				m.flights++
			}
		case EvQueue:
			if f := flights[e.TID]; f != nil {
				// Everything since the last txstart (or the inject) is
				// serialization plus flight: uncontended constants.
				f.mark = e.At
				f.stalled = false
			}
		case EvStall:
			// A port re-checking credits for the same head frame emits
			// repeat stalls; only the first opens the stall span.
			if f := flights[e.TID]; f != nil && !f.stalled {
				f.queue += e.At - f.mark
				f.mark = e.At
				f.stalled = true
			}
		case EvTxStart:
			if f := flights[e.TID]; f != nil {
				if f.stalled {
					f.stall += e.At - f.mark
				} else {
					f.queue += e.At - f.mark
				}
				f.mark = e.At
				f.stalled = false
				f.hops++
			}
		case EvDeliver:
			if f := flights[e.TID]; f != nil {
				f.deliver = e.At
				f.mark = e.At
			}
		case EvRefuse, EvDrop:
			if f := flights[e.TID]; f != nil {
				f.dead = true
			}
		case EvRelease:
			f := flights[e.TID]
			if f == nil {
				break
			}
			delete(flights, e.TID)
			if f.dead || f.deliver == 0 {
				break
			}
			m := msgs[f.key]
			if m == nil {
				break // inject fell off the ring
			}
			delete(msgs, f.key)
			rxHold := e.At - f.deliver
			rxIdeal := calib.RxHold(f.bytes)
			msg := Msg{
				Src:     int(uint16(f.key >> 48)),
				QPN:     uint32(f.key >> 24 & 0xffffff),
				PSN:     uint32(f.key & 0xffffff),
				Bytes:   f.bytes,
				Hops:    f.hops,
				Flights: m.flights,
				Inject:  m.inject,
				Done:    e.At,
				Ideal:   calib.WireIdeal(f.bytes, f.hops) + rxIdeal,
				Queue:   f.queue,
				Stall:   f.stall,
				Pend:    rxHold - rxIdeal,
			}
			// Retransmission time: the span from the first inject to the
			// final flight's inject splits into RNR backoff windows and
			// everything else (NAK return flight, replay scheduling).
			if retx := f.t0 - m.inject; retx > 0 {
				qp := qps[qpKey(int16(msg.Src), msg.QPN)]
				if qp != nil {
					for _, w := range qp.windows {
						lo, hi := units.Max(w[0], m.inject), units.Min(w[1], f.t0)
						if hi > lo {
							msg.Backoff += hi - lo
						}
					}
				}
				msg.Waste = retx - msg.Backoff
			}
			rep.Msgs = append(rep.Msgs, msg)
			rep.Ideal += msg.Ideal
			rep.Queue += msg.Queue
			rep.Stall += msg.Stall
			rep.Pend += msg.Pend
			rep.Backoff += msg.Backoff
			rep.Waste += msg.Waste
			rep.Measured += msg.Measured()
		case EvNakRx:
			k := qpKey(e.Node, QPQPN(e.Arg))
			qp := qps[k]
			if qp == nil {
				qp = &qpState{backoffAt: -1}
				qps[k] = qp
			}
			qp.backoffAt = e.At
		case EvRetx:
			if qp := qps[qpKey(e.Node, QPQPN(e.Arg))]; qp != nil && qp.backoffAt >= 0 {
				qp.windows = append(qp.windows, [2]units.Time{qp.backoffAt, e.At})
				qp.backoffAt = -1
			}
		}
	}
	rep.Incomplete = len(msgs)
	sort.SliceStable(rep.Msgs, func(i, j int) bool { return rep.Msgs[i].Done < rep.Msgs[j].Done })
	return rep
}
