// Package trace is the simulator's flight recorder: a kernel-integrated,
// pooled ring buffer of fixed-size events that every hot layer emits into
// when tracing is enabled, and that costs exactly one nil pointer test per
// call site when it is not.
//
// The paper's contribution is a breakdown — attributing every nanosecond of
// the communication critical path to a specific layer — and this package is
// the simulator-side instrument for the same question: where does a message
// actually lose its time? Two event families are recorded on one timeline:
//
//   - Frame lifecycle spans: a data frame's trace id (Tracer.NextTID,
//     stamped on fabric.Frame.TID by the sending NIC) threads Inject →
//     per-hop Queue/Stall/TxStart → Deliver → Release (or Refuse/Drop), so
//     a consumer can reconstruct exactly where each flight waited.
//   - Policy decisions: ECMP route chosen, credit stall begin, RNR NAK
//     issued and received, go-back-N replay, ACK-timeout backoff, PCIe pend
//     park/issue, crash and flush. These are the moments the simulator
//     *chose* to delay or discard something, recorded with enough keying
//     (node, QP, PSN, port) to join them back to the affected messages.
//
// Consumers: Attribute (attrib.go) folds a ring into per-message stall
// attribution with a conservation check; WriteChrome (chrome.go) exports
// the timeline as Chrome trace-event JSON for chrome://tracing / Perfetto;
// perftest.SaturationSweep samples per-load-step stall shares from it.
//
// # Enablement and allocation rules
//
// A Tracer is optional everywhere: components capture a *Tracer (possibly
// nil) at construction from sim.Kernel.Tracer, and every emit site is
// guarded by a single pointer test — with tracing disabled the simulation
// executes the identical event sequence (golden fixtures stay byte-
// identical) and the hot paths stay at their zero-allocation budgets. With
// tracing enabled, Emit writes one value-typed Event into a preallocated
// ring (overwriting the oldest when full) and allocates nothing; the only
// enabled-mode allocations are port-name interning (once per port) and
// whatever a consumer builds at analysis time. internal/simbench pins both
// budgets in CI.
package trace

import (
	"fmt"

	"breakband/internal/units"
)

// Kind classifies one recorded event.
type Kind uint8

// Event kinds. The frame-lifecycle kinds carry the frame's trace id (TID);
// the QP-level decision kinds carry node and ArgQP packing instead.
const (
	// EvInject: a NIC handed a data frame to the fabric. Node = source,
	// Arg = ArgMsg(qpn, bytes, psn). First event of every flight.
	EvInject Kind = iota
	// EvQueue: the frame entered an output-port FIFO. Port set.
	EvQueue
	// EvStall: the frame reached the head of its port's queue but the link
	// is out of downstream credits; the port is stalled until a credit
	// returns. Port set.
	EvStall
	// EvTxStart: the port popped the frame and began serializing it onto
	// the wire. Port set, Arg = ArgMsg(0, bytes, psn).
	EvTxStart
	// EvDeliver: the frame arrived at its destination host port. Node =
	// destination.
	EvDeliver
	// EvRelease: the receiver released the frame — for an accepted data
	// frame, the moment its last host-memory write was issued on the
	// receiver's PCIe link (and the final-hop fabric credit returned).
	// Node = destination.
	EvRelease
	// EvRefuse: the receiver RNR-NAKed the frame (no receive posted or rx
	// budget exhausted). Node = destination, Arg = ArgMsg(qpn, 0, psn).
	EvRefuse
	// EvDrop: the fault layer dropped or a store-and-forward check
	// discarded the frame. Port set when known.
	EvDrop
	// EvRoute: ECMP up-path decision — a cross-leaf frame was hashed onto
	// a spine uplink. Port = chosen uplink, Arg = ArgMsg(0, 0, dst).
	EvRoute
	// EvNakRx: the initiator received an RNR NAK and armed its backoff
	// timer. Node = initiator, Arg = ArgQP(qpn, backoff picoseconds).
	EvNakRx
	// EvSeqNakRx: the initiator received a sequence-error NAK and will
	// replay immediately. Node = initiator, Arg = ArgQP(qpn, psn).
	EvSeqNakRx
	// EvAckTimeout: the initiator's ACK timer expired. Node = initiator,
	// Arg = ArgQP(qpn, backoff picoseconds of the next timeout).
	EvAckTimeout
	// EvRetx: go-back-N replay began (backoff, if any, is over). Node =
	// initiator, Arg = ArgQP(qpn, first replayed psn).
	EvRetx
	// EvCQE: a completion (success or error) was written to host memory.
	// Node set, Arg = ArgQP(qpn, cqe opcode/status word).
	EvCQE
	// EvPend: a PCIe TLP parked in the pend queue (credit-blocked, ordering
	// or paused). Node set, Arg = payload bytes.
	EvPend
	// EvIssue: a previously parked PCIe TLP finally transmitted. Node set,
	// Arg = payload bytes.
	EvIssue
	// EvCrash: the node's NIC failed (endpoint fault). Node set.
	EvCrash
	// EvFlush: a QP was moved to the error state and its outstanding work
	// flushed with error CQEs. Node set, Arg = ArgQP(qpn, flushed count).
	EvFlush
	// EvComp: an LLP-level (uct) operation completed. Node set,
	// Arg = ArgQP(qpn, 0) when known.
	EvComp

	numKinds
)

var kindNames = [numKinds]string{
	"inject", "queue", "stall", "txstart", "deliver", "release", "refuse",
	"drop", "route", "nakrx", "seqnakrx", "acktimeout", "retx", "cqe",
	"pend", "issue", "crash", "flush", "comp",
}

// String names the kind, e.g. "inject".
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-size trace record. Which fields are meaningful depends
// on Kind (see the kind constants); unused fields are zero (Port/Node: -1).
type Event struct {
	At   units.Time // kernel timestamp
	Arg  uint64     // kind-specific payload, see ArgMsg/ArgQP
	TID  uint32     // frame flight id (0 = not tied to a frame)
	Port int32      // interned port id (-1 = none), see Tracer.PortName
	Node int16      // node id (-1 = none)
	Kind Kind
}

// ArgMsg packs the frame-describing argument word used by EvInject,
// EvTxStart and EvRefuse: a 16-bit QP number, a 24-bit byte count and a
// 24-bit PSN.
func ArgMsg(qpn uint32, bytes int, psn uint32) uint64 {
	return uint64(qpn&0xffff)<<48 | uint64(bytes&0xffffff)<<24 | uint64(psn&0xffffff)
}

// MsgQPN unpacks the QP number of an ArgMsg word.
func MsgQPN(arg uint64) uint32 { return uint32(arg >> 48) }

// MsgBytes unpacks the byte count of an ArgMsg word.
func MsgBytes(arg uint64) int { return int(arg >> 24 & 0xffffff) }

// MsgPSN unpacks the PSN of an ArgMsg word.
func MsgPSN(arg uint64) uint32 { return uint32(arg & 0xffffff) }

// ArgQP packs the QP-decision argument word used by the EvNakRx/EvRetx
// family: a 16-bit QP number and a 48-bit kind-specific value (a backoff in
// picoseconds, a PSN, a count).
func ArgQP(qpn uint32, v uint64) uint64 {
	return uint64(qpn&0xffff)<<48 | v&0xffffffffffff
}

// QPQPN unpacks the QP number of an ArgQP word.
func QPQPN(arg uint64) uint32 { return uint32(arg >> 48) }

// QPVal unpacks the value of an ArgQP word.
func QPVal(arg uint64) uint64 { return arg & 0xffffffffffff }

// Tracer records events into a preallocated ring buffer. One Tracer serves
// a whole system (all nodes share the kernel's timeline); it is installed
// on the kernel before components are built (sim.Kernel.SetTracer) and
// captured by each layer at construction. A nil *Tracer means tracing is
// disabled; every call site guards with a single pointer test.
//
// Tracer is not safe for concurrent use — exactly like the simulation state
// it observes, it relies on the kernel's single-threaded event execution.
type Tracer struct {
	buf []Event
	n   uint64 // total events ever emitted; buf[(n-1) % len(buf)] is newest

	tid uint32 // last issued frame trace id

	ports   []string
	portIDs map[string]int32
}

// New returns a tracer whose ring keeps the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity < 1 {
		panic("trace: ring capacity must be positive")
	}
	return &Tracer{
		buf:     make([]Event, capacity),
		portIDs: make(map[string]int32),
	}
}

// Emit appends one event, overwriting the oldest when the ring is full.
// The receiver must be non-nil: emit sites guard with `if tr != nil`.
func (t *Tracer) Emit(e Event) {
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
}

// NextTID issues a fresh frame trace id (never 0, so the zero value on a
// pooled frame means "untraced").
func (t *Tracer) NextTID() uint32 {
	t.tid++
	if t.tid == 0 {
		t.tid = 1
	}
	return t.tid
}

// Port interns a port name, returning its stable id. Components intern
// their ports once at construction; Emit sites then pass the id.
func (t *Tracer) Port(name string) int32 {
	if id, ok := t.portIDs[name]; ok {
		return id
	}
	id := int32(len(t.ports))
	t.ports = append(t.ports, name)
	t.portIDs[name] = id
	return id
}

// PortName resolves an interned port id ("" for -1 or unknown ids).
func (t *Tracer) PortName(id int32) string {
	if id < 0 || int(id) >= len(t.ports) {
		return ""
	}
	return t.ports[id]
}

// Len reports how many events the ring currently holds.
func (t *Tracer) Len() int {
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Emitted reports how many events were ever emitted; Emitted()-Len() of
// them have been overwritten.
func (t *Tracer) Emitted() uint64 { return t.n }

// Overwritten reports how many events the ring has already discarded. A
// consumer that needs a complete window must size New's capacity so this
// stays zero across the window.
func (t *Tracer) Overwritten() uint64 {
	if t.n < uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns the retained events, oldest first. The slice is freshly
// allocated; mutating it does not affect the ring.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.Len())
	cap64 := uint64(len(t.buf))
	start := uint64(0)
	if t.n > cap64 {
		start = t.n - cap64
	}
	for i := start; i < t.n; i++ {
		out = append(out, t.buf[i%cap64])
	}
	return out
}

// Reset discards all retained events (port interning and the tid counter
// survive, so in-flight frames keep valid ids). Scenario drivers call it
// at the start of a measured window.
func (t *Tracer) Reset() { t.n = 0 }
