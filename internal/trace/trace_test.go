package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"breakband/internal/units"
)

func TestRingWraparound(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{At: units.Time(i), Kind: EvQueue, TID: uint32(i)})
	}
	if tr.Len() != 4 || tr.Emitted() != 10 || tr.Overwritten() != 6 {
		t.Fatalf("len=%d emitted=%d overwritten=%d", tr.Len(), tr.Emitted(), tr.Overwritten())
	}
	evs := tr.Events()
	for i, e := range evs {
		if want := uint32(6 + i); e.TID != want {
			t.Fatalf("event %d: TID=%d want %d (oldest-first order broken)", i, e.TID, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || len(tr.Events()) != 0 {
		t.Fatalf("reset did not empty the ring")
	}
}

func TestPortInterning(t *testing.T) {
	tr := New(8)
	a := tr.Port("sw0.p1")
	b := tr.Port("sw0.p2")
	if a == b || tr.Port("sw0.p1") != a {
		t.Fatalf("interning unstable: %d %d", a, b)
	}
	if tr.PortName(a) != "sw0.p1" || tr.PortName(-1) != "" {
		t.Fatalf("PortName wrong")
	}
}

func TestArgPacking(t *testing.T) {
	arg := ArgMsg(0x1234, 4096, 0xabcdef)
	if MsgQPN(arg) != 0x1234 || MsgBytes(arg) != 4096 || MsgPSN(arg) != 0xabcdef {
		t.Fatalf("ArgMsg roundtrip: %x -> %x %d %x", arg, MsgQPN(arg), MsgBytes(arg), MsgPSN(arg))
	}
	q := ArgQP(7, 123456789)
	if QPQPN(q) != 7 || QPVal(q) != 123456789 {
		t.Fatalf("ArgQP roundtrip")
	}
}

// synthetic timeline: one message delivered first try, one refused once
// then delivered after a backoff window.
func synthEvents() []Event {
	us := func(x int64) units.Time { return units.Time(x) * units.Microsecond }
	return []Event{
		// message A (qpn 1, psn 0): inject 0, queue, stall 1us, tx, deliver, release.
		{At: us(0), Kind: EvInject, TID: 1, Node: 0, Arg: ArgMsg(1, 100, 0)},
		{At: us(0), Kind: EvQueue, TID: 1, Port: 0},
		{At: us(2), Kind: EvStall, TID: 1, Port: 0},  // queued 2us behind others
		{At: us(3), Kind: EvTxStart, TID: 1, Port: 0}, // stalled 1us on credits
		{At: us(5), Kind: EvDeliver, TID: 1, Node: 1}, // ser+flight 2us
		{At: us(9), Kind: EvRelease, TID: 1, Node: 1}, // rx hold 4us (ideal 3us -> pend 1us)
		// message B (qpn 1, psn 1): first flight refused, replay delivered.
		{At: us(10), Kind: EvInject, TID: 2, Node: 0, Arg: ArgMsg(1, 100, 1)},
		{At: us(10), Kind: EvQueue, TID: 2, Port: 0},
		{At: us(10), Kind: EvTxStart, TID: 2, Port: 0},
		{At: us(12), Kind: EvDeliver, TID: 2, Node: 1},
		{At: us(12), Kind: EvRefuse, TID: 2, Node: 1, Arg: ArgMsg(1, 0, 1)},
		{At: us(12), Kind: EvRelease, TID: 2, Node: 1},
		{At: us(14), Kind: EvNakRx, Node: 0, Arg: ArgQP(1, 2_000_000)}, // backoff armed
		{At: us(17), Kind: EvRetx, Node: 0, Arg: ArgQP(1, 1)},         // 3us backoff
		{At: us(17), Kind: EvInject, TID: 3, Node: 0, Arg: ArgMsg(1, 100, 1)},
		{At: us(17), Kind: EvQueue, TID: 3, Port: 0},
		{At: us(17), Kind: EvTxStart, TID: 3, Port: 0},
		{At: us(19), Kind: EvDeliver, TID: 3, Node: 1},
		{At: us(22), Kind: EvRelease, TID: 3, Node: 1},
	}
}

func synthCalib() Calib {
	return Calib{
		WireIdeal: func(bytes, hops int) units.Time { return 2 * units.Microsecond },
		RxHold:    func(bytes int) units.Time { return 3 * units.Microsecond },
	}
}

func TestAttributeConservesSynthetic(t *testing.T) {
	rep := Attribute(synthEvents(), synthCalib())
	if len(rep.Msgs) != 2 {
		t.Fatalf("completed %d messages, want 2", len(rep.Msgs))
	}
	a, b := rep.Msgs[0], rep.Msgs[1]
	if a.PSN != 0 || b.PSN != 1 {
		t.Fatalf("order: %v %v", a.PSN, b.PSN)
	}
	// A: measured 9us = ideal 5 + queue 2 + stall 1 + pend 1.
	if a.Measured() != 9*units.Microsecond || a.Queue != 2*units.Microsecond ||
		a.Stall != 1*units.Microsecond || a.Pend != 1*units.Microsecond {
		t.Fatalf("msg A attribution: %+v", a)
	}
	if a.Residual() != 0 {
		t.Fatalf("msg A residual %v", a.Residual())
	}
	// B: measured 12us = ideal 5 + backoff 3 + waste 4 (nak return + replay gap).
	if b.Flights != 2 || b.Backoff != 3*units.Microsecond || b.Waste != 4*units.Microsecond {
		t.Fatalf("msg B attribution: %+v", b)
	}
	if b.Residual() != 0 {
		t.Fatalf("msg B residual %v", b.Residual())
	}
	if rep.MaxResidual() != 0 || rep.Incomplete != 0 {
		t.Fatalf("report: maxres=%v incomplete=%d", rep.MaxResidual(), rep.Incomplete)
	}
	if rep.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestWriteChromeParses(t *testing.T) {
	tr := New(64)
	tr.Port("host0.egress")
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr, synthEvents()); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(out) < len(synthEvents()) {
		t.Fatalf("export has %d records for %d events", len(out), len(synthEvents()))
	}
}
