package topo

import (
	"fmt"
	"strings"

	"breakband/internal/arena"
	"breakband/internal/fabric"
	"breakband/internal/faults"
	"breakband/internal/sim"
	"breakband/internal/trace"
	"breakband/internal/units"
)

// Fabric is the compiled topology: a fabric.Deliverer whose frames travel
// host egress -> switch chain -> destination host, with per-output-port
// serialization queues and link-level credits (see the package doc). Two
// hosts on the back-to-back or single-switch spec take the calibrated
// ideal path instead, bit-identical with fabric.Network.
type Fabric struct {
	k    *sim.Kernel
	cfg  fabric.Config
	spec Spec

	ports  map[int]fabric.Port
	frames *arena.Arena[fabric.Frame]
	// attached[id] is the sendable fast path: id is routed and has a
	// port. Attached-but-unrouted ids live only in the ports map.
	attached []bool

	// Delivered counts delivered frames by kind, a test hook (mirrors
	// fabric.Network).
	Delivered [fabric.NumFrameKinds]uint64

	// Ideal two-endpoint tier (nil switches): one egress serialization,
	// then a constant flight time.
	ideal     bool
	flight    units.Time
	busyUntil []units.Time
	// flts is the ideal tier's per-egress fault state, indexed by host id
	// (nil without an injector; the engine tier hangs fault state off its
	// output ports instead).
	flts []*faults.Link

	// Engine tier.
	hosts    []outPort // per-host injection egress, indexed by host id
	switches []*Switch
	links    []*link
	hopProp  units.Time // per-cable flight time (WireProp / 2)

	// Fat-tree shape, kept for ECMP failover rerouting (zero/nil on other
	// topologies).
	ftHpl    int
	ftSpines int
	ftLeaves []*Switch

	// OnDepth, when set, observes every output-port queue depth change
	// (port is the port's compiled name, e.g. "sw0.port3"). Leave nil on
	// hot paths; the examples use it to plot queue depth over time.
	OnDepth func(at units.Time, port string, depth int)

	// tr is the kernel's flight recorder (nil = tracing disabled; every
	// emit site below is behind one pointer test). Frame lifecycle events
	// are emitted only for frames carrying a trace id (Frame.TID != 0,
	// stamped by the sending NIC).
	tr *trace.Tracer
	// idealPorts holds the interned host-egress port ids of the ideal
	// two-endpoint tier (nil when tracing is disabled or ports exist).
	idealPorts []int32

	deliverFn func(any)
	sendFn    func(any)
}

var _ fabric.Deliverer = (*Fabric)(nil)

// Switch is one compiled store-and-forward switch.
type Switch struct {
	name string
	// route maps destination host id -> index into outs.
	route []int32
	outs  []outPort
}

// Name reports the switch's compiled name ("sw0", "leaf1", "spine0").
func (s *Switch) Name() string { return s.name }

// link is one directed cable: the downstream end of exactly one outPort.
type link struct {
	// id is the link's index in Fabric.links (frames record id+1 in
	// their HopRef while they occupy the final hop's buffer credit).
	id int32
	// prop is the cable flight time, plus the switch forwarding latency
	// when the downstream is a switch (folded into the arrival event).
	prop    units.Time
	credits int
	dstSw   *Switch
	dstHost int
	// up is the port driving this link; returning credits kicks it.
	up *outPort
	// arriveFn is the link's bound continuation: the per-frame hop event
	// carries only the *Frame, closure-free on the steady-state path.
	arriveFn func(any)
}

// qent is one queued frame plus the inbound link whose downstream buffer
// it occupies (nil at the host egress, where frames enter the fabric).
type qent struct {
	f  *fabric.Frame
	in *link
}

// frameQ is a growable FIFO ring of queued frames. Its capacity reaches a
// high-water mark bounded by the credit budget and is reused thereafter,
// keeping the steady-state switch path allocation-free.
type frameQ struct {
	buf  []qent
	head int
	n    int
}

func (q *frameQ) push(e qent) {
	if q.n == len(q.buf) {
		nb := make([]qent, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = nb, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
}

func (q *frameQ) pop() qent {
	e := q.buf[q.head]
	q.buf[q.head] = qent{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}

// outPort is one serializing egress driving a link: a host NIC's injection
// port or a switch output port. The port transmits one frame at a time;
// everything else waits in q, so queue depth is the true congestion
// signal.
type outPort struct {
	fab  *Fabric
	name string
	link *link
	q    frameQ
	// cur is the frame on the wire while busy; txDoneFn is the bound
	// transmission-complete continuation (one closure per port, none per
	// frame).
	cur      qent
	busy     bool
	txDoneFn func()

	// flt is the port's fault-injection state (nil when no injector was
	// adopted or the schedule never touches this port: one pointer test on
	// the transmit path). down marks a flapped-dead link: the port
	// transmits nothing, queued and arriving frames are dropped, and —
	// on fat-tree up-links — ECMP routes divert around it.
	flt  *faults.Link
	down bool

	// trID is the port's interned trace id (-1 when tracing is disabled);
	// isUp marks a fat-tree leaf uplink, where pushing a frame records the
	// ECMP route decision.
	trID int32
	isUp bool

	forwarded    uint64
	maxQueue     int
	creditStalls uint64
	// busyTime accumulates wire-serialization occupancy; divided by a
	// measurement window it is the port's utilization.
	busyTime units.Time
}

// push enqueues e, tracks queue-depth stats, and starts transmission if
// the port is idle. Pushing at a dead (flapped-down) port drops the frame
// on the spot.
func (p *outPort) push(e qent) {
	if p.down {
		if p.flt != nil {
			p.flt.CountDrop()
		}
		p.drop(e)
		return
	}
	p.q.push(e)
	if p.q.n > p.maxQueue {
		p.maxQueue = p.q.n
	}
	if p.fab.OnDepth != nil {
		p.fab.OnDepth(p.fab.k.Now(), p.name, p.q.n)
	}
	if tr := p.fab.tr; tr != nil && e.f.TID != 0 {
		at := p.fab.k.Now()
		if p.isUp {
			tr.Emit(trace.Event{At: at, Kind: trace.EvRoute, TID: e.f.TID,
				Port: p.trID, Node: -1, Arg: trace.ArgMsg(0, 0, uint32(e.f.Dst))})
		}
		tr.Emit(trace.Event{At: at, Kind: trace.EvQueue, TID: e.f.TID, Port: p.trID, Node: -1})
	}
	p.kick()
}

// kick starts the next queued transmission if the port is idle and the
// downstream link has a buffer credit: consume the credit, put the frame
// on the wire for its serialization time. Dead ports transmit nothing
// (their credits sit quarantined until the link comes back).
func (p *outPort) kick() {
	if p.busy || p.down || p.q.n == 0 {
		return
	}
	if p.link.credits == 0 {
		p.creditStalls++
		if tr := p.fab.tr; tr != nil {
			if f := p.q.buf[p.q.head].f; f.TID != 0 {
				tr.Emit(trace.Event{At: p.fab.k.Now(), Kind: trace.EvStall,
					TID: f.TID, Port: p.trID, Node: -1})
			}
		}
		return
	}
	e := p.q.pop()
	if p.fab.OnDepth != nil {
		p.fab.OnDepth(p.fab.k.Now(), p.name, p.q.n)
	}
	if tr := p.fab.tr; tr != nil && e.f.TID != 0 {
		tr.Emit(trace.Event{At: p.fab.k.Now(), Kind: trace.EvTxStart, TID: e.f.TID,
			Port: p.trID, Node: -1, Arg: trace.ArgMsg(0, e.f.Bytes, uint32(e.f.PSN))})
	}
	p.link.credits--
	p.busy = true
	p.cur = e
	ser := p.fab.cfg.SerTime(e.f.Bytes)
	p.busyTime += ser
	p.fab.k.At(p.fab.k.Now()+ser, p.txDoneFn)
}

// drop loses e at this port: the inbound buffer credit it held returns
// (so upstream ports are not wedged on a dead path) and the frame is
// released — pooled frames go back to the arena, so pool-drain checks
// hold under faults.
func (p *outPort) drop(e qent) {
	if tr := p.fab.tr; tr != nil && e.f.TID != 0 {
		tr.Emit(trace.Event{At: p.fab.k.Now(), Kind: trace.EvDrop,
			TID: e.f.TID, Port: p.trID, Node: -1})
	}
	if e.in != nil {
		e.in.credits++
		e.in.up.kick()
	}
	e.f.Release()
}

// txDone fires when the tail of cur leaves the port: the frame flies the
// cable (plus switch forwarding when the downstream is a switch), the
// inbound credit the frame was holding returns (possibly restarting a
// stalled upstream port), and the next queued frame starts. The fault
// decision sits here — after serialization, which a lost frame still
// consumes — so a drop vanishes from the wire (its downstream buffer
// credit returns at once) and a corruption flies on to die at the next
// store-and-forward CRC check.
func (p *outPort) txDone() {
	e := p.cur
	p.cur = qent{}
	p.busy = false
	p.forwarded++
	lk := p.link
	if p.down {
		// The link died mid-transmission: the frame is lost.
		if p.flt != nil {
			p.flt.CountDrop()
		}
		lk.credits++
		p.drop(e)
		return
	}
	if p.flt != nil {
		switch p.flt.Decide() {
		case faults.Drop:
			lk.credits++
			p.drop(e)
			p.kick()
			return
		case faults.Corrupt:
			e.f.Corrupted = true
		}
	}
	p.fab.k.AtArg(p.fab.k.Now()+lk.prop, lk.arriveFn, e.f)
	if e.in != nil {
		e.in.credits++
		e.in.up.kick()
	}
	p.kick()
}

// setDown flaps the port's link dead: queued frames drop (their inbound
// credits return), nothing further transmits, and — where the topology
// has redundant paths — routes divert around the port.
func (p *outPort) setDown() {
	if p.down {
		return
	}
	p.down = true
	if p.flt != nil {
		p.flt.CountFlap()
	}
	for p.q.n > 0 {
		e := p.q.pop()
		if p.flt != nil {
			p.flt.CountDrop()
		}
		p.drop(e)
	}
	if p.fab.OnDepth != nil {
		p.fab.OnDepth(p.fab.k.Now(), p.name, 0)
	}
	p.fab.rehashRoutes()
}

// setUp restores a flapped port: routes rehash back to the default ECMP
// spread and any traffic that arrived meanwhile starts draining.
func (p *outPort) setUp() {
	if !p.down {
		return
	}
	p.down = false
	p.fab.rehashRoutes()
	p.kick()
}

// NewFabric compiles spec for the given host count on kernel k. Wire
// parameters (serialization, propagation, switch forwarding latency) come
// from the same fabric.Config that calibrates the two-endpoint Network.
func NewFabric(k *sim.Kernel, cfg fabric.Config, spec Spec, hosts int) *Fabric {
	spec = spec.resolve(cfg, hosts)
	t := &Fabric{
		k:        k,
		cfg:      cfg,
		spec:     spec,
		ports:    make(map[int]fabric.Port),
		frames:   fabric.NewFrameArena(),
		attached: make([]bool, hosts),
		hopProp:  cfg.WireProp / 2,
		tr:       k.Tracer(),
	}
	t.deliverFn = func(a any) {
		f := a.(*fabric.Frame)
		if f.Corrupted {
			// Destination CRC check on the ideal tier.
			if t.tr != nil && f.TID != 0 {
				t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvDrop,
					TID: f.TID, Port: -1, Node: int16(f.Dst)})
			}
			f.Release()
			return
		}
		if t.tr != nil && f.TID != 0 {
			t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvDeliver,
				TID: f.TID, Port: -1, Node: int16(f.Dst)})
		}
		t.Delivered[f.Kind]++
		t.ports[f.Dst].RxFrame(f)
	}
	t.sendFn = func(a any) { t.Send(a.(*fabric.Frame)) }
	t.frames.SetOnRelease(t.frameReleased)

	if hosts == 2 && spec.Kind != FatTree {
		// Calibrated ideal tier: the paper's two-endpoint model, with the
		// switch (when present) as a cut-through constant. Bit-identical
		// with fabric.Network by construction — same SerTime/FlightTime
		// helpers, same single delivery event per frame.
		t.ideal = true
		c := cfg
		c.UseSwitch = spec.Kind == SingleSwitch
		t.flight = c.FlightTime()
		t.busyUntil = make([]units.Time, hosts)
		if t.tr != nil {
			t.idealPorts = make([]int32, hosts)
			for i := range t.idealPorts {
				t.idealPorts[i] = t.tr.Port(fabric.EgressName(i))
			}
		}
		return t
	}

	switch spec.Kind {
	case SingleSwitch:
		t.buildStar(hosts)
	case FatTree:
		t.buildFatTree(hosts, spec.Radix)
	default:
		panic(fmt.Sprintf("topo: %s cannot host %d nodes", spec, hosts))
	}
	return t
}

// wire makes p the driving port of a new link ending at switch sw, or at
// host dst when sw is nil.
func (t *Fabric) wire(p *outPort, name string, sw *Switch, dst int) {
	lk := &link{
		id:      int32(len(t.links)),
		prop:    t.hopProp,
		credits: t.spec.Credits,
		dstSw:   sw,
		dstHost: dst,
		up:      p,
	}
	t.links = append(t.links, lk)
	if sw != nil {
		// Store-and-forward: the frame is fully received at txDone+prop,
		// then the switch's forwarding latency applies before it reaches
		// the output-port queue. Folding both into one event keeps the
		// hop at a single kernel event.
		lk.prop += t.cfg.SwitchLatency
		lk.arriveFn = func(a any) { t.arriveSwitch(lk, a.(*fabric.Frame)) }
	} else {
		lk.arriveFn = func(a any) { t.arriveHost(lk, a.(*fabric.Frame)) }
	}
	p.fab = t
	p.name = name
	p.link = lk
	p.txDoneFn = p.txDone
	p.trID = -1
	if t.tr != nil {
		p.trID = t.tr.Port(name)
	}
}

// arriveSwitch queues a delivered frame at its routed output port. The
// switch is store-and-forward: a frame that arrived with a bad CRC is
// discarded here, its buffer credit returning immediately.
func (t *Fabric) arriveSwitch(lk *link, f *fabric.Frame) {
	if f.Corrupted {
		if t.tr != nil && f.TID != 0 {
			t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvDrop,
				TID: f.TID, Port: lk.up.trID, Node: -1})
		}
		lk.credits++
		f.Release()
		lk.up.kick()
		return
	}
	sw := lk.dstSw
	sw.outs[sw.route[f.Dst]].push(qent{f: f, in: lk})
}

// arriveHost delivers the frame. The final link's buffer credit stays
// with the frame until the receiver releases it (ownership-based credit
// return: the borrow contract is the buffer accounting, so deferred
// receive processing keeps exerting backpressure — see frameReleased).
// Frames constructed outside the pool have no release hook; their credit
// returns at delivery.
func (t *Fabric) arriveHost(lk *link, f *fabric.Frame) {
	if f.Corrupted {
		// Destination-port CRC check: the NIC never sees the frame.
		if t.tr != nil && f.TID != 0 {
			t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvDrop,
				TID: f.TID, Port: lk.up.trID, Node: -1})
		}
		lk.credits++
		f.Release()
		lk.up.kick()
		return
	}
	if t.tr != nil && f.TID != 0 {
		t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvDeliver,
			TID: f.TID, Port: -1, Node: int16(f.Dst)})
	}
	if pooled := f.Ref().Get() == f; pooled {
		f.HopRef = lk.id + 1
		t.Delivered[f.Kind]++
		t.ports[f.Dst].RxFrame(f)
		return
	}
	lk.credits++
	t.Delivered[f.Kind]++
	t.ports[f.Dst].RxFrame(f)
	lk.up.kick()
}

// frameReleased is the frame arena's release hook: when the receiver
// hands a delivered frame back (Frame.Release), the final-hop buffer
// credit it was occupying returns and the upstream port restarts.
func (t *Fabric) frameReleased(f *fabric.Frame) {
	if f.HopRef == 0 {
		return
	}
	lk := t.links[f.HopRef-1]
	f.HopRef = 0
	lk.credits++
	lk.up.kick()
}

// buildStar compiles the N-host single-switch star.
func (t *Fabric) buildStar(hosts int) {
	sw := &Switch{name: "sw0", route: make([]int32, hosts), outs: make([]outPort, hosts)}
	t.switches = []*Switch{sw}
	t.hosts = make([]outPort, hosts)
	for i := 0; i < hosts; i++ {
		sw.route[i] = int32(i)
		t.wire(&sw.outs[i], fmt.Sprintf("sw0.port%d", i), nil, i)
		t.wire(&t.hosts[i], fmt.Sprintf("host%d.egress", i), sw, -1)
	}
}

// buildFatTree compiles the two-tier folded Clos: radix/2 hosts per leaf,
// radix/2 spines, every leaf cabled to every spine. Up-path spine
// selection is destination-based (spine = dst mod radix/2), so routing is
// deterministic and runs are reproducible.
func (t *Fabric) buildFatTree(hosts, radix int) {
	hpl := radix / 2 // hosts per leaf
	spines := radix / 2
	leaves := (hosts + hpl - 1) / hpl
	// down(l) is leaf l's populated down-port count: the last leaf may
	// hold a partial host complement, and unwired phantom ports must not
	// exist (PortStats iterates every port).
	down := func(l int) int {
		return min(hpl, hosts-l*hpl)
	}

	leafSw := make([]*Switch, leaves)
	for l := range leafSw {
		leafSw[l] = &Switch{
			name:  fmt.Sprintf("leaf%d", l),
			route: make([]int32, hosts),
			outs:  make([]outPort, down(l)+spines),
		}
	}
	spineSw := make([]*Switch, spines)
	for s := range spineSw {
		spineSw[s] = &Switch{
			name:  fmt.Sprintf("spine%d", s),
			route: make([]int32, hosts),
			outs:  make([]outPort, leaves),
		}
	}
	t.switches = make([]*Switch, 0, leaves+spines)
	for _, sw := range leafSw {
		t.switches = append(t.switches, sw)
	}
	for _, sw := range spineSw {
		t.switches = append(t.switches, sw)
	}
	t.ftHpl, t.ftSpines, t.ftLeaves = hpl, spines, leafSw

	t.hosts = make([]outPort, hosts)
	for h := 0; h < hosts; h++ {
		l, d := h/hpl, h%hpl
		t.wire(&leafSw[l].outs[d], fmt.Sprintf("leaf%d.down%d", l, d), nil, h)
		t.wire(&t.hosts[h], fmt.Sprintf("host%d.egress", h), leafSw[l], -1)
	}
	for l, lsw := range leafSw {
		for s, ssw := range spineSw {
			t.wire(&lsw.outs[down(l)+s], fmt.Sprintf("leaf%d.up%d", l, s), ssw, -1)
			lsw.outs[down(l)+s].isUp = true
			t.wire(&ssw.outs[l], fmt.Sprintf("spine%d.port%d", s, l), lsw, -1)
		}
	}

	for h := 0; h < hosts; h++ {
		hl := h / hpl
		for l, lsw := range leafSw {
			if l == hl {
				lsw.route[h] = int32(h % hpl)
			} else {
				lsw.route[h] = int32(down(l) + h%spines)
			}
		}
		for _, ssw := range spineSw {
			ssw.route[h] = int32(hl)
		}
	}
}

// rehashRoutes recomputes fat-tree cross-leaf routing around dead paths:
// each (leaf, destination) pair keeps its default ECMP spine (dst mod
// spines) while both hops of that path are live, and otherwise diverts to
// the first live spine cyclically after it. With every spine path dead the
// default stands and frames drop at the dead port. Restoring a link
// rehashes back, so recovered fabrics route exactly as never-faulted ones.
// Topologies without redundant paths never reroute.
func (t *Fabric) rehashRoutes() {
	if len(t.ftLeaves) == 0 {
		return
	}
	spines := t.ftSpines
	spineSw := t.switches[len(t.ftLeaves):]
	for l, lsw := range t.ftLeaves {
		downN := len(lsw.outs) - spines
		for h := 0; h < t.spec.hosts; h++ {
			hl := h / t.ftHpl
			if hl == l {
				continue
			}
			base := h % spines
			pick := base
			for i := 0; i < spines; i++ {
				s := (base + i) % spines
				if !lsw.outs[downN+s].down && !spineSw[s].outs[hl].down {
					pick = s
					break
				}
			}
			lsw.route[h] = int32(downN + pick)
		}
	}
}

// InjectFaults adopts a compiled fault schedule. Call after NewFabric and
// before the run starts. Scripted drops and flaps naming a port the
// compiled topology does not have panic with the port named — the same
// contract as the attach panics; a fault schedule that silently never
// fires is a test that silently passes. The ideal two-endpoint tier has
// only the host egresses and no redundant paths, so flaps are rejected
// there.
func (t *Fabric) InjectFaults(inj *faults.Injector) {
	if t.ideal {
		t.injectIdeal(inj)
		return
	}
	byName := make(map[string]*outPort)
	for i := range t.hosts {
		byName[t.hosts[i].name] = &t.hosts[i]
	}
	for _, sw := range t.switches {
		for i := range sw.outs {
			byName[sw.outs[i].name] = &sw.outs[i]
		}
	}
	for _, name := range inj.ScriptPorts() {
		if _, ok := byName[name]; !ok {
			panic(fmt.Sprintf("topo: %s: fault injection on unknown port %q (no such compiled port)", t.spec, name))
		}
	}
	if inj.Bernoulli() {
		for _, p := range byName {
			p.flt = inj.Link(p.name)
		}
	}
	for _, name := range inj.ScriptPorts() {
		p := byName[name]
		p.flt = inj.Link(name)
		for _, fl := range inj.FlapsFor(name) {
			t.k.At(fl.Down, p.setDown)
			t.k.At(fl.Up, p.setUp)
		}
	}
}

// injectIdeal is InjectFaults for the calibrated two-endpoint tier, which
// mirrors fabric.Network: per-egress fault state consulted at Send time.
func (t *Fabric) injectIdeal(inj *faults.Injector) {
	if len(inj.Config().Flaps) > 0 {
		panic(fmt.Sprintf("topo: %s: link flaps need a switched topology (no redundant paths to fail over)", t.spec))
	}
	known := make(map[string]bool)
	for id := range t.busyUntil {
		known[fabric.EgressName(id)] = true
	}
	for _, name := range inj.ScriptPorts() {
		if !known[name] {
			panic(fmt.Sprintf("topo: %s: fault injection on unknown port %q (ideal tier has only host egresses)", t.spec, name))
		}
	}
	t.flts = make([]*faults.Link, len(t.busyUntil))
	scripted := make(map[string]bool)
	for _, name := range inj.ScriptPorts() {
		scripted[name] = true
	}
	for id := range t.flts {
		if name := fabric.EgressName(id); inj.Bernoulli() || scripted[name] {
			t.flts[id] = inj.Link(name)
		}
	}
}

// ---------- fabric.Deliverer ----------

// Config reports the wire/switch parameter set.
func (t *Fabric) Config() fabric.Config { return t.cfg }

// Spec reports the resolved topology.
func (t *Fabric) Spec() Spec { return t.spec }

// Attach registers port under NIC id. Ids may be sparse and attached in
// any order; only ids below the compiled host count are routable.
func (t *Fabric) Attach(id int, p fabric.Port) {
	if _, dup := t.ports[id]; dup {
		panic(fmt.Sprintf("topo: %s: duplicate port id %d", t.spec, id))
	}
	t.ports[id] = p
	if t.routed(id) {
		t.attached[id] = true
	}
}

// NewFrame allocates a pooled frame owned by the caller until it is handed
// to Send (see the package borrow contract).
func (t *Fabric) NewFrame() *fabric.Frame { return t.frames.Alloc() }

// InUseFrames reports live frame-pool slots, the pool-leak check: it must
// return to zero once every in-flight frame has been delivered and
// released.
func (t *Fabric) InUseFrames() int { return t.frames.InUse() }

// routed reports whether host id has a compiled route.
func (t *Fabric) routed(id int) bool { return id >= 0 && id < t.spec.hosts }

// sendable is the hot-path check: one bounds test and one bool load.
func (t *Fabric) sendable(id int) bool {
	return uint(id) < uint(len(t.attached)) && t.attached[id]
}

// badPort diagnoses a failed sendable check, panicking with the port and
// the topology named. Cold path only.
func (t *Fabric) badPort(id int, role string) {
	if _, ok := t.ports[id]; !ok {
		panic(fmt.Sprintf("topo: %s: no attached %s port %d", t.spec, role, id))
	}
	panic(fmt.Sprintf("topo: %s: %s port %d is attached but not routed (topology has hosts 0..%d)",
		t.spec, role, id, t.spec.hosts-1))
}

// Send transmits f from its Src towards its Dst.
func (t *Fabric) Send(f *fabric.Frame) {
	if !t.sendable(f.Dst) {
		t.badPort(f.Dst, "destination")
	}
	if !t.sendable(f.Src) {
		t.badPort(f.Src, "source")
	}
	if t.ideal {
		// Calibrated two-endpoint path: egress serialization, then the
		// constant flight (identical to fabric.Network.Send).
		start := units.Max(t.k.Now(), t.busyUntil[f.Src])
		txDone := start + t.cfg.SerTime(f.Bytes)
		t.busyUntil[f.Src] = txDone
		if t.flts != nil {
			if fl := t.flts[f.Src]; fl != nil {
				switch fl.Decide() {
				case faults.Drop:
					// Lost after consuming its serialization slot.
					if t.tr != nil && f.TID != 0 {
						t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvDrop,
							TID: f.TID, Port: t.idealPorts[f.Src], Node: -1})
					}
					f.Release()
					return
				case faults.Corrupt:
					f.Corrupted = true
				}
			}
		}
		if t.tr != nil && f.TID != 0 {
			// The egress queue is implicit (busyUntil): record the wait for
			// the wire as queue -> txstart so attribution sees it.
			t.tr.Emit(trace.Event{At: t.k.Now(), Kind: trace.EvQueue,
				TID: f.TID, Port: t.idealPorts[f.Src], Node: -1})
			t.tr.Emit(trace.Event{At: start, Kind: trace.EvTxStart, TID: f.TID,
				Port: t.idealPorts[f.Src], Node: -1, Arg: trace.ArgMsg(0, f.Bytes, uint32(f.PSN))})
		}
		t.k.AtArg(txDone+t.flight, t.deliverFn, f)
		return
	}
	t.hosts[f.Src].push(qent{f: f})
}

// AckFor allocates the transport-level acknowledgement frame answering the
// received Data frame f (same contract as fabric.Network.AckFor).
func (t *Fabric) AckFor(f *fabric.Frame, info fabric.AckInfo) *fabric.Frame {
	ack := t.frames.Alloc()
	ack.Kind = fabric.TransportAck
	ack.Src = f.Dst
	ack.Dst = f.Src
	ack.Ack = info
	return ack
}

// SendAck transmits a previously built ACK frame after the configured
// turnaround delay.
func (t *Fabric) SendAck(ack *fabric.Frame) {
	if t.cfg.AckTurnaround > 0 {
		t.k.AfterArg(t.cfg.AckTurnaround, t.sendFn, ack)
		return
	}
	t.Send(ack)
}

// Ack emits the transport-level acknowledgement for a received Data frame
// back to its source.
func (t *Fabric) Ack(f *fabric.Frame, info fabric.AckInfo) {
	t.SendAck(t.AckFor(f, info))
}

// ---------- observability ----------

// PortStat is one egress port's counters.
type PortStat struct {
	// Name is the compiled port name, e.g. "host0.egress", "sw0.port3",
	// "leaf1.up0", "spine0.port2".
	Name string
	// Forwarded counts frames whose transmission this port started.
	Forwarded uint64
	// MaxQueue is the deepest FIFO this port reached.
	MaxQueue int
	// CreditStalls counts drain passes that left frames queued because
	// the downstream link was out of credits.
	CreditStalls uint64
	// Busy is the accumulated wire-serialization occupancy; divided by a
	// measurement window it is the port's utilization.
	Busy units.Time
	// Dropped, Corrupted and Flaps count injected faults on the port's
	// link (all zero without fault injection).
	Dropped   uint64
	Corrupted uint64
	Flaps     uint64
}

// PortStats snapshots every egress port (host injections first, then each
// switch's output ports in port order). Empty on the ideal two-endpoint
// tier, which has no ports to congest.
func (t *Fabric) PortStats() []PortStat {
	var out []PortStat
	add := func(p *outPort) {
		ps := PortStat{
			Name:         p.name,
			Forwarded:    p.forwarded,
			MaxQueue:     p.maxQueue,
			CreditStalls: p.creditStalls,
			Busy:         p.busyTime,
		}
		if p.flt != nil {
			ps.Dropped = p.flt.Dropped
			ps.Corrupted = p.flt.Corrupted
			ps.Flaps = p.flt.Flaps
		}
		out = append(out, ps)
	}
	for i := range t.hosts {
		add(&t.hosts[i])
	}
	for _, sw := range t.switches {
		for i := range sw.outs {
			add(&sw.outs[i])
		}
	}
	return out
}

// FormatHotPorts renders the ports that saw congestion — queueing beyond
// one frame or any credit stall — as an aligned report, one line per
// port. Empty when nothing congested.
func (t *Fabric) FormatHotPorts() string {
	var b strings.Builder
	for _, ps := range t.PortStats() {
		faulted := ps.Dropped > 0 || ps.Corrupted > 0 || ps.Flaps > 0
		if ps.MaxQueue <= 1 && ps.CreditStalls == 0 && !faulted {
			continue
		}
		fmt.Fprintf(&b, "  %-16s %8d frames, max queue %3d, %6d credit stalls",
			ps.Name, ps.Forwarded, ps.MaxQueue, ps.CreditStalls)
		if faulted {
			fmt.Fprintf(&b, ", %d dropped, %d corrupted, %d flaps", ps.Dropped, ps.Corrupted, ps.Flaps)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PortNames enumerates every compiled output-port name in deterministic
// order (host injection egresses first, then each switch's output ports in
// port order) — the exact names InjectFaults accepts for scripted drops and
// flaps. Fault-schedule generators (the chaos soak) derive valid targets
// from it instead of hand-assembling name strings; it is empty on the ideal
// two-endpoint tier, where flaps are rejected anyway.
func (t *Fabric) PortNames() []string {
	var out []string
	for i := range t.hosts {
		out = append(out, t.hosts[i].name)
	}
	for _, sw := range t.switches {
		for i := range sw.outs {
			out = append(out, sw.outs[i].name)
		}
	}
	return out
}

// SwitchPortNames enumerates only the switch output-port names (the
// flappable, redundantly-routed links on a fat-tree), in the same order
// PortStats reports them.
func (t *Fabric) SwitchPortNames() []string {
	var out []string
	for _, sw := range t.switches {
		for i := range sw.outs {
			out = append(out, sw.outs[i].name)
		}
	}
	return out
}

// MaxSwitchQueue reports the deepest output-port queue any switch reached —
// the headline congestion indicator of a run.
func (t *Fabric) MaxSwitchQueue() int {
	m := 0
	for _, sw := range t.switches {
		for i := range sw.outs {
			if d := sw.outs[i].maxQueue; d > m {
				m = d
			}
		}
	}
	return m
}

// CreditStalls sums credit-stall counts across every port.
func (t *Fabric) CreditStalls() uint64 {
	var n uint64
	for i := range t.hosts {
		n += t.hosts[i].creditStalls
	}
	for _, sw := range t.switches {
		for i := range sw.outs {
			n += sw.outs[i].creditStalls
		}
	}
	return n
}

// Switches exposes the compiled switches (tests inspect routing tables).
func (t *Fabric) Switches() []*Switch { return t.switches }

// Route reports switch sw's output-port index for destination host dst.
func (s *Switch) Route(dst int) int { return int(s.route[dst]) }

// Ports reports the switch's output-port count.
func (s *Switch) Ports() int { return len(s.outs) }
