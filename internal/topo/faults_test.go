package topo

import (
	"strings"
	"testing"

	"breakband/internal/faults"
	"breakband/internal/units"
)

// TestFlapFailoverAndRestore pins the fat-tree ECMP failover contract:
// while a leaf up-link is down, cross-leaf routes over it divert to a
// live spine; when it comes back, routing rehashes to exactly the
// never-faulted default.
func TestFlapFailoverAndRestore(t *testing.T) {
	down, up := units.Microseconds(10), units.Microseconds(30)
	k, fab, ports := build(t, testCfg(true), Spec{Kind: FatTree}, 8)
	fab.InjectFaults(faults.MustInjector(1, faults.Config{
		Flaps: []faults.Flap{{Port: "leaf0.up1", Down: down, Up: up}},
	}))
	ports[7].ack = true

	leaf0 := fab.Switches()[0]
	// 8 hosts at radix 4: host 7 is cross-leaf, default spine 7%2=1 via
	// leaf0's up port 3 (2 down + spine index 1).
	if got := leaf0.Route(7); got != 3 {
		t.Fatalf("default route to host7 = port %d, want 3", got)
	}
	k.At(down+1, func() {
		if got := leaf0.Route(7); got != 2 {
			t.Errorf("route to host7 while spine1 uplink is down = port %d, want 2 (diverted to spine0)", got)
		}
		// Same-leaf routes never divert.
		if got := leaf0.Route(1); got != 1 {
			t.Errorf("down-route to host1 rerouted to %d", got)
		}
	})
	k.At(up+1, func() {
		if got := leaf0.Route(7); got != 3 {
			t.Errorf("route to host7 after restore = port %d, want 3 (default rehash)", got)
		}
	})
	// Traffic through the window: a frame before the flap (delivered via
	// spine1), one mid-flap (delivered via spine0), one after restore.
	sendAt(k, fab, 0, 0, 7, 8)
	sendAt(k, fab, down+units.Microseconds(2), 0, 7, 8)
	sendAt(k, fab, up+units.Microseconds(2), 0, 7, 8)
	k.Run()

	if got := len(ports[7].at); got != 3 {
		t.Fatalf("host7 saw %d deliveries, want 3 (failover must carry mid-flap traffic)", got)
	}
	var flapped *PortStat
	for _, ps := range fab.PortStats() {
		if ps.Name == "leaf0.up1" {
			p := ps
			flapped = &p
		}
	}
	if flapped == nil || flapped.Flaps != 1 {
		t.Fatalf("leaf0.up1 stats = %+v, want Flaps=1", flapped)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked", fab.InUseFrames())
	}
}

// TestFlapDropsQueuedFrames: taking a port down drops what it holds (and
// anything still pushed at it when no alternate path exists), counted on
// the link.
func TestFlapDropsQueuedFrames(t *testing.T) {
	down, up := units.Microseconds(1), units.Microseconds(1000)
	// Single switch: no path redundancy, so host1-bound frames die at the
	// dead port until it restores.
	k, fab, ports := build(t, testCfg(true), Spec{Kind: SingleSwitch}, 3)
	fab.InjectFaults(faults.MustInjector(1, faults.Config{
		Flaps: []faults.Flap{{Port: "sw0.port1", Down: down, Up: up}},
	}))
	for i := 0; i < 4; i++ {
		sendAt(k, fab, down+units.Nanoseconds(100*float64(i)), 0, 1, 256)
	}
	sendAt(k, fab, up+units.Nanoseconds(100), 0, 1, 256)
	k.Run()

	if got := len(ports[1].at); got != 1 {
		t.Fatalf("host1 saw %d deliveries, want 1 (only the post-restore frame)", got)
	}
	var dropped, flaps uint64
	for _, ps := range fab.PortStats() {
		if ps.Name == "sw0.port1" {
			dropped, flaps = ps.Dropped, ps.Flaps
		}
	}
	if dropped != 4 || flaps != 1 {
		t.Errorf("sw0.port1 dropped/flaps = %d/%d, want 4/1", dropped, flaps)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked (dead-port drops must release)", fab.InUseFrames())
	}
}

// TestInjectUnknownPortPanics: a schedule naming a port the compiled
// topology does not have is a configuration bug and must panic with the
// port name, not silently never fire.
func TestInjectUnknownPortPanics(t *testing.T) {
	check := func(t *testing.T, spec Spec, hosts int, cfg faults.Config) {
		t.Helper()
		_, fab, _ := build(t, testCfg(true), spec, hosts)
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("InjectFaults accepted an unknown port")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "leaf9.up9") {
				t.Errorf("panic %v does not name the port", r)
			}
		}()
		fab.InjectFaults(faults.MustInjector(1, cfg))
	}
	t.Run("scripted_drop", func(t *testing.T) {
		check(t, Spec{Kind: FatTree}, 8, faults.Config{
			DropNth: []faults.ScriptedDrop{{Port: "leaf9.up9", N: 1}},
		})
	})
	t.Run("flap", func(t *testing.T) {
		check(t, Spec{Kind: FatTree}, 8, faults.Config{
			Flaps: []faults.Flap{{Port: "leaf9.up9", Down: 1, Up: 2}},
		})
	})
	t.Run("ideal_tier", func(t *testing.T) {
		check(t, Spec{Kind: BackToBack}, 2, faults.Config{
			DropNth: []faults.ScriptedDrop{{Port: "leaf9.up9", N: 1}},
		})
	})
}

// TestIdealTierFlapPanics: the calibrated two-endpoint tier has no
// redundant paths, so a flap schedule is unsatisfiable and must panic.
func TestIdealTierFlapPanics(t *testing.T) {
	_, fab, _ := build(t, testCfg(false), Spec{Kind: BackToBack}, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("ideal tier accepted a flap schedule")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "flap") {
			t.Errorf("panic %v does not explain the flap limitation", r)
		}
	}()
	fab.InjectFaults(faults.MustInjector(1, faults.Config{
		Flaps: []faults.Flap{{Port: "host0.egress", Down: 1, Up: 2}},
	}))
}

// TestBernoulliDropsAndCorruptions: with aggressive rates on a switched
// path, the per-port counters see both fault classes, corrupted frames
// are discarded at the next store-and-forward check, and every lost frame
// still releases back to the arena.
func TestBernoulliDropsAndCorruptions(t *testing.T) {
	k, fab, ports := build(t, testCfg(true), Spec{Kind: SingleSwitch}, 3)
	fab.InjectFaults(faults.MustInjector(2, faults.Config{DropRate: 0.25, CorruptRate: 0.25}))
	ports[1].ack = false
	const n = 200
	for i := 0; i < n; i++ {
		sendAt(k, fab, units.Nanoseconds(float64(i)*2000), 0, 1, 64)
	}
	k.Run()

	var dropped, corrupted uint64
	for _, ps := range fab.PortStats() {
		dropped += ps.Dropped
		corrupted += ps.Corrupted
	}
	if dropped == 0 || corrupted == 0 {
		t.Errorf("dropped/corrupted = %d/%d, want both > 0 at 25%%/25%%", dropped, corrupted)
	}
	if got := len(ports[1].at); got >= n || got == 0 {
		t.Errorf("host1 saw %d of %d frames, want some lost and some delivered", got, n)
	}
	if got := uint64(len(ports[1].at)) + dropped + corrupted; got != n {
		t.Errorf("delivered+dropped+corrupted = %d, want %d (frames must not vanish unaccounted)", got, n)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked", fab.InUseFrames())
	}
}
