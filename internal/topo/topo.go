// Package topo grows the paper's Network = Wire + Switch decomposition into
// declarative multi-switch topologies: a topology Spec is compiled into
// per-switch routing tables and store-and-forward switches whose output
// ports model serialization queues and link-level credit flow control, so
// shared links actually congest. It is the fabric.Deliverer implementation
// behind every N-node system (node.NewSystem routes all traffic through it).
//
// # Scenario catalog
//
//   - Back-to-back (two hosts, one cable): the paper's switchless baseline.
//   - Single switch (N hosts in a star): the paper's main configuration for
//     N=2, and the first contention scenario for N>2 — incast
//     (perftest.IncastPutBw) funnels N-1 senders into one receiver downlink
//     port, whose queue is where the congestion lives.
//   - Fat-tree (two-tier folded Clos of radix-k switches: k/2 hosts per
//     leaf, k/2 spines, up to k leaves): multi-switch paths with shared
//     leaf-spine links. All-to-all traffic (perftest.AllToAllPutBw)
//     exercises every tier; up-path spine selection is deterministic
//     destination-based ECMP (spine = dst mod k/2), so runs are exactly
//     reproducible.
//   - Oversubscribed incast (perftest.OversubscribedPutBw): the incast
//     shape sized so the receiver's PCIe link, not the wire, is the
//     bottleneck, against a NIC with bounded rx buffering
//     (config.Config.NICRxBudget) — held frames pin their final-hop
//     credits here (see below) and overflow turns into RNR NAK / retry
//     traffic riding the reverse path. The full catalog with run commands
//     lives in ARCHITECTURE.md.
//
// # Queueing and credit model
//
// Each directed link is driven by exactly one output port (a host NIC's
// injection egress or a switch output port). A port serializes frames one
// at a time (fabric.Config.SerTime — the same arithmetic the two-endpoint
// Network uses) and owns a FIFO of frames waiting for the wire. The
// downstream end of every link advertises Spec.Credits buffer slots: a
// frame consumes one credit when its transmission starts and returns it
// when it leaves the downstream element — departing the next switch's
// output port, or, on the final hop, when the receiving port *releases*
// the frame (the borrow contract doubles as the buffer accounting, so a
// receiver that defers processing keeps exerting backpressure). The NIC
// leans on exactly that: it releases a delivered data frame only when the
// frame's host-memory writes have been issued on its PCIe link, so a
// receiver whose PCIe is slower than the wire pins final-hop credits and
// the congestion backs up through the switches to the senders instead of
// pooling in an unbounded NIC buffer. A port
// with queued frames and no credits stalls; returning credits restart it.
// Backpressure therefore propagates hop by hop toward the senders,
// exactly the victim-flow mechanics shared links exhibit. Up/down routing
// is cycle-free in both compiled topologies, so credit waits cannot
// deadlock.
//
// Switches are store-and-forward: a frame must be fully received
// (serialization at the upstream port) before the switch's forwarding
// latency (fabric.Config.SwitchLatency) and its own output-port
// serialization apply. Per hop, an uncontended frame costs
// SerTime + WireProp/2 + SwitchLatency: the calibrated two-endpoint
// WireProp spans the two cables of the paper's single-switch setup, so
// each compiled cable contributes half.
//
// The one deliberate exception is the two-host back-to-back and
// single-switch topologies, which reproduce the paper's calibrated model
// bit for bit (one egress serialization, then OneWay's flight time with
// the switch as an ideal cut-through constant). The golden kernel fixture
// pins this: a two-endpoint system built through topo is indistinguishable
// from the original fabric.Network. Contention modelling engages for N>2,
// where shared ports exist.
//
// # Pooled frames and the borrow contract
//
// The fabric owns a generation-checked frame arena identical to
// fabric.Network's (fabric.NewFrameArena) and obeys the same borrow
// contract: senders allocate with NewFrame and hand ownership to Send; the
// fabric owns frames across every hop (switch queues hold borrowed
// pointers, never copies); delivery transfers ownership to the receiving
// port, which must Release. The steady-state switch path allocates
// nothing: queue rings and the event pool reach a high-water mark bounded
// by the credit budget and recycle thereafter (pinned by
// internal/simbench's switch-path alloc budget test).
package topo

import (
	"fmt"

	"breakband/internal/fabric"
)

// Kind selects the compiled topology shape.
type Kind int

// Topology kinds.
const (
	// Auto picks the calibrated two-endpoint path for two hosts
	// (back-to-back or single switch per fabric.Config.UseSwitch) and a
	// single switch for more.
	Auto Kind = iota
	// BackToBack cables exactly two hosts directly.
	BackToBack
	// SingleSwitch stars every host around one switch.
	SingleSwitch
	// FatTree builds the two-tier folded Clos described in the package
	// doc.
	FatTree
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Auto:
		return "auto"
	case BackToBack:
		return "backtoback"
	case SingleSwitch:
		return "switch"
	case FatTree:
		return "fattree"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses a topology name as accepted by the CLIs.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "auto":
		return Auto, nil
	case "backtoback", "direct":
		return BackToBack, nil
	case "switch", "singleswitch":
		return SingleSwitch, nil
	case "fattree":
		return FatTree, nil
	}
	return Auto, fmt.Errorf("topo: unknown topology %q (want auto, backtoback, switch or fattree)", s)
}

// DefaultCredits is the per-link credit budget (downstream buffer slots in
// frames) when Spec.Credits is zero.
const DefaultCredits = 16

// Spec declares a topology. The zero Spec is Auto with defaults, which
// reproduces the pre-topology two-node behaviour exactly.
type Spec struct {
	Kind Kind
	// Radix is the switch port count for FatTree (even, >= 2): k/2 hosts
	// hang off each leaf and k/2 spines interconnect up to k leaves. Zero
	// selects the smallest radix that fits the host count.
	Radix int
	// Credits is the link-level credit budget (frames buffered at each
	// link's downstream end); zero selects DefaultCredits.
	Credits int

	// hosts is filled in by resolve for diagnostics.
	hosts int
}

// String names the topology in panics and reports, e.g.
// "fattree(radix=4, hosts=8, credits=16)".
func (s Spec) String() string {
	hosts := ""
	if s.hosts > 0 {
		hosts = fmt.Sprintf("hosts=%d", s.hosts)
	}
	switch s.Kind {
	case FatTree:
		return fmt.Sprintf("fattree(radix=%d, %s, credits=%d)", s.Radix, hosts, s.Credits)
	case BackToBack:
		return fmt.Sprintf("backtoback(%s)", hosts)
	default:
		return fmt.Sprintf("%s(%s, credits=%d)", s.Kind, hosts, s.Credits)
	}
}

// Validate reports why the spec cannot compile for the given host count,
// or nil when it can. CLIs use it to turn flag mistakes into usage errors
// instead of the panics NewFabric raises on programmer error.
func (s Spec) Validate(cfg fabric.Config, hosts int) error {
	_, err := s.resolveErr(cfg, hosts)
	return err
}

// resolve validates the spec against the host count and fills defaults,
// returning the concrete topology NewFabric compiles.
func (s Spec) resolve(cfg fabric.Config, hosts int) Spec {
	r, err := s.resolveErr(cfg, hosts)
	if err != nil {
		panic("topo: " + err.Error())
	}
	return r
}

func (s Spec) resolveErr(cfg fabric.Config, hosts int) (Spec, error) {
	if hosts < 2 {
		return s, fmt.Errorf("a fabric needs at least two hosts, got %d", hosts)
	}
	r := s
	r.hosts = hosts
	if r.Credits == 0 {
		r.Credits = DefaultCredits
	}
	if r.Credits < 1 {
		return r, fmt.Errorf("%s: credits must be positive", r)
	}
	switch r.Kind {
	case Auto:
		if hosts == 2 && !cfg.UseSwitch {
			r.Kind = BackToBack
		} else {
			r.Kind = SingleSwitch
		}
	case BackToBack:
		if hosts != 2 {
			return r, fmt.Errorf("backtoback cables exactly 2 hosts, got %d", hosts)
		}
	case SingleSwitch:
	case FatTree:
		if r.Radix == 0 {
			for r.Radix = 2; r.Radix*r.Radix/2 < hosts; r.Radix += 2 {
			}
		}
		if r.Radix < 2 || r.Radix%2 != 0 {
			return r, fmt.Errorf("%s: fat-tree radix must be even and >= 2", r)
		}
		if cap := r.Radix * r.Radix / 2; cap < hosts {
			return r, fmt.Errorf("%s: radix %d supports at most %d hosts", r, r.Radix, cap)
		}
	default:
		return r, fmt.Errorf("unknown topology kind %d", int(r.Kind))
	}
	return r, nil
}
