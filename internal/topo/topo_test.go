package topo

import (
	"fmt"
	"strings"
	"testing"

	"breakband/internal/fabric"
	"breakband/internal/sim"
	"breakband/internal/units"
)

// testCfg mirrors the calibration shape with round numbers: 80 ps/B
// serialization, 30 B frame overhead, 270 ns total wire, 108 ns switch.
func testCfg(useSwitch bool) fabric.Config {
	return fabric.Config{
		WireProp:      units.Nanoseconds(270),
		WirePerByte:   units.Time(80),
		FrameOverhead: 30,
		SwitchLatency: units.Nanoseconds(108),
		UseSwitch:     useSwitch,
	}
}

// port records deliveries and releases every frame (optionally acking data
// frames first).
type port struct {
	k   *sim.Kernel
	fab *Fabric
	got []fabric.FrameKind
	at  []units.Time
	ack bool
}

func (p *port) RxFrame(f *fabric.Frame) {
	p.got = append(p.got, f.Kind)
	p.at = append(p.at, p.k.Now())
	if p.ack && f.Kind == fabric.Data {
		p.fab.Ack(f, fabric.AckInfo{QPN: f.Op.SrcQPN, Counter: f.Op.Counter})
	}
	f.Release()
}

func build(t *testing.T, cfg fabric.Config, spec Spec, hosts int) (*sim.Kernel, *Fabric, []*port) {
	t.Helper()
	k := sim.NewKernel()
	fab := NewFabric(k, cfg, spec, hosts)
	ports := make([]*port, hosts)
	for i := range ports {
		ports[i] = &port{k: k, fab: fab}
		fab.Attach(i, ports[i])
	}
	return k, fab, ports
}

// sendAt schedules a pooled data frame of b payload bytes.
func sendAt(k *sim.Kernel, fab *Fabric, at units.Time, src, dst, b int) {
	k.At(at, func() {
		f := fab.NewFrame()
		f.Kind = fabric.Data
		f.Src = src
		f.Dst = dst
		f.Bytes = b
		fab.Send(f)
	})
}

func TestSpecResolve(t *testing.T) {
	cases := []struct {
		spec  Spec
		hosts int
		want  Kind
	}{
		{Spec{}, 2, SingleSwitch},             // auto + UseSwitch
		{Spec{}, 5, SingleSwitch},             // auto N>2
		{Spec{Kind: BackToBack}, 2, BackToBack},
		{Spec{Kind: FatTree}, 8, FatTree},
	}
	for _, c := range cases {
		r := c.spec.resolve(testCfg(true), c.hosts)
		if r.Kind != c.want {
			t.Errorf("resolve(%v, %d hosts): kind %v, want %v", c.spec, c.hosts, r.Kind, c.want)
		}
		if r.Credits != DefaultCredits {
			t.Errorf("resolve(%v): credits %d, want default %d", c.spec, r.Credits, DefaultCredits)
		}
	}
	// Auto with two hosts and no switch resolves back-to-back.
	if r := (Spec{}).resolve(testCfg(false), 2); r.Kind != BackToBack {
		t.Errorf("auto direct: kind %v, want backtoback", r.Kind)
	}
	// Fat-tree default radix: smallest even k with k*k/2 >= hosts.
	if r := (Spec{Kind: FatTree}).resolve(testCfg(true), 8); r.Radix != 4 {
		t.Errorf("fattree(8 hosts) default radix %d, want 4", r.Radix)
	}
	if r := (Spec{Kind: FatTree}).resolve(testCfg(true), 9); r.Radix != 6 {
		t.Errorf("fattree(9 hosts) default radix %d, want 6", r.Radix)
	}
}

func TestSpecValidationPanics(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		hosts int
		msg   string
	}{
		{"one host", Spec{}, 1, "at least two hosts"},
		{"backtoback n=3", Spec{Kind: BackToBack}, 3, "exactly 2 hosts"},
		{"odd radix", Spec{Kind: FatTree, Radix: 3}, 4, "even"},
		{"radix too small", Spec{Kind: FatTree, Radix: 2}, 4, "at most 2 hosts"},
		{"negative credits", Spec{Credits: -1}, 2, "positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("no panic")
				}
				if !strings.Contains(fmt.Sprint(r), c.msg) {
					t.Errorf("panic %q does not mention %q", r, c.msg)
				}
			}()
			c.spec.resolve(testCfg(true), c.hosts)
		})
	}
}

// TestIdealTierMatchesNetwork drives the same frame schedule through
// fabric.Network and the two-host topo fabric and requires identical
// delivery timestamps — the bit-for-bit compatibility the golden fixture
// relies on.
func TestIdealTierMatchesNetwork(t *testing.T) {
	for _, useSwitch := range []bool{false, true} {
		cfg := testCfg(useSwitch)

		type hit struct {
			at   units.Time
			kind fabric.FrameKind
		}
		run := func(send func(at units.Time, src, dst, bytes int), ack func(), done func() []hit) []hit {
			// Schedule a mix: pipelined sends (egress serialization), a
			// reverse-direction frame, different sizes.
			send(0, 0, 1, 8)
			send(0, 0, 1, 64)
			send(units.Nanoseconds(100), 1, 0, 8)
			send(units.Nanoseconds(400), 0, 1, 2048)
			ack()
			return done()
		}

		// Reference: fabric.Network.
		kN := sim.NewKernel()
		net := fabric.New(kN, cfg)
		var refHits []hit
		refPort := func(id int) fabric.Port {
			return rxFunc(func(f *fabric.Frame) {
				refHits = append(refHits, hit{kN.Now(), f.Kind})
				if f.Kind == fabric.Data {
					net.Ack(f, fabric.AckInfo{})
				}
				f.Release()
			})
		}
		net.Attach(0, refPort(0))
		net.Attach(1, refPort(1))
		ref := run(func(at units.Time, src, dst, b int) {
			kN.At(at, func() {
				f := net.NewFrame()
				f.Kind = fabric.Data
				f.Src = src
				f.Dst = dst
				f.Bytes = b
				net.Send(f)
			})
		}, func() {}, func() []hit { kN.Run(); return refHits })

		// Topo two-host auto spec.
		kT := sim.NewKernel()
		fab := NewFabric(kT, cfg, Spec{}, 2)
		var topoHits []hit
		topoPort := func(id int) fabric.Port {
			return rxFunc(func(f *fabric.Frame) {
				topoHits = append(topoHits, hit{kT.Now(), f.Kind})
				if f.Kind == fabric.Data {
					fab.Ack(f, fabric.AckInfo{})
				}
				f.Release()
			})
		}
		fab.Attach(0, topoPort(0))
		fab.Attach(1, topoPort(1))
		got := run(func(at units.Time, src, dst, b int) {
			kT.At(at, func() {
				f := fab.NewFrame()
				f.Kind = fabric.Data
				f.Src = src
				f.Dst = dst
				f.Bytes = b
				fab.Send(f)
			})
		}, func() {}, func() []hit { kT.Run(); return topoHits })

		if len(got) != len(ref) {
			t.Fatalf("useSwitch=%v: %d deliveries, want %d", useSwitch, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("useSwitch=%v delivery %d: %+v, want %+v", useSwitch, i, got[i], ref[i])
			}
		}
		if fab.InUseFrames() != 0 || net.InUseFrames() != 0 {
			t.Errorf("useSwitch=%v: leaked frames (topo %d, net %d)", useSwitch, fab.InUseFrames(), net.InUseFrames())
		}
	}
}

// rxFunc adapts a func to fabric.Port.
type rxFunc func(*fabric.Frame)

func (fn rxFunc) RxFrame(f *fabric.Frame) { fn(f) }

// TestStarUncontendedLatency pins the engine's per-hop arithmetic: one
// 8-byte frame through an N=3 star costs two serializations, the full
// cable flight (two half-cables) and one switch forwarding latency.
func TestStarUncontendedLatency(t *testing.T) {
	k, fab, ports := build(t, testCfg(true), Spec{}, 3)
	sendAt(k, fab, 0, 0, 1, 8)
	k.Run()
	if len(ports[1].at) != 1 {
		t.Fatal("no delivery")
	}
	ser := units.Nanoseconds(3.04) // (8+30)*80ps
	want := 2*ser + units.Nanoseconds(270) + units.Nanoseconds(108)
	if ports[1].at[0] != want {
		t.Errorf("arrival %v, want %v", ports[1].at[0], want)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked", fab.InUseFrames())
	}
}

// TestStarOutputPortContention: two same-instant frames from different
// sources to one destination share the switch output port; the second is
// serialized behind the first.
func TestStarOutputPortContention(t *testing.T) {
	k, fab, ports := build(t, testCfg(true), Spec{}, 3)
	sendAt(k, fab, 0, 0, 2, 8)
	sendAt(k, fab, 0, 1, 2, 8)
	k.Run()
	if len(ports[2].at) != 2 {
		t.Fatalf("got %d deliveries, want 2", len(ports[2].at))
	}
	ser := units.Nanoseconds(3.04)
	if gap := ports[2].at[1] - ports[2].at[0]; gap != ser {
		t.Errorf("contended spacing %v, want one serialization %v", gap, ser)
	}
	if fab.MaxSwitchQueue() < 1 {
		t.Error("no switch queueing observed")
	}
}

// TestCreditBackpressure: with one credit per link, a burst from one host
// is paced by credit returns, stalling the injection port.
func TestCreditBackpressure(t *testing.T) {
	const burst = 5
	k, fab, ports := build(t, testCfg(true), Spec{Credits: 1}, 3)
	k.At(0, func() {
		for i := 0; i < burst; i++ {
			f := fab.NewFrame()
			f.Kind = fabric.Data
			f.Src = 0
			f.Dst = 1
			f.Bytes = 8
			fab.Send(f)
		}
	})
	k.Run()
	if len(ports[1].at) != burst {
		t.Fatalf("got %d deliveries, want %d", len(ports[1].at), burst)
	}
	// With ample credits the injection port streams frames one
	// serialization apart; with one credit the next frame waits for the
	// previous one to clear the switch, so spacing must far exceed it.
	ser := units.Nanoseconds(3.04)
	for i := 1; i < burst; i++ {
		if gap := ports[1].at[i] - ports[1].at[i-1]; gap <= ser {
			t.Errorf("delivery %d only %v after %d; credits did not pace", i, gap, i-1)
		}
	}
	stats := fab.PortStats()
	var stalls uint64
	for _, s := range stats {
		if s.Name == "host0.egress" {
			stalls = s.CreditStalls
			if s.MaxQueue == 0 {
				t.Error("host0.egress never queued under credit pressure")
			}
		}
	}
	if stalls == 0 {
		t.Error("no credit stalls recorded")
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked", fab.InUseFrames())
	}
}

// TestFatTreeShapeAndRouting pins the compiled Clos: 8 hosts at radix 4
// give 4 leaves and 2 spines, with destination-based up-path selection.
func TestFatTreeShapeAndRouting(t *testing.T) {
	_, fab, _ := build(t, testCfg(true), Spec{Kind: FatTree}, 8)
	sws := fab.Switches()
	if len(sws) != 6 {
		t.Fatalf("%d switches, want 4 leaves + 2 spines", len(sws))
	}
	leaf0 := sws[0]
	if leaf0.Name() != "leaf0" || leaf0.Ports() != 4 {
		t.Errorf("leaf0: %q with %d ports, want 4", leaf0.Name(), leaf0.Ports())
	}
	// Host 1 is on leaf0 port 1; host 7 is cross-leaf via spine 7%2=1,
	// i.e. up port index 2+1.
	if got := leaf0.Route(1); got != 1 {
		t.Errorf("leaf0 route to host1 = port %d, want 1 (down)", got)
	}
	if got := leaf0.Route(7); got != 3 {
		t.Errorf("leaf0 route to host7 = port %d, want 3 (up to spine1)", got)
	}
	spine1 := sws[5]
	if spine1.Name() != "spine1" || spine1.Ports() != 4 {
		t.Errorf("spine1: %q with %d ports, want 4", spine1.Name(), spine1.Ports())
	}
	if got := spine1.Route(7); got != 3 {
		t.Errorf("spine1 route to host7 = port %d, want 3 (leaf3)", got)
	}
}

// TestFatTreePartialLeaf: a host count that only part-fills the last leaf
// must compile without phantom (unwired) ports and still route to it.
func TestFatTreePartialLeaf(t *testing.T) {
	k, fab, ports := build(t, testCfg(true), Spec{Kind: FatTree, Radix: 4}, 5)
	// 5 hosts at radix 4: leaves 0-1 full (2 hosts), leaf2 holds host 4
	// alone — one down port plus two up ports.
	sws := fab.Switches()
	if len(sws) != 5 {
		t.Fatalf("%d switches, want 3 leaves + 2 spines", len(sws))
	}
	if leaf2 := sws[2]; leaf2.Name() != "leaf2" || leaf2.Ports() != 3 {
		t.Errorf("leaf2: %q with %d ports, want 3 (1 down + 2 up)", leaf2.Name(), leaf2.Ports())
	}
	for _, ps := range fab.PortStats() {
		if ps.Name == "" {
			t.Error("PortStats contains an unwired phantom port")
		}
	}
	sendAt(k, fab, 0, 0, 4, 8) // cross-leaf into the partial leaf
	k.Run()
	if len(ports[4].at) != 1 {
		t.Fatal("no delivery to the partial leaf's host")
	}
}

// TestFatTreeLatency pins same-leaf (one switch) vs cross-leaf (three
// switch) path latencies.
func TestFatTreeLatency(t *testing.T) {
	k, fab, ports := build(t, testCfg(true), Spec{Kind: FatTree}, 8)
	sendAt(k, fab, 0, 0, 1, 8) // same leaf
	sendAt(k, fab, 0, 2, 5, 8) // cross leaf: leaf1 -> spine -> leaf2
	k.Run()
	ser := units.Nanoseconds(3.04)
	hop := units.Nanoseconds(135) // WireProp / 2
	sw := units.Nanoseconds(108)
	wantSame := 2*ser + 2*hop + sw
	wantCross := 4*ser + 4*hop + 3*sw
	if len(ports[1].at) != 1 || ports[1].at[0] != wantSame {
		t.Errorf("same-leaf arrival %v, want %v", ports[1].at, wantSame)
	}
	if len(ports[5].at) != 1 || ports[5].at[0] != wantCross {
		t.Errorf("cross-leaf arrival %v, want %v", ports[5].at, wantCross)
	}
}

// TestSparseOutOfOrderAttach: ids need not be dense or ordered.
func TestSparseOutOfOrderAttach(t *testing.T) {
	k := sim.NewKernel()
	fab := NewFabric(k, testCfg(true), Spec{}, 4)
	ports := map[int]*port{}
	for _, id := range []int{3, 0, 2, 1} {
		p := &port{k: k, fab: fab}
		ports[id] = p
		fab.Attach(id, p)
	}
	sendAt(k, fab, 0, 3, 0, 8)
	k.Run()
	if len(ports[0].at) != 1 {
		t.Fatal("sparse-order attach broke delivery")
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	k := sim.NewKernel()
	fab := NewFabric(k, testCfg(true), Spec{}, 3)
	fab.Attach(0, &port{k: k, fab: fab})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate attach did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "port id 0") || !strings.Contains(msg, "switch(") {
			t.Errorf("panic %q does not name the port and topology", msg)
		}
	}()
	fab.Attach(0, &port{k: k, fab: fab})
}

// TestSendPanicsNamePortAndTopology covers the two failure shapes: an
// unattached destination, and a destination attached under an id the
// topology never routed.
func TestSendPanicsNamePortAndTopology(t *testing.T) {
	expectPanic := func(t *testing.T, wantSub ...string) {
		t.Helper()
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		msg := fmt.Sprint(r)
		for _, sub := range wantSub {
			if !strings.Contains(msg, sub) {
				t.Errorf("panic %q does not contain %q", msg, sub)
			}
		}
	}

	t.Run("unattached", func(t *testing.T) {
		k, fab, _ := build(t, testCfg(true), Spec{}, 3)
		defer expectPanic(t, "no attached destination port 9", "switch(hosts=3")
		k.At(0, func() { fab.Send(&fabric.Frame{Kind: fabric.Data, Src: 0, Dst: 9}) })
		k.Run()
	})

	t.Run("attached but unrouted", func(t *testing.T) {
		k, fab, _ := build(t, testCfg(true), Spec{}, 3)
		fab.Attach(7, &port{k: k, fab: fab}) // beyond the 3 routed hosts
		defer expectPanic(t, "port 7 is attached but not routed", "hosts 0..2", "switch(hosts=3")
		k.At(0, func() { fab.Send(&fabric.Frame{Kind: fabric.Data, Src: 0, Dst: 7}) })
		k.Run()
	})

	t.Run("unrouted source", func(t *testing.T) {
		k, fab, _ := build(t, testCfg(true), Spec{Kind: FatTree}, 4)
		fab.Attach(11, &port{k: k, fab: fab})
		defer expectPanic(t, "source port 11", "fattree(radix=4")
		k.At(0, func() { fab.Send(&fabric.Frame{Kind: fabric.Data, Src: 11, Dst: 0}) })
		k.Run()
	})
}

// TestAckRoundTripOverStar: the transport ACK crosses the star back to the
// initiator, and both pooled frames return to the pool.
func TestAckRoundTripOverStar(t *testing.T) {
	k, fab, ports := build(t, testCfg(true), Spec{}, 4)
	ports[2].ack = true
	sendAt(k, fab, 0, 0, 2, 8)
	k.Run()
	if len(ports[0].got) != 1 || ports[0].got[0] != fabric.TransportAck {
		t.Fatalf("no transport ack at initiator: %v", ports[0].got)
	}
	if fab.Delivered[fabric.Data] != 1 || fab.Delivered[fabric.TransportAck] != 1 {
		t.Errorf("delivered counts: %v", fab.Delivered)
	}
	if fab.InUseFrames() != 0 {
		t.Errorf("%d frames leaked after ack round trip", fab.InUseFrames())
	}
}

// TestOnDepthHook observes queue growth during contention.
func TestOnDepthHook(t *testing.T) {
	k, fab, _ := build(t, testCfg(true), Spec{}, 4)
	depthHits := map[string]int{}
	fab.OnDepth = func(at units.Time, port string, depth int) {
		if depth > depthHits[port] {
			depthHits[port] = depth
		}
	}
	for src := 0; src < 3; src++ {
		sendAt(k, fab, 0, src, 3, 1024)
	}
	k.Run()
	if depthHits["sw0.port3"] < 2 {
		t.Errorf("incast port depth %d, want >= 2 (hits: %v)", depthHits["sw0.port3"], depthHits)
	}
}

// TestDeterminism: two identical contended runs deliver at identical
// times.
func TestDeterminism(t *testing.T) {
	run := func() []units.Time {
		k, fab, ports := build(t, testCfg(true), Spec{Kind: FatTree, Credits: 2}, 8)
		for src := 1; src < 8; src++ {
			for i := 0; i < 5; i++ {
				sendAt(k, fab, units.Time(i)*units.Nanoseconds(50), src, 0, 512)
			}
		}
		k.Run()
		return ports[0].at
	}
	a, b := run(), run()
	if len(a) != 35 || len(a) != len(b) {
		t.Fatalf("delivery counts %d vs %d, want 35", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: run not deterministic", i, a[i], b[i])
		}
	}
}
